package apps

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mote"
	"repro/internal/net"
	"repro/internal/radio"
	"repro/internal/traffic"
	"repro/internal/units"
)

// collectTTL is a packet's hop budget in collect mode: enough for the
// longest loop-free route through the line plus the transient detours a
// re-forming tree can take, while still retiring a looping packet within a
// few beacon periods.
func collectTTL(hops int) uint8 {
	t := hops + 3
	if t > 255 {
		t = 255
	}
	return uint8(t)
}

// newCollectRelay is NewRelay's routed twin: the same line of nodes and the
// same origin schedule, but packets follow a collection tree (internal/net)
// rooted at the line's final node instead of the hard-coded next-hop chain.
// The payoff is resilience: when a relay's battery dies — or a mobile node
// drifts out of range — the tree re-forms around the hole and deliveries
// continue, where the fixed chain simply severs.
//
// cfg arrives pre-clamped by NewRelay. Unknown routing planes panic loudly:
// scenario validation gates the strings, so reaching here with a typo is a
// programming error, not an input error.
func newCollectRelay(seed uint64, cfg RelayConfig) *Relay {
	if cfg.Routing != "ctp" {
		panic(fmt.Sprintf("apps: unknown routing plane %q (want \"ctp\")", cfg.Routing))
	}
	w := cfg.World
	if w == nil {
		w = mote.NewWorldQueue(seed, cfg.Queue)
	}
	r := &Relay{
		World:     w,
		period:    cfg.Period,
		generated: make([]uint64, cfg.Hops),
		dropped:   make([]uint64, cfg.Hops),
		noRoute:   make([]uint64, cfg.Hops),
		ttlDrops:  make([]uint64, cfg.Hops),
	}

	for i := 0; i < cfg.Hops; i++ {
		opts := mote.DefaultOptions()
		if cfg.Base != nil {
			opts = *cfg.Base
		}
		if cfg.PerNode != nil {
			cfg.PerNode(core.NodeID(i+1), &opts)
		}
		opts.Radio = true
		opts.RadioConfig = radio.Config{Channel: cfg.Channel}
		r.Nodes = append(r.Nodes, w.AddNode(core.NodeID(i+1), opts))
	}

	// The sink collects; in tree terms it is the root and the gradient
	// points at it.
	root := r.Nodes[cfg.Hops-1].ID
	tree, err := net.NewTree(w, net.TreeConfig{Root: root, BeaconPeriod: cfg.BeaconPeriod})
	if err != nil {
		// Unreachable: every node above was built with a radio.
		panic(err)
	}
	r.Tree = tree
	ttl := collectTTL(cfg.Hops)

	acts := make([]core.Label, cfg.Origins)
	for o := 0; o < cfg.Origins; o++ {
		acts[o] = r.Nodes[o].K.DefineActivity("Flood")
	}
	r.Act = acts[0]

	// The send path asks the router for the next hop at send time — the
	// routing decision is per-packet, so a reroute takes effect on the very
	// next generation tick. No parent yet (tree still forming, or re-forming
	// after a death) counts separately from a busy radio: the first is the
	// control plane's lag, the second is offered load beyond capacity.
	//
	// A busy radio parks the packet in a one-deep retry slot instead of
	// dropping outright: the routing layer's beacons share the radio with
	// data on fixed periodic residues, and one unlucky residue pairing
	// would otherwise starve an origin every single period. The slot
	// re-arms on a fixed delay until the radio frees (transmissions are
	// finite, so it always does); packets generated while the slot is held
	// drop — the same single-buffer semantics as the fixed chain, shifted
	// one packet later.
	const busyRetry units.Ticks = 4000
	startGen := func(i int) {
		n := r.Nodes[i]
		rt := tree.Router(i)
		var held bool // the retry slot: one deferred packet at most
		xmit := func() bool {
			parent, ok := rt.Parent()
			if !ok {
				r.noRoute[i]++
				return true
			}
			if n.Radio.Busy() {
				return false
			}
			payload := make([]byte, 8)
			payload[0] = ttl
			out := &am.Packet{Dest: parent, Type: RelayAMType, Payload: payload}
			n.AM.Send(out, nil)
			return true
		}
		var retry *kernel.Timer
		retry = n.K.NewTimer(func() {
			if !xmit() {
				retry.StartOneShot(busyRetry)
				return
			}
			held = false
		})
		send := func() {
			r.generated[i]++
			if held {
				// The single buffer already holds a deferred packet.
				r.dropped[i]++
				return
			}
			if !xmit() {
				held = true
				retry.StartOneShot(busyRetry)
			}
		}
		if cfg.Traffic != nil {
			var rec func(units.Ticks)
			if cfg.TrafficRec != nil {
				rec = cfg.TrafficRec.Hook(i)
			}
			n.K.CPUAct.Set(acts[i])
			traffic.Drive(n.K, cfg.Traffic[i], rec, send)
			n.K.CPUAct.SetIdle()
			return
		}
		gen := n.K.NewTimer(send)
		n.K.CPUAct.Set(acts[i])
		// Same per-origin distinct-residue discipline as the fixed chain,
		// shifted half a period off the beacon chain: timers phase against
		// the node's own boot completion, so without the shift a node's
		// data tick would trail its own beacon tick by a fixed ~millisecond
		// every period and always find the radio mid-beacon. Residual
		// coincidences with other nodes' residues are absorbed by the
		// retry slot above.
		gen.StartPeriodicAfter(r.period+(r.period/2+units.Ticks(2*i+1)*1009)%r.period, r.period)
		n.K.CPUAct.SetIdle()
	}

	// Every node is a potential forwarder — the tree, not the line position,
	// decides who relays. The forward still rides the instrumented queue, so
	// the butterfly-effect accounting follows the packet across whatever
	// route the tree picked.
	for i := range r.Nodes {
		i := i
		n := r.Nodes[i]
		rt := tree.Router(i)
		isRoot := n.ID == root
		n.AM.Register(RelayAMType, func(p *am.Packet) {
			if isRoot {
				r.delivered++
				r.lastDeliveredAt = n.K.Sim.Now()
				n.LEDs.Toggle(1)
				return
			}
			if len(p.Payload) == 0 || p.Payload[0] == 0 {
				// Hop budget exhausted: a transient loop while the tree
				// re-forms. Retire the packet instead of orbiting.
				r.ttlDrops[i]++
				return
			}
			hop := p.Payload[0] - 1
			n.K.Post(func() {
				parent, ok := rt.Parent()
				if !ok {
					r.noRoute[i]++
					return
				}
				if n.Radio.Busy() {
					r.dropped[i]++
					return
				}
				payload := append([]byte(nil), p.Payload...)
				payload[0] = hop
				out := &am.Packet{Dest: parent, Type: RelayAMType, Payload: payload}
				n.AM.Send(out, nil)
			})
		})
	}

	// Boot order mirrors the fixed chain: nodes 2..N first, the first origin
	// last. Each node starts its router once the radio is listening, so the
	// first beacons land on live receivers.
	boot := func(i int) {
		n := r.Nodes[i]
		rt := tree.Router(i)
		n.K.Boot(func() {
			n.Radio.TurnOn(func() {
				n.Radio.StartListening()
				rt.Start()
				if i > 0 && i < cfg.Origins {
					startGen(i)
				}
			})
		})
	}
	for i := 1; i < len(r.Nodes); i++ {
		boot(i)
	}
	r.Nodes[0].K.Boot(func() {
		r.Nodes[0].Radio.TurnOn(func() {
			r.Nodes[0].Radio.StartListening()
			tree.Router(0).Start()
			startGen(0)
		})
	})
	return r
}
