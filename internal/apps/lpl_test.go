package apps

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/power"
	"repro/internal/units"
)

func lplDuty(t *testing.T, l *LPL) float64 {
	t.Helper()
	tr := analysis.NewNodeTrace(l.Node.ID, l.Node.Log.Entries, l.Node.Meter.PulseEnergy(), l.Node.Volts)
	a, err := analysis.Analyze(tr, l.World.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return float64(a.ActiveTimeUS(power.ResRadioReg)) / float64(a.Span())
}

func TestLPLCleanChannelNoFalsePositives(t *testing.T) {
	l := NewLPL(11, DefaultLPLConfig(26))
	l.Run(70 * units.Second)
	wakeups, fps := l.Stats()
	if wakeups < 130 {
		t.Errorf("wakeups = %d, want ~140 over 70s at 500ms", wakeups)
	}
	if fps != 0 {
		t.Errorf("false positives on channel 26 = %d, want 0", fps)
	}
}

func TestLPLInterferedChannelFalsePositives(t *testing.T) {
	l := NewLPL(11, DefaultLPLConfig(17))
	l.Run(70 * units.Second)
	rate := l.FalsePositiveRate()
	// Paper: 17.8% of checks falsely detect energy; the interferer's duty
	// cycle is ~17.9%. Allow sampling noise.
	if rate < 0.10 || rate > 0.28 {
		t.Errorf("false-positive rate = %.3f, want ~0.178", rate)
	}
}

func TestLPLDutyCycles(t *testing.T) {
	clean := NewLPL(11, DefaultLPLConfig(26))
	clean.Run(70 * units.Second)
	noisy := NewLPL(11, DefaultLPLConfig(17))
	noisy.Run(70 * units.Second)

	dClean := lplDuty(t, clean)
	dNoisy := lplDuty(t, noisy)
	// Paper: 2.22% clean, 5.58% under interference.
	if dClean < 0.015 || dClean > 0.032 {
		t.Errorf("clean duty cycle = %.4f, want ~0.022", dClean)
	}
	if dNoisy < 0.035 || dNoisy > 0.085 {
		t.Errorf("interfered duty cycle = %.4f, want ~0.056", dNoisy)
	}
	if dNoisy <= dClean*1.5 {
		t.Errorf("interfered duty (%.4f) should far exceed clean duty (%.4f)", dNoisy, dClean)
	}
}

func TestLPLPowerOrdering(t *testing.T) {
	clean := NewLPL(11, DefaultLPLConfig(26))
	clean.Run(70 * units.Second)
	noisy := NewLPL(11, DefaultLPLConfig(17))
	noisy.Run(70 * units.Second)

	pClean := clean.Node.Meter.EnergyMicroJoules() / 70e6 * 1000 // mW
	pNoisy := noisy.Node.Meter.EnergyMicroJoules() / 70e6 * 1000
	if pNoisy <= pClean {
		t.Errorf("interfered power %.3f mW should exceed clean power %.3f mW", pNoisy, pClean)
	}
	ratio := pNoisy / pClean
	// Paper reports 1.43 vs 0.919 mW (ratio 1.56); our physically
	// consistent model lands a somewhat larger ratio. Direction and rough
	// scale must hold.
	if ratio < 1.2 || ratio > 4.0 {
		t.Errorf("power ratio = %.2f, want within [1.2, 4.0]", ratio)
	}
}
