package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/scenario"
	"repro/internal/units"
)

// This file adapts every workload to the scenario registry: each builder
// constructs the app from a declarative Spec, translating zero-valued spec
// fields into the paper's defaults, so experiments, examples, and
// `quanto-trace sweep` all define runs the same way.

func init() {
	scenario.Register("blink", buildBlink)
	scenario.Register("bounce", buildBounce)
	scenario.Register("lpl", buildLPL)
	scenario.Register("relay", buildRelay)
	scenario.Register("sensesend", buildSenseSend)
	scenario.Register("timerbug", buildTimerBug)
	scenario.Register("dma", buildDMACompare)
}

// baseOptions translates the spec's generic node knobs (voltage, kernel,
// logging mode) for the apps that take a config-level base, so sweeping
// e.g. continuous_drain or volts affects every workload, not just blink.
func baseOptions(spec scenario.Spec) *mote.Options {
	o := spec.MoteOptions()
	return &o
}

// noTraffic rejects a traffic shape on apps whose workload is not
// send-driven: failing the build is kinder than silently ignoring the
// field, which would make a sweep axis a no-op.
func noTraffic(spec scenario.Spec, app string) error {
	if spec.Traffic != nil {
		return fmt.Errorf("%s does not honor a traffic shape (supported: bounce, relay, sensesend)", app)
	}
	return nil
}

// noRouting rejects a routed forwarding plane on apps whose wiring is
// fixed — same rationale as noTraffic: a silently inert "routing" sweep
// axis would replicate one behavior under many ConfigKeys.
func noRouting(spec scenario.Spec, app string) error {
	if spec.Routing != "" {
		return fmt.Errorf("%s does not honor routing (supported: relay)", app)
	}
	return nil
}

func buildBlink(spec scenario.Spec) (*scenario.Instance, error) {
	if err := noTraffic(spec, "blink"); err != nil {
		return nil, err
	}
	if err := noRouting(spec, "blink"); err != nil {
		return nil, err
	}
	w := mote.NewWorldQueue(spec.Seed, spec.Queue)
	n := w.AddNode(1, spec.MoteOptions())
	b := NewBlink(n)
	return &scenario.Instance{
		World: w,
		App:   b,
		Metrics: func() map[string]float64 {
			tg := b.Toggles()
			return map[string]float64{
				"toggles_red":   float64(tg[0]),
				"toggles_green": float64(tg[1]),
				"toggles_blue":  float64(tg[2]),
			}
		},
	}, nil
}

// perNodeBattery re-applies the spec's battery knobs for each concrete node
// id, so battery_node_uah overrides land on the right mote in multi-node
// topologies (Base carries node 1's configuration otherwise).
func perNodeBattery(spec scenario.Spec) func(id core.NodeID, o *mote.Options) {
	return func(id core.NodeID, o *mote.Options) {
		spec.ApplyBattery(int(id), o)
	}
}

func buildBounce(spec scenario.Spec) (*scenario.Instance, error) {
	if err := noRouting(spec, "bounce"); err != nil {
		return nil, err
	}
	cfg := DefaultBounceConfig()
	cfg.Base = baseOptions(spec)
	cfg.PerNode = perNodeBattery(spec)
	if spec.Channel != 0 {
		cfg.Channel = spec.Channel
	}
	if spec.HoldTimeUS > 0 {
		cfg.HoldTime = units.Ticks(spec.HoldTimeUS)
	}
	cfg.UseDMA = spec.UseDMA
	cfg.Queue = spec.Queue
	w, err := spec.NewWorld(2)
	if err != nil {
		return nil, err
	}
	cfg.World = w
	srcs, rec, err := spec.TrafficSources([]core.NodeID{cfg.NodeA, cfg.NodeB})
	if err != nil {
		return nil, err
	}
	cfg.Traffic, cfg.TrafficRec = srcs, rec
	b := NewBounce(spec.Seed, cfg)
	if err := spec.ApplySpatial(b.World); err != nil {
		return nil, err
	}
	return &scenario.Instance{
		World:   b.World,
		App:     b,
		Traffic: rec,
		Metrics: func() map[string]float64 {
			recv, sent := b.Stats()
			m := map[string]float64{
				"rx_a": float64(recv[0]), "tx_a": float64(sent[0]),
				"rx_b": float64(recv[1]), "tx_b": float64(sent[1]),
			}
			if spec.Traffic != nil {
				offered, dropped := b.Injections()
				m["injected"] = float64(offered)
				m["inject_dropped"] = float64(dropped)
			}
			return m
		},
	}, nil
}

func buildLPL(spec scenario.Spec) (*scenario.Instance, error) {
	if err := noTraffic(spec, "lpl"); err != nil {
		return nil, err
	}
	if err := noRouting(spec, "lpl"); err != nil {
		return nil, err
	}
	channel := spec.Channel
	if channel == 0 {
		channel = 26
	}
	cfg := DefaultLPLConfig(channel)
	cfg.Base = baseOptions(spec)
	if spec.Volts > 0 {
		cfg.Volts = units.Volts(spec.Volts)
	}
	if spec.CheckPeriodUS > 0 {
		cfg.CheckPeriod = units.Ticks(spec.CheckPeriodUS)
	}
	if spec.ReceiveCheckUS > 0 {
		cfg.ReceiveCheck = units.Ticks(spec.ReceiveCheckUS)
	}
	if spec.FalsePositiveHoldUS > 0 {
		cfg.FalsePositiveHold = units.Ticks(spec.FalsePositiveHoldUS)
	}
	if spec.NoWiFi {
		cfg.WiFi = false
	}
	if spec.WiFiBurstUS > 0 {
		cfg.WiFiBurst = units.Ticks(spec.WiFiBurstUS)
	}
	if spec.WiFiGapUS > 0 {
		cfg.WiFiGap = units.Ticks(spec.WiFiGapUS)
	}
	cfg.Queue = spec.Queue
	l := NewLPL(spec.Seed, cfg)
	return &scenario.Instance{
		World: l.World,
		App:   l,
		Metrics: func() map[string]float64 {
			wake, fps := l.Stats()
			return map[string]float64{
				"wakeups":         float64(wake),
				"false_positives": float64(fps),
				"fp_rate":         l.FalsePositiveRate(),
			}
		},
	}, nil
}

func buildRelay(spec scenario.Spec) (*scenario.Instance, error) {
	cfg := DefaultRelayConfig()
	cfg.Base = baseOptions(spec)
	cfg.PerNode = perNodeBattery(spec)
	if spec.Nodes != 0 {
		if spec.Nodes < 2 {
			return nil, fmt.Errorf("relay needs at least 2 nodes, got %d", spec.Nodes)
		}
		cfg.Hops = spec.Nodes
	}
	if spec.Channel != 0 {
		cfg.Channel = spec.Channel
	}
	if spec.PeriodUS > 0 {
		cfg.Period = units.Ticks(spec.PeriodUS)
	}
	cfg.Origins = spec.Origins
	cfg.Queue = spec.Queue
	cfg.Routing = spec.Routing
	if spec.BeaconPeriodMS > 0 {
		cfg.BeaconPeriod = units.Ticks(spec.BeaconPeriodMS) * units.Millisecond
	}
	w, err := spec.NewWorld(cfg.Hops)
	if err != nil {
		return nil, err
	}
	cfg.World = w
	srcs, rec, err := spec.TrafficSources(RelayOrigins(cfg.Hops, cfg.Origins))
	if err != nil {
		return nil, err
	}
	cfg.Traffic, cfg.TrafficRec = srcs, rec
	r := NewRelay(spec.Seed, cfg)
	if err := spec.ApplySpatial(r.World); err != nil {
		return nil, err
	}
	return &scenario.Instance{
		World:   r.World,
		App:     r,
		Traffic: rec,
		Metrics: func() map[string]float64 {
			gen, del := r.Stats()
			m := map[string]float64{
				"generated": float64(gen),
				"delivered": float64(del),
				"dropped":   float64(r.Dropped()),
			}
			if r.Tree != nil {
				ts := r.Tree.Stats()
				m["net_routed"] = float64(ts.Routed)
				m["net_beacons_tx"] = float64(ts.BeaconsTx)
				m["net_beacons_rx"] = float64(ts.BeaconsRx)
				m["net_beacons_skipped"] = float64(ts.BeaconsSkipped)
				m["net_parent_changes"] = float64(ts.ParentChanges)
				m["net_loop_avoided"] = float64(ts.LoopAvoided)
				m["net_no_route"] = float64(r.NoRoute())
				m["net_ttl_drops"] = float64(r.TTLDrops())
				m["net_last_delivery_us"] = float64(r.LastDeliveredAt())
				m["net_path_etx_mean"] = r.Tree.MeanPathETX()
			}
			return m
		},
	}, nil
}

func buildSenseSend(spec scenario.Spec) (*scenario.Instance, error) {
	if err := noRouting(spec, "sensesend"); err != nil {
		return nil, err
	}
	cfg := DefaultSenseSendConfig()
	cfg.Base = baseOptions(spec)
	cfg.PerNode = perNodeBattery(spec)
	if spec.Channel != 0 {
		cfg.Channel = spec.Channel
	}
	if spec.PeriodUS > 0 {
		cfg.Period = units.Ticks(spec.PeriodUS)
	}
	cfg.Queue = spec.Queue
	w, err := spec.NewWorld(2)
	if err != nil {
		return nil, err
	}
	cfg.World = w
	srcs, rec, err := spec.TrafficSources([]core.NodeID{cfg.SensorNode})
	if err != nil {
		return nil, err
	}
	cfg.Traffic, cfg.TrafficRec = srcs, rec
	s := NewSenseSend(spec.Seed, cfg)
	if err := spec.ApplySpatial(s.World); err != nil {
		return nil, err
	}
	return &scenario.Instance{
		World:   s.World,
		App:     s,
		Traffic: rec,
		Metrics: func() map[string]float64 {
			sent, received := s.Stats()
			m := map[string]float64{
				"reports_sent":     float64(sent),
				"reports_received": float64(received),
				"sensor_reads":     float64(s.Sensor.Sensor.Reads()),
			}
			if spec.Traffic != nil {
				offered, skipped := s.Samples()
				m["samples_offered"] = float64(offered)
				m["samples_skipped"] = float64(skipped)
			}
			return m
		},
	}, nil
}

func buildTimerBug(spec scenario.Spec) (*scenario.Instance, error) {
	if err := noTraffic(spec, "timerbug"); err != nil {
		return nil, err
	}
	if err := noRouting(spec, "timerbug"); err != nil {
		return nil, err
	}
	// The case study's single node is id 32 (as in Figure 15), so its
	// battery override key is "32", not "1".
	opts := spec.MoteOptions()
	spec.ApplyBattery(32, &opts)
	tb := NewTimerBugQueue(spec.Seed, spec.Queue, spec.CalibrateDCO, opts)
	return &scenario.Instance{
		World: tb.World,
		App:   tb,
		Metrics: func() map[string]float64 {
			return map[string]float64{
				"calibration_hz": tb.CalibrationRate(),
				"entries":        float64(len(tb.Node.Log.Entries)),
			}
		},
	}, nil
}

func buildDMACompare(spec scenario.Spec) (*scenario.Instance, error) {
	if err := noTraffic(spec, "dma"); err != nil {
		return nil, err
	}
	if err := noRouting(spec, "dma"); err != nil {
		return nil, err
	}
	payload := spec.PayloadBytes
	if payload <= 0 {
		payload = 30
	}
	startAt := units.Ticks(spec.StartAtUS)
	if startAt <= 0 {
		startAt = 100 * units.Millisecond
	}
	// Per-node base options so battery_node_uah lands on the right mote
	// (sender is node 1, receiver node 2).
	sender := spec.MoteOptions()
	receiver := spec.MoteOptions()
	spec.ApplyBattery(2, &receiver)
	w, err := spec.NewWorld(2)
	if err != nil {
		return nil, err
	}
	d := NewDMACompareWorld(w, spec.UseDMA, payload, startAt, sender, receiver)
	if err := spec.ApplySpatial(d.World); err != nil {
		return nil, err
	}
	return &scenario.Instance{
		World: d.World,
		App:   d,
		Metrics: func() map[string]float64 {
			start, end, ok := d.Timing()
			m := map[string]float64{"completed": 0}
			if ok {
				m["completed"] = 1
				m["send_ms"] = float64(end-start) / 1000
			}
			return m
		},
	}, nil
}
