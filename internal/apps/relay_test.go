package apps

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

func analyzeRelayNode(t *testing.T, r *Relay, n *mote.Node) *analysis.Analysis {
	t.Helper()
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	a, err := analysis.Analyze(tr, r.World.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatalf("analyze node %d: %v", n.ID, err)
	}
	return a
}

func TestRelayDeliversEndToEnd(t *testing.T) {
	r := NewRelay(17, DefaultRelayConfig())
	r.Run(10 * units.Second)
	gen, del := r.Stats()
	if gen < 8 {
		t.Errorf("generated = %d, want ~9-10", gen)
	}
	if del != gen {
		t.Errorf("delivered %d of %d packets", del, gen)
	}
}

func TestRelayChargesAllHopsToOrigin(t *testing.T) {
	r := NewRelay(17, DefaultRelayConfig())
	r.Run(10 * units.Second)
	// Every hop — including the last, which never originates anything —
	// must have CPU time under the origin's Flood activity.
	for i, n := range r.Nodes {
		if i == 0 {
			continue
		}
		a := analyzeRelayNode(t, r, n)
		cpu := a.TimeByActivity()[power.ResCPU][r.Act]
		if cpu <= 0 {
			t.Errorf("hop %d has no CPU time under %v", i, r.Act)
		}
	}
}

func TestRelayNetworkWideFootprint(t *testing.T) {
	r := NewRelay(17, DefaultRelayConfig())
	r.Run(10 * units.Second)

	var analyses []*analysis.Analysis
	for _, n := range r.Nodes {
		analyses = append(analyses, analyzeRelayNode(t, r, n))
	}
	net := analysis.NewNetwork(r.World.Dict, analyses...)

	// The Flood activity's footprint must span every node.
	fp := net.Footprint(r.Act)
	if len(fp) != len(r.Nodes) {
		t.Fatalf("footprint covers %d nodes, want %d: %+v", len(fp), len(r.Nodes), fp)
	}
	// Remote energy (spent off-origin) must be substantial: two of three
	// hops do forwarding work.
	remote := net.RemoteEnergyUJ(r.Act)
	total := net.EnergyByActivity()[r.Act]
	if remote <= 0 || remote >= total {
		t.Errorf("remote = %.1f of %.1f uJ", remote, total)
	}
	// The network report renders.
	rep := net.Report()
	if rep == "" {
		t.Error("empty network report")
	}
}

func TestNetworkEnergyConservation(t *testing.T) {
	r := NewRelay(17, DefaultRelayConfig())
	r.Run(10 * units.Second)
	var analyses []*analysis.Analysis
	var perNodeSum float64
	for _, n := range r.Nodes {
		a := analyzeRelayNode(t, r, n)
		analyses = append(analyses, a)
		perNodeSum += a.TotalEnergyUJ()
	}
	net := analysis.NewNetwork(r.World.Dict, analyses...)
	if got := net.TotalEnergyUJ(); got != perNodeSum {
		t.Errorf("network total %.1f != per-node sum %.1f", got, perNodeSum)
	}
	// Per-activity network totals must sum to the per-node attribution
	// totals.
	var actSum float64
	for _, uj := range net.EnergyByActivity() {
		actSum += uj
	}
	var attribSum float64
	for _, a := range analyses {
		for _, uj := range a.EnergyByActivity() {
			attribSum += uj
		}
	}
	if diff := actSum - attribSum; diff < -1 || diff > 1 {
		t.Errorf("activity sums differ by %.3f uJ", diff)
	}
}

func TestRelayLongerLine(t *testing.T) {
	cfg := DefaultRelayConfig()
	cfg.Hops = 5
	r := NewRelay(23, cfg)
	r.Run(8 * units.Second)
	gen, del := r.Stats()
	if gen == 0 || del != gen {
		t.Errorf("5-hop line: generated %d delivered %d", gen, del)
	}
	// The origin label must appear in the last node's log (4 hops away).
	last := r.Nodes[len(r.Nodes)-1]
	found := false
	for _, e := range last.Log.Entries {
		if e.Type == core.EntryActivityBind && core.Label(e.Val) == r.Act {
			found = true
			break
		}
	}
	if !found {
		t.Error("origin activity never reached the last hop")
	}
}
