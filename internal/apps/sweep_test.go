package apps

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

// TestLPLCheckPeriodSweep sweeps the LPL check period (the knob that trades
// latency for energy in low-power listening) and verifies the expected
// monotonic responses: longer periods mean lower radio duty cycle and lower
// average power, while the false-positive *rate* stays tied to the
// interferer's duty cycle, not the period.
func TestLPLCheckPeriodSweep(t *testing.T) {
	periods := []units.Ticks{250 * units.Millisecond, 500 * units.Millisecond, units.Second}
	var duties, powers, fps []float64
	for _, p := range periods {
		cfg := DefaultLPLConfig(17)
		cfg.CheckPeriod = p
		l := NewLPL(11, cfg)
		l.Run(60 * units.Second)
		tr := analysis.NewNodeTrace(l.Node.ID, l.Node.Log.Entries, l.Node.Meter.PulseEnergy(), l.Node.Volts)
		a, err := analysis.Analyze(tr, l.World.Dict, analysis.DefaultOptions())
		if err != nil {
			t.Fatalf("period %v: %v", p, err)
		}
		duties = append(duties, float64(a.ActiveTimeUS(power.ResRadioReg))/float64(a.Span()))
		powers = append(powers, a.AveragePowerMW())
		fps = append(fps, l.FalsePositiveRate())
	}
	for i := 1; i < len(periods); i++ {
		if duties[i] >= duties[i-1] {
			t.Errorf("duty did not fall with period: %v", duties)
		}
		if powers[i] >= powers[i-1] {
			t.Errorf("power did not fall with period: %v", powers)
		}
	}
	// FP rate is a property of the interferer, not of the check period.
	for i := range fps {
		if fps[i] < 0.08 || fps[i] > 0.35 {
			t.Errorf("fp rate at period %v = %.3f, want ~0.18 regardless of period", periods[i], fps[i])
		}
	}
}

// TestLPLWiFiDutySweep: the false-positive rate tracks the interferer's
// channel occupancy.
func TestLPLWiFiDutySweep(t *testing.T) {
	// Gap means of 45 ms and 10 ms give ~10% and ~33% WiFi duty.
	type pt struct {
		gap  units.Ticks
		want float64
	}
	pts := []pt{
		{45 * units.Millisecond, 0.10},
		{23 * units.Millisecond, 0.179},
		{10 * units.Millisecond, 0.33},
	}
	var rates []float64
	for _, p := range pts {
		cfg := DefaultLPLConfig(17)
		cfg.WiFiGap = p.gap
		l := NewLPL(11, cfg)
		l.Run(80 * units.Second)
		rate := l.FalsePositiveRate()
		rates = append(rates, rate)
		if rate < p.want*0.5 || rate > p.want*1.7 {
			t.Errorf("gap %v: fp rate = %.3f, want ~%.3f", p.gap, rate, p.want)
		}
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Errorf("fp rate not monotonic in interferer duty: %v", rates)
	}
}

// TestBounceHoldTimeControlsThroughput: halving the hold time roughly
// doubles the packet exchange rate.
func TestBounceHoldTimeControlsThroughput(t *testing.T) {
	run := func(hold units.Ticks) uint64 {
		cfg := DefaultBounceConfig()
		cfg.HoldTime = hold
		b := NewBounce(3, cfg)
		b.Run(6 * units.Second)
		recv, _ := b.Stats()
		return recv[0] + recv[1]
	}
	slow := run(400 * units.Millisecond)
	fast := run(200 * units.Millisecond)
	if fast <= slow {
		t.Errorf("faster hold should exchange more packets: fast=%d slow=%d", fast, slow)
	}
	ratio := float64(fast) / float64(slow)
	if ratio < 1.4 || ratio > 2.6 {
		t.Errorf("throughput ratio = %.2f, want ~2", ratio)
	}
}

// TestBlinkEnergyScalesWithDuration: a 24 s Blink uses about half the
// energy of a 48 s one (the workload is periodic and steady on average).
func TestBlinkEnergyScalesWithDuration(t *testing.T) {
	run := func(d units.Ticks) float64 {
		_, n, _ := RunBlink(1, d, defaultMoteOptions())
		return n.Meter.EnergyMicroJoules()
	}
	e24 := run(24 * units.Second)
	e48 := run(48 * units.Second)
	ratio := e48 / e24
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("energy ratio 48s/24s = %.3f, want ~2", ratio)
	}
}

// defaultMoteOptions is a local helper mirroring mote.DefaultOptions without
// re-importing it at every call site.
func defaultMoteOptions() mote.Options { return mote.DefaultOptions() }
