package apps

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/units"
)

func TestBouncePacketsCirculate(t *testing.T) {
	b := NewBounce(3, DefaultBounceConfig())
	b.Run(4 * units.Second)
	recv, sent := b.Stats()
	if recv[0] < 3 || recv[1] < 3 {
		t.Errorf("received = %v, want several packets per node", recv)
	}
	if sent[0] < 3 || sent[1] < 3 {
		t.Errorf("sent = %v, want several packets per node", sent)
	}
}

func TestBounceCrossNodeActivity(t *testing.T) {
	b := NewBounce(3, DefaultBounceConfig())
	b.Run(4 * units.Second)

	// Node A (id 1) must have spent CPU time under node B's (id 4)
	// BounceApp activity: the essence of cross-node tracking.
	nodeA := b.Nodes[0]
	acts := b.Activities()
	remote := acts[1]
	if remote.Origin() != 4 {
		t.Fatalf("expected node B's activity to originate at 4, got %v", remote)
	}
	tr := analysis.NewNodeTrace(nodeA.ID, nodeA.Log.Entries, nodeA.Meter.PulseEnergy(), nodeA.Volts)
	a, err := analysis.Analyze(tr, b.World.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	times := a.TimeByActivity()
	cpu := times[power.ResCPU]
	if cpu[remote] <= 0 {
		t.Errorf("node 1 CPU time under 4:BounceApp = %d us, want > 0", cpu[remote])
	}
	// LED1 lights only while holding the remote packet, so its time under
	// the remote activity should be substantial.
	led1 := times[power.ResLED1]
	if led1[remote] < int64(100*units.Millisecond) {
		t.Errorf("node 1 LED1 time under 4:BounceApp = %d us, want >= 100ms", led1[remote])
	}
}

func TestBounceHiddenFieldCarriesLabel(t *testing.T) {
	b := NewBounce(9, DefaultBounceConfig())
	b.Run(2 * units.Second)
	// Bind entries on node 1's CPU must reference node 4's activity.
	nodeA := b.Nodes[0]
	var sawRemoteBind bool
	for _, e := range nodeA.Log.Entries {
		if e.Type == core.EntryActivityBind && core.Label(e.Val).Origin() == 4 {
			sawRemoteBind = true
			break
		}
	}
	if !sawRemoteBind {
		t.Error("no bind to a node-4 activity found on node 1; the hidden AM field is not propagating")
	}
}

func TestBounceDeterminism(t *testing.T) {
	b1 := NewBounce(5, DefaultBounceConfig())
	b1.Run(2 * units.Second)
	b2 := NewBounce(5, DefaultBounceConfig())
	b2.Run(2 * units.Second)
	a := b1.Nodes[0].Log.Entries
	bb := b2.Nodes[0].Log.Entries
	if len(a) != len(bb) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(bb))
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], bb[i])
		}
	}
}
