package apps

import (
	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/traffic"
	"repro/internal/units"
)

// BounceAMType is the Active Message type Bounce traffic uses.
const BounceAMType uint8 = 7

// Bounce is the paper's cross-node tracking example (Section 4.2.2): two
// nodes exchange two packets, each packet originating from one of the nodes
// and perpetually bouncing between them. All work a node performs for a
// packet — reception, holding it (with an LED lit), and retransmission — is
// charged to the packet's original activity, even on the other node.
//
// LED assignment follows the paper: LED1 is lit while the node holds the
// packet of the *other* node's activity, LED2 while it holds its own.
type Bounce struct {
	World *mote.World
	Nodes [2]*mote.Node

	// HoldTime is how long a node keeps a packet before sending it back.
	HoldTime units.Ticks

	acts [2]core.Label

	received [2]uint64
	sent     [2]uint64
	// Shaped-load injection counters (single-writer per node, summed by the
	// accessors): packets the traffic schedule offered, and the subset
	// dropped because the node's radio was still transmitting.
	injected    [2]uint64
	injectDrops [2]uint64
}

// BounceConfig parameterizes the run.
type BounceConfig struct {
	NodeA, NodeB core.NodeID
	Channel      int
	HoldTime     units.Ticks
	UseDMA       bool
	// Base, when set, seeds each node's mote options (voltage, kernel,
	// logging mode) before the radio wiring is applied; nil selects
	// mote.DefaultOptions.
	Base *mote.Options
	// PerNode, when set, adjusts each node's options after Base is copied
	// (called with NodeA's and NodeB's ids).
	PerNode func(id core.NodeID, o *mote.Options)
	// Queue selects the simulator event queue ("" or "wheel": timer wheel;
	// "heap": the legacy binary-heap baseline). Results are identical.
	Queue string
	// World, when set, is the pre-built (possibly partitioned) world to
	// populate; nil builds a serial world from seed and Queue.
	World *mote.World
	// Traffic, when non-nil, replaces the two boot kicks with shaped packet
	// injection: slot 0 drives NodeA, slot 1 NodeB, and every scheduled
	// injection starts a fresh packet bouncing (dropped while the node's
	// radio is still transmitting), so offered load controls the bouncing
	// population instead of it being pinned at two.
	Traffic []traffic.Source
	// TrafficRec, when non-nil, captures each node's realized injections.
	TrafficRec *traffic.Recorder
}

// DefaultBounceConfig matches the paper's setup: nodes 1 and 4.
func DefaultBounceConfig() BounceConfig {
	return BounceConfig{
		NodeA:    1,
		NodeB:    4,
		Channel:  26,
		HoldTime: 220 * units.Millisecond,
	}
}

// NewBounce builds a two-node world running Bounce.
func NewBounce(seed uint64, cfg BounceConfig) *Bounce {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 220 * units.Millisecond
	}
	w := cfg.World
	if w == nil {
		w = mote.NewWorldQueue(seed, cfg.Queue)
	}
	b := &Bounce{World: w, HoldTime: cfg.HoldTime}

	ids := [2]core.NodeID{cfg.NodeA, cfg.NodeB}
	for i, id := range ids {
		opts := mote.DefaultOptions()
		if cfg.Base != nil {
			opts = *cfg.Base
		}
		if cfg.PerNode != nil {
			cfg.PerNode(id, &opts)
		}
		opts.Radio = true
		opts.RadioConfig = radio.Config{Channel: cfg.Channel, UseDMA: cfg.UseDMA}
		b.Nodes[i] = w.AddNode(id, opts)
	}

	for i := range b.Nodes {
		b.setup(&cfg, i, ids[1-i])
	}
	return b
}

func (b *Bounce) setup(cfg *BounceConfig, i int, peer core.NodeID) {
	n := b.Nodes[i]
	k := n.K
	b.acts[i] = k.DefineActivity("BounceApp")

	n.AM.Register(BounceAMType, func(p *am.Packet) {
		// Handler runs with the CPU already bound to the packet's
		// originating activity; everything below inherits it.
		b.received[i]++
		led := 2
		if p.Label().Origin() != n.ID {
			led = 1
		}
		n.LEDs.On(led)
		hold := k.NewTimer(func() {
			// The timer restored the packet's activity; send it onward and
			// turn the LED off when the radio is done.
			out := &am.Packet{Dest: peer, Type: BounceAMType, Payload: p.Payload}
			n.AM.Send(out, func() {
				n.LEDs.Off(led)
				b.sent[i]++
			})
		})
		hold.StartOneShot(b.HoldTime)
	})

	k.Boot(func() {
		k.CPUAct.Set(b.acts[i])
		n.Radio.TurnOn(func() {
			n.Radio.StartListening()
			if cfg.Traffic != nil {
				// Shaped load: inject fresh packets on the node's schedule
				// instead of the single kick. Each injection that finds the
				// radio free starts another packet bouncing forever, so the
				// steady-state population tracks the offered rate.
				var rec func(units.Ticks)
				if cfg.TrafficRec != nil {
					rec = cfg.TrafficRec.Hook(i)
				}
				traffic.Drive(k, cfg.Traffic[i], rec, func() {
					b.injected[i]++
					if n.Radio.Busy() {
						b.injectDrops[i]++
						return
					}
					out := &am.Packet{Dest: peer, Type: BounceAMType, Payload: make([]byte, 12)}
					n.AM.Send(out, func() { b.sent[i]++ })
				})
				return
			}
			// Each node originates one packet, offset so the two packets
			// interleave.
			kick := k.NewTimer(func() {
				out := &am.Packet{Dest: peer, Type: BounceAMType, Payload: make([]byte, 12)}
				n.AM.Send(out, func() { b.sent[i]++ })
			})
			kick.StartOneShot(units.Ticks(50+100*i) * units.Millisecond)
		})
		k.CPUAct.SetIdle()
	})
}

// Injections returns shaped-load injection counts: packets the traffic
// schedule offered across both nodes, and the subset dropped at a busy
// radio. Both are zero for the classic two-packet run.
func (b *Bounce) Injections() (offered, dropped uint64) {
	return b.injected[0] + b.injected[1], b.injectDrops[0] + b.injectDrops[1]
}

// Stats returns per-node received/sent counts.
func (b *Bounce) Stats() (received, sent [2]uint64) { return b.received, b.sent }

// Activities returns the two BounceApp labels.
func (b *Bounce) Activities() [2]core.Label { return b.acts }

// Run advances the world and stamps the end.
func (b *Bounce) Run(d units.Ticks) {
	b.World.Run(d)
	b.World.StampEnd()
}
