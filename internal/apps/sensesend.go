package apps

import (
	"encoding/binary"

	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/traffic"
	"repro/internal/units"
)

// SenseAMType is the Active Message type carrying sensor reports.
const SenseAMType uint8 = 11

// SenseSend reproduces the sense-and-send application excerpted in Figure 7:
// a periodic task samples humidity and temperature under dedicated
// activities (ACT_HUM, ACT_TEMP), then ships the readings in a packet under
// ACT_PKT. A base-station node receives the reports; because the packet
// carries the activity label, the base station's reception work is charged
// to the sensing node's ACT_PKT activity.
type SenseSend struct {
	World *mote.World
	// Sensor is the sampling node, Base the sink.
	Sensor, Base *mote.Node

	ActHum, ActTemp, ActPkt core.Label

	humidity, temperature uint16
	sensingDone           int
	sampling              bool
	reportsSent           uint64
	reportsReceived       uint64
	// Shaped-load counters: samples the traffic schedule offered, and the
	// subset skipped because the previous sample was still in flight (the
	// sensor's natural backpressure at high offered rates).
	sampleOffered uint64
	sampleSkipped uint64
}

// SenseSendConfig parameterizes the application.
type SenseSendConfig struct {
	SensorNode, BaseNode core.NodeID
	Channel              int
	Period               units.Ticks
	// Base, when set, seeds each node's mote options before the radio
	// wiring is applied; nil selects mote.DefaultOptions.
	Base *mote.Options
	// PerNode, when set, adjusts each node's options after Base is copied
	// (called with SensorNode's and BaseNode's ids).
	PerNode func(id core.NodeID, o *mote.Options)
	// Queue selects the simulator event queue ("" or "wheel": timer wheel;
	// "heap": the legacy binary-heap baseline). Results are identical.
	Queue string
	// World, when set, is the pre-built (possibly partitioned) world to
	// populate; nil builds a serial world from seed and Queue.
	World *mote.World
	// Traffic, when non-nil, replaces the fixed sampling period with a
	// shaped schedule (one slot: the sensor node). A scheduled sample that
	// arrives while the previous one is still reading or sending is
	// skipped and counted, not queued.
	Traffic []traffic.Source
	// TrafficRec, when non-nil, captures the sensor's realized samples.
	TrafficRec *traffic.Recorder
}

// DefaultSenseSendConfig samples every 5 seconds.
func DefaultSenseSendConfig() SenseSendConfig {
	return SenseSendConfig{SensorNode: 2, BaseNode: 1, Channel: 26, Period: 5 * units.Second}
}

// NewSenseSend builds the two-node world.
func NewSenseSend(seed uint64, cfg SenseSendConfig) *SenseSend {
	if cfg.Period == 0 {
		cfg.Period = 5 * units.Second
	}
	w := cfg.World
	if w == nil {
		w = mote.NewWorldQueue(seed, cfg.Queue)
	}
	s := &SenseSend{World: w}

	mkOpts := func(id core.NodeID) mote.Options {
		o := mote.DefaultOptions()
		if cfg.Base != nil {
			o = *cfg.Base
		}
		if cfg.PerNode != nil {
			cfg.PerNode(id, &o)
		}
		o.Radio = true
		o.RadioConfig = radio.Config{Channel: cfg.Channel}
		return o
	}
	s.Sensor = w.AddNode(cfg.SensorNode, mkOpts(cfg.SensorNode))
	s.Base = w.AddNode(cfg.BaseNode, mkOpts(cfg.BaseNode))

	k := s.Sensor.K
	s.ActHum = k.DefineActivity("ACT_HUM")
	s.ActTemp = k.DefineActivity("ACT_TEMP")
	s.ActPkt = k.DefineActivity("ACT_PKT")

	// Base station: radio always listening; count reports.
	s.Base.AM.Register(SenseAMType, func(p *am.Packet) {
		s.reportsReceived++
		s.Base.LEDs.Toggle(1)
	})
	s.Base.K.Boot(func() {
		s.Base.Radio.TurnOn(func() {
			s.Base.Radio.StartListening()
		})
	})

	// Sensor node: periodic sample-and-send, the Figure 7 sensorTask.
	k.Boot(func() {
		if cfg.Traffic != nil {
			// Shaped load: the sampling schedule comes from the traffic
			// engine, armed once the radio reaches idle so an aggressive
			// shape cannot offer samples to a half-booted transceiver. A
			// sample landing while the previous one is still in flight is
			// skipped — the sensor has one conversion pipeline, so offered
			// load beyond it is backpressure, not a queue.
			var rec func(units.Ticks)
			if cfg.TrafficRec != nil {
				rec = cfg.TrafficRec.Hook(0)
			}
			s.Sensor.Radio.TurnOn(func() {
				traffic.Drive(k, cfg.Traffic[0], rec, func() {
					s.sampleOffered++
					if s.sampling {
						s.sampleSkipped++
						return
					}
					s.sampling = true
					s.sensorTask(cfg.BaseNode)
				})
			})
			k.CPUAct.SetIdle()
			return
		}
		s.Sensor.Radio.TurnOn(nil)
		t := k.NewTimer(func() { s.sensorTask(cfg.BaseNode) })
		t.StartPeriodic(cfg.Period)
		k.CPUAct.SetIdle()
	})
	return s
}

// sensorTask mirrors the paper's excerpt: paint the CPU, read humidity;
// paint again, read temperature; when both are done, switch to the packet
// activity and post the send.
func (s *SenseSend) sensorTask(base core.NodeID) {
	k := s.Sensor.K
	k.CPUAct.Set(s.ActHum)
	s.Sensor.Sensor.ReadHumidity(func(raw uint16) {
		s.humidity = raw
		s.sensingDone++
		s.sendIfDone(base)
	})
	k.CPUAct.Set(s.ActTemp)
	s.Sensor.Sensor.ReadTemperature(func(raw uint16) {
		s.temperature = raw
		s.sensingDone++
		s.sendIfDone(base)
	})
}

func (s *SenseSend) sendIfDone(base core.NodeID) {
	if s.sensingDone < 2 {
		return
	}
	s.sensingDone = 0
	k := s.Sensor.K
	k.CPUAct.Set(s.ActPkt)
	k.Post(func() {
		payload := make([]byte, 4)
		binary.LittleEndian.PutUint16(payload[0:], s.humidity)
		binary.LittleEndian.PutUint16(payload[2:], s.temperature)
		p := &am.Packet{Dest: base, Type: SenseAMType, Payload: payload}
		s.Sensor.AM.Send(p, func() {
			s.reportsSent++
			s.sampling = false
			k.CPUAct.SetIdle()
		})
	})
}

// Samples returns shaped-load sampling counts: samples the traffic schedule
// offered and the subset skipped because the previous sample was still in
// flight. Both are zero for the classic fixed-period run.
func (s *SenseSend) Samples() (offered, skipped uint64) {
	return s.sampleOffered, s.sampleSkipped
}

// Stats returns sent and received report counts.
func (s *SenseSend) Stats() (sent, received uint64) {
	return s.reportsSent, s.reportsReceived
}

// Run advances the world and stamps the end.
func (s *SenseSend) Run(d units.Ticks) {
	s.World.Run(d)
	s.World.StampEnd()
}
