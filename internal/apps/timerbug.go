package apps

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mote"
	"repro/internal/units"
)

// TimerBug reproduces the paper's second case study (Figure 15): a trivial
// timer-driven application whose Quanto trace revealed that TimerA1 fires
// sixteen times per second to calibrate the digital oscillator — even though
// nothing in the application needs asynchronous serial communication. The
// kernel enables DCO calibration by default, exactly as TinyOS did, so the
// "surprise" shows up unless the application explicitly disables it.
type TimerBug struct {
	World *mote.World
	Node  *mote.Node

	ActA, ActB core.Label
}

// NewTimerBug builds a single-node world (node id 32, as in the figure)
// running two LED activities. calibrate selects whether the DCO calibration
// timer is left on (the buggy default) or disabled (the fix). An optional
// base overrides the node's mote options (voltage, logging mode).
func NewTimerBug(seed uint64, calibrate bool, base ...mote.Options) *TimerBug {
	return NewTimerBugQueue(seed, "", calibrate, base...)
}

// NewTimerBugQueue is NewTimerBug with an explicit event-queue selection.
func NewTimerBugQueue(seed uint64, queue string, calibrate bool, base ...mote.Options) *TimerBug {
	w := mote.NewWorldQueue(seed, queue)
	opts := mote.DefaultOptions()
	if len(base) > 0 {
		opts = base[0]
	}
	if opts.Kernel == (kernel.Options{}) {
		opts.Kernel = kernel.DefaultOptions()
	}
	opts.Kernel.CalibrateDCO = calibrate
	n := w.AddNode(32, opts)

	tb := &TimerBug{World: w, Node: n}
	k := n.K
	tb.ActA = k.DefineActivity("ActA")
	tb.ActB = k.DefineActivity("ActB")

	k.Boot(func() {
		ta := k.NewTimer(func() { n.LEDs.Toggle(0) })
		tb2 := k.NewTimer(func() { n.LEDs.Toggle(2) })
		k.CPUAct.Set(tb.ActA)
		ta.StartPeriodic(250 * units.Millisecond)
		k.CPUAct.Set(tb.ActB)
		tb2.StartPeriodic(500 * units.Millisecond)
		k.CPUAct.SetIdle()
	})
	return tb
}

// Run advances the world and stamps the end.
func (t *TimerBug) Run(d units.Ticks) {
	t.World.Run(d)
	t.World.StampEnd()
}

// CalibrationRate counts int_TIMERA1 activity entries in the log and returns
// the observed firing rate in hertz — the number Quanto surprised the TinyOS
// developers with (16 Hz).
func (t *TimerBug) CalibrationRate() float64 {
	entries := t.Node.Log.Entries
	if len(entries) < 2 {
		return 0
	}
	var fires int
	var target core.Label
	//quanto:ordered at most one label carries this (name, origin) pair, so the search result is order-independent
	for l, name := range t.World.Dict.Activities {
		if name == "int_TIMERA1" && l.Origin() == t.Node.ID {
			target = l
		}
	}
	if target == 0 {
		return 0
	}
	for _, e := range entries {
		if e.Type == core.EntryActivitySet && core.Label(e.Val) == target {
			fires++
		}
	}
	span := units.Ticks(int64(entries[len(entries)-1].Time) - int64(entries[0].Time))
	if span <= 0 {
		return 0
	}
	return float64(fires) / span.Seconds()
}
