// Package apps contains the applications the paper uses to evaluate Quanto:
// Blink and Bounce (Section 4.2), the sense-and-send application of
// Figure 7, and the three case studies of Section 4.3 (low-power listening
// under 802.11 interference, the surprise DCO-calibration timer, and
// DMA-versus-interrupt radio communication).
package apps

import (
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/units"
)

// Blink is TinyOS's hello-world: three independent timers with 1, 2 and 4 s
// intervals toggle the red, green and blue LEDs, cycling through all eight
// LED combinations every 8 seconds. Instrumented for Quanto, each LED's
// work runs under its own activity (Red, Green, Blue), matching
// Section 4.2.1.
type Blink struct {
	Node *mote.Node

	Red, Green, Blue core.Label

	toggles [3]uint64
}

// NewBlink wires Blink onto a node; timers start at boot.
func NewBlink(n *mote.Node) *Blink {
	b := &Blink{Node: n}
	k := n.K
	b.Red = k.DefineActivity("Red")
	b.Green = k.DefineActivity("Green")
	b.Blue = k.DefineActivity("Blue")

	k.Boot(func() {
		// "Paint" the CPU before starting each timer so the virtual timer
		// subsystem captures the right activity and restores it on every
		// fire (Figure 7's pattern).
		t0 := k.NewTimer(func() { b.toggles[0]++; n.LEDs.Toggle(0) })
		t1 := k.NewTimer(func() { b.toggles[1]++; n.LEDs.Toggle(1) })
		t2 := k.NewTimer(func() { b.toggles[2]++; n.LEDs.Toggle(2) })

		k.CPUAct.Set(b.Red)
		t0.StartPeriodic(1 * units.Second)
		k.CPUAct.Set(b.Green)
		t1.StartPeriodic(2 * units.Second)
		k.CPUAct.Set(b.Blue)
		t2.StartPeriodic(4 * units.Second)
		k.CPUAct.SetIdle()
	})
	return b
}

// Toggles reports how many times each LED was toggled.
func (b *Blink) Toggles() [3]uint64 { return b.toggles }

// RunBlink builds a single-node world, runs Blink for the given duration,
// and stamps the end of the trace. It returns the world, node and app for
// analysis. The paper's canonical run is 48 seconds.
func RunBlink(seed uint64, duration units.Ticks, opts mote.Options) (*mote.World, *mote.Node, *Blink) {
	w := mote.NewWorld(seed)
	n := w.AddNode(1, opts)
	b := NewBlink(n)
	w.Run(duration)
	w.StampEnd()
	return w, n, b
}
