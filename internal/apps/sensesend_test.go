package apps

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/power"
	"repro/internal/units"
)

func TestSenseSendActivityEnergySplit(t *testing.T) {
	s := NewSenseSend(21, DefaultSenseSendConfig())
	s.Run(30 * units.Second)

	tr := analysis.NewNodeTrace(s.Sensor.ID, s.Sensor.Log.Entries, s.Sensor.Meter.PulseEnergy(), s.Sensor.Volts)
	a, err := analysis.Analyze(tr, s.World.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byAct := a.EnergyByActivity()

	hum, temp, pkt := byAct[s.ActHum], byAct[s.ActTemp], byAct[s.ActPkt]
	if hum <= 0 || temp <= 0 || pkt <= 0 {
		t.Fatalf("energies: hum=%.2f temp=%.2f pkt=%.2f, want all positive", hum, temp, pkt)
	}
	// The temperature conversion (75 ms) is longer than humidity (55 ms),
	// so ACT_TEMP must cost more than ACT_HUM.
	if temp <= hum {
		t.Errorf("temp energy %.2f <= hum energy %.2f; conversion times say otherwise", temp, hum)
	}
}

func TestSenseSendSensorTimeAttribution(t *testing.T) {
	s := NewSenseSend(21, DefaultSenseSendConfig())
	s.Run(30 * units.Second)
	tr := analysis.NewNodeTrace(s.Sensor.ID, s.Sensor.Log.Entries, s.Sensor.Meter.PulseEnergy(), s.Sensor.Volts)
	a, err := analysis.Analyze(tr, s.World.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 6 sampling rounds in 30 s at 5 s period (minus edge effects): the
	// sensor device should carry ACT_HUM for ~55 ms per round and ACT_TEMP
	// for ~75 ms per round.
	times := a.TimeByActivity()[power.ResSensor]
	humMS := float64(times[s.ActHum]) / 1000
	tempMS := float64(times[s.ActTemp]) / 1000
	if humMS < 4*55 || humMS > 7*56 {
		t.Errorf("sensor time under ACT_HUM = %.1f ms, want ~5x55", humMS)
	}
	if tempMS < 4*75 || tempMS > 7*76 {
		t.Errorf("sensor time under ACT_TEMP = %.1f ms, want ~5x75", tempMS)
	}
}

func TestSenseSendBaseStationChargedToSenderActivity(t *testing.T) {
	s := NewSenseSend(21, DefaultSenseSendConfig())
	s.Run(30 * units.Second)
	trB := analysis.NewNodeTrace(s.Base.ID, s.Base.Log.Entries, s.Base.Meter.PulseEnergy(), s.Base.Volts)
	aB, err := analysis.Analyze(trB, s.World.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The base station's LED toggling and reception processing run under
	// the sensor node's ACT_PKT.
	cpu := aB.TimeByActivity()[power.ResCPU]
	if cpu[s.ActPkt] <= 0 {
		t.Error("base station has no CPU time under the sender's ACT_PKT")
	}
	// Cross-check the label renders with the sensing node's origin.
	name := s.World.Dict.LabelName(s.ActPkt)
	if !strings.HasPrefix(name, "2:") {
		t.Errorf("ACT_PKT renders as %q, want origin prefix 2:", name)
	}
}
