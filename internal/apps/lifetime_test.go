package apps

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// TestRelayCascadeAfterUpstreamDeath pins the acceptance scenario for the
// energy-budget layer: in a 3-hop relay line where only the middle hop has a
// finite battery, the middle hop depletes mid-run (it listens constantly and
// forwards every packet), and from that instant the sink — which is still
// perfectly healthy — receives nothing more. The death of one node changes
// the network's behavior, not just its accounting.
func TestRelayCascadeAfterUpstreamDeath(t *testing.T) {
	const dur = 60 * units.Second
	run := func(batteryNode2 float64) (*scenario.Result, *Relay, *scenario.Instance) {
		spec := scenario.Spec{
			App:        "relay",
			Seed:       3,
			DurationUS: int64(dur),
			Nodes:      3,
			PeriodUS:   int64(units.Second),
		}
		if batteryNode2 > 0 {
			spec.BatteryNodeUAH = map[string]float64{"2": batteryNode2}
		}
		in, err := scenario.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		in.Run()
		r, err := in.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return r, in.App.(*Relay), in
	}

	// Baseline: infinite supplies, essentially every packet delivered.
	_, baseRelay, _ := run(0)
	baseGen, baseDel := baseRelay.Stats()
	if baseDel < baseGen-2 || baseDel == 0 {
		t.Fatalf("baseline relay unhealthy: generated %d, delivered %d", baseGen, baseDel)
	}

	// Starved: node 2 gets ~100 uAh; at ~19 mA listen draw it dies in
	// roughly 18 s.
	res, relay, in := run(100)
	n2 := in.World.Node(2)
	diedAt, died := n2.DiedAt()
	if !died {
		t.Fatal("middle hop did not deplete")
	}
	if diedAt <= 0 || diedAt >= dur {
		t.Fatalf("implausible death time %v", diedAt)
	}
	for _, id := range []core.NodeID{1, 3} {
		if n := in.World.Node(id); !n.Alive() {
			t.Fatalf("node %d should have survived", id)
		}
	}

	gen, del := relay.Stats()
	if gen < baseGen-2 {
		t.Fatalf("origin should keep generating after the cascade: %d vs baseline %d", gen, baseGen)
	}
	if del >= baseDel/2 {
		t.Fatalf("sink deliveries did not collapse: %d of baseline %d", del, baseDel)
	}
	// Deliveries that did happen must all predate the death: the sink
	// toggles LED1 per delivery, so its log must hold no LED1 edge after
	// the death instant.
	sink := in.World.Node(3)
	for _, e := range sink.Log.Entries {
		if e.Res == power.ResLED1 && int64(e.Time) > int64(diedAt)+int64(units.Second) {
			t.Fatalf("sink delivered at %d us, after upstream death at %d us", e.Time, diedAt)
		}
	}

	// The Result carries the lifetime view: node 2 died with zero margin,
	// nodes 1/3 have no battery fields.
	if res.Deaths != 1 || res.FirstDeathUS != int64(diedAt) {
		t.Fatalf("result deaths=%d first=%d, want 1 at %d", res.Deaths, res.FirstDeathUS, diedAt)
	}
	for _, nr := range res.Nodes {
		switch nr.Node {
		case 2:
			if !nr.Died || nr.DiedAtUS != int64(diedAt) || nr.LifetimeUS != int64(diedAt) || nr.MarginFrac != 0 {
				t.Fatalf("node 2 lifetime fields wrong: %+v", nr)
			}
		default:
			if nr.BatteryUAH != 0 || nr.Died {
				t.Fatalf("node %d should have no battery outcome: %+v", nr.Node, nr)
			}
		}
	}
}

// lifetimeMatrix is the acceptance sweep: battery capacity × LPL check
// period, replicated across seeds.
func lifetimeMatrix(seeds int) *scenario.Matrix {
	return &scenario.Matrix{
		Base: scenario.Spec{
			App:        "lpl",
			Seed:       5,
			DurationUS: int64(30 * units.Second),
			Channel:    17,
		},
		Sweep: map[string][]any{
			"battery_uah":     {4.0, 8.0},
			"check_period_us": {int64(250 * units.Millisecond), int64(500 * units.Millisecond)},
		},
		Seeds: seeds,
	}
}

// TestLifetimeSweepWorkerInvariance pins the acceptance criterion: a
// battery-capacity × LPL-interval matrix produces per-node lifetimes with
// CI95 bounds, byte-identical for any worker count.
func TestLifetimeSweepWorkerInvariance(t *testing.T) {
	specs, err := lifetimeMatrix(4).Expand()
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(results []*scenario.Result) string {
		var sb strings.Builder
		enc := json.NewEncoder(&sb)
		for _, r := range results {
			if r.Error != "" {
				t.Fatalf("run %d failed: %s", r.Run, r.Error)
			}
			if err := enc.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Encode(scenario.Aggregate(results)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(scenario.Lifetimes(results)); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	one := marshal((&scenario.Runner{Workers: 1}).Run(specs))
	eight := marshal((&scenario.Runner{Workers: 8}).Run(specs))
	if one != eight {
		t.Fatal("lifetime sweep output differs between -workers 1 and -workers 8")
	}
}

// TestLifetimeSweepProducesCI95 checks the aggregate carries a seed-spread
// lifetime statistic per configuration: every group has lifetime_us:node1
// with one sample per seed, and at least one configuration shows genuine
// cross-seed spread (nonzero CI95) — LPL death times depend on the
// interference pattern, which the seed drives.
func TestLifetimeSweepProducesCI95(t *testing.T) {
	const seeds = 4
	specs, err := lifetimeMatrix(seeds).Expand()
	if err != nil {
		t.Fatal(err)
	}
	results := (&scenario.Runner{}).Run(specs)
	ag := scenario.Aggregate(results)
	groups := ag.Groups()
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4 (2 capacities x 2 periods)", len(groups))
	}
	anySpread := false
	for _, g := range groups {
		st := g.Stat("lifetime_us:node1")
		if st == nil {
			t.Fatalf("group %s lacks lifetime_us:node1 (metrics: %v)", g.Key, g.Metrics())
		}
		if st.N() != seeds {
			t.Fatalf("group %s lifetime stat has %d samples, want %d", g.Key, st.N(), seeds)
		}
		if st.CI95() > 0 {
			anySpread = true
		}
		if d := g.Stat("deaths"); d == nil || d.N() != seeds {
			t.Fatalf("group %s lacks a per-replica deaths stat", g.Key)
		}
	}
	if !anySpread {
		t.Fatal("no configuration shows cross-seed lifetime spread; CI95 meaningless")
	}

	// The lifetime report mirrors the same fold per node.
	lr := scenario.Lifetimes(results)
	if lr.Empty() {
		t.Fatal("lifetime report empty for a battery sweep")
	}
	if !strings.Contains(lr.Render(), "node") {
		t.Fatal("lifetime render missing table header")
	}
}

// TestHarvestSweepKnob: the declarative harvest block reaches the power
// layer — a harvested LPL node outlives an identical unharvested one.
func TestHarvestSweepKnob(t *testing.T) {
	base := scenario.Spec{
		App:        "lpl",
		Seed:       9,
		DurationUS: int64(40 * units.Second),
		Channel:    26,
		NoWiFi:     true,
		BatteryUAH: 4,
	}
	plain := scenario.RunSpec(base)
	if plain.Error != "" {
		t.Fatal(plain.Error)
	}
	harvested := base
	harvested.Harvest = &scenario.HarvestSpec{Profile: "constant", UA: 700}
	helped := scenario.RunSpec(harvested)
	if helped.Error != "" {
		t.Fatal(helped.Error)
	}
	pl, hl := plain.Nodes[0], helped.Nodes[0]
	if !pl.Died {
		t.Fatal("unharvested node should die within the run")
	}
	if hl.Died && hl.LifetimeUS <= pl.LifetimeUS {
		t.Fatalf("harvest did not extend life: %d -> %d us", pl.LifetimeUS, hl.LifetimeUS)
	}
}

// TestBatteryNodeOverridesReachEveryTopology: battery_node_uah keys follow
// each app's real node ids — dma's receiver is node 2, timerbug's single
// node is the figure's id 32 — so a per-node override must land on exactly
// that mote and nowhere else.
func TestBatteryNodeOverridesReachEveryTopology(t *testing.T) {
	r := scenario.RunSpec(scenario.Spec{
		App:            "dma",
		DurationUS:     int64(2 * units.Second),
		BatteryNodeUAH: map[string]float64{"2": 5000},
	})
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	for _, nr := range r.Nodes {
		switch nr.Node {
		case 1:
			if nr.BatteryUAH != 0 {
				t.Fatalf("dma sender should have infinite supply: %+v", nr)
			}
		case 2:
			if nr.BatteryUAH != 5000 {
				t.Fatalf("dma receiver battery = %v, want 5000", nr.BatteryUAH)
			}
		}
	}

	r = scenario.RunSpec(scenario.Spec{
		App:            "timerbug",
		DurationUS:     int64(2 * units.Second),
		BatteryNodeUAH: map[string]float64{"32": 5000},
	})
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	if len(r.Nodes) != 1 || r.Nodes[0].Node != 32 || r.Nodes[0].BatteryUAH != 5000 {
		t.Fatalf("timerbug node-32 battery override missed: %+v", r.Nodes)
	}
}

// TestDeathPolicyHaltWorld: under halt-world the run ends at the first
// death, so the surviving nodes' spans truncate there too.
func TestDeathPolicyHaltWorld(t *testing.T) {
	spec := scenario.Spec{
		App:            "relay",
		Seed:           3,
		DurationUS:     int64(60 * units.Second),
		Nodes:          3,
		PeriodUS:       int64(units.Second),
		BatteryNodeUAH: map[string]float64{"2": 50},
		DeathPolicy:    scenario.DeathPolicyHaltWorld,
	}
	r := scenario.RunSpec(spec)
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	if r.Deaths != 1 {
		t.Fatalf("deaths = %d, want 1", r.Deaths)
	}
	if r.SpanUS > r.FirstDeathUS+int64(units.Second) {
		t.Fatalf("world ran on after halt-world death: span %d, death %d", r.SpanUS, r.FirstDeathUS)
	}
}
