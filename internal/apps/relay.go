package apps

import (
	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/net"
	"repro/internal/radio"
	"repro/internal/traffic"
	"repro/internal/units"
)

// RelayAMType is the Active Message type of relayed traffic.
const RelayAMType uint8 = 13

// Relay is a multihop line network demonstrating the paper's "butterfly
// effect" tracking (Section 5.3): a packet originated at the first node is
// forwarded hop by hop to the last, and every hop's work — reception,
// queueing, retransmission, radio time — is charged to the origin's
// activity, because the label rides the packet across every hop.
//
// Forwarding uses an instrumented queue: the saved activity is restored when
// the queued packet is serviced, the paper's "forwarding queues in
// protocols" instrumentation point.
type Relay struct {
	World *mote.World
	Nodes []*mote.Node

	Act core.Label // the first origin's activity ("Flood")

	// Tree is the collection tree routing the packets in collect mode
	// (Routing set); nil on the classic fixed chain.
	Tree *net.Tree

	period units.Ticks
	// generated/dropped are per-node slots (indexed by line position), not
	// shared counters: under a partitioned world each node's events run on
	// its partition's goroutine during parallel windows, so every counter an
	// app touches from node context must be single-writer. The accessors sum.
	generated []uint64
	dropped   []uint64
	delivered uint64

	// Collect-mode slots (same single-writer discipline): packets dropped
	// for want of a route, packets whose TTL expired (a transient routing
	// loop), and the sink-side timestamp of the last delivery.
	noRoute         []uint64
	ttlDrops        []uint64
	lastDeliveredAt units.Ticks
}

// RelayConfig parameterizes the line network.
type RelayConfig struct {
	Hops    int // number of nodes in the line (>= 2)
	Channel int
	Period  units.Ticks // packet generation period at each origin
	// Origins is how many nodes at the head of the line generate traffic
	// (nodes 1..Origins, each sending toward the line's end); 0 selects the
	// classic single origin. More origins spread offered load across the
	// topology — the workload shape that gives a partitioned world parallel
	// work.
	Origins int
	// World, when set, is the pre-built (possibly partitioned) world to
	// populate; nil builds a serial world from seed and Queue.
	World *mote.World
	// Base, when set, seeds each node's mote options before the radio
	// wiring is applied; nil selects mote.DefaultOptions.
	Base *mote.Options
	// PerNode, when set, adjusts each node's options after Base is copied
	// (node ids are 1..Hops). Lifetime scenarios use it to give individual
	// hops different battery capacities.
	PerNode func(id core.NodeID, o *mote.Options)
	// Queue selects the simulator event queue ("" or "wheel": timer wheel;
	// "heap": the legacy binary-heap baseline). Results are identical.
	Queue string
	// Traffic, when non-nil, replaces every origin's fixed-period generation
	// with a shaped schedule: slot i drives origin i (node i+1). Length must
	// be the (clamped) origin count — scenario builders size it with
	// RelayOrigins.
	Traffic []traffic.Source
	// TrafficRec, when non-nil, captures every origin's realized sends
	// (slot i records origin i) for record-and-replay.
	TrafficRec *traffic.Recorder
	// Routing selects the forwarding plane: "" keeps the classic fixed
	// chain — byte-identical to every historical trace — and "ctp" routes
	// packets along a collection tree rooted at the line's final node
	// (internal/net), so topology changes (death, mobility) change where
	// packets flow instead of severing the line.
	Routing string
	// BeaconPeriod spaces the tree's routing beacons in collect mode
	// (default net.DefaultBeaconPeriod). Ignored on the fixed chain.
	BeaconPeriod units.Ticks
}

// RelayOrigins returns the sender node ids a relay config's traffic shape
// drives, applying the same clamps NewRelay applies: origins default to 1
// and never include the line's final node (the sink).
func RelayOrigins(hops, origins int) []core.NodeID {
	if hops < 2 {
		hops = 2
	}
	if origins < 1 {
		origins = 1
	}
	if origins > hops-1 {
		origins = hops - 1
	}
	ids := make([]core.NodeID, origins)
	for i := range ids {
		ids[i] = core.NodeID(i + 1)
	}
	return ids
}

// DefaultRelayConfig builds a 3-hop line generating a packet per second.
func DefaultRelayConfig() RelayConfig {
	return RelayConfig{Hops: 3, Channel: 26, Period: units.Second}
}

// NewRelay builds the line network.
func NewRelay(seed uint64, cfg RelayConfig) *Relay {
	if cfg.Hops < 2 {
		cfg.Hops = 2
	}
	if cfg.Period == 0 {
		cfg.Period = units.Second
	}
	if cfg.Origins < 1 {
		cfg.Origins = 1
	}
	if cfg.Origins > cfg.Hops-1 {
		// The final node is the sink; it never originates.
		cfg.Origins = cfg.Hops - 1
	}
	if cfg.Routing != "" {
		// The routed forwarding plane lives in its own constructor so the
		// classic path below stays textually untouched — and byte-identical.
		return newCollectRelay(seed, cfg)
	}
	w := cfg.World
	if w == nil {
		w = mote.NewWorldQueue(seed, cfg.Queue)
	}
	r := &Relay{
		World:     w,
		period:    cfg.Period,
		generated: make([]uint64, cfg.Hops),
		dropped:   make([]uint64, cfg.Hops),
	}

	for i := 0; i < cfg.Hops; i++ {
		opts := mote.DefaultOptions()
		if cfg.Base != nil {
			opts = *cfg.Base
		}
		if cfg.PerNode != nil {
			cfg.PerNode(core.NodeID(i+1), &opts)
		}
		opts.Radio = true
		opts.RadioConfig = radio.Config{Channel: cfg.Channel}
		r.Nodes = append(r.Nodes, w.AddNode(core.NodeID(i+1), opts))
	}

	// Every origin flies its own "Flood" activity so the butterfly-effect
	// accounting attributes each packet's multi-hop work to its true source.
	acts := make([]core.Label, cfg.Origins)
	for o := 0; o < cfg.Origins; o++ {
		acts[o] = r.Nodes[o].K.DefineActivity("Flood")
	}
	r.Act = acts[0]

	// startGen arms node i's packet generation under its Flood activity;
	// called from the node's TurnOn completion. The send path is shared:
	// count the offered packet, drop it if the radio is still transmitting
	// the previous one (offered load beyond the radio's capacity), otherwise
	// put it on the air.
	startGen := func(i int) {
		n := r.Nodes[i]
		send := func() {
			r.generated[i]++
			if n.Radio.Busy() {
				r.dropped[i]++
				return
			}
			out := &am.Packet{Dest: r.Nodes[i+1].ID, Type: RelayAMType, Payload: make([]byte, 8)}
			n.AM.Send(out, nil)
		}
		if cfg.Traffic != nil {
			// Shaped load: the origin's schedule comes from the traffic
			// engine, armed under the Flood activity so every fire restores
			// it — the same instrumentation the periodic path gets. The
			// engine's per-slot stagger plays the tie-freedom role the
			// periodic path's phase shift plays below.
			var rec func(units.Ticks)
			if cfg.TrafficRec != nil {
				rec = cfg.TrafficRec.Hook(i)
			}
			n.K.CPUAct.Set(acts[i])
			traffic.Drive(n.K, cfg.Traffic[i], rec, send)
			n.K.CPUAct.SetIdle()
			return
		}
		gen := n.K.NewTimer(send)
		n.K.CPUAct.Set(acts[i])
		// Each origin runs the same period at its own phase (origin 0 keeps
		// the classic un-shifted start). Synchronized origins would put many
		// independent transmits on the same tick, where their global order
		// depends on scheduling history that a partitioned run cannot always
		// reconstruct; distinct phases keep multi-origin runs deterministic
		// under any partition count — and are what real deployments look
		// like anyway.
		gen.StartPeriodicAfter(r.period+(units.Ticks(i)*1009)%r.period, r.period)
		n.K.CPUAct.SetIdle()
	}

	// Intermediate and final hops (some of which may also originate).
	for i := 1; i < len(r.Nodes); i++ {
		i := i
		n := r.Nodes[i]
		final := i == len(r.Nodes)-1
		n.AM.Register(RelayAMType, func(p *am.Packet) {
			// Runs bound to the origin's activity already.
			if final {
				r.delivered++
				n.LEDs.Toggle(1)
				return
			}
			// Forward through an instrumented queue: Post saves the
			// current (origin's) activity and restores it when the
			// queued entry is serviced. A forwarder still transmitting
			// the previous packet drops the new one — the single-buffer
			// behavior that caps throughput when the generation period
			// approaches the per-hop latency.
			next := r.Nodes[i+1].ID
			n.K.Post(func() {
				if n.Radio.Busy() {
					r.dropped[i]++
					return
				}
				out := &am.Packet{Dest: next, Type: RelayAMType, Payload: p.Payload}
				n.AM.Send(out, nil)
			})
		})
		n.K.Boot(func() {
			n.Radio.TurnOn(func() {
				n.Radio.StartListening()
				if i < cfg.Origins {
					startGen(i)
				}
			})
		})
	}

	// The first origin boots last, preserving the classic single-origin
	// boot sequence (and therefore its traces) exactly.
	r.Nodes[0].K.Boot(func() {
		r.Nodes[0].Radio.TurnOn(func() {
			r.Nodes[0].Radio.StartListening()
			startGen(0)
		})
	})
	return r
}

// Run advances the world and stamps the end.
func (r *Relay) Run(d units.Ticks) {
	r.World.Run(d)
	r.World.StampEnd()
}

// Stats returns packets generated across all origins and delivered at the
// sink.
func (r *Relay) Stats() (generated, delivered uint64) {
	var gen uint64
	for _, g := range r.generated {
		gen += g
	}
	return gen, r.delivered
}

// Dropped returns packets discarded because a node's radio was still
// transmitting the previous one (offered load beyond capacity).
func (r *Relay) Dropped() uint64 {
	var d uint64
	for _, n := range r.dropped {
		d += n
	}
	return d
}

// NoRoute returns packets dropped because the node had no parent yet (tree
// still forming, or re-forming after a death). Always 0 on the fixed chain.
func (r *Relay) NoRoute() uint64 {
	var d uint64
	for _, n := range r.noRoute {
		d += n
	}
	return d
}

// TTLDrops returns packets whose hop budget expired — the data-plane
// backstop against transient routing loops. Always 0 on the fixed chain.
func (r *Relay) TTLDrops() uint64 {
	var d uint64
	for _, n := range r.ttlDrops {
		d += n
	}
	return d
}

// LastDeliveredAt returns when the sink last received a packet (0: never).
// The cascade scenarios read it to show deliveries continuing past the
// first relay death.
func (r *Relay) LastDeliveredAt() units.Ticks { return r.lastDeliveredAt }
