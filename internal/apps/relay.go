package apps

import (
	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/units"
)

// RelayAMType is the Active Message type of relayed traffic.
const RelayAMType uint8 = 13

// Relay is a multihop line network demonstrating the paper's "butterfly
// effect" tracking (Section 5.3): a packet originated at the first node is
// forwarded hop by hop to the last, and every hop's work — reception,
// queueing, retransmission, radio time — is charged to the origin's
// activity, because the label rides the packet across every hop.
//
// Forwarding uses an instrumented queue: the saved activity is restored when
// the queued packet is serviced, the paper's "forwarding queues in
// protocols" instrumentation point.
type Relay struct {
	World *mote.World
	Nodes []*mote.Node

	Act core.Label // the origin's activity ("Flood")

	period    units.Ticks
	generated uint64
	delivered uint64
	dropped   uint64
}

// RelayConfig parameterizes the line network.
type RelayConfig struct {
	Hops    int // number of nodes in the line (>= 2)
	Channel int
	Period  units.Ticks // packet generation period at the origin
	// Base, when set, seeds each node's mote options before the radio
	// wiring is applied; nil selects mote.DefaultOptions.
	Base *mote.Options
	// PerNode, when set, adjusts each node's options after Base is copied
	// (node ids are 1..Hops). Lifetime scenarios use it to give individual
	// hops different battery capacities.
	PerNode func(id core.NodeID, o *mote.Options)
	// Queue selects the simulator event queue ("" or "wheel": timer wheel;
	// "heap": the legacy binary-heap baseline). Results are identical.
	Queue string
}

// DefaultRelayConfig builds a 3-hop line generating a packet per second.
func DefaultRelayConfig() RelayConfig {
	return RelayConfig{Hops: 3, Channel: 26, Period: units.Second}
}

// NewRelay builds the line network.
func NewRelay(seed uint64, cfg RelayConfig) *Relay {
	if cfg.Hops < 2 {
		cfg.Hops = 2
	}
	if cfg.Period == 0 {
		cfg.Period = units.Second
	}
	w := mote.NewWorldQueue(seed, cfg.Queue)
	r := &Relay{World: w, period: cfg.Period}

	for i := 0; i < cfg.Hops; i++ {
		opts := mote.DefaultOptions()
		if cfg.Base != nil {
			opts = *cfg.Base
		}
		if cfg.PerNode != nil {
			cfg.PerNode(core.NodeID(i+1), &opts)
		}
		opts.Radio = true
		opts.RadioConfig = radio.Config{Channel: cfg.Channel}
		r.Nodes = append(r.Nodes, w.AddNode(core.NodeID(i+1), opts))
	}

	origin := r.Nodes[0]
	r.Act = origin.K.DefineActivity("Flood")

	// Intermediate and final hops.
	for i := 1; i < len(r.Nodes); i++ {
		i := i
		n := r.Nodes[i]
		final := i == len(r.Nodes)-1
		n.AM.Register(RelayAMType, func(p *am.Packet) {
			// Runs bound to the origin's activity already.
			if final {
				r.delivered++
				n.LEDs.Toggle(1)
				return
			}
			// Forward through an instrumented queue: Post saves the
			// current (origin's) activity and restores it when the
			// queued entry is serviced. A forwarder still transmitting
			// the previous packet drops the new one — the single-buffer
			// behavior that caps throughput when the generation period
			// approaches the per-hop latency.
			next := r.Nodes[i+1].ID
			n.K.Post(func() {
				if n.Radio.Busy() {
					r.dropped++
					return
				}
				out := &am.Packet{Dest: next, Type: RelayAMType, Payload: p.Payload}
				n.AM.Send(out, nil)
			})
		})
		n.K.Boot(func() {
			n.Radio.TurnOn(func() { n.Radio.StartListening() })
		})
	}

	// Origin generates packets periodically under the Flood activity.
	origin.K.Boot(func() {
		origin.Radio.TurnOn(func() {
			origin.Radio.StartListening()
			gen := origin.K.NewTimer(func() {
				r.generated++
				if origin.Radio.Busy() {
					// Offered load beyond the radio's capacity: the
					// previous flood is still leaving the antenna.
					r.dropped++
					return
				}
				out := &am.Packet{Dest: r.Nodes[1].ID, Type: RelayAMType, Payload: make([]byte, 8)}
				origin.AM.Send(out, nil)
			})
			origin.K.CPUAct.Set(r.Act)
			gen.StartPeriodic(r.period)
			origin.K.CPUAct.SetIdle()
		})
	})
	return r
}

// Run advances the world and stamps the end.
func (r *Relay) Run(d units.Ticks) {
	r.World.Run(d)
	r.World.StampEnd()
}

// Stats returns packets generated at the origin and delivered at the sink.
func (r *Relay) Stats() (generated, delivered uint64) {
	return r.generated, r.delivered
}

// Dropped returns packets discarded because a node's radio was still
// transmitting the previous one (offered load beyond capacity).
func (r *Relay) Dropped() uint64 { return r.dropped }
