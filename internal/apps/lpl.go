package apps

import (
	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/units"
)

// LPL implements low-power listening (Section 4.3's first case study): the
// radio sleeps almost always and wakes periodically to check the channel for
// energy. If the check is clean the radio returns to sleep; if energy is
// detected the receiver stays on for a hold time waiting for a packet that —
// under 802.11 interference — never comes.
type LPL struct {
	World *mote.World
	Node  *mote.Node

	Act core.Label
	cfg LPLConfig

	wakeups        uint64
	falsePositives uint64
}

// LPLConfig parameterizes the duty-cycle regime.
type LPLConfig struct {
	// Channel is the 802.15.4 channel to listen on (17 = overlapping
	// 802.11b channel 6; 26 = clear).
	Channel int
	// CheckPeriod is the sleep interval between channel checks (the paper
	// samples every 500 ms).
	CheckPeriod units.Ticks
	// ReceiveCheck is how long the receiver stays on during a clean check,
	// long enough to catch a wake-up preamble.
	ReceiveCheck units.Ticks
	// FalsePositiveHold is how long the receiver stays on after detecting
	// energy ("the CPU keeps the radio on for about 100 ms, and turns it
	// off when the timer expires and no packet was received" — Figure 14).
	FalsePositiveHold units.Ticks
	// Volts is the supply voltage; the paper's LPL mote ran at 3.35 V.
	Volts units.Volts
	// WiFi enables the interfering 802.11b access point on channel 6.
	WiFi bool
	// WiFiBurst/WiFiGap shape the interferer's traffic; defaults give a
	// ~17.9% channel occupancy matching the paper's 17.8% false-positive
	// rate.
	WiFiBurst, WiFiGap units.Ticks
	// Base, when set, seeds the node's mote options (kernel, logging mode)
	// before Volts and the radio wiring are applied; nil selects
	// mote.DefaultOptions.
	Base *mote.Options
	// Queue selects the simulator event queue ("" or "wheel": timer wheel;
	// "heap": the legacy binary-heap baseline). Results are identical.
	Queue string
}

// DefaultLPLConfig reproduces the paper's experiment on the given channel.
func DefaultLPLConfig(channel int) LPLConfig {
	return LPLConfig{
		Channel:           channel,
		CheckPeriod:       500 * units.Millisecond,
		ReceiveCheck:      9400,
		FalsePositiveHold: 100 * units.Millisecond,
		Volts:             3.35,
		WiFi:              true,
		WiFiBurst:         5 * units.Millisecond,
		WiFiGap:           23 * units.Millisecond,
	}
}

// NewLPL builds a one-node world with the interferer attached.
func NewLPL(seed uint64, cfg LPLConfig) *LPL {
	if cfg.CheckPeriod == 0 {
		cfg.CheckPeriod = 500 * units.Millisecond
	}
	w := mote.NewWorldQueue(seed, cfg.Queue)
	opts := mote.DefaultOptions()
	if cfg.Base != nil {
		opts = *cfg.Base
	}
	opts.Volts = cfg.Volts
	opts.Radio = true
	opts.RadioConfig = radio.Config{Channel: cfg.Channel}
	n := w.AddNode(1, opts)

	if cfg.WiFi {
		w.Medium.AddWiFi(medium.NewWiFiSource(6, cfg.WiFiBurst, cfg.WiFiGap, seed^0xBEEF))
	}

	l := &LPL{World: w, Node: n, cfg: cfg}
	k := n.K
	l.Act = k.DefineActivity("LPL")

	k.Boot(func() {
		k.CPUAct.Set(l.Act)
		check := k.NewTimer(func() { l.check() })
		check.StartPeriodic(cfg.CheckPeriod)
		k.CPUAct.SetIdle()
	})
	return l
}

// check is one wake-up: power the radio, listen briefly, sample the channel,
// and either sleep again or hold the receiver on for the false-positive
// window.
func (l *LPL) check() {
	n := l.Node
	k := n.K
	l.wakeups++
	n.Radio.TurnOn(func() {
		n.Radio.StartListening()
		settle := k.NewTimer(func() {
			busy := n.Radio.SampleCCA()
			if !busy {
				n.Radio.TurnOff()
				return
			}
			// Energy detected: keep listening for a packet until the
			// timeout expires.
			l.falsePositives++
			hold := k.NewTimer(func() {
				n.Radio.TurnOff()
			})
			hold.StartOneShot(l.cfg.FalsePositiveHold)
		})
		settle.StartOneShot(l.cfg.ReceiveCheck)
	})
}

// Stats returns wake-up and false-positive counts.
func (l *LPL) Stats() (wakeups, falsePositives uint64) {
	return l.wakeups, l.falsePositives
}

// FalsePositiveRate returns the fraction of checks that detected energy.
func (l *LPL) FalsePositiveRate() float64 {
	if l.wakeups == 0 {
		return 0
	}
	return float64(l.falsePositives) / float64(l.wakeups)
}

// Run advances the world and stamps the end.
func (l *LPL) Run(d units.Ticks) {
	l.World.Run(d)
	l.World.StampEnd()
}
