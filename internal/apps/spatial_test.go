package apps

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestSpatialInfiniteRangeMatchesBroadcast is the broadcast-equivalence
// contract: a spatial medium whose every link is in range and lossless (a
// tightly packed line with a huge delivery cutoff) must reproduce the
// legacy broadcast medium's per-node logs byte for byte, across apps and
// seeds. This is what licenses the spatial layer to share Transmit with
// the flat model — no placement configured means no behavioral change.
func TestSpatialInfiniteRangeMatchesBroadcast(t *testing.T) {
	runLogs := func(t *testing.T, s scenario.Spec) map[core.NodeID][]core.Entry {
		t.Helper()
		in, err := scenario.Build(s)
		if err != nil {
			t.Fatalf("build %v: %v", s.App, err)
		}
		in.Run()
		return in.World.NodeLogs()
	}
	for _, app := range []string{"relay", "bounce", "sensesend", "dma"} {
		for _, seed := range []uint64{1, 7, 42} {
			base := scenario.Spec{App: app, DurationUS: 3_000_000, Seed: seed}
			if app == "relay" {
				base.Nodes = 4
			}
			spatial := base
			spatial.Placement = scenario.PlacementLine
			spatial.AreaM = 3      // 1 m spacing: every link exactly lossless
			spatial.TxRangeM = 1e4 // every node in every node's range

			a := runLogs(t, base)
			b := runLogs(t, spatial)
			if len(a) != len(b) {
				t.Fatalf("%s seed %d: node sets differ: %d vs %d", app, seed, len(a), len(b))
			}
			for id, ea := range a {
				eb := b[id]
				if len(ea) != len(eb) {
					t.Errorf("%s seed %d node %d: %d vs %d entries", app, seed, id, len(ea), len(eb))
					continue
				}
				for i := range ea {
					if ea[i] != eb[i] {
						t.Errorf("%s seed %d node %d entry %d: %+v vs %+v",
							app, seed, id, i, ea[i], eb[i])
						break
					}
				}
			}
		}
	}
}

// TestSpatialRunDeterministic pins that a random-geometric spatial run is a
// pure function of its spec: identical result JSON on replay (placement and
// channel-loss draws both derive from the run seed), different outcomes
// under a different seed's layout.
func TestSpatialRunDeterministic(t *testing.T) {
	spec := scenario.Spec{
		App: "relay", Nodes: 16, DurationUS: 4_000_000, Seed: 11,
		Placement: scenario.PlacementRGG, PeriodUS: 400_000,
	}
	enc := func(r *scenario.Result) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	r1 := scenario.RunSpec(spec)
	r2 := scenario.RunSpec(spec)
	if r1.Error != "" || r2.Error != "" {
		t.Fatalf("runs failed: %q %q", r1.Error, r2.Error)
	}
	if enc(r1) != enc(r2) {
		t.Fatal("identical spatial specs produced different results")
	}

	other := spec
	other.Seed = 12
	p1, err := spec.Positions(16)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := other.Positions(16)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical rgg layout")
	}
}

// TestSpatialSpecValidation pins the spec-level contract for the placement
// fields: knobs require a placement, values are bounded, unknown placements
// fail loudly.
func TestSpatialSpecValidation(t *testing.T) {
	ok := scenario.Spec{App: "relay", DurationUS: 1000, Placement: "rgg",
		AreaM: 100, PathLossExp: 2.5, TxRangeM: 30, CaptureDB: 5}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spatial spec rejected: %v", err)
	}
	for name, bad := range map[string]scenario.Spec{
		"unknown placement":  {App: "relay", DurationUS: 1000, Placement: "ring"},
		"knob w/o placement": {App: "relay", DurationUS: 1000, TxRangeM: 30},
		"negative area":      {App: "relay", DurationUS: 1000, Placement: "line", AreaM: -1},
		"wild exponent":      {App: "relay", DurationUS: 1000, Placement: "grid", PathLossExp: 12},
		"negative capture":   {App: "relay", DurationUS: 1000, Placement: "rgg", CaptureDB: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: spec accepted, want error", name)
		}
	}
}

// TestSpatialSweepWorkerInvariance extends the worker-count determinism
// contract to spatial matrices: a density sweep produces byte-identical
// result streams for any pool width.
func TestSpatialSweepWorkerInvariance(t *testing.T) {
	m := scenario.Matrix{
		Base: scenario.Spec{
			App: "relay", DurationUS: 2_000_000, Seed: 5,
			Placement: scenario.PlacementRGG, PeriodUS: 300_000,
		},
		Sweep: map[string][]any{"nodes": {8, 16}, "area_m": {60.0, 120.0}},
		Seeds: 2,
	}
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		var out []byte
		rn := &scenario.Runner{Workers: workers, OnResult: func(r *scenario.Result) {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
			out = append(out, '\n')
		}}
		rn.Run(specs)
		return string(out)
	}
	if run(1) != run(8) {
		t.Fatal("spatial sweep output depends on worker count")
	}
}
