package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/mote"
	"repro/internal/units"
)

// TestCollectRelayDelivers smoke-tests the routed forwarding plane on the
// broadcast medium: every node hears every node, so the tree collapses to
// one hop and every generated packet that finds the radio idle lands at the
// sink.
func TestCollectRelayDelivers(t *testing.T) {
	cfg := DefaultRelayConfig()
	cfg.Hops = 4
	cfg.Routing = "ctp"
	r := NewRelay(1, cfg)
	if r.Tree == nil {
		t.Fatal("collect relay has no tree")
	}
	r.Run(20 * units.Second)

	gen, del := r.Stats()
	if gen == 0 || del == 0 {
		t.Fatalf("generated=%d delivered=%d, want both > 0", gen, del)
	}
	// The origin has no parent until the root's first beacon propagates, so
	// early packets drop as unrouted — but once the tree forms, deliveries
	// track generation.
	if del+r.NoRoute()+r.Dropped()+r.TTLDrops() < gen {
		t.Errorf("accounting leak: gen=%d del=%d noroute=%d dropped=%d ttl=%d",
			gen, del, r.NoRoute(), r.Dropped(), r.TTLDrops())
	}
	if r.LastDeliveredAt() < 18*units.Second {
		t.Errorf("last delivery at %v, want near the end of the 20 s run", r.LastDeliveredAt())
	}
	if s := r.Tree.Stats(); s.Routed != 3 {
		t.Errorf("routed = %d, want 3", s.Routed)
	}
}

// TestCollectLegacyUnset pins the dispatch contract: without Routing the
// relay takes the classic path and carries no tree.
func TestCollectLegacyUnset(t *testing.T) {
	r := NewRelay(1, DefaultRelayConfig())
	if r.Tree != nil {
		t.Fatal("legacy relay grew a tree")
	}
	if r.NoRoute() != 0 || r.TTLDrops() != 0 || r.LastDeliveredAt() != 0 {
		t.Fatal("legacy relay touched collect-mode counters")
	}
}

// TestCollectCascade is the energy-aware rerouting test end to end on the
// data plane: a diamond where the origin's first parent is the relay whose
// battery depletes mid-run. The death becomes a topology event, the origin
// reroutes onto the surviving relay, and deliveries demonstrably continue
// past the death — where the fixed chain would have severed.
func TestCollectCascade(t *testing.T) {
	cfg := DefaultRelayConfig()
	cfg.Hops = 4
	cfg.Routing = "ctp"
	cfg.PerNode = func(id core.NodeID, o *mote.Options) {
		if id == 3 {
			o.BatteryUAH = 60 // ~10 s at listening draw
		}
	}
	r := NewRelay(9, cfg)
	// The sink (node 4, the tree root) sits at the origin of the plane; the
	// origin (node 1) is out of its range and must relay through 2 or 3.
	// Relay 3's staggered beacon phase advertises a route first, so the
	// origin joins 3 — the node about to die.
	pos := []medium.Position{
		{X: 60, Y: 0},  // origin
		{X: 30, Y: 0},  // relay 2: survivor
		{X: 30, Y: 25}, // relay 3: finite battery
		{X: 0, Y: 0},   // sink / tree root
	}
	if err := r.World.ConfigureSpatial(medium.SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: 9}, pos); err != nil {
		t.Fatal(err)
	}
	r.Run(40 * units.Second)

	if len(r.World.Deaths) != 1 || r.World.Deaths[0].Node != 3 {
		t.Fatalf("deaths = %+v, want exactly node 3", r.World.Deaths)
	}
	died := r.World.Deaths[0].At
	origin := r.Tree.Router(0)
	if p, ok := origin.Parent(); !ok || p != 2 {
		t.Fatalf("origin parent after death = %d (ok=%v), want survivor 2", p, ok)
	}
	if s := origin.Stats(); s.ParentChanges < 2 {
		t.Errorf("origin parent changes = %d, want ≥ 2 (join + reroute)", s.ParentChanges)
	}
	// The reroute is what extends delivery past the death: the last packet
	// lands well after the parent died, not just before it.
	if r.LastDeliveredAt() < died+5*units.Second {
		t.Errorf("last delivery %v barely outlives the death at %v — reroute did not restore delivery",
			r.LastDeliveredAt(), died)
	}
	if _, del := r.Stats(); del == 0 {
		t.Error("nothing delivered")
	}
}

// TestCollectDeterministic pins that two identically-seeded routed runs
// produce identical counters.
func TestCollectDeterministic(t *testing.T) {
	run := func() (uint64, uint64, uint64, units.Ticks) {
		cfg := DefaultRelayConfig()
		cfg.Hops = 5
		cfg.Routing = "ctp"
		r := NewRelay(7, cfg)
		if err := r.World.ConfigureSpatial(medium.SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: 7},
			medium.PlaceLine(5, 80)); err != nil {
			t.Fatal(err)
		}
		r.Run(15 * units.Second)
		gen, del := r.Stats()
		return gen, del, r.Tree.Stats().ParentChanges, r.LastDeliveredAt()
	}
	g1, d1, p1, l1 := run()
	g2, d2, p2, l2 := run()
	if g1 != g2 || d1 != d2 || p1 != p2 || l1 != l2 {
		t.Fatalf("replay diverged: (%d %d %d %v) vs (%d %d %d %v)", g1, d1, p1, l1, g2, d2, p2, l2)
	}
	if d1 == 0 {
		t.Error("routed line delivered nothing")
	}
}
