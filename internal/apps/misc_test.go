package apps

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestSenseSendDeliversReports(t *testing.T) {
	s := NewSenseSend(21, DefaultSenseSendConfig())
	s.Run(26 * units.Second)
	sent, received := s.Stats()
	if sent < 4 {
		t.Errorf("sent = %d, want >= 4 over 26s at 5s period", sent)
	}
	if received != sent {
		t.Errorf("received = %d, want %d (lossless medium)", received, sent)
	}
}

func TestSenseSendSensorConversions(t *testing.T) {
	s := NewSenseSend(21, DefaultSenseSendConfig())
	s.Run(26 * units.Second)
	if reads := s.Sensor.Sensor.Reads(); reads < 8 {
		t.Errorf("sensor reads = %d, want >= 8 (two per report)", reads)
	}
}

func TestTimerBugCalibrationRate(t *testing.T) {
	tb := NewTimerBug(31, true)
	tb.Run(4 * units.Second)
	rate := tb.CalibrationRate()
	// Figure 15: TimerA1 fires 16 times per second.
	if math.Abs(rate-16) > 1.5 {
		t.Errorf("calibration rate = %.2f Hz, want ~16 Hz", rate)
	}
}

func TestTimerBugFixedHasNoCalibration(t *testing.T) {
	tb := NewTimerBug(31, false)
	tb.Run(4 * units.Second)
	if rate := tb.CalibrationRate(); rate != 0 {
		t.Errorf("calibration rate with DCO disabled = %.2f Hz, want 0", rate)
	}
}

func TestDMATransferAtLeastTwiceAsFast(t *testing.T) {
	run := func(useDMA bool) units.Ticks {
		d := NewDMACompare(41, useDMA, 30, 100*units.Millisecond)
		d.Run(400 * units.Millisecond)
		start, done, ok := d.Timing()
		if !ok {
			t.Fatalf("send (useDMA=%v) never completed", useDMA)
		}
		return done - start
	}
	normal := run(false)
	dma := run(true)
	if normal <= 0 || dma <= 0 {
		t.Fatalf("bad timings: normal=%v dma=%v", normal, dma)
	}
	// Figure 16: "the DMA transfer is at least twice as fast as the
	// interrupt-driven transfer".
	if float64(normal) < 1.6*float64(dma) {
		t.Errorf("normal=%v dma=%v; want normal >= 1.6x dma", normal, dma)
	}
}

func TestDMAPacketStillDelivered(t *testing.T) {
	for _, useDMA := range []bool{false, true} {
		d := NewDMACompare(43, useDMA, 30, 100*units.Millisecond)
		d.Run(400 * units.Millisecond)
		_, received := d.Peer.AM.Stats()
		if received != 1 {
			t.Errorf("useDMA=%v: peer received %d packets, want 1", useDMA, received)
		}
	}
}
