package apps

import (
	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/units"
)

// DMAAMType is the Active Message type the comparison sends.
const DMAAMType uint8 = 3

// DMACompare reproduces the third case study (Figure 16): the timing of one
// packet transmission when the CPU feeds the radio over the bus with an
// interrupt every two bytes versus with a DMA channel. Each variant runs in
// its own world so the logs are directly comparable.
type DMACompare struct {
	World *mote.World
	Node  *mote.Node
	Peer  *mote.Node

	Act core.Label

	sendStart units.Ticks
	sendDone  units.Ticks
	completed bool
}

// NewDMACompare builds a two-node world (sender + receiver) and sends one
// packet of payloadBytes at startAt. Optional base options override the mote
// defaults (voltage, logging mode, battery) before the radio wiring: one
// value applies to both nodes, two values configure the sender (node 1) and
// receiver (node 2) individually.
func NewDMACompare(seed uint64, useDMA bool, payloadBytes int, startAt units.Ticks, base ...mote.Options) *DMACompare {
	return NewDMACompareQueue(seed, "", useDMA, payloadBytes, startAt, base...)
}

// NewDMACompareQueue is NewDMACompare with an explicit event-queue selection.
func NewDMACompareQueue(seed uint64, queue string, useDMA bool, payloadBytes int, startAt units.Ticks, base ...mote.Options) *DMACompare {
	return NewDMACompareWorld(mote.NewWorldQueue(seed, queue), useDMA, payloadBytes, startAt, base...)
}

// NewDMACompareWorld is NewDMACompare populating a pre-built (possibly
// partitioned) world.
func NewDMACompareWorld(w *mote.World, useDMA bool, payloadBytes int, startAt units.Ticks, base ...mote.Options) *DMACompare {
	mkOpts := func(idx int) mote.Options {
		o := mote.DefaultOptions()
		if len(base) > 0 {
			if idx >= len(base) {
				idx = len(base) - 1
			}
			o = base[idx]
		}
		o.Radio = true
		o.RadioConfig = radio.Config{Channel: 26, UseDMA: useDMA}
		return o
	}
	d := &DMACompare{World: w}
	d.Node = w.AddNode(1, mkOpts(0))
	d.Peer = w.AddNode(2, mkOpts(1))

	k := d.Node.K
	d.Act = k.DefineActivity("BounceApp") // the figure labels the send this way

	d.Peer.K.Boot(func() {
		d.Peer.Radio.TurnOn(func() { d.Peer.Radio.StartListening() })
	})

	k.Boot(func() {
		d.Node.Radio.TurnOn(nil)
		t := k.NewTimer(func() {
			k.CPUAct.Set(d.Act)
			d.sendStart = k.NowTicks()
			p := &am.Packet{Dest: d.Peer.ID, Type: DMAAMType, Payload: make([]byte, payloadBytes)}
			d.Node.AM.Send(p, func() {
				d.sendDone = k.NowTicks()
				d.completed = true
				k.CPUAct.SetIdle()
			})
		})
		t.StartOneShot(startAt)
		k.CPUAct.SetIdle()
	})
	return d
}

// Run advances the world and stamps the end.
func (d *DMACompare) Run(dur units.Ticks) {
	d.World.Run(dur)
	d.World.StampEnd()
}

// Timing returns the submit-to-done span of the transmission; ok is false if
// the send never completed.
func (d *DMACompare) Timing() (start, done units.Ticks, ok bool) {
	return d.sendStart, d.sendDone, d.completed
}
