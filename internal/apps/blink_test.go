package apps

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/icount"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

// runBlinkAnalysis is shared by several tests: a 48 s Blink run analyzed
// with default options.
func runBlinkAnalysis(t *testing.T, seed uint64) (*mote.World, *mote.Node, *Blink, *analysis.Analysis) {
	t.Helper()
	w, n, b := RunBlink(seed, 48*units.Second, mote.DefaultOptions())
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	a, err := analysis.Analyze(tr, w.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return w, n, b, a
}

func TestBlinkTogglesLEDs(t *testing.T) {
	_, _, b, _ := runBlinkAnalysis(t, 1)
	tg := b.Toggles()
	// The first fire lands a few hundred microseconds after each second
	// boundary (boot-time instrumentation cost), so the final toggle of
	// each timer may fall just past the 48 s horizon.
	if tg[0] < 47 || tg[0] > 48 || tg[1] < 23 || tg[1] > 24 || tg[2] < 11 || tg[2] > 12 {
		t.Errorf("toggles = %v, want ~[48 24 12]", tg)
	}
}

func TestBlinkLEDOnTimes(t *testing.T) {
	_, _, _, a := runBlinkAnalysis(t, 1)
	// Each LED is on half the time; the paper's Table 3(a) reports
	// 24.01/24.00/24.00 s over 48 s.
	for _, res := range []core.ResourceID{power.ResLED0, power.ResLED1, power.ResLED2} {
		on := a.ActiveTimeUS(res)
		if math.Abs(float64(on)-24e6) > 0.2e6 {
			t.Errorf("res %d on-time = %.3fs, want ~24s", res, float64(on)/1e6)
		}
	}
}

func TestBlinkCPUDutyCycle(t *testing.T) {
	_, _, _, a := runBlinkAnalysis(t, 1)
	active := a.ActiveTimeUS(power.ResCPU)
	duty := float64(active) / float64(a.Span())
	// Paper: "The CPU is active for only 0.178% of the time."
	if duty < 0.0005 || duty > 0.005 {
		t.Errorf("CPU duty cycle = %.4f%%, want around 0.1-0.5%%", duty*100)
	}
}

func TestBlinkRegressionRecoversLEDDraws(t *testing.T) {
	_, n, _, a := runBlinkAnalysis(t, 1)
	volts := float64(n.Volts)
	want := map[core.ResourceID]float64{ // mA, the calibrated truth
		power.ResLED0: 2.505,
		power.ResLED1: 2.235,
		power.ResLED2: 0.830,
	}
	for res, wantMA := range want {
		got := a.Reg.CurrentMA(analysis.Predictor{Res: res, State: power.StateOn}, volts)
		if math.Abs(got-wantMA) > 0.05*wantMA {
			t.Errorf("res %d regressed draw = %.3f mA, want %.3f mA (+-5%%)", res, got, wantMA)
		}
	}
	constMA := a.Reg.ConstCurrentMA(volts)
	if math.Abs(constMA-0.80) > 0.08 {
		t.Errorf("const = %.3f mA, want ~0.80 mA", constMA)
	}
}

func TestBlinkEnergyTotalsConsistent(t *testing.T) {
	_, _, _, a := runBlinkAnalysis(t, 1)
	byRes, constUJ := a.EnergyByResource()
	var sumRes float64
	for _, e := range byRes {
		sumRes += e
	}
	sumRes += constUJ

	byAct := a.EnergyByActivity()
	var sumAct float64
	for _, e := range byAct {
		sumAct += e
	}

	measured := a.TotalEnergyUJ()
	if measured <= 0 {
		t.Fatalf("no energy measured")
	}
	if rel := math.Abs(sumRes-measured) / measured; rel > 0.02 {
		t.Errorf("per-resource total %.1f uJ vs measured %.1f uJ (rel %.4f)", sumRes, measured, rel)
	}
	if rel := math.Abs(sumAct-sumRes) / sumRes; rel > 1e-6 {
		t.Errorf("per-activity total %.1f uJ != per-resource total %.1f uJ", sumAct, sumRes)
	}
	// Paper: Blink's 48 s total was 521 mJ at 3 V. Ours uses the same
	// calibrated draws, so it should land in the same range.
	if mj := measured / 1000; mj < 400 || mj > 650 {
		t.Errorf("total energy = %.1f mJ, want ~520 mJ", mj)
	}
}

func TestBlinkReconstructionError(t *testing.T) {
	_, _, _, a := runBlinkAnalysis(t, 1)
	// Paper: 0.004% for Blink. Allow a generous bound.
	if err := a.ReconstructionError(); err > 0.01 {
		t.Errorf("reconstruction error = %.5f, want < 1%%", err)
	}
}

func TestBlinkDeterminism(t *testing.T) {
	_, n1, _, _ := runBlinkAnalysis(t, 7)
	_, n2, _, _ := runBlinkAnalysis(t, 7)
	a := n1.Log.Entries
	b := n2.Log.Entries
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBlinkEventCountNearPaper(t *testing.T) {
	_, n, _, _ := runBlinkAnalysis(t, 1)
	// Paper: "we logged 597 messages over 48 seconds". The exact count
	// depends on instrumentation detail; same order of magnitude expected.
	got := len(n.Log.Entries)
	if got < 300 || got > 1500 {
		t.Errorf("logged %d entries, want a few hundred (paper: 597)", got)
	}
}

func TestBlinkMeterAgreesWithScope(t *testing.T) {
	_, n, _, a := runBlinkAnalysis(t, 1)
	span := a.Span()
	scopeUJ := n.Scope.EnergyMicroJoules(n.Volts, 0, units.Ticks(span))
	meterUJ := a.TotalEnergyUJ()
	if scopeUJ <= 0 {
		t.Fatalf("scope recorded no energy")
	}
	if rel := math.Abs(scopeUJ-meterUJ) / scopeUJ; rel > 0.01 {
		t.Errorf("meter %.1f uJ vs scope %.1f uJ (rel %.4f)", meterUJ, scopeUJ, rel)
	}
	_ = icount.PulseEnergyMicroJoules
}
