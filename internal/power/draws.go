package power

import (
	"repro/internal/core"
	"repro/internal/units"
)

// DrawKey identifies one (sink, state) pair in a draw table.
type DrawKey struct {
	Res   core.ResourceID
	State core.PowerState
}

// DrawTable maps (sink, state) to the current that configuration draws.
// States absent from the table draw zero (their consumption, if any, is part
// of the board baseline).
type DrawTable map[DrawKey]units.MicroAmps

// Draw looks up the draw for (res, st), defaulting to zero.
func (d DrawTable) Draw(res core.ResourceID, st core.PowerState) units.MicroAmps {
	return d[DrawKey{res, st}]
}

// Clone returns a copy of the table.
func (d DrawTable) Clone() DrawTable {
	out := make(DrawTable, len(d))
	//quanto:ordered map-to-map copy over distinct keys; order cannot escape
	for k, v := range d {
		out[k] = v
	}
	return out
}

// BaselineMicroAmps is the calibrated always-on board draw: quiescent
// switching regulator, supply network, and the MCU asleep.
//
// Calibration provenance (the single source for this number — external docs
// reference this constant rather than restating it): the paper never
// measures the baseline directly; it appears as the constant term of the
// energy regressions, and the two reported fits disagree slightly —
// 0.79 mA in the Table 2 bench calibration and 0.83 mA in the Table 3
// in-situ Blink run. The simulation uses 800 uA, between the two, so that
// reproduced regressions recover a constant inside the paper's own spread
// rather than matching one table exactly and missing the other. The
// individual deep-sleep trickle draws of Table 1 are deliberately folded
// into this constant (see CalibratedDraws) because the paper's regressions
// cannot separate them from it either.
const BaselineMicroAmps units.MicroAmps = 800

// NominalDraws builds a draw table from the Table 1 datasheet values. CPU
// sleep draw is kept explicit (2.6 uA in LPM3).
func NominalDraws() DrawTable {
	t := make(DrawTable)
	for _, sink := range Platform() {
		for _, st := range sink.States {
			t[DrawKey{sink.Res, st.State}] = st.Nominal
		}
	}
	t[DrawKey{ResBaseline, StateOff}] = 0
	return t
}

// CalibratedDraws builds the draw table the simulation uses as physical
// ground truth. It starts from the datasheet values and overrides the sinks
// the paper measured on its HydroWatch board:
//
//   - LEDs: Table 2/3 regressions found 2.50/2.51, 2.23/2.24 and 0.83 mA —
//     roughly half the datasheet values (the LEDs are driven through
//     current-limiting resistors).
//   - CPU active: Table 3(b) reports 1.43 mA above baseline when running.
//   - Radio listen: Section 4.3 measured 18.46 mA for LPL listening.
//   - The board baseline replaces the individual deep-sleep trickle draws,
//     which the regressions cannot separate from the constant anyway.
func CalibratedDraws() DrawTable {
	t := NominalDraws()
	t[DrawKey{ResLED0, StateOn}] = 2505
	t[DrawKey{ResLED1, StateOn}] = 2235
	t[DrawKey{ResLED2, StateOn}] = 830
	t[DrawKey{ResCPU, CPUActive}] = 1430
	// Sleep states fold into the board baseline.
	t[DrawKey{ResCPU, CPUSleep}] = 0
	t[DrawKey{ResCPU, CPULPM4}] = 0
	t[DrawKey{ResRadioRx, RadioRxListen}] = 18460
	t[DrawKey{ResBaseline, StateOff}] = BaselineMicroAmps
	return t
}
