package power

import (
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

func TestPlatformMatchesTable1(t *testing.T) {
	// Spot-check nominal draws against the paper's Table 1.
	nom := NominalDraws()
	cases := []struct {
		res   core.ResourceID
		state core.PowerState
		ua    units.MicroAmps
	}{
		{ResCPU, CPUActive, 500},
		{ResCPU, CPUSleep, 2.6},
		{ResCPU, CPULPM4, 0.2},
		{ResVRef, StateOn, 500},
		{ResADC, ADCConverting, 800},
		{ResDAC, DACConv7, 700},
		{ResIntFlash, IntFlashProgram, 3000},
		{ResTempSensor, StateOn, 60},
		{ResComparator, StateOn, 45},
		{ResSupply, StateOn, 15},
		{ResRadioReg, RadioRegOn, 22},
		{ResRadioReg, RadioRegPD, 20},
		{ResRadioBatMon, StateOn, 30},
		{ResRadioCtl, RadioCtlIdle, 426},
		{ResRadioRx, RadioRxListen, 19700},
		{ResRadioTx, RadioTx0dBm, 17400},
		{ResRadioTx, RadioTxM25dBm, 8500},
		{ResFlash, FlashPowerDown, 9},
		{ResFlash, FlashWrite, 12000},
		{ResLED0, StateOn, 4300},
		{ResLED1, StateOn, 3700},
		{ResLED2, StateOn, 1700},
	}
	for _, c := range cases {
		if got := nom.Draw(c.res, c.state); got != c.ua {
			t.Errorf("nominal draw(%d,%d) = %v uA, want %v", c.res, c.state, got, c.ua)
		}
	}
}

func TestPlatformInventoryShape(t *testing.T) {
	sinks := Platform()
	if len(sinks) < 17 {
		t.Errorf("platform has %d sinks, want >= 17", len(sinks))
	}
	// The paper counts 8 microcontroller sinks and 5 radio sinks.
	groups := make(map[string]int)
	for _, s := range sinks {
		groups[s.Group]++
	}
	if groups["Microcontroller"] != 8 {
		t.Errorf("microcontroller sinks = %d, want 8", groups["Microcontroller"])
	}
	if groups["Radio"] != 5 {
		t.Errorf("radio sinks = %d, want 5", groups["Radio"])
	}
	// The radio transmit path has eight power levels.
	for _, s := range sinks {
		if s.Res == ResRadioTx && len(s.States) != 8 {
			t.Errorf("TX power levels = %d, want 8", len(s.States))
		}
	}
}

func TestCalibratedDrawsOverrides(t *testing.T) {
	cal := CalibratedDraws()
	if cal.Draw(ResLED0, StateOn) != 2505 {
		t.Errorf("calibrated LED0 = %v", cal.Draw(ResLED0, StateOn))
	}
	if cal.Draw(ResCPU, CPUActive) != 1430 {
		t.Errorf("calibrated CPU = %v", cal.Draw(ResCPU, CPUActive))
	}
	if cal.Draw(ResRadioRx, RadioRxListen) != 18460 {
		t.Errorf("calibrated RX = %v", cal.Draw(ResRadioRx, RadioRxListen))
	}
	if cal.Draw(ResBaseline, StateOff) != BaselineMicroAmps {
		t.Errorf("baseline = %v", cal.Draw(ResBaseline, StateOff))
	}
	// Sleep draws fold into the baseline.
	if cal.Draw(ResCPU, CPUSleep) != 0 {
		t.Errorf("calibrated CPU sleep = %v, want 0", cal.Draw(ResCPU, CPUSleep))
	}
	// Non-overridden values stay nominal.
	if cal.Draw(ResFlash, FlashWrite) != 12000 {
		t.Errorf("flash write = %v", cal.Draw(ResFlash, FlashWrite))
	}
}

func TestDrawTableClone(t *testing.T) {
	a := NominalDraws()
	b := a.Clone()
	b[DrawKey{ResLED0, StateOn}] = 1
	if a.Draw(ResLED0, StateOn) == 1 {
		t.Error("clone shares storage")
	}
}

func TestStateName(t *testing.T) {
	if StateName(ResCPU, CPUActive) != "ACTIVE" {
		t.Errorf("got %q", StateName(ResCPU, CPUActive))
	}
	if StateName(ResRadioTx, RadioTxM10dBm) != "TX (-10 dBm)" {
		t.Errorf("got %q", StateName(ResRadioTx, RadioTxM10dBm))
	}
	if StateName(ResLED0, StateOff) != "OFF" {
		t.Errorf("got %q", StateName(ResLED0, StateOff))
	}
	if StateName(ResLED0, 42) != "S42" {
		t.Errorf("got %q", StateName(ResLED0, 42))
	}
}

func TestResourceNamesCoverPlatform(t *testing.T) {
	names := ResourceNames()
	for _, s := range Platform() {
		if names[s.Res] == "" {
			t.Errorf("no short name for resource %d (%s)", s.Res, s.Name)
		}
	}
}

type recordingListener struct {
	times []units.Ticks
	draws []units.MicroAmps
}

func (r *recordingListener) CurrentChanged(t units.Ticks, total units.MicroAmps) {
	r.times = append(r.times, t)
	r.draws = append(r.draws, total)
}

func TestBoardAggregatesCurrent(t *testing.T) {
	now := units.Ticks(0)
	draws := DrawTable{
		DrawKey{ResLED0, StateOn}:      2500,
		DrawKey{ResLED1, StateOn}:      2200,
		DrawKey{ResBaseline, StateOff}: 800,
	}
	b := NewBoard(3.0, draws, func() units.Ticks { return now })
	b.AddSink(ResBaseline, StateOff)
	b.AddSink(ResLED0, StateOff)
	b.AddSink(ResLED1, StateOff)
	if b.Current() != 800 {
		t.Fatalf("initial current = %v", b.Current())
	}

	rec := &recordingListener{}
	b.Listen(rec)
	if len(rec.draws) != 1 || rec.draws[0] != 800 {
		t.Fatalf("listener should hear the current draw on registration: %v", rec.draws)
	}

	now = 100
	b.PowerStateChanged(ResLED0, StateOff, StateOn)
	if b.Current() != 3300 {
		t.Errorf("current = %v, want 3300", b.Current())
	}
	now = 200
	b.PowerStateChanged(ResLED1, StateOff, StateOn)
	if b.Current() != 5500 {
		t.Errorf("current = %v, want 5500", b.Current())
	}
	now = 300
	b.PowerStateChanged(ResLED0, StateOn, StateOff)
	if b.Current() != 3000 {
		t.Errorf("current = %v, want 3000", b.Current())
	}
	if len(rec.times) != 4 || rec.times[3] != 300 {
		t.Errorf("listener calls = %v", rec.times)
	}
}

func TestBoardNoDriftUnderChurn(t *testing.T) {
	// Repeated toggling must not accumulate floating-point drift because
	// the total is recomputed from states.
	now := units.Ticks(0)
	draws := DrawTable{
		DrawKey{ResLED2, StateOn}:      830.3,
		DrawKey{ResBaseline, StateOff}: 785.1,
	}
	b := NewBoard(3.0, draws, func() units.Ticks { return now })
	b.AddSink(ResBaseline, StateOff)
	b.AddSink(ResLED2, StateOff)
	want := b.Current()
	for i := 0; i < 100000; i++ {
		b.PowerStateChanged(ResLED2, StateOff, StateOn)
		b.PowerStateChanged(ResLED2, StateOn, StateOff)
	}
	if b.Current() != want {
		t.Errorf("current drifted: %v -> %v", want, b.Current())
	}
}

func TestBoardLearnsUnknownSink(t *testing.T) {
	b := NewBoard(3.0, DrawTable{DrawKey{ResSensor, SensorSample}: 550}, func() units.Ticks { return 0 })
	// A state change for a sink never registered with AddSink still counts.
	b.PowerStateChanged(ResSensor, SensorIdle, SensorSample)
	if b.Current() != 550 {
		t.Errorf("current = %v, want 550", b.Current())
	}
	if b.State(ResSensor) != SensorSample {
		t.Errorf("state = %v", b.State(ResSensor))
	}
}
