package power

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// HorizonForever is the segment horizon a Harvester returns when its output
// never changes again.
const HorizonForever units.Ticks = math.MaxInt64

// Harvester is a piecewise-constant energy income source (solar panel,
// thermoelectric generator, RF scavenger). CurrentAt returns the harvested
// current in effect at time t and the first instant at which that output may
// change (HorizonForever if it never does). The piecewise-constant contract
// is what lets the Battery integrate charge exactly and compute depletion
// crossings in closed form, keeping lifetime simulations deterministic.
type Harvester interface {
	CurrentAt(t units.Ticks) (ua units.MicroAmps, until units.Ticks)
}

// ConstantHarvester supplies a fixed current forever (a bench supply, or the
// mean income of a stable light source).
type ConstantHarvester units.MicroAmps

// CurrentAt implements Harvester.
func (c ConstantHarvester) CurrentAt(units.Ticks) (units.MicroAmps, units.Ticks) {
	return units.MicroAmps(c), HorizonForever
}

// PeriodicHarvester supplies UA during the first On of every Period and
// nothing for the rest — a square-wave day/night or duty-cycled source.
// Phase shifts the wave: the "day" of cycle k spans
// [k*Period+Phase, k*Period+Phase+On).
type PeriodicHarvester struct {
	UA     units.MicroAmps
	Period units.Ticks
	On     units.Ticks
	Phase  units.Ticks
}

// CurrentAt implements Harvester.
func (p PeriodicHarvester) CurrentAt(t units.Ticks) (units.MicroAmps, units.Ticks) {
	if p.Period <= 0 || p.On <= 0 {
		return 0, HorizonForever
	}
	on := p.On
	if on > p.Period {
		on = p.Period
	}
	rel := (t - p.Phase) % p.Period
	if rel < 0 {
		rel += p.Period
	}
	cycle := t - rel // start of the containing cycle
	if rel < on {
		return p.UA, cycle + on
	}
	return 0, cycle + p.Period
}

// maxProjectSegments bounds how many harvester segments one depletion
// projection walks before deferring to a re-check event. A node whose income
// beats its draw would otherwise make the projection loop forever.
const maxProjectSegments = 128

// Battery models a finite charge reservoir between the harvester and the
// board. It implements CurrentListener: the Board publishes every aggregate
// draw change, and the battery integrates net charge (draw minus harvest)
// between those events, exactly like the iCount meter integrates energy.
// Charge is capped at capacity (a full battery sheds surplus income) and
// clamped at zero.
//
// When the integrated charge crosses zero the battery computes the exact
// crossing instant in closed form — draw is constant between board events and
// harvest is piecewise constant by contract — and schedules a simulator event
// at that instant to fire the OnDepleted callback. Depletion therefore
// interleaves deterministically with every other simulated event, which is
// what lets a node's death change network behavior mid-run instead of being
// discovered after the fact.
type Battery struct {
	capUC    float64 // capacity in microcoulombs
	chargeUC float64
	epsUC    float64   // crossing tolerance against float rounding
	harv     Harvester // nil: no income

	s      *sim.Simulator
	lastT  units.Ticks
	drawUA units.MicroAmps

	depleted bool
	notified bool
	diedAt   units.Ticks
	check    sim.Handle

	// checkFn / notifyFn are the check-event callbacks, built once so the
	// per-edge re-projection path does not allocate a fresh closure every
	// time the board's draw changes.
	checkFn  func()
	notifyFn func()

	onDepleted func(at units.Ticks)
}

// MicroCoulombsPerMicroAmpHour converts battery capacity units: one µAh of
// charge is 3600 µC.
const MicroCoulombsPerMicroAmpHour = 3600.0

// NewBattery returns a full battery of capacityUAH microamp-hours drained
// through simulator s. harv may be nil for a pure (non-harvesting) battery.
func NewBattery(capacityUAH float64, harv Harvester, s *sim.Simulator) *Battery {
	if capacityUAH <= 0 {
		panic("power: battery capacity must be positive")
	}
	uc := capacityUAH * MicroCoulombsPerMicroAmpHour
	b := &Battery{capUC: uc, chargeUC: uc, epsUC: uc * 1e-12, harv: harv, s: s}
	b.checkFn = func() {
		b.advance(b.s.Now())
		if b.depleted {
			b.notify()
			return
		}
		b.project()
	}
	b.notifyFn = b.notify
	return b
}

// OnDepleted installs the depletion callback, invoked exactly once from a
// dedicated simulator event at the crossing instant (never from inside a
// device handler).
func (b *Battery) OnDepleted(fn func(at units.Ticks)) { b.onDepleted = fn }

// CapacityUAH returns the battery's capacity in microamp-hours.
func (b *Battery) CapacityUAH() float64 { return b.capUC / MicroCoulombsPerMicroAmpHour }

// RemainingUAH returns the charge left, integrated up to the last observed
// event (call Sync for an up-to-the-instant reading).
func (b *Battery) RemainingUAH() float64 { return b.chargeUC / MicroCoulombsPerMicroAmpHour }

// MarginFrac returns the remaining charge as a fraction of capacity in
// [0, 1] — the "energy margin" of a lifetime study.
func (b *Battery) MarginFrac() float64 { return b.chargeUC / b.capUC }

// Depleted reports whether the battery has run out.
func (b *Battery) Depleted() bool { return b.depleted }

// DiedAt returns the exact depletion instant; valid only once Depleted.
func (b *Battery) DiedAt() units.Ticks { return b.diedAt }

// Sync integrates the battery state up to time t (normally the node's
// current time). Reports and end-of-run margins use it; the event-driven
// path does not need it.
func (b *Battery) Sync(t units.Ticks) { b.advance(t) }

// CurrentChanged implements CurrentListener: integrate net charge at the old
// draw level up to t, adopt the new level, and re-project the depletion
// crossing. Stale timestamps (before the last integration point) are
// dropped, mirroring the meter.
func (b *Battery) CurrentChanged(t units.Ticks, total units.MicroAmps) {
	if t < b.lastT {
		return
	}
	b.advance(t)
	b.drawUA = total
	b.project()
}

// harvestAt returns the income segment at t.
func (b *Battery) harvestAt(t units.Ticks) (units.MicroAmps, units.Ticks) {
	if b.harv == nil {
		return 0, HorizonForever
	}
	return b.harv.CurrentAt(t)
}

// netChargeUC converts a constant net draw over dt ticks to microcoulombs:
// uA * us * 1e-6 = uC.
func netChargeUC(net units.MicroAmps, dt units.Ticks) float64 {
	return float64(net) * float64(dt) * 1e-6
}

// crossTicks returns the smallest non-negative dt such that a constant net
// discharge for dt ticks consumes charge (within tolerance). A closed-form
// ceil of the division can land one tick off because 1e-6 is not exactly
// representable; the estimate is corrected by direct evaluation instead.
func (b *Battery) crossTicks(charge float64, net units.MicroAmps) units.Ticks {
	if charge <= b.epsUC {
		return 0
	}
	dt := units.Ticks(charge / netChargeUC(net, 1))
	for netChargeUC(net, dt) < charge-b.epsUC {
		dt++
	}
	for dt > 0 && netChargeUC(net, dt-1) >= charge-b.epsUC {
		dt--
	}
	return dt
}

// advance integrates [lastT, t) segment by segment, capping at capacity and
// detecting the exact zero crossing.
func (b *Battery) advance(t units.Ticks) {
	if b.depleted || t <= b.lastT {
		if t > b.lastT {
			b.lastT = t
		}
		return
	}
	for b.lastT < t {
		in, until := b.harvestAt(b.lastT)
		seg := t
		if until < seg {
			seg = until
		}
		net := b.drawUA - in // positive: discharging
		dt := seg - b.lastT
		dUC := netChargeUC(net, dt)
		if net > 0 && dUC >= b.chargeUC-b.epsUC {
			// Crossing inside this segment: solve for the exact instant.
			cross := b.lastT + b.crossTicks(b.chargeUC, net)
			if cross > seg {
				cross = seg
			}
			b.chargeUC = 0
			b.lastT = t
			b.depleted = true
			b.diedAt = cross
			return
		}
		b.chargeUC -= dUC
		if b.chargeUC > b.capUC {
			b.chargeUC = b.capUC
		}
		b.lastT = seg
	}
}

// project schedules (or re-schedules) the depletion check event from the
// current state. If the walk finds a crossing the event lands exactly there;
// if income keeps the battery alive past the walked horizon, a re-check is
// scheduled at that horizon instead, so projection work per event stays
// bounded.
func (b *Battery) project() {
	if b.notified {
		return
	}
	if b.check.Scheduled() {
		b.s.Cancel(b.check)
	}
	if b.depleted {
		b.scheduleNotify(b.diedAt)
		return
	}
	charge := b.chargeUC
	at := b.lastT
	for i := 0; i < maxProjectSegments; i++ {
		in, until := b.harvestAt(at)
		net := b.drawUA - in
		if until == HorizonForever {
			if net <= 0 {
				return // steady income >= draw: never depletes at this level
			}
			if charge/netChargeUC(net, 1) >= math.MaxInt64/4 {
				return // depletion beyond any simulable horizon
			}
			b.scheduleCheck(at + b.crossTicks(charge, net))
			return
		}
		dt := until - at
		dUC := netChargeUC(net, dt)
		if net > 0 && dUC >= charge-b.epsUC {
			b.scheduleCheck(at + b.crossTicks(charge, net))
			return
		}
		charge -= dUC
		if charge > b.capUC {
			charge = b.capUC
		}
		at = until
	}
	// No crossing within the walked horizon; re-evaluate there.
	b.scheduleCheck(at)
}

// scheduleCheck arms the check event at the given instant (clamped to the
// simulator's present so a projection computed from a lagging integration
// point cannot schedule into the past).
func (b *Battery) scheduleCheck(at units.Ticks) {
	if now := b.s.Now(); at < now {
		at = now
	}
	// Marked: a check can deplete the battery and kill the node, which
	// touches shared structures (medium unregister, world death list), so the
	// partition scheduler must run it serially, never inside a window.
	b.check = b.s.ScheduleMarked(at, sim.PrioHardware, b.checkFn)
}

// scheduleNotify arms the one-shot depletion notification.
func (b *Battery) scheduleNotify(at units.Ticks) {
	if now := b.s.Now(); at < now {
		at = now
	}
	// Marked for the same reason as scheduleCheck: the depletion callback is
	// the node-death path.
	b.check = b.s.ScheduleMarked(at, sim.PrioHardware, b.notifyFn)
}

func (b *Battery) notify() {
	if b.notified {
		return
	}
	b.notified = true
	if b.onDepleted != nil {
		b.onDepleted(b.diedAt)
	}
}

// String summarizes the battery state for debug output.
func (b *Battery) String() string {
	return fmt.Sprintf("battery %.0f/%.0f uAh (%.1f%%)",
		b.RemainingUAH(), b.CapacityUAH(), b.MarginFrac()*100)
}
