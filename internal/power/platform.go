// Package power describes the HydroWatch platform's energy sinks and power
// states (Table 1 of the paper) and models the board's aggregate current
// draw as those states change.
//
// Two draw tables exist side by side:
//
//   - NominalDraws: the datasheet values printed in Table 1.
//   - CalibratedDraws: the values the paper actually measured on its board
//     (Tables 2 and 3). The simulation uses these as physical ground truth,
//     so nominal-vs-measured discrepancies survive into the reproduction
//     exactly as they did on real hardware.
package power

import (
	"repro/internal/core"
	"repro/internal/units"
)

// Resource identifiers for the platform's energy sinks. ResBaseline is not a
// named sink in Table 1; it models the board's always-on draw (quiescent
// regulator, supply network, sleeping MCU) which the paper's regressions
// absorb into the constant term.
const (
	ResCPU core.ResourceID = iota
	ResVRef
	ResADC
	ResDAC
	ResIntFlash
	ResTempSensor
	ResComparator
	ResSupply
	ResRadioReg
	ResRadioBatMon
	ResRadioCtl
	ResRadioRx
	ResRadioTx
	ResFlash
	ResLED0
	ResLED1
	ResLED2
	ResSensor
	ResBaseline
	// NumResources is the number of defined platform resources.
	NumResources
)

// CPU power states. State 0 is the platform's default sleep mode (LPM3),
// chosen as the baseline so its draw folds into the regression constant,
// matching how the paper's Blink analysis treats the CPU as two-state
// (active/idle).
const (
	CPUSleep  core.PowerState = 0 // LPM3
	CPUActive core.PowerState = 1
	CPULPM0   core.PowerState = 2
	CPULPM1   core.PowerState = 3
	CPULPM2   core.PowerState = 4
	CPULPM4   core.PowerState = 5
)

// Two-state sinks (LEDs, voltage reference, comparator, temperature sensor,
// supply supervisor, battery monitor, SHT11).
const (
	StateOff core.PowerState = 0
	StateOn  core.PowerState = 1
)

// ADC states.
const (
	ADCIdle       core.PowerState = 0
	ADCConverting core.PowerState = 1
)

// DAC states.
const (
	DACOff   core.PowerState = 0
	DACConv2 core.PowerState = 1
	DACConv5 core.PowerState = 2
	DACConv7 core.PowerState = 3
)

// Internal (MCU) flash states.
const (
	IntFlashIdle    core.PowerState = 0
	IntFlashProgram core.PowerState = 1
	IntFlashErase   core.PowerState = 2
)

// Radio regulator states.
const (
	RadioRegOff core.PowerState = 0
	RadioRegOn  core.PowerState = 1
	RadioRegPD  core.PowerState = 2
)

// Radio control path states.
const (
	RadioCtlOff  core.PowerState = 0
	RadioCtlIdle core.PowerState = 1
)

// Radio receive path states.
const (
	RadioRxOff    core.PowerState = 0
	RadioRxListen core.PowerState = 1
)

// Radio transmit path states: off, then one state per output power setting.
const (
	RadioTxOff core.PowerState = iota
	RadioTx0dBm
	RadioTxM1dBm
	RadioTxM3dBm
	RadioTxM5dBm
	RadioTxM7dBm
	RadioTxM10dBm
	RadioTxM15dBm
	RadioTxM25dBm
)

// External NOR flash states.
const (
	FlashPowerDown core.PowerState = 0
	FlashStandby   core.PowerState = 1
	FlashRead      core.PowerState = 2
	FlashWrite     core.PowerState = 3
	FlashErase     core.PowerState = 4
)

// SHT11-like sensor states.
const (
	SensorIdle   core.PowerState = 0
	SensorSample core.PowerState = 1
)

// StateInfo describes one power state of a sink.
type StateInfo struct {
	State   core.PowerState
	Name    string
	Nominal units.MicroAmps // datasheet draw at 3 V, 1 MHz
}

// SinkInfo describes one energy sink with its power states.
type SinkInfo struct {
	Res    core.ResourceID
	Name   string
	Group  string // "Microcontroller", "Radio", "Flash", "LEDs", "Sensor", "Board"
	States []StateInfo
}

// Platform returns the full Table 1 inventory: every energy sink, its power
// states, and the nominal current draws at 3 V supply and 1 MHz clock.
func Platform() []SinkInfo {
	return []SinkInfo{
		{ResCPU, "CPU", "Microcontroller", []StateInfo{
			{CPUActive, "ACTIVE", 500},
			{CPULPM0, "LPM0", 75},
			{CPULPM1, "LPM1", 75}, // assumed, as in the paper's footnote
			{CPULPM2, "LPM2", 17},
			{CPUSleep, "LPM3", 2.6},
			{CPULPM4, "LPM4", 0.2},
		}},
		{ResVRef, "Voltage Reference", "Microcontroller", []StateInfo{
			{StateOn, "ON", 500},
		}},
		{ResADC, "ADC", "Microcontroller", []StateInfo{
			{ADCConverting, "CONVERTING", 800},
		}},
		{ResDAC, "DAC", "Microcontroller", []StateInfo{
			{DACConv2, "CONVERTING-2", 50},
			{DACConv5, "CONVERTING-5", 200},
			{DACConv7, "CONVERTING-7", 700},
		}},
		{ResIntFlash, "Internal Flash", "Microcontroller", []StateInfo{
			{IntFlashProgram, "PROGRAM", 3000},
			{IntFlashErase, "ERASE", 3000},
		}},
		{ResTempSensor, "Temperature Sensor", "Microcontroller", []StateInfo{
			{StateOn, "SAMPLE", 60},
		}},
		{ResComparator, "Analog Comparator", "Microcontroller", []StateInfo{
			{StateOn, "COMPARE", 45},
		}},
		{ResSupply, "Supply Supervisor", "Microcontroller", []StateInfo{
			{StateOn, "ON", 15},
		}},
		{ResRadioReg, "Regulator", "Radio", []StateInfo{
			{RadioRegOff, "OFF", 1},
			{RadioRegOn, "ON", 22},
			{RadioRegPD, "POWER DOWN", 20},
		}},
		{ResRadioBatMon, "Battery Monitor", "Radio", []StateInfo{
			{StateOn, "ENABLED", 30},
		}},
		{ResRadioCtl, "Control Path", "Radio", []StateInfo{
			{RadioCtlIdle, "IDLE", 426},
		}},
		{ResRadioRx, "Rx Data Path", "Radio", []StateInfo{
			{RadioRxListen, "RX (LISTEN)", 19700},
		}},
		{ResRadioTx, "Tx Data Path", "Radio", []StateInfo{
			{RadioTx0dBm, "TX (+0 dBm)", 17400},
			{RadioTxM1dBm, "TX (-1 dBm)", 16500},
			{RadioTxM3dBm, "TX (-3 dBm)", 15200},
			{RadioTxM5dBm, "TX (-5 dBm)", 13900},
			{RadioTxM7dBm, "TX (-7 dBm)", 12500},
			{RadioTxM10dBm, "TX (-10 dBm)", 11200},
			{RadioTxM15dBm, "TX (-15 dBm)", 9900},
			{RadioTxM25dBm, "TX (-25 dBm)", 8500},
		}},
		{ResFlash, "Flash", "Flash", []StateInfo{
			{FlashPowerDown, "POWER DOWN", 9},
			{FlashStandby, "STANDBY", 25},
			{FlashRead, "READ", 7000},
			{FlashWrite, "WRITE", 12000},
			{FlashErase, "ERASE", 12000},
		}},
		{ResLED0, "LED0 (Red)", "LEDs", []StateInfo{
			{StateOn, "ON", 4300},
		}},
		{ResLED1, "LED1 (Green)", "LEDs", []StateInfo{
			{StateOn, "ON", 3700},
		}},
		{ResLED2, "LED2 (Blue)", "LEDs", []StateInfo{
			{StateOn, "ON", 1700},
		}},
		{ResSensor, "SHT11", "Sensor", []StateInfo{
			{SensorSample, "SAMPLE", 550},
		}},
	}
}

// ResourceNames returns the short names used in timelines and tables.
func ResourceNames() map[core.ResourceID]string {
	return map[core.ResourceID]string{
		ResCPU:         "CPU",
		ResVRef:        "VRef",
		ResADC:         "ADC",
		ResDAC:         "DAC",
		ResIntFlash:    "IntFlash",
		ResTempSensor:  "TempSensor",
		ResComparator:  "Comparator",
		ResSupply:      "Supply",
		ResRadioReg:    "RadioReg",
		ResRadioBatMon: "RadioBatMon",
		ResRadioCtl:    "RadioCtl",
		ResRadioRx:     "RadioRx",
		ResRadioTx:     "RadioTx",
		ResFlash:       "Flash",
		ResLED0:        "Led0",
		ResLED1:        "Led1",
		ResLED2:        "Led2",
		ResSensor:      "SHT11",
		ResBaseline:    "Board",
	}
}

// StateName returns the human-readable name of a (resource, state) pair, or
// "OFF"/numeric fallbacks for states not in Table 1.
func StateName(res core.ResourceID, st core.PowerState) string {
	for _, s := range Platform() {
		if s.Res != res {
			continue
		}
		for _, info := range s.States {
			if info.State == st {
				return info.Name
			}
		}
	}
	if st == 0 {
		return "OFF"
	}
	return "S" + itoa(int(st))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
