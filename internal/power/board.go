package power

import (
	"sort"

	"repro/internal/core"
	"repro/internal/units"
)

// CurrentListener observes changes in the board's aggregate current draw.
// The iCount meter and the oscilloscope bench implement it.
type CurrentListener interface {
	// CurrentChanged reports that from time t onward the board draws total.
	CurrentChanged(t units.Ticks, total units.MicroAmps)
}

// Board models the electrical reality of one node: given the power states of
// all its energy sinks and a draw table, it maintains the aggregate current
// flowing from the supply. It implements core.PowerStateListener, so wiring
// it to a node's Tracker makes every driver-signaled state change
// immediately visible to the meters.
type Board struct {
	volts  units.Volts
	draws  DrawTable
	now    func() units.Ticks
	states map[core.ResourceID]core.PowerState
	order  []core.ResourceID // stable iteration for deterministic sums
	dead   bool

	listeners []CurrentListener
}

// NewBoard creates a board powered at volts using the given physical draw
// table; now supplies simulated time.
func NewBoard(volts units.Volts, draws DrawTable, now func() units.Ticks) *Board {
	return &Board{
		volts:  volts,
		draws:  draws,
		now:    now,
		states: make(map[core.ResourceID]core.PowerState),
	}
}

// Volts returns the supply voltage.
func (b *Board) Volts() units.Volts { return b.volts }

// setState records (res, st), registering the sink if unknown, and reports
// whether this is a real edge — a new sink, or a registered sink actually
// changing state. Idempotent re-signals are absorbed here so every caller
// shares one copy of the dedup semantics.
func (b *Board) setState(res core.ResourceID, st core.PowerState) bool {
	if prev, ok := b.states[res]; ok {
		if prev == st {
			return false
		}
		b.states[res] = st
		return true
	}
	b.order = append(b.order, res)
	sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	b.states[res] = st
	return true
}

// AddSink registers an energy sink in state initial. Registration order does
// not affect results: the total is summed in resource-id order. Re-adding a
// sink that is already registered in the same state is idempotent and does
// not publish a spurious CurrentChanged edge.
func (b *Board) AddSink(res core.ResourceID, initial core.PowerState) {
	if b.setState(res, initial) && !b.dead {
		b.publish()
	}
}

// Listen registers a current listener and immediately informs it of the
// present draw.
func (b *Board) Listen(l CurrentListener) {
	b.listeners = append(b.listeners, l)
	l.CurrentChanged(b.now(), b.Current())
}

// PowerStateChanged implements core.PowerStateListener. A change that leaves
// the recorded state untouched (a driver re-signaling the state it is already
// in) publishes nothing: listeners only see real edges.
func (b *Board) PowerStateChanged(res core.ResourceID, old, now core.PowerState) {
	if b.setState(res, now) && !b.dead {
		b.publish()
	}
}

// Current returns the instantaneous aggregate draw. It is recomputed from
// scratch on every query so repeated transitions cannot accumulate
// floating-point drift. A shut-down board draws nothing.
func (b *Board) Current() units.MicroAmps {
	if b.dead {
		return 0
	}
	var total units.MicroAmps
	for _, res := range b.order {
		total += b.draws.Draw(res, b.states[res])
	}
	return total
}

// Shutdown models supply collapse (battery depletion): from now on the board
// draws nothing and publishes no further changes. Listeners receive one final
// zero-current edge so integrating meters close their last segment at the
// death instant. Shutdown is idempotent.
func (b *Board) Shutdown() {
	if b.dead {
		return
	}
	b.dead = true
	b.publish()
}

// Dead reports whether the board has been shut down.
func (b *Board) Dead() bool { return b.dead }

// State returns the recorded power state of res.
func (b *Board) State(res core.ResourceID) core.PowerState { return b.states[res] }

func (b *Board) publish() {
	t := b.now()
	cur := b.Current()
	for _, l := range b.listeners {
		l.CurrentChanged(t, cur)
	}
}
