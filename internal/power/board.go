package power

import (
	"sort"

	"repro/internal/core"
	"repro/internal/units"
)

// CurrentListener observes changes in the board's aggregate current draw.
// The iCount meter and the oscilloscope bench implement it.
type CurrentListener interface {
	// CurrentChanged reports that from time t onward the board draws total.
	CurrentChanged(t units.Ticks, total units.MicroAmps)
}

// Board models the electrical reality of one node: given the power states of
// all its energy sinks and a draw table, it maintains the aggregate current
// flowing from the supply. It implements core.PowerStateListener, so wiring
// it to a node's Tracker makes every driver-signaled state change
// immediately visible to the meters.
//
// Sink state is held in parallel slices sorted by resource id (a node has a
// handful of sinks, so lookups are a short binary search) with the per-sink
// draw cached at edge time: the publish path — run on every power-state edge
// of every node — touches three small contiguous arrays instead of two maps.
type Board struct {
	volts units.Volts
	draws DrawTable
	now   func() units.Ticks
	dead  bool

	// Parallel, sorted by order[i]: the resource ids, their recorded states,
	// and the cached draw for (order[i], states[i]). Summing draw[i] in index
	// order is exactly the old "resource-id order" sum, so aggregate floats
	// are bit-identical to the map-based implementation.
	order  []core.ResourceID
	states []core.PowerState
	draw   []units.MicroAmps

	// lut is the draw table compiled to a dense (res, state) grid at
	// construction: the edge path runs on every power-state change of every
	// node, and an array index there replaces a map hash. Pairs beyond the
	// compiled dimensions (never produced by the platform tables) fall back
	// to the map.
	lut       []units.MicroAmps
	lutStates int

	listeners []CurrentListener
}

// NewBoard creates a board powered at volts using the given physical draw
// table; now supplies simulated time.
func NewBoard(volts units.Volts, draws DrawTable, now func() units.Ticks) *Board {
	b := &Board{
		volts: volts,
		draws: draws,
		now:   now,
	}
	var maxRes, maxState int
	//quanto:ordered max over keys is commutative; order cannot escape
	for k := range draws {
		if int(k.Res) > maxRes {
			maxRes = int(k.Res)
		}
		if int(k.State) > maxState {
			maxState = int(k.State)
		}
	}
	if len(draws) > 0 {
		b.lutStates = maxState + 1
		b.lut = make([]units.MicroAmps, (maxRes+1)*b.lutStates)
		//quanto:ordered each key writes its own LUT cell exactly once; order cannot escape
		for k, v := range draws {
			b.lut[int(k.Res)*b.lutStates+int(k.State)] = v
		}
	}
	return b
}

// lookupDraw returns the draw for (res, st) via the compiled grid.
func (b *Board) lookupDraw(res core.ResourceID, st core.PowerState) units.MicroAmps {
	r, s := int(res), int(st)
	if s < b.lutStates && r*b.lutStates < len(b.lut) {
		return b.lut[r*b.lutStates+s]
	}
	return b.draws.Draw(res, st)
}

// Volts returns the supply voltage.
func (b *Board) Volts() units.Volts { return b.volts }

// find returns the index of res in the sorted sink arrays, or (insertion
// point, false).
func (b *Board) find(res core.ResourceID) (int, bool) {
	i := sort.Search(len(b.order), func(i int) bool { return b.order[i] >= res })
	return i, i < len(b.order) && b.order[i] == res
}

// setState records (res, st), registering the sink if unknown, and reports
// whether this is a real edge — a new sink, or a registered sink actually
// changing state. Idempotent re-signals are absorbed here so every caller
// shares one copy of the dedup semantics.
func (b *Board) setState(res core.ResourceID, st core.PowerState) bool {
	i, ok := b.find(res)
	if ok {
		if b.states[i] == st {
			return false
		}
		b.states[i] = st
		b.draw[i] = b.lookupDraw(res, st)
		return true
	}
	b.order = append(b.order, 0)
	b.states = append(b.states, 0)
	b.draw = append(b.draw, 0)
	copy(b.order[i+1:], b.order[i:])
	copy(b.states[i+1:], b.states[i:])
	copy(b.draw[i+1:], b.draw[i:])
	b.order[i] = res
	b.states[i] = st
	b.draw[i] = b.lookupDraw(res, st)
	return true
}

// AddSink registers an energy sink in state initial. Registration order does
// not affect results: the total is summed in resource-id order. Re-adding a
// sink that is already registered in the same state is idempotent and does
// not publish a spurious CurrentChanged edge.
func (b *Board) AddSink(res core.ResourceID, initial core.PowerState) {
	if b.setState(res, initial) && !b.dead {
		b.publish()
	}
}

// Listen registers a current listener and immediately informs it of the
// present draw.
func (b *Board) Listen(l CurrentListener) {
	b.listeners = append(b.listeners, l)
	l.CurrentChanged(b.now(), b.Current())
}

// PowerStateChanged implements core.PowerStateListener. A change that leaves
// the recorded state untouched (a driver re-signaling the state it is already
// in) publishes nothing: listeners only see real edges.
func (b *Board) PowerStateChanged(res core.ResourceID, old, now core.PowerState) {
	if b.setState(res, now) && !b.dead {
		b.publish()
	}
}

// Current returns the instantaneous aggregate draw. It is recomputed from
// scratch on every query so repeated transitions cannot accumulate
// floating-point drift. A shut-down board draws nothing.
func (b *Board) Current() units.MicroAmps {
	if b.dead {
		return 0
	}
	var total units.MicroAmps
	for _, d := range b.draw {
		total += d
	}
	return total
}

// Shutdown models supply collapse (battery depletion): from now on the board
// draws nothing and publishes no further changes. Listeners receive one final
// zero-current edge so integrating meters close their last segment at the
// death instant. Shutdown is idempotent.
func (b *Board) Shutdown() {
	if b.dead {
		return
	}
	b.dead = true
	b.publish()
}

// Dead reports whether the board has been shut down.
func (b *Board) Dead() bool { return b.dead }

// State returns the recorded power state of res.
func (b *Board) State(res core.ResourceID) core.PowerState {
	if i, ok := b.find(res); ok {
		return b.states[i]
	}
	return 0
}

func (b *Board) publish() {
	t := b.now()
	cur := b.Current()
	for _, l := range b.listeners {
		l.CurrentChanged(t, cur)
	}
}
