package power

import (
	"sort"

	"repro/internal/core"
	"repro/internal/units"
)

// CurrentListener observes changes in the board's aggregate current draw.
// The iCount meter and the oscilloscope bench implement it.
type CurrentListener interface {
	// CurrentChanged reports that from time t onward the board draws total.
	CurrentChanged(t units.Ticks, total units.MicroAmps)
}

// Board models the electrical reality of one node: given the power states of
// all its energy sinks and a draw table, it maintains the aggregate current
// flowing from the supply. It implements core.PowerStateListener, so wiring
// it to a node's Tracker makes every driver-signaled state change
// immediately visible to the meters.
type Board struct {
	volts  units.Volts
	draws  DrawTable
	now    func() units.Ticks
	states map[core.ResourceID]core.PowerState
	order  []core.ResourceID // stable iteration for deterministic sums

	listeners []CurrentListener
}

// NewBoard creates a board powered at volts using the given physical draw
// table; now supplies simulated time.
func NewBoard(volts units.Volts, draws DrawTable, now func() units.Ticks) *Board {
	return &Board{
		volts:  volts,
		draws:  draws,
		now:    now,
		states: make(map[core.ResourceID]core.PowerState),
	}
}

// Volts returns the supply voltage.
func (b *Board) Volts() units.Volts { return b.volts }

// AddSink registers an energy sink in state initial. Registration order does
// not affect results: the total is summed in resource-id order.
func (b *Board) AddSink(res core.ResourceID, initial core.PowerState) {
	if _, ok := b.states[res]; !ok {
		b.order = append(b.order, res)
		sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	}
	b.states[res] = initial
	b.publish()
}

// Listen registers a current listener and immediately informs it of the
// present draw.
func (b *Board) Listen(l CurrentListener) {
	b.listeners = append(b.listeners, l)
	l.CurrentChanged(b.now(), b.Current())
}

// PowerStateChanged implements core.PowerStateListener.
func (b *Board) PowerStateChanged(res core.ResourceID, old, now core.PowerState) {
	if _, ok := b.states[res]; !ok {
		b.order = append(b.order, res)
		sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	}
	b.states[res] = now
	b.publish()
}

// Current returns the instantaneous aggregate draw. It is recomputed from
// scratch on every query so repeated transitions cannot accumulate
// floating-point drift.
func (b *Board) Current() units.MicroAmps {
	var total units.MicroAmps
	for _, res := range b.order {
		total += b.draws.Draw(res, b.states[res])
	}
	return total
}

// State returns the recorded power state of res.
func (b *Board) State(res core.ResourceID) core.PowerState { return b.states[res] }

func (b *Board) publish() {
	t := b.now()
	cur := b.Current()
	for _, l := range b.listeners {
		l.CurrentChanged(t, cur)
	}
}
