package power

import (
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

// edgeRecorder records every CurrentChanged callback with a tag, so tests
// can assert both edge counts and cross-listener ordering.
type edgeRecorder struct {
	tag   string
	calls *[]string
	last  units.MicroAmps
	n     int
}

func (r *edgeRecorder) CurrentChanged(t units.Ticks, total units.MicroAmps) {
	r.n++
	r.last = total
	if r.calls != nil {
		*r.calls = append(*r.calls, r.tag)
	}
}

func edgeBoard() (*Board, DrawTable) {
	draws := DrawTable{
		{ResLED0, StateOn}: 1000,
		{ResLED1, StateOn}: 500,
	}
	now := func() units.Ticks { return 0 }
	return NewBoard(3.0, draws, now), draws
}

func TestBoardReAddSinkSameStateNoSpuriousEdge(t *testing.T) {
	b, _ := edgeBoard()
	rec := &edgeRecorder{}
	b.AddSink(ResLED0, StateOn)
	b.Listen(rec) // Listen itself publishes once
	base := rec.n

	b.AddSink(ResLED0, StateOn) // re-register, same state
	if rec.n != base {
		t.Fatalf("re-adding a sink in the same state published %d spurious edges", rec.n-base)
	}
	b.AddSink(ResLED0, StateOff) // re-register, different state: real edge
	if rec.n != base+1 || rec.last != 0 {
		t.Fatalf("state-changing re-add: %d edges, last %v; want 1 edge to 0 uA", rec.n-base, rec.last)
	}
}

func TestBoardRepeatedStateChangeDeduped(t *testing.T) {
	b, _ := edgeBoard()
	rec := &edgeRecorder{}
	b.AddSink(ResLED0, StateOff)
	b.Listen(rec)
	base := rec.n

	b.PowerStateChanged(ResLED0, StateOff, StateOn)
	if rec.n != base+1 {
		t.Fatalf("real change published %d edges, want 1", rec.n-base)
	}
	// A driver re-signaling the state it is already in must not publish.
	b.PowerStateChanged(ResLED0, StateOn, StateOn)
	b.PowerStateChanged(ResLED0, StateOff, StateOn) // stale 'old', same 'now'
	if rec.n != base+1 {
		t.Fatalf("idempotent changes published %d spurious edges", rec.n-base-1)
	}
}

func TestBoardZeroDrawStates(t *testing.T) {
	b, _ := edgeBoard()
	rec := &edgeRecorder{}
	b.Listen(rec)
	base := rec.n

	// A state absent from the table draws zero but still registers and
	// publishes: the sink exists, its consumption is just nil.
	b.AddSink(ResLED2, StateOn) // no table entry
	if rec.n != base+1 {
		t.Fatalf("zero-draw sink registration published %d edges, want 1", rec.n-base)
	}
	if got := b.Current(); got != 0 {
		t.Fatalf("zero-draw total = %v, want 0", got)
	}
	// Transitioning between two zero-draw states is a real state change and
	// publishes a (value-unchanged) edge: listeners integrating over time
	// care about edges, not deltas.
	b.PowerStateChanged(ResLED2, StateOn, StateOff)
	if rec.n != base+2 {
		t.Fatalf("zero-draw transition published %d edges, want 2", rec.n-base)
	}
	if b.State(ResLED2) != StateOff {
		t.Fatalf("state not recorded: %v", b.State(ResLED2))
	}
}

func TestBoardListenerOrderingDeterministic(t *testing.T) {
	b, _ := edgeBoard()
	var calls []string
	first := &edgeRecorder{tag: "first", calls: &calls}
	second := &edgeRecorder{tag: "second", calls: &calls}
	third := &edgeRecorder{tag: "third", calls: &calls}
	b.Listen(first)
	b.Listen(second)
	b.Listen(third)
	calls = calls[:0]

	b.AddSink(ResLED0, StateOn)
	b.PowerStateChanged(ResLED0, StateOn, StateOff)
	want := []string{"first", "second", "third", "first", "second", "third"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("listener notification order %v, want registration order %v", calls, want)
		}
	}
}

func TestBoardSumsInResourceOrderRegardlessOfRegistration(t *testing.T) {
	// Two boards, sinks registered in opposite order, must agree exactly
	// (not just approximately — float addition order matters).
	b1, _ := edgeBoard()
	b1.AddSink(ResLED0, StateOn)
	b1.AddSink(ResLED1, StateOn)
	b2, _ := edgeBoard()
	b2.AddSink(ResLED1, StateOn)
	b2.AddSink(ResLED0, StateOn)
	if b1.Current() != b2.Current() {
		t.Fatalf("registration order changed the sum: %v vs %v", b1.Current(), b2.Current())
	}
	if b1.Current() != 1500 {
		t.Fatalf("total = %v, want 1500", b1.Current())
	}
}

func TestBoardShutdownSilencesPublishes(t *testing.T) {
	b, _ := edgeBoard()
	rec := &edgeRecorder{}
	b.AddSink(ResLED0, StateOn)
	b.Listen(rec)
	base := rec.n

	b.Shutdown()
	if rec.n != base+1 || rec.last != 0 {
		t.Fatalf("shutdown should publish exactly one zero edge; got %d edges, last %v", rec.n-base, rec.last)
	}
	b.Shutdown() // idempotent
	b.PowerStateChanged(ResLED0, StateOn, StateOff)
	b.AddSink(ResLED1, StateOn)
	if rec.n != base+1 {
		t.Fatalf("dead board published %d edges after shutdown", rec.n-base-1)
	}
	if b.Current() != 0 || !b.Dead() {
		t.Fatalf("dead board draws %v", b.Current())
	}
	// State bookkeeping continues (re-enabling analysis later would need
	// it), only publishing stops.
	if b.State(ResLED0) != StateOff {
		t.Fatalf("dead board dropped a state change")
	}
}

// TestBoardEdgeInvariantWithCore ties the dedup behaviour to the real wiring:
// a PowerStateVar already dedupes idempotent Sets, so the board sees only
// real edges from tracker-driven devices — but hardware models calling
// PowerStateChanged directly get the same guarantee from the board itself.
func TestBoardEdgeInvariantWithCore(t *testing.T) {
	b, _ := edgeBoard()
	rec := &edgeRecorder{}
	b.Listen(rec)
	base := rec.n
	var changes []core.PowerState
	for _, st := range []core.PowerState{StateOn, StateOn, StateOff, StateOff, StateOn} {
		b.PowerStateChanged(ResLED0, b.State(ResLED0), st)
		changes = append(changes, b.State(ResLED0))
	}
	// Five signals, three real transitions (Off->On the first time the sink
	// appears, On->Off, Off->On).
	if rec.n-base != 3 {
		t.Fatalf("published %d edges for 3 real transitions (states seen: %v)", rec.n-base, changes)
	}
}
