package power

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// drive registers the battery behind a constant draw and runs the simulator.
func drive(t *testing.T, capUAH float64, harv Harvester, drawUA units.MicroAmps, until units.Ticks) (*Battery, units.Ticks, bool) {
	t.Helper()
	s := sim.New()
	b := NewBattery(capUAH, harv, s)
	var deadAt units.Ticks = -1
	b.OnDepleted(func(at units.Ticks) { deadAt = at })
	b.CurrentChanged(0, drawUA)
	s.Run(until)
	b.Sync(s.Now())
	return b, deadAt, deadAt >= 0
}

func TestBatteryConstantDrawDepletion(t *testing.T) {
	// 1 uAh = 3600 uC at 1000 uA -> 3.6 s.
	b, at, died := drive(t, 1, nil, 1000, 10*units.Second)
	if !died {
		t.Fatalf("battery did not deplete: %v", b)
	}
	want := units.Ticks(3_600_000)
	if at != want {
		t.Fatalf("died at %d, want %d", at, want)
	}
	if !b.Depleted() || b.DiedAt() != want {
		t.Fatalf("state: depleted=%v diedAt=%d", b.Depleted(), b.DiedAt())
	}
	if b.MarginFrac() != 0 {
		t.Fatalf("margin after death = %v, want 0", b.MarginFrac())
	}
}

func TestBatterySurvivesWithinHorizon(t *testing.T) {
	b, _, died := drive(t, 10, nil, 1000, 10*units.Second)
	if died {
		t.Fatalf("battery depleted unexpectedly")
	}
	// 10 s at 1000 uA = 10000 uC of 36000 uC.
	wantMargin := 1 - 10_000.0/36_000.0
	if math.Abs(b.MarginFrac()-wantMargin) > 1e-9 {
		t.Fatalf("margin = %v, want %v", b.MarginFrac(), wantMargin)
	}
}

func TestBatteryDrawChangeMovesDepletion(t *testing.T) {
	s := sim.New()
	b := NewBattery(1, nil, s) // 3600 uC
	var deadAt units.Ticks = -1
	b.OnDepleted(func(at units.Ticks) { deadAt = at })
	b.CurrentChanged(0, 2000)
	// After 1 s (2000 uC spent) the draw drops to 400 uA:
	// 1600 uC / 400 uA = 4 s more -> death at 5 s.
	s.Schedule(1*units.Second, sim.PrioHardware, func() {
		b.CurrentChanged(1*units.Second, 400)
	})
	s.Run(20 * units.Second)
	if deadAt != 5*units.Second {
		t.Fatalf("died at %v, want 5s", deadAt)
	}
}

func TestBatteryConstantHarvestExtendsLife(t *testing.T) {
	// Net draw 1000-600 = 400 uA over 3600 uC -> 9 s.
	_, at, died := drive(t, 1, ConstantHarvester(600), 1000, 20*units.Second)
	if !died {
		t.Fatalf("battery did not deplete")
	}
	if at != 9*units.Second {
		t.Fatalf("died at %v, want 9s", at)
	}
}

func TestBatteryHarvestDominatesForever(t *testing.T) {
	b, _, died := drive(t, 1, ConstantHarvester(1000), 1000, 60*units.Second)
	if died {
		t.Fatalf("net-zero battery depleted")
	}
	if math.Abs(b.MarginFrac()-1) > 1e-9 {
		t.Fatalf("margin = %v, want 1", b.MarginFrac())
	}
}

func TestBatteryChargeCapsAtCapacity(t *testing.T) {
	s := sim.New()
	b := NewBattery(1, ConstantHarvester(5000), s)
	b.CurrentChanged(0, 100) // net +4900 uA charging a full battery
	s.Run(10 * units.Second)
	b.Sync(s.Now())
	if b.RemainingUAH() > b.CapacityUAH()+1e-9 {
		t.Fatalf("charge %v exceeds capacity %v", b.RemainingUAH(), b.CapacityUAH())
	}
}

func TestPeriodicHarvesterWaveform(t *testing.T) {
	h := PeriodicHarvester{UA: 500, Period: 10 * units.Millisecond, On: 3 * units.Millisecond}
	cases := []struct {
		t     units.Ticks
		ua    units.MicroAmps
		until units.Ticks
	}{
		{0, 500, 3 * units.Millisecond},
		{2999, 500, 3 * units.Millisecond},
		{3 * units.Millisecond, 0, 10 * units.Millisecond},
		{9999, 0, 10 * units.Millisecond},
		{10 * units.Millisecond, 500, 13 * units.Millisecond},
	}
	for _, c := range cases {
		ua, until := h.CurrentAt(c.t)
		if ua != c.ua || until != c.until {
			t.Fatalf("CurrentAt(%d) = (%v, %v), want (%v, %v)", c.t, ua, until, c.ua, c.until)
		}
	}
}

func TestPeriodicHarvesterPhase(t *testing.T) {
	h := PeriodicHarvester{UA: 100, Period: 10, On: 5, Phase: 2}
	if ua, until := h.CurrentAt(0); ua != 0 || until != 2 {
		t.Fatalf("CurrentAt(0) = (%v, %v), want dark until phase start", ua, until)
	}
	if ua, until := h.CurrentAt(2); ua != 100 || until != 7 {
		t.Fatalf("CurrentAt(2) = (%v, %v), want lit until 7", ua, until)
	}
}

func TestBatteryPeriodicHarvestExactDeath(t *testing.T) {
	// Draw 1000 uA; harvest 1000 uA half the time (period 2 s, on 1 s):
	// net drain averages 500 uA -> 3600 uC lasts 7.2 s of average, but the
	// discharge only happens in the dark second of each cycle, 3600 uC /
	// 1000 uA = 3.6 s of dark time. Dark seconds are [1,2), [3,4), [5,6),
	// [7,8): 3.6 s of dark accumulates at t = 1+1+1+0.6 into the 4th dark
	// window -> death at 7.6 s.
	h := PeriodicHarvester{UA: 1000, Period: 2 * units.Second, On: 1 * units.Second}
	_, at, died := drive(t, 1, h, 1000, 30*units.Second)
	if !died {
		t.Fatalf("battery did not deplete")
	}
	if at != units.Ticks(7_600_000) {
		t.Fatalf("died at %v, want 7.6s", at)
	}
}

func TestBatteryProjectionBeyondWalkHorizon(t *testing.T) {
	// A short-period harvester forces the projection to walk many segments;
	// death lands far beyond one walk's horizon but must still be exact.
	// Net: 1000 uA for 1 ms, 0 uA (1000 harvested) for 1 ms, i.e. average
	// 500 uA. 3600 uC / 1000 uA = 3.6 s of discharge time, accumulated half
	// of each 2 ms cycle -> death at 7.2 s minus the final on-window shift:
	// discharge completes 3600 cycles in, at cycle 3600's dark end. Dark
	// windows are [0,1)ms, [2,3)ms, ... so 3.6 s of dark time completes at
	// t = 2*3.6 s - 1 ms... simpler: trust exactness and pin the value.
	h := PeriodicHarvester{UA: 1000, Period: 2 * units.Millisecond, On: 1 * units.Millisecond, Phase: 1 * units.Millisecond}
	_, at, died := drive(t, 1, h, 1000, 30*units.Second)
	if !died {
		t.Fatalf("battery did not deplete")
	}
	// Discharge happens in [0,1)ms of each 2 ms cycle (phase shifts "on" to
	// the second half). 3.6 s of discharge = 3600 full dark windows; the
	// 3600th dark window is [7.198 s, 7.199 s), death at its end.
	if at != units.Ticks(7_199_000) {
		t.Fatalf("died at %v us, want 7199000", at)
	}
}

func TestBatteryDeterministicAcrossReruns(t *testing.T) {
	run := func() units.Ticks {
		h := PeriodicHarvester{UA: 700, Period: 33 * units.Millisecond, On: 13 * units.Millisecond}
		_, at, died := drive(t, 2, h, 900, 120*units.Second)
		if !died {
			t.Fatalf("battery did not deplete")
		}
		return at
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("death time not deterministic: %v vs %v", a, b)
	}
}

func TestNewBatteryRejectsNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewBattery(0) did not panic")
		}
	}()
	NewBattery(0, nil, sim.New())
}
