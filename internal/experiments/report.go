// Package experiments contains one harness per table and figure in the
// paper's evaluation (Section 4). Each harness runs the corresponding
// workload on the simulated platform, performs the offline analysis, and
// renders the same rows or series the paper reports, alongside structured
// values that the test suite and EXPERIMENTS.md assert against.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/scenario"
)

// Report is the uniform output of an experiment harness.
type Report struct {
	// ID identifies the experiment ("table2", "fig13", ...).
	ID string
	// Title is the experiment's headline.
	Title string
	// Text is the rendered table or series, human-readable.
	Text string
	// Values carries headline numbers keyed by stable names, for
	// programmatic assertions.
	Values map[string]float64
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	sb.WriteString(r.Text)
	if len(r.Values) > 0 {
		sb.WriteString("\n-- values --\n")
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%-36s %.6g\n", k, r.Values[k])
		}
	}
	return sb.String()
}

// newReport allocates a report.
func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

// runScenario builds one declarative spec through the app registry, runs it
// to completion, and returns the instance for analysis. Every experiment
// harness defines its workload this way, so the same configurations are
// sweepable from `quanto-trace sweep` without touching harness code.
func runScenario(spec scenario.Spec) (*scenario.Instance, error) {
	in, err := scenario.Build(spec)
	if err != nil {
		return nil, err
	}
	in.Run()
	return in, nil
}

// analyzeNode runs the default analysis pipeline on one node's log via the
// single-pass streaming analyzer.
func analyzeNode(w *mote.World, n *mote.Node) (*analysis.Analysis, error) {
	sa := analysis.NewStreamAnalyzer(n.ID, n.Meter.PulseEnergy(), n.Volts, w.Dict, analysis.DefaultOptions())
	sa.RecordBatch(n.Log.Entries)
	return sa.Finish()
}

// labelName renders a label through the world dictionary.
func labelName(w *mote.World, l core.Label) string {
	if l == analysis.ConstLabel {
		return "Const."
	}
	return w.Dict.LabelName(l)
}

// All runs every experiment with the given seed and returns the reports in
// paper order. It is the backbone of cmd/quanto and the benchmark suite.
func All(seed uint64) ([]*Report, error) {
	type mk struct {
		name string
		fn   func(uint64) (*Report, error)
	}
	order := []mk{
		{"table1", func(uint64) (*Report, error) { return Table1(), nil }},
		{"fig10", Figure10},
		{"table2", Table2},
		{"fig11", Figure11},
		{"table3", Table3},
		{"fig12", Figure12},
		{"fig13", Figure13},
		{"fig14", Figure14},
		{"fig15", Figure15},
		{"fig16", Figure16},
		{"table4", Table4},
		{"table5", func(uint64) (*Report, error) { return Table5() }},
	}
	var out []*Report
	for _, m := range order {
		r, err := m.fn(seed)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", m.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
