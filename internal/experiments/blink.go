package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// blinkResources are the rows of the Blink figures and tables.
var blinkResources = []core.ResourceID{power.ResCPU, power.ResLED0, power.ResLED1, power.ResLED2}

// blinkScenario is the paper's canonical 48 s Blink run as a declarative
// scenario — the single definition every Blink-based exhibit shares.
func blinkScenario(seed uint64) (*mote.World, *mote.Node, *apps.Blink, error) {
	in, err := runScenario(scenario.Spec{App: "blink", Seed: seed, DurationUS: int64(48 * units.Second)})
	if err != nil {
		return nil, nil, nil, err
	}
	b := in.App.(*apps.Blink)
	return in.World, b.Node, b, nil
}

// Figure11 reproduces the Blink activity/power profile: (a) the 48 s
// activity timeline per hardware component with the measured power draw,
// (b) the detail of a transition where all three LEDs switch off, and
// (c) the stacked reconstruction compared against the oscilloscope.
func Figure11(seed uint64) (*Report, error) {
	r := newReport("fig11", "Blink activity and power profile (48 s run)")
	w, n, _, err := blinkScenario(seed)
	if err != nil {
		return nil, err
	}
	a, err := analyzeNode(w, n)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	sb.WriteString("(a) 48 s activity timeline (each letter one activity; '.' idle):\n")
	rows := a.ActivityRows(blinkResources, 0, a.Span())
	sb.WriteString(analysis.RenderGantt(rows, 0, a.Span(), 96))
	fmt.Fprintf(&sb, "Average measured power: %.2f mW over %.1f s\n\n",
		a.AveragePowerMW(), float64(a.Span())/1e6)

	// (b) Find the all-on -> all-off transition: the LED0 off edge where
	// all LEDs were on (t = 8 s in the paper's run).
	tTrans := int64(-1)
	for _, seg := range a.States[power.ResLED0] {
		if seg.State != power.StateOn {
			continue
		}
		end := seg.End
		allOn := ledsOnAt(a, end-1)
		if allOn[0] && allOn[1] && allOn[2] {
			tTrans = end
			break
		}
	}
	if tTrans >= 0 {
		lo, hi := tTrans-1000, tTrans+3000
		sb.WriteString("(b) Transition detail (4 ms window, all LEDs on -> off):\n")
		rows := a.ActivityRows(blinkResources, lo, hi)
		sb.WriteString(analysis.RenderGantt(rows, lo, hi, 96))
		sb.WriteByte('\n')
	}

	// (c) Stacked reconstruction vs oscilloscope energy over the full run.
	recUJ, scopeUJ, relErr := a.CompareWithScope(n.Scope, n.Volts, 0, a.Span())
	fmt.Fprintf(&sb, "(c) Reconstructed energy: %.1f mJ; oscilloscope: %.1f mJ; rel. err %.4f%%\n",
		recUJ/1000, scopeUJ/1000, relErr*100)
	fmt.Fprintf(&sb, "    Quanto-measured vs reconstructed rel. err: %.5f%% (paper: 0.004%%)\n",
		a.ReconstructionError()*100)

	r.Text = sb.String()
	r.Values["avg_power_mW"] = a.AveragePowerMW()
	r.Values["recon_vs_scope_rel_err"] = relErr
	r.Values["recon_vs_meter_rel_err"] = a.ReconstructionError()
	r.Values["transition_found"] = boolVal(tTrans >= 0)
	return r, nil
}

func ledsOnAt(a *analysis.Analysis, t int64) [3]bool {
	var out [3]bool
	for i, res := range []core.ResourceID{power.ResLED0, power.ResLED1, power.ResLED2} {
		for _, seg := range a.States[res] {
			if seg.Start <= t && t < seg.End {
				out[i] = seg.State == power.StateOn
				break
			}
		}
	}
	return out
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Table3 reproduces "where the joules have gone in Blink": (a) time spent by
// each activity on each hardware component, (b) the regression's power
// draws, (c) energy per hardware component, and (d) energy per activity.
func Table3(seed uint64) (*Report, error) {
	r := newReport("table3", "Blink time and energy breakdowns")
	w, n, _, err := blinkScenario(seed)
	if err != nil {
		return nil, err
	}
	a, err := analyzeNode(w, n)
	if err != nil {
		return nil, err
	}
	volts := float64(n.Volts)
	var sb strings.Builder

	// (a) Time breakdown.
	times := a.TimeByActivity()
	labels := a.LabelsInUse()
	sb.WriteString("(a) Time breakdown, seconds (activities x hardware components)\n")
	fmt.Fprintf(&sb, "%-18s %10s %10s %10s %10s\n", "Activity", "LED0", "LED1", "LED2", "CPU")
	cols := []core.ResourceID{power.ResLED0, power.ResLED1, power.ResLED2, power.ResCPU}
	colTotals := make([]float64, len(cols))
	for _, l := range labels {
		var row [4]float64
		any := false
		for i, res := range cols {
			row[i] = float64(times[res][l]) / 1e6
			colTotals[i] += row[i]
			if row[i] > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(&sb, "%-18s %10.4f %10.4f %10.4f %10.4f\n", labelName(w, l), row[0], row[1], row[2], row[3])
	}
	fmt.Fprintf(&sb, "%-18s %10.4f %10.4f %10.4f %10.4f\n", "Total", colTotals[0], colTotals[1], colTotals[2], colTotals[3])

	// (b) Regression results.
	sb.WriteString("\n(b) Regression: estimated draw per hardware component\n")
	fmt.Fprintf(&sb, "%-12s %12s %12s\n", "Component", "Iavg (mA)", "Pavg (mW)")
	type fitted struct {
		name string
		p    analysis.Predictor
	}
	fits := []fitted{
		{"LED0", analysis.Predictor{Res: power.ResLED0, State: power.StateOn}},
		{"LED1", analysis.Predictor{Res: power.ResLED1, State: power.StateOn}},
		{"LED2", analysis.Predictor{Res: power.ResLED2, State: power.StateOn}},
		{"CPU", analysis.Predictor{Res: power.ResCPU, State: power.CPUActive}},
	}
	for _, f := range fits {
		mw := a.Reg.PowerMW[f.p]
		fmt.Fprintf(&sb, "%-12s %12.3f %12.3f\n", f.name, mw/volts, mw)
		r.Values[strings.ToLower(f.name)+"_mA"] = mw / volts
	}
	fmt.Fprintf(&sb, "%-12s %12.3f %12.3f\n", "Const.", a.Reg.ConstMW/volts, a.Reg.ConstMW)
	fmt.Fprintf(&sb, "Paper (b): LED0 2.51, LED1 2.24, LED2 0.83, CPU 1.43, Const 0.83 mA\n")

	// (c) Energy per hardware component.
	byRes, constUJ := a.EnergyByResource()
	sb.WriteString("\n(c) Total energy per hardware component\n")
	var total float64
	resOrder := []core.ResourceID{power.ResLED0, power.ResLED1, power.ResLED2, power.ResCPU}
	for _, res := range resOrder {
		e := byRes[res]
		total += e
		fmt.Fprintf(&sb, "%-12s %12.2f mJ\n", w.Dict.ResourceName(res), e/1000)
	}
	total += constUJ
	fmt.Fprintf(&sb, "%-12s %12.2f mJ\n", "Const.", constUJ/1000)
	fmt.Fprintf(&sb, "%-12s %12.2f mJ  (paper: 521.23 mJ)\n", "Total", total/1000)
	r.Values["total_mJ"] = total / 1000
	r.Values["const_mJ"] = constUJ / 1000

	// (d) Energy per activity.
	byAct := a.EnergyByActivity()
	sb.WriteString("\n(d) Total energy per activity\n")
	actKeys := make([]core.Label, 0, len(byAct))
	for l := range byAct {
		actKeys = append(actKeys, l)
	}
	sort.Slice(actKeys, func(i, j int) bool { return actKeys[i] < actKeys[j] })
	var actTotal float64
	for _, l := range actKeys {
		e := byAct[l]
		actTotal += e
		if e < 0.5 && l != analysis.ConstLabel {
			continue
		}
		fmt.Fprintf(&sb, "%-18s %12.2f mJ\n", labelName(w, l), e/1000)
	}
	fmt.Fprintf(&sb, "%-18s %12.2f mJ\n", "Total", actTotal/1000)
	r.Values["activity_total_mJ"] = actTotal / 1000
	r.Values["measured_total_mJ"] = a.TotalEnergyUJ() / 1000

	// Per-activity headline values for the tests (Red should carry LED0's
	// energy, etc.).
	for _, l := range actKeys {
		name := labelName(w, l)
		switch {
		case strings.HasSuffix(name, ":Red"):
			r.Values["red_mJ"] = byAct[l] / 1000
		case strings.HasSuffix(name, ":Green"):
			r.Values["green_mJ"] = byAct[l] / 1000
		case strings.HasSuffix(name, ":Blue"):
			r.Values["blue_mJ"] = byAct[l] / 1000
		}
	}
	r.Text = sb.String()
	return r, nil
}
