package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/units"
)

// NetworkFootprint is an additional exhibit beyond the paper's figures: it
// quantifies the "butterfly effect" tracking proposed in Section 5.3 by
// running a multihop relay and measuring how much of the originating
// activity's energy lands on remote nodes. It exists because the paper's own
// evaluation only demonstrates two-node transfer (Bounce); the mechanism
// generalizes unchanged.
func NetworkFootprint(seed uint64) (*Report, error) {
	r := newReport("network", "Network-wide footprint of one activity (4-hop relay)")
	in, err := runScenario(scenario.Spec{App: "relay", Seed: seed, Nodes: 4, DurationUS: int64(20 * units.Second)})
	if err != nil {
		return nil, err
	}
	relay := in.App.(*apps.Relay)

	// Merge every node's log into one time-ordered stream and demux it
	// through per-node streaming analyzers in a single pass.
	net, err := in.Network()
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	gen, del := relay.Stats()
	fmt.Fprintf(&sb, "Relay line of %d nodes; %d packets generated, %d delivered end-to-end.\n\n",
		len(relay.Nodes), gen, del)
	sb.WriteString(net.Report())

	total := net.EnergyByActivity()[relay.Act]
	remote := net.RemoteEnergyUJ(relay.Act)
	fmt.Fprintf(&sb, "\nFootprint of %s:\n", relay.World.Dict.LabelName(relay.Act))
	for _, share := range net.Footprint(relay.Act) {
		fmt.Fprintf(&sb, "  node %d: %8.3f mJ\n", share.Node, share.EnergyUJ/1000)
	}
	fmt.Fprintf(&sb, "Remote share: %.1f%% of the activity's energy is spent away from its origin.\n",
		100*remote/total)

	r.Text = sb.String()
	r.Values["hops"] = float64(len(relay.Nodes))
	r.Values["generated"] = float64(gen)
	r.Values["delivered"] = float64(del)
	r.Values["total_mJ"] = total / 1000
	r.Values["remote_frac"] = remote / total
	r.Values["nodes_in_footprint"] = float64(len(net.Footprint(relay.Act)))
	return r, nil
}
