package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// Figure15 reproduces the surprise oscillator-calibration finding: with the
// TinyOS default configuration, TimerA1 fires 16 times per second for DCO
// calibration even though the application never asked for asynchronous
// serial communication.
func Figure15(seed uint64) (*Report, error) {
	r := newReport("fig15", "Unexpected 16 Hz TimerA1 oscillator-calibration interrupt")
	timerBug := func(calibrate bool) (*apps.TimerBug, error) {
		in, err := runScenario(scenario.Spec{
			App:          "timerbug",
			Seed:         seed,
			CalibrateDCO: calibrate,
			DurationUS:   int64(3 * units.Second),
		})
		if err != nil {
			return nil, err
		}
		return in.App.(*apps.TimerBug), nil
	}
	tb, err := timerBug(true)
	if err != nil {
		return nil, err
	}
	a, err := analyzeNode(tb.World, tb.Node)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	lo, hi := int64(1*units.Second), int64(2*units.Second)
	sb.WriteString("Node 32, one-second window (note the periodic int_TIMERA1 band):\n")
	resources := []core.ResourceID{power.ResCPU, power.ResLED0, power.ResLED2}
	sb.WriteString(analysis.RenderGantt(a.ActivityRows(resources, lo, hi), lo, hi, 96))

	rate := tb.CalibrationRate()
	fmt.Fprintf(&sb, "\nMeasured TimerA1 firing rate: %.2f Hz (paper: 16 Hz)\n", rate)

	// The fixed configuration for contrast.
	fixed, err := timerBug(false)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "With calibration disabled: %.2f Hz\n", fixed.CalibrationRate())
	fmt.Fprintf(&sb, "Log entries: %d (buggy) vs %d (fixed)\n",
		len(tb.Node.Log.Entries), len(fixed.Node.Log.Entries))

	r.Text = sb.String()
	r.Values["rate_hz"] = rate
	r.Values["fixed_rate_hz"] = fixed.CalibrationRate()
	r.Values["entries_buggy"] = float64(len(tb.Node.Log.Entries))
	r.Values["entries_fixed"] = float64(len(fixed.Node.Log.Entries))
	return r, nil
}

// Figure16 reproduces the DMA-versus-interrupt comparison: the timing of one
// packet transmission with the CPU feeding the radio over the bus with an
// interrupt every two bytes versus a single DMA transfer.
func Figure16(seed uint64) (*Report, error) {
	r := newReport("fig16", "Packet transmission: interrupt-driven vs DMA bus transfer")
	const payload = 30
	startAt := 100 * units.Millisecond

	run := func(useDMA bool) (*apps.DMACompare, *analysis.Analysis, units.Ticks, error) {
		in, err := runScenario(scenario.Spec{
			App:          "dma",
			Seed:         seed,
			UseDMA:       useDMA,
			PayloadBytes: payload,
			StartAtUS:    int64(startAt),
			DurationUS:   int64(400 * units.Millisecond),
		})
		if err != nil {
			return nil, nil, 0, err
		}
		d := in.App.(*apps.DMACompare)
		start, done, ok := d.Timing()
		if !ok {
			return nil, nil, 0, fmt.Errorf("send (useDMA=%v) did not complete", useDMA)
		}
		a, err := analyzeNode(d.World, d.Node)
		if err != nil {
			return nil, nil, 0, err
		}
		return d, a, done - start, nil
	}

	_, aNorm, tNorm, err := run(false)
	if err != nil {
		return nil, err
	}
	_, aDMA, tDMA, err := run(true)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	resources := []core.ResourceID{power.ResCPU, power.ResRadioTx}
	lo := int64(startAt) - 2000
	window := int64(tNorm) + 6000
	sb.WriteString("Normal (interrupt per 2 bytes):\n")
	sb.WriteString(analysis.RenderGantt(aNorm.ActivityRows(resources, lo, lo+window), lo, lo+window, 96))
	sb.WriteString("\nDMA:\n")
	sb.WriteString(analysis.RenderGantt(aDMA.ActivityRows(resources, lo, lo+window), lo, lo+window, 96))

	fmt.Fprintf(&sb, "\nSubmit-to-done: normal %.2f ms, DMA %.2f ms  (ratio %.2fx; paper: \"at least twice as fast\")\n",
		float64(tNorm)/1000, float64(tDMA)/1000, float64(tNorm)/float64(tDMA))

	// CPU time consumed by the transfer proxies in each mode.
	cpuNorm := proxyCPUTime(aNorm, "int_UART0RX")
	cpuDMA := proxyCPUTime(aDMA, "int_DACDMA")
	fmt.Fprintf(&sb, "CPU time in bus-transfer interrupts: normal %.2f ms, DMA %.2f ms\n",
		float64(cpuNorm)/1000, float64(cpuDMA)/1000)

	r.Text = sb.String()
	r.Values["normal_ms"] = float64(tNorm) / 1000
	r.Values["dma_ms"] = float64(tDMA) / 1000
	r.Values["speedup"] = float64(tNorm) / float64(tDMA)
	r.Values["cpu_normal_ms"] = float64(cpuNorm) / 1000
	r.Values["cpu_dma_ms"] = float64(cpuDMA) / 1000
	return r, nil
}

// proxyCPUTime sums the CPU's raw time under the named proxy activity.
func proxyCPUTime(a *analysis.Analysis, name string) int64 {
	var label core.Label
	found := false
	for l, n := range a.Dict.Activities {
		if n == name && l.Origin() == a.Trace.Node {
			label, found = l, true
			break
		}
	}
	if !found {
		return 0
	}
	var total int64
	if tl := a.Single[power.ResCPU]; tl != nil {
		for _, seg := range tl.Segs {
			if seg.Label == label {
				total += seg.End - seg.Start
			}
		}
	}
	return total
}
