package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// Figure12 reproduces the Bounce cross-node activity tracking figure: on
// node 1, (a) a two-second window showing work attributed to both
// 1:BounceApp and 4:BounceApp, (b) the detail of a packet reception (SFD
// proxy, bus-transfer proxies, then the bind to the remote activity), and
// (c) the detail of a transmission performed as part of the remote
// activity.
func Figure12(seed uint64) (*Report, error) {
	r := newReport("fig12", "Bounce: activities spanning nodes (node 1's view)")
	in, err := runScenario(scenario.Spec{App: "bounce", Seed: seed, DurationUS: int64(4 * units.Second)})
	if err != nil {
		return nil, err
	}
	b := in.App.(*apps.Bounce)
	w := b.World
	n := b.Nodes[0]
	a, err := analyzeNode(w, n)
	if err != nil {
		return nil, err
	}

	resources := []core.ResourceID{power.ResCPU, power.ResRadioRx, power.ResRadioTx, power.ResLED1, power.ResLED2}

	var sb strings.Builder
	sb.WriteString("(a) 2 s window of node 1's activities:\n")
	lo, hi := int64(1*units.Second), int64(3*units.Second)
	sb.WriteString(analysis.RenderGantt(a.ActivityRows(resources, lo, hi), lo, hi, 96))

	// (b) Reception detail: find a bind on the CPU to a node-4 label and
	// open a window around the proxy episode that precedes it.
	remoteActs := b.Activities()
	remote := remoteActs[1]
	var bindAt int64 = -1
	for i, e := range n.Log.Entries {
		if e.Type == core.EntryActivityBind && e.Res == power.ResCPU && core.Label(e.Val) == remote {
			bindAt = analysis.NewNodeTrace(n.ID, n.Log.Entries[:i+1], n.Meter.PulseEnergy(), n.Volts).End()
			break
		}
	}
	if bindAt >= 0 {
		blo, bhi := bindAt-int64(14*units.Millisecond), bindAt+int64(2*units.Millisecond)
		sb.WriteString("\n(b) Packet reception detail (activity label from node 4):\n")
		sb.WriteString(analysis.RenderGantt(a.ActivityRows(resources, blo, bhi), blo, bhi, 96))
		r.Values["reception_bind_found"] = 1
	} else {
		r.Values["reception_bind_found"] = 0
	}

	// (c) Transmission detail: find a TX window whose radio activity is the
	// remote label (node 1 transmitting on behalf of node 4's activity).
	var txlo, txhi int64 = -1, -1
	if tl := a.Single[power.ResRadioTx]; tl != nil {
		for _, seg := range tl.Segs {
			if seg.Label == remote {
				txlo, txhi = seg.Start-int64(2*units.Millisecond), seg.End+int64(4*units.Millisecond)
				break
			}
		}
	}
	if txlo >= 0 {
		sb.WriteString("\n(c) Packet transmission as part of node 4's activity:\n")
		sb.WriteString(analysis.RenderGantt(a.ActivityRows(resources, txlo, txhi), txlo, txhi, 96))
		r.Values["remote_tx_found"] = 1
	} else {
		r.Values["remote_tx_found"] = 0
	}

	// Cross-node accounting summary.
	times := a.TimeByActivity()
	cpuRemote := float64(times[power.ResCPU][remote]) / 1e3
	led1Remote := float64(times[power.ResLED1][remote]) / 1e3
	fmt.Fprintf(&sb, "\nNode 1 worked %.2f ms of CPU time and lit LED1 %.2f ms on behalf of 4:BounceApp.\n",
		cpuRemote, led1Remote)
	recv, sent := b.Stats()
	fmt.Fprintf(&sb, "Packets: node1 rx=%d tx=%d; node4 rx=%d tx=%d\n", recv[0], sent[0], recv[1], sent[1])

	r.Text = sb.String()
	r.Values["cpu_ms_for_remote"] = cpuRemote
	r.Values["led1_ms_for_remote"] = led1Remote
	r.Values["node1_rx"] = float64(recv[0])
	r.Values["node1_tx"] = float64(sent[0])
	return r, nil
}
