package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// lplWindow matches the paper's data collection: five 14-second periods.
const (
	lplPeriods    = 5
	lplPeriodSecs = 14
)

// lplRun executes the LPL workload on one channel for the full collection
// window — a declarative scenario over the registry — and returns the app
// plus its analysis.
func lplRun(seed uint64, channel int) (*apps.LPL, *analysis.Analysis, error) {
	in, err := runScenario(scenario.Spec{
		App:        "lpl",
		Seed:       seed,
		Channel:    channel,
		DurationUS: int64(lplPeriods * lplPeriodSecs * units.Second),
	})
	if err != nil {
		return nil, nil, err
	}
	l := in.App.(*apps.LPL)
	a, err := analyzeNode(l.World, l.Node)
	if err != nil {
		return nil, nil, err
	}
	return l, a, nil
}

// Figure13 reproduces the 802.11 interference study: cumulative energy over
// time, radio duty cycle, false-positive rate and average power for
// 802.15.4 channel 17 (overlapping 802.11b channel 6) versus channel 26
// (clear).
func Figure13(seed uint64) (*Report, error) {
	r := newReport("fig13", "802.11b/g interference on low-power listening (ch 17 vs ch 26)")
	noisy, aN, err := lplRun(seed, 17)
	if err != nil {
		return nil, err
	}
	clean, aC, err := lplRun(seed, 26)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	sb.WriteString("Cumulative energy (mJ) over one 14 s period:\n")
	fmt.Fprintf(&sb, "%-8s %-12s %-12s\n", "t(s)", "channel 17", "channel 26")
	for t := int64(0); t <= 14; t += 2 {
		us := t * 1e6
		eN := cumulativeEnergyUJ(aN, us)
		eC := cumulativeEnergyUJ(aC, us)
		fmt.Fprintf(&sb, "%-8d %-12.2f %-12.2f\n", t, eN/1000, eC/1000)
	}

	dutyN := float64(aN.ActiveTimeUS(power.ResRadioReg)) / float64(aN.Span())
	dutyC := float64(aC.ActiveTimeUS(power.ResRadioReg)) / float64(aC.Span())
	powN := aN.AveragePowerMW()
	powC := aC.AveragePowerMW()
	fpN := noisy.FalsePositiveRate()
	fpC := clean.FalsePositiveRate()

	fmt.Fprintf(&sb, "\n%-24s %12s %12s %12s\n", "", "ch 17", "ch 26", "paper 17/26")
	fmt.Fprintf(&sb, "%-24s %11.2f%% %11.2f%%  17.8%% / 0%%\n", "False positives", fpN*100, fpC*100)
	fmt.Fprintf(&sb, "%-24s %11.2f%% %11.2f%%  5.58%% / 2.22%%\n", "Radio duty cycle", dutyN*100, dutyC*100)
	fmt.Fprintf(&sb, "%-24s %11.3f %12.3f   1.43 / 0.919 mW\n", "Average power (mW)", powN, powC)
	listenMA := radioListenPowerMW(aN) / float64(noisy.Node.Volts)
	fmt.Fprintf(&sb, "\nListen-mode radio draw from regression: %.2f mA (paper: 18.46 mA at 3.35 V)\n", listenMA)

	r.Text = sb.String()
	r.Values["fp17"] = fpN
	r.Values["fp26"] = fpC
	r.Values["duty17"] = dutyN
	r.Values["duty26"] = dutyC
	r.Values["power17_mW"] = powN
	r.Values["power26_mW"] = powC
	r.Values["power_ratio"] = powN / powC
	return r, nil
}

// radioListenPowerMW sums the fitted draws of the three radio predictors
// active while listening (regulator on, control path idle, receive path
// listening). They switch nearly in lockstep during LPL wake-ups, so the
// regression can only pin down their sum — reporting them together is the
// meaningful number, and matches what the paper's single "listen mode"
// figure represents.
func radioListenPowerMW(a *analysis.Analysis) float64 {
	var total float64
	for _, p := range []analysis.Predictor{
		{Res: power.ResRadioReg, State: power.RadioRegOn},
		{Res: power.ResRadioCtl, State: power.RadioCtlIdle},
		{Res: power.ResRadioRx, State: power.RadioRxListen},
	} {
		total += a.Reg.PowerMW[p]
	}
	return total
}

// cumulativeEnergyUJ integrates the measured pulses up to t (microseconds
// from trace start).
func cumulativeEnergyUJ(a *analysis.Analysis, t int64) float64 {
	var uj float64
	for _, iv := range a.Intervals {
		if iv.Start >= t {
			break
		}
		if iv.End <= t {
			uj += iv.EnergyUJ(a.Trace.PulseUJ)
			continue
		}
		frac := float64(t-iv.Start) / float64(iv.Duration())
		uj += iv.EnergyUJ(a.Trace.PulseUJ) * frac
	}
	return uj
}

// Figure14 details one normal LPL wake-up and one false-positive detection
// on the interfered channel: the radio's power envelope and the CPU's
// activities (VTimer scheduling the wake-ups, the receive proxy that never
// binds to a real activity).
func Figure14(seed uint64) (*Report, error) {
	r := newReport("fig14", "LPL wake-up and false-positive detail (channel 17)")
	l, a, err := lplRun(seed, 17)
	if err != nil {
		return nil, err
	}

	// Classify each radio-regulator on-window by length: a clean check is
	// ~11 ms, a false positive holds for ~100 ms.
	type win struct{ start, end int64 }
	var normal, fp *win
	for _, seg := range a.States[power.ResRadioReg] {
		if seg.State != power.RadioRegOn {
			continue
		}
		d := seg.End - seg.Start
		if d < int64(30*units.Millisecond) && normal == nil {
			normal = &win{seg.Start, seg.End}
		}
		if d >= int64(60*units.Millisecond) && fp == nil {
			fp = &win{seg.Start, seg.End}
		}
		if normal != nil && fp != nil {
			break
		}
	}

	resources := []core.ResourceID{power.ResCPU, power.ResRadioRx}
	var sb strings.Builder
	if normal != nil {
		lo, hi := normal.start-2000, normal.end+4000
		fmt.Fprintf(&sb, "Normal wake-up (radio on %.1f ms):\n", float64(normal.end-normal.start)/1000)
		sb.WriteString(analysis.RenderGantt(a.ActivityRows(resources, lo, hi), lo, hi, 96))
		r.Values["normal_ms"] = float64(normal.end-normal.start) / 1000
	}
	if fp != nil {
		lo, hi := fp.start-2000, fp.end+4000
		fmt.Fprintf(&sb, "\nFalse positive: energy detected, radio held on %.1f ms:\n", float64(fp.end-fp.start)/1000)
		sb.WriteString(analysis.RenderGantt(a.ActivityRows(resources, lo, hi), lo, hi, 96))
		r.Values["fp_ms"] = float64(fp.end-fp.start) / 1000
	}

	rxMW := radioListenPowerMW(a)
	fmt.Fprintf(&sb, "\nRadio power while listening: %.1f mW (paper: 61.8 mW at 3.35 V)\n", rxMW)
	cpuMW := a.Reg.PowerMW[analysis.Predictor{Res: power.ResCPU, State: power.CPUActive}]
	fmt.Fprintf(&sb, "CPU power while active: %.2f mW\n", cpuMW)
	wake, fps := l.Stats()
	fmt.Fprintf(&sb, "Wake-ups: %d, false positives: %d\n", wake, fps)

	r.Text = sb.String()
	r.Values["rx_listen_mW"] = rxMW
	r.Values["found_both"] = boolVal(normal != nil && fp != nil)
	return r, nil
}
