package experiments

import (
	"fmt"
	"strings"

	"repro/internal/power"
)

// Table1 renders the platform's energy sinks, their power states, and the
// nominal current draws at 3 V / 1 MHz — the reproduction of Table 1.
func Table1() *Report {
	r := newReport("table1", "Platform energy sinks, power states, and nominal current draws")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-16s %12s\n", "Energy Sink", "Power State", "Current")
	group := ""
	states := 0
	sinks := 0
	for _, sink := range power.Platform() {
		if sink.Group != group {
			group = sink.Group
			fmt.Fprintf(&sb, "%s\n", group)
		}
		sinks++
		for i, st := range sink.States {
			name := ""
			if i == 0 {
				name = sink.Name
			}
			fmt.Fprintf(&sb, "  %-20s %-16s %12s\n", name, st.Name, formatCurrent(float64(st.Nominal)))
			states++
		}
	}
	r.Text = sb.String()
	r.Values["sinks"] = float64(sinks)
	r.Values["states"] = float64(states)
	// Spot values straight from the paper's table for the tests.
	r.Values["cpu_active_uA"] = float64(power.NominalDraws().Draw(power.ResCPU, power.CPUActive))
	r.Values["rx_listen_uA"] = float64(power.NominalDraws().Draw(power.ResRadioRx, power.RadioRxListen))
	r.Values["led0_uA"] = float64(power.NominalDraws().Draw(power.ResLED0, power.StateOn))
	return r
}

func formatCurrent(ua float64) string {
	if ua >= 1000 {
		return fmt.Sprintf("%.1f mA", ua/1000)
	}
	return fmt.Sprintf("%.1f uA", ua)
}
