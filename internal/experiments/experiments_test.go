package experiments

import (
	"math"
	"strings"
	"testing"
)

const testSeed = 1

func value(t *testing.T, r *Report, key string) float64 {
	t.Helper()
	v, ok := r.Values[key]
	if !ok {
		t.Fatalf("%s: missing value %q (have %v)", r.ID, key, r.Values)
	}
	return v
}

func within(t *testing.T, r *Report, key string, want, tolFrac float64) {
	t.Helper()
	got := value(t, r, key)
	if math.Abs(got-want) > tolFrac*math.Abs(want) {
		t.Errorf("%s: %s = %.4g, want %.4g (+-%.0f%%)", r.ID, key, got, want, tolFrac*100)
	}
}

func TestTable1Inventory(t *testing.T) {
	r := Table1()
	if value(t, r, "sinks") < 17 {
		t.Error("missing sinks")
	}
	if value(t, r, "states") < 35 {
		t.Error("missing states")
	}
	within(t, r, "cpu_active_uA", 500, 0.001)
	within(t, r, "rx_listen_uA", 19700, 0.001)
	within(t, r, "led0_uA", 4300, 0.001)
	if !strings.Contains(r.Text, "TX (-25 dBm)") {
		t.Error("TX power levels missing from rendered table")
	}
}

func TestFigure10Linearity(t *testing.T) {
	r, err := Figure10(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: I = 2.77 f - 0.05, R^2 = 0.99995.
	within(t, r, "slope_mA_per_kHz", 2.77, 0.02)
	if r2 := value(t, r, "r2"); r2 < 0.999 {
		t.Errorf("R^2 = %v, want > 0.999", r2)
	}
	if value(t, r, "states") != 8 {
		t.Error("must observe all 8 Blink steady states")
	}
}

func TestTable2CalibrationMatchesPaper(t *testing.T) {
	r, err := Table2(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Pi: LED0 2.50, LED1 2.23, LED2 0.83, Const 0.79 mA.
	within(t, r, "led0_mA", 2.50, 0.03)
	within(t, r, "led1_mA", 2.23, 0.03)
	within(t, r, "led2_mA", 0.83, 0.05)
	within(t, r, "const_mA", 0.79, 0.06)
	if re := value(t, r, "rel_err"); re > 0.01 {
		t.Errorf("relative error = %.4f, want < 1%% (paper: 0.83%%)", re)
	}
}

func TestFigure11Profile(t *testing.T) {
	r, err := Figure11(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 521 mJ over 48 s is ~10.9 mW.
	within(t, r, "avg_power_mW", 10.86, 0.05)
	if v := value(t, r, "recon_vs_meter_rel_err"); v > 0.001 {
		t.Errorf("reconstruction error = %v, want < 0.1%% (paper: 0.004%%)", v)
	}
	if value(t, r, "transition_found") != 1 {
		t.Error("all-on -> all-off transition not found")
	}
	if !strings.Contains(r.Text, "1:Red") || !strings.Contains(r.Text, "1:VTimer") {
		t.Error("timeline legend missing expected activities")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	r, err := Table3(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper (b): LED0 2.51, LED1 2.24, LED2 0.83, CPU 1.43 mA.
	within(t, r, "led0_mA", 2.51, 0.03)
	within(t, r, "led1_mA", 2.24, 0.03)
	within(t, r, "led2_mA", 0.83, 0.05)
	within(t, r, "cpu_mA", 1.43, 0.25) // small active time: noisier estimate
	// Paper (c)/(d): total 521.23 mJ; Red 180.78, Green 161.10, Blue 59.86.
	within(t, r, "total_mJ", 521.2, 0.03)
	within(t, r, "red_mJ", 180.8, 0.03)
	within(t, r, "green_mJ", 161.1, 0.03)
	within(t, r, "blue_mJ", 59.9, 0.04)
	// Energy must be conserved between views.
	if math.Abs(value(t, r, "activity_total_mJ")-value(t, r, "total_mJ")) > 0.5 {
		t.Error("per-activity and per-resource totals disagree")
	}
}

func TestFigure12CrossNodeTracking(t *testing.T) {
	r, err := Figure12(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if value(t, r, "reception_bind_found") != 1 {
		t.Error("no reception bind found")
	}
	if value(t, r, "remote_tx_found") != 1 {
		t.Error("no transmission under the remote activity found")
	}
	if value(t, r, "cpu_ms_for_remote") <= 0 {
		t.Error("no CPU time attributed to the remote activity")
	}
	if value(t, r, "node1_rx") < 3 {
		t.Error("too few packets exchanged")
	}
	if !strings.Contains(r.Text, "4:BounceApp") {
		t.Error("remote activity missing from timeline")
	}
}

func TestFigure13InterferenceShape(t *testing.T) {
	r, err := Figure13(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 17.8% false positives on ch 17, none on ch 26.
	fp17 := value(t, r, "fp17")
	if fp17 < 0.10 || fp17 > 0.28 {
		t.Errorf("fp17 = %.3f, want ~0.178", fp17)
	}
	if value(t, r, "fp26") != 0 {
		t.Error("channel 26 should see no false positives")
	}
	// Paper: duty 5.58% vs 2.22%.
	within(t, r, "duty26", 0.0222, 0.25)
	duty17 := value(t, r, "duty17")
	if duty17 < 0.04 || duty17 > 0.09 {
		t.Errorf("duty17 = %.4f, want ~0.056", duty17)
	}
	// Power ordering and rough factor (paper: 1.43/0.919 = 1.56).
	ratio := value(t, r, "power_ratio")
	if ratio < 1.2 || ratio > 4.0 {
		t.Errorf("power ratio = %.2f, want 1.2-4.0", ratio)
	}
}

func TestFigure14WakeupDetail(t *testing.T) {
	r, err := Figure14(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if value(t, r, "found_both") != 1 {
		t.Fatal("did not find both a normal wake-up and a false positive")
	}
	// Paper: listen mode 61.8 mW at 3.35 V.
	within(t, r, "rx_listen_mW", 61.8, 0.08)
	// Normal wake-up ~11 ms; false positive ~100 ms hold.
	within(t, r, "normal_ms", 11, 0.3)
	fp := value(t, r, "fp_ms")
	if fp < 90 || fp > 130 {
		t.Errorf("fp hold = %.1f ms, want ~100-113", fp)
	}
}

func TestFigure15SixteenHertz(t *testing.T) {
	r, err := Figure15(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	within(t, r, "rate_hz", 16, 0.05)
	if value(t, r, "fixed_rate_hz") != 0 {
		t.Error("fixed configuration still calibrates")
	}
	if value(t, r, "entries_buggy") <= value(t, r, "entries_fixed") {
		t.Error("buggy configuration should log more entries")
	}
}

func TestFigure16DMASpeedup(t *testing.T) {
	r, err := Figure16(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if sp := value(t, r, "speedup"); sp < 2 {
		t.Errorf("speedup = %.2f, want >= 2 (paper: at least twice as fast)", sp)
	}
	if value(t, r, "cpu_normal_ms") <= value(t, r, "cpu_dma_ms") {
		t.Error("interrupt mode should consume more CPU than DMA")
	}
}

func TestTable4Costs(t *testing.T) {
	r, err := Table4(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	within(t, r, "cost_cycles", 102, 0.001)
	// Paper: 597 entries, 71.05% of active CPU, 0.12% of total.
	entries := value(t, r, "entries")
	if entries < 400 || entries > 1000 {
		t.Errorf("entries = %v, want a few hundred", entries)
	}
	share := value(t, r, "log_share_active")
	if share < 0.5 || share > 0.9 {
		t.Errorf("logging share of active CPU = %.3f, want ~0.71", share)
	}
	total := value(t, r, "log_share_total")
	if total > 0.005 {
		t.Errorf("logging share of total time = %.4f, want ~0.0012", total)
	}
	// Paper: 0.41 mJ of logging energy.
	e := value(t, r, "log_energy_mJ")
	if e < 0.2 || e > 1.0 {
		t.Errorf("logging energy = %.3f mJ, want ~0.45", e)
	}
}

func TestTable5LoC(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if value(t, r, "total_loc") < 1000 {
		t.Error("implausibly small instrumentation size")
	}
	if !strings.Contains(r.Text, "CC2420 Radio") {
		t.Error("radio row missing")
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	reports, err := All(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 12 {
		t.Fatalf("ran %d experiments, want 12", len(reports))
	}
	seen := make(map[string]bool)
	for _, r := range reports {
		if r.Text == "" {
			t.Errorf("%s: empty text", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if s := r.String(); !strings.Contains(s, r.Title) {
			t.Errorf("%s: String() missing title", r.ID)
		}
	}
}

func TestNetworkFootprint(t *testing.T) {
	r, err := NetworkFootprint(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if value(t, r, "delivered") != value(t, r, "generated") {
		t.Error("packet loss in the relay")
	}
	if value(t, r, "nodes_in_footprint") != 4 {
		t.Error("footprint must span all 4 nodes")
	}
	frac := value(t, r, "remote_frac")
	if frac < 0.5 || frac > 1.01 {
		t.Errorf("remote fraction = %.3f, want most energy spent remotely", frac)
	}
	if !strings.Contains(r.Text, "Remote share") {
		t.Error("report missing remote share line")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := Table3(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table3(7)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Values {
		if b.Values[k] != v {
			t.Errorf("value %q differs across identical runs: %v vs %v", k, v, b.Values[k])
		}
	}
	if a.Text != b.Text {
		t.Error("rendered text differs across identical runs")
	}
}

func TestDifferentSeedsStillMatchPaperShape(t *testing.T) {
	for _, seed := range []uint64{2, 3} {
		r, err := Table2(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		within(t, r, "led0_mA", 2.50, 0.04)
		within(t, r, "led1_mA", 2.23, 0.04)
	}
}
