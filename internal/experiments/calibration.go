package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/linalg"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

// comboWindow is one steady Blink state: the CPU asleep and a fixed LED
// combination, observed for a total time with a pulse count.
type comboStat struct {
	timeUS  int64
	pulses  uint64
	scopeMA float64 // duration-weighted scope measurement, mA
}

// blinkSteadyStates runs Blink and aggregates its eight steady states:
// per LED combination, the time spent, the iCount pulses, and the
// oscilloscope's measured mean current.
func blinkSteadyStates(seed uint64) (*mote.World, *mote.Node, *analysis.Analysis, map[int]*comboStat, error) {
	w, n, _, err := blinkScenario(seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	a, err := analyzeNode(w, n)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	combos := make(map[int]*comboStat)
	for _, iv := range a.Intervals {
		if iv.States[power.ResCPU] != power.CPUSleep {
			continue
		}
		if iv.Duration() < int64(100*units.Millisecond) {
			continue
		}
		combo := 0
		if iv.States[power.ResLED0] == power.StateOn {
			combo |= 1
		}
		if iv.States[power.ResLED1] == power.StateOn {
			combo |= 2
		}
		if iv.States[power.ResLED2] == power.StateOn {
			combo |= 4
		}
		c := combos[combo]
		if c == nil {
			c = &comboStat{}
			combos[combo] = c
		}
		// Shrink the window slightly so the scope reading excludes the
		// transition edges, as a bench measurement would.
		margin := int64(2 * units.Millisecond)
		mean := n.Scope.MeasuredMean(units.Ticks(iv.Start+margin), units.Ticks(iv.End-margin))
		c.scopeMA += mean.MilliAmps() * float64(iv.Duration())
		c.timeUS += iv.Duration()
		c.pulses += uint64(iv.Pulses)
	}
	for _, c := range combos {
		if c.timeUS > 0 {
			c.scopeMA /= float64(c.timeUS)
		}
	}
	return w, n, a, combos, nil
}

// Figure10 reproduces the calibration figure: per steady Blink state, the
// scope's mean current and the iCount switching frequency, plus the linear
// fit I_avg = a*f_iC + b that the paper reports as I = 2.77 f - 0.05 with
// R^2 = 0.99995.
func Figure10(seed uint64) (*Report, error) {
	r := newReport("fig10", "Current vs iCount switching frequency across Blink steady states")
	_, n, _, combos, err := blinkSteadyStates(seed)
	if err != nil {
		return nil, err
	}

	keys := make([]int, 0, len(combos))
	for k := range combos {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	var fs, is []float64
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-12s %-14s %-16s\n", "L2 L1 L0", "I_scope(mA)", "f_iC(kHz)", "time(s)")
	for _, k := range keys {
		c := combos[k]
		fKHz := float64(c.pulses) / float64(c.timeUS) * 1000
		fs = append(fs, fKHz)
		is = append(is, c.scopeMA)
		fmt.Fprintf(&sb, " %d  %d  %d   %-12.3f %-14.4f %-16.2f\n",
			(k>>2)&1, (k>>1)&1, k&1, c.scopeMA, fKHz, float64(c.timeUS)/1e6)
	}
	slope, intercept, r2, err := linalg.LinFit(fs, is)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "\nLinear fit: I_avg = %.3f * f_iC %+.4f  (R^2 = %.6f)\n", slope, intercept, r2)
	fmt.Fprintf(&sb, "Paper:      I_avg = 2.77 * f_iC - 0.05   (R^2 = 0.99995)\n")
	fmt.Fprintf(&sb, "Energy per pulse implied: %.3f uJ (meter quantum: %.2f uJ)\n",
		slope*float64(n.Volts), n.Meter.PulseEnergy())

	// Short sampled traces of two states, with pulse instants — the
	// waveform view of Figure 10.
	for _, k := range []int{2, 7} {
		w := windowOfCombo(n, k)
		if w == nil {
			continue
		}
		samples := n.Scope.Samples(w[0], w[0]+1500, 100*units.Microsecond)
		pulses := n.Scope.PulseTimes(n.Volts, n.Meter.PulseEnergy(), w[0], w[0]+1500)
		fmt.Fprintf(&sb, "\nState L0L1L2=%d%d%d trace (1.5 ms): %d samples, %d iCount pulses\n",
			k&1, (k>>1)&1, (k>>2)&1, len(samples), len(pulses))
	}
	r.Text = sb.String()
	r.Values["slope_mA_per_kHz"] = slope
	r.Values["intercept_mA"] = intercept
	r.Values["r2"] = r2
	r.Values["states"] = float64(len(keys))
	return r, nil
}

// windowOfCombo finds one steady window of a given LED combination.
func windowOfCombo(n *mote.Node, combo int) *[2]units.Ticks {
	// Blink's LED i toggles every 2^i seconds starting just after boot, so
	// combination bits follow the binary counter of elapsed seconds. State
	// "combo" holds during second t where bits of (t+1) match... rather
	// than derive it, scan the scope steps for a stable 0.9 s window with
	// the right current is overkill; use the analysis-free approach of the
	// known schedule: second s has LED i on iff bit i of (s+1) is set,
	// counting from the first toggle at ~1 s.
	for s := int64(1); s < 47; s++ {
		on0 := ((s)&1 == 1)
		on1 := ((s/2)&1 == 1)
		on2 := ((s/4)&1 == 1)
		got := 0
		if on0 {
			got |= 1
		}
		if on1 {
			got |= 2
		}
		if on2 {
			got |= 4
		}
		if got == combo {
			start := units.Ticks(s)*units.Second + 100*units.Millisecond
			return &[2]units.Ticks{start, start + 800*units.Millisecond}
		}
	}
	return nil
}

// Table2 reproduces the calibration table: the oscilloscope's measured
// current for each Blink steady state, the per-component regression, and
// the reconstruction X*Pi with its relative error (paper: 0.83%).
func Table2(seed uint64) (*Report, error) {
	r := newReport("table2", "Oscilloscope calibration of Blink steady states and regression")
	_, _, _, combos, err := blinkSteadyStates(seed)
	if err != nil {
		return nil, err
	}
	keys := make([]int, 0, len(combos))
	for k := range combos {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if len(keys) < 8 {
		return nil, fmt.Errorf("observed only %d of 8 LED combinations", len(keys))
	}

	x := linalg.NewMatrix(len(keys), 4)
	y := make([]float64, len(keys))
	for i, k := range keys {
		x.Set(i, 0, float64(k&1))
		x.Set(i, 1, float64((k>>1)&1))
		x.Set(i, 2, float64((k>>2)&1))
		x.Set(i, 3, 1)
		y[i] = combos[k].scopeMA
	}
	fit, err := linalg.OLS(x, y)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-4s %-4s %-4s | %-10s | %-10s\n", "L0", "L1", "L2", "C", "I(mA)", "XPi(mA)")
	for i, k := range keys {
		fmt.Fprintf(&sb, "%-4d %-4d %-4d %-4d | %-10.3f | %-10.3f\n",
			k&1, (k>>1)&1, (k>>2)&1, 1, y[i], fit.Fitted[i])
	}
	fmt.Fprintf(&sb, "\nPi:    LED0=%.3f mA  LED1=%.3f mA  LED2=%.3f mA  Const=%.3f mA\n",
		fit.Coef[0], fit.Coef[1], fit.Coef[2], fit.Coef[3])
	fmt.Fprintf(&sb, "Paper: LED0=2.50 mA   LED1=2.23 mA   LED2=0.83 mA   Const=0.79 mA\n")
	fmt.Fprintf(&sb, "Relative error ||Y-XPi||/||Y|| = %.4f%% (paper: 0.83%%)\n", fit.RelErr*100)

	r.Text = sb.String()
	r.Values["led0_mA"] = fit.Coef[0]
	r.Values["led1_mA"] = fit.Coef[1]
	r.Values["led2_mA"] = fit.Coef[2]
	r.Values["const_mA"] = fit.Coef[3]
	r.Values["rel_err"] = fit.RelErr
	return r, nil
}
