package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/power"
)

// Table4 reproduces the logging-cost table: the per-sample cost breakdown
// (41 call + 19 timer + 24 iCount + 18 other = 102 cycles at 1 MHz), the
// 12-byte sample and 800-sample buffer, and the measured impact on the
// canonical 48 s Blink run (paper: 597 entries, 60.71 ms of logging =
// 71.05% of active CPU time but 0.12% of total time, 0.41 mJ).
func Table4(seed uint64) (*Report, error) {
	r := newReport("table4", "Costs of logging")
	w, n, _, err := blinkScenario(seed)
	if err != nil {
		return nil, err
	}
	a, err := analyzeNode(w, n)
	if err != nil {
		return nil, err
	}

	costs := core.DefaultLogCosts()
	entries := n.Trk.Entries()
	logUS := float64(n.Trk.CostCycles()) // 1 cycle = 1 us at 1 MHz
	activeUS := float64(a.ActiveTimeUS(power.ResCPU))
	spanUS := float64(a.Span())

	cpuMW := a.Reg.PowerMW[analysis.Predictor{Res: power.ResCPU, State: power.CPUActive}]
	logEnergyMJ := logUS * (cpuMW + a.Reg.ConstMW) / 1e6 // mW*us -> nJ... (mW*us)/1e3 = uJ; /1e6 = mJ
	totalMJ := a.TotalEnergyUJ() / 1000

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %d samples\n", "Buffer size", core.DefaultRAMBufferEntries)
	fmt.Fprintf(&sb, "%-28s %d bytes\n", "Sample size", core.EntrySize)
	fmt.Fprintf(&sb, "%-28s %d cycles @ 1MHz\n", "Cost of logging", costs.Total())
	fmt.Fprintf(&sb, "%-28s %d cycles\n", "  Call overhead", costs.Call)
	fmt.Fprintf(&sb, "%-28s %d cycles\n", "  Read timer", costs.ReadTimer)
	fmt.Fprintf(&sb, "%-28s %d cycles\n", "  Read iCount", costs.ReadICount)
	fmt.Fprintf(&sb, "%-28s %d cycles\n", "  Others", costs.Other)
	fmt.Fprintf(&sb, "\nBlink, 48 s run:\n")
	fmt.Fprintf(&sb, "%-28s %d (paper: 597)\n", "Entries logged", entries)
	fmt.Fprintf(&sb, "%-28s %.2f ms (paper: 60.71 ms)\n", "Time spent logging", logUS/1000)
	fmt.Fprintf(&sb, "%-28s %.2f%% (paper: 71.05%%)\n", "Share of active CPU time", logUS/activeUS*100)
	fmt.Fprintf(&sb, "%-28s %.3f%% (paper: 0.12%%)\n", "Share of total time", logUS/spanUS*100)
	fmt.Fprintf(&sb, "%-28s %.2f mJ (paper: 0.41 mJ)\n", "Energy spent logging", logEnergyMJ)
	fmt.Fprintf(&sb, "%-28s %.2f%% (paper: 0.08%%)\n", "Share of total energy", logEnergyMJ/totalMJ*100)
	fmt.Fprintf(&sb, "%-28s %d bytes\n", "Log RAM if buffered", int(entries)*core.EntrySize)

	r.Text = sb.String()
	r.Values["entries"] = float64(entries)
	r.Values["cost_cycles"] = float64(costs.Total())
	r.Values["log_ms"] = logUS / 1000
	r.Values["log_share_active"] = logUS / activeUS
	r.Values["log_share_total"] = logUS / spanUS
	r.Values["log_energy_mJ"] = logEnergyMJ
	return r, nil
}

// instrumentedModules lists, Table 5 style, where this reproduction's
// instrumentation and infrastructure live.
var instrumentedModules = []struct {
	Name string
	Role string
	Dirs []string
}{
	{"Tasks/Timers/Interrupts", "Concurrency + deferral", []string{"internal/kernel"}},
	{"Active Msg.", "Link layer", []string{"internal/am"}},
	{"LEDs", "Device driver", []string{"internal/leds"}},
	{"CC2420 Radio", "Device driver", []string{"internal/radio"}},
	{"SHT11 + Flash", "Sensor + storage drivers", []string{"internal/sensor", "internal/flash"}},
	{"New code", "Quanto infrastructure", []string{"internal/core", "internal/trace", "internal/analysis", "internal/linalg"}},
}

// Table5 reports the size of the instrumented subsystems and the Quanto
// infrastructure in this repository, the analog of the paper's
// lines-of-code accounting (its TinyOS diff was 171+148 modified lines and
// 1275 new lines).
func Table5() (*Report, error) {
	r := newReport("table5", "Instrumentation and infrastructure size (this repository)")
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-26s %-26s %8s %6s\n", "Subsystem", "Role", "LoC", "Files")
	var totalLoc, totalFiles int
	for _, m := range instrumentedModules {
		var loc, files int
		for _, d := range m.Dirs {
			l, f, err := countGoLines(filepath.Join(root, d))
			if err != nil {
				return nil, err
			}
			loc += l
			files += f
		}
		totalLoc += loc
		totalFiles += files
		fmt.Fprintf(&sb, "%-26s %-26s %8d %6d\n", m.Name, m.Role, loc, files)
		key := strings.ToLower(strings.ReplaceAll(strings.Fields(m.Name)[0], "/", "_"))
		r.Values["loc_"+key] = float64(loc)
	}
	fmt.Fprintf(&sb, "%-26s %-26s %8d %6d\n", "Total", "", totalLoc, totalFiles)
	fmt.Fprintf(&sb, "\nPaper: 22 files / 171 lines (core OS) + 16 files / 148 lines (drivers)\n")
	fmt.Fprintf(&sb, "       modified, plus 28 files / 1275 lines of new infrastructure.\n")
	r.Text = sb.String()
	r.Values["total_loc"] = float64(totalLoc)
	r.Values["total_files"] = float64(totalFiles)
	return r, nil
}

// repoRoot locates the module root from this source file's position.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("experiments: cannot locate source file")
	}
	// file = <root>/internal/experiments/costs.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		// Fall back to the working directory (e.g. when built elsewhere).
		wd, werr := os.Getwd()
		if werr != nil {
			return "", err
		}
		for dir := wd; ; dir = filepath.Dir(dir) {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				return dir, nil
			}
			if dir == filepath.Dir(dir) {
				return "", fmt.Errorf("experiments: go.mod not found from %s", wd)
			}
		}
	}
	return root, nil
}

// countGoLines counts non-test Go source lines (excluding blanks) under dir.
func countGoLines(dir string) (lines, files int, err error) {
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files++
		for _, ln := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(ln) != "" {
				lines++
			}
		}
		return nil
	})
	return lines, files, err
}
