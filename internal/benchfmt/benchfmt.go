// Package benchfmt parses `go test -bench` output into the quanto-bench/v1
// JSON schema and diffs two such documents. It backs cmd/benchjson and the
// CI bench-compare step; the committed BENCH_*.json trajectory files at the
// repo root are Doc values serialized with two-space indentation.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Schema is the document identifier; bump it if a field changes meaning.
const Schema = "quanto-bench/v1"

// Doc is one benchmark suite's results on one machine.
type Doc struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite"`
	// Machine context from the bench header, so a trajectory entry is
	// comparable only against runs it actually matches.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line: a (sub-)benchmark and its per-op numbers.
type Benchmark struct {
	// Name has the leading "Benchmark" stripped: "10kNodeRelay/queue=wheel".
	Name string `json:"name"`
	Runs int64  `json:"runs"`

	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Metrics carries every custom b.ReportMetric unit verbatim:
	// "events/sec", "runs/sec", "ns/run", ...
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output and returns a Doc tagged with suite.
// Non-benchmark lines (PASS, ok, test log output) are ignored.
func Parse(r io.Reader, suite string) (*Doc, error) {
	doc := &Doc{Schema: Schema, Suite: suite}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: %w in line %q", err, line)
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkName-8  3  219358627 ns/op  416261 events/run  111280680 B/op  86426 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result")
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix testing appends outside -cpu=1.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count %q", f[1])
	}
	b := Benchmark{Name: name, Runs: runs}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q", f[i])
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

// Load reads a Doc previously written by cmd/benchjson.
func Load(path string) (*Doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, doc.Schema, Schema)
	}
	return &doc, nil
}

// Delta is one compared dimension of one benchmark. Delta is the relative
// change versus the baseline: +0.20 means 20% worse (slower, more allocs).
type Delta struct {
	Name      string
	Dimension string // "time" or "allocs"
	Base      float64
	Current   float64
	Delta     float64
	Missing   bool // baseline benchmark absent from the current run
}

// Compare diffs current against base on the regression-relevant dimensions.
// Benchmarks only present in current are new coverage, not regressions, and
// are skipped; baseline entries missing from current are flagged so a
// silently deleted benchmark cannot hide a regression. The threshold is not
// applied here — every delta is returned and the caller picks severity.
func Compare(base, current *Doc, threshold float64) []Delta {
	cur := map[string]Benchmark{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var out []Delta
	for _, bb := range base.Benchmarks {
		cb, ok := cur[bb.Name]
		if !ok {
			out = append(out, Delta{Name: bb.Name, Missing: true})
			continue
		}
		if bb.NsPerOp > 0 {
			out = append(out, Delta{
				Name: bb.Name, Dimension: "time",
				Base: bb.NsPerOp, Current: cb.NsPerOp,
				Delta: cb.NsPerOp/bb.NsPerOp - 1,
			})
		}
		if bb.AllocsPerOp > 0 {
			out = append(out, Delta{
				Name: bb.Name, Dimension: "allocs",
				Base: bb.AllocsPerOp, Current: cb.AllocsPerOp,
				Delta: cb.AllocsPerOp/bb.AllocsPerOp - 1,
			})
		}
	}
	return out
}
