package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
Benchmark10kNodeRelay/queue=wheel         	       3	 219358627 ns/op	    416261 events/run	   1897630 events/sec	111280680 B/op	   86426 allocs/op
Benchmark10kNodeRelay/queue=heap          	       3	 496991374 ns/op	    416261 events/run	    837562 events/sec	196568520 B/op	  974841 allocs/op
BenchmarkSweepThroughput/workers=4-8      	       2	  51234567 ns/op	    800432 ns/run	      1249 runs/sec
PASS
ok  	repro	6.552s
`

func parseSample(t *testing.T) *Doc {
	t.Helper()
	doc, err := Parse(strings.NewReader(sample), "core")
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParse(t *testing.T) {
	doc := parseSample(t)
	if doc.Schema != Schema || doc.Suite != "core" {
		t.Fatalf("header = %q/%q", doc.Schema, doc.Suite)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("machine context = %q/%q/%q", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	wheel := doc.Benchmarks[0]
	if wheel.Name != "10kNodeRelay/queue=wheel" || wheel.Runs != 3 {
		t.Fatalf("wheel = %+v", wheel)
	}
	if wheel.NsPerOp != 219358627 || wheel.AllocsPerOp != 86426 || wheel.BytesPerOp != 111280680 {
		t.Fatalf("wheel numbers = %+v", wheel)
	}
	if wheel.Metrics["events/sec"] != 1897630 || wheel.Metrics["events/run"] != 416261 {
		t.Fatalf("wheel metrics = %v", wheel.Metrics)
	}
	// The -8 GOMAXPROCS suffix must strip, custom units must survive.
	sweep := doc.Benchmarks[2]
	if sweep.Name != "SweepThroughput/workers=4" {
		t.Fatalf("sweep name = %q", sweep.Name)
	}
	if sweep.Metrics["runs/sec"] != 1249 {
		t.Fatalf("sweep metrics = %v", sweep.Metrics)
	}
}

func TestCompare(t *testing.T) {
	base := parseSample(t)
	cur := parseSample(t)
	// Unchanged run: every delta ~0, nothing missing.
	for _, d := range Compare(base, cur, 0.15) {
		if d.Missing || d.Delta != 0 {
			t.Fatalf("self-compare delta = %+v", d)
		}
	}

	// Regress the wheel benchmark 30% in time and 2x in allocs.
	cur.Benchmarks[0].NsPerOp *= 1.30
	cur.Benchmarks[0].AllocsPerOp *= 2
	// Drop the sweep benchmark entirely.
	cur.Benchmarks = cur.Benchmarks[:2]

	got := map[string]Delta{}
	for _, d := range Compare(base, cur, 0.15) {
		got[d.Name+"/"+d.Dimension] = d
	}
	if d := got["10kNodeRelay/queue=wheel/time"]; d.Delta < 0.29 || d.Delta > 0.31 {
		t.Fatalf("time delta = %+v", d)
	}
	if d := got["10kNodeRelay/queue=wheel/allocs"]; d.Delta < 0.99 || d.Delta > 1.01 {
		t.Fatalf("allocs delta = %+v", d)
	}
	if d := got["SweepThroughput/workers=4/"]; !d.Missing {
		t.Fatalf("missing benchmark not flagged: %+v", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBad 3 12 ns/op trailing\n"), "x"); err == nil {
		t.Fatal("odd field count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBad notanumber 12 ns/op\n"), "x"); err == nil {
		t.Fatal("bad iteration count accepted")
	}
}
