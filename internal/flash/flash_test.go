package flash_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

func TestWriteThenRead(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	want := []byte("quanto stores joules")
	var got []byte
	n.K.Boot(func() {
		n.Flash.WritePage(7, want, func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			n.Flash.ReadPage(7, func(data []byte, err error) {
				if err != nil {
					t.Errorf("read: %v", err)
				}
				got = data
			})
		})
	})
	w.Run(units.Second)
	if !bytes.Equal(got, want) {
		t.Errorf("read back %q, want %q", got, want)
	}
	if n.Flash.Ops() != 2 {
		t.Errorf("Ops = %d", n.Flash.Ops())
	}
}

func TestEraseClearsPage(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	var got []byte = []byte("sentinel")
	n.K.Boot(func() {
		n.Flash.WritePage(3, []byte("data"), func(error) {
			n.Flash.ErasePage(3, func(error) {
				n.Flash.ReadPage(3, func(data []byte, err error) { got = data })
			})
		})
	})
	w.Run(units.Second)
	if len(got) != 0 {
		t.Errorf("page after erase = %q, want empty", got)
	}
}

func TestBoundsChecking(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	var writeErr, readErr error
	n.K.Boot(func() {
		n.Flash.WritePage(flash.Pages, []byte("x"), func(err error) { writeErr = err })
		n.Flash.ReadPage(-1, func(_ []byte, err error) { readErr = err })
	})
	w.Run(units.Second)
	if writeErr == nil || readErr == nil {
		t.Errorf("out-of-range ops should fail: write=%v read=%v", writeErr, readErr)
	}
}

func TestOversizeWriteFails(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	var err error
	n.K.Boot(func() {
		n.Flash.WritePage(0, make([]byte, flash.PageSize+1), func(e error) { err = e })
	})
	w.Run(units.Second)
	if err == nil {
		t.Error("oversize write should fail")
	}
}

func TestPowerStateSequence(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	n.K.Boot(func() {
		n.Flash.WritePage(0, []byte("abc"), func(error) {})
	})
	w.Run(units.Second)
	var states []core.PowerState
	for _, e := range n.Log.Entries {
		if e.Type == core.EntryPowerState && e.Res == power.ResFlash {
			states = append(states, e.State())
		}
	}
	// power-down (init), standby (wake), write, standby, power-down.
	want := []core.PowerState{power.FlashPowerDown, power.FlashStandby, power.FlashWrite, power.FlashStandby, power.FlashPowerDown}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Errorf("state %d = %v, want %v", i, states[i], want[i])
		}
	}
}

func TestWriteEnergyVisibleToMeter(t *testing.T) {
	baselineRun := func(write bool) float64 {
		w, n := mote.NewSingleNode(1)
		n.K.Boot(func() {
			if write {
				n.Flash.WritePage(0, []byte("abcdefgh"), func(error) {})
			}
		})
		w.Run(units.Second)
		return n.Meter.EnergyMicroJoules()
	}
	idle := baselineRun(false)
	withWrite := baselineRun(true)
	// A page write is 4 ms at 12 mA and 3 V = ~144 uJ above idle.
	delta := withWrite - idle
	if delta < 100 || delta > 400 {
		t.Errorf("write energy delta = %.1f uJ, want ~150-300", delta)
	}
}

func TestOperationsSerialized(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	var order []int
	n.K.Boot(func() {
		for i := 0; i < 3; i++ {
			i := i
			n.Flash.WritePage(i, []byte{byte(i)}, func(error) { order = append(order, i) })
		}
	})
	w.Run(units.Second)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("completion order = %v", order)
	}
}
