// Package flash models an AT45DB-like external NOR flash with the
// handshake-visible power states the paper describes: the chip transitions
// between power-down, standby, read, write, and erase, and the driver
// shadows those transitions by watching the ready/busy line (Section 2.4's
// "more involved" driver example).
package flash

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/power"
	"repro/internal/units"
)

// Geometry and timing, modeled on the AT45DB161D datasheet.
const (
	PageSize                  = 528
	Pages                     = 4096
	WakeupTime    units.Ticks = 30
	PageReadTime  units.Ticks = 3 * units.Millisecond
	PageWriteTime units.Ticks = 4 * units.Millisecond
	PageEraseTime units.Ticks = 8 * units.Millisecond
)

// Flash is the external flash driver plus a simple in-memory page store.
type Flash struct {
	k   *kernel.Kernel
	ps  *core.PowerStateVar
	act *core.SingleActivityDevice
	arb *kernel.Arbiter
	irq *kernel.IRQ

	pages map[int][]byte

	busy   bool
	ops    uint64
	nextOp func()
}

// New registers the flash sink (initially powered down) and returns the
// driver.
func New(k *kernel.Kernel, b *power.Board) *Flash {
	f := &Flash{k: k, pages: make(map[int][]byte)}
	f.ps = core.NewPowerStateVar(k.Trk, power.ResFlash, power.FlashPowerDown)
	f.act = core.NewSingleActivityDevice(k.Trk, power.ResFlash)
	f.arb = k.NewArbiter(f.act)
	f.irq = k.NewIRQ("int_FLASH")
	b.AddSink(power.ResFlash, power.FlashPowerDown)
	return f
}

// Ops returns the number of completed operations.
func (f *Flash) Ops() uint64 { return f.ops }

// ReadPage reads page p; done receives a copy of its contents.
func (f *Flash) ReadPage(p int, done func(data []byte, err error)) {
	f.op(power.FlashRead, PageReadTime, func() ([]byte, error) {
		if p < 0 || p >= Pages {
			return nil, fmt.Errorf("flash: page %d out of range", p)
		}
		stored := f.pages[p]
		out := make([]byte, len(stored))
		copy(out, stored)
		return out, nil
	}, done)
}

// WritePage writes data to page p.
func (f *Flash) WritePage(p int, data []byte, done func(err error)) {
	f.op(power.FlashWrite, PageWriteTime, func() ([]byte, error) {
		if p < 0 || p >= Pages {
			return nil, fmt.Errorf("flash: page %d out of range", p)
		}
		if len(data) > PageSize {
			return nil, fmt.Errorf("flash: write of %d bytes exceeds page size", len(data))
		}
		stored := make([]byte, len(data))
		copy(stored, data)
		f.pages[p] = stored
		return nil, nil
	}, func(_ []byte, err error) { done(err) })
}

// ErasePage erases page p.
func (f *Flash) ErasePage(p int, done func(err error)) {
	f.op(power.FlashErase, PageEraseTime, func() ([]byte, error) {
		if p < 0 || p >= Pages {
			return nil, fmt.Errorf("flash: page %d out of range", p)
		}
		delete(f.pages, p)
		return nil, nil
	}, func(_ []byte, err error) { done(err) })
}

// op serializes one flash operation through the arbiter. The chip-enable
// assertion wakes the chip (power-down -> standby), the command runs with
// the chip in its operation state, and the ready-line interrupt completes
// the operation, binding the proxy time to the requester's activity.
func (f *Flash) op(state core.PowerState, dur units.Ticks, body func() ([]byte, error), done func([]byte, error)) {
	label := f.k.CPUAct.Get()
	f.arb.Request(func() {
		if f.busy {
			panic("flash: concurrent operation despite arbiter")
		}
		f.busy = true
		f.k.Spend(70) // assert CS, issue command over the bus
		f.ps.Set(power.FlashStandby)
		f.k.Spend(units.Cycles(WakeupTime))
		f.ps.Set(state)
		f.irq.RaiseAfter(dur, func() {
			// Ready line asserted: the driver shadows the transition back
			// to standby and then powers the chip down.
			f.k.CPUAct.Bind(label)
			f.ps.Set(power.FlashStandby)
			f.k.Spend(60)
			data, err := body()
			f.ps.Set(power.FlashPowerDown)
			f.busy = false
			f.ops++
			f.arb.Release()
			f.k.PostLabeled(label, func() { done(data, err) })
		})
	})
}
