package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"reflect"
	"strconv"
	"strings"
)

// ConfigKey cross-checks scenario.Spec's struct fields against the ConfigKey
// serialization path and the package's declared cache-key decision lists.
// ConfigKey is the cache key for every sweep result (seed derivation hashes
// it; Aggregate groups by it; the sweep-as-a-service roadmap item serves
// cached results by it), so each Spec field must have an explicit fate:
//
//   - configKeyIncluded: serialized into the key — the field is
//     configuration and changes results;
//   - configKeyExcluded: cleared before serialization — a performance or
//     observation knob proven (and pinned by a TestConfigKey* invariance
//     test) not to change results;
//   - configKeyIdentity: cleared before serialization — names a run rather
//     than configuring it (seed, name).
//
// The analyzer errors when a Spec field appears in no list (adding a field
// without deciding its cache-key fate), in two lists, when a list entry
// names no field (a stale decision), and when the ConfigKey body's cleared
// fields disagree with excluded+identity — so docs, code, and lint cannot
// drift apart. It triggers on any package declaring a struct type Spec with
// a ConfigKey method, which is how its fixtures exercise it without
// importing the real scenario package.
var ConfigKey = &Analyzer{
	Name: "configkey",
	Doc:  "every Spec field must have a declared ConfigKey fate (included, excluded, or identity) matching what ConfigKey clears",
	Run:  runConfigKey,
}

// configKeyLists names the package-level string-slice vars that declare each
// fate.
var configKeyLists = []string{"configKeyIncluded", "configKeyExcluded", "configKeyIdentity"}

func runConfigKey(pass *Pass) {
	spec := findStruct(pass.Files, "Spec")
	body := findMethodBody(pass.Files, "Spec", "ConfigKey")
	if spec == nil || body == nil {
		return
	}

	// JSON wire name of every Spec field, and Go field name -> wire name for
	// resolving the clears in the ConfigKey body.
	fieldPos := make(map[string]token.Pos)
	goToJSON := make(map[string]string)
	for _, f := range spec.Fields.List {
		tag := ""
		if f.Tag != nil {
			unq, err := strconv.Unquote(f.Tag.Value)
			if err == nil {
				tag = reflect.StructTag(unq).Get("json")
			}
		}
		name, _, _ := strings.Cut(tag, ",")
		for _, ident := range f.Names {
			wire := name
			switch wire {
			case "-":
				continue // not serialized: no cache-key fate to decide
			case "":
				wire = ident.Name // encoding/json falls back to the Go name
			}
			fieldPos[wire] = ident.Pos()
			goToJSON[ident.Name] = wire
		}
	}

	// The three decision lists.
	fate := make(map[string]string)       // wire name -> list
	listPos := make(map[string]token.Pos) // "list/entry" -> pos
	for _, list := range configKeyLists {
		lit, pos := findStringSlice(pass.Files, list)
		if lit == nil {
			pass.Reportf(spec.Pos(), "package declares Spec with ConfigKey but no %s list: every Spec field needs a declared cache-key fate", list)
			return
		}
		_ = pos
		for _, entry := range lit {
			if prev, ok := fate[entry.val]; ok {
				pass.Reportf(entry.pos, "Spec field %q appears in both %s and %s: a field has exactly one cache-key fate", entry.val, prev, list)
				continue
			}
			fate[entry.val] = list
			listPos[list+"/"+entry.val] = entry.pos
			if _, ok := fieldPos[entry.val]; !ok {
				pass.Reportf(entry.pos, "%s entry %q names no Spec JSON field: stale cache-key decision", list, entry.val)
			}
		}
	}

	// Every field decided exactly once.
	for _, f := range spec.Fields.List {
		for _, ident := range f.Names {
			wire, ok := goToJSON[ident.Name]
			if !ok {
				continue
			}
			if _, ok := fate[wire]; !ok {
				pass.Reportf(ident.Pos(), "Spec field %s (json %q) has no declared ConfigKey fate: add it to configKeyIncluded, or to configKeyExcluded with a TestConfigKey* invariance test, or to configKeyIdentity", ident.Name, wire)
			}
		}
	}

	// The serialization path: ConfigKey copies the spec and clears fields
	// before marshaling. Cleared fields must be exactly excluded+identity.
	cleared := make(map[string]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if _, ok := sel.X.(*ast.Ident); !ok {
				continue
			}
			if wire, ok := goToJSON[sel.Sel.Name]; ok {
				cleared[wire] = sel.Pos()
			}
		}
		return true
	})
	for wire, list := range fate {
		if _, ok := fieldPos[wire]; !ok {
			continue // stale entry, already reported above
		}
		pos, isCleared := cleared[wire]
		switch {
		case list == "configKeyIncluded" && isCleared:
			pass.Reportf(pos, "ConfigKey clears field %q, but %s declares it part of the cache key", wire, list)
		case list != "configKeyIncluded" && !isCleared:
			if p, ok := listPos[list+"/"+wire]; ok {
				pass.Reportf(p, "%s declares %q cleared from the cache key, but ConfigKey does not clear it", list, wire)
			}
		}
	}
}

// findStruct returns the struct type declared with the given name, if any.
func findStruct(files []*ast.File, name string) *ast.StructType {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// findMethodBody returns the body of the method recv.name, matching either
// value or pointer receivers.
func findMethodBody(files []*ast.File, recv, name string) *ast.BlockStmt {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if ident, ok := t.(*ast.Ident); ok && ident.Name == recv {
				return fd.Body
			}
		}
	}
	return nil
}

type stringEntry struct {
	val string
	pos token.Pos
}

// findStringSlice returns the entries of a package-level
// `var name = []string{...}` (or `[...]string{...}`) declaration.
func findStringSlice(files []*ast.File, name string) ([]stringEntry, token.Pos) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if ident.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					entries := make([]stringEntry, 0, len(cl.Elts))
					for _, e := range cl.Elts {
						bl, ok := e.(*ast.BasicLit)
						if !ok || bl.Kind != token.STRING {
							continue
						}
						v, err := strconv.Unquote(bl.Value)
						if err != nil {
							continue
						}
						entries = append(entries, stringEntry{val: v, pos: bl.Pos()})
					}
					return entries, cl.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// SpecJSONFields returns the JSON wire names of every serialized field of
// the package's Spec struct, for the meta-test that pins lint, code, and
// invariance tests together. It returns an error when the package declares
// no Spec struct.
func SpecJSONFields(pkg *Package) ([]string, error) {
	spec := findStruct(pkg.Files, "Spec")
	if spec == nil {
		return nil, fmt.Errorf("lint: package %s declares no Spec struct", pkg.Path)
	}
	var out []string
	for _, f := range spec.Fields.List {
		tag := ""
		if f.Tag != nil {
			if unq, err := strconv.Unquote(f.Tag.Value); err == nil {
				tag = reflect.StructTag(unq).Get("json")
			}
		}
		name, _, _ := strings.Cut(tag, ",")
		for _, ident := range f.Names {
			switch name {
			case "-":
			case "":
				out = append(out, ident.Name)
			default:
				out = append(out, name)
			}
		}
	}
	return out, nil
}

// ExclusionList extracts the package's declared configKeyExcluded entries,
// for cross-checking against scenario.ConfigKeyExcluded in the meta-test.
func ExclusionList(pkg *Package) []string {
	entries, _ := findStringSlice(pkg.Files, "configKeyExcluded")
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.val)
	}
	return out
}
