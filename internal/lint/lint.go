// Package lint is quantovet's home: a small static-analysis suite that
// machine-checks the repo's byte-identical-replay contract at `go vet` time,
// before a sweep ever runs.
//
// The simulator's load-bearing invariant — established by the scenario
// layer's derived seeds (PR 2) and escalated by wheel/heap differential
// testing (PR 6), partitioned stepping (PR 7) and traffic record-and-replay
// (PR 8) — is that every run is a pure function of its Spec and seed. The
// trace-identity tests prove that after the fact; the analyzers here reject
// the classic ways the contract silently rots:
//
//   - maporder: `for range` over a map in a deterministic package. Map
//     iteration order is randomized per run, so any map-order-dependent
//     output breaks replay. Sort the keys first, or waive the loop with
//     `//quanto:ordered <reason>` when order provably cannot escape.
//   - wallclock: `time.Now` / `time.Since` / timer construction, and any use
//     of the global math/rand, inside a sim-facing package. All simulated
//     time must flow from Ticks; all randomness from the domain-tagged
//     streams `internal/sim/rng.go` derives. Waive with
//     `//quanto:wallclock <reason>` (e.g. benchmarks' wall-clock reporting).
//   - configkey: every scenario.Spec field must have a declared cache-key
//     fate — serialized into ConfigKey, an identity field (seed/name), or on
//     the single exclusion list of knobs proven not to change results — and
//     the ConfigKey body must clear exactly the excluded+identity fields.
//     Adding a Spec field without deciding is a lint error, because an
//     undecided field silently poisons the ConfigKey-addressed result cache.
//   - rngdomain: every sim.DeriveSeed / sim.DeriveRNG call site must pass a
//     distinct compile-time domain tag, namespaced by its package. Two
//     consumers sharing a stream is exactly the hidden coupling that broke
//     determinism classes in PRs 5–8.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the real
// multichecker verbatim if the dependency ever becomes available; this
// module builds offline from the standard library alone, so the x/tools
// driver is reimplemented in load.go on top of `go list` and the gc
// export-data importer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one check, mirroring analysis.Analyzer: a name that
// prefixes its diagnostics, a doc sentence, and a Run function applied once
// per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's parsed and type-checked state to an analyzer,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the file:line:col style `go vet` uses,
// with the analyzer name appended so a finding names the rule to waive.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full quantovet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallClock, ConfigKey, RNGDomain}
}

// Run applies every analyzer in the suite to every package and returns the
// findings sorted by (file, line, col, analyzer) so output is stable across
// load order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// DeterministicPackages lists the import paths whose code executes inside
// (or configures) the simulated world and therefore must be replayable
// byte-for-byte: no map-order dependence, no wall-clock reads, no global
// randomness. maporder and wallclock scope themselves to these paths and
// their subpackages; everything else (analysis, CLI frontends, benchmarks)
// may use host facilities freely.
var DeterministicPackages = []string{
	"repro/internal/sim",
	"repro/internal/medium",
	"repro/internal/apps",
	"repro/internal/scenario",
	"repro/internal/traffic",
	"repro/internal/mote",
	"repro/internal/power",
	"repro/internal/radio",
	"repro/internal/net",
}

// Deterministic reports whether path is one of the deterministic packages or
// a subpackage of one.
func Deterministic(path string) bool {
	for _, p := range DeterministicPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// waiver looks for a `//quanto:<kind> <reason>` comment attached to the node
// at pos: trailing on the same line, or alone on the line immediately above.
// It returns the reason and whether a well-formed waiver was found; a waiver
// with an empty reason does not count, so every suppression names its
// justification.
func waiver(fset *token.FileSet, files []*ast.File, pos token.Pos, kind string) (string, bool) {
	p := fset.Position(pos)
	marker := "quanto:" + kind
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != p.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cp := fset.Position(c.Pos())
				if cp.Line != p.Line && cp.Line != p.Line-1 {
					continue
				}
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, marker) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, marker))
				if reason != "" {
					return reason, true
				}
			}
		}
	}
	return "", false
}
