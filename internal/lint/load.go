package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package — the unit the
// analyzers consume. It is the offline analogue of what
// golang.org/x/tools/go/packages.Load(NeedSyntax|NeedTypes|NeedTypesInfo)
// would return.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns (e.g. "./...") in dir and returns
// the matched packages parsed and type-checked.
//
// The driver works without golang.org/x/tools by leaning on the go command
// twice over: `go list -export -deps -json` both enumerates the target
// packages and compiles export data for every dependency (standard library
// included), and the gc importer from go/importer consumes that export data
// through a lookup function, so cross-package types resolve exactly as the
// compiler sees them. Only the target packages themselves are parsed to
// syntax; test files are not analyzed (the determinism contract binds
// simulator code, and tests routinely use maps and wall clocks on purpose).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parse go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
