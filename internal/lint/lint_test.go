// Fixture-driven analyzer tests, analysistest style: each fixture package
// under testdata/src declares its expected diagnostics inline with
// `// want` comments — positive hits, negative non-hits, and waivers.
package lint_test

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/scenario"
)

func testdata(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, testdata(t), lint.MapOrder,
		"repro/internal/sim/mapfix", // acceptance: unsorted map-range under internal/sim is flagged
		"otherpkg",                  // outside the deterministic set: silent
	)
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, testdata(t), lint.WallClock,
		"repro/internal/apps/clockfix", // acceptance: time.Now under internal/apps is flagged
		"otherpkg",                     // outside the deterministic set: silent
	)
}

func TestConfigKey(t *testing.T) {
	linttest.Run(t, testdata(t), lint.ConfigKey,
		"configkey/good",    // consistent contract: silent
		"configkey/bad",     // acceptance: undecided new field + every drift mode flagged
		"configkey/missing", // lists absent: demanded
		"configkey/nokey",   // Spec without ConfigKey: not a cache key, silent
	)
}

func TestRNGDomain(t *testing.T) {
	linttest.Run(t, testdata(t), lint.RNGDomain, "rngfix")
}

// TestConfigKeyExclusionListPinned ties three views of the exclusion list
// together: the declaration the configkey analyzer reads from the scenario
// source, the runtime accessor the TestConfigKey* invariance tests exercise,
// and the literal set those invariance tests pin. Adding a field to any one
// of the three without the others fails here.
func TestConfigKeyExclusionListPinned(t *testing.T) {
	pinned := []string{"partitions", "queue", "record_traffic"}

	runtime := scenario.ConfigKeyExcluded()
	slices.Sort(runtime)
	if !slices.Equal(runtime, pinned) {
		t.Errorf("scenario.ConfigKeyExcluded() = %v, invariance tests pin %v", runtime, pinned)
	}

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(wd, "repro/internal/scenario")
	if err != nil {
		t.Fatal(err)
	}
	var declared []string
	for _, pkg := range pkgs {
		if pkg.Path == "repro/internal/scenario" {
			declared = lint.ExclusionList(pkg)
		}
	}
	slices.Sort(declared)
	if !slices.Equal(declared, pinned) {
		t.Errorf("configKeyExcluded in scenario source = %v, invariance tests pin %v", declared, pinned)
	}
}

// TestQuantovetTreeClean is the acceptance gate in test form: the whole tree
// must carry zero diagnostics from every analyzer.
func TestQuantovetTreeClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(wd, "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run(pkgs, lint.Analyzers()) {
		t.Errorf("%s", d)
	}
}

func TestDeterministicScope(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/sim":           true,
		"repro/internal/sim/mapfix":    true,
		"repro/internal/scenario":      true,
		"repro/internal/analysis":      false,
		"repro/internal/simx":          false, // prefix match must not cross path elements
		"repro/cmd/quantovet":          false,
		"repro/internal/traffic":       true,
		"repro/internal/trace":         false, // host-side trace tooling
		"repro/internal/mote":          true,
		"repro/internal/power":         true,
		"repro/internal/radio":         true,
		"repro/internal/medium":        true,
		"repro/internal/apps":          true,
		"repro/internal/apps/clockfix": true,
		"repro/internal/net":           true, // routing runs inside the world
		"repro/internal/network":       false,
	} {
		if got := lint.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
