// Package rngfix exercises rngdomain: every sim.DeriveSeed / sim.DeriveRNG
// call site needs a constant, "rngfix/"-prefixed, per-site-distinct domain
// tag.
package rngfix

import "repro/internal/sim"

// tagAlpha shows that named constants count as compile-time tags.
const tagAlpha = "rngfix/alpha"

// Good derives three distinct streams.
func Good(seed uint64) uint64 {
	a := sim.DeriveSeed(seed, tagAlpha, 0)
	b := sim.DeriveSeed(seed, "rngfix/beta", 1)
	r := sim.DeriveRNG(seed, "rngfix/gamma", 2)
	_ = r
	return a ^ b
}

// Bad collects every rejected form.
func Bad(seed uint64, who string) uint64 {
	a := sim.DeriveSeed(seed, "rngfix/alpha", 3) // want `duplicate RNG domain tag "rngfix/alpha"`
	b := sim.DeriveSeed(seed, who, 0)            // want `domain tag must be a compile-time string constant`
	c := sim.DeriveSeed(seed, "other/alpha", 0)  // want `must be "rngfix/"-prefixed`
	d := sim.DeriveRNG(seed, "rngfix/", 0)       // want `must be "rngfix/"-prefixed`
	_ = d
	return a ^ b ^ c
}
