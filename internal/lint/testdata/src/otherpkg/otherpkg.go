// Package otherpkg sits outside the deterministic set: maporder and
// wallclock must stay silent here, map ranges and clock reads included.
package otherpkg

import "time"

// Sum folds a map in iteration order; legal outside the contract.
func Sum(m map[string]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// Stamp reads the host clock; legal outside the contract.
func Stamp() time.Time { return time.Now() }
