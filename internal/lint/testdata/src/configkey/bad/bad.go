// Package bad collects every way the cache-key contract can rot: an
// undecided field (the acceptance case — a new Spec field absent from both
// ConfigKey's clears and the declared lists), a field claimed twice, a stale
// list entry, an exclusion ConfigKey does not honor, and an included field
// ConfigKey clears anyway.
package bad

type Spec struct {
	Name  string `json:"name,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	App   string `json:"app"`
	Queue string `json:"queue,omitempty"`
	Nodes int    `json:"nodes,omitempty"` // want `Spec field Nodes \(json "nodes"\) has no declared ConfigKey fate`
	Extra int    `json:"extra,omitempty"`
}

var (
	configKeyIncluded = []string{"app", "extra"}
	configKeyExcluded = []string{
		"queue", // want `configKeyExcluded declares "queue" cleared from the cache key, but ConfigKey does not clear it`
		"ghost", // want `configKeyExcluded entry "ghost" names no Spec JSON field`
	}
	configKeyIdentity = []string{
		"name",
		"seed",
		"app", // want `Spec field "app" appears in both configKeyIncluded and configKeyIdentity`
	}
)

func (s *Spec) ConfigKey() string {
	c := *s
	c.Name = ""
	c.Seed = 0
	c.Extra = 0 // want `ConfigKey clears field "extra", but configKeyIncluded declares it part of the cache key`
	return c.App
}
