// Package missing declares Spec and ConfigKey but no fate lists: the
// analyzer demands the declaration rather than guessing.
package missing

type Spec struct { // want `no configKeyIncluded list`
	App string `json:"app"`
}

func (s *Spec) ConfigKey() string { return s.App }
