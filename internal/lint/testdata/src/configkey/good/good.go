// Package good declares a consistent cache-key contract: every Spec field
// has exactly one fate and ConfigKey clears exactly the identity+excluded
// fields. configkey must stay silent.
package good

// Spec mirrors the real scenario.Spec shape at fixture scale.
type Spec struct {
	Name  string `json:"name,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	App   string `json:"app"`
	Nodes int    `json:"nodes,omitempty"`
	Queue string `json:"queue,omitempty"`
}

var (
	configKeyIncluded = []string{"app", "nodes"}
	configKeyExcluded = []string{"queue"}
	configKeyIdentity = []string{"name", "seed"}
)

// ConfigKey clears the identity and excluded fields before serializing; the
// fixture elides the marshal itself.
func (s *Spec) ConfigKey() string {
	c := *s
	c.Name = ""
	c.Seed = 0
	c.Queue = ""
	return c.App
}
