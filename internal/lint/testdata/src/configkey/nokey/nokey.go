// Package nokey declares a Spec without a ConfigKey method (the
// traffic.Spec situation): not a cache key, so configkey stays silent.
package nokey

type Spec struct {
	Shape string `json:"shape"`
	RPS   float64
}

// Validate is here so the struct is not trivially dead.
func (s *Spec) Validate() bool { return s.Shape != "" && s.RPS >= 0 }
