// Package sim stubs repro/internal/sim's domain-tagged derivation API for
// the rngdomain fixtures: fixture imports resolve testdata-first, so call
// sites here look to the analyzer exactly like call sites against the real
// package.
package sim

// RNG mirrors the real generator's shape; fixtures only need the type.
type RNG struct{ state uint64 }

// NewRNG mirrors sim.NewRNG.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// DeriveSeed mirrors sim.DeriveSeed; the value is irrelevant to the lint.
func DeriveSeed(seed uint64, domain string, salt uint64) uint64 {
	return seed ^ uint64(len(domain)) ^ salt
}

// DeriveRNG mirrors sim.DeriveRNG.
func DeriveRNG(seed uint64, domain string, salt uint64) *RNG {
	return NewRNG(DeriveSeed(seed, domain, salt))
}
