// Package mapfix exercises maporder inside the deterministic set (it lives
// under repro/internal/sim): unsorted map ranges are flagged, sorted and
// waived ones are not.
package mapfix

import (
	"maps"
	"slices"
	"sort"
)

// Emit leaks map order into its output: both loops must be flagged.
func Emit(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map m in deterministic package`
		out = append(out, v)
	}
	for k := range maps.Keys(m) { // want `range over map maps\.Keys\(m\) in deterministic package`
		out = append(out, m[k])
	}
	return out
}

// EmitSorted iterates sorted keys; ranging over slices is never flagged,
// and the collection loop carries a waiver.
func EmitSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	//quanto:ordered key collection is sorted below before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	for _, k := range slices.Sorted(maps.Keys(m)) {
		out = append(out, m[k])
	}
	return out
}

// Any is order-independent and says so inline.
func Any(m map[string]bool) bool {
	for _, v := range m { //quanto:ordered existence test is order-independent
		if v {
			return true
		}
	}
	return false
}

// Unwaived has a waiver marker with no reason, which must not count.
func Unwaived(m map[string]bool) bool {
	//quanto:ordered
	for _, v := range m { // want `range over map m in deterministic package`
		if v {
			return true
		}
	}
	return false
}
