// Package clockfix exercises wallclock inside the deterministic set (it
// lives under repro/internal/apps): host-clock reads and global randomness
// are flagged, pure time arithmetic and waived sites are not.
package clockfix

import (
	"math/rand"
	"time"
)

// Bad reads the host clock and the global rand stream four ways.
func Bad() int64 {
	t := time.Now()                       // want `time\.Now in deterministic package`
	d := time.Since(t)                    // want `time\.Since in deterministic package`
	time.Sleep(time.Millisecond)          // want `time\.Sleep in deterministic package`
	return int64(d) + int64(rand.Intn(4)) // want `math/rand\.Intn in deterministic package`
}

// Waived documents a host-facing exception.
func Waived() time.Time {
	//quanto:wallclock host-side progress stamp, never enters the simulated world
	return time.Now()
}

// Fine is pure duration arithmetic: nothing observes the host.
func Fine(d time.Duration) time.Duration {
	return 2*d + time.Millisecond
}
