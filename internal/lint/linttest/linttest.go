// Package linttest runs a lint.Analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the standard
// library so the module keeps building offline.
//
// Fixtures live in a GOPATH-style tree: testdata/src/<importpath>/*.go.
// Imports resolve fixture-first — testdata/src/repro/internal/sim can stub
// the real sim package, which is how the rngdomain fixtures exercise
// sim.DeriveSeed call sites, and how fixture packages land inside the
// deterministic-package set that scopes maporder and wallclock — and fall
// back to real export data (standard library included) via the go command.
//
// Every line that should produce a diagnostic carries a trailing
// `// want "re"` comment (several quoted regexps for several diagnostics on
// one line); a diagnostic with no matching want, or a want with no matching
// diagnostic, fails the test with the position attached.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run applies the analyzer to each fixture package (import paths under
// testdata/src) and reports mismatches against the fixtures' want comments
// as test errors.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
		checkWants(t, ld.fset, pkg.Files, diags)
	}
}

// wantRe matches one quoted expectation in a want comment: a double-quoted
// Go string or a backquoted raw pattern, as in analysistest.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants compares diagnostics against the fixtures' `// want` comments,
// matching per (file, line).
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllString(text[len("want "):], -1) {
					pat, err := strconv.Unquote(m)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	leftover := make([]string, 0)
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				leftover = append(leftover, fmt.Sprintf("%s:%d: want %q matched no diagnostic", k.file, k.line, re.String()))
			}
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}

// loader resolves fixture packages GOPATH-style from root, with real export
// data (via `go list -export`) for everything else.
type loader struct {
	root    string // testdata/src
	fset    *token.FileSet
	cache   map[string]*fixturePkg
	exports map[string]string
	gc      types.Importer
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
	err   error
}

func newLoader(testdata string) *loader {
	ld := &loader{
		root:    filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		cache:   make(map[string]*fixturePkg),
		exports: make(map[string]string),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("linttest: no export data for %q", path)
		}
		return os.Open(f)
	})
	return ld
}

// load parses and type-checks one fixture package.
func (ld *loader) load(path string) (*lint.Package, error) {
	fp := ld.fixture(path)
	if fp.err != nil {
		return nil, fp.err
	}
	return &lint.Package{
		Path:  path,
		Fset:  ld.fset,
		Files: fp.files,
		Types: fp.types,
		Info:  fp.info,
	}, nil
}

func (ld *loader) fixture(path string) *fixturePkg {
	if fp, ok := ld.cache[path]; ok {
		return fp
	}
	fp := &fixturePkg{}
	ld.cache[path] = fp

	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		fp.err = fmt.Errorf("linttest: fixture %s: %v", path, err)
		return fp
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			fp.err = fmt.Errorf("linttest: parse %s: %v", e.Name(), err)
			return fp
		}
		fp.files = append(fp.files, f)
	}
	if len(fp.files) == 0 {
		fp.err = fmt.Errorf("linttest: fixture %s has no Go files", path)
		return fp
	}

	fp.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*fixtureImporter)(ld)}
	fp.types, err = conf.Check(path, ld.fset, fp.files, fp.info)
	if err != nil {
		fp.err = fmt.Errorf("linttest: typecheck %s: %v", path, err)
	}
	return fp
}

// fixtureImporter resolves imports fixture-first, then through export data.
type fixtureImporter loader

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(im)
	if st, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		fp := ld.fixture(path)
		if fp.err != nil {
			return nil, fp.err
		}
		return fp.types, nil
	}
	if _, ok := ld.exports[path]; !ok {
		if err := ld.listExports(path); err != nil {
			return nil, err
		}
	}
	return ld.gc.Import(path)
}

// listExports compiles and records export data for path and all its
// dependencies.
func (ld *loader) listExports(path string) error {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("linttest: go list -export %s: %v\n%s", path, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("linttest: parse go list output: %v", err)
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}
