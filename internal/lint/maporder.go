package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map value inside a deterministic
// package. Go randomizes map iteration order per run, so any loop whose
// body's effects depend on visit order — emitting entries, picking a first
// match, building an error message — makes output differ between replays of
// the same seed. The fix is to iterate a sorted key slice (ranging over a
// slice is not flagged); loops whose bodies are provably order-independent
// (folding a commutative reduction, testing "any value satisfies") carry a
// `//quanto:ordered <reason>` waiver instead, so every surviving map range
// documents why order cannot escape it.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration in deterministic packages unless sorted or waived with //quanto:ordered",
	Run:  runMapOrder,
}

// isMapIterCall reports whether x is a direct call to maps.Keys, maps.Values
// or maps.All — ranging over one of those iterators visits in the same
// randomized order as ranging over the map itself (slices.Sorted(maps.Keys(m))
// is fine: the range there is over the sorted slice).
func isMapIterCall(pass *Pass, x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "maps" {
		return false
	}
	switch obj.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

func runMapOrder(pass *Pass) {
	if !Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			_, isMap := tv.Type.Underlying().(*types.Map)
			if !isMap && !isMapIterCall(pass, rs.X) {
				return true
			}
			if _, ok := waiver(pass.Fset, pass.Files, rs.For, "ordered"); ok {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in deterministic package %s: iteration order is randomized; sort the keys or waive with //quanto:ordered <reason>",
				types.ExprString(rs.X), pass.Pkg.Path())
			return true
		})
	}
}
