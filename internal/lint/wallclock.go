package lint

import (
	"go/ast"
)

// WallClock flags host-time and global-randomness escapes inside a
// deterministic package. Simulated code must take all time from Ticks and
// all randomness from the domain-tagged streams internal/sim/rng.go derives;
// a single `time.Now` in an event handler or a `rand.Intn` in a builder
// makes two runs of the same Spec+seed diverge, which silently poisons every
// ConfigKey-addressed cache entry downstream. The analyzer bans the wall
// clock readers and timer constructors of package time, and *any* reference
// to math/rand or math/rand/v2 (even seeded use: the algorithm is not pinned
// across Go releases, which is why the repo carries its own xorshift).
// Host-facing exceptions (e.g. wall-clock progress reporting outside the
// simulated world) carry a `//quanto:wallclock <reason>` waiver.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/timers and math/rand in deterministic packages; time flows from Ticks, randomness from sim RNG streams",
	Run:  runWallClock,
}

// bannedTimeFuncs are the package time members that read the host clock or
// schedule against it. Pure arithmetic (time.Duration, time.Unix,
// time.Parse) stays legal: it does not observe the host.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallClock(pass *Pass) {
	if !Deterministic(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if !bannedTimeFuncs[obj.Name()] {
					return true
				}
				if _, ok := waiver(pass.Fset, pass.Files, sel.Pos(), "wallclock"); ok {
					return true
				}
				pass.Reportf(sel.Pos(), "time.%s in deterministic package %s: simulated code takes time from Ticks, never the host clock; waive with //quanto:wallclock <reason>",
					obj.Name(), pass.Pkg.Path())
			case "math/rand", "math/rand/v2":
				if _, ok := waiver(pass.Fset, pass.Files, sel.Pos(), "wallclock"); ok {
					return true
				}
				pass.Reportf(sel.Pos(), "%s.%s in deterministic package %s: randomness must come from the derived streams in internal/sim/rng.go; waive with //quanto:wallclock <reason>",
					obj.Pkg().Path(), obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
}
