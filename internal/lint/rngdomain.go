package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// RNGDomain checks every sim.DeriveSeed / sim.DeriveRNG call site. The
// domain-tag API exists so each consumer of the run seed gets its own
// decorrelated stream; the contract only holds if tags are compile-time
// constants (a tag computed at runtime cannot be audited and may collide)
// and distinct per call site (two call sites sharing a tag share a stream —
// the hidden coupling that made one subsystem's draws perturb another's in
// the pre-PR-5 determinism bugs). Tags are namespaced `<package>/<purpose>`;
// requiring the caller's package name as prefix makes uniqueness composable
// across packages without whole-program analysis: within a package the
// analyzer proves tags distinct, and two different packages cannot collide
// because their prefixes differ. The same call site executing many times
// (e.g. once per sender id) is fine — the salt argument varies, the tag
// names the purpose, not the instance.
var RNGDomain = &Analyzer{
	Name: "rngdomain",
	Doc:  "requires distinct, constant, package-prefixed domain tags at every sim.DeriveSeed/DeriveRNG call site",
	Run:  runRNGDomain,
}

func runRNGDomain(pass *Pass) {
	seen := make(map[string]string) // tag -> position of first use
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "sim" {
				return true
			}
			if name := obj.Name(); name != "DeriveSeed" && name != "DeriveRNG" {
				return true
			}
			// The derivation helpers forward to each other inside package
			// sim with the tag as a variable; only external call sites must
			// pass literals.
			if obj.Pkg().Path() == pass.Pkg.Path() {
				return true
			}
			if len(call.Args) < 2 {
				return true // does not compile anyway
			}
			arg := call.Args[1]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "sim.%s domain tag must be a compile-time string constant so streams can be audited statically", obj.Name())
				return true
			}
			tag := constant.StringVal(tv.Value)
			want := pass.Pkg.Name() + "/"
			if tag == "" || !strings.HasPrefix(tag, want) || len(tag) == len(want) {
				pass.Reportf(arg.Pos(), "sim.%s domain tag %q must be %q-prefixed (\"%s<purpose>\") so tags cannot collide across packages", obj.Name(), tag, want, want)
				return true
			}
			if first, dup := seen[tag]; dup {
				pass.Reportf(arg.Pos(), "duplicate RNG domain tag %q (first used at %s): two call sites sharing a tag share a stream; derive a distinct per-purpose tag", tag, first)
				return true
			}
			seen[tag] = pass.Fset.Position(arg.Pos()).String()
			return true
		})
	}
}
