// Package am implements the Active Message link layer with Quanto's hidden
// activity field.
//
// "To transfer activity labels across nodes, we added a hidden field to the
// TinyOS Active Message implementation. When a packet is submitted to the OS
// for transmission, the packet's activity field is set to the CPU's current
// activity. Upon decoding a packet, the AM layer on the receiving node sets
// the CPU activity to the activity in the packet, and binds resources used
// between the interrupt for the packet reception and the decoding to the
// same activity." (Section 3.3)
package am

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/medium"
	"repro/internal/radio"
)

// HeaderBytes is the Active Message header length on the air, including the
// hidden 16-bit activity label.
const HeaderBytes = 13

// Packet is one Active Message.
type Packet struct {
	Dest    core.NodeID
	Src     core.NodeID
	Type    uint8
	Payload []byte

	// label is the hidden activity field. It is set by Send and read by the
	// receiving AM layer; applications never touch it.
	label core.Label
}

// Label exposes the hidden field for tests and the accounting tooling.
func (p *Packet) Label() core.Label { return p.label }

// WireBytes returns the packet's on-air length.
func (p *Packet) WireBytes() int { return HeaderBytes + len(p.Payload) }

// Handler consumes a received packet. It runs in task context with the CPU
// already bound to the packet's originating activity.
type Handler func(*Packet)

// AM is one node's Active Message layer.
type AM struct {
	k        *kernel.Kernel
	radio    *radio.Radio
	handlers map[uint8]Handler

	sent     uint64
	received uint64
}

// New wires an AM layer over r.
func New(k *kernel.Kernel, r *radio.Radio) *AM {
	a := &AM{k: k, radio: r, handlers: make(map[uint8]Handler)}
	r.OnReceive(a.deliver)
	return a
}

// Register installs the handler for an AM type.
func (a *AM) Register(amType uint8, h Handler) {
	if _, dup := a.handlers[amType]; dup {
		panic(fmt.Sprintf("am: duplicate handler for type %d", amType))
	}
	a.handlers[amType] = h
}

// Stats returns packets sent and received.
func (a *AM) Stats() (sent, received uint64) { return a.sent, a.received }

// Send transmits p; done (optional) runs under the sending activity when the
// radio finishes. The hidden activity field is stamped with the CPU's
// current activity at submission time, so the packet is "colored the same as
// the activity which initiated its submission".
func (a *AM) Send(p *Packet, done func()) {
	p.Src = a.k.Node()
	p.label = a.k.CPUAct.Get()
	a.k.Spend(45) // header marshaling
	f := &medium.Frame{Bytes: p.WireBytes(), Payload: p}
	a.sent++
	a.radio.Send(f, done)
}

// deliver runs in task context under the bus-transfer proxy once the radio
// drained the frame. It decodes the AM header, terminates the proxy activity
// by binding the CPU to the packet's label, and dispatches to the handler.
func (a *AM) deliver(f *medium.Frame) {
	p, ok := f.Payload.(*Packet)
	if !ok {
		return
	}
	a.k.Spend(55) // header decode
	if p.Dest != a.k.Node() && p.Dest != BroadcastAddr {
		return
	}
	a.received++
	// Quanto: set the CPU activity to the activity noted in the packet and
	// bind the reception proxies to it.
	a.k.CPUAct.Bind(p.label)
	if h := a.handlers[p.Type]; h != nil {
		h(p)
	}
}

// BroadcastAddr addresses every node in range.
const BroadcastAddr core.NodeID = 0xFF
