package am_test

import (
	"testing"

	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/units"
)

// pair builds two radio-equipped nodes on a shared world.
func pair(t *testing.T, seed uint64) (*mote.World, *mote.Node, *mote.Node) {
	t.Helper()
	w := mote.NewWorld(seed)
	mk := func() mote.Options {
		o := mote.DefaultOptions()
		o.Radio = true
		o.RadioConfig = radio.Config{Channel: 26}
		return o
	}
	return w, w.AddNode(1, mk()), w.AddNode(2, mk())
}

func TestSendStampsHiddenActivityField(t *testing.T) {
	w, a, b := pair(t, 1)
	act := a.K.DefineActivity("App")
	var gotLabel core.Label
	b.AM.Register(9, func(p *am.Packet) { gotLabel = p.Label() })

	b.K.Boot(func() { b.Radio.TurnOn(func() { b.Radio.StartListening() }) })
	a.K.Boot(func() {
		a.Radio.TurnOn(func() {
			a.K.CPUAct.Set(act)
			a.AM.Send(&am.Packet{Dest: 2, Type: 9, Payload: []byte{1, 2, 3}}, nil)
			a.K.CPUAct.SetIdle()
		})
	})
	w.Run(units.Second)
	if gotLabel != act {
		t.Errorf("hidden field = %v, want %v", gotLabel, act)
	}
}

func TestReceiverHandlerRunsUnderSenderActivity(t *testing.T) {
	w, a, b := pair(t, 2)
	act := a.K.DefineActivity("App")
	var handlerLabel core.Label
	b.AM.Register(9, func(p *am.Packet) { handlerLabel = b.K.CPUAct.Get() })

	b.K.Boot(func() { b.Radio.TurnOn(func() { b.Radio.StartListening() }) })
	a.K.Boot(func() {
		a.Radio.TurnOn(func() {
			a.K.CPUAct.Set(act)
			a.AM.Send(&am.Packet{Dest: 2, Type: 9}, nil)
			a.K.CPUAct.SetIdle()
		})
	})
	w.Run(units.Second)
	if handlerLabel != act {
		t.Errorf("handler ran under %v, want sender's %v", handlerLabel, act)
	}
}

func TestDestFiltering(t *testing.T) {
	w, a, b := pair(t, 3)
	got := 0
	b.AM.Register(9, func(*am.Packet) { got++ })
	b.K.Boot(func() { b.Radio.TurnOn(func() { b.Radio.StartListening() }) })
	a.K.Boot(func() {
		a.Radio.TurnOn(func() {
			// Addressed elsewhere: node 2 must drop it after decode.
			a.AM.Send(&am.Packet{Dest: 7, Type: 9}, func() {
				a.AM.Send(&am.Packet{Dest: 2, Type: 9}, nil)
			})
		})
	})
	w.Run(2 * units.Second)
	if got != 1 {
		t.Errorf("handler ran %d times, want 1 (unicast filter)", got)
	}
}

func TestBroadcastDelivered(t *testing.T) {
	w, a, b := pair(t, 4)
	got := 0
	b.AM.Register(9, func(*am.Packet) { got++ })
	b.K.Boot(func() { b.Radio.TurnOn(func() { b.Radio.StartListening() }) })
	a.K.Boot(func() {
		a.Radio.TurnOn(func() {
			a.AM.Send(&am.Packet{Dest: am.BroadcastAddr, Type: 9}, nil)
		})
	})
	w.Run(units.Second)
	if got != 1 {
		t.Errorf("broadcast delivered %d times, want 1", got)
	}
}

func TestUnregisteredTypeDropped(t *testing.T) {
	w, a, b := pair(t, 5)
	b.K.Boot(func() { b.Radio.TurnOn(func() { b.Radio.StartListening() }) })
	a.K.Boot(func() {
		a.Radio.TurnOn(func() {
			a.AM.Send(&am.Packet{Dest: 2, Type: 77}, nil)
		})
	})
	w.Run(units.Second)
	_, received := b.AM.Stats()
	if received != 1 {
		t.Errorf("received = %d, want 1 (counted even without handler)", received)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	_, a, _ := pair(t, 6)
	a.AM.Register(9, func(*am.Packet) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	a.AM.Register(9, func(*am.Packet) {})
}

func TestWireBytesIncludesHeader(t *testing.T) {
	p := &am.Packet{Payload: make([]byte, 10)}
	if p.WireBytes() != am.HeaderBytes+10 {
		t.Errorf("WireBytes = %d", p.WireBytes())
	}
}

func TestReceptionBindsProxiesInLog(t *testing.T) {
	w, a, b := pair(t, 7)
	act := a.K.DefineActivity("App")
	b.AM.Register(9, func(*am.Packet) {})
	b.K.Boot(func() { b.Radio.TurnOn(func() { b.Radio.StartListening() }) })
	a.K.Boot(func() {
		a.Radio.TurnOn(func() {
			a.K.CPUAct.Set(act)
			a.AM.Send(&am.Packet{Dest: 2, Type: 9}, nil)
			a.K.CPUAct.SetIdle()
		})
	})
	w.Run(units.Second)
	// Node 2's log must contain a bind of the CPU to node 1's activity.
	found := false
	for _, e := range b.Log.Entries {
		if e.Type == core.EntryActivityBind && e.Res == power.ResCPU && core.Label(e.Val) == act {
			found = true
		}
	}
	if !found {
		t.Error("no CPU bind entry to the sender's activity on the receiver")
	}
}
