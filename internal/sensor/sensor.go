// Package sensor models an SHT11-like digital humidity/temperature sensor
// and its instrumented driver — one of the two device drivers the paper
// lists as instrumented (Table 5).
//
// A measurement is asynchronous: the driver requests the shared bus through
// the arbiter (which transfers the requester's activity to the sensor),
// starts a conversion, and a completion interrupt delivers the result. The
// driver "stores locally both the state required to process the interrupt
// and the activity to which this processing should be assigned", so the
// completion proxy binds to the right activity.
package sensor

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/power"
	"repro/internal/units"
)

// Conversion times, modeled on the SHT11 datasheet (12/14-bit conversions).
const (
	HumidityTime    units.Ticks = 55 * units.Millisecond
	TemperatureTime units.Ticks = 75 * units.Millisecond
)

// SHT11 is the sensor driver.
type SHT11 struct {
	k   *kernel.Kernel
	ps  *core.PowerStateVar
	act *core.SingleActivityDevice
	arb *kernel.Arbiter
	irq *kernel.IRQ

	busy     bool
	reads    uint64
	nextRaw  uint16
	rawDelta uint16
}

// New registers the sensor sink and returns the driver.
func New(k *kernel.Kernel, b *power.Board) *SHT11 {
	s := &SHT11{k: k}
	s.ps = core.NewPowerStateVar(k.Trk, power.ResSensor, power.SensorIdle)
	s.act = core.NewSingleActivityDevice(k.Trk, power.ResSensor)
	s.arb = k.NewArbiter(s.act)
	s.irq = k.NewIRQ("int_SHT11")
	s.nextRaw = 0x1800
	s.rawDelta = 7
	b.AddSink(power.ResSensor, power.SensorIdle)
	return s
}

// ReadHumidity starts a humidity conversion; done receives the raw reading
// in task context under the requesting activity.
func (s *SHT11) ReadHumidity(done func(raw uint16)) {
	s.read(HumidityTime, done)
}

// ReadTemperature starts a temperature conversion.
func (s *SHT11) ReadTemperature(done func(raw uint16)) {
	s.read(TemperatureTime, done)
}

// Reads returns the number of completed conversions.
func (s *SHT11) Reads() uint64 { return s.reads }

func (s *SHT11) read(conv units.Ticks, done func(raw uint16)) {
	label := s.k.CPUAct.Get()
	s.arb.Request(func() {
		if s.busy {
			panic("sensor: concurrent conversion despite arbiter")
		}
		s.busy = true
		s.k.Spend(120) // command the measurement over the 2-wire bus
		s.ps.Set(power.SensorSample)
		s.irq.RaiseAfter(conv, func() {
			// Completion interrupt: the driver stored the requesting
			// activity; bind the proxy to it and finish up.
			s.k.CPUAct.Bind(label)
			s.ps.Set(power.SensorIdle)
			s.k.Spend(90) // clock out the 16-bit result
			raw := s.nextRaw
			s.nextRaw += s.rawDelta
			s.busy = false
			s.reads++
			s.arb.Release()
			s.k.PostLabeled(label, func() { done(raw) })
		})
	})
}
