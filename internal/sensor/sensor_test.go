package sensor_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/units"
)

func TestHumidityReadCompletes(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	var raw uint16
	done := false
	n.K.Boot(func() {
		n.Sensor.ReadHumidity(func(v uint16) {
			raw = v
			done = true
		})
	})
	w.Run(units.Second)
	if !done {
		t.Fatal("conversion never completed")
	}
	if raw == 0 {
		t.Error("raw reading is zero")
	}
	if n.Sensor.Reads() != 1 {
		t.Errorf("Reads = %d", n.Sensor.Reads())
	}
}

func TestSampleStateCoversConversionTime(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	n.K.Boot(func() {
		n.Sensor.ReadTemperature(func(uint16) {})
	})
	w.Run(units.Second)
	w.StampEnd()
	// The sensor must be in SAMPLE for roughly the conversion time.
	var sampleUS int64
	var start int64 = -1
	for _, e := range n.Log.Entries {
		if e.Type != core.EntryPowerState || e.Res != power.ResSensor {
			continue
		}
		if e.State() == power.SensorSample {
			start = int64(e.Time)
		} else if start >= 0 {
			sampleUS += int64(e.Time) - start
			start = -1
		}
	}
	want := int64(sensor.TemperatureTime)
	if sampleUS < want || sampleUS > want+2000 {
		t.Errorf("SAMPLE time = %d us, want ~%d", sampleUS, want)
	}
}

func TestCompletionBindsToRequestersActivity(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	act := n.K.DefineActivity("ACT_HUM")
	var cbLabel core.Label
	n.K.Boot(func() {
		n.K.CPUAct.Set(act)
		n.Sensor.ReadHumidity(func(uint16) {
			cbLabel = n.K.CPUAct.Get()
		})
		n.K.CPUAct.SetIdle()
	})
	w.Run(units.Second)
	if cbLabel != act {
		t.Errorf("callback under %v, want %v", cbLabel, act)
	}
	// The completion interrupt must have bound its proxy to the activity.
	found := false
	for _, e := range n.Log.Entries {
		if e.Type == core.EntryActivityBind && e.Res == power.ResCPU && core.Label(e.Val) == act {
			found = true
		}
	}
	if !found {
		t.Error("no bind entry from the completion interrupt")
	}
}

func TestConcurrentReadsSerializedByArbiter(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	var order []string
	n.K.Boot(func() {
		n.Sensor.ReadHumidity(func(uint16) { order = append(order, "hum") })
		n.Sensor.ReadTemperature(func(uint16) { order = append(order, "temp") })
	})
	w.Run(2 * units.Second)
	if len(order) != 2 || order[0] != "hum" || order[1] != "temp" {
		t.Errorf("order = %v, want [hum temp]", order)
	}
	if n.Sensor.Reads() != 2 {
		t.Errorf("Reads = %d", n.Sensor.Reads())
	}
}

func TestSensorEnergyAttributedToActivity(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	act := n.K.DefineActivity("ACT_HUM")
	n.K.Boot(func() {
		n.K.CPUAct.Set(act)
		n.Sensor.ReadHumidity(func(uint16) {})
		n.K.CPUAct.SetIdle()
	})
	w.Run(units.Second)
	w.StampEnd()
	// The sensor's activity device must have carried the activity during
	// the conversion (transferred by the arbiter).
	var carried bool
	for _, e := range n.Log.Entries {
		if e.Type == core.EntryActivitySet && e.Res == power.ResSensor && core.Label(e.Val) == act {
			carried = true
		}
	}
	if !carried {
		t.Error("arbiter did not transfer the activity to the sensor")
	}
}
