package linalg

import (
	"fmt"
	"math"
)

// NNLS solves the weighted non-negative least-squares problem
//
//	minimize ||diag(sqrt(w)) (X b - y)||  subject to  b >= 0
//
// with the Lawson–Hanson active-set algorithm. Power draws are physically
// non-negative, so constraining the energy-breakdown regression this way
// prevents the arbitrary positive/negative coefficient splits that plain
// least squares produces when predictors are nearly collinear (for example
// a radio whose receive path is on whenever the node is not transmitting).
func NNLS(x *Matrix, y, w []float64) (*WLSResult, error) {
	m, n := x.Rows(), x.Cols()
	if len(y) != m || len(w) != m {
		return nil, fmt.Errorf("linalg: NNLS dimension mismatch: %dx%d, y=%d, w=%d", m, n, len(y), len(w))
	}
	sqw := make([]float64, m)
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			return nil, fmt.Errorf("linalg: NNLS negative or NaN weight at row %d", i)
		}
		sqw[i] = math.Sqrt(wi)
	}
	// Scaled problem: A b ~ c.
	a := x.Clone().ScaleRows(sqw)
	c := make([]float64, m)
	for i := range y {
		c[i] = y[i] * sqw[i]
	}

	passive := make([]bool, n)
	beta := make([]float64, n)

	residual := func(b []float64) []float64 {
		r := make([]float64, m)
		copy(r, c)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if b[j] != 0 {
					r[i] -= a.At(i, j) * b[j]
				}
			}
		}
		return r
	}

	gradient := func(r []float64) []float64 {
		g := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a.At(i, j) * r[i]
			}
			g[j] = s
		}
		return g
	}

	// solvePassive solves the unconstrained LS restricted to the passive
	// set, zero elsewhere. Columns that make the subproblem singular are
	// returned to the active (zero) set.
	solvePassive := func() ([]float64, error) {
		var cols []int
		for j := 0; j < n; j++ {
			if passive[j] {
				cols = append(cols, j)
			}
		}
		out := make([]float64, n)
		if len(cols) == 0 {
			return out, nil
		}
		sub := NewMatrix(m, len(cols))
		for i := 0; i < m; i++ {
			for k, j := range cols {
				sub.Set(i, k, a.At(i, j))
			}
		}
		qr, err := NewQR(sub)
		if err != nil {
			return nil, err
		}
		s, err := qr.Solve(c)
		if err != nil {
			return nil, err
		}
		for k, j := range cols {
			out[j] = s[k]
		}
		return out, nil
	}

	const tol = 1e-10
	maxIter := 3 * n
	for iter := 0; iter < maxIter; iter++ {
		r := residual(beta)
		g := gradient(r)
		// Find the most promising active column.
		best, bestVal := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && g[j] > bestVal {
				best, bestVal = j, g[j]
			}
		}
		if best < 0 {
			break // KKT satisfied
		}
		passive[best] = true

		for inner := 0; inner < maxIter; inner++ {
			s, err := solvePassive()
			if err != nil {
				// The new column is linearly dependent on the current
				// passive set; drop it and stop considering it.
				passive[best] = false
				break
			}
			minS := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && s[j] < minS {
					minS = s[j]
				}
			}
			if minS > tol {
				copy(beta, s)
				break
			}
			// Step back to the feasibility boundary.
			alpha := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && s[j] <= tol && beta[j] != s[j] {
					if a := beta[j] / (beta[j] - s[j]); a < alpha {
						alpha = a
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					beta[j] += alpha * (s[j] - beta[j])
					if beta[j] <= tol {
						beta[j] = 0
						passive[j] = false
					}
				}
			}
		}
	}

	fitted := x.MulVec(beta)
	res := Sub(y, fitted)
	ny := Norm2(y)
	relErr := 0.0
	if ny > 0 {
		relErr = Norm2(res) / ny
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(m)
	var ssTot, ssRes float64
	for i, v := range y {
		ssTot += (v - mean) * (v - mean)
		ssRes += res[i] * res[i]
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &WLSResult{Coef: beta, Fitted: fitted, Residuals: res, RelErr: relErr, R2: r2}, nil
}
