package linalg

import (
	"fmt"
	"math"
)

// WLSResult carries the output of a weighted least-squares fit.
type WLSResult struct {
	// Coef is the estimated coefficient vector (Pi in the paper).
	Coef []float64
	// Fitted is X * Coef.
	Fitted []float64
	// Residuals is Y - Fitted (epsilon in the paper).
	Residuals []float64
	// RelErr is ||Y - X Pi|| / ||Y||, the figure of merit the paper quotes
	// (0.83% for the Blink calibration of Table 2).
	RelErr float64
	// R2 is the (unweighted) coefficient of determination.
	R2 float64
}

// WLS computes the weighted multivariate least-squares estimate of
// Section 2.5:
//
//	Pi = (X^T W X)^-1 X^T W Y
//
// where W = diag(w). It is implemented as a QR factorization of
// diag(sqrt(w)) X against diag(sqrt(w)) Y, which solves the same normal
// equations with better conditioning. Weights must be non-negative; rows
// with zero weight are effectively ignored.
func WLS(x *Matrix, y, w []float64) (*WLSResult, error) {
	m, n := x.Rows(), x.Cols()
	if len(y) != m {
		return nil, fmt.Errorf("linalg: WLS y length %d != rows %d", len(y), m)
	}
	if len(w) != m {
		return nil, fmt.Errorf("linalg: WLS w length %d != rows %d", len(w), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: WLS underdetermined: %d observations for %d predictors", m, n)
	}
	sqw := make([]float64, m)
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			return nil, fmt.Errorf("linalg: WLS negative or NaN weight at row %d", i)
		}
		sqw[i] = math.Sqrt(wi)
	}
	xs := x.Clone().ScaleRows(sqw)
	ys := make([]float64, m)
	for i := range y {
		ys[i] = y[i] * sqw[i]
	}
	qr, err := NewQR(xs)
	if err != nil {
		return nil, err
	}
	coef, err := qr.Solve(ys)
	if err != nil {
		return nil, err
	}
	fitted := x.MulVec(coef)
	res := Sub(y, fitted)
	ny := Norm2(y)
	relErr := 0.0
	if ny > 0 {
		relErr = Norm2(res) / ny
	}
	// R^2 against the mean model.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(m)
	var ssTot, ssRes float64
	for i, v := range y {
		ssTot += (v - mean) * (v - mean)
		ssRes += res[i] * res[i]
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &WLSResult{Coef: coef, Fitted: fitted, Residuals: res, RelErr: relErr, R2: r2}, nil
}

// OLS is ordinary (unweighted) least squares, used by the weighting
// ablation.
func OLS(x *Matrix, y []float64) (*WLSResult, error) {
	w := make([]float64, x.Rows())
	for i := range w {
		w[i] = 1
	}
	return WLS(x, y, w)
}

// LinFit fits y = a*x + b by least squares and returns slope a, intercept b
// and R^2. It reproduces the paper's pulse-frequency linearity check
// (I_avg = 2.77 f_iC - 0.05, R^2 = 0.99995).
func LinFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("linalg: LinFit wants >=2 equal-length samples, got %d/%d", len(xs), len(ys))
	}
	x := NewMatrix(len(xs), 2)
	for i, v := range xs {
		x.Set(i, 0, v)
		x.Set(i, 1, 1)
	}
	res, err := OLS(x, ys)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Coef[0], res.Coef[1], res.R2, nil
}
