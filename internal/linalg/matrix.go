// Package linalg provides the small dense linear-algebra kernel needed for
// Quanto's offline energy-breakdown regression: matrices, Householder QR,
// Gaussian elimination, and weighted least squares. It is self-contained
// (standard library only) and sized for the problem at hand — tens of
// observations by a handful of predictors — rather than for large-scale
// numerical work.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: mul %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols:]
			orow := out.data[i*out.cols:]
			for j := 0; j < b.cols; j++ {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// MulVec returns m * v as a vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: mulvec %dx%d by %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols:]
		var s float64
		for j := 0; j < m.cols; j++ {
			s += row[j] * v[j]
		}
		out[i] = s
	}
	return out
}

// ScaleRows multiplies row i by w[i] in place and returns m.
func (m *Matrix) ScaleRows(w []float64) *Matrix {
	if len(w) != m.rows {
		panic("linalg: weight length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range row {
			row[j] *= w[i]
		}
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "%10.4g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Sub returns a - b element-wise.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
