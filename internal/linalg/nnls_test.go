package linalg

import (
	"testing"

	"repro/internal/sim"
)

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestNNLSMatchesWLSWhenInterior(t *testing.T) {
	// A well-conditioned problem with a strictly positive solution: NNLS
	// must agree with unconstrained WLS.
	x := FromRows([][]float64{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 1},
		{0, 0, 1},
		{1, 0, 1},
		{0, 1, 1},
	})
	truth := []float64{2.5, 1.5, 0.8}
	y := x.MulVec(truth)
	w := []float64{1, 2, 3, 4, 5, 6}
	nn, err := NNLS(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := WLS(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if !almost(nn.Coef[j], ls.Coef[j], 1e-8) || !almost(nn.Coef[j], truth[j], 1e-8) {
			t.Errorf("coef %d: nnls=%v wls=%v truth=%v", j, nn.Coef[j], ls.Coef[j], truth[j])
		}
	}
}

func TestNNLSClampsNegativeSolution(t *testing.T) {
	// Data generated so unconstrained LS wants a negative coefficient:
	// column 2 active exactly when the response *drops*.
	x := FromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 0},
		{1, 1},
	})
	y := []float64{10, 7, 10, 7}
	w := uniformWeights(4)
	ls, err := WLS(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Coef[1] >= 0 {
		t.Fatalf("test premise broken: WLS coef = %v", ls.Coef)
	}
	nn, err := NNLS(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range nn.Coef {
		if c < 0 {
			t.Errorf("NNLS coef %d = %v < 0", j, c)
		}
	}
	// The best non-negative fit sets coef[1] = 0 and the intercept to the
	// weighted mean.
	if nn.Coef[1] != 0 {
		t.Errorf("coef[1] = %v, want 0", nn.Coef[1])
	}
	if !almost(nn.Coef[0], 8.5, 1e-9) {
		t.Errorf("coef[0] = %v, want 8.5", nn.Coef[0])
	}
}

func TestNNLSNonNegativityProperty(t *testing.T) {
	rng := sim.NewRNG(123)
	for trial := 0; trial < 100; trial++ {
		rows, cols := 10, 4
		x := NewMatrix(rows, cols)
		y := make([]float64, rows)
		w := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.5 {
					x.Set(i, j, 1)
				}
			}
			y[i] = rng.Float64()*20 - 5 // may be negative
			w[i] = 0.1 + rng.Float64()
		}
		res, err := NNLS(x, y, w)
		if err != nil {
			continue
		}
		for j, c := range res.Coef {
			if c < 0 {
				t.Fatalf("trial %d: coef %d = %v < 0", trial, j, c)
			}
		}
		// The *weighted* residual (the optimized quantity) must never beat
		// the unconstrained optimum.
		weightedNorm := func(r []float64) float64 {
			var s float64
			for i, v := range r {
				s += w[i] * v * v
			}
			return s
		}
		if ls, err := WLS(x, y, w); err == nil {
			if weightedNorm(res.Residuals) < weightedNorm(ls.Residuals)-1e-9 {
				t.Fatalf("trial %d: NNLS weighted residual beats WLS", trial)
			}
		}
	}
}

func TestNNLSRecoversPlantedNonNegative(t *testing.T) {
	rng := sim.NewRNG(321)
	recovered := 0
	for trial := 0; trial < 100; trial++ {
		rows, cols := 14, 4
		x := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols-1; j++ {
				if rng.Float64() < 0.5 {
					x.Set(i, j, 1)
				}
			}
			x.Set(i, cols-1, 1)
		}
		truth := make([]float64, cols)
		for j := range truth {
			truth[j] = rng.Float64() * 10
		}
		y := x.MulVec(truth)
		res, err := NNLS(x, y, uniformWeights(rows))
		if err != nil {
			continue
		}
		ok := true
		for j := range truth {
			if !almost(res.Coef[j], truth[j], 1e-6) {
				ok = false
			}
		}
		if ok {
			recovered++
		}
	}
	if recovered < 80 {
		t.Errorf("recovered planted solution in %d/100 trials", recovered)
	}
}

func TestNNLSDimensionChecks(t *testing.T) {
	x := NewMatrix(3, 2)
	if _, err := NNLS(x, []float64{1}, []float64{1, 1, 1}); err == nil {
		t.Error("y mismatch should fail")
	}
	if _, err := NNLS(x, []float64{1, 2, 3}, []float64{1, -1, 1}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestNNLSZeroColumns(t *testing.T) {
	// A column never active must get coefficient zero, not break the solve.
	x := FromRows([][]float64{
		{1, 0, 1},
		{0, 0, 1},
		{1, 0, 1},
		{0, 0, 1},
	})
	y := []float64{5, 2, 5, 2}
	res, err := NNLS(x, y, uniformWeights(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coef[1] != 0 {
		t.Errorf("dead column coef = %v", res.Coef[1])
	}
	if !almost(res.Coef[0], 3, 1e-9) || !almost(res.Coef[2], 2, 1e-9) {
		t.Errorf("coef = %v, want [3 0 2]", res.Coef)
	}
}
