package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set failed")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 9 {
		t.Error("Clone is not independent")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims = %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.Mul(Identity(2))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Errorf("M*I != M at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Errorf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
	s := Sub([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Error("Sub")
	}
}

func TestSolveGaussKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almost(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGauss(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveGaussNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveGauss(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 7, 1e-12) || !almost(x[1], 3, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestQRSolvesExactSystem(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	truth := []float64{3, -2}
	b := a.MulVec(truth)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !almost(x[i], truth[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], truth[i])
		}
	}
}

func TestQRRejectsWideMatrix(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Error("QR of wide matrix should fail")
	}
}

func TestQRSingularColumn(t *testing.T) {
	a := NewMatrix(3, 2) // second column all zeros
	a.Set(0, 0, 1)
	a.Set(1, 0, 2)
	a.Set(2, 0, 3)
	if _, err := NewQR(a); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// TestWLSRecoversPlantedCoefficients is the core property: for random
// full-rank binary designs with positive weights and noiseless observations,
// WLS recovers the planted coefficient vector exactly (up to numerics).
func TestWLSRecoversPlantedCoefficients(t *testing.T) {
	rng := sim.NewRNG(77)
	f := func() bool {
		rows, cols := 12, 4
		x := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols-1; j++ {
				if rng.Float64() < 0.5 {
					x.Set(i, j, 1)
				}
			}
			x.Set(i, cols-1, 1) // constant
		}
		truth := make([]float64, cols)
		for j := range truth {
			truth[j] = 1 + 10*rng.Float64()
		}
		y := x.MulVec(truth)
		w := make([]float64, rows)
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
		res, err := WLS(x, y, w)
		if err != nil {
			// Random designs may be rank-deficient; skip those draws.
			return err == ErrSingular
		}
		for j := range truth {
			if !almost(res.Coef[j], truth[j], 1e-6) {
				return false
			}
		}
		return res.RelErr < 1e-9
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatalf("recovery failed on draw %d", i)
		}
	}
}

func TestWLSWeightsDownweightNoisyRows(t *testing.T) {
	// Two coefficients; one heavily corrupted observation. With the
	// corrupted row's weight near zero, recovery should be clean.
	x := FromRows([][]float64{{1, 1}, {0, 1}, {1, 1}, {0, 1}, {1, 1}})
	truth := []float64{2, 1}
	y := x.MulVec(truth)
	y[4] += 100 // corrupt
	wGood := []float64{1, 1, 1, 1, 1e-9}
	res, err := WLS(x, y, wGood)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Coef[0], 2, 1e-3) || !almost(res.Coef[1], 1, 1e-3) {
		t.Errorf("coef = %v, want [2 1]", res.Coef)
	}
	// Same fit with uniform weights is pulled off target.
	resU, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if almost(resU.Coef[0], 2, 1e-3) {
		t.Error("unweighted fit should be corrupted by the bad row")
	}
}

func TestWLSValidation(t *testing.T) {
	x := NewMatrix(3, 2)
	if _, err := WLS(x, []float64{1, 2}, []float64{1, 1, 1}); err == nil {
		t.Error("y length mismatch should fail")
	}
	if _, err := WLS(x, []float64{1, 2, 3}, []float64{1, 1}); err == nil {
		t.Error("w length mismatch should fail")
	}
	if _, err := WLS(x, []float64{1, 2, 3}, []float64{1, -1, 1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := WLS(NewMatrix(1, 2), []float64{1}, []float64{1}); err == nil {
		t.Error("underdetermined system should fail")
	}
}

func TestLinFitKnownLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.77*x - 0.05
	}
	slope, intercept, r2, err := LinFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slope, 2.77, 1e-9) || !almost(intercept, -0.05, 1e-9) || !almost(r2, 1, 1e-12) {
		t.Errorf("fit = %v %v %v", slope, intercept, r2)
	}
}

func TestLinFitValidation(t *testing.T) {
	if _, _, _, err := LinFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, _, _, err := LinFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestR2OfMeanModelIsZero(t *testing.T) {
	// Fitting only a constant to varying data gives R^2 ~ 0.
	x := NewMatrix(4, 1)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, 1)
	}
	res, err := OLS(x, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.R2, 0, 1e-9) {
		t.Errorf("R2 = %v, want 0", res.R2)
	}
}

func TestScaleRowsProperty(t *testing.T) {
	f := func(v1, v2, v3 uint8) bool {
		m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
		w := []float64{float64(v1), float64(v2), float64(v3)}
		m.ScaleRows(w)
		for i := 0; i < 3; i++ {
			if m.At(i, 0) != w[i]*float64(2*i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
