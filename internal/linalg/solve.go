package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system is (numerically) rank-deficient —
// in Quanto terms, when the tracked power states never varied independently
// enough to disambiguate their draws (Section 5.2, "Linear independence").
var ErrSingular = errors.New("linalg: singular or rank-deficient system")

// SolveGauss solves the square system A x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveGauss(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveGauss wants square system, got %dx%d with b=%d", a.Rows(), a.Cols(), len(b))
	}
	// Work on copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		max := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > max {
				max, pivot = v, r
			}
		}
		if max < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vc, vp := m.At(col, j), m.At(pivot, j)
				m.Set(col, j, vp)
				m.Set(pivot, j, vc)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// QR holds the Householder factorization A = Q R of an m x n matrix with
// m >= n. It is stored compactly: R in the upper triangle, the Householder
// vectors below.
type QR struct {
	qr   *Matrix
	tau  []float64
	rows int
	cols int
}

// NewQR factors a (not modified).
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR wants rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = norm
		// Apply to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau, rows: m, cols: n}, nil
}

// Solve returns the least-squares solution x minimizing ||A x - b||2.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.rows {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d != %d", len(b), f.rows)
	}
	y := make([]float64, f.rows)
	copy(y, b)
	// Apply Q^T.
	for k := 0; k < f.cols; k++ {
		var s float64
		for i := k; i < f.rows; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.rows; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n]. R(k,k) = -tau[k].
	x := make([]float64, f.cols)
	for i := f.cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.cols; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := -f.tau[i]
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
