package radio

import (
	"testing"

	"repro/internal/medium"
	"repro/internal/power"
	"repro/internal/units"
)

func TestCCARestoresListeningState(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.r[0].StartListening()
			_ = rg.r[0].SampleCCA()
			// Still listening afterwards.
			if got := lastState(rg.sink[0].Entries, power.ResRadioRx); got != power.RadioRxListen {
				t.Errorf("rx state after CCA while listening = %v", got)
			}
			rg.r[0].StopListening()
			_ = rg.r[0].SampleCCA()
			if got := lastState(rg.sink[0].Entries, power.ResRadioRx); got != power.RadioRxOff {
				t.Errorf("rx state after CCA while idle = %v", got)
			}
		})
	})
	rg.s.Run(units.Second)
}

func TestTurnOnTwiceIsIdempotent(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	calls := 0
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			calls++
			rg.r[0].TurnOn(func() { calls++ }) // already on: immediate
		})
	})
	rg.s.Run(units.Second)
	if calls != 2 {
		t.Errorf("done callbacks = %d, want 2", calls)
	}
}

func TestSendWhileOffPanics(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	recovered := false
	rg.k[0].Boot(func() {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		rg.r[0].Send(&medium.Frame{Bytes: 8}, nil)
	})
	rg.s.Run(units.Second)
	if !recovered {
		t.Error("send while off should panic")
	}
}

func TestListenWhileOffPanics(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	recovered := false
	rg.k[0].Boot(func() {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		rg.r[0].StartListening()
	})
	rg.s.Run(units.Second)
	if !recovered {
		t.Error("listen while off should panic")
	}
}

func TestStopListeningMidFrameLosesIt(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	got := 0
	rg.r[1].OnReceive(func(*medium.Frame) { got++ })
	rg.k[1].Boot(func() {
		rg.r[1].TurnOn(func() {
			rg.r[1].StartListening()
			// Shut the receiver off shortly after the frame starts
			// arriving (the sender begins ~2-4 ms in due to startup and
			// backoff; the frame lasts ~1 ms on the air).
			tm := rg.k[1].NewTimer(func() { rg.r[1].TurnOff() })
			tm.StartOneShot(4500)
		})
	})
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.r[0].Send(&medium.Frame{Bytes: 60}, nil)
		})
	})
	rg.s.Run(units.Second)
	if got != 0 {
		t.Errorf("received %d frames despite receiver shutdown mid-frame", got)
	}
}

func TestBackoffVariesWithSeed(t *testing.T) {
	timings := make(map[units.Ticks]bool)
	for seed := uint64(1); seed <= 4; seed++ {
		rg := newRig(t, Config{Channel: 26})
		// Re-seed the node's RNG stream by raising distinct numbers of
		// random draws before sending.
		for i := uint64(0); i < seed; i++ {
			rg.k[0].RNG().Uint64()
		}
		var doneAt units.Ticks
		rg.k[0].Boot(func() {
			rg.r[0].TurnOn(func() {
				rg.r[0].Send(&medium.Frame{Bytes: 16}, func() {
					doneAt = rg.k[0].NowTicks()
				})
			})
		})
		rg.s.Run(units.Second)
		timings[doneAt] = true
	}
	if len(timings) < 2 {
		t.Error("backoff shows no variation across RNG states")
	}
}
