package radio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/medium"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

type rig struct {
	s    *sim.Simulator
	med  *medium.Medium
	dict *core.Dictionary
	k    [2]*kernel.Kernel
	r    [2]*Radio
	sink [2]*core.Collector
}

type zeroMeter struct{}

func (zeroMeter) ReadPulses() uint32 { return 0 }

// newRig builds two bare nodes with radios on channel 26.
func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	s := sim.New()
	rg := &rig{s: s, med: medium.New(s), dict: core.NewDictionary()}
	for i := 0; i < 2; i++ {
		id := core.NodeID(i + 1)
		k := kernel.New(s, id, rg.dict, kernel.DefaultOptions(), 11)
		sink := core.NewCollector()
		trk := core.NewTracker(core.Config{Node: id, Clock: k, Meter: zeroMeter{}, Cost: k, Sink: sink})
		k.Attach(trk)
		b := power.NewBoard(3.0, power.CalibratedDraws(), k.NowTicks)
		trk.ListenPowerStates(b)
		rg.k[i] = k
		rg.sink[i] = sink
		rg.r[i] = New(k, rg.med, b, cfg)
	}
	return rg
}

func TestTurnOnSequence(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	done := false
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() { done = true })
	})
	rg.s.Run(units.Second)
	if !done {
		t.Fatal("TurnOn completion never delivered")
	}
	if !rg.r[0].On() {
		t.Error("radio should be on")
	}
	// The power-state log must show regulator on before control idle.
	var regAt, ctlAt int = -1, -1
	for i, e := range rg.sink[0].Entries {
		if e.Type != core.EntryPowerState {
			continue
		}
		if e.Res == power.ResRadioReg && e.State() == power.RadioRegOn && regAt < 0 {
			regAt = i
		}
		if e.Res == power.ResRadioCtl && e.State() == power.RadioCtlIdle && ctlAt < 0 {
			ctlAt = i
		}
	}
	if regAt < 0 || ctlAt < 0 || regAt > ctlAt {
		t.Errorf("startup order wrong: reg@%d ctl@%d", regAt, ctlAt)
	}
}

func TestSendDeliversFrame(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	var received *medium.Frame
	rg.r[1].OnReceive(func(f *medium.Frame) { received = f })

	rg.k[1].Boot(func() {
		rg.r[1].TurnOn(func() { rg.r[1].StartListening() })
	})
	sent := false
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			f := &medium.Frame{Bytes: 24, Payload: "hello"}
			rg.r[0].Send(f, func() { sent = true })
		})
	})
	rg.s.Run(units.Second)
	if !sent {
		t.Fatal("sendDone never fired")
	}
	if received == nil {
		t.Fatal("frame not delivered")
	}
	if received.Payload != "hello" || received.Src != 1 {
		t.Errorf("frame = %+v", received)
	}
}

func TestSendPaintsTxPathWithCPUActivity(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	act := rg.k[0].DefineActivity("App")
	var txLabelDuringSend core.Label
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.k[0].CPUAct.Set(act)
			rg.r[0].Send(&medium.Frame{Bytes: 16}, nil)
			txLabelDuringSend = rg.r[0].TxAct.Get()
			rg.k[0].CPUAct.SetIdle()
		})
	})
	rg.s.Run(units.Second)
	if txLabelDuringSend != act {
		t.Errorf("TxAct = %v during send, want %v (Figure 8)", txLabelDuringSend, act)
	}
	if got := rg.r[0].TxAct.Get(); !got.IsIdle() {
		t.Errorf("TxAct = %v after send, want idle", got)
	}
}

func TestTxPowerStateDuringTransmission(t *testing.T) {
	rg := newRig(t, Config{Channel: 26, TxPower: power.RadioTxM5dBm})
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.r[0].Send(&medium.Frame{Bytes: 16}, nil)
		})
	})
	rg.s.Run(units.Second)
	// The log must contain a TX power state at the configured level and a
	// return to off.
	var sawLevel, sawOff bool
	for _, e := range rg.sink[0].Entries {
		if e.Type == core.EntryPowerState && e.Res == power.ResRadioTx {
			if e.State() == power.RadioTxM5dBm {
				sawLevel = true
			}
			if sawLevel && e.State() == power.RadioTxOff {
				sawOff = true
			}
		}
	}
	if !sawLevel || !sawOff {
		t.Errorf("TX power states: level=%v off=%v", sawLevel, sawOff)
	}
}

func TestReceiverNotListeningIgnoresFrames(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	got := 0
	rg.r[1].OnReceive(func(*medium.Frame) { got++ })
	// Radio 1 on but NOT listening.
	rg.k[1].Boot(func() { rg.r[1].TurnOn(nil) })
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.r[0].Send(&medium.Frame{Bytes: 16}, nil)
		})
	})
	rg.s.Run(units.Second)
	if got != 0 {
		t.Errorf("received %d frames while not listening", got)
	}
}

func TestChannelMismatchIgnored(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	rg.r[1].SetChannel(17)
	got := 0
	rg.r[1].OnReceive(func(*medium.Frame) { got++ })
	rg.k[1].Boot(func() {
		rg.r[1].TurnOn(func() { rg.r[1].StartListening() })
	})
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.r[0].Send(&medium.Frame{Bytes: 16}, nil)
		})
	})
	rg.s.Run(units.Second)
	if got != 0 {
		t.Errorf("received %d frames on the wrong channel", got)
	}
}

func TestListeningTracksRxActivitySet(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	act := rg.k[0].DefineActivity("Listener")
	rg.k[0].Boot(func() {
		rg.k[0].CPUAct.Set(act)
		rg.r[0].TurnOn(func() {
			rg.r[0].StartListening()
			if !rg.r[0].RxAct.Has(act) {
				t.Error("RxAct should contain the listening activity")
			}
			rg.r[0].StopListening()
			if rg.r[0].RxAct.Count() != 0 {
				t.Error("RxAct should be empty after StopListening")
			}
		})
		rg.k[0].CPUAct.SetIdle()
	})
	rg.s.Run(units.Second)
}

func TestCCASampleCleanAndBusy(t *testing.T) {
	rg := newRig(t, Config{Channel: 17})
	rg.med.AddWiFi(medium.NewWiFiSource(6, 500*units.Millisecond, units.Millisecond, 3))
	// That source is essentially always on; CCA must detect it on ch 17.
	var busy bool
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			busy = rg.r[0].SampleCCA()
			rg.r[0].TurnOff()
		})
	})
	rg.s.Run(units.Second)
	if !busy {
		t.Error("CCA on overlapped channel with constant interference should report busy")
	}
	samples, positives := rg.r[0].CCAStats()
	if samples != 1 || positives != 1 {
		t.Errorf("stats = %d/%d", samples, positives)
	}
}

func TestTurnOffWhileListening(t *testing.T) {
	rg := newRig(t, Config{Channel: 26})
	rg.k[0].Boot(func() {
		rg.r[0].TurnOn(func() {
			rg.r[0].StartListening()
			rg.r[0].TurnOff()
		})
	})
	rg.s.Run(units.Second)
	if rg.r[0].On() {
		t.Error("radio still on")
	}
	// All sinks must be back at their zero states.
	for _, e := range []core.ResourceID{power.ResRadioReg, power.ResRadioCtl, power.ResRadioRx, power.ResRadioTx} {
		last := lastState(rg.sink[0].Entries, e)
		if last != 0 {
			t.Errorf("res %d final state = %d, want 0", e, last)
		}
	}
}

func lastState(entries []core.Entry, res core.ResourceID) core.PowerState {
	var st core.PowerState
	for _, e := range entries {
		if e.Type == core.EntryPowerState && e.Res == res {
			st = e.State()
		}
	}
	return st
}

func TestInterruptModeLogsPerChunkProxies(t *testing.T) {
	count := func(useDMA bool) (spi, dma int) {
		rg := newRig(t, Config{Channel: 26, UseDMA: useDMA})
		rg.k[0].Boot(func() {
			rg.r[0].TurnOn(func() {
				rg.r[0].Send(&medium.Frame{Bytes: 40}, nil)
			})
		})
		rg.s.Run(units.Second)
		var spiL, dmaL core.Label
		for l, name := range rg.dict.Activities {
			if l.Origin() != 1 {
				continue
			}
			switch name {
			case "int_UART0RX":
				spiL = l
			case "int_DACDMA":
				dmaL = l
			}
		}
		for _, e := range rg.sink[0].Entries {
			if e.Type != core.EntryActivitySet {
				continue
			}
			switch core.Label(e.Val) {
			case spiL:
				spi++
			case dmaL:
				dma++
			}
		}
		return spi, dma
	}
	spiN, dmaN := count(false)
	spiD, dmaD := count(true)
	// Interrupt mode: one proxy activation per 2-byte chunk (20 chunks for
	// 40 bytes). DMA mode: a single completion interrupt.
	if spiN < 18 {
		t.Errorf("interrupt mode logged %d SPI proxies, want ~20", spiN)
	}
	if dmaN != 0 {
		t.Errorf("interrupt mode logged %d DMA proxies", dmaN)
	}
	if dmaD != 1 {
		t.Errorf("DMA mode logged %d DMA proxies, want 1", dmaD)
	}
	if spiD != 0 {
		t.Errorf("DMA mode logged %d SPI proxies", spiD)
	}
}
