// Package radio models a CC2420-like 802.15.4 transceiver and its TinyOS
// driver, instrumented for Quanto.
//
// The hardware side exposes four energy sinks (regulator, control path,
// receive path, transmit path — the radio rows of Table 1). The driver side
// reproduces the instrumentation points of the paper:
//
//   - loadTXFIFO paints the radio's transmit path with the CPU's current
//     activity before writing the FIFO (Figure 8);
//   - packet reception starts under the static pxy_RX proxy activity, the
//     FIFO drain runs under the int_UART0RX proxy (one interrupt per two
//     bytes), and the Active Message layer later binds all of it to the
//     activity carried in the packet (Figure 12b);
//   - the CPU-to-radio bus transfer can run interrupt-driven or via a DMA
//     channel (int_DACDMA), the design choice quantified in Figure 16.
package radio

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/medium"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// Timing and cost constants of the modeled transceiver.
const (
	// StartupTime covers voltage regulator and crystal oscillator startup.
	StartupTime units.Ticks = 1600
	// ByteAirtime is the on-air time per byte at 250 kbps.
	ByteAirtime units.Ticks = 32
	// PreambleBytes + SFD precede the payload on the air.
	PreambleBytes = 5
	// SPIChunkBytes is how many bytes move per bus interrupt in
	// interrupt-driven mode ("an interrupt for every 2 bytes").
	SPIChunkBytes = 2
	// SPIByteTime is the bus transfer time per byte.
	SPIByteTime units.Ticks = 16
	// SPIHandlerCost is the CPU cost of one bus interrupt handler.
	SPIHandlerCost units.Cycles = 90
	// DMASetupCost configures the DMA controller for a whole transfer.
	DMASetupCost units.Cycles = 150
	// DMAHandlerCost runs once per completed DMA transfer.
	DMAHandlerCost units.Cycles = 60
	// CCASampleTime is the receiver-on time of one clear-channel check.
	CCASampleTime units.Ticks = 128
	// CCAThreshold is the normalized energy above which the channel is
	// considered busy.
	CCAThreshold = 0.05
	// BackoffMin/BackoffSpan bound the random CSMA backoff before
	// transmitting.
	BackoffMin  units.Ticks = 500
	BackoffSpan units.Ticks = 2000
)

// Config selects the driver variant.
type Config struct {
	Channel int
	// UseDMA selects DMA-based CPU-radio communication instead of the
	// interrupt-per-2-bytes default (the Figure 16 comparison).
	UseDMA bool
	// TxPower is the transmit power state (power.RadioTx0dBm by default).
	TxPower core.PowerState
}

// Radio is one node's transceiver plus driver state.
type Radio struct {
	k   *kernel.Kernel
	med *medium.Medium
	cfg Config

	psReg *core.PowerStateVar
	psCtl *core.PowerStateVar
	psRx  *core.PowerStateVar
	psTx  *core.PowerStateVar

	// TxAct is the transmit path's activity (a single-activity device).
	TxAct *core.SingleActivityDevice
	// RxAct is the receive path's activity set; listening can serve several
	// activities at once (a multi-activity device).
	RxAct *core.MultiActivityDevice

	rxProxy  *kernel.IRQ // pxy_RX: start-of-frame on receive
	spiIRQ   *kernel.IRQ // int_UART0RX: bus transfer, interrupt mode
	dmaIRQ   *kernel.IRQ // int_DACDMA: bus transfer, DMA mode
	txSfdIRQ *kernel.IRQ
	ctlIRQ   *kernel.IRQ // int_RADIO: startup/txdone control events

	on        bool
	listening bool
	sending   bool
	listenLbl core.Label

	// txPledge announces a pending medium transmit to the partition scheduler
	// (sim.Group): it is armed at the moment the CSMA backoff is scheduled,
	// for the instant the backoff expires, and released inside the expiry
	// handler right before the shared medium is touched. A radio has at most
	// one transmission in flight (Send panics otherwise), so one slot is
	// enough. On a plain serial simulator the pledge is bookkeeping only.
	txPledge sim.Pledge

	receive func(*medium.Frame)

	// sfdFn / rxEndFn are the per-frame receive-path callbacks, created once
	// (the frame travels as the event argument) so every reception schedules
	// without allocating closures.
	sfdFn   func()
	rxEndFn func(any)

	// startupFn is the cached TurnOn completion handler; the initiating
	// label and done callback ride in these fields instead of a fresh
	// closure per power-up.
	startupFn    func()
	startupLabel core.Label
	startupDone  func()

	ccaSamples   uint64
	ccaPositives uint64
}

// New attaches a radio to kernel k and medium med and registers the energy
// sinks on board b.
func New(k *kernel.Kernel, med *medium.Medium, b *power.Board, cfg Config) *Radio {
	if cfg.TxPower == 0 {
		cfg.TxPower = power.RadioTx0dBm
	}
	r := &Radio{k: k, med: med, cfg: cfg}
	trk := k.Trk
	r.psReg = core.NewPowerStateVar(trk, power.ResRadioReg, power.RadioRegOff)
	r.psCtl = core.NewPowerStateVar(trk, power.ResRadioCtl, power.RadioCtlOff)
	r.psRx = core.NewPowerStateVar(trk, power.ResRadioRx, power.RadioRxOff)
	r.psTx = core.NewPowerStateVar(trk, power.ResRadioTx, power.RadioTxOff)
	r.TxAct = core.NewSingleActivityDevice(trk, power.ResRadioTx)
	r.RxAct = core.NewMultiActivityDevice(trk, power.ResRadioRx)
	r.rxProxy = k.NewIRQ("pxy_RX")
	r.spiIRQ = k.NewIRQ("int_UART0RX")
	r.dmaIRQ = k.NewIRQ("int_DACDMA")
	r.txSfdIRQ = k.NewIRQ("int_TIMERB1")
	r.ctlIRQ = k.NewIRQ("int_RADIO")
	b.AddSink(power.ResRadioReg, power.RadioRegOff)
	b.AddSink(power.ResRadioCtl, power.RadioCtlOff)
	b.AddSink(power.ResRadioRx, power.RadioRxOff)
	b.AddSink(power.ResRadioTx, power.RadioTxOff)
	r.sfdFn = func() {
		r.k.Spend(45) // note SFD timestamp, prime the driver state machine
	}
	r.rxEndFn = func(arg any) {
		f := arg.(*medium.Frame)
		if !r.listening {
			return // receiver shut off mid-frame; frame lost
		}
		if !r.med.Delivered(f, r.k.Node()) {
			return // corrupted by a colliding transmission (spatial medium)
		}
		r.drainRXFIFO(f)
	}
	r.startupFn = func() {
		// The driver stored the initiating activity; the startup interrupt
		// binds its proxy time to it.
		r.k.CPUAct.Bind(r.startupLabel)
		r.psCtl.Set(power.RadioCtlIdle)
		r.on = true
		r.k.Spend(40)
		if done := r.startupDone; done != nil {
			r.startupDone = nil
			r.k.Post(done)
		}
	}
	med.Register(r)
	return r
}

// Node implements medium.Receiver.
func (r *Radio) Node() core.NodeID { return r.k.Node() }

// OnReceive installs the link-layer receive callback, invoked in task
// context after the frame has been drained from the RXFIFO and before any
// activity binding (the Active Message layer does the binding).
func (r *Radio) OnReceive(fn func(*medium.Frame)) { r.receive = fn }

// Channel returns the configured 802.15.4 channel.
func (r *Radio) Channel() int { return r.cfg.Channel }

// SetChannel retunes the radio; allowed only while off.
func (r *Radio) SetChannel(ch int) {
	if r.on {
		panic("radio: channel change while on")
	}
	r.cfg.Channel = ch
}

// On reports whether the regulator and oscillator are up.
func (r *Radio) On() bool { return r.on }

// Busy reports whether a transmission is in progress (FIFO load, backoff,
// or on the air). Send panics if called while busy; link layers that want
// to drop or queue under load check this first.
func (r *Radio) Busy() bool { return r.sending }

// CCAStats returns how many clear-channel checks ran and how many reported
// energy on the channel.
func (r *Radio) CCAStats() (samples, positives uint64) {
	return r.ccaSamples, r.ccaPositives
}

// TurnOn powers the regulator and oscillator; done runs (under the caller's
// activity) once the radio reaches its idle state. Must be called from
// handler context.
func (r *Radio) TurnOn(done func()) {
	if r.on {
		if done != nil {
			r.k.Post(done)
		}
		return
	}
	r.startupLabel = r.k.CPUAct.Get()
	r.startupDone = done
	r.psReg.Set(power.RadioRegOn)
	r.k.Spend(30)
	r.ctlIRQ.RaiseAfter(StartupTime, r.startupFn)
}

// ForceOff models a brownout: the transceiver loses power without any driver
// involvement. Unlike TurnOff it charges no CPU work and produces no log
// entries — the caller (the mote's death path) disables the tracker first and
// the board stops supplying current, so the power-state variables are left
// where they were, exactly like a real supply collapse freezes the last
// logged state. Frames in the air are lost (the listening flag is cleared).
func (r *Radio) ForceOff() {
	// The node is dying: its kernel is being killed, so a pending backoff
	// interrupt will never run its handler (dispatchIRQ drops interrupts on a
	// dead CPU) and nobody else would release the transmit pledge. Leaving it
	// armed would pin the partition scheduler's horizon forever.
	r.k.Sim.Unpledge(&r.txPledge)
	r.on = false
	r.listening = false
	r.sending = false
}

// TurnOff drops the radio to its lowest-power state immediately.
func (r *Radio) TurnOff() {
	if r.listening {
		r.StopListening()
	}
	r.psTx.Set(power.RadioTxOff)
	r.psCtl.Set(power.RadioCtlOff)
	r.psReg.Set(power.RadioRegOff)
	r.on = false
	r.k.Spend(25)
}

// StartListening enables the receive path on behalf of the CPU's current
// activity.
func (r *Radio) StartListening() {
	if !r.on {
		panic("radio: listen while off")
	}
	if r.listening {
		return
	}
	r.listening = true
	r.listenLbl = r.k.CPUAct.Get()
	if !r.RxAct.Has(r.listenLbl) {
		_ = r.RxAct.Add(r.listenLbl)
	}
	r.psRx.Set(power.RadioRxListen)
	r.k.Spend(20)
}

// StopListening disables the receive path.
func (r *Radio) StopListening() {
	if !r.listening {
		return
	}
	r.listening = false
	r.psRx.Set(power.RadioRxOff)
	if r.RxAct.Has(r.listenLbl) {
		_ = r.RxAct.Remove(r.listenLbl)
	}
	r.k.Spend(20)
}

// SampleCCA performs one clear-channel assessment: the receive path runs for
// CCASampleTime and the RSSI is compared against the threshold. It reports
// true if energy was detected. Must be called with the radio on, from
// handler context; the receiver is left in its prior state.
func (r *Radio) SampleCCA() bool {
	if !r.on {
		panic("radio: CCA while off")
	}
	wasListening := r.listening
	if !wasListening {
		r.psRx.Set(power.RadioRxListen)
	}
	r.k.Spend(units.Cycles(CCASampleTime))
	// Position-aware under the spatial link layer (only audible
	// transmitters count); identical to the global query otherwise.
	busy := r.med.EnergyOnAt(r.k.Node(), r.cfg.Channel, r.k.NowTicks()) > CCAThreshold
	if !wasListening {
		r.psRx.Set(power.RadioRxOff)
	}
	r.ccaSamples++
	if busy {
		r.ccaPositives++
	}
	return busy
}

// Send transmits a frame: FIFO load (interrupt-driven or DMA), CSMA backoff,
// on-air transmission, then done (posted under the sending activity). The
// frame's airtime is computed from its length.
func (r *Radio) Send(f *medium.Frame, done func()) {
	if !r.on {
		panic("radio: send while off")
	}
	if r.sending {
		panic("radio: concurrent send")
	}
	r.sending = true
	f.Channel = r.cfg.Channel
	f.Src = r.k.Node()
	f.Airtime = units.Ticks(f.Bytes+PreambleBytes) * ByteAirtime

	// loadTXFIFO: paint the radio with the CPU's current activity
	// (Figure 8), then move the bytes over the bus.
	label := r.k.CPUAct.Get()
	r.TxAct.Set(label)
	r.k.Spend(60) // packet preparation
	r.transferToFIFO(f.Bytes, label, func() {
		r.backoffAndTransmit(f, label, done)
	})
}

// transferToFIFO models the CPU-to-radio bus transfer of n bytes and then
// calls next in interrupt context bound to label.
func (r *Radio) transferToFIFO(n int, label core.Label, next func()) {
	if r.cfg.UseDMA {
		r.k.Spend(DMASetupCost)
		total := units.Ticks(n) * SPIByteTime
		r.dmaIRQ.RaiseAfter(total, func() {
			r.k.CPUAct.Bind(label)
			r.k.Spend(DMAHandlerCost)
			next()
		})
		return
	}
	chunks := (n + SPIChunkBytes - 1) / SPIChunkBytes
	// One handler closure serves every chunk of the transfer: it advances a
	// captured counter and re-arms itself, instead of allocating a fresh
	// closure pair per 2-byte chunk.
	i := 0
	var step func()
	step = func() {
		r.k.Spend(SPIHandlerCost)
		i++
		if i < chunks {
			r.spiIRQ.RaiseAfter(units.Ticks(SPIChunkBytes)*SPIByteTime, step)
			return
		}
		r.k.CPUAct.Bind(label)
		next()
	}
	r.spiIRQ.RaiseAfter(units.Ticks(SPIChunkBytes)*SPIByteTime, step)
}

func (r *Radio) backoffAndTransmit(f *medium.Frame, label core.Label, done func()) {
	backoff := BackoffMin + r.k.RNG().Ticks(BackoffSpan)
	// Pledge the medium touch before scheduling it: backoff >= BackoffMin is
	// exactly the lookahead the partition scheduler assumes, and the expiry
	// handler below is the only place this node reaches the shared medium. If
	// a busy CPU defers the interrupt past the pledged instant, the pledge
	// simply stays armed — the affected span runs serially — until the
	// handler finally executes and releases it.
	r.k.Sim.Pledge(&r.txPledge, r.k.Sim.Now()+backoff)
	r.ctlIRQ.RaiseAfter(backoff, func() {
		r.k.Sim.Unpledge(&r.txPledge)
		r.k.CPUAct.Bind(label)
		r.k.Spend(30)
		// The receiver shuts off for the duration of the transmission.
		wasListening := r.listening
		if wasListening {
			r.psRx.Set(power.RadioRxOff)
		}
		r.psTx.Set(r.cfg.TxPower)
		r.med.Transmit(f)
		// SFD capture interrupt shortly after the preamble leaves.
		r.txSfdIRQ.RaiseAfter(units.Ticks(PreambleBytes)*ByteAirtime, func() {
			r.k.Spend(35)
		})
		// Transmit-done control interrupt.
		r.ctlIRQ.RaiseAfter(f.Airtime, func() {
			r.k.CPUAct.Bind(label)
			r.psTx.Set(power.RadioTxOff)
			if wasListening {
				r.psRx.Set(power.RadioRxListen)
			}
			r.TxAct.SetIdle()
			r.sending = false
			r.k.Spend(40)
			if done != nil {
				r.k.Post(done)
			}
		})
	})
}

// FrameStart implements medium.Receiver: hardware noticed a frame beginning
// on the air. If the receive path is listening on the right channel, the SFD
// interrupt fires (under the pxy_RX proxy), the frame fills the RXFIFO for
// its airtime, and the driver then drains the FIFO over the bus and hands
// the frame up in task context. The return value tells the medium whether
// the receiver synced (false: off/busy/wrong channel — a MAC-level miss).
func (r *Radio) FrameStart(f *medium.Frame) bool {
	if !r.listening || r.sending || f.Channel != r.cfg.Channel {
		return false
	}
	now := r.k.Sim.Now()
	// Start-of-frame delimiter interrupt.
	r.rxProxy.Raise(now, r.sfdFn)
	// Frame lands in the RXFIFO when its last bit arrives; then the drain
	// begins. The drain runs under the bus proxy; Active Messages binds
	// everything once it decodes the activity field.
	r.k.Sim.ScheduleArg(now+f.Airtime, sim.PrioHardware, r.rxEndFn, f)
	return true
}

func (r *Radio) drainRXFIFO(f *medium.Frame) {
	deliver := func() {
		if r.receive != nil {
			r.receive(f)
		}
	}
	if r.cfg.UseDMA {
		// The driver pre-armed the DMA channel when it enabled reception,
		// so no CPU work happens until the transfer-complete interrupt.
		total := units.Ticks(f.Bytes) * SPIByteTime
		r.dmaIRQ.RaiseAfter(total, func() {
			r.k.Spend(DMAHandlerCost)
			r.k.Post(deliver)
		})
		return
	}
	chunks := (f.Bytes + SPIChunkBytes - 1) / SPIChunkBytes
	// Single self-re-arming handler, as in transferToFIFO.
	i := 0
	var step func()
	step = func() {
		r.k.Spend(SPIHandlerCost)
		i++
		if i < chunks {
			r.spiIRQ.RaiseAfter(units.Ticks(SPIChunkBytes)*SPIByteTime, step)
			return
		}
		// Last chunk: hand the packet to the link layer as a task. The
		// task inherits the bus proxy label; the AM layer will bind it
		// to the packet's activity.
		r.k.Post(deliver)
	}
	r.spiIRQ.RaiseAfter(units.Ticks(SPIChunkBytes)*SPIByteTime, step)
}
