package leds_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

func TestLEDPowerStatesLogged(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	n.K.Boot(func() {
		n.LEDs.On(0)
		n.LEDs.Off(0)
	})
	w.Run(units.Second)
	var states []core.PowerState
	for _, e := range n.Log.Entries {
		if e.Type == core.EntryPowerState && e.Res == power.ResLED0 {
			states = append(states, e.State())
		}
	}
	// Initial off, on, off.
	if len(states) != 3 || states[0] != power.StateOff || states[1] != power.StateOn || states[2] != power.StateOff {
		t.Errorf("states = %v", states)
	}
}

func TestLEDPaintedWithCPUActivity(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	act := n.K.DefineActivity("Red")
	var during, after core.Label
	n.K.Boot(func() {
		n.K.CPUAct.Set(act)
		n.LEDs.On(1)
		during = ledLabel(n, power.ResLED1)
		n.LEDs.Off(1)
		after = ledLabel(n, power.ResLED1)
		n.K.CPUAct.SetIdle()
	})
	w.Run(units.Second)
	if during != act {
		t.Errorf("LED activity while on = %v, want %v", during, act)
	}
	if !after.IsIdle() {
		t.Errorf("LED activity after off = %v, want idle", after)
	}
}

// ledLabel reads the most recent activity entry for a resource.
func ledLabel(n *mote.Node, res core.ResourceID) core.Label {
	var l core.Label
	for _, e := range n.Log.Entries {
		if (e.Type == core.EntryActivitySet || e.Type == core.EntryActivityBind) && e.Res == res {
			l = core.Label(e.Val)
		}
	}
	return l
}

func TestLEDIdempotentOnOff(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	n.K.Boot(func() {
		n.LEDs.On(2)
		n.LEDs.On(2) // no-op
		n.LEDs.Off(2)
		n.LEDs.Off(2) // no-op
	})
	w.Run(units.Second)
	count := 0
	for _, e := range n.Log.Entries {
		if e.Type == core.EntryPowerState && e.Res == power.ResLED2 {
			count++
		}
	}
	if count != 3 { // initial + on + off
		t.Errorf("power-state entries = %d, want 3", count)
	}
}

func TestLEDCurrentDraw(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	n.K.Boot(func() { n.LEDs.On(0) })
	w.Run(2 * units.Second)
	w.StampEnd()
	// LED0 calibrated draw is 2.505 mA on top of the idle floor.
	idle := power.BaselineMicroAmps + power.CalibratedDraws().Draw(power.ResFlash, power.FlashPowerDown)
	want := float64(units.Energy(idle+2505, n.Volts, 2*units.Second))
	got := n.Meter.EnergyMicroJoules()
	if diff := got - want; diff < -100 || diff > 100 {
		t.Errorf("energy = %.1f uJ, want ~%.1f", got, want)
	}
	if state := n.Board.State(power.ResLED0); state != power.StateOn {
		t.Errorf("board state = %v", state)
	}
	if !n.LEDs.IsOn(0) {
		t.Error("IsOn(0) = false")
	}
}

func TestLEDToggleAndSet(t *testing.T) {
	w, n := mote.NewSingleNode(1)
	n.K.Boot(func() {
		n.LEDs.Toggle(0)
		if !n.LEDs.IsOn(0) {
			t.Error("toggle should turn on")
		}
		n.LEDs.Toggle(0)
		if n.LEDs.IsOn(0) {
			t.Error("toggle should turn off")
		}
		n.LEDs.Set(1, true)
		n.LEDs.Set(1, false)
		if n.LEDs.IsOn(1) {
			t.Error("Set(false) failed")
		}
	})
	w.Run(units.Second)
}
