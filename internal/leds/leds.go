// Package leds is the instrumented LED driver. It is the paper's canonical
// example of a simple device (Figure 2): the driver intercepts on/off calls,
// signals the power state through the PowerState interface, and paints the
// LED with the CPU's current activity while it is lit.
package leds

import (
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/power"
)

// Count is the number of LEDs on the platform (red, green, blue).
const Count = 3

// LEDs drives the three platform LEDs.
type LEDs struct {
	k   *kernel.Kernel
	ps  [Count]*core.PowerStateVar
	act [Count]*core.SingleActivityDevice
	on  [Count]bool
}

var resources = [Count]core.ResourceID{power.ResLED0, power.ResLED1, power.ResLED2}

// New registers the LED sinks on the board and returns the driver.
func New(k *kernel.Kernel, b *power.Board) *LEDs {
	l := &LEDs{k: k}
	for i := 0; i < Count; i++ {
		l.ps[i] = core.NewPowerStateVar(k.Trk, resources[i], power.StateOff)
		l.act[i] = core.NewSingleActivityDevice(k.Trk, resources[i])
		b.AddSink(resources[i], power.StateOff)
	}
	return l
}

// On lights LED i on behalf of the CPU's current activity.
func (l *LEDs) On(i int) {
	if l.on[i] {
		return
	}
	l.on[i] = true
	// As in Figure 2: signal the power state change, then set the pin.
	l.act[i].Set(l.k.CPUAct.Get())
	l.ps[i].Set(power.StateOn)
	l.k.Spend(8)
}

// Off extinguishes LED i and returns it to the idle activity.
func (l *LEDs) Off(i int) {
	if !l.on[i] {
		return
	}
	l.on[i] = false
	l.ps[i].Set(power.StateOff)
	l.act[i].SetIdle()
	l.k.Spend(8)
}

// Toggle flips LED i.
func (l *LEDs) Toggle(i int) {
	if l.on[i] {
		l.Off(i)
	} else {
		l.On(i)
	}
}

// IsOn reports the state of LED i.
func (l *LEDs) IsOn(i int) bool { return l.on[i] }

// Set drives LED i to the given state.
func (l *LEDs) Set(i int, on bool) {
	if on {
		l.On(i)
	} else {
		l.Off(i)
	}
}
