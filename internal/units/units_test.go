package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTickConversions(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d ticks, want 1e6", int64(Second))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("Seconds: got %v", (2 * Second).Seconds())
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Errorf("Millis: got %v", (1500 * Microsecond).Millis())
	}
	if FromSeconds(0.25) != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v", FromSeconds(0.25))
	}
	if (42 * Microsecond).Micros() != 42 {
		t.Errorf("Micros: got %v", (42 * Microsecond).Micros())
	}
}

func TestTicksString(t *testing.T) {
	cases := map[Ticks]string{
		3 * Second:         "3s",
		1500:               "1.500ms",
		42:                 "42us",
		2500 * Millisecond: "2500.000ms",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestCyclesDuration(t *testing.T) {
	// At 1 MHz, one cycle is one microsecond.
	if Cycles(102).Duration() != 102*Microsecond {
		t.Errorf("102 cycles = %v", Cycles(102).Duration())
	}
}

func TestEnergyKnownValues(t *testing.T) {
	// 1 mA at 3 V for 1 s = 3 mJ = 3000 uJ.
	e := Energy(1000, 3.0, Second)
	if math.Abs(float64(e)-3000) > 1e-9 {
		t.Errorf("Energy(1mA, 3V, 1s) = %v uJ, want 3000", e)
	}
	// The iCount quantum: 8.33 uJ at 3 V corresponds to 2.777 uC.
	e = Energy(2777, 3.0, Millisecond)
	if math.Abs(float64(e)-8.331) > 0.01 {
		t.Errorf("Energy(2.777mA, 3V, 1ms) = %v uJ, want ~8.33", e)
	}
}

func TestPowerKnownValues(t *testing.T) {
	// 18.46 mA at 3.35 V = 61.8 mW (the paper's radio listen draw).
	p := Power(18460, 3.35)
	if math.Abs(float64(p)-61.84) > 0.1 {
		t.Errorf("Power(18.46mA, 3.35V) = %v mW, want ~61.8", p)
	}
}

func TestAveragePower(t *testing.T) {
	if p := AveragePower(3000, Second); math.Abs(float64(p)-3.0) > 1e-9 {
		t.Errorf("AveragePower(3000uJ, 1s) = %v mW, want 3", p)
	}
	if p := AveragePower(100, 0); p != 0 {
		t.Errorf("AveragePower over empty interval = %v, want 0", p)
	}
}

func TestCurrentFromPowerInvertsPower(t *testing.T) {
	f := func(ua uint16, dv uint8) bool {
		i := MicroAmps(ua)
		v := Volts(2.0 + float64(dv%20)/10) // 2.0 .. 3.9 V
		p := Power(i, v)
		back := CurrentFromPower(p, v)
		return math.Abs(float64(back-i)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if CurrentFromPower(10, 0) != 0 {
		t.Error("CurrentFromPower at 0 V should be 0")
	}
}

func TestEnergyLinearInTime(t *testing.T) {
	f := func(ua uint16, ms uint8) bool {
		i := MicroAmps(ua)
		dt := Ticks(ms) * Millisecond
		e1 := Energy(i, 3.0, dt)
		e2 := Energy(i, 3.0, 2*dt)
		return math.Abs(float64(e2-2*e1)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMilliHelpers(t *testing.T) {
	if MA(2.5) != 2500 {
		t.Errorf("MA(2.5) = %v", MA(2.5))
	}
	if MicroAmps(2500).MilliAmps() != 2.5 {
		t.Errorf("MilliAmps: got %v", MicroAmps(2500).MilliAmps())
	}
	if MicroJoules(2500).MilliJoules() != 2.5 {
		t.Errorf("MilliJoules: got %v", MicroJoules(2500).MilliJoules())
	}
}
