// Package units defines the physical quantities used throughout the Quanto
// reproduction: simulated time, CPU cycles, electrical current, voltage,
// power, and energy.
//
// The simulation runs with a resolution of one microsecond per tick. The
// microcontroller modeled here (an MSP430F1611-like part) is clocked at
// 1 MHz, so one CPU cycle corresponds to exactly one tick. This matches the
// paper's cost accounting, which reports "102 cycles @ 1MHz" for a log
// operation and treats cycles and microseconds interchangeably.
package units

import "fmt"

// Ticks is a point in, or span of, simulated time measured in microseconds.
type Ticks int64

// Common time spans expressed in ticks.
const (
	Microsecond Ticks = 1
	Millisecond Ticks = 1000 * Microsecond
	Second      Ticks = 1000 * Millisecond
)

// Cycles counts CPU cycles. At the simulated 1 MHz clock one cycle equals
// one microsecond of busy time.
type Cycles uint32

// CPUClockHz is the simulated microcontroller clock rate.
const CPUClockHz = 1_000_000

// Duration converts a cycle count to the simulated time it occupies.
func (c Cycles) Duration() Ticks { return Ticks(c) }

// Seconds converts t to floating-point seconds.
func (t Ticks) Seconds() float64 { return float64(t) / 1e6 }

// Millis converts t to floating-point milliseconds.
func (t Ticks) Millis() float64 { return float64(t) / 1e3 }

// Micros returns t as an integer number of microseconds.
func (t Ticks) Micros() int64 { return int64(t) }

// String formats a tick count using the most natural unit.
func (t Ticks) String() string {
	switch {
	case t >= Second && t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// FromSeconds converts floating-point seconds to ticks, rounding toward zero.
func FromSeconds(s float64) Ticks { return Ticks(s * 1e6) }

// MicroAmps is electrical current in microamperes. Current draws in the
// platform tables (Table 1 of the paper) range from 0.2 uA to ~20 mA, so a
// float64 carries them without loss.
type MicroAmps float64

// MilliAmps converts to milliamperes.
func (i MicroAmps) MilliAmps() float64 { return float64(i) / 1000 }

// MA builds a MicroAmps value from milliamperes, mirroring how the paper's
// tables quote larger draws.
func MA(milliamps float64) MicroAmps { return MicroAmps(milliamps * 1000) }

// Volts is electrical potential in volts.
type Volts float64

// MicroJoules is energy in microjoules. The iCount meter's quantum on the
// HydroWatch platform is 8.33 uJ per pulse at 3 V.
type MicroJoules float64

// MilliJoules converts to millijoules.
func (e MicroJoules) MilliJoules() float64 { return float64(e) / 1000 }

// MilliWatts is power in milliwatts.
type MilliWatts float64

// Energy returns the energy dissipated by a constant current i at voltage v
// flowing for dt of simulated time.
//
//	E = I * V * t  =  (i uA)(v V)(dt us) = i*v*dt pJ = i*v*dt*1e-6 uJ
func Energy(i MicroAmps, v Volts, dt Ticks) MicroJoules {
	return MicroJoules(float64(i) * float64(v) * float64(dt) * 1e-6)
}

// Power returns the instantaneous power of a current i at voltage v.
//
//	P = I * V = (i uA)(v V) = i*v uW = i*v/1000 mW
func Power(i MicroAmps, v Volts) MilliWatts {
	return MilliWatts(float64(i) * float64(v) / 1000)
}

// AveragePower returns e/dt expressed in milliwatts. It reports 0 for an
// empty interval.
func AveragePower(e MicroJoules, dt Ticks) MilliWatts {
	if dt <= 0 {
		return 0
	}
	return MilliWatts(float64(e) / float64(dt) * 1000)
}

// CurrentFromPower inverts Power: the current that dissipates p at voltage v.
func CurrentFromPower(p MilliWatts, v Volts) MicroAmps {
	if v == 0 {
		return 0
	}
	return MicroAmps(float64(p) * 1000 / float64(v))
}
