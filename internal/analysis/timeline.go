package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// TimelineRow is one resource's activity history clipped to a window, ready
// for rendering — the data behind the figures' per-resource color bands.
type TimelineRow struct {
	Res   core.ResourceID
	Name  string
	Spans []TimelineSpan
}

// TimelineSpan is one labeled stretch within a row.
type TimelineSpan struct {
	Start, End int64
	Text       string // rendered label ("1:Blue", "1:int_TIMERB0", "RX")
}

// ActivityRows extracts the activity timeline rows for the given resources
// over [t0, t1), using raw (unresolved) labels as the paper's figures do.
// Idle stretches are omitted.
func (a *Analysis) ActivityRows(resources []core.ResourceID, t0, t1 int64) []TimelineRow {
	var rows []TimelineRow
	for _, res := range resources {
		row := TimelineRow{Res: res, Name: a.Dict.ResourceName(res)}
		if tl := a.Single[res]; tl != nil {
			for _, s := range tl.Segs {
				lo, hi := maxi64(s.Start, t0), mini64(s.End, t1)
				if hi <= lo || s.Label.IsIdle() {
					continue
				}
				row.Spans = append(row.Spans, TimelineSpan{lo, hi, a.Dict.LabelName(s.Label)})
			}
		}
		if mt := a.Multi[res]; mt != nil {
			for _, s := range mt.Segs {
				lo, hi := maxi64(s.Start, t0), mini64(s.End, t1)
				if hi <= lo || len(s.Labels) == 0 {
					continue
				}
				names := make([]string, len(s.Labels))
				for i, l := range s.Labels {
					names[i] = a.Dict.LabelName(l)
				}
				row.Spans = append(row.Spans, TimelineSpan{lo, hi, strings.Join(names, "+")})
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// StateRows extracts power-state timeline rows (non-baseline states only).
func (a *Analysis) StateRows(resources []core.ResourceID, t0, t1 int64, stateName func(core.ResourceID, core.PowerState) string) []TimelineRow {
	var rows []TimelineRow
	for _, res := range resources {
		row := TimelineRow{Res: res, Name: a.Dict.ResourceName(res)}
		for _, s := range a.States[res] {
			lo, hi := maxi64(s.Start, t0), mini64(s.End, t1)
			if hi <= lo || s.State == 0 {
				continue
			}
			row.Spans = append(row.Spans, TimelineSpan{lo, hi, stateName(res, s.State)})
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderGantt draws rows as an ASCII gantt chart of the given width — the
// textual equivalent of the activity band plots in Figures 11, 12, 15
// and 16. Each distinct span label gets a letter; the legend maps letters
// back to labels.
func RenderGantt(rows []TimelineRow, t0, t1 int64, width int) string {
	if width <= 0 {
		width = 100
	}
	if t1 <= t0 {
		return ""
	}
	letters := make(map[string]byte)
	var legend []string
	letterFor := func(text string) byte {
		if b, ok := letters[text]; ok {
			return b
		}
		b := byte('A' + len(letters)%26)
		if len(letters) >= 26 {
			b = byte('a' + (len(letters)-26)%26)
		}
		letters[text] = b
		legend = append(legend, fmt.Sprintf("  %c = %s", b, text))
		return b
	}

	var sb strings.Builder
	scale := float64(width) / float64(t1-t0)
	nameW := 0
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	for _, r := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, s := range r.Spans {
			lo := int(float64(s.Start-t0) * scale)
			hi := int(float64(s.End-t0) * scale)
			if hi == lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			ch := letterFor(s.Text)
			for i := lo; i < hi && i >= 0; i++ {
				line[i] = ch
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", nameW, r.Name, line)
	}
	sort.Strings(legend)
	sb.WriteString(strings.Join(legend, "\n"))
	sb.WriteByte('\n')
	return sb.String()
}

// SpansCSV renders rows as "resource,start_us,end_us,label" lines, the
// machine-readable form of the figure data.
func SpansCSV(rows []TimelineRow) string {
	var sb strings.Builder
	sb.WriteString("resource,start_us,end_us,label\n")
	for _, r := range rows {
		for _, s := range r.Spans {
			fmt.Fprintf(&sb, "%s,%d,%d,%s\n", r.Name, s.Start, s.End, s.Text)
		}
	}
	return sb.String()
}
