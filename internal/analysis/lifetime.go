package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// NodeLifetime is one battery-powered node's energy-budget outcome in one
// run: whether it died, how long it lived (censored at the run duration for
// survivors), and the charge margin left at the end.
type NodeLifetime struct {
	Node       int
	Died       bool
	LifetimeUS int64
	MarginFrac float64
}

// lifetimeNodeStats folds one node's samples across the replicas of a group.
type lifetimeNodeStats struct {
	deaths   int
	lifetime RunningStat // microseconds, censored for survivors
	margin   RunningStat // fraction of capacity left
}

// lifetimeGroup holds one configuration's per-node statistics.
type lifetimeGroup struct {
	key   string
	runs  int
	nodes map[int]*lifetimeNodeStats
}

// LifetimeReport folds NodeLifetime samples across runs into per-group,
// per-node statistics: death rate, mean time-to-death with a CI95
// half-width, and mean energy margin. Groups (one per swept configuration)
// keep insertion order, so a report built from a deterministic run sequence
// renders deterministically — the same contract as Aggregate.
//
// Survivor lifetimes are censored at the run duration; DeathRate tells how
// much of the mean is censoring. The per-metric statistics reuse
// RunningStat, so the CI95 here is exactly the one the sweep aggregate
// reports for the matching "lifetime_us:nodeN" metric.
type LifetimeReport struct {
	order  []string
	groups map[string]*lifetimeGroup
}

// NewLifetimeReport returns an empty report.
func NewLifetimeReport() *LifetimeReport {
	return &LifetimeReport{groups: make(map[string]*lifetimeGroup)}
}

// Add folds one run's node outcomes into the named group (for sweeps, the
// spec's ConfigKey). Runs without battery nodes contribute nothing.
func (lr *LifetimeReport) Add(group string, nodes []NodeLifetime) {
	if len(nodes) == 0 {
		return
	}
	g := lr.groups[group]
	if g == nil {
		g = &lifetimeGroup{key: group, nodes: make(map[int]*lifetimeNodeStats)}
		lr.groups[group] = g
		lr.order = append(lr.order, group)
	}
	g.runs++
	for _, n := range nodes {
		st := g.nodes[n.Node]
		if st == nil {
			st = &lifetimeNodeStats{}
			g.nodes[n.Node] = st
		}
		if n.Died {
			st.deaths++
		}
		st.lifetime.Add(float64(n.LifetimeUS))
		st.margin.Add(n.MarginFrac)
	}
}

// Empty reports whether no battery outcomes were folded in.
func (lr *LifetimeReport) Empty() bool { return len(lr.order) == 0 }

// lifetimeNodeJSON is the serialized per-node view.
type lifetimeNodeJSON struct {
	Node           int     `json:"node"`
	Runs           int     `json:"runs"`
	Deaths         int     `json:"deaths"`
	DeathRate      float64 `json:"death_rate"`
	MeanLifetimeUS float64 `json:"mean_lifetime_us"`
	CI95LifetimeUS float64 `json:"ci95_lifetime_us"`
	MinLifetimeUS  float64 `json:"min_lifetime_us"`
	MaxLifetimeUS  float64 `json:"max_lifetime_us"`
	MeanMarginFrac float64 `json:"mean_margin_frac"`
}

func (g *lifetimeGroup) nodeIDs() []int {
	ids := make([]int, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (g *lifetimeGroup) nodeJSON(id int) lifetimeNodeJSON {
	st := g.nodes[id]
	return lifetimeNodeJSON{
		Node:           id,
		Runs:           st.lifetime.N(),
		Deaths:         st.deaths,
		DeathRate:      float64(st.deaths) / float64(st.lifetime.N()),
		MeanLifetimeUS: st.lifetime.Mean(),
		CI95LifetimeUS: st.lifetime.CI95(),
		MinLifetimeUS:  st.lifetime.Min(),
		MaxLifetimeUS:  st.lifetime.Max(),
		MeanMarginFrac: st.margin.Mean(),
	}
}

// MarshalJSON renders the report deterministically: groups in insertion
// order, nodes sorted by id.
func (lr *LifetimeReport) MarshalJSON() ([]byte, error) {
	type groupJSON struct {
		Key   string             `json:"key"`
		Runs  int                `json:"runs"`
		Nodes []lifetimeNodeJSON `json:"nodes"`
	}
	out := struct {
		Groups []groupJSON `json:"groups"`
	}{Groups: make([]groupJSON, 0, len(lr.order))}
	for _, key := range lr.order {
		g := lr.groups[key]
		gj := groupJSON{Key: key, Runs: g.runs}
		for _, id := range g.nodeIDs() {
			gj.Nodes = append(gj.Nodes, g.nodeJSON(id))
		}
		out.Groups = append(out.Groups, gj)
	}
	return json.Marshal(out)
}

// Render returns the human-readable lifetime table: one block per
// configuration, one row per node with deaths, mean lifetime ± CI95 in
// seconds, and mean margin.
func (lr *LifetimeReport) Render() string {
	var sb strings.Builder
	for _, key := range lr.order {
		g := lr.groups[key]
		fmt.Fprintf(&sb, "%s  (n=%d)\n", key, g.runs)
		fmt.Fprintf(&sb, "  %-6s %8s %14s %12s %10s\n",
			"node", "deaths", "lifetime [s]", "ci95 [s]", "margin")
		for _, id := range g.nodeIDs() {
			nj := g.nodeJSON(id)
			fmt.Fprintf(&sb, "  %-6d %3d/%-4d %14.3f %12.3f %9.1f%%\n",
				nj.Node, nj.Deaths, nj.Runs,
				nj.MeanLifetimeUS/1e6, nj.CI95LifetimeUS/1e6,
				nj.MeanMarginFrac*100)
		}
	}
	return sb.String()
}
