package analysis

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRunningStat(t *testing.T) {
	var s RunningStat
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Sample stddev of the classic example: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	// 8 samples: Student-t with 7 degrees of freedom, not z=1.96.
	wantCI := 2.365 * want / math.Sqrt(8)
	if math.Abs(s.CI95()-wantCI) > 1e-12 {
		t.Errorf("ci95 = %g, want %g", s.CI95(), wantCI)
	}
}

func TestTCrit95(t *testing.T) {
	// Exact table values at the replication counts sweeps actually use.
	for _, tc := range []struct {
		df   int
		want float64
	}{{1, 12.706}, {2, 4.303}, {7, 2.365}, {30, 2.042}} {
		if got := tCrit95(tc.df); got != tc.want {
			t.Errorf("tCrit95(%d) = %g, want %g", tc.df, got, tc.want)
		}
	}
	// Beyond the table: monotonically decreasing onto the z asymptote.
	prev := tCrit95(30)
	for df := 31; df <= 1000; df += 7 {
		got := tCrit95(df)
		if got >= prev || got <= 1.96 {
			t.Fatalf("tCrit95(%d) = %g not in (1.96, %g)", df, got, prev)
		}
		prev = got
	}
	if got := tCrit95(1 << 20); math.Abs(got-1.96) > 1e-4 {
		t.Errorf("asymptote = %g, want ~1.96", got)
	}
	if tCrit95(0) != 0 {
		t.Error("df=0 must degenerate to 0")
	}
}

func TestRunningStatDegenerate(t *testing.T) {
	var s RunningStat
	if s.Std() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Error("zero-value stat not degenerate")
	}
	s.Add(3)
	if s.Std() != 0 || s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample stat wrong")
	}
}

func TestAggregateGroups(t *testing.T) {
	ag := NewAggregate()
	ag.Add("b", map[string]float64{"x": 1, "y": 10})
	ag.Add("a", map[string]float64{"x": 5})
	ag.Add("b", map[string]float64{"x": 3, "y": 20})

	groups := ag.Groups()
	if len(groups) != 2 || groups[0].Key != "b" || groups[1].Key != "a" {
		t.Fatalf("groups out of insertion order: %+v", groups)
	}
	gb := ag.Group("b")
	if gb.N != 2 {
		t.Errorf("group b n = %d", gb.N)
	}
	if got := gb.Stat("x").Mean(); got != 2 {
		t.Errorf("b.x mean = %g", got)
	}
	if got := gb.Stat("y").Std(); math.Abs(got-math.Sqrt(50)) > 1e-12 {
		t.Errorf("b.y std = %g", got)
	}
	if metrics := gb.Metrics(); len(metrics) != 2 || metrics[0] != "x" || metrics[1] != "y" {
		t.Errorf("metrics = %v", metrics)
	}
}

func TestAggregateJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		ag := NewAggregate()
		ag.Add("g", map[string]float64{"m1": 1, "m2": 2, "m3": 3})
		ag.Add("g", map[string]float64{"m1": 2, "m2": 3, "m3": 4})
		b, err := json.Marshal(ag)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if string(a) != string(b) {
		t.Fatalf("aggregate JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), `"groups"`) || !strings.Contains(string(a), `"ci95"`) {
		t.Errorf("unexpected shape: %s", a)
	}
}

func TestAggregateRender(t *testing.T) {
	ag := NewAggregate()
	ag.Add("cfg", map[string]float64{"total_uj": 100})
	ag.Add("cfg", map[string]float64{"total_uj": 200})
	out := ag.Render()
	if !strings.Contains(out, "cfg") || !strings.Contains(out, "total_uj") || !strings.Contains(out, "n=2") {
		t.Errorf("render missing content:\n%s", out)
	}
}
