package analysis

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRunningStat(t *testing.T) {
	var s RunningStat
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Sample stddev of the classic example: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	wantCI := 1.96 * want / math.Sqrt(8)
	if math.Abs(s.CI95()-wantCI) > 1e-12 {
		t.Errorf("ci95 = %g, want %g", s.CI95(), wantCI)
	}
}

func TestRunningStatDegenerate(t *testing.T) {
	var s RunningStat
	if s.Std() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Error("zero-value stat not degenerate")
	}
	s.Add(3)
	if s.Std() != 0 || s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample stat wrong")
	}
}

func TestAggregateGroups(t *testing.T) {
	ag := NewAggregate()
	ag.Add("b", map[string]float64{"x": 1, "y": 10})
	ag.Add("a", map[string]float64{"x": 5})
	ag.Add("b", map[string]float64{"x": 3, "y": 20})

	groups := ag.Groups()
	if len(groups) != 2 || groups[0].Key != "b" || groups[1].Key != "a" {
		t.Fatalf("groups out of insertion order: %+v", groups)
	}
	gb := ag.Group("b")
	if gb.N != 2 {
		t.Errorf("group b n = %d", gb.N)
	}
	if got := gb.Stat("x").Mean(); got != 2 {
		t.Errorf("b.x mean = %g", got)
	}
	if got := gb.Stat("y").Std(); math.Abs(got-math.Sqrt(50)) > 1e-12 {
		t.Errorf("b.y std = %g", got)
	}
	if metrics := gb.Metrics(); len(metrics) != 2 || metrics[0] != "x" || metrics[1] != "y" {
		t.Errorf("metrics = %v", metrics)
	}
}

func TestAggregateJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		ag := NewAggregate()
		ag.Add("g", map[string]float64{"m1": 1, "m2": 2, "m3": 3})
		ag.Add("g", map[string]float64{"m1": 2, "m2": 3, "m3": 4})
		b, err := json.Marshal(ag)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if string(a) != string(b) {
		t.Fatalf("aggregate JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), `"groups"`) || !strings.Contains(string(a), `"ci95"`) {
		t.Errorf("unexpected shape: %s", a)
	}
}

func TestAggregateRender(t *testing.T) {
	ag := NewAggregate()
	ag.Add("cfg", map[string]float64{"total_uj": 100})
	ag.Add("cfg", map[string]float64{"total_uj": 200})
	out := ag.Render()
	if !strings.Contains(out, "cfg") || !strings.Contains(out, "total_uj") || !strings.Contains(out, "n=2") {
		t.Errorf("render missing content:\n%s", out)
	}
}
