package analysis

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/units"
)

// StreamAnalyzer runs the full offline pipeline over an event stream in a
// single pass, without materializing the log: it unwraps timestamps, builds
// state intervals and activity/state timelines incrementally as entries
// arrive, and runs the regression once at Finish. It implements core.Sink
// and core.BatchSink, so it can sit directly behind a Tee on a live tracker
// or consume a decoded trace as it streams off disk. Memory is O(intervals +
// segments), never O(entries) — for a multi-megabyte trace the raw entries
// exist only transiently in the decoder's batch buffer.
type StreamAnalyzer struct {
	node    core.NodeID
	pulseUJ float64
	volts   units.Volts
	dict    *core.Dictionary
	opts    Options

	uw trace.Unwrapper

	count           int
	startUS, endUS  int64
	firstIC, lastIC uint32

	ivb *IntervalBuilder
	tlb *TimelineBuilder
	stb *StateTimelineBuilder
}

// NewStreamAnalyzer creates a single-pass analyzer for one node's stream.
// PulseUJ is the meter's energy quantum and volts the supply voltage.
func NewStreamAnalyzer(node core.NodeID, pulseUJ float64, volts units.Volts, dict *core.Dictionary, opts Options) *StreamAnalyzer {
	return &StreamAnalyzer{
		node:    node,
		pulseUJ: pulseUJ,
		volts:   volts,
		dict:    dict,
		opts:    opts,
		ivb:     NewIntervalBuilder(),
		tlb:     NewTimelineBuilder(dict.IsProxy),
		stb:     NewStateTimelineBuilder(),
	}
}

// Record implements core.Sink: it consumes one event and never rejects it.
func (s *StreamAnalyzer) Record(e core.Entry) bool {
	at := s.uw.At(e.Time)
	if s.count == 0 {
		s.startUS = at
		s.firstIC = e.IC
	}
	s.endUS = at
	s.lastIC = e.IC
	s.count++

	s.ivb.Add(e, at)
	s.tlb.Add(e, at)
	s.stb.Add(e, at)
	return true
}

// RecordBatch implements core.BatchSink.
func (s *StreamAnalyzer) RecordBatch(entries []core.Entry) int {
	for _, e := range entries {
		s.Record(e)
	}
	return len(entries)
}

// Events returns how many entries have been consumed.
func (s *StreamAnalyzer) Events() int { return s.count }

// Finish closes the stream, runs the regression, and returns the completed
// Analysis. The analyzer must not be used afterwards.
func (s *StreamAnalyzer) Finish() (*Analysis, error) {
	if s.count < 2 {
		return nil, fmt.Errorf("analysis: log has %d entries; need at least 2", s.count)
	}
	intervals := s.ivb.Intervals()
	reg, regErr := RunRegression(intervals, s.pulseUJ, s.opts.Regression)
	totalPulses := s.lastIC - s.firstIC // uint32 arithmetic handles wrap
	if regErr != nil {
		// Degrade to a constant-only model so time breakdowns and total
		// energy still work on logs without separable power states.
		constMW := 0.0
		if span := s.endUS - s.startUS; span > 0 {
			constMW = float64(totalPulses) * s.pulseUJ / float64(span) * 1000
		}
		reg = &Regression{
			PowerMW: make(map[Predictor]float64),
			ConstMW: constMW,
		}
	}
	single, multi := s.tlb.Finish(s.endUS)
	states := s.stb.Finish(s.endUS)
	return &Analysis{
		Trace:         &NodeTrace{Node: s.node, PulseUJ: s.pulseUJ, Volts: s.volts},
		Dict:          s.dict,
		Opts:          s.opts,
		StartUS:       s.startUS,
		EndUS:         s.endUS,
		TotalPulses:   totalPulses,
		Intervals:     intervals,
		Reg:           reg,
		RegressionErr: regErr,
		Single:        single,
		Multi:         multi,
		States:        states,
	}, nil
}

// NetworkAnalyzer demultiplexes a merged network-wide stream into per-node
// StreamAnalyzers and aggregates the results into a Network — the streaming
// equivalent of analyzing each node's log separately and calling NewNetwork.
// One pass over the merged stream produces every node's breakdown.
type NetworkAnalyzer struct {
	dict    *core.Dictionary
	opts    Options
	pulseUJ float64
	volts   units.Volts

	nodes map[core.NodeID]*StreamAnalyzer
}

// NewNetworkAnalyzer creates a demultiplexing analyzer. pulseUJ and volts
// apply to every node; use AddNode to override per node before consuming.
func NewNetworkAnalyzer(dict *core.Dictionary, opts Options, pulseUJ float64, volts units.Volts) *NetworkAnalyzer {
	return &NetworkAnalyzer{
		dict:    dict,
		opts:    opts,
		pulseUJ: pulseUJ,
		volts:   volts,
		nodes:   make(map[core.NodeID]*StreamAnalyzer),
	}
}

// AddNode pre-registers a node with its own meter quantum and voltage.
func (na *NetworkAnalyzer) AddNode(node core.NodeID, pulseUJ float64, volts units.Volts) {
	na.nodes[node] = NewStreamAnalyzer(node, pulseUJ, volts, na.dict, na.opts)
}

// Consume routes one stamped entry to its node's analyzer, creating it with
// the default parameters on first sight.
func (na *NetworkAnalyzer) Consume(s trace.Stamped) {
	sa := na.nodes[s.Node]
	if sa == nil {
		sa = NewStreamAnalyzer(s.Node, na.pulseUJ, na.volts, na.dict, na.opts)
		na.nodes[s.Node] = sa
	}
	sa.Record(s.Entry)
}

// ConsumeAll drains a merger into the analyzer.
func (na *NetworkAnalyzer) ConsumeAll(m *trace.Merger) error {
	for {
		s, err := m.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		na.Consume(s)
	}
}

// Finish completes every node's analysis and returns the network aggregate.
func (na *NetworkAnalyzer) Finish() (*Network, error) {
	net := &Network{Nodes: make(map[core.NodeID]*Analysis), Dict: na.dict}
	for node, sa := range na.nodes {
		a, err := sa.Finish()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", node, err)
		}
		net.Nodes[node] = a
	}
	return net, nil
}
