package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
)

// buildActivityEnergyTrace: resource A draws 3 mA over a 0.4 mA baseline;
// activity L1 holds it for 2 s, L2 for 1 s.
func buildActivityEnergyTrace() (*traceBuilder, core.Label, core.Label) {
	b := newTraceBuilder()
	b.draw(resA, 1, 3000)
	b.draw(0, 0, 400)
	b.states[0] = 0
	l1 := core.MkLabel(1, 2)
	l2 := core.MkLabel(1, 3)
	idle := core.MkLabel(1, 0)

	b.ps(resA, 0)
	b.act(core.EntryActivitySet, 0, idle)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(1_000_000)

	b.act(core.EntryActivitySet, resA, l1)
	b.ps(resA, 1)
	b.advance(2_000_000)
	b.ps(resA, 0)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(500_000)

	b.act(core.EntryActivitySet, resA, l2)
	b.ps(resA, 1)
	b.advance(1_000_000)
	b.ps(resA, 0)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(500_000)
	b.marker()
	return b, l1, l2
}

func feed(o *OnlineAccountant, entries []core.Entry) {
	for _, e := range entries {
		o.Record(e)
	}
}

func TestOnlineEnergyMatchesOffline(t *testing.T) {
	b, l1, l2 := buildActivityEnergyTrace()
	tr := b.trace()

	// Offline pass gives the power model and the reference breakdown.
	a, err := Analyze(tr, core.NewDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	offline := a.EnergyByActivity()

	// Online pass, fed the same event stream with the fitted model.
	o := NewOnlineAccountant(1, tr.PulseUJ, a.Reg.PowerMW)
	feed(o, tr.Entries)
	online := o.EnergyUJ()

	for _, l := range []core.Label{l1, l2} {
		if offline[l] <= 0 {
			t.Fatalf("offline attribution for %v is empty", l)
		}
		rel := math.Abs(online[l]-offline[l]) / offline[l]
		if rel > 0.05 {
			t.Errorf("label %v: online %.1f uJ vs offline %.1f uJ (rel %.3f)",
				l, online[l], offline[l], rel)
		}
	}
}

func TestOnlineTotalsConserved(t *testing.T) {
	b, _, _ := buildActivityEnergyTrace()
	tr := b.trace()
	a, err := Analyze(tr, core.NewDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := NewOnlineAccountant(1, tr.PulseUJ, a.Reg.PowerMW)
	feed(o, tr.Entries)
	measured := tr.TotalEnergyUJ()
	if rel := math.Abs(o.TotalUJ()-measured) / measured; rel > 1e-9 {
		t.Errorf("online total %.2f vs measured %.2f", o.TotalUJ(), measured)
	}
}

func TestOnlineTimePerActivity(t *testing.T) {
	b := newTraceBuilder()
	l1 := core.MkLabel(1, 2)
	idle := core.MkLabel(1, 0)
	b.act(core.EntryActivitySet, 0, idle)
	b.advance(1_000_000)
	b.act(core.EntryActivitySet, 0, l1)
	b.advance(3_000_000)
	b.act(core.EntryActivitySet, 0, idle)
	b.advance(1_000_000)
	b.marker()

	o := NewOnlineAccountant(1, 8.33, nil)
	feed(o, b.entries)
	times := o.TimeUS()
	if times[l1] != 3_000_000 {
		t.Errorf("l1 time = %d, want 3s", times[l1])
	}
	if times[idle] != 2_000_000 {
		t.Errorf("idle time = %d, want 2s", times[idle])
	}
}

func TestOnlineWithoutModelKeepsEnergyInBaseline(t *testing.T) {
	b, _, _ := buildActivityEnergyTrace()
	tr := b.trace()
	o := NewOnlineAccountant(1, tr.PulseUJ, nil)
	feed(o, tr.Entries)
	if len(o.EnergyUJ()) != 0 {
		t.Errorf("attributed energy without a model: %v", o.EnergyUJ())
	}
	measured := tr.TotalEnergyUJ()
	if math.Abs(o.BaselineUJ()-measured) > 1e-9 {
		t.Errorf("baseline %.2f, want all measured %.2f", o.BaselineUJ(), measured)
	}
}

func TestOnlineTimeWrapSafe(t *testing.T) {
	// Entries straddling the 32-bit microsecond wrap.
	l1 := core.MkLabel(1, 2)
	entries := []core.Entry{
		{Type: core.EntryActivitySet, Res: 0, Time: 0xFFFF_F000, IC: 0, Val: uint16(l1)},
		{Type: core.EntryMarker, Res: 0, Time: 0x0000_1000, IC: 10, Val: 0},
	}
	o := NewOnlineAccountant(1, 8.33, nil)
	feed(o, entries)
	if got := o.TimeUS()[l1]; got != 0x2000 {
		t.Errorf("wrapped interval = %d us, want %d", got, 0x2000)
	}
}

func TestOnlineTopOrdering(t *testing.T) {
	b, l1, l2 := buildActivityEnergyTrace()
	tr := b.trace()
	a, err := Analyze(tr, core.NewDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dict := core.NewDictionary()
	dict.NameActivity(1, 2, "Heavy")
	dict.NameActivity(1, 3, "Light")
	o := NewOnlineAccountant(1, tr.PulseUJ, a.Reg.PowerMW)
	feed(o, tr.Entries)
	rows := o.Top(dict, 0)
	if len(rows) < 2 {
		t.Fatalf("top rows = %d", len(rows))
	}
	if rows[0].Label != l1 || rows[1].Label != l2 {
		t.Errorf("top order = %v, want l1 (2s) before l2 (1s)", rows)
	}
	if rows[0].Name != "1:Heavy" {
		t.Errorf("top name = %q", rows[0].Name)
	}
	if rows[0].EnergyUJ <= rows[1].EnergyUJ {
		t.Error("top not sorted by energy")
	}
}

func TestOnlineMultiActivitySplit(t *testing.T) {
	b := newTraceBuilder()
	b.draw(resB, 1, 2000)
	b.draw(0, 0, 400)
	b.states[0] = 0
	la, lb := core.MkLabel(1, 2), core.MkLabel(1, 3)
	b.ps(resB, 0)
	b.advance(100_000)
	b.ps(resB, 1)
	b.act(core.EntryActivityAdd, resB, la)
	b.act(core.EntryActivityAdd, resB, lb)
	b.advance(2_000_000)
	b.act(core.EntryActivityRemove, resB, la)
	b.act(core.EntryActivityRemove, resB, lb)
	b.ps(resB, 0)
	b.advance(100_000)
	b.marker()

	model := map[Predictor]float64{{resB, 1}: 6.0} // 2 mA at 3 V
	o := NewOnlineAccountant(1, 8.33, model)
	feed(o, b.entries)
	ea, eb := o.EnergyUJ()[la], o.EnergyUJ()[lb]
	if ea <= 0 || math.Abs(ea-eb) > 1e-9 {
		t.Errorf("equal split violated: %v vs %v", ea, eb)
	}
	// Each activity: ~6 mW * 2 s / 2 = 6000 uJ.
	if math.Abs(ea-6000) > 300 {
		t.Errorf("share = %.1f uJ, want ~6000", ea)
	}
}
