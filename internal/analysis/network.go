package analysis

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Network aggregates per-node analyses into the network-wide view the paper
// motivates: "network-wide, how much energy do network services consume?"
// Because activity labels carry their origin node, summing per-activity
// energy across nodes attributes every joule — wherever it was spent — to
// the activity (and node) that caused it. This is the "butterfly effect"
// tracking of Section 5.3: a local action's network-wide energy footprint.
type Network struct {
	Nodes map[core.NodeID]*Analysis
	Dict  *core.Dictionary
}

// NewNetwork builds the aggregate over per-node analyses.
func NewNetwork(dict *core.Dictionary, nodes ...*Analysis) *Network {
	n := &Network{Nodes: make(map[core.NodeID]*Analysis), Dict: dict}
	for _, a := range nodes {
		n.Nodes[a.Trace.Node] = a
	}
	return n
}

// EnergyByActivity sums each activity's energy across every node in the
// network. Constant-term energy stays per-node (it is unattributable board
// draw) and is reported under ConstLabel.
func (n *Network) EnergyByActivity() map[core.Label]float64 {
	out := make(map[core.Label]float64)
	ids := n.nodeIDs()
	for _, id := range ids {
		for l, uj := range n.Nodes[id].EnergyByActivity() {
			out[l] += uj
		}
	}
	return out
}

// RemoteEnergyUJ returns, for the activity labeled l, how much of its
// network-wide energy was spent on nodes other than its origin — the
// quantity that is invisible to any single-node profiler.
func (n *Network) RemoteEnergyUJ(l core.Label) float64 {
	var total float64
	for _, id := range n.nodeIDs() {
		if id == l.Origin() {
			continue
		}
		total += n.Nodes[id].EnergyByActivity()[l]
	}
	return total
}

// TotalEnergyUJ sums measured energy across all nodes.
func (n *Network) TotalEnergyUJ() float64 {
	var total float64
	for _, id := range n.nodeIDs() {
		total += n.Nodes[id].TotalEnergyUJ()
	}
	return total
}

// NodeShare describes one node's contribution to an activity's footprint.
type NodeShare struct {
	Node     core.NodeID
	EnergyUJ float64
}

// Footprint returns the per-node decomposition of one activity's
// network-wide energy, ordered by node id.
func (n *Network) Footprint(l core.Label) []NodeShare {
	var out []NodeShare
	for _, id := range n.nodeIDs() {
		uj := n.Nodes[id].EnergyByActivity()[l]
		if uj > 0 {
			out = append(out, NodeShare{Node: id, EnergyUJ: uj})
		}
	}
	return out
}

// Report renders the network-wide activity table.
func (n *Network) Report() string {
	byAct := n.EnergyByActivity()
	labels := make([]core.Label, 0, len(byAct))
	for l := range byAct {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return byAct[labels[i]] > byAct[labels[j]] })
	s := fmt.Sprintf("%-22s %12s %12s\n", "Activity", "Total (mJ)", "Remote (mJ)")
	for _, l := range labels {
		name := "Const."
		remote := 0.0
		if l != ConstLabel {
			name = n.Dict.LabelName(l)
			remote = n.RemoteEnergyUJ(l)
		}
		s += fmt.Sprintf("%-22s %12.3f %12.3f\n", name, byAct[l]/1000, remote/1000)
	}
	return s
}

func (n *Network) nodeIDs() []core.NodeID {
	ids := make([]core.NodeID, 0, len(n.Nodes))
	for id := range n.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
