package analysis

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// RunningStat accumulates a stream of samples into mean/variance/extrema
// using Welford's online algorithm: numerically stable, O(1) memory, no
// second pass — the same philosophy as the streaming trace pipeline.
type RunningStat struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample in.
func (s *RunningStat) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *RunningStat) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *RunningStat) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (n-1 denominator; 0 for fewer
// than two samples).
func (s *RunningStat) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean.
func (s *RunningStat) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// Min and Max return the extrema (0 with no samples).
func (s *RunningStat) Min() float64 { return s.min }
func (s *RunningStat) Max() float64 { return s.max }

// statJSON is the serialized form of one statistic.
type statJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// GroupStats holds the per-metric statistics of one configuration group.
type GroupStats struct {
	// Key identifies the group (for scenario sweeps, the spec's canonical
	// configuration JSON).
	Key string
	// N counts the runs folded into the group.
	N     int
	stats map[string]*RunningStat
}

// Stat returns the named metric's statistic, or nil.
func (g *GroupStats) Stat(name string) *RunningStat { return g.stats[name] }

// Metrics lists the group's metric names, sorted.
func (g *GroupStats) Metrics() []string {
	out := make([]string, 0, len(g.stats))
	for k := range g.stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Aggregate folds scalar outputs of many runs into per-group statistics —
// the cross-seed view of a sweep: per-activity mean/stddev energy breakdowns
// in the style of the paper's Tables 2 and 3, now with confidence intervals.
// Groups keep insertion order, so aggregate output over a deterministic run
// sequence is itself deterministic.
type Aggregate struct {
	order  []string
	groups map[string]*GroupStats
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{groups: make(map[string]*GroupStats)}
}

// Add folds one run's scalar values into the named group.
func (ag *Aggregate) Add(group string, values map[string]float64) {
	g := ag.groups[group]
	if g == nil {
		g = &GroupStats{Key: group, stats: make(map[string]*RunningStat)}
		ag.groups[group] = g
		ag.order = append(ag.order, group)
	}
	g.N++
	for name, x := range values {
		st := g.stats[name]
		if st == nil {
			st = &RunningStat{}
			g.stats[name] = st
		}
		st.Add(x)
	}
}

// Groups returns the groups in insertion order.
func (ag *Aggregate) Groups() []*GroupStats {
	out := make([]*GroupStats, 0, len(ag.order))
	for _, k := range ag.order {
		out = append(out, ag.groups[k])
	}
	return out
}

// Group returns the named group, or nil.
func (ag *Aggregate) Group(key string) *GroupStats { return ag.groups[key] }

// MarshalJSON renders the aggregate deterministically: groups in insertion
// order, metrics sorted by name.
func (ag *Aggregate) MarshalJSON() ([]byte, error) {
	type groupJSON struct {
		Key   string              `json:"key"`
		N     int                 `json:"n"`
		Stats map[string]statJSON `json:"stats"`
	}
	out := struct {
		Groups []groupJSON `json:"groups"`
	}{Groups: make([]groupJSON, 0, len(ag.order))}
	for _, g := range ag.Groups() {
		gj := groupJSON{Key: g.Key, N: g.N, Stats: make(map[string]statJSON, len(g.stats))}
		for name, st := range g.stats {
			gj.Stats[name] = statJSON{
				N: st.N(), Mean: st.Mean(), Std: st.Std(),
				CI95: st.CI95(), Min: st.Min(), Max: st.Max(),
			}
		}
		out.Groups = append(out.Groups, gj)
	}
	return json.Marshal(out)
}

// Render returns a human-readable table: one block per group, one row per
// metric with mean ± std [min, max].
func (ag *Aggregate) Render() string {
	var sb strings.Builder
	for _, g := range ag.Groups() {
		fmt.Fprintf(&sb, "%s  (n=%d)\n", g.Key, g.N)
		for _, name := range g.Metrics() {
			st := g.stats[name]
			fmt.Fprintf(&sb, "  %-28s %12.4g ± %-10.4g [%.4g, %.4g]\n",
				name, st.Mean(), st.Std(), st.Min(), st.Max())
		}
	}
	return sb.String()
}
