package analysis

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// RunningStat accumulates a stream of samples into mean/variance/extrema
// using Welford's online algorithm: numerically stable, O(1) memory, no
// second pass — the same philosophy as the streaming trace pipeline.
type RunningStat struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample in.
func (s *RunningStat) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *RunningStat) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *RunningStat) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (n-1 denominator; 0 for fewer
// than two samples).
func (s *RunningStat) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// tTable95 holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom. Sweeps typically replicate a configuration over 3-8
// seeds, squarely in the range where the normal approximation (z=1.96) is
// far too optimistic: t(2)=4.30, more than twice z.
var tTable95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom: exact table values through df=30, then a first-order
// Cornish-Fisher expansion z + (z^3+z)/(4 df) that decays onto the z=1.96
// asymptote (error ~0.003 at df=31, shrinking monotonically from there).
func tCrit95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	const z = 1.96
	return z + (z*z*z+z)/(4*float64(df))
}

// CI95 returns the half-width of the 95% confidence interval on the mean,
// using the Student-t critical value for n-1 degrees of freedom (the sample
// variance is itself an estimate, which matters at the 3-8 seed replication
// counts sweeps actually run).
func (s *RunningStat) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCrit95(s.n-1) * s.Std() / math.Sqrt(float64(s.n))
}

// Min and Max return the extrema (0 with no samples).
func (s *RunningStat) Min() float64 { return s.min }
func (s *RunningStat) Max() float64 { return s.max }

// statJSON is the serialized form of one statistic.
type statJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// GroupStats holds the per-metric statistics of one configuration group.
type GroupStats struct {
	// Key identifies the group (for scenario sweeps, the spec's canonical
	// configuration JSON).
	Key string
	// N counts the runs folded into the group.
	N     int
	stats map[string]*RunningStat
}

// Stat returns the named metric's statistic, or nil.
func (g *GroupStats) Stat(name string) *RunningStat { return g.stats[name] }

// Metrics lists the group's metric names, sorted.
func (g *GroupStats) Metrics() []string {
	out := make([]string, 0, len(g.stats))
	for k := range g.stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Aggregate folds scalar outputs of many runs into per-group statistics —
// the cross-seed view of a sweep: per-activity mean/stddev energy breakdowns
// in the style of the paper's Tables 2 and 3, now with confidence intervals.
// Groups keep insertion order, so aggregate output over a deterministic run
// sequence is itself deterministic.
type Aggregate struct {
	order  []string
	groups map[string]*GroupStats
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{groups: make(map[string]*GroupStats)}
}

// Add folds one run's scalar values into the named group.
func (ag *Aggregate) Add(group string, values map[string]float64) {
	g := ag.groups[group]
	if g == nil {
		g = &GroupStats{Key: group, stats: make(map[string]*RunningStat)}
		ag.groups[group] = g
		ag.order = append(ag.order, group)
	}
	g.N++
	for name, x := range values {
		st := g.stats[name]
		if st == nil {
			st = &RunningStat{}
			g.stats[name] = st
		}
		st.Add(x)
	}
}

// Groups returns the groups in insertion order.
func (ag *Aggregate) Groups() []*GroupStats {
	out := make([]*GroupStats, 0, len(ag.order))
	for _, k := range ag.order {
		out = append(out, ag.groups[k])
	}
	return out
}

// Group returns the named group, or nil.
func (ag *Aggregate) Group(key string) *GroupStats { return ag.groups[key] }

// MarshalJSON renders the aggregate deterministically: groups in insertion
// order, metrics sorted by name.
func (ag *Aggregate) MarshalJSON() ([]byte, error) {
	type groupJSON struct {
		Key   string              `json:"key"`
		N     int                 `json:"n"`
		Stats map[string]statJSON `json:"stats"`
	}
	out := struct {
		Groups []groupJSON `json:"groups"`
	}{Groups: make([]groupJSON, 0, len(ag.order))}
	for _, g := range ag.Groups() {
		gj := groupJSON{Key: g.Key, N: g.N, Stats: make(map[string]statJSON, len(g.stats))}
		for name, st := range g.stats {
			gj.Stats[name] = statJSON{
				N: st.N(), Mean: st.Mean(), Std: st.Std(),
				CI95: st.CI95(), Min: st.Min(), Max: st.Max(),
			}
		}
		out.Groups = append(out.Groups, gj)
	}
	return json.Marshal(out)
}

// Render returns a human-readable table: one block per group, one row per
// metric with mean ± std [min, max].
func (ag *Aggregate) Render() string {
	var sb strings.Builder
	for _, g := range ag.Groups() {
		fmt.Fprintf(&sb, "%s  (n=%d)\n", g.Key, g.N)
		for _, name := range g.Metrics() {
			st := g.stats[name]
			fmt.Fprintf(&sb, "  %-28s %12.4g ± %-10.4g [%.4g, %.4g]\n",
				name, st.Mean(), st.Std(), st.Min(), st.Max())
		}
	}
	return sb.String()
}
