package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestStreamAnalyzerMatchesSliceAnalyze feeds the same log entry-at-a-time
// through the streaming analyzer and checks every derived quantity against
// the slice-based entry point.
func TestStreamAnalyzerMatchesSliceAnalyze(t *testing.T) {
	b := buildTwoSinkTrace()
	tr := b.trace()
	dict := core.NewDictionary()

	want, err := Analyze(tr, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	sa := NewStreamAnalyzer(1, b.pulseUJ, 3.0, dict, DefaultOptions())
	for _, e := range b.entries {
		sa.Record(e)
	}
	got, err := sa.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if got.Span() != want.Span() {
		t.Errorf("Span = %d, want %d", got.Span(), want.Span())
	}
	if got.TotalEnergyUJ() != want.TotalEnergyUJ() {
		t.Errorf("TotalEnergyUJ = %g, want %g", got.TotalEnergyUJ(), want.TotalEnergyUJ())
	}
	if len(got.Intervals) != len(want.Intervals) {
		t.Fatalf("intervals = %d, want %d", len(got.Intervals), len(want.Intervals))
	}
	for p, mw := range want.Reg.PowerMW {
		if math.Abs(got.Reg.PowerMW[p]-mw) > 1e-9 {
			t.Errorf("PowerMW[%v] = %g, want %g", p, got.Reg.PowerMW[p], mw)
		}
	}
	if math.Abs(got.Reg.ConstMW-want.Reg.ConstMW) > 1e-9 {
		t.Errorf("ConstMW = %g, want %g", got.Reg.ConstMW, want.Reg.ConstMW)
	}
	wantEnergy := want.EnergyByActivity()
	for l, uj := range got.EnergyByActivity() {
		if math.Abs(uj-wantEnergy[l]) > 1e-9 {
			t.Errorf("EnergyByActivity[%v] = %g, want %g", l, uj, wantEnergy[l])
		}
	}
}

// TestStreamAnalyzerBatchEqualsSingle checks the two sink paths agree.
func TestStreamAnalyzerBatchEqualsSingle(t *testing.T) {
	b := buildTwoSinkTrace()
	dict := core.NewDictionary()

	one := NewStreamAnalyzer(1, b.pulseUJ, 3.0, dict, DefaultOptions())
	for _, e := range b.entries {
		one.Record(e)
	}
	batch := NewStreamAnalyzer(1, b.pulseUJ, 3.0, dict, DefaultOptions())
	batch.RecordBatch(b.entries)

	ar, err := one.Finish()
	if err != nil {
		t.Fatal(err)
	}
	br, err := batch.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if ar.Span() != br.Span() || ar.TotalEnergyUJ() != br.TotalEnergyUJ() ||
		len(ar.Intervals) != len(br.Intervals) {
		t.Errorf("single and batch paths diverge: span %d/%d energy %g/%g intervals %d/%d",
			ar.Span(), br.Span(), ar.TotalEnergyUJ(), br.TotalEnergyUJ(),
			len(ar.Intervals), len(br.Intervals))
	}
}

func TestStreamAnalyzerTooFewEntries(t *testing.T) {
	sa := NewStreamAnalyzer(1, 8.33, 3.0, core.NewDictionary(), DefaultOptions())
	sa.Record(core.Entry{Type: core.EntryMarker})
	if _, err := sa.Finish(); err == nil {
		t.Error("one entry should not analyze")
	}
}

// TestStreamAnalyzerUnwrapsTimestamps checks the span is computed across a
// 32-bit clock wrap.
func TestStreamAnalyzerUnwrapsTimestamps(t *testing.T) {
	sa := NewStreamAnalyzer(1, 8.33, 3.0, core.NewDictionary(), DefaultOptions())
	sa.Record(core.Entry{Type: core.EntryMarker, Time: 0xFFFF_FF00, IC: 0})
	sa.Record(core.Entry{Type: core.EntryMarker, Time: 0x100, IC: 10})
	a, err := sa.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wantSpan := int64(1<<32+0x100) - int64(0xFFFF_FF00)
	if a.Span() != wantSpan {
		t.Errorf("Span = %d, want %d", a.Span(), wantSpan)
	}
	if a.TotalPulses != 10 {
		t.Errorf("TotalPulses = %d", a.TotalPulses)
	}
}

// TestNetworkAnalyzerMatchesPerNodeAnalyses demuxes a merged two-node
// stream and checks the aggregate equals per-node slice analysis.
func TestNetworkAnalyzerMatchesPerNodeAnalyses(t *testing.T) {
	dict := core.NewDictionary()
	b1 := buildTwoSinkTrace()
	b2 := buildTwoSinkTrace()

	// Per-node slice path.
	a1, err := Analyze(NewNodeTrace(1, b1.entries, b1.pulseUJ, 3.0), dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(NewNodeTrace(2, b2.entries, b2.pulseUJ, 3.0), dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := NewNetwork(dict, a1, a2)

	// Streaming path over the merged stream.
	na := NewNetworkAnalyzer(dict, DefaultOptions(), b1.pulseUJ, 3.0)
	m, err := trace.NewMerger([]trace.Stream{
		{Node: 1, Source: trace.NewSliceSource(b1.entries)},
		{Node: 2, Source: trace.NewSliceSource(b2.entries)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := na.ConsumeAll(m); err != nil {
		t.Fatal(err)
	}
	got, err := na.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Nodes) != 2 {
		t.Fatalf("network has %d nodes", len(got.Nodes))
	}
	if math.Abs(got.TotalEnergyUJ()-want.TotalEnergyUJ()) > 1e-9 {
		t.Errorf("TotalEnergyUJ = %g, want %g", got.TotalEnergyUJ(), want.TotalEnergyUJ())
	}
	wantByAct := want.EnergyByActivity()
	for l, uj := range got.EnergyByActivity() {
		if math.Abs(uj-wantByAct[l]) > 1e-9 {
			t.Errorf("EnergyByActivity[%v] = %g, want %g", l, uj, wantByAct[l])
		}
	}
}

// TestOnlineAccountantBatchEqualsSingle checks RecordBatch folds identically
// to entry-at-a-time Record.
func TestOnlineAccountantBatchEqualsSingle(t *testing.T) {
	b := buildTwoSinkTrace()
	model := map[Predictor]float64{
		{Res: resA, State: 1}: 9.0,
		{Res: resB, State: 1}: 4.5,
	}
	one := NewOnlineAccountant(1, b.pulseUJ, model)
	for _, e := range b.entries {
		one.Record(e)
	}
	batch := NewOnlineAccountant(1, b.pulseUJ, model)
	batch.RecordBatch(b.entries)
	if one.TotalUJ() != batch.TotalUJ() || one.Events() != batch.Events() {
		t.Errorf("batch path diverges: %g/%d vs %g/%d",
			one.TotalUJ(), one.Events(), batch.TotalUJ(), batch.Events())
	}
}
