package analysis

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RouteSample is one routed run's network-layer outcome: end-to-end data
// counters, tree shape, and the lifetime marks that tell whether rerouting
// actually extended the network's useful life past the first death.
type RouteSample struct {
	Generated      float64
	Delivered      float64
	ParentChanges  float64
	LoopAvoided    float64
	NoRoute        float64
	TTLDrops       float64
	BeaconsTx      float64
	BeaconsRx      float64
	MeanPathETX    float64
	LastDeliveryUS float64
	// FirstDeathUS is negative when no node died in the run; the lifetime
	// extension statistic only folds runs that saw a death.
	FirstDeathUS float64
}

// routeGroup folds one configuration's samples.
type routeGroup struct {
	key       string
	runs      int
	delivery  RunningStat // delivered/generated per run
	pathETX   RunningStat
	reroutes  RunningStat // parent changes per run
	loops     RunningStat // loop-avoided + ttl drops: the transient-loop tax
	noRoute   RunningStat
	beacons   RunningStat // control-plane sends per run
	lastUS    RunningStat
	extension RunningStat // last delivery minus first death, deaths only
}

// RouteReport folds RouteSamples across runs into per-configuration routing
// statistics: delivery ratio, tree depth (mean path ETX), reroute and loop
// counts, control-plane overhead, and — for runs with battery deaths — how
// far past the first death the network kept delivering. Groups keep
// insertion order so a deterministic run sequence renders deterministically,
// the same contract as LifetimeReport and Aggregate.
type RouteReport struct {
	order  []string
	groups map[string]*routeGroup
}

// NewRouteReport returns an empty report.
func NewRouteReport() *RouteReport {
	return &RouteReport{groups: make(map[string]*routeGroup)}
}

// Add folds one routed run into the named group (for sweeps, the spec's
// ConfigKey).
func (rr *RouteReport) Add(group string, s RouteSample) {
	g := rr.groups[group]
	if g == nil {
		g = &routeGroup{key: group}
		rr.groups[group] = g
		rr.order = append(rr.order, group)
	}
	g.runs++
	if s.Generated > 0 {
		g.delivery.Add(s.Delivered / s.Generated)
	}
	g.pathETX.Add(s.MeanPathETX)
	g.reroutes.Add(s.ParentChanges)
	g.loops.Add(s.LoopAvoided + s.TTLDrops)
	g.noRoute.Add(s.NoRoute)
	g.beacons.Add(s.BeaconsTx)
	g.lastUS.Add(s.LastDeliveryUS)
	if s.FirstDeathUS >= 0 {
		g.extension.Add(s.LastDeliveryUS - s.FirstDeathUS)
	}
}

// Empty reports whether no routed runs were folded in.
func (rr *RouteReport) Empty() bool { return len(rr.order) == 0 }

// routeGroupJSON is the serialized per-group view.
type routeGroupJSON struct {
	Key               string  `json:"key"`
	Runs              int     `json:"runs"`
	MeanDeliveryRatio float64 `json:"mean_delivery_ratio"`
	CI95DeliveryRatio float64 `json:"ci95_delivery_ratio"`
	MeanPathETX       float64 `json:"mean_path_etx"`
	MeanParentChanges float64 `json:"mean_parent_changes"`
	MeanLoopDrops     float64 `json:"mean_loop_drops"`
	MeanNoRoute       float64 `json:"mean_no_route"`
	MeanBeaconsTx     float64 `json:"mean_beacons_tx"`
	MeanLastDeliveryS float64 `json:"mean_last_delivery_s"`
	// Deaths counts the folded runs that saw a battery death; the extension
	// stats cover only those.
	Deaths         int     `json:"deaths,omitempty"`
	MeanExtensionS float64 `json:"mean_extension_s,omitempty"`
	MinExtensionS  float64 `json:"min_extension_s,omitempty"`
	CI95ExtensionS float64 `json:"ci95_extension_s,omitempty"`
}

func (g *routeGroup) groupJSON() routeGroupJSON {
	gj := routeGroupJSON{
		Key:               g.key,
		Runs:              g.runs,
		MeanDeliveryRatio: g.delivery.Mean(),
		CI95DeliveryRatio: g.delivery.CI95(),
		MeanPathETX:       g.pathETX.Mean(),
		MeanParentChanges: g.reroutes.Mean(),
		MeanLoopDrops:     g.loops.Mean(),
		MeanNoRoute:       g.noRoute.Mean(),
		MeanBeaconsTx:     g.beacons.Mean(),
		MeanLastDeliveryS: g.lastUS.Mean() / 1e6,
	}
	if n := g.extension.N(); n > 0 {
		gj.Deaths = n
		gj.MeanExtensionS = g.extension.Mean() / 1e6
		gj.MinExtensionS = g.extension.Min() / 1e6
		gj.CI95ExtensionS = g.extension.CI95() / 1e6
	}
	return gj
}

// MarshalJSON renders the report deterministically: groups in insertion
// order.
func (rr *RouteReport) MarshalJSON() ([]byte, error) {
	out := struct {
		Groups []routeGroupJSON `json:"groups"`
	}{Groups: make([]routeGroupJSON, 0, len(rr.order))}
	for _, key := range rr.order {
		out.Groups = append(out.Groups, rr.groups[key].groupJSON())
	}
	return json.Marshal(out)
}

// Render returns the human-readable routing table: one row per
// configuration with delivery ratio, tree depth, reroute/loop/overhead
// counts, and — when a run saw deaths — the mean post-death delivery
// extension in seconds.
func (rr *RouteReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %5s %9s %8s %9s %7s %9s %12s\n",
		"config", "runs", "delivery", "pathETX", "reroutes", "loops", "beacons", "extension")
	for _, key := range rr.order {
		gj := rr.groups[key].groupJSON()
		ext := "-"
		if gj.Deaths > 0 {
			ext = fmt.Sprintf("%+.1fs (n=%d)", gj.MeanExtensionS, gj.Deaths)
		}
		fmt.Fprintf(&sb, "%-40s %5d %8.1f%% %8.2f %9.1f %7.1f %9.0f %12s\n",
			gj.Key, gj.Runs, gj.MeanDeliveryRatio*100, gj.MeanPathETX,
			gj.MeanParentChanges, gj.MeanLoopDrops, gj.MeanBeaconsTx, ext)
	}
	return sb.String()
}
