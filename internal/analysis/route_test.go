package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRouteReportFold pins the fold semantics: delivery ratio is per-run
// (not pooled), the extension statistic only covers runs that saw a death,
// and groups render in insertion order.
func TestRouteReportFold(t *testing.T) {
	rr := NewRouteReport()
	if !rr.Empty() {
		t.Fatal("new report not empty")
	}
	rr.Add("b", RouteSample{Generated: 100, Delivered: 80, MeanPathETX: 2, FirstDeathUS: -1})
	rr.Add("b", RouteSample{Generated: 100, Delivered: 60, MeanPathETX: 2,
		FirstDeathUS: 10e6, LastDeliveryUS: 25e6})
	rr.Add("a", RouteSample{Generated: 10, Delivered: 10, MeanPathETX: 1, FirstDeathUS: -1})
	if rr.Empty() {
		t.Fatal("report with samples reads empty")
	}

	raw, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Groups []struct {
			Key               string  `json:"key"`
			Runs              int     `json:"runs"`
			MeanDeliveryRatio float64 `json:"mean_delivery_ratio"`
			Deaths            int     `json:"deaths"`
			MeanExtensionS    float64 `json:"mean_extension_s"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 2 || got.Groups[0].Key != "b" || got.Groups[1].Key != "a" {
		t.Fatalf("groups not in insertion order: %s", raw)
	}
	b := got.Groups[0]
	if b.Runs != 2 || b.MeanDeliveryRatio != 0.7 {
		t.Errorf("group b: runs=%d delivery=%v, want 2 runs at 0.7", b.Runs, b.MeanDeliveryRatio)
	}
	if b.Deaths != 1 || b.MeanExtensionS != 15 {
		t.Errorf("group b extension: deaths=%d mean=%v, want 1 death, +15 s", b.Deaths, b.MeanExtensionS)
	}
	if got.Groups[1].Deaths != 0 {
		t.Errorf("deathless group a reports %d deaths", got.Groups[1].Deaths)
	}

	out := rr.Render()
	if !strings.Contains(out, "+15.0s (n=1)") {
		t.Errorf("render lacks the extension column:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") || !strings.Contains(out, "70.0%") {
		t.Errorf("render lacks delivery ratios:\n%s", out)
	}
}
