// Package analysis is the offline half of Quanto: it turns a node's event
// log into power-state intervals, runs the weighted least-squares regression
// that disaggregates the board's energy by hardware component (Section 2.5),
// resolves proxy activities through bind entries, and produces the time and
// energy breakdowns of Table 3 plus the reconstructed power traces of
// Figure 11(c).
package analysis

import (
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/units"
)

// NodeTrace is one node's log prepared for analysis: timestamps unwrapped to
// 64-bit microseconds and metadata needed to convert pulses to joules.
type NodeTrace struct {
	Node    core.NodeID
	Entries []core.Entry
	Times   []int64 // unwrapped, parallel to Entries

	PulseUJ float64
	Volts   units.Volts
}

// NewNodeTrace wraps a log. PulseUJ is the meter's energy quantum and volts
// the supply voltage (needed to express power draws as currents).
func NewNodeTrace(node core.NodeID, entries []core.Entry, pulseUJ float64, volts units.Volts) *NodeTrace {
	return &NodeTrace{
		Node:    node,
		Entries: entries,
		Times:   trace.UnwrapTimes(entries),
		PulseUJ: pulseUJ,
		Volts:   volts,
	}
}

// Start returns the first entry's time, or 0 for an empty log.
func (t *NodeTrace) Start() int64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[0]
}

// End returns the last entry's time, or 0 for an empty log. Harnesses stamp
// a final marker at the end of a run so this covers the full window.
func (t *NodeTrace) End() int64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[len(t.Times)-1]
}

// StateInterval is one stretch of time during which no logged event
// occurred: the power states of all sinks are constant, Pulses energy
// quanta were consumed, and the interval lasted End-Start microseconds.
type StateInterval struct {
	Start, End int64
	Pulses     uint32
	// States snapshots the sinks' power states during the interval. The map
	// is shared between intervals with identical vectors; do not mutate.
	// Resources at the zero (baseline) state may be absent — look states up
	// with the map's zero-value-on-miss semantics rather than ranging for
	// zeros.
	States map[core.ResourceID]core.PowerState
	// Key is a canonical fingerprint of the non-zero states, used for
	// grouping.
	Key string
}

// Duration returns the interval length in microseconds.
func (iv StateInterval) Duration() int64 { return iv.End - iv.Start }

// EnergyUJ converts the interval's pulse count to energy.
func (iv StateInterval) EnergyUJ(pulseUJ float64) float64 {
	return float64(iv.Pulses) * pulseUJ
}

// IntervalBuilder slices an event stream into state intervals incrementally,
// one entry at a time — the single-pass core behind StateIntervals. Feed
// entries in log order with their unwrapped timestamps; Intervals returns
// everything closed so far. Zero-length gaps (several entries at one
// microsecond) are skipped; their pulses carry into the following interval.
type IntervalBuilder struct {
	states  map[core.ResourceID]core.PowerState
	resIDs  []core.ResourceID // sorted keys of states
	out     []StateInterval
	carry   uint32
	prev    core.Entry
	prevAt  int64
	started bool

	// Snapshot cache: logs revisit the same state vectors over and over
	// (every blink, every radio wakeup), so completed snapshots are interned
	// by fingerprint. Steady-state interval building allocates nothing, and
	// intervals with identical vectors share one map.
	lastSnap map[core.ResourceID]core.PowerState
	lastKey  string
	dirty    bool
	keyBuf   []byte
	interned map[string]internedVec
}

type internedVec struct {
	snap map[core.ResourceID]core.PowerState
	key  string
}

// NewIntervalBuilder returns an empty builder.
func NewIntervalBuilder() *IntervalBuilder {
	return &IntervalBuilder{
		states:   make(map[core.ResourceID]core.PowerState),
		dirty:    true,
		interned: make(map[string]internedVec),
	}
}

// insertResSorted inserts res into the ascending ids slice, keeping order.
// The caller checks for prior membership.
func insertResSorted(ids []core.ResourceID, res core.ResourceID) []core.ResourceID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= res })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = res
	return ids
}

// setState records a resource's power state, tracking the sorted key set.
func (b *IntervalBuilder) setState(res core.ResourceID, st core.PowerState) {
	old, seen := b.states[res]
	if seen && old == st {
		return
	}
	if !seen {
		b.resIDs = insertResSorted(b.resIDs, res)
	}
	b.states[res] = st
	b.dirty = true
}

// snapshot fingerprints the current state vector and returns the interned
// copy, reusing the previous one when nothing changed.
func (b *IntervalBuilder) snapshot() (map[core.ResourceID]core.PowerState, string) {
	if !b.dirty {
		return b.lastSnap, b.lastKey
	}
	buf := b.keyBuf[:0]
	for _, r := range b.resIDs {
		if s := b.states[r]; s != 0 {
			buf = strconv.AppendUint(buf, uint64(r), 10)
			buf = append(buf, '=')
			buf = strconv.AppendUint(buf, uint64(s), 10)
			buf = append(buf, ';')
		}
	}
	b.keyBuf = buf
	if string(buf) == b.lastKey {
		// The vector toggled back to the previous one (LED off, radio
		// asleep again): skip the intern lookup entirely.
		b.dirty = false
		return b.lastSnap, b.lastKey
	}
	iv, ok := b.interned[string(buf)]
	if !ok {
		cp := make(map[core.ResourceID]core.PowerState, len(b.states))
		for r, s := range b.states {
			cp[r] = s
		}
		iv = internedVec{snap: cp, key: string(buf)}
		b.interned[iv.key] = iv
	}
	b.lastSnap, b.lastKey, b.dirty = iv.snap, iv.key, false
	return iv.snap, iv.key
}

// Add consumes the next entry, stamped with its unwrapped time. The interval
// between the previous entry and this one is closed and recorded.
func (b *IntervalBuilder) Add(e core.Entry, at int64) {
	if b.started {
		p := b.prev
		if p.Type == core.EntryPowerState {
			b.setState(p.Res, p.State())
		}
		pulses := e.IC - p.IC // uint32 arithmetic handles wrap
		if at == b.prevAt {
			b.carry += pulses
		} else {
			snap, key := b.snapshot()
			b.out = append(b.out, StateInterval{
				Start:  b.prevAt,
				End:    at,
				Pulses: pulses + b.carry,
				States: snap,
				Key:    key,
			})
			b.carry = 0
		}
	}
	b.prev, b.prevAt, b.started = e, at, true
}

// Intervals returns the intervals closed so far. The returned slice is the
// builder's own; do not Add after using it.
func (b *IntervalBuilder) Intervals() []StateInterval { return b.out }

// StateIntervals slices the log into intervals between consecutive entries,
// each annotated with the in-effect power-state vector and the energy used.
// It is the batch wrapper over IntervalBuilder.
func (t *NodeTrace) StateIntervals() []StateInterval {
	b := NewIntervalBuilder()
	for i, e := range t.Entries {
		b.Add(e, t.Times[i])
	}
	return b.Intervals()
}

// TotalPulses returns the pulse count between the first and last entry.
func (t *NodeTrace) TotalPulses() uint32 {
	if len(t.Entries) < 2 {
		return 0
	}
	return t.Entries[len(t.Entries)-1].IC - t.Entries[0].IC
}

// TotalEnergyUJ returns the energy the meter observed across the log.
func (t *NodeTrace) TotalEnergyUJ() float64 {
	return float64(t.TotalPulses()) * t.PulseUJ
}
