// Package analysis is the offline half of Quanto: it turns a node's event
// log into power-state intervals, runs the weighted least-squares regression
// that disaggregates the board's energy by hardware component (Section 2.5),
// resolves proxy activities through bind entries, and produces the time and
// energy breakdowns of Table 3 plus the reconstructed power traces of
// Figure 11(c).
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/units"
)

// NodeTrace is one node's log prepared for analysis: timestamps unwrapped to
// 64-bit microseconds and metadata needed to convert pulses to joules.
type NodeTrace struct {
	Node    core.NodeID
	Entries []core.Entry
	Times   []int64 // unwrapped, parallel to Entries

	PulseUJ float64
	Volts   units.Volts
}

// NewNodeTrace wraps a log. PulseUJ is the meter's energy quantum and volts
// the supply voltage (needed to express power draws as currents).
func NewNodeTrace(node core.NodeID, entries []core.Entry, pulseUJ float64, volts units.Volts) *NodeTrace {
	return &NodeTrace{
		Node:    node,
		Entries: entries,
		Times:   trace.UnwrapTimes(entries),
		PulseUJ: pulseUJ,
		Volts:   volts,
	}
}

// Start returns the first entry's time, or 0 for an empty log.
func (t *NodeTrace) Start() int64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[0]
}

// End returns the last entry's time, or 0 for an empty log. Harnesses stamp
// a final marker at the end of a run so this covers the full window.
func (t *NodeTrace) End() int64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[len(t.Times)-1]
}

// StateInterval is one stretch of time during which no logged event
// occurred: the power states of all sinks are constant, Pulses energy
// quanta were consumed, and the interval lasted End-Start microseconds.
type StateInterval struct {
	Start, End int64
	Pulses     uint32
	// States snapshots every sink's power state during the interval. The
	// map is shared between intervals with identical vectors; do not
	// mutate.
	States map[core.ResourceID]core.PowerState
	// Key is a canonical fingerprint of the non-zero states, used for
	// grouping.
	Key string
}

// Duration returns the interval length in microseconds.
func (iv StateInterval) Duration() int64 { return iv.End - iv.Start }

// EnergyUJ converts the interval's pulse count to energy.
func (iv StateInterval) EnergyUJ(pulseUJ float64) float64 {
	return float64(iv.Pulses) * pulseUJ
}

// StateIntervals slices the log into intervals between consecutive entries,
// each annotated with the in-effect power-state vector and the energy used.
// Zero-length gaps (several entries at one microsecond) are skipped; their
// pulses are carried into the following interval.
func (t *NodeTrace) StateIntervals() []StateInterval {
	states := make(map[core.ResourceID]core.PowerState)
	var out []StateInterval
	var carryPulses uint32

	snapshot := func() (map[core.ResourceID]core.PowerState, string) {
		// Copy and fingerprint the current vector.
		cp := make(map[core.ResourceID]core.PowerState, len(states))
		keys := make([]int, 0, len(states))
		for r, s := range states {
			cp[r] = s
			if s != 0 {
				keys = append(keys, int(r))
			}
		}
		sort.Ints(keys)
		key := ""
		for _, r := range keys {
			key += fmt.Sprintf("%d=%d;", r, states[core.ResourceID(r)])
		}
		return cp, key
	}

	for i := 0; i+1 < len(t.Entries); i++ {
		e := t.Entries[i]
		if e.Type == core.EntryPowerState {
			states[e.Res] = e.State()
		}
		start, end := t.Times[i], t.Times[i+1]
		pulses := t.Entries[i+1].IC - e.IC // uint32 arithmetic handles wrap
		if end == start {
			carryPulses += pulses
			continue
		}
		snap, key := snapshot()
		out = append(out, StateInterval{
			Start:  start,
			End:    end,
			Pulses: pulses + carryPulses,
			States: snap,
			Key:    key,
		})
		carryPulses = 0
	}
	return out
}

// TotalPulses returns the pulse count between the first and last entry.
func (t *NodeTrace) TotalPulses() uint32 {
	if len(t.Entries) < 2 {
		return 0
	}
	return t.Entries[len(t.Entries)-1].IC - t.Entries[0].IC
}

// TotalEnergyUJ returns the energy the meter observed across the log.
func (t *NodeTrace) TotalEnergyUJ() float64 {
	return float64(t.TotalPulses()) * t.PulseUJ
}
