package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/linalg"
)

// Predictor is one regression column: a (sink, non-baseline power state)
// pair whose per-state draw the regression estimates.
type Predictor struct {
	Res   core.ResourceID
	State core.PowerState
}

// StateGroup aggregates all intervals that share one power-state vector
// ("we group all intervals from the log that have the same power state j,
// adding the time t_j and energy E_j spent at that power state").
type StateGroup struct {
	Key      string
	Active   []Predictor // predictors on during this group
	TimeUS   int64
	EnergyUJ float64
}

// PowerMW returns the group's average power y_j = E_j / t_j in milliwatts.
func (g StateGroup) PowerMW() float64 {
	if g.TimeUS == 0 {
		return 0
	}
	return g.EnergyUJ / float64(g.TimeUS) * 1000
}

// Regression holds the energy-breakdown estimation for one node.
type Regression struct {
	Predictors []Predictor
	Groups     []StateGroup

	// Dropped lists predictors excluded because they were active in every
	// group (collinear with the constant) or never active.
	Dropped []Predictor

	// MergedInto maps predictors whose on/off pattern was identical to
	// another's onto the representative predictor that carries their
	// combined draw. States that always switch together cannot be
	// disambiguated (Section 5.2's linear-independence limitation); the
	// estimate for the representative is the sum of the group's draws.
	MergedInto map[Predictor]Predictor

	// PowerMW maps each fitted predictor to its estimated draw; ConstMW is
	// the constant term.
	PowerMW map[Predictor]float64
	ConstMW float64

	// Fit carries residual diagnostics (RelErr is the paper's
	// ||Y - X Pi|| / ||Y||).
	Fit *linalg.WLSResult
}

// RegressionOptions tunes the estimation.
type RegressionOptions struct {
	// Weighted selects the paper's w = sqrt(E*t) weights; unweighted OLS
	// otherwise (the ablation).
	Weighted bool
	// IncludeConstant adds the constant column absorbing baseline draw.
	IncludeConstant bool
	// MinGroupTimeUS drops groups observed for less than this long, whose
	// y_j are dominated by quantization noise.
	MinGroupTimeUS int64
	// MergeTimeFrac merges predictors whose on/off patterns differ for
	// less than this fraction of the observed time. States that switch
	// (almost) in lockstep — a radio's regulator and oscillator, for
	// example — cannot be separated reliably; estimating their combined
	// draw is both honest and numerically stable (Section 5.2's
	// linear-independence limitation).
	MergeTimeFrac float64
	// NonNegative constrains all fitted draws (including the constant) to
	// be physically plausible, i.e. >= 0, using non-negative least
	// squares. Without it, nearly collinear predictors can fit as huge
	// opposite-signed pairs and corrupt the energy attribution.
	NonNegative bool
}

// DefaultRegressionOptions mirrors the paper's method.
func DefaultRegressionOptions() RegressionOptions {
	return RegressionOptions{
		Weighted:        true,
		IncludeConstant: true,
		MinGroupTimeUS:  0,
		MergeTimeFrac:   0.002,
		NonNegative:     true,
	}
}

// RunRegression estimates per-predictor power draws from state intervals.
func RunRegression(intervals []StateInterval, pulseUJ float64, opts RegressionOptions) (*Regression, error) {
	if len(intervals) == 0 {
		return nil, fmt.Errorf("analysis: no intervals to regress")
	}

	// Group by state-vector key.
	groupIdx := make(map[string]int)
	var groups []StateGroup
	for _, iv := range intervals {
		gi, ok := groupIdx[iv.Key]
		if !ok {
			var active []Predictor
			for r, s := range iv.States {
				if s != 0 {
					active = append(active, Predictor{r, s})
				}
			}
			sort.Slice(active, func(i, j int) bool {
				if active[i].Res != active[j].Res {
					return active[i].Res < active[j].Res
				}
				return active[i].State < active[j].State
			})
			gi = len(groups)
			groupIdx[iv.Key] = gi
			groups = append(groups, StateGroup{Key: iv.Key, Active: active})
		}
		groups[gi].TimeUS += iv.Duration()
		groups[gi].EnergyUJ += iv.EnergyUJ(pulseUJ)
	}
	// Stable group order for deterministic numerics.
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	{
		// Groups whose total energy never crossed a pulse boundary carry a
		// weight of zero and a meaningless y_j = 0; with the paper's
		// weights they contribute nothing, so remove them before predictor
		// selection (otherwise a predictor seen only in zero-weight groups
		// would make the weighted system rank-deficient).
		kept := groups[:0]
		for _, g := range groups {
			if g.TimeUS >= opts.MinGroupTimeUS && g.TimeUS > 0 && g.EnergyUJ > 0 {
				kept = append(kept, g)
			}
		}
		groups = kept
	}

	// Candidate predictors: everything active somewhere.
	seen := make(map[Predictor]int) // -> number of groups active in
	for _, g := range groups {
		for _, p := range g.Active {
			seen[p]++
		}
	}
	var predictors, dropped []Predictor
	for p, n := range seen {
		if opts.IncludeConstant && n == len(groups) {
			// Active always: indistinguishable from the constant.
			dropped = append(dropped, p)
			continue
		}
		predictors = append(predictors, p)
	}
	sortPredictors(predictors)
	sortPredictors(dropped)

	// Merge predictors whose incidence patterns are identical (perfectly
	// collinear: the system would be singular) or near-identical (their
	// patterns differ for a negligible share of the observed time, so the
	// fit would split their combined draw arbitrarily, often into huge
	// opposite-signed coefficients). The first predictor in sorted order
	// represents the merged set and its coefficient carries the combined
	// draw.
	mergedInto := make(map[Predictor]Predictor)
	{
		activeIn := make(map[Predictor]map[string]bool, len(predictors))
		for _, g := range groups {
			for _, p := range g.Active {
				if activeIn[p] == nil {
					activeIn[p] = make(map[string]bool)
				}
				activeIn[p][g.Key] = true
			}
		}
		var spanUS int64
		for _, g := range groups {
			spanUS += g.TimeUS
		}
		// diffTime returns how long p's and q's indicators disagree.
		diffTime := func(p, q Predictor) int64 {
			var d int64
			for _, g := range groups {
				if activeIn[p][g.Key] != activeIn[q][g.Key] {
					d += g.TimeUS
				}
			}
			return d
		}
		limit := int64(opts.MergeTimeFrac * float64(spanUS))
		var kept []Predictor
		for _, p := range predictors {
			merged := false
			for _, r := range kept {
				if diffTime(p, r) <= limit {
					mergedInto[p] = r
					merged = true
					break
				}
			}
			if !merged {
				kept = append(kept, p)
			}
		}
		predictors = kept
	}

	cols := len(predictors)
	if opts.IncludeConstant {
		cols++
	}
	if cols == 0 {
		return nil, fmt.Errorf("analysis: no predictors observed")
	}
	if len(groups) < cols {
		return nil, fmt.Errorf("analysis: %d state groups cannot constrain %d coefficients", len(groups), cols)
	}

	// Assemble X, Y, W.
	colOf := make(map[Predictor]int, len(predictors))
	for i, p := range predictors {
		colOf[p] = i
	}
	x := linalg.NewMatrix(len(groups), cols)
	y := make([]float64, len(groups))
	w := make([]float64, len(groups))
	for i, g := range groups {
		for _, p := range g.Active {
			if r, ok := mergedInto[p]; ok {
				p = r
			}
			if c, ok := colOf[p]; ok {
				x.Set(i, c, 1)
			}
		}
		if opts.IncludeConstant {
			x.Set(i, cols-1, 1)
		}
		y[i] = g.PowerMW()
		if opts.Weighted {
			w[i] = math.Sqrt(g.EnergyUJ * float64(g.TimeUS))
		} else {
			w[i] = 1
		}
	}

	var fit *linalg.WLSResult
	var err error
	if opts.NonNegative {
		fit, err = linalg.NNLS(x, y, w)
	} else {
		fit, err = linalg.WLS(x, y, w)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: regression: %w", err)
	}

	reg := &Regression{
		Predictors: predictors,
		Groups:     groups,
		Dropped:    dropped,
		MergedInto: mergedInto,
		PowerMW:    make(map[Predictor]float64, len(predictors)),
		Fit:        fit,
	}
	for i, p := range predictors {
		reg.PowerMW[p] = fit.Coef[i]
	}
	if opts.IncludeConstant {
		reg.ConstMW = fit.Coef[cols-1]
	}
	return reg, nil
}

func sortPredictors(ps []Predictor) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Res != ps[j].Res {
			return ps[i].Res < ps[j].Res
		}
		return ps[i].State < ps[j].State
	})
}

// CurrentMA converts a predictor's fitted power to current at the given
// supply voltage, for comparison against Table 1/2/3 current columns.
func (r *Regression) CurrentMA(p Predictor, volts float64) float64 {
	return r.PowerMW[p] / volts
}

// ConstCurrentMA converts the constant term to current.
func (r *Regression) ConstCurrentMA(volts float64) float64 {
	return r.ConstMW / volts
}

// PredictGroup returns the fitted power of one group (the X*Pi row),
// used to reconstruct power-state traces.
func (r *Regression) PredictGroup(active []Predictor) float64 {
	p := r.ConstMW
	for _, a := range active {
		p += r.PowerMW[a]
	}
	return p
}
