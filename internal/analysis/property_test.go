package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestRegressionRecoveryProperty is the end-to-end statistical property of
// Section 2.5: for randomized schedules of independent sinks with known
// draws, the weighted regression recovers each draw from nothing but the
// aggregate pulse stream, as long as the schedule exercises the states
// independently.
func TestRegressionRecoveryProperty(t *testing.T) {
	rng := sim.NewRNG(2024)
	const trials = 25
	passed := 0
	for trial := 0; trial < trials; trial++ {
		b := newTraceBuilder()
		// Two to four sinks with random draws between 0.5 and 10 mA.
		nSinks := 2 + rng.Intn(3)
		draws := make([]float64, nSinks)
		for i := range draws {
			draws[i] = 500 + rng.Float64()*9500
			b.draw(core.ResourceID(20+i), 1, draws[i])
		}
		b.draw(0, 0, 300+rng.Float64()*700) // baseline
		b.states[0] = 0
		for i := range draws {
			b.ps(core.ResourceID(20+i), 0)
		}
		// Random schedule: each step toggles one random sink after a
		// random dwell of 0.2-1.2 s.
		for step := 0; step < 60; step++ {
			b.advance(uint32(200_000 + rng.Intn(1_000_000)))
			sink := core.ResourceID(20 + rng.Intn(nSinks))
			if b.states[sink] == 0 {
				b.ps(sink, 1)
			} else {
				b.ps(sink, 0)
			}
		}
		b.advance(500_000)
		b.marker()

		tr := b.trace()
		reg, err := RunRegression(tr.StateIntervals(), tr.PulseUJ, DefaultRegressionOptions())
		if err != nil {
			continue // some random schedules are degenerate; that's fine
		}
		ok := true
		for i, ua := range draws {
			p := Predictor{core.ResourceID(20 + i), 1}
			mw, have := reg.PowerMW[p]
			if !have {
				// Merged or dropped: skip this sink's check but keep the
				// trial (collinearity is possible at random).
				continue
			}
			wantMW := ua * 3.0 / 1000
			if math.Abs(mw-wantMW) > 0.05*wantMW+0.3 {
				ok = false
			}
		}
		if ok {
			passed++
		}
	}
	if passed < trials*3/4 {
		t.Errorf("recovered draws in only %d/%d random schedules", passed, trials)
	}
}

// TestEnergyConservationProperty: for any random schedule, the sum of the
// per-activity attribution equals the per-resource attribution, and both are
// within quantization error of the measured total.
func TestEnergyConservationProperty(t *testing.T) {
	rng := sim.NewRNG(777)
	for trial := 0; trial < 15; trial++ {
		b := newTraceBuilder()
		b.draw(resA, 1, 1000+rng.Float64()*5000)
		b.draw(resB, 1, 500+rng.Float64()*2000)
		b.draw(0, 0, 400)
		b.states[0] = 0
		b.ps(resA, 0)
		b.ps(resB, 0)
		l1 := core.MkLabel(1, 2)
		l2 := core.MkLabel(1, 3)
		b.act(core.EntryActivitySet, resA, l1)
		b.act(core.EntryActivitySet, resB, l2)
		for step := 0; step < 40; step++ {
			b.advance(uint32(100_000 + rng.Intn(900_000)))
			if rng.Intn(2) == 0 {
				if b.states[resA] == 0 {
					b.ps(resA, 1)
				} else {
					b.ps(resA, 0)
				}
			} else {
				if b.states[resB] == 0 {
					b.ps(resB, 1)
				} else {
					b.ps(resB, 0)
				}
			}
		}
		b.advance(300_000)
		b.marker()

		a, err := Analyze(b.trace(), core.NewDictionary(), DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		byRes, constUJ := a.EnergyByResource()
		var resSum float64
		for _, uj := range byRes {
			resSum += uj
		}
		resSum += constUJ
		var actSum float64
		for _, uj := range a.EnergyByActivity() {
			actSum += uj
		}
		if math.Abs(resSum-actSum) > 1e-6*math.Max(1, resSum) {
			t.Errorf("trial %d: resource sum %.2f != activity sum %.2f", trial, resSum, actSum)
		}
		measured := a.TotalEnergyUJ()
		if measured > 0 {
			if rel := math.Abs(resSum-measured) / measured; rel > 0.05 {
				t.Errorf("trial %d: attribution %.1f vs measured %.1f (rel %.4f)", trial, resSum, measured, rel)
			}
		}
	}
}

// TestNonNegativeAttributionProperty: with the default NNLS regression, no
// activity is ever charged negative energy, whatever the schedule.
func TestNonNegativeAttributionProperty(t *testing.T) {
	rng := sim.NewRNG(31)
	for trial := 0; trial < 15; trial++ {
		b := newTraceBuilder()
		b.draw(resA, 1, 3000)
		b.draw(resB, 1, 2500)
		b.draw(0, 0, 600)
		b.states[0] = 0
		b.ps(resA, 0)
		b.ps(resB, 0)
		// Adversarial: B is on exactly when A is off (complementary), the
		// pattern that bankrupts unconstrained least squares.
		on := false
		for step := 0; step < 30; step++ {
			b.advance(uint32(200_000 + rng.Intn(500_000)))
			if on {
				b.ps(resA, 0)
				b.ps(resB, 1)
			} else {
				b.ps(resA, 1)
				b.ps(resB, 0)
			}
			on = !on
		}
		b.advance(200_000)
		b.marker()
		a, err := Analyze(b.trace(), core.NewDictionary(), DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for p, mw := range a.Reg.PowerMW {
			if mw < 0 {
				t.Errorf("trial %d: negative draw %v for %v", trial, mw, p)
			}
		}
		if a.Reg.ConstMW < 0 {
			t.Errorf("trial %d: negative constant %v", trial, a.Reg.ConstMW)
		}
		for l, uj := range a.EnergyByActivity() {
			if uj < 0 {
				t.Errorf("trial %d: negative energy %v for %v", trial, uj, l)
			}
		}
	}
}
