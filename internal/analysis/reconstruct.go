package analysis

import (
	"math"
	"sort"

	"repro/internal/scope"
	"repro/internal/units"
)

// PowerStep is one segment of the reconstructed power trace: from T onward
// the model predicts PowerMW.
type PowerStep struct {
	T       int64
	PowerMW float64
}

// Reconstruct builds the stacked power trace of Figure 11(c): for every
// state interval, the fitted power X*Pi of its group. The result is a
// piecewise-constant series aligned with the log's intervals.
func (a *Analysis) Reconstruct() []PowerStep {
	out := make([]PowerStep, 0, len(a.Intervals)+1)
	for _, iv := range a.Intervals {
		active := activePredictors(iv)
		p := a.Reg.PredictGroup(active)
		if n := len(out); n > 0 && out[n-1].PowerMW == p {
			continue
		}
		out = append(out, PowerStep{T: iv.Start, PowerMW: p})
	}
	return out
}

// StackedStep is one reconstructed interval decomposed by hardware
// component, for rendering the stacked breakdown of Figure 11(c).
type StackedStep struct {
	Start, End int64
	// Parts maps each active predictor to its fitted share; ConstMW rides
	// underneath.
	Parts   map[Predictor]float64
	ConstMW float64
	TotalMW float64
}

// ReconstructStacked returns the per-component decomposition over time.
func (a *Analysis) ReconstructStacked() []StackedStep {
	out := make([]StackedStep, 0, len(a.Intervals))
	for _, iv := range a.Intervals {
		st := StackedStep{Start: iv.Start, End: iv.End, Parts: make(map[Predictor]float64), ConstMW: a.Reg.ConstMW}
		st.TotalMW = a.Reg.ConstMW
		for _, p := range activePredictors(iv) {
			if mw, ok := a.Reg.PowerMW[p]; ok {
				st.Parts[p] = mw
				st.TotalMW += mw
			}
		}
		out = append(out, st)
	}
	return out
}

// activePredictors lists the interval's non-baseline states in a fixed
// order, keeping floating-point accumulation deterministic.
func activePredictors(iv StateInterval) []Predictor {
	var active []Predictor
	for r, s := range iv.States {
		if s != 0 {
			active = append(active, Predictor{r, s})
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].Res != active[j].Res {
			return active[i].Res < active[j].Res
		}
		return active[i].State < active[j].State
	})
	return active
}

// ReconstructedEnergyUJ integrates the reconstructed power over the span.
func (a *Analysis) ReconstructedEnergyUJ() float64 {
	var total float64
	for _, st := range a.ReconstructStacked() {
		total += st.TotalMW * float64(st.End-st.Start) / 1000
	}
	return total
}

// ReconstructionError returns |E_measured - E_reconstructed| / E_measured,
// the paper's 0.004% figure for Blink.
func (a *Analysis) ReconstructionError() float64 {
	measured := a.TotalEnergyUJ()
	if measured == 0 {
		return 0
	}
	return math.Abs(measured-a.ReconstructedEnergyUJ()) / measured
}

// CompareWithScope integrates both the reconstructed power trace and the
// oscilloscope's ground-truth waveform over [t0, t1) and returns
// (reconstructed uJ, scope uJ, relative error) — the Figure 11(c) overlay
// reduced to its headline number.
func (a *Analysis) CompareWithScope(sc *scope.Scope, volts units.Volts, t0, t1 int64) (recUJ, scopeUJ, relErr float64) {
	for _, st := range a.ReconstructStacked() {
		lo, hi := maxi64(st.Start, t0), mini64(st.End, t1)
		if hi > lo {
			recUJ += st.TotalMW * float64(hi-lo) / 1000
		}
	}
	scopeUJ = sc.EnergyMicroJoules(volts, units.Ticks(t0), units.Ticks(t1))
	if scopeUJ != 0 {
		relErr = math.Abs(recUJ-scopeUJ) / scopeUJ
	}
	return recUJ, scopeUJ, relErr
}
