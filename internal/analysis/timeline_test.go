package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func buildTimelineAnalysis(t *testing.T) (*Analysis, core.Label) {
	t.Helper()
	b := newTraceBuilder()
	b.draw(resA, 1, 2000)
	b.draw(0, 0, 500)
	b.states[0] = 0
	l1 := core.MkLabel(1, 2)
	idle := core.MkLabel(1, 0)
	b.ps(resA, 0)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(1_000_000)
	b.act(core.EntryActivitySet, resA, l1)
	b.ps(resA, 1)
	b.advance(2_000_000)
	b.ps(resA, 0)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(1_000_000)
	b.marker()
	dict := core.NewDictionary()
	dict.NameResource(resA, "DevA")
	dict.NameActivity(1, 2, "Busy")
	a, err := Analyze(b.trace(), dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, l1
}

func TestActivityRowsClipAndSkipIdle(t *testing.T) {
	a, _ := buildTimelineAnalysis(t)
	rows := a.ActivityRows([]core.ResourceID{resA}, 0, a.Span())
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0].Spans) != 1 {
		t.Fatalf("spans = %+v, want just the busy span (idle omitted)", rows[0].Spans)
	}
	sp := rows[0].Spans[0]
	if sp.Text != "1:Busy" {
		t.Errorf("span text = %q", sp.Text)
	}
	if sp.End-sp.Start != 2_000_000 {
		t.Errorf("span length = %d", sp.End-sp.Start)
	}
	// Clipping: a window inside the busy period shortens the span.
	rows = a.ActivityRows([]core.ResourceID{resA}, 1_500_000, 2_500_000)
	sp = rows[0].Spans[0]
	if sp.Start != 1_500_000 || sp.End != 2_500_000 {
		t.Errorf("clipped span = %+v", sp)
	}
}

func TestStateRows(t *testing.T) {
	a, _ := buildTimelineAnalysis(t)
	rows := a.StateRows([]core.ResourceID{resA}, 0, a.Span(), func(res core.ResourceID, st core.PowerState) string {
		return "ON"
	})
	if len(rows) != 1 || len(rows[0].Spans) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Spans[0].Text != "ON" {
		t.Errorf("text = %q", rows[0].Spans[0].Text)
	}
}

func TestRenderGantt(t *testing.T) {
	a, _ := buildTimelineAnalysis(t)
	rows := a.ActivityRows([]core.ResourceID{resA}, 0, a.Span())
	out := RenderGantt(rows, 0, a.Span(), 40)
	if !strings.Contains(out, "DevA") {
		t.Error("missing resource name")
	}
	if !strings.Contains(out, "A = 1:Busy") {
		t.Errorf("missing legend: %s", out)
	}
	// The busy half of the window must be marked, the rest dotted.
	line := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(line, "A") || !strings.Contains(line, ".") {
		t.Errorf("gantt line = %q", line)
	}
}

func TestRenderGanttEmptyWindow(t *testing.T) {
	if RenderGantt(nil, 10, 10, 50) != "" {
		t.Error("empty window should render nothing")
	}
}

func TestRenderGanttManyLabels(t *testing.T) {
	// More than 26 distinct labels must not panic and must reuse
	// lowercase letters.
	var rows []TimelineRow
	row := TimelineRow{Res: 1, Name: "R"}
	for i := 0; i < 30; i++ {
		row.Spans = append(row.Spans, TimelineSpan{
			Start: int64(i * 10), End: int64(i*10 + 10),
			Text: strings.Repeat("x", i+1),
		})
	}
	rows = append(rows, row)
	out := RenderGantt(rows, 0, 300, 60)
	if out == "" {
		t.Error("empty render")
	}
}

func TestSpansCSV(t *testing.T) {
	a, _ := buildTimelineAnalysis(t)
	rows := a.ActivityRows([]core.ResourceID{resA}, 0, a.Span())
	csv := SpansCSV(rows)
	if !strings.HasPrefix(csv, "resource,start_us,end_us,label\n") {
		t.Error("missing header")
	}
	if !strings.Contains(csv, "DevA,1000000,3000000,1:Busy") {
		t.Errorf("csv = %q", csv)
	}
}

func TestLabelsInUseSorted(t *testing.T) {
	a, l1 := buildTimelineAnalysis(t)
	labels := a.LabelsInUse()
	if len(labels) < 2 {
		t.Fatalf("labels = %v", labels)
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] < labels[i-1] {
			t.Fatal("labels not sorted")
		}
	}
	found := false
	for _, l := range labels {
		if l == l1 {
			found = true
		}
	}
	if !found {
		t.Error("busy label missing")
	}
}
