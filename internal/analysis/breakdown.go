package analysis

import (
	"sort"

	"repro/internal/core"
)

// SplitPolicy decides how a multi-activity device's consumption divides
// among its concurrent activities. The paper divides equally and notes other
// policies are possible (Section 3.4).
type SplitPolicy int

// Split policies.
const (
	// SplitEqual divides each interval evenly among the activities present.
	SplitEqual SplitPolicy = iota
	// SplitFirst charges everything to the first (lowest-labeled) activity.
	SplitFirst
)

// Options configures a full analysis pass.
type Options struct {
	Regression RegressionOptions
	Split      SplitPolicy
	// ResolveProxies charges bound proxy usage to the activity it was bound
	// to (the accounting view). The raw labels remain available for
	// timeline rendering either way.
	ResolveProxies bool
}

// DefaultOptions mirrors the paper's choices.
func DefaultOptions() Options {
	return Options{
		Regression:     DefaultRegressionOptions(),
		Split:          SplitEqual,
		ResolveProxies: true,
	}
}

// ConstLabel is the pseudo-activity that carries the constant term's energy
// in per-activity tables, like the "Const." row of Table 3(d).
const ConstLabel core.Label = 0xFFFF

// Analysis bundles everything derived from one node's log.
type Analysis struct {
	// Trace carries the node's identity and meter parameters. When the
	// analysis came from the streaming path its Entries are nil — only the
	// summary fields below describe the log.
	Trace *NodeTrace
	Dict  *core.Dictionary
	Opts  Options

	// StartUS/EndUS bound the analyzed window (unwrapped microseconds) and
	// TotalPulses is the meter delta across it; they are valid whether the
	// analysis was computed from a slice or a stream.
	StartUS, EndUS int64
	TotalPulses    uint32

	Intervals []StateInterval
	Reg       *Regression

	// RegressionErr records why the full regression could not run (for
	// example, a log with no power-state variation). When set, Reg is a
	// degenerate constant-only model: all measured energy lands in the
	// constant term and per-state attribution is empty.
	RegressionErr error

	Single map[core.ResourceID]*ActTimeline
	Multi  map[core.ResourceID]*MultiTimeline
	States map[core.ResourceID][]StateSegment
}

// Analyze runs the full offline pipeline on one node's materialized log. It
// is a thin wrapper over the single-pass StreamAnalyzer, kept for callers
// that already hold the entries as a slice.
func Analyze(t *NodeTrace, dict *core.Dictionary, opts Options) (*Analysis, error) {
	sa := NewStreamAnalyzer(t.Node, t.PulseUJ, t.Volts, dict, opts)
	sa.RecordBatch(t.Entries)
	a, err := sa.Finish()
	if err != nil {
		return nil, err
	}
	a.Trace = t // keep the materialized log reachable for slice-based callers
	return a, nil
}

func (a *Analysis) ownerOf(seg Segment) core.Label {
	if a.Opts.ResolveProxies {
		return seg.Owner
	}
	return seg.Label
}

// TimeByActivity returns, for each resource with an activity timeline, the
// time each activity held it — Table 3(a). Durations are in microseconds.
func (a *Analysis) TimeByActivity() map[core.ResourceID]map[core.Label]int64 {
	out := make(map[core.ResourceID]map[core.Label]int64)
	for res, tl := range a.Single {
		m := make(map[core.Label]int64)
		for _, s := range tl.Segs {
			m[a.ownerOf(s)] += s.End - s.Start
		}
		out[res] = m
	}
	for res, mt := range a.Multi {
		m := out[res]
		if m == nil {
			m = make(map[core.Label]int64)
			out[res] = m
		}
		for _, s := range mt.Segs {
			dur := s.End - s.Start
			switch {
			case len(s.Labels) == 0:
				// Device idle; charge nothing.
			case a.Opts.Split == SplitFirst:
				m[s.Labels[0]] += dur
			default:
				share := dur / int64(len(s.Labels))
				for _, l := range s.Labels {
					m[l] += share
				}
			}
		}
	}
	return out
}

// ActiveTimeUS returns how long res spent in non-baseline power states.
func (a *Analysis) ActiveTimeUS(res core.ResourceID) int64 {
	var total int64
	for _, seg := range a.States[res] {
		if seg.State != 0 {
			total += seg.End - seg.Start
		}
	}
	return total
}

// Span returns the analyzed window in microseconds.
func (a *Analysis) Span() int64 { return a.EndUS - a.StartUS }

// stateResources returns the resources with power-state timelines in a
// fixed order, so floating-point accumulation is deterministic run to run.
func (a *Analysis) stateResources() []core.ResourceID {
	out := make([]core.ResourceID, 0, len(a.States))
	for res := range a.States {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EnergyByResource distributes the regression's fitted powers over the
// power-state timelines: for each predictor, energy = Pi * time-in-state;
// the constant term covers the whole span — Table 3(c). Energies in uJ,
// keyed by resource, with the constant under power.ResBaseline's companion
// ConstLabel row via the second return value.
func (a *Analysis) EnergyByResource() (map[core.ResourceID]float64, float64) {
	out := make(map[core.ResourceID]float64)
	for _, res := range a.stateResources() {
		for _, seg := range a.States[res] {
			if seg.State == 0 {
				continue
			}
			p := Predictor{res, seg.State}
			mw, ok := a.Reg.PowerMW[p]
			if !ok {
				continue
			}
			out[res] += mw * float64(seg.End-seg.Start) / 1000 // mW*us -> uJ
		}
	}
	constUJ := a.Reg.ConstMW * float64(a.Span()) / 1000
	return out, constUJ
}

// EnergyByActivity charges each resource's fitted power to the activity that
// held the resource at the time — Table 3(d). The constant term's energy is
// reported under ConstLabel.
func (a *Analysis) EnergyByActivity() map[core.Label]float64 {
	out := make(map[core.Label]float64)

	for _, res := range a.stateResources() {
		for _, seg := range a.States[res] {
			if seg.State == 0 {
				continue
			}
			mw, ok := a.Reg.PowerMW[Predictor{res, seg.State}]
			if !ok {
				continue
			}
			a.chargeWindow(res, seg.Start, seg.End, mw, out)
		}
	}
	out[ConstLabel] += a.Reg.ConstMW * float64(a.Span()) / 1000
	return out
}

// chargeWindow distributes mw over [start, end) according to res's activity
// timeline.
func (a *Analysis) chargeWindow(res core.ResourceID, start, end int64, mw float64, out map[core.Label]float64) {
	charge := func(l core.Label, us int64) {
		if us > 0 {
			out[l] += mw * float64(us) / 1000
		}
	}
	if tl := a.Single[res]; tl != nil {
		for _, s := range tl.Segs {
			lo, hi := maxi64(s.Start, start), mini64(s.End, end)
			if hi > lo {
				charge(a.ownerOf(s), hi-lo)
			}
		}
		return
	}
	if mt := a.Multi[res]; mt != nil {
		for _, s := range mt.Segs {
			lo, hi := maxi64(s.Start, start), mini64(s.End, end)
			if hi <= lo {
				continue
			}
			switch {
			case len(s.Labels) == 0:
				charge(ConstLabel, hi-lo) // unattributed hardware-on time
			case a.Opts.Split == SplitFirst:
				charge(s.Labels[0], hi-lo)
			default:
				for _, l := range s.Labels {
					out[l] += mw * float64(hi-lo) / 1000 / float64(len(s.Labels))
				}
			}
		}
		return
	}
	// No activity instrumentation on this resource: unattributed.
	charge(ConstLabel, end-start)
}

// TotalEnergyUJ returns the meter-observed energy over the span.
func (a *Analysis) TotalEnergyUJ() float64 {
	return float64(a.TotalPulses) * a.Trace.PulseUJ
}

// LabelsInUse returns every activity label that appears in the breakdowns,
// sorted, for stable report rendering.
func (a *Analysis) LabelsInUse() []core.Label {
	set := make(map[core.Label]struct{})
	for _, m := range a.TimeByActivity() {
		for l := range m {
			set[l] = struct{}{}
		}
	}
	out := make([]core.Label, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AveragePowerMW returns the mean measured power over the span.
func (a *Analysis) AveragePowerMW() float64 {
	span := a.Span()
	if span == 0 {
		return 0
	}
	return a.TotalEnergyUJ() / float64(span) * 1000
}

// AverageCurrentMA returns the mean measured current over the span.
func (a *Analysis) AverageCurrentMA() float64 {
	return a.AveragePowerMW() / float64(a.Trace.Volts)
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
