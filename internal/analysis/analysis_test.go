package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
)

// traceBuilder constructs synthetic logs with a simulated meter: current
// draws are registered per (res,state) and pulses accumulate accordingly.
type traceBuilder struct {
	entries []core.Entry
	now     uint32
	accUJ   float64
	pulseUJ float64
	volts   float64
	draws   map[[2]uint16]float64 // (res,state) -> uA
	states  map[core.ResourceID]core.PowerState
}

func newTraceBuilder() *traceBuilder {
	return &traceBuilder{
		pulseUJ: 8.33,
		volts:   3.0,
		draws:   make(map[[2]uint16]float64),
		states:  make(map[core.ResourceID]core.PowerState),
	}
}

func (b *traceBuilder) draw(res core.ResourceID, st core.PowerState, ua float64) {
	b.draws[[2]uint16{uint16(res), uint16(st)}] = ua
}

func (b *traceBuilder) currentUA() float64 {
	var total float64
	for res, st := range b.states {
		total += b.draws[[2]uint16{uint16(res), uint16(st)}]
	}
	return total
}

// advance moves time forward, integrating energy.
func (b *traceBuilder) advance(us uint32) {
	b.accUJ += b.currentUA() * b.volts * float64(us) * 1e-6
	b.now += us
}

func (b *traceBuilder) ic() uint32 { return uint32(b.accUJ / b.pulseUJ) }

func (b *traceBuilder) ps(res core.ResourceID, st core.PowerState) {
	b.entries = append(b.entries, core.Entry{
		Type: core.EntryPowerState, Res: res, Time: b.now, IC: b.ic(), Val: uint16(st),
	})
	b.states[res] = st
}

func (b *traceBuilder) act(typ core.EntryType, res core.ResourceID, l core.Label) {
	b.entries = append(b.entries, core.Entry{Type: typ, Res: res, Time: b.now, IC: b.ic(), Val: uint16(l)})
}

func (b *traceBuilder) marker() {
	b.entries = append(b.entries, core.Entry{Type: core.EntryMarker, Res: 0, Time: b.now, IC: b.ic(), Val: 0xFFFF})
}

func (b *traceBuilder) trace() *NodeTrace {
	return NewNodeTrace(1, b.entries, b.pulseUJ, 3.0)
}

const (
	resA core.ResourceID = 10
	resB core.ResourceID = 11
)

// buildTwoSinkTrace alternates two sinks through all four combinations,
// drawing 3000 and 1500 uA, on a 400 uA baseline.
func buildTwoSinkTrace() *traceBuilder {
	b := newTraceBuilder()
	b.draw(resA, 1, 3000)
	b.draw(resB, 1, 1500)
	b.draw(0, 0, 400) // baseline via resource 0 state 0
	b.states[0] = 0
	b.ps(resA, 0)
	b.ps(resB, 0)
	for cycle := 0; cycle < 4; cycle++ {
		b.advance(500_000)
		b.ps(resA, 1)
		b.advance(500_000)
		b.ps(resB, 1)
		b.advance(500_000)
		b.ps(resA, 0)
		b.advance(500_000)
		b.ps(resB, 0)
	}
	b.advance(500_000)
	b.marker()
	return b
}

func TestStateIntervalsPartitionTime(t *testing.T) {
	tr := buildTwoSinkTrace().trace()
	ivs := tr.StateIntervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	var total int64
	for i, iv := range ivs {
		if iv.End <= iv.Start {
			t.Errorf("interval %d empty", i)
		}
		if i > 0 && iv.Start != ivs[i-1].End {
			t.Errorf("gap between intervals %d and %d", i-1, i)
		}
		total += iv.Duration()
	}
	if total != tr.End()-tr.Start() {
		t.Errorf("intervals cover %d us, span is %d", total, tr.End()-tr.Start())
	}
}

func TestStateIntervalPulsesSumToTotal(t *testing.T) {
	tr := buildTwoSinkTrace().trace()
	var sum uint32
	for _, iv := range tr.StateIntervals() {
		sum += iv.Pulses
	}
	if sum != tr.TotalPulses() {
		t.Errorf("interval pulses %d != total %d", sum, tr.TotalPulses())
	}
}

func TestRegressionRecoversTwoSinks(t *testing.T) {
	tr := buildTwoSinkTrace().trace()
	reg, err := RunRegression(tr.StateIntervals(), tr.PulseUJ, DefaultRegressionOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Expect draws of 3 mA and 1.5 mA at 3 V: 9 mW and 4.5 mW.
	gotA := reg.PowerMW[Predictor{resA, 1}]
	gotB := reg.PowerMW[Predictor{resB, 1}]
	if math.Abs(gotA-9.0) > 0.3 {
		t.Errorf("sink A = %.3f mW, want 9.0", gotA)
	}
	if math.Abs(gotB-4.5) > 0.3 {
		t.Errorf("sink B = %.3f mW, want 4.5", gotB)
	}
	if math.Abs(reg.ConstMW-1.2) > 0.15 {
		t.Errorf("const = %.3f mW, want 1.2 (400 uA baseline)", reg.ConstMW)
	}
}

func TestRegressionGroupsByStateVector(t *testing.T) {
	tr := buildTwoSinkTrace().trace()
	reg, err := RunRegression(tr.StateIntervals(), tr.PulseUJ, DefaultRegressionOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Four distinct combinations: {}, {A}, {A,B}, {B}.
	if len(reg.Groups) != 4 {
		t.Errorf("groups = %d, want 4", len(reg.Groups))
	}
}

func TestRegressionMergesCollinearPredictors(t *testing.T) {
	// Two sinks that always switch together, over a nonzero baseline so
	// the all-off group still produces pulses.
	b := newTraceBuilder()
	b.draw(resA, 1, 1000)
	b.draw(resB, 1, 2000)
	b.draw(0, 0, 400)
	b.states[0] = 0
	b.ps(resA, 0)
	b.ps(resB, 0)
	for i := 0; i < 3; i++ {
		b.advance(1_000_000)
		b.ps(resA, 1)
		b.ps(resB, 1)
		b.advance(1_000_000)
		b.ps(resA, 0)
		b.ps(resB, 0)
	}
	b.advance(1_000_000)
	b.marker()
	tr := b.trace()
	reg, err := RunRegression(tr.StateIntervals(), tr.PulseUJ, DefaultRegressionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.MergedInto) != 1 {
		t.Fatalf("MergedInto = %v, want one merged predictor", reg.MergedInto)
	}
	// The representative carries the combined draw: 3 mA at 3 V = 9 mW.
	if mw := reg.PowerMW[Predictor{resA, 1}]; math.Abs(mw-9.0) > 0.5 {
		t.Errorf("merged draw = %.3f mW, want ~9.0", mw)
	}
}

func TestRegressionErrorsOnEmptyInput(t *testing.T) {
	if _, err := RunRegression(nil, 8.33, DefaultRegressionOptions()); err == nil {
		t.Error("empty input should fail")
	}
}

func TestAnalyzeRequiresEntries(t *testing.T) {
	tr := NewNodeTrace(1, nil, 8.33, 3.0)
	if _, err := Analyze(tr, core.NewDictionary(), DefaultOptions()); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestEnergyConservationSyntheticTrace(t *testing.T) {
	b := buildTwoSinkTrace()
	// Attach activity timelines: everything on resource A belongs to L1.
	tr := b.trace()
	dict := core.NewDictionary()
	a, err := Analyze(tr, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byRes, constUJ := a.EnergyByResource()
	var sum float64
	for _, uj := range byRes {
		sum += uj
	}
	sum += constUJ
	measured := a.TotalEnergyUJ()
	if rel := math.Abs(sum-measured) / measured; rel > 0.02 {
		t.Errorf("resource sum %.1f vs measured %.1f (rel %.4f)", sum, measured, rel)
	}
	if recErr := a.ReconstructionError(); recErr > 0.02 {
		t.Errorf("reconstruction error = %.4f", recErr)
	}
}

func TestActivityTimelineBasic(t *testing.T) {
	b := newTraceBuilder()
	l1 := core.MkLabel(1, 2)
	idle := core.MkLabel(1, 0)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(1000)
	b.act(core.EntryActivitySet, resA, l1)
	b.advance(2000)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(1000)
	b.marker()
	single, _ := BuildActivityTimelines(b.trace(), func(core.Label) bool { return false })
	tl := single[resA]
	if tl == nil || len(tl.Segs) != 3 {
		t.Fatalf("segments = %+v", tl)
	}
	if tl.Segs[1].Label != l1 || tl.Segs[1].End-tl.Segs[1].Start != 2000 {
		t.Errorf("middle segment = %+v", tl.Segs[1])
	}
}

func TestProxyBindingReassignsEpisode(t *testing.T) {
	b := newTraceBuilder()
	idle := core.MkLabel(1, 0)
	proxy := core.MkLabel(1, 7)
	remote := core.MkLabel(4, 2)
	isProxy := func(l core.Label) bool { return l == proxy }

	b.act(core.EntryActivitySet, 0, idle)
	b.advance(1000)
	// Proxy episode: proxy, idle gap, proxy again, then bind.
	b.act(core.EntryActivitySet, 0, proxy)
	b.advance(500)
	b.act(core.EntryActivitySet, 0, idle)
	b.advance(200)
	b.act(core.EntryActivitySet, 0, proxy)
	b.advance(300)
	b.act(core.EntryActivityBind, 0, remote)
	b.advance(400)
	b.act(core.EntryActivitySet, 0, idle)
	b.advance(1000)
	b.marker()

	single, _ := BuildActivityTimelines(b.trace(), isProxy)
	tl := single[0]
	var proxyOwned, remoteOwned int64
	for _, s := range tl.Segs {
		switch s.Owner {
		case proxy:
			proxyOwned += s.End - s.Start
		case remote:
			remoteOwned += s.End - s.Start
		}
	}
	// Both proxy segments (500+300) reassigned to remote, plus the post-
	// bind segment (400).
	if remoteOwned != 1200 {
		t.Errorf("remote-owned = %d us, want 1200", remoteOwned)
	}
	if proxyOwned != 0 {
		t.Errorf("proxy-owned = %d us, want 0 after binding", proxyOwned)
	}
	// Raw labels untouched: the figures still show the proxies.
	var rawProxy int64
	for _, s := range tl.Segs {
		if s.Label == proxy {
			rawProxy += s.End - s.Start
		}
	}
	if rawProxy != 800 {
		t.Errorf("raw proxy time = %d, want 800", rawProxy)
	}
}

func TestProxyEpisodeEndsAtRealActivity(t *testing.T) {
	b := newTraceBuilder()
	idle := core.MkLabel(1, 0)
	proxy := core.MkLabel(1, 7)
	app := core.MkLabel(1, 3)
	remote := core.MkLabel(4, 2)
	isProxy := func(l core.Label) bool { return l == proxy }

	b.act(core.EntryActivitySet, 0, idle)
	b.advance(1000)
	b.act(core.EntryActivitySet, 0, proxy) // unrelated earlier interrupt
	b.advance(500)
	b.act(core.EntryActivitySet, 0, app) // real activity closes the episode
	b.advance(700)
	b.act(core.EntryActivitySet, 0, proxy) // new episode
	b.advance(300)
	b.act(core.EntryActivityBind, 0, remote)
	b.advance(100)
	b.marker()

	single, _ := BuildActivityTimelines(b.trace(), isProxy)
	var earlyProxyOwner core.Label
	for _, s := range single[0].Segs {
		if s.Label == proxy {
			earlyProxyOwner = s.Owner
			break
		}
	}
	// The first proxy segment must NOT be stolen by the later bind.
	if earlyProxyOwner != proxy {
		t.Errorf("early proxy owned by %v, want %v (episode isolation)", earlyProxyOwner, proxy)
	}
}

func TestMultiActivityTimeline(t *testing.T) {
	b := newTraceBuilder()
	la, lb := core.MkLabel(1, 2), core.MkLabel(1, 3)
	b.act(core.EntryActivityAdd, resB, la)
	b.advance(1000)
	b.act(core.EntryActivityAdd, resB, lb)
	b.advance(2000)
	b.act(core.EntryActivityRemove, resB, la)
	b.advance(500)
	b.act(core.EntryActivityRemove, resB, lb)
	b.advance(100)
	b.marker()
	_, multi := BuildActivityTimelines(b.trace(), func(core.Label) bool { return false })
	mt := multi[resB]
	if mt == nil {
		t.Fatal("no multi timeline")
	}
	// Segments: {la} 1000, {la,lb} 2000, {lb} 500, {} 100.
	if len(mt.Segs) != 4 {
		t.Fatalf("segments = %d: %+v", len(mt.Segs), mt.Segs)
	}
	if len(mt.Segs[1].Labels) != 2 {
		t.Errorf("overlap segment labels = %v", mt.Segs[1].Labels)
	}
}

func TestSplitPoliciesConserveEnergy(t *testing.T) {
	// Resource B draws power while two activities share it; a baseline
	// keeps the off-groups measurable.
	b := newTraceBuilder()
	b.draw(resB, 1, 3000)
	b.draw(0, 0, 400)
	b.states[0] = 0
	la, lb := core.MkLabel(1, 2), core.MkLabel(1, 3)
	b.ps(resB, 0)
	b.advance(1000)
	b.ps(resB, 1)
	b.act(core.EntryActivityAdd, resB, la)
	b.advance(1_000_000)
	b.act(core.EntryActivityAdd, resB, lb)
	b.advance(2_000_000)
	b.act(core.EntryActivityRemove, resB, la)
	b.act(core.EntryActivityRemove, resB, lb)
	b.ps(resB, 0)
	b.advance(1_000_000)
	b.marker()
	tr := b.trace()
	dict := core.NewDictionary()

	for _, split := range []SplitPolicy{SplitEqual, SplitFirst} {
		opts := DefaultOptions()
		opts.Split = split
		a, err := Analyze(tr, dict, opts)
		if err != nil {
			t.Fatal(err)
		}
		byAct := a.EnergyByActivity()
		var sum float64
		for _, uj := range byAct {
			sum += uj
		}
		byRes, constUJ := a.EnergyByResource()
		var resSum float64
		for _, uj := range byRes {
			resSum += uj
		}
		resSum += constUJ
		if math.Abs(sum-resSum) > 1 {
			t.Errorf("split %v: activity sum %.1f != resource sum %.1f", split, sum, resSum)
		}
		// Under equal split, each activity gets half the overlap window;
		// under first-takes-all, la gets it all.
		onePhase := 9.0 * 1e6 / 1000 // 9 mW for 1 s in uJ
		overlap := 9.0 * 2e6 / 1000
		wantLa := onePhase + overlap/2
		if split == SplitFirst {
			wantLa = onePhase + overlap
		}
		if math.Abs(byAct[la]-wantLa) > 0.05*wantLa {
			t.Errorf("split %v: la = %.1f uJ, want ~%.1f", split, byAct[la], wantLa)
		}
	}
}

func TestTimeByActivityCountsWallTime(t *testing.T) {
	b := newTraceBuilder()
	l1 := core.MkLabel(1, 2)
	idle := core.MkLabel(1, 0)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(3000)
	b.act(core.EntryActivitySet, resA, l1)
	b.advance(5000)
	b.act(core.EntryActivitySet, resA, idle)
	b.advance(2000)
	b.marker()
	a, err := Analyze(b.trace(), core.NewDictionary(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	times := a.TimeByActivity()[resA]
	if times[l1] != 5000 {
		t.Errorf("l1 time = %d, want 5000", times[l1])
	}
	if times[idle] != 5000 {
		t.Errorf("idle time = %d, want 5000 (3000+2000)", times[idle])
	}
}

func TestUnweightedOptionChangesFit(t *testing.T) {
	tr := buildTwoSinkTrace().trace()
	ivs := tr.StateIntervals()
	w, err := RunRegression(ivs, tr.PulseUJ, RegressionOptions{Weighted: true, IncludeConstant: true})
	if err != nil {
		t.Fatal(err)
	}
	u, err := RunRegression(ivs, tr.PulseUJ, RegressionOptions{Weighted: false, IncludeConstant: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both should be near truth on this clean trace; they must at least
	// both produce finite results.
	for _, reg := range []*Regression{w, u} {
		for p, mw := range reg.PowerMW {
			if math.IsNaN(mw) || math.IsInf(mw, 0) {
				t.Errorf("non-finite coefficient for %v", p)
			}
		}
	}
}
