package analysis

import (
	"sort"

	"repro/internal/core"
)

// Segment is one stretch of a single-activity resource's timeline. Label is
// the raw label the device carried (what the figures show); Owner is the
// label after proxy resolution (what accounting charges), which differs only
// when a later bind entry reassigned a proxy episode.
type Segment struct {
	Start, End int64
	Label      core.Label
	Owner      core.Label
}

// ActTimeline is a single-activity resource's activity history.
type ActTimeline struct {
	Res  core.ResourceID
	Segs []Segment
}

// MultiSegment is one stretch of a multi-activity resource's timeline with
// its concurrent label set.
type MultiSegment struct {
	Start, End int64
	Labels     []core.Label // sorted
}

// MultiTimeline is a multi-activity resource's history.
type MultiTimeline struct {
	Res  core.ResourceID
	Segs []MultiSegment
}

// BuildActivityTimelines reconstructs per-resource activity histories from
// the log. isProxy identifies proxy labels (from the dictionary); bind
// entries reassign the owner of the pending proxy episode on that resource,
// implementing the paper's "the resources used by a proxy activity are
// accounted for separately, and then assigned to the real activity as soon
// as the system can determine what this activity is".
func BuildActivityTimelines(t *NodeTrace, isProxy func(core.Label) bool) (map[core.ResourceID]*ActTimeline, map[core.ResourceID]*MultiTimeline) {
	single := make(map[core.ResourceID]*ActTimeline)
	multi := make(map[core.ResourceID]*MultiTimeline)

	type openSeg struct {
		start   int64
		label   core.Label
		pending []int // indices of segments in the unresolved proxy episode
	}
	openSingle := make(map[core.ResourceID]*openSeg)
	openMulti := make(map[core.ResourceID]*struct {
		start  int64
		labels map[core.Label]struct{}
	})

	end := t.End()

	closeSingle := func(res core.ResourceID, at int64) *openSeg {
		os := openSingle[res]
		if os == nil {
			return nil
		}
		tl := single[res]
		if tl == nil {
			tl = &ActTimeline{Res: res}
			single[res] = tl
		}
		if at > os.start {
			tl.Segs = append(tl.Segs, Segment{Start: os.start, End: at, Label: os.label, Owner: os.label})
		}
		return os
	}

	for i, e := range t.Entries {
		at := t.Times[i]
		switch e.Type {
		case core.EntryActivitySet, core.EntryActivityBind:
			label := e.Label()
			os := closeSingle(e.Res, at)
			tl := single[e.Res]
			if tl == nil {
				tl = &ActTimeline{Res: e.Res}
				single[e.Res] = tl
			}
			next := &openSeg{start: at, label: label}
			if os != nil {
				next.pending = os.pending
				// The closed segment may be part of a proxy episode.
				if len(tl.Segs) > 0 && tl.Segs[len(tl.Segs)-1].End == at {
					closedIdx := len(tl.Segs) - 1
					closed := tl.Segs[closedIdx]
					if isProxy(closed.Label) {
						next.pending = append(next.pending, closedIdx)
					}
				}
			}
			switch {
			case e.Type == core.EntryActivityBind:
				// Reassign the pending episode to the bound activity.
				for _, idx := range next.pending {
					tl.Segs[idx].Owner = label
				}
				next.pending = nil
			case !isProxy(label) && !label.IsIdle():
				// A real activity closes the episode: pending proxy
				// segments keep their own labels.
				next.pending = nil
			}
			openSingle[e.Res] = next

		case core.EntryActivityAdd, core.EntryActivityRemove:
			om := openMulti[e.Res]
			mt := multi[e.Res]
			if mt == nil {
				mt = &MultiTimeline{Res: e.Res}
				multi[e.Res] = mt
			}
			if om == nil {
				om = &struct {
					start  int64
					labels map[core.Label]struct{}
				}{start: at, labels: make(map[core.Label]struct{})}
				openMulti[e.Res] = om
			}
			if at > om.start {
				mt.Segs = append(mt.Segs, MultiSegment{Start: om.start, End: at, Labels: sortedLabels(om.labels)})
			}
			if e.Type == core.EntryActivityAdd {
				om.labels[e.Label()] = struct{}{}
			} else {
				delete(om.labels, e.Label())
			}
			om.start = at
		}
	}

	// Close everything at the end of the trace.
	for res, os := range openSingle {
		tl := single[res]
		if end > os.start {
			tl.Segs = append(tl.Segs, Segment{Start: os.start, End: end, Label: os.label, Owner: os.label})
		}
	}
	for res, om := range openMulti {
		mt := multi[res]
		if end > om.start {
			mt.Segs = append(mt.Segs, MultiSegment{Start: om.start, End: end, Labels: sortedLabels(om.labels)})
		}
	}
	return single, multi
}

func sortedLabels(set map[core.Label]struct{}) []core.Label {
	out := make([]core.Label, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StateSegment is one stretch of a resource's power-state history.
type StateSegment struct {
	Start, End int64
	State      core.PowerState
}

// BuildStateTimelines reconstructs per-resource power-state histories.
func BuildStateTimelines(t *NodeTrace) map[core.ResourceID][]StateSegment {
	out := make(map[core.ResourceID][]StateSegment)
	open := make(map[core.ResourceID]*StateSegment)
	end := t.End()
	for i, e := range t.Entries {
		if e.Type != core.EntryPowerState {
			continue
		}
		at := t.Times[i]
		if seg := open[e.Res]; seg != nil {
			if at > seg.Start {
				seg.End = at
				out[e.Res] = append(out[e.Res], *seg)
			}
		}
		open[e.Res] = &StateSegment{Start: at, State: e.State()}
	}
	for res, seg := range open {
		if end > seg.Start {
			seg.End = end
			out[res] = append(out[res], *seg)
		}
	}
	return out
}
