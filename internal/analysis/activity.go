package analysis

import (
	"sort"

	"repro/internal/core"
)

// Segment is one stretch of a single-activity resource's timeline. Label is
// the raw label the device carried (what the figures show); Owner is the
// label after proxy resolution (what accounting charges), which differs only
// when a later bind entry reassigned a proxy episode.
type Segment struct {
	Start, End int64
	Label      core.Label
	Owner      core.Label
}

// ActTimeline is a single-activity resource's activity history.
type ActTimeline struct {
	Res  core.ResourceID
	Segs []Segment
}

// MultiSegment is one stretch of a multi-activity resource's timeline with
// its concurrent label set.
type MultiSegment struct {
	Start, End int64
	Labels     []core.Label // sorted
}

// MultiTimeline is a multi-activity resource's history.
type MultiTimeline struct {
	Res  core.ResourceID
	Segs []MultiSegment
}

// openSeg is a single-activity segment still in progress.
type openSeg struct {
	start   int64
	label   core.Label
	pending []int // indices of segments in the unresolved proxy episode
}

// openMultiSeg is a multi-activity segment still in progress.
type openMultiSeg struct {
	start  int64
	labels map[core.Label]struct{}
}

// TimelineBuilder reconstructs per-resource activity histories from an event
// stream incrementally, one entry at a time — the single-pass core behind
// BuildActivityTimelines. isProxy identifies proxy labels (from the
// dictionary); bind entries reassign the owner of the pending proxy episode
// on that resource, implementing the paper's "the resources used by a proxy
// activity are accounted for separately, and then assigned to the real
// activity as soon as the system can determine what this activity is".
type TimelineBuilder struct {
	isProxy    func(core.Label) bool
	single     map[core.ResourceID]*ActTimeline
	multi      map[core.ResourceID]*MultiTimeline
	openSingle map[core.ResourceID]*openSeg
	openMulti  map[core.ResourceID]*openMultiSeg
}

// NewTimelineBuilder returns an empty builder.
func NewTimelineBuilder(isProxy func(core.Label) bool) *TimelineBuilder {
	return &TimelineBuilder{
		isProxy:    isProxy,
		single:     make(map[core.ResourceID]*ActTimeline),
		multi:      make(map[core.ResourceID]*MultiTimeline),
		openSingle: make(map[core.ResourceID]*openSeg),
		openMulti:  make(map[core.ResourceID]*openMultiSeg),
	}
}

// closeSingle closes the open segment on res at the given time, if any.
func (b *TimelineBuilder) closeSingle(res core.ResourceID, at int64) *openSeg {
	os := b.openSingle[res]
	if os == nil {
		return nil
	}
	tl := b.single[res]
	if tl == nil {
		tl = &ActTimeline{Res: res}
		b.single[res] = tl
	}
	if at > os.start {
		tl.Segs = append(tl.Segs, Segment{Start: os.start, End: at, Label: os.label, Owner: os.label})
	}
	return os
}

// Add consumes the next entry, stamped with its unwrapped time. Entries that
// are not activity events are ignored.
func (b *TimelineBuilder) Add(e core.Entry, at int64) {
	switch e.Type {
	case core.EntryActivitySet, core.EntryActivityBind:
		label := e.Label()
		os := b.closeSingle(e.Res, at)
		tl := b.single[e.Res]
		if tl == nil {
			tl = &ActTimeline{Res: e.Res}
			b.single[e.Res] = tl
		}
		next := &openSeg{start: at, label: label}
		if os != nil {
			next.pending = os.pending
			// The closed segment may be part of a proxy episode.
			if len(tl.Segs) > 0 && tl.Segs[len(tl.Segs)-1].End == at {
				closedIdx := len(tl.Segs) - 1
				closed := tl.Segs[closedIdx]
				if b.isProxy(closed.Label) {
					next.pending = append(next.pending, closedIdx)
				}
			}
		}
		switch {
		case e.Type == core.EntryActivityBind:
			// Reassign the pending episode to the bound activity.
			for _, idx := range next.pending {
				tl.Segs[idx].Owner = label
			}
			next.pending = nil
		case !b.isProxy(label) && !label.IsIdle():
			// A real activity closes the episode: pending proxy
			// segments keep their own labels.
			next.pending = nil
		}
		b.openSingle[e.Res] = next

	case core.EntryActivityAdd, core.EntryActivityRemove:
		om := b.openMulti[e.Res]
		mt := b.multi[e.Res]
		if mt == nil {
			mt = &MultiTimeline{Res: e.Res}
			b.multi[e.Res] = mt
		}
		if om == nil {
			om = &openMultiSeg{start: at, labels: make(map[core.Label]struct{})}
			b.openMulti[e.Res] = om
		}
		if at > om.start {
			mt.Segs = append(mt.Segs, MultiSegment{Start: om.start, End: at, Labels: sortedLabels(om.labels)})
		}
		if e.Type == core.EntryActivityAdd {
			om.labels[e.Label()] = struct{}{}
		} else {
			delete(om.labels, e.Label())
		}
		om.start = at
	}
}

// Finish closes every open segment at the given end time and returns the
// completed timelines. The builder must not be used afterwards.
func (b *TimelineBuilder) Finish(end int64) (map[core.ResourceID]*ActTimeline, map[core.ResourceID]*MultiTimeline) {
	for res, os := range b.openSingle {
		tl := b.single[res]
		if end > os.start {
			tl.Segs = append(tl.Segs, Segment{Start: os.start, End: end, Label: os.label, Owner: os.label})
		}
	}
	for res, om := range b.openMulti {
		mt := b.multi[res]
		if end > om.start {
			mt.Segs = append(mt.Segs, MultiSegment{Start: om.start, End: end, Labels: sortedLabels(om.labels)})
		}
	}
	return b.single, b.multi
}

// BuildActivityTimelines reconstructs per-resource activity histories from
// the log — the batch wrapper over TimelineBuilder.
func BuildActivityTimelines(t *NodeTrace, isProxy func(core.Label) bool) (map[core.ResourceID]*ActTimeline, map[core.ResourceID]*MultiTimeline) {
	b := NewTimelineBuilder(isProxy)
	for i, e := range t.Entries {
		b.Add(e, t.Times[i])
	}
	return b.Finish(t.End())
}

func sortedLabels(set map[core.Label]struct{}) []core.Label {
	out := make([]core.Label, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StateSegment is one stretch of a resource's power-state history.
type StateSegment struct {
	Start, End int64
	State      core.PowerState
}

// StateTimelineBuilder reconstructs per-resource power-state histories from
// an event stream incrementally.
type StateTimelineBuilder struct {
	out  map[core.ResourceID][]StateSegment
	open map[core.ResourceID]StateSegment // End is unset while open
}

// NewStateTimelineBuilder returns an empty builder.
func NewStateTimelineBuilder() *StateTimelineBuilder {
	return &StateTimelineBuilder{
		out:  make(map[core.ResourceID][]StateSegment),
		open: make(map[core.ResourceID]StateSegment),
	}
}

// Add consumes the next entry; non-power-state entries are ignored.
func (b *StateTimelineBuilder) Add(e core.Entry, at int64) {
	if e.Type != core.EntryPowerState {
		return
	}
	if seg, ok := b.open[e.Res]; ok && at > seg.Start {
		seg.End = at
		b.out[e.Res] = append(b.out[e.Res], seg)
	}
	b.open[e.Res] = StateSegment{Start: at, State: e.State()}
}

// Finish closes every open segment at the given end time and returns the
// completed timelines.
func (b *StateTimelineBuilder) Finish(end int64) map[core.ResourceID][]StateSegment {
	for res, seg := range b.open {
		if end > seg.Start {
			seg.End = end
			b.out[res] = append(b.out[res], seg)
		}
	}
	return b.out
}

// BuildStateTimelines reconstructs per-resource power-state histories — the
// batch wrapper over StateTimelineBuilder.
func BuildStateTimelines(t *NodeTrace) map[core.ResourceID][]StateSegment {
	b := NewStateTimelineBuilder()
	for i, e := range t.Entries {
		b.Add(e, t.Times[i])
	}
	return b.Finish(t.End())
}
