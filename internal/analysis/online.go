package analysis

import (
	"sort"

	"repro/internal/core"
)

// OnlineAccountant implements the paper's proposed real-time tracking
// extension (Section 5.3): instead of logging every event for offline
// processing, it folds the event stream into fixed-size per-activity
// accumulators of time and energy on the node, "an always on, network-wide
// energy profiler analogous to top".
//
// It consumes the same event stream a log sink would (implement core.Sink or
// feed entries manually), tracking for every resource the current activity
// and charging elapsed time and measured energy to it as events arrive.
// Energy between two events is attributed to the activities holding
// resources during that gap, split by the share policy over the resources'
// current draw estimate.
//
// Memory is O(activities x resources) regardless of run length — the
// trade-off against full logs discussed in Section 5.1 (logging vs
// counting).
type OnlineAccountant struct {
	node    core.NodeID
	pulseUJ float64

	// powerModel estimates each (res,state) draw in mW, typically from a
	// previous offline regression or the datasheet; used to apportion the
	// aggregate measured energy between concurrently active resources.
	powerModel map[Predictor]float64

	lastTime uint32
	lastIC   uint32
	started  bool

	// Current state per resource.
	curState map[core.ResourceID]core.PowerState
	curAct   map[core.ResourceID]core.Label
	curMulti map[core.ResourceID]map[core.Label]struct{}

	timeUS   map[core.Label]int64
	energyUJ map[core.Label]float64
	baseUJ   float64 // energy not attributable to any modeled resource

	// sortedRes caches curState's keys in ascending order (resources are
	// only ever added), and shares is charge's reusable scratch buffer —
	// together they keep the per-event path allocation-free.
	sortedRes []core.ResourceID
	shares    []share

	events uint64
}

type share struct {
	labels []core.Label
	mw     float64
}

// NewOnlineAccountant creates an accountant for one node. powerModel may be
// nil, in which case all measured energy lands in the Baseline bucket and
// only time is attributed per activity.
func NewOnlineAccountant(node core.NodeID, pulseUJ float64, powerModel map[Predictor]float64) *OnlineAccountant {
	return &OnlineAccountant{
		node:       node,
		pulseUJ:    pulseUJ,
		powerModel: powerModel,
		curState:   make(map[core.ResourceID]core.PowerState),
		curAct:     make(map[core.ResourceID]core.Label),
		curMulti:   make(map[core.ResourceID]map[core.Label]struct{}),
		timeUS:     make(map[core.Label]int64),
		energyUJ:   make(map[core.Label]float64),
	}
}

// Record implements core.Sink: it consumes one event and never rejects it.
func (o *OnlineAccountant) Record(e core.Entry) bool {
	o.events++
	if o.started {
		dt := int64(e.Time - o.lastTime) // wraps correctly in uint32 space
		dE := float64(e.IC-o.lastIC) * o.pulseUJ
		if dt > 0 {
			o.charge(dt, dE)
		} else {
			o.baseUJ += dE
		}
	}
	o.started = true
	o.lastTime = e.Time
	o.lastIC = e.IC
	o.observe(e)
	return true
}

// RecordBatch implements core.BatchSink, folding a whole batch into the
// accumulators.
func (o *OnlineAccountant) RecordBatch(entries []core.Entry) int {
	for _, e := range entries {
		o.Record(e)
	}
	return len(entries)
}

// charge distributes the interval's time and energy.
func (o *OnlineAccountant) charge(dtUS int64, dUJ float64) {
	// Wall time accrues to the CPU's current activity: the CPU is what the
	// paper's tables report, so only resource CPU time counts toward the
	// per-activity time totals here (resource 0 by convention of the
	// platform tables).
	if l, ok := o.curAct[0]; ok {
		o.timeUS[l] += dtUS
	}
	// Energy: apportioned by the power model over active states. With no
	// model there is nothing to apportion against — all energy is baseline.
	if len(o.powerModel) == 0 {
		o.baseUJ += dUJ
		return
	}
	var modeledMW float64
	shares := o.shares[:0]
	for _, res := range o.sortedRes {
		st := o.curState[res]
		if st == 0 {
			continue
		}
		mw, ok := o.powerModel[Predictor{res, st}]
		if !ok || mw <= 0 {
			continue
		}
		modeledMW += mw
		// Grow into the retained backing array so each slot's labels slice
		// keeps its capacity across events — steady state allocates nothing.
		if len(shares) < cap(shares) {
			shares = shares[:len(shares)+1]
		} else {
			shares = append(shares, share{})
		}
		s := &shares[len(shares)-1]
		s.mw = mw
		s.labels = s.labels[:0]
		if set, ok := o.curMulti[res]; ok && len(set) > 0 {
			for l := range set {
				s.labels = append(s.labels, l)
			}
			sort.Slice(s.labels, func(i, j int) bool { return s.labels[i] < s.labels[j] })
		} else if l, ok := o.curAct[res]; ok {
			s.labels = append(s.labels, l)
		}
	}
	o.shares = shares

	if modeledMW <= 0 || dUJ <= 0 {
		o.baseUJ += dUJ
		return
	}
	// The modeled fraction of the measured energy is split across active
	// resources proportionally to their modeled draw; the remainder
	// (baseline, model error) stays unattributed.
	modeledUJ := modeledMW * float64(dtUS) / 1000
	if modeledUJ > dUJ {
		modeledUJ = dUJ
	}
	o.baseUJ += dUJ - modeledUJ
	for _, s := range shares {
		part := modeledUJ * s.mw / modeledMW
		switch {
		case len(s.labels) == 0:
			o.baseUJ += part
		default:
			for _, l := range s.labels {
				o.energyUJ[l] += part / float64(len(s.labels))
			}
		}
	}
}

// observe applies the activity bookkeeping of one entry.
func (o *OnlineAccountant) observe(e core.Entry) {
	switch e.Type {
	case core.EntryPowerState:
		if _, seen := o.curState[e.Res]; !seen {
			o.sortedRes = insertResSorted(o.sortedRes, e.Res)
		}
		o.curState[e.Res] = e.State()
	case core.EntryActivitySet, core.EntryActivityBind:
		o.curAct[e.Res] = e.Label()
	case core.EntryActivityAdd:
		set := o.curMulti[e.Res]
		if set == nil {
			set = make(map[core.Label]struct{})
			o.curMulti[e.Res] = set
		}
		set[e.Label()] = struct{}{}
	case core.EntryActivityRemove:
		delete(o.curMulti[e.Res], e.Label())
	}
}

// TimeUS returns the accumulated wall time per activity (CPU view).
func (o *OnlineAccountant) TimeUS() map[core.Label]int64 {
	out := make(map[core.Label]int64, len(o.timeUS))
	for k, v := range o.timeUS {
		out[k] = v
	}
	return out
}

// EnergyUJ returns the accumulated attributed energy per activity.
func (o *OnlineAccountant) EnergyUJ() map[core.Label]float64 {
	out := make(map[core.Label]float64, len(o.energyUJ))
	for k, v := range o.energyUJ {
		out[k] = v
	}
	return out
}

// BaselineUJ returns energy not attributed to any activity (constant draw
// plus model error).
func (o *OnlineAccountant) BaselineUJ() float64 { return o.baseUJ }

// TotalUJ returns all energy seen.
func (o *OnlineAccountant) TotalUJ() float64 {
	total := o.baseUJ
	for _, v := range o.energyUJ {
		total += v
	}
	return total
}

// Events returns how many events were consumed.
func (o *OnlineAccountant) Events() uint64 { return o.events }

// Top renders the accumulators like the Unix top utility, sorted by energy.
func (o *OnlineAccountant) Top(dict *core.Dictionary, n int) []TopRow {
	rows := make([]TopRow, 0, len(o.energyUJ))
	labels := make([]core.Label, 0, len(o.energyUJ))
	for l := range o.energyUJ {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return o.energyUJ[labels[i]] > o.energyUJ[labels[j]] })
	for _, l := range labels {
		rows = append(rows, TopRow{
			Label:    l,
			Name:     dict.LabelName(l),
			EnergyUJ: o.energyUJ[l],
			TimeUS:   o.timeUS[l],
		})
		if n > 0 && len(rows) >= n {
			break
		}
	}
	return rows
}

// TopRow is one line of the energy-top display.
type TopRow struct {
	Label    core.Label
	Name     string
	EnergyUJ float64
	TimeUS   int64
}
