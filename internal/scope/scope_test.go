package scope

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestMeanCurrentPiecewise(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(0, 1000)
	s.CurrentChanged(500_000, 3000)
	// Mean over [0, 1s) = (1mA*0.5 + 3mA*0.5) = 2 mA.
	if m := s.MeanCurrent(0, units.Second); math.Abs(float64(m)-2000) > 1e-9 {
		t.Errorf("mean = %v uA, want 2000", m)
	}
	// Mean over the second half only.
	if m := s.MeanCurrent(500_000, units.Second); math.Abs(float64(m)-3000) > 1e-9 {
		t.Errorf("mean = %v uA, want 3000", m)
	}
	// Window straddling a step.
	if m := s.MeanCurrent(250_000, 750_000); math.Abs(float64(m)-2000) > 1e-9 {
		t.Errorf("mean = %v uA, want 2000", m)
	}
}

func TestMeanCurrentBeforeFirstStepIsZero(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(1000, 5000)
	if m := s.MeanCurrent(0, 1000); m != 0 {
		t.Errorf("mean before first step = %v", m)
	}
}

func TestSameInstantStepsKeepLast(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(100, 1000)
	s.CurrentChanged(100, 2000)
	s.CurrentChanged(100, 7000)
	if len(s.Steps()) != 1 {
		t.Fatalf("steps = %d, want 1 (coalesced)", len(s.Steps()))
	}
	if m := s.MeanCurrent(100, 200); math.Abs(float64(m)-7000) > 1e-9 {
		t.Errorf("mean = %v, want 7000", m)
	}
}

func TestEnergyMatchesChargeTimesVoltage(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(0, 2000)
	// 2 mA for 1 s at 3 V: charge 2 mC, energy 6 mJ.
	uc := s.ChargeMicroCoulombs(0, units.Second)
	if math.Abs(uc-2000) > 1e-9 {
		t.Errorf("charge = %v uC, want 2000", uc)
	}
	uj := s.EnergyMicroJoules(3.0, 0, units.Second)
	if math.Abs(uj-6000) > 1e-9 {
		t.Errorf("energy = %v uJ, want 6000", uj)
	}
}

func TestEmptyWindow(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(0, 1000)
	if s.ChargeMicroCoulombs(100, 100) != 0 {
		t.Error("empty window should integrate to 0")
	}
	if s.MeanCurrent(100, 50) != 0 {
		t.Error("inverted window should report 0")
	}
}

func TestSamplesNoiseStatistics(t *testing.T) {
	s := New(0.01, 42) // 1% ripple
	s.CurrentChanged(0, 10000)
	samples := s.Samples(0, units.Second, units.Millisecond)
	if len(samples) != 1000 {
		t.Fatalf("samples = %d", len(samples))
	}
	var sum, sum2 float64
	for _, smp := range samples {
		v := float64(smp.I)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(len(samples))
	sd := math.Sqrt(sum2/float64(len(samples)) - mean*mean)
	if math.Abs(mean-10000) > 50 {
		t.Errorf("sample mean = %v, want ~10000", mean)
	}
	if sd < 50 || sd > 200 {
		t.Errorf("sample sd = %v, want ~100 (1%%)", sd)
	}
}

func TestMeasuredMeanIsNoisyButUnbiased(t *testing.T) {
	s := New(0.005, 7)
	s.CurrentChanged(0, 2500)
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		sum += float64(s.MeasuredMean(0, units.Second))
	}
	if mean := sum / n; math.Abs(mean-2500) > 10 {
		t.Errorf("measured mean = %v, want ~2500", mean)
	}
}

func TestPulseTimesMatchEnergyRate(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(0, 2777) // ~1 pulse per ms at 3 V
	pulses := s.PulseTimes(3.0, 8.33, 0, 10_000)
	if len(pulses) != 10 {
		t.Fatalf("pulses = %d, want 10", len(pulses))
	}
	// Uniform spacing ~1000 us.
	for i := 1; i < len(pulses); i++ {
		gap := pulses[i] - pulses[i-1]
		if gap < 995 || gap > 1005 {
			t.Errorf("gap %d = %v, want ~1000", i, gap)
		}
	}
}

func TestPulseTimesAcrossStateChange(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(0, 2777)      // 1 pulse/ms
	s.CurrentChanged(5000, 2*2777) // 2 pulses/ms
	pulses := s.PulseTimes(3.0, 8.33, 0, 10_000)
	// 5 pulses in the first 5 ms, ~10 in the next 5 ms.
	if len(pulses) < 14 || len(pulses) > 16 {
		t.Errorf("pulses = %d, want ~15", len(pulses))
	}
	// Frequency doubles after the step: gaps shrink.
	var early, late units.Ticks
	for i := 1; i < len(pulses); i++ {
		if pulses[i] < 5000 {
			early = pulses[i] - pulses[i-1]
		} else if pulses[i-1] >= 5000 {
			late = pulses[i] - pulses[i-1]
			break
		}
	}
	if late == 0 || early == 0 || late > early {
		t.Errorf("gaps: early=%v late=%v, want late < early", early, late)
	}
}

func TestPulseTimesZeroCurrent(t *testing.T) {
	s := New(0, 1)
	s.CurrentChanged(0, 0)
	if got := s.PulseTimes(3.0, 8.33, 0, units.Second); len(got) != 0 {
		t.Errorf("pulses with no draw = %d", len(got))
	}
}
