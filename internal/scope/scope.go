// Package scope models the measurement bench the paper calibrated against:
// a digital oscilloscope sensing the mote's supply current through a shunt
// resistor. It records the exact piecewise-constant current waveform of the
// simulated board and can report per-interval means, sampled traces with
// realistic ripple noise, and the iCount pulse instants implied by the
// waveform (Figure 10).
package scope

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Step is one segment boundary of the piecewise-constant current waveform:
// from T onward the board draws I.
type Step struct {
	T units.Ticks
	I units.MicroAmps
}

// Sample is one noisy oscilloscope reading.
type Sample struct {
	T units.Ticks
	I units.MicroAmps
}

// Scope records the board's true current waveform. It implements
// power.CurrentListener.
type Scope struct {
	steps []Step

	// rippleFrac is the relative standard deviation of sampling noise
	// applied by Samples and MeasuredMean; the underlying waveform stays
	// exact.
	rippleFrac float64
	rng        *sim.RNG
}

// New returns a scope with the given sampling ripple (for example 0.005 for
// 0.5% RMS noise, typical of a shunt measurement) and noise seed.
func New(rippleFrac float64, seed uint64) *Scope {
	// Pre-size the waveform so the first few edges of every node — the 10k-
	// node boot storm — do not each grow a tiny slice.
	return &Scope{steps: make([]Step, 0, 16), rippleFrac: rippleFrac, rng: sim.NewRNG(seed)}
}

// CurrentChanged implements power.CurrentListener.
func (s *Scope) CurrentChanged(t units.Ticks, total units.MicroAmps) {
	if n := len(s.steps); n > 0 && s.steps[n-1].T == t {
		// Several sinks switched at one instant; keep the final value.
		s.steps[n-1].I = total
		return
	}
	s.steps = append(s.steps, Step{T: t, I: total})
}

// Steps returns the recorded waveform.
func (s *Scope) Steps() []Step { return s.steps }

// currentAt returns the draw in effect at time t (0 before the first step).
func (s *Scope) currentAt(t units.Ticks) units.MicroAmps {
	// Binary search for the last step with T <= t.
	lo, hi := 0, len(s.steps)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.steps[mid].T <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.steps[lo-1].I
}

// ChargeMicroCoulombs integrates current over [t0, t1) and returns the
// charge in microcoulombs (uA * s).
func (s *Scope) ChargeMicroCoulombs(t0, t1 units.Ticks) float64 {
	if t1 <= t0 {
		return 0
	}
	var total float64 // uA * us
	cur := s.currentAt(t0)
	prev := t0
	for _, st := range s.steps {
		if st.T <= t0 {
			continue
		}
		if st.T >= t1 {
			break
		}
		total += float64(cur) * float64(st.T-prev)
		cur = st.I
		prev = st.T
	}
	total += float64(cur) * float64(t1-prev)
	return total / 1e6 // uA*us -> uA*s = uC
}

// MeanCurrent returns the exact average current over [t0, t1).
func (s *Scope) MeanCurrent(t0, t1 units.Ticks) units.MicroAmps {
	if t1 <= t0 {
		return 0
	}
	uc := s.ChargeMicroCoulombs(t0, t1)
	return units.MicroAmps(uc / (t1 - t0).Seconds())
}

// MeasuredMean returns MeanCurrent with one multiplicative noise draw, as a
// bench measurement of a steady state would see.
func (s *Scope) MeasuredMean(t0, t1 units.Ticks) units.MicroAmps {
	m := s.MeanCurrent(t0, t1)
	return m * units.MicroAmps(1+s.rippleFrac*s.rng.Norm())
}

// EnergyMicroJoules integrates power at volts over [t0, t1).
func (s *Scope) EnergyMicroJoules(volts units.Volts, t0, t1 units.Ticks) float64 {
	return s.ChargeMicroCoulombs(t0, t1) * float64(volts) // uC * V = uJ
}

// Samples returns a noisy sampled trace over [t0, t1) with period dt,
// modeling the oscilloscope display of Figures 10 and 11(c).
func (s *Scope) Samples(t0, t1, dt units.Ticks) []Sample {
	if dt <= 0 {
		dt = units.Millisecond
	}
	var out []Sample
	for t := t0; t < t1; t += dt {
		i := s.currentAt(t)
		noisy := i * units.MicroAmps(1+s.rippleFrac*s.rng.Norm())
		out = append(out, Sample{T: t, I: noisy})
	}
	return out
}

// PulseTimes returns the instants at which an ideal iCount meter fed by this
// waveform would emit pulses in [t0, t1): each time the accumulated energy
// crosses a multiple of pulseUJ. This reproduces the pulse train visible in
// the oscilloscope traces of Figure 10.
func (s *Scope) PulseTimes(volts units.Volts, pulseUJ float64, t0, t1 units.Ticks) []units.Ticks {
	var out []units.Ticks
	var acc float64 // uJ since t0
	cur := s.currentAt(t0)
	prev := t0
	emit := func(from units.Ticks, i units.MicroAmps, until units.Ticks) {
		if i <= 0 || until <= from {
			acc += float64(units.Energy(i, volts, until-from))
			return
		}
		rateUJperTick := float64(i) * float64(volts) * 1e-6
		t := from
		for {
			need := pulseUJ - acc
			dt := units.Ticks(need / rateUJperTick)
			if float64(dt)*rateUJperTick < need {
				dt++
			}
			if t+dt > until {
				acc += rateUJperTick * float64(until-t)
				return
			}
			t += dt
			acc = 0
			out = append(out, t)
		}
	}
	for _, st := range s.steps {
		if st.T <= t0 {
			continue
		}
		if st.T >= t1 {
			break
		}
		emit(prev, cur, st.T)
		cur = st.I
		prev = st.T
	}
	emit(prev, cur, t1)
	return out
}
