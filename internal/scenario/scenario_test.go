package scenario_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps" // registers the paper's workloads
	"repro/internal/scenario"
	"repro/internal/units"
)

// lplMatrix is the shared small-but-real test matrix: an LPL interference
// study swept over two channels and two check periods across replicated
// seeds (2 x 2 x seeds runs, a few simulated seconds each).
func lplMatrix(seeds int) scenario.Matrix {
	return scenario.Matrix{
		Base: scenario.Spec{
			App:        "lpl",
			Seed:       1,
			DurationUS: int64(3 * units.Second),
		},
		Sweep: map[string][]any{
			"channel":         {17, 26},
			"check_period_us": {250000, 500000},
		},
		Seeds: seeds,
	}
}

func TestRegistryHasPaperApps(t *testing.T) {
	got := scenario.Apps()
	for _, want := range []string{"blink", "bounce", "lpl", "relay", "sensesend", "timerbug", "dma"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("app %q not registered (have %v)", want, got)
		}
	}
	// Keep the apps import honest: a registered app must build.
	in, err := scenario.Build(scenario.Spec{App: "blink", Seed: 1, DurationUS: int64(units.Second)})
	if err != nil {
		t.Fatalf("build blink: %v", err)
	}
	if _, ok := in.App.(*apps.Blink); !ok {
		t.Fatalf("blink instance app = %T, want *apps.Blink", in.App)
	}
}

func TestBuildUnknownApp(t *testing.T) {
	_, err := scenario.Build(scenario.Spec{App: "no-such-app", DurationUS: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown app") {
		t.Fatalf("err = %v, want unknown app", err)
	}
}

func TestExpandMatrix(t *testing.T) {
	m := lplMatrix(3)
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*3 {
		t.Fatalf("expanded %d runs, want 12", len(specs))
	}
	// Fields expand in sorted-name order with the last varying fastest and
	// seeds innermost: channel is the slow axis here.
	if specs[0].Channel != 17 || specs[len(specs)-1].Channel != 26 {
		t.Errorf("channel order: first %d last %d", specs[0].Channel, specs[len(specs)-1].Channel)
	}
	// Replicas of one configuration share everything but the seed.
	if specs[0].ConfigKey() != specs[1].ConfigKey() {
		t.Errorf("replicas differ in config: %s vs %s", specs[0].ConfigKey(), specs[1].ConfigKey())
	}
	if specs[0].Seed == specs[1].Seed {
		t.Errorf("replicas share seed %d", specs[0].Seed)
	}
	// Different configurations get different seed streams even at the same
	// replica index.
	if specs[0].Seed == specs[3].Seed {
		t.Errorf("distinct configs share seed %d", specs[0].Seed)
	}
}

func TestExpandRejectsUnknownField(t *testing.T) {
	m := lplMatrix(1)
	m.Sweep["chanel"] = []any{17} // typo
	if _, err := m.Expand(); err == nil {
		t.Fatal("expand accepted a misspelled sweep field")
	}
}

func TestExpandWithoutSeedsKeepsBaseSeed(t *testing.T) {
	m := lplMatrix(0)
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d runs, want 4", len(specs))
	}
	for _, sp := range specs {
		if sp.Seed != m.Base.Seed {
			t.Errorf("seed %d, want base seed %d", sp.Seed, m.Base.Seed)
		}
	}
}

// TestSeedsStableUnderMatrixReordering pins the satellite requirement:
// because per-run seeds hash the configuration content rather than the run's
// matrix position, rewriting the sweep lists in a different order must not
// move any configuration onto a different seed stream.
func TestSeedsStableUnderMatrixReordering(t *testing.T) {
	a := lplMatrix(4)
	b := lplMatrix(4)
	b.Sweep = map[string][]any{
		"check_period_us": {500000, 250000}, // reversed values
		"channel":         {26, 17},         // reversed values, different key order
	}

	seedsOf := func(m scenario.Matrix) map[string][]uint64 {
		specs, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]uint64)
		for _, sp := range specs {
			out[sp.ConfigKey()] = append(out[sp.ConfigKey()], sp.Seed)
		}
		return out
	}

	sa, sb := seedsOf(a), seedsOf(b)
	if len(sa) != len(sb) {
		t.Fatalf("config counts differ: %d vs %d", len(sa), len(sb))
	}
	for key, seeds := range sa {
		other, ok := sb[key]
		if !ok {
			t.Errorf("config %s missing from reordered matrix", key)
			continue
		}
		for i := range seeds {
			if seeds[i] != other[i] {
				t.Errorf("config %s replica %d: seed %d vs %d", key, i, seeds[i], other[i])
			}
		}
	}
}

func TestParseSpecOrMatrix(t *testing.T) {
	specs, err := scenario.ParseSpecOrMatrix([]byte(`{"app":"blink","duration_us":1000000}`))
	if err != nil || len(specs) != 1 {
		t.Fatalf("single spec: %v, %d specs", err, len(specs))
	}
	specs, err = scenario.ParseSpecOrMatrix([]byte(
		`{"base":{"app":"blink","duration_us":1000000},"sweep":{"seed":[1,2,3]}}`))
	if err != nil || len(specs) != 3 {
		t.Fatalf("matrix: %v, %d specs", err, len(specs))
	}
	if _, err := scenario.ParseSpecOrMatrix([]byte(`{"app":"blink"}`)); err == nil {
		t.Fatal("accepted spec without duration")
	}
	if _, err := scenario.ParseSpecOrMatrix([]byte(`{"base":{"app":"blink","duration_us":1},"sweeep":{}}`)); err == nil {
		t.Fatal("accepted matrix with unknown top-level field")
	}
}

// TestSweepSeedExactness: seeds beyond 2^53 must survive the matrix
// round-trip bit-exactly — both in the base spec and in a swept seed list.
func TestSweepSeedExactness(t *testing.T) {
	const big = uint64(1)<<53 + 1
	specs, err := scenario.ParseSpecOrMatrix([]byte(fmt.Sprintf(
		`{"base":{"app":"blink","duration_us":1000000,"seed":%d},"sweep":{"channel":[17,26]}}`, big)))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Seed != big {
			t.Errorf("base seed mangled: %d, want %d", sp.Seed, big)
		}
	}
	specs, err = scenario.ParseSpecOrMatrix([]byte(fmt.Sprintf(
		`{"base":{"app":"blink","duration_us":1000000},"sweep":{"seed":[%d]}}`, big)))
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Seed != big {
		t.Errorf("swept seed mangled: %d, want %d", specs[0].Seed, big)
	}
}

// TestSeedSweepConflictsWithSeeds: replicating a seed sweep would run
// byte-identical duplicates, so Expand must refuse the combination.
func TestSeedSweepConflictsWithSeeds(t *testing.T) {
	for _, field := range []string{"seed", "name"} {
		m := scenario.Matrix{
			Base:  scenario.Spec{App: "blink", DurationUS: 1},
			Sweep: map[string][]any{field: {"1", "2"}},
			Seeds: 4,
		}
		if _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Fatalf("sweep %q: err = %v, want mutually-exclusive rejection", field, err)
		}
	}
}

// TestGenericKnobsReachEveryApp: sweeping a generic node knob must change
// the simulation for apps beyond blink (the builders thread MoteOptions
// through as the config base).
func TestGenericKnobsReachEveryApp(t *testing.T) {
	run := func(volts float64) *scenario.Result {
		r := scenario.RunSpec(scenario.Spec{
			App: "bounce", Seed: 3, Volts: volts, DurationUS: int64(2 * units.Second),
		})
		if r.Error != "" {
			t.Fatal(r.Error)
		}
		return r
	}
	if a, b := run(0), run(2.5); a.TotalUJ == b.TotalUJ {
		t.Errorf("bounce ignored volts: %g uJ at default and 2.5 V", a.TotalUJ)
	}
	tb := scenario.RunSpec(scenario.Spec{
		App: "timerbug", Seed: 31, Volts: 2.5, DurationUS: int64(2 * units.Second),
	})
	tbDefault := scenario.RunSpec(scenario.Spec{
		App: "timerbug", Seed: 31, DurationUS: int64(2 * units.Second),
	})
	if tb.Error != "" || tbDefault.Error != "" {
		t.Fatal(tb.Error, tbDefault.Error)
	}
	if tb.TotalUJ == tbDefault.TotalUJ {
		t.Errorf("timerbug ignored volts: %g uJ both ways", tb.TotalUJ)
	}
}

func TestRunSpecReportsErrors(t *testing.T) {
	r := scenario.RunSpec(scenario.Spec{App: "no-such-app", DurationUS: 1})
	if r.Error == "" {
		t.Fatal("missing error for unknown app")
	}
	r = scenario.RunSpec(scenario.Spec{App: "relay", Nodes: 1, DurationUS: int64(units.Second)})
	if !strings.Contains(r.Error, "at least 2 nodes") {
		t.Fatalf("relay error = %q", r.Error)
	}
}

// marshalSweep serializes a full sweep (every result line plus the final
// aggregate) exactly like `quanto-trace sweep` does.
func marshalSweep(t *testing.T, results []*scenario.Result) []byte {
	t.Helper()
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(scenario.Aggregate(results)); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

// TestSweepWorkerCountInvariance pins the tentpole determinism contract:
// the complete serialized output of a sweep — every per-run result and the
// cross-seed aggregate — is byte-identical for one worker and eight.
func TestSweepWorkerCountInvariance(t *testing.T) {
	m := lplMatrix(2)
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}

	one := (&scenario.Runner{Workers: 1}).Run(specs)
	eight := (&scenario.Runner{Workers: 8}).Run(specs)

	for _, r := range one {
		if r.Error != "" {
			t.Fatalf("run %d failed: %s", r.Run, r.Error)
		}
	}
	b1, b8 := marshalSweep(t, one), marshalSweep(t, eight)
	if string(b1) != string(b8) {
		t.Fatalf("sweep output differs between -workers 1 and -workers 8:\n%s\nvs\n%s", b1, b8)
	}
}

// TestRunnerEmitsInMatrixOrder: OnResult must observe runs in matrix order
// regardless of which worker finishes first.
func TestRunnerEmitsInMatrixOrder(t *testing.T) {
	m := lplMatrix(3)
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	rn := &scenario.Runner{
		Workers:  4,
		OnResult: func(r *scenario.Result) { order = append(order, r.Run) },
	}
	results := rn.Run(specs)
	if len(order) != len(specs) {
		t.Fatalf("OnResult saw %d of %d runs", len(order), len(specs))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emission order %v, want matrix order", order)
		}
	}
	for i, r := range results {
		if r == nil || r.Run != i {
			t.Fatalf("results[%d] = %+v", i, r)
		}
	}
}

// TestResultValuesRoundTrip: the flattened values drive aggregation; spot
// check a real run's headline numbers appear.
func TestResultValuesRoundTrip(t *testing.T) {
	r := scenario.RunSpec(scenario.Spec{App: "blink", Seed: 1, DurationUS: int64(4 * units.Second)})
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	v := r.Values()
	if v["total_uj"] != r.TotalUJ || v["entries"] != float64(r.Entries) {
		t.Errorf("values mismatch: %v vs result %+v", v, r)
	}
	if r.TotalUJ <= 0 || r.Entries == 0 || len(r.Nodes) != 1 {
		t.Errorf("implausible result: %+v", r)
	}
	if _, ok := v["metric:toggles_red"]; !ok {
		t.Errorf("blink metrics missing from values: %v", v)
	}
}
