package scenario_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/apps" // registers the paper's workloads
	"repro/internal/scenario"
	"repro/internal/traffic"
	"repro/internal/units"
)

// TestTrafficReplayRoundTrip is the record-and-replay contract: run a shaped
// spec with recording on, write the captured schedule to disk, then run the
// same spec again with the replay shape driving it from that file. The replay
// run must produce byte-identical node traces and identical metrics — and
// re-recording the replay must reproduce the trace file byte for byte. This
// holds because shapes draw from private RNG streams: the world's randomness
// never notices whether sends came from a generator or a file.
func TestTrafficReplayRoundTrip(t *testing.T) {
	cases := []scenario.Spec{
		{
			App:        "relay",
			Seed:       11,
			DurationUS: int64(2 * units.Second),
			Nodes:      10,
			Origins:    3,
			Traffic: &traffic.Spec{
				Shape:     traffic.ShapeRamp,
				StartRPS:  4,
				StepRPS:   4,
				TargetRPS: 16,
				SlotUS:    int64(500 * units.Millisecond),
			},
		},
		{
			App:        "bounce",
			Seed:       5,
			DurationUS: int64(2 * units.Second),
			Traffic:    &traffic.Spec{Shape: traffic.ShapeConstant, RPS: 6},
		},
		{
			App:        "sensesend",
			Seed:       9,
			DurationUS: int64(3 * units.Second),
			Traffic: &traffic.Spec{
				Shape:    traffic.ShapeDiurnal,
				RPS:      8,
				PeriodUS: int64(2 * units.Second),
			},
		},
	}
	for _, spec := range cases {
		spec := spec
		t.Run(fmt.Sprintf("%s/%s", spec.App, spec.Traffic.Shape), func(t *testing.T) {
			rec := spec
			rec.RecordTraffic = true
			in, err := scenario.Build(rec)
			if err != nil {
				t.Fatalf("build recording run: %v", err)
			}
			in.Run()
			var file bytes.Buffer
			if err := in.Traffic.WriteJSONL(&file); err != nil {
				t.Fatalf("write trace: %v", err)
			}
			shapedTraces, shapedMetrics := encodedTraces(t, spec)

			path := filepath.Join(t.TempDir(), "trace.jsonl")
			if err := os.WriteFile(path, file.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			replay := spec
			replay.Traffic = &traffic.Spec{Shape: traffic.ShapeReplay, File: path}
			replay.RecordTraffic = true
			rin, err := scenario.Build(replay)
			if err != nil {
				t.Fatalf("build replay run: %v", err)
			}
			rin.Run()
			var refile bytes.Buffer
			if err := rin.Traffic.WriteJSONL(&refile); err != nil {
				t.Fatalf("re-record trace: %v", err)
			}
			if !bytes.Equal(refile.Bytes(), file.Bytes()) {
				t.Fatalf("re-recorded trace differs from original (%d vs %d bytes)",
					refile.Len(), file.Len())
			}

			replay.RecordTraffic = false
			replayTraces, replayMetrics := encodedTraces(t, replay)
			if !bytes.Equal(replayTraces, shapedTraces) {
				t.Fatalf("replay traces differ from shaped run (%d vs %d bytes)",
					len(replayTraces), len(shapedTraces))
			}
			if len(replayMetrics) != len(shapedMetrics) {
				t.Fatalf("metric sets differ: shaped %v replay %v", shapedMetrics, replayMetrics)
			}
			for k, sv := range shapedMetrics {
				if rv, ok := replayMetrics[k]; !ok || rv != sv {
					t.Errorf("metric %q: shaped %v replay %v", k, sv, replayMetrics[k])
				}
			}
		})
	}
}

// TestTrafficRecordingInvariance proves record_traffic is pure observation:
// the same spec with and without recording produces byte-identical traces,
// which is why ConfigKey clears the flag.
func TestTrafficRecordingInvariance(t *testing.T) {
	spec := scenario.Spec{
		App:        "relay",
		Seed:       2,
		DurationUS: int64(2 * units.Second),
		Nodes:      8,
		Origins:    2,
		Traffic:    &traffic.Spec{Shape: traffic.ShapeConstant, RPS: 10},
	}
	plain, _ := encodedTraces(t, spec)
	rec := spec
	rec.RecordTraffic = true
	if rec.ConfigKey() != spec.ConfigKey() {
		t.Fatalf("record_traffic leaked into ConfigKey:\n%s\nvs\n%s", rec.ConfigKey(), spec.ConfigKey())
	}
	recorded, _ := encodedTraces(t, rec)
	if !bytes.Equal(plain, recorded) {
		t.Fatalf("recording changed the run (%d vs %d trace bytes)", len(recorded), len(plain))
	}
}

// TestTrafficRejectedByNonSendApps pins the builder guard: a traffic shape on
// an app with no send-driven workload fails the build instead of silently
// doing nothing.
func TestTrafficRejectedByNonSendApps(t *testing.T) {
	for _, app := range []string{"blink", "lpl", "timerbug", "dma"} {
		spec := scenario.Spec{
			App:        app,
			Seed:       1,
			DurationUS: int64(units.Second),
			Traffic:    &traffic.Spec{Shape: traffic.ShapeConstant, RPS: 1},
		}
		if _, err := scenario.Build(spec); err == nil {
			t.Errorf("%s: build accepted a traffic shape it does not honor", app)
		}
	}
}
