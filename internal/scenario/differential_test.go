package scenario_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	_ "repro/internal/apps" // registers the paper's workloads
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/units"
)

// encodedTraces runs the spec and returns every node's log in wire form,
// concatenated in node-id order with a per-node header. Any difference in
// event dispatch — order, timing, RNG consumption — shows up as a byte
// difference here.
func encodedTraces(t *testing.T, spec scenario.Spec) ([]byte, map[string]float64) {
	t.Helper()
	in, err := scenario.Build(spec)
	if err != nil {
		t.Fatalf("build %s (queue=%q): %v", spec.App, spec.Queue, err)
	}
	in.Run()
	logs := in.World.NodeLogs()
	ids := make([]core.NodeID, 0, len(logs))
	for id := range logs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf bytes.Buffer
	for _, id := range ids {
		fmt.Fprintf(&buf, "node %d: %d entries\n", id, len(logs[id]))
		buf.Write(trace.Marshal(logs[id]))
	}
	var metrics map[string]float64
	if in.Metrics != nil {
		metrics = in.Metrics()
	}
	return buf.Bytes(), metrics
}

// TestWheelHeapTraceIdentity is the differential property test for the
// timer-wheel scheduler: for every registered app, across seeds and
// placements, a run on the wheel queue must produce byte-identical node
// traces (and identical metrics) to the same run on the legacy binary-heap
// queue. The queue is an implementation choice, never an experimental
// variable; this test is the proof.
func TestWheelHeapTraceIdentity(t *testing.T) {
	base := func(app string, dur units.Ticks) scenario.Spec {
		return scenario.Spec{App: app, DurationUS: int64(dur)}
	}
	variants := []scenario.Spec{
		base("blink", 2*units.Second),
		base("bounce", 2*units.Second),
		func() scenario.Spec {
			s := base("bounce", 2*units.Second)
			s.Placement = scenario.PlacementLine
			return s
		}(),
		base("lpl", 2*units.Second),
		base("relay", 2*units.Second),
		func() scenario.Spec {
			s := base("relay", units.Second)
			s.Nodes = 12
			s.Placement = scenario.PlacementRGG
			return s
		}(),
		base("sensesend", 2*units.Second),
		func() scenario.Spec {
			s := base("sensesend", 2*units.Second)
			s.Placement = scenario.PlacementGrid
			return s
		}(),
		base("timerbug", 2*units.Second),
		base("dma", units.Second),
		func() scenario.Spec {
			s := base("dma", units.Second)
			s.UseDMA = true
			return s
		}(),
	}
	// Every registered app must appear above: a new app cannot ship without
	// joining the differential suite.
	covered := make(map[string]bool)
	for _, v := range variants {
		covered[v.App] = true
	}
	for _, app := range scenario.Apps() {
		if !covered[app] {
			t.Errorf("registered app %q has no wheel-vs-heap variant in this test", app)
		}
	}

	for _, v := range variants {
		for _, seed := range []uint64{1, 7} {
			v := v
			v.Seed = seed
			name := fmt.Sprintf("%s/seed=%d/placement=%s", v.App, seed, v.Placement)
			t.Run(name, func(t *testing.T) {
				wheel := v
				wheel.Queue = "wheel"
				heap := v
				heap.Queue = "heap"
				if wheel.ConfigKey() != heap.ConfigKey() {
					t.Fatalf("queue choice leaked into ConfigKey:\n%s\nvs\n%s",
						wheel.ConfigKey(), heap.ConfigKey())
				}
				wb, wm := encodedTraces(t, wheel)
				hb, hm := encodedTraces(t, heap)
				if !bytes.Equal(wb, hb) {
					t.Fatalf("wheel and heap traces differ (%d vs %d bytes)", len(wb), len(hb))
				}
				if len(wm) != len(hm) {
					t.Fatalf("metric sets differ: %v vs %v", wm, hm)
				}
				for k, wv := range wm {
					if hv, ok := hm[k]; !ok || hv != wv {
						t.Errorf("metric %q: wheel %v heap %v", k, wv, hm[k])
					}
				}
			})
		}
	}
}
