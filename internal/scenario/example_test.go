package scenario_test

import (
	"fmt"

	"repro/internal/scenario"
)

// ExampleMatrix_Expand shows how a matrix becomes a run list: the cross
// product of every sweep list (fields in sorted-name order, the last field
// varying fastest), replicated across derived seeds (innermost). Every
// returned spec already carries its final seed — derived from the base seed
// and the run's configuration content, not its matrix position — so
// execution order and sweep-list reordering can never affect a run's
// randomness.
func ExampleMatrix_Expand() {
	m := scenario.Matrix{
		Base: scenario.Spec{App: "lpl", DurationUS: 2_000_000, Seed: 1},
		Sweep: map[string][]any{
			"channel":     []any{17, 26},
			"battery_uah": []any{4.0, 8.0},
		},
		Seeds: 2,
	}
	specs, err := m.Expand()
	if err != nil {
		fmt.Println("expand:", err)
		return
	}
	fmt.Printf("%d runs (2 capacities x 2 channels x 2 seeds)\n", len(specs))
	seeds := make(map[uint64]bool)
	for i, s := range specs {
		fmt.Printf("run %d: battery=%v channel=%d\n", i, s.BatteryUAH, s.Channel)
		seeds[s.Seed] = true
	}
	fmt.Printf("distinct derived seeds: %d\n", len(seeds))
	// Output:
	// 8 runs (2 capacities x 2 channels x 2 seeds)
	// run 0: battery=4 channel=17
	// run 1: battery=4 channel=17
	// run 2: battery=4 channel=26
	// run 3: battery=4 channel=26
	// run 4: battery=8 channel=17
	// run 5: battery=8 channel=17
	// run 6: battery=8 channel=26
	// run 7: battery=8 channel=26
	// distinct derived seeds: 8
}

// ExampleAggregate shows the cross-run fold `quanto-trace sweep` performs:
// results whose specs share a ConfigKey (replicas under different seeds —
// the key clears seed and name) become one group, and every numeric output
// gets mean/stddev/CI95 statistics across the group. Blink is fully
// deterministic, so two seeds produce identical entry counts and a zero
// confidence interval.
func ExampleAggregate() {
	r1 := scenario.RunSpec(scenario.Spec{App: "blink", DurationUS: 1_000_000, Seed: 1})
	r2 := scenario.RunSpec(scenario.Spec{App: "blink", DurationUS: 1_000_000, Seed: 2})
	if r1.Error != "" || r2.Error != "" {
		fmt.Println("runs failed")
		return
	}
	ag := scenario.Aggregate([]*scenario.Result{r1, r2})
	groups := ag.Groups()
	fmt.Printf("groups: %d\n", len(groups))
	g := groups[0]
	st := g.Stat("entries")
	fmt.Printf("runs folded: %d\n", g.N)
	fmt.Printf("entries: mean=%.0f ci95=%.0f\n", st.Mean(), st.CI95())
	// Output:
	// groups: 1
	// runs folded: 2
	// entries: mean=19 ci95=0
}
