package scenario

import (
	"runtime"
	"sync"

	"repro/internal/analysis"
)

// Runner executes an expanded spec list concurrently. Every run is fully
// isolated — its own simulator, world, dictionary, and analyzers — and its
// seed was fixed at expansion time, so the worker count and completion order
// affect wall-clock time only, never a single byte of output.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// OnResult, when set, is invoked once per run *in matrix order* (an
	// in-order gate holds back runs that finish ahead of their
	// predecessors). This is what lets `quanto-trace sweep` stream
	// JSON-lines output that is byte-identical for any -workers value.
	OnResult func(*Result)
}

// Run executes every spec and returns the results indexed like the input.
// Individual run failures are reported inside the Result (Error field); Run
// itself only fails on harness-level misuse.
func (rn *Runner) Run(specs []Spec) []*Result {
	results := make([]*Result, len(specs))
	if len(specs) == 0 {
		return results
	}
	workers := rn.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	jobs := make(chan int)
	done := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := RunSpec(specs[i])
				r.Run = i
				results[i] = r
				done <- i
			}
		}()
	}
	go func() {
		for i := range specs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(done)
	}()

	// In-order emission gate: deliver results to OnResult in matrix order
	// no matter which worker finishes first.
	next := 0
	ready := make(map[int]bool)
	for i := range done {
		ready[i] = true
		for ready[next] {
			delete(ready, next)
			if rn.OnResult != nil {
				rn.OnResult(results[next])
			}
			next++
		}
	}
	return results
}

// Lifetimes folds the battery outcomes of a result list into a lifetime
// report: runs sharing a ConfigKey are one group, every battery-powered node
// gets a death rate, mean time-to-death with CI95, and mean energy margin
// across the group's seeds. Runs without batteries (and failed runs)
// contribute nothing, so the report is empty for non-lifetime sweeps.
func Lifetimes(results []*Result) *analysis.LifetimeReport {
	lr := analysis.NewLifetimeReport()
	for _, r := range results {
		if r == nil || r.Error != "" {
			continue
		}
		var nodes []analysis.NodeLifetime
		for _, n := range r.Nodes {
			if n.BatteryUAH <= 0 {
				continue
			}
			nodes = append(nodes, analysis.NodeLifetime{
				Node:       n.Node,
				Died:       n.Died,
				LifetimeUS: n.LifetimeUS,
				MarginFrac: n.MarginFrac,
			})
		}
		lr.Add(r.Spec.ConfigKey(), nodes)
	}
	return lr
}

// Routes folds the routed runs of a result list into a RouteReport: one
// group per ConfigKey with delivery ratio, tree depth, reroute counts, and —
// for runs with battery deaths — the post-death delivery extension. Runs
// without a routing plane (no net_* metrics) contribute nothing, so the
// report stays empty for classic sweeps and the CLI can skip rendering it.
func Routes(results []*Result) *analysis.RouteReport {
	rr := analysis.NewRouteReport()
	for _, r := range results {
		if r == nil || r.Error != "" {
			continue
		}
		m := r.Metrics
		if _, routed := m["net_routed"]; !routed {
			continue
		}
		s := analysis.RouteSample{
			Generated:      m["generated"],
			Delivered:      m["delivered"],
			ParentChanges:  m["net_parent_changes"],
			LoopAvoided:    m["net_loop_avoided"],
			NoRoute:        m["net_no_route"],
			TTLDrops:       m["net_ttl_drops"],
			BeaconsTx:      m["net_beacons_tx"],
			BeaconsRx:      m["net_beacons_rx"],
			MeanPathETX:    m["net_path_etx_mean"],
			LastDeliveryUS: m["net_last_delivery_us"],
			FirstDeathUS:   -1,
		}
		if r.Deaths > 0 {
			s.FirstDeathUS = float64(r.FirstDeathUS)
		}
		rr.Add(r.Spec.ConfigKey(), s)
	}
	return rr
}

// Aggregate folds a result list into per-configuration statistics: runs
// sharing a ConfigKey (replicas across seeds) are one group, and every
// numeric output — total energy, average power, per-activity energy, app
// metrics — gets a mean/stddev/CI across the group. Failed runs are skipped;
// the caller sees them in the result list.
func Aggregate(results []*Result) *analysis.Aggregate {
	ag := analysis.NewAggregate()
	for _, r := range results {
		if r == nil || r.Error != "" {
			continue
		}
		ag.Add(r.Spec.ConfigKey(), r.Values())
	}
	return ag
}
