package scenario_test

import (
	"strings"
	"testing"

	_ "repro/internal/apps" // registers the paper's workloads
	"repro/internal/scenario"
	"repro/internal/units"
)

// TestSpecRoutingValidation pins the gate in front of the routing and
// mobility knobs: every way to half-specify the layered stack is rejected
// with a message naming the offending field.
func TestSpecRoutingValidation(t *testing.T) {
	routed := func() scenario.Spec {
		return scenario.Spec{
			App:        "relay",
			DurationUS: 1_000_000,
			Placement:  scenario.PlacementLine,
			Routing:    scenario.RoutingCTP,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*scenario.Spec)
		wantErr string
	}{
		{"valid routed", func(s *scenario.Spec) {}, ""},
		{"unknown routing", func(s *scenario.Spec) { s.Routing = "aodv" }, "routing"},
		{"routing without placement", func(s *scenario.Spec) { s.Placement = "" }, "placement"},
		{"beacon period without routing", func(s *scenario.Spec) {
			s.Routing = ""
			s.BeaconPeriodMS = 500
		}, "beacon_period_ms"},
		{"negative beacon period", func(s *scenario.Spec) { s.BeaconPeriodMS = -1 }, "beacon_period_ms"},
		{"valid mobility", func(s *scenario.Spec) { s.Mobility = scenario.MobilityWaypoint }, ""},
		{"unknown mobility", func(s *scenario.Spec) { s.Mobility = "teleport" }, "mobility"},
		{"mobility without placement", func(s *scenario.Spec) {
			s.Routing = ""
			s.Placement = ""
			s.Mobility = scenario.MobilityDrift
		}, "placement"},
		{"speed without mobility", func(s *scenario.Spec) { s.SpeedMPS = 2 }, "speed_mps"},
		{"negative speed", func(s *scenario.Spec) {
			s.Mobility = scenario.MobilityDrift
			s.SpeedMPS = -1
		}, "speed_mps"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := routed()
			c.mutate(&s)
			err := s.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// TestRoutedSpecDelivers drives the full stack from a Spec: a routed relay
// line forms a tree, moves data over it, and surfaces the routing plane's
// counters through the ordinary metrics channel.
func TestRoutedSpecDelivers(t *testing.T) {
	res := scenario.RunSpec(scenario.Spec{
		App:        "relay",
		Seed:       5,
		DurationUS: int64(10 * units.Second),
		Nodes:      6,
		Origins:    2,
		Placement:  scenario.PlacementLine,
		Routing:    scenario.RoutingCTP,
	})
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	m := res.Metrics
	if m["delivered"] == 0 {
		t.Fatalf("routed spec delivered nothing: %v", m)
	}
	if m["net_routed"] != 5 {
		t.Errorf("net_routed = %v, want all 5 non-root nodes", m["net_routed"])
	}
	if m["net_beacons_tx"] == 0 || m["net_beacons_rx"] == 0 {
		t.Errorf("beacon plane silent: tx=%v rx=%v", m["net_beacons_tx"], m["net_beacons_rx"])
	}
	if m["net_path_etx_mean"] < 1 {
		t.Errorf("mean path ETX = %v, want ≥ 1 (at least one perfect hop)", m["net_path_etx_mean"])
	}
	if m["net_last_delivery_us"] < float64(8*units.Second) {
		t.Errorf("last delivery at %vµs, want near the end of the run", m["net_last_delivery_us"])
	}
}

// TestRoutedSpecDeterministic pins replay at the scenario layer: two
// identically-specified routed runs with mobility produce identical metrics —
// the routing plane and the movers draw only from derived, tagged streams.
func TestRoutedSpecDeterministic(t *testing.T) {
	spec := scenario.Spec{
		App:        "relay",
		Seed:       11,
		DurationUS: int64(6 * units.Second),
		Nodes:      9,
		Origins:    3,
		Placement:  scenario.PlacementGrid,
		Routing:    scenario.RoutingCTP,
		Mobility:   scenario.MobilityWaypoint,
		SpeedMPS:   8,
	}
	a := scenario.RunSpec(spec)
	b := scenario.RunSpec(spec)
	if a.Error != "" || b.Error != "" {
		t.Fatalf("errors: %q / %q", a.Error, b.Error)
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric sets differ: %v vs %v", a.Metrics, b.Metrics)
	}
	for k, av := range a.Metrics {
		if bv := b.Metrics[k]; av != bv {
			t.Errorf("metric %q diverged: %v vs %v", k, av, bv)
		}
	}
	if a.Metrics["generated"] == 0 {
		t.Error("mobile routed run generated nothing")
	}
}

// TestRoutedCascadeSpec is the energy-aware rerouting acceptance test at the
// scenario layer: a 3×3 grid where only the middle node — the origin's
// cheapest way toward the far-corner sink — carries a finite battery. Its
// death must reroute the tree around the hole and deliveries must
// demonstrably outlive it.
func TestRoutedCascadeSpec(t *testing.T) {
	res := scenario.RunSpec(scenario.Spec{
		App:        "relay",
		Seed:       3,
		DurationUS: int64(40 * units.Second),
		Nodes:      9,
		Placement:  scenario.PlacementGrid,
		AreaM:      60, // 30 m pitch: corner-to-corner needs two hops
		Routing:    scenario.RoutingCTP,
		BatteryNodeUAH: map[string]float64{
			"5": 60, // the center relay: ~10 s at listening draw
		},
	})
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if res.Deaths != 1 {
		t.Fatalf("deaths = %d, want exactly the center node", res.Deaths)
	}
	m := res.Metrics
	// The reroute, not residual in-flight traffic, is what keeps packets
	// landing: the last delivery is seconds past the death.
	margin := float64(5 * units.Second)
	if m["net_last_delivery_us"] < float64(res.FirstDeathUS)+margin {
		t.Errorf("last delivery %vµs, death %dµs — reroute did not extend the network's useful life",
			m["net_last_delivery_us"], res.FirstDeathUS)
	}
	// At minimum the nodes routing through the center re-parented.
	if m["net_parent_changes"] < 2 {
		t.Errorf("net_parent_changes = %v, want ≥ 2 (initial joins are changes too)", m["net_parent_changes"])
	}
	if m["delivered"] == 0 {
		t.Error("nothing delivered")
	}

	// The Routes fold turns this run into the lifetime-extension report the
	// CLI prints: one group, one death, a positive extension.
	rr := scenario.Routes([]*scenario.Result{res})
	if rr.Empty() {
		t.Fatal("Routes fold skipped a routed run")
	}
	raw, err := rr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"deaths":1`) {
		t.Errorf("route report missing the death: %s", s)
	}
	if rr2 := scenario.Routes([]*scenario.Result{{Metrics: map[string]float64{"delivered": 1}}}); !rr2.Empty() {
		t.Error("Routes folded an unrouted run")
	}
}
