package scenario_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/apps" // registers the paper's workloads
	"repro/internal/scenario"
	"repro/internal/traffic"
	"repro/internal/units"
)

// TestPartitionTraceIdentity is the differential property test for the
// partitioned parallel stepper: for every registered app, across seeds,
// placements, multi-origin load, and battery deaths, a run split over K > 1
// spatial partitions must produce byte-identical node traces (and identical
// metrics) to the serial run of the same spec. Partitions, like Queue, is a
// performance knob — this test is the proof. Run it under -race (CI does) and
// it doubles as the data-race probe for the worker pool: any app state a
// window touches cross-partition trips the detector even when the trace
// happens to match.
func TestPartitionTraceIdentity(t *testing.T) {
	base := func(app string, dur units.Ticks) scenario.Spec {
		return scenario.Spec{App: app, DurationUS: int64(dur)}
	}
	variants := []scenario.Spec{
		// Apps that fall back to serial (single node, no placement, or
		// halt-world) are still exercised: the fallback itself — returning
		// the identical serial world — is part of the contract.
		base("blink", 2*units.Second),
		base("lpl", 2*units.Second),
		base("timerbug", 2*units.Second),
		func() scenario.Spec {
			s := base("bounce", 2*units.Second)
			s.Placement = scenario.PlacementLine
			return s
		}(),
		func() scenario.Spec {
			s := base("dma", units.Second)
			s.Placement = scenario.PlacementLine
			return s
		}(),
		func() scenario.Spec {
			s := base("sensesend", 2*units.Second)
			s.Placement = scenario.PlacementGrid
			return s
		}(),
		// A line of relays with several origins: every border between
		// spatially contiguous partitions carries traffic both ways, the
		// cross-partition storm case.
		func() scenario.Spec {
			s := base("relay", 2*units.Second)
			s.Nodes = 24
			s.Origins = 8
			s.PeriodUS = int64(200 * units.Millisecond)
			s.Placement = scenario.PlacementLine
			return s
		}(),
		// Random geometric placement: partition borders cut through
		// irregular neighborhoods instead of a line's regular spacing.
		func() scenario.Spec {
			s := base("relay", units.Second)
			s.Nodes = 16
			s.Origins = 4
			s.Placement = scenario.PlacementRGG
			return s
		}(),
		// Mid-run battery deaths: depletion checks are marked events stepped
		// serially at window boundaries, and a death rips a node out of the
		// medium (unregister, force-off, pledge drop) while other partitions
		// keep traffic in flight.
		func() scenario.Spec {
			s := base("relay", 4*units.Second)
			s.Nodes = 12
			s.Origins = 4
			s.PeriodUS = int64(250 * units.Millisecond)
			s.Placement = scenario.PlacementLine
			s.BatteryUAH = 0.9
			return s
		}(),
		// Halt-world deaths force the serial fallback; the run must still be
		// identical with partitions requested.
		func() scenario.Spec {
			s := base("relay", 4*units.Second)
			s.Nodes = 8
			s.Placement = scenario.PlacementLine
			s.BatteryUAH = 0.9
			s.DeathPolicy = scenario.DeathPolicyHaltWorld
			return s
		}(),
		// Shaped load: a ramp schedule drives several origins at once. The
		// traffic engine's per-sender stagger must keep every send on a
		// distinct tick, or independent same-tick transmits in different
		// partitions would race for medium order.
		func() scenario.Spec {
			s := base("relay", 2*units.Second)
			s.Nodes = 16
			s.Origins = 4
			s.Placement = scenario.PlacementLine
			s.Traffic = &traffic.Spec{
				Shape:     traffic.ShapeRamp,
				StartRPS:  2,
				StepRPS:   3,
				TargetRPS: 11,
				SlotUS:    int64(500 * units.Millisecond),
			}
			return s
		}(),
		// Heavy-tailed ON/OFF sources: the shape draws from per-sender
		// private RNG streams, so the schedule is irregular but must still
		// land tie-free and identically across partition counts.
		func() scenario.Spec {
			s := base("relay", 3*units.Second)
			s.Nodes = 12
			s.Origins = 4
			s.Placement = scenario.PlacementLine
			s.Traffic = &traffic.Spec{
				Shape:    traffic.ShapeOnOff,
				RPS:      20,
				OnMinUS:  int64(300 * units.Millisecond),
				OffMinUS: int64(200 * units.Millisecond),
			}
			return s
		}(),
		// Routed forwarding plane: beacons, parent selection, and per-packet
		// routing decisions all cross partition borders. Every routing event
		// must land on the same tick in the same order whatever K is.
		func() scenario.Spec {
			s := base("relay", 3*units.Second)
			s.Nodes = 12
			s.Origins = 4
			s.PeriodUS = int64(250 * units.Millisecond)
			s.Placement = scenario.PlacementLine
			s.Routing = scenario.RoutingCTP
			return s
		}(),
		// Routed plus mid-run battery deaths: a death fans NeighborDied
		// events out to every survivor's clock at the topology priority, and
		// the resulting reroutes must replay identically across K.
		func() scenario.Spec {
			s := base("relay", 4*units.Second)
			s.Nodes = 10
			s.Origins = 3
			s.PeriodUS = int64(250 * units.Millisecond)
			s.Placement = scenario.PlacementLine
			s.Routing = scenario.RoutingCTP
			s.BatteryUAH = 0.9
			return s
		}(),
		// Routed plus mobility: positions change every MobilityStep, the
		// medium's neighbor index is patched incrementally, and link
		// qualities (hence parent choices) shift mid-run. The speed is
		// exaggerated so a 3 s run actually crosses neighborhoods.
		func() scenario.Spec {
			s := base("relay", 3*units.Second)
			s.Nodes = 12
			s.Origins = 4
			s.PeriodUS = int64(250 * units.Millisecond)
			s.Placement = scenario.PlacementGrid
			s.Routing = scenario.RoutingCTP
			s.Mobility = scenario.MobilityWaypoint
			s.SpeedMPS = 12
			return s
		}(),
	}
	// A replayed trace must also be partition-invariant: record a shaped run
	// once, then drive every partition count from the recorded file.
	variants = append(variants, recordedReplayVariant(t))
	// Every registered app must appear above: a new app cannot ship without
	// joining the partition differential suite. (The appended replay variant
	// reuses relay, so the coverage check sees the same app set either way.)
	covered := make(map[string]bool)
	for _, v := range variants {
		covered[v.App] = true
	}
	for _, app := range scenario.Apps() {
		if !covered[app] {
			t.Errorf("registered app %q has no serial-vs-partitioned variant in this test", app)
		}
	}

	for vi, v := range variants {
		for _, seed := range []uint64{1, 7} {
			v := v
			v.Seed = seed
			shape := ""
			if v.Traffic != nil {
				shape = "/shape=" + v.Traffic.Shape
			}
			name := fmt.Sprintf("%d:%s/seed=%d/placement=%s%s", vi, v.App, seed, v.Placement, shape)
			t.Run(name, func(t *testing.T) {
				serial := v
				serial.Partitions = 1
				sb, sm := encodedTraces(t, serial)
				for _, parts := range []int{2, 4} {
					par := v
					par.Partitions = parts
					if par.ConfigKey() != serial.ConfigKey() {
						t.Fatalf("partition count leaked into ConfigKey:\n%s\nvs\n%s",
							par.ConfigKey(), serial.ConfigKey())
					}
					pb, pm := encodedTraces(t, par)
					if !bytes.Equal(pb, sb) {
						t.Fatalf("partitions=%d trace differs from serial (%d vs %d bytes)",
							parts, len(pb), len(sb))
					}
					if len(pm) != len(sm) {
						t.Fatalf("partitions=%d metric sets differ: %v vs %v", parts, pm, sm)
					}
					for k, svv := range sm {
						if pv, ok := pm[k]; !ok || pv != svv {
							t.Errorf("metric %q: serial %v partitions=%d %v", k, svv, parts, pm[k])
						}
					}
				}
			})
		}
	}
}

// recordedReplayVariant records a bursty shaped relay run once and returns a
// spec that replays the captured schedule from disk, so the partition suite
// proves replay — the shape that consumes no randomness at all — is as
// partition-invariant as the generators.
func recordedReplayVariant(t *testing.T) scenario.Spec {
	t.Helper()
	rec := scenario.Spec{
		App:        "relay",
		Seed:       3,
		DurationUS: int64(2 * units.Second),
		Nodes:      12,
		Origins:    3,
		Placement:  scenario.PlacementLine,
		Traffic: &traffic.Spec{
			Shape:    traffic.ShapeBurst,
			RPS:      2,
			BurstRPS: 40,
			BurstUS:  int64(100 * units.Millisecond),
			PeriodUS: int64(500 * units.Millisecond),
		},
		RecordTraffic: true,
	}
	in, err := scenario.Build(rec)
	if err != nil {
		t.Fatalf("build recording run: %v", err)
	}
	in.Run()
	path := filepath.Join(t.TempDir(), "relay-burst.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create trace file: %v", err)
	}
	if err := in.Traffic.WriteJSONL(f); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close trace: %v", err)
	}
	replay := rec
	replay.RecordTraffic = false
	replay.Traffic = &traffic.Spec{Shape: traffic.ShapeReplay, File: path}
	return replay
}
