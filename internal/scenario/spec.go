// Package scenario makes whole experiments declarative: a Spec describes one
// simulated run (which app, how many nodes, which radio/kernel/logging knobs,
// how long, which seed), a Matrix sweeps any Spec field over a list of values
// and replicates each configuration across seeds, and a Runner executes the
// expanded matrix concurrently over a worker pool — one isolated
// sim.Simulator/mote.World per run — feeding every merged trace through the
// streaming NetworkAnalyzer into a compact Result.
//
// Determinism is the package's core contract: per-run seeds are derived by
// hashing the base seed with the run's canonical configuration (not its
// position in the matrix), so results are byte-identical regardless of worker
// count, completion order, or how the sweep lists were ordered when the
// matrix was written.
//
// Apps register constructors into the package registry (internal/apps does
// this for the paper's workloads; out-of-tree binaries can register their
// own), which is how `quanto-trace sweep` can run any workload from a JSON
// file without compiling new code.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/mote"
	"repro/internal/units"
)

// Spec declares one run. The zero value of every optional field means "the
// app's default" (matching the paper's setup for that workload), so a minimal
// spec is just {"app": "blink", "duration_us": 48000000}. All durations are
// simulated microseconds, which is also the simulator's tick unit.
type Spec struct {
	// Name is a cosmetic tag carried into results; it does not affect seed
	// derivation or grouping.
	Name string `json:"name,omitempty"`
	// App selects the registered constructor ("blink", "bounce", "lpl",
	// "relay", "sensesend", "timerbug", "dma", ...). See Apps().
	App string `json:"app"`
	// Seed drives every stochastic element of the run. In a Matrix this is
	// the base seed that per-run seeds are derived from.
	Seed uint64 `json:"seed,omitempty"`
	// DurationUS is the simulated run length in microseconds.
	DurationUS int64 `json:"duration_us"`
	// Nodes sizes the topology for apps with a variable node count (the
	// relay line's hop count). 0 selects the app default.
	Nodes int `json:"nodes,omitempty"`
	// Channel is the 802.15.4 channel for radio apps (17 overlaps 802.11b
	// channel 6; 26 is clear). 0 selects the app default.
	Channel int `json:"channel,omitempty"`
	// Volts overrides the supply voltage (default 3.0 V; the paper's LPL
	// mote ran at 3.35 V).
	Volts float64 `json:"volts,omitempty"`

	// CalibrateDCO enables the 16 Hz digital-oscillator calibration
	// interrupt, the TinyOS default the TimerBug case study exposes.
	CalibrateDCO bool `json:"calibrate_dco,omitempty"`
	// UseDMA selects DMA-based CPU-radio bus transfers instead of the
	// interrupt-per-2-bytes default (the Figure 16 comparison).
	UseDMA bool `json:"use_dma,omitempty"`
	// RAMBufferEntries routes the log through a fixed mote-style RAM buffer
	// of that many entries, so buffer-full behaviour can be observed.
	RAMBufferEntries int `json:"ram_buffer_entries,omitempty"`
	// ContinuousDrain selects the paper's streaming logging mode: entries
	// buffer in RAM and a low-priority task drains them under a
	// self-accounting "Quanto" activity (Section 4.4).
	ContinuousDrain bool `json:"continuous_drain,omitempty"`

	// PeriodUS is the app's generation/sampling period (relay packet
	// generation, sense-and-send sampling). 0 selects the app default.
	PeriodUS int64 `json:"period_us,omitempty"`
	// HoldTimeUS is how long a Bounce node keeps a packet before sending it
	// back. 0 selects the paper's 220 ms.
	HoldTimeUS int64 `json:"hold_time_us,omitempty"`
	// PayloadBytes sizes the DMA comparison's packet payload.
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// StartAtUS is when the DMA comparison fires its single send.
	StartAtUS int64 `json:"start_at_us,omitempty"`

	// CheckPeriodUS is the LPL sleep interval between channel checks
	// (paper: 500 ms).
	CheckPeriodUS int64 `json:"check_period_us,omitempty"`
	// ReceiveCheckUS is how long the LPL receiver stays on during a clean
	// check.
	ReceiveCheckUS int64 `json:"receive_check_us,omitempty"`
	// FalsePositiveHoldUS is how long the LPL receiver is held on after
	// detecting energy (paper: ~100 ms).
	FalsePositiveHoldUS int64 `json:"false_positive_hold_us,omitempty"`
	// NoWiFi disables the interfering 802.11b access point that the LPL
	// study runs against by default.
	NoWiFi bool `json:"no_wifi,omitempty"`
	// WiFiBurstUS / WiFiGapUS shape the interferer's traffic; the defaults
	// give ~17.9% channel occupancy, matching the paper's 17.8%
	// false-positive rate.
	WiFiBurstUS int64 `json:"wifi_burst_us,omitempty"`
	WiFiGapUS   int64 `json:"wifi_gap_us,omitempty"`
}

// Duration returns the run length as simulator ticks.
func (s *Spec) Duration() units.Ticks { return units.Ticks(s.DurationUS) }

// MoteOptions translates the spec's generic node knobs into mote options,
// starting from the standard single-node configuration.
func (s *Spec) MoteOptions() mote.Options {
	o := mote.DefaultOptions()
	if s.Volts > 0 {
		o.Volts = units.Volts(s.Volts)
	}
	if s.CalibrateDCO {
		o.Kernel.CalibrateDCO = true
	}
	o.RAMBufferEntries = s.RAMBufferEntries
	o.ContinuousDrain = s.ContinuousDrain
	return o
}

// Validate checks the fields every app needs; app-specific constraints live
// in the registered builders.
func (s *Spec) Validate() error {
	if s.App == "" {
		return fmt.Errorf("scenario: spec has no app")
	}
	if s.DurationUS <= 0 {
		return fmt.Errorf("scenario: spec %q has no positive duration_us", s.App)
	}
	return nil
}

// ConfigKey returns the canonical configuration string of a spec: its JSON
// encoding with the seed and cosmetic name cleared. Two runs with the same
// ConfigKey are replicas of the same configuration under different seeds;
// the key is what seed derivation hashes and what Aggregate groups by.
func (s *Spec) ConfigKey() string {
	c := *s
	c.Seed = 0
	c.Name = ""
	b, err := json.Marshal(&c)
	if err != nil {
		// Spec is a plain struct of scalars; this cannot fail.
		panic(fmt.Sprintf("scenario: marshal spec: %v", err))
	}
	return string(b)
}

// splitmix64 is the finalizing mixer of the splitmix64 generator; it turns
// structured inputs (hashes, indexes) into well-distributed seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed computes the seed of replica seedIndex of the configuration
// identified by configKey, under the matrix base seed. Because the
// derivation hashes the configuration content rather than the run's matrix
// position, the seed is stable when sweep lists are reordered or fields are
// added to the sweep, and replicas of different configurations never share a
// seed stream.
func DeriveSeed(base uint64, configKey string, seedIndex int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(configKey))
	return splitmix64(base ^ splitmix64(h.Sum64()^uint64(seedIndex)))
}

// Matrix is the declarative form of a parameter sweep: a base spec, a set of
// fields to sweep over value lists, and a replica count across derived
// seeds. Its JSON form is what `quanto-trace sweep` reads:
//
//	{
//	  "base":  {"app": "lpl", "duration_us": 14000000, "seed": 1},
//	  "sweep": {"channel": [17, 26], "check_period_us": [250000, 500000]},
//	  "seeds": 8
//	}
type Matrix struct {
	Base Spec `json:"base"`
	// Sweep maps a spec JSON field name to the list of values to expand
	// over. Sweeping "seed" directly is allowed (the listed seeds become
	// replicas of one configuration) but is mutually exclusive with Seeds.
	Sweep map[string][]any `json:"sweep,omitempty"`
	// Seeds > 0 replicates every configuration that many times under
	// derived seeds; 0 runs each configuration once with the base seed.
	Seeds int `json:"seeds,omitempty"`
}

// Expand produces the full run list: the cross product of every sweep list
// (fields in sorted-name order, the last field varying fastest), replicated
// across seeds (innermost). Every returned spec carries its final derived
// seed, so execution order cannot affect any run's randomness.
func (m *Matrix) Expand() ([]Spec, error) {
	keys := make([]string, 0, len(m.Sweep))
	for k := range m.Sweep {
		if len(m.Sweep[k]) == 0 {
			return nil, fmt.Errorf("scenario: sweep field %q has no values", k)
		}
		if (k == "seed" || k == "name") && m.Seeds > 0 {
			// Seed derivation hashes the configuration with seed and name
			// cleared, so sweeping either field under Seeds replication
			// would run byte-identical duplicates that the aggregate counts
			// as independent samples.
			return nil, fmt.Errorf(`scenario: sweeping %q and setting seeds (%d) are mutually exclusive`, k, m.Seeds)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	configs := []Spec{m.Base}
	for _, k := range keys {
		next := make([]Spec, 0, len(configs)*len(m.Sweep[k]))
		for _, base := range configs {
			for _, v := range m.Sweep[k] {
				sp, err := override(&base, k, v)
				if err != nil {
					return nil, err
				}
				next = append(next, *sp)
			}
		}
		configs = next
	}

	seeds := m.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	out := make([]Spec, 0, len(configs)*seeds)
	for _, cfg := range configs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		key := cfg.ConfigKey()
		for si := 0; si < seeds; si++ {
			sp := cfg
			if m.Seeds > 0 {
				sp.Seed = DeriveSeed(m.Base.Seed, key, si)
			}
			out = append(out, sp)
		}
	}
	return out, nil
}

// override returns a copy of spec with the JSON field named field set to v.
// The spec round-trips through map[string]json.RawMessage — untouched fields
// keep their exact wire form (a uint64 seed never passes through float64) —
// so any (current or future) spec field can be swept by its wire name, and
// unknown field names fail loudly instead of silently running the default.
func override(spec *Spec, field string, v any) (*Spec, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	vb, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("scenario: sweep field %q: %w", field, err)
	}
	m[field] = vb

	raw, err = json.Marshal(m)
	if err != nil {
		return nil, err
	}
	var out Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("scenario: sweep field %q: %w", field, err)
	}
	return &out, nil
}

// ParseSpecOrMatrix reads a JSON document that is either a single Spec or a
// Matrix (recognized by its "base" key) and returns the expanded run list
// either way.
func ParseSpecOrMatrix(data []byte) ([]Spec, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("scenario: parse spec file: %w", err)
	}
	if _, isMatrix := probe["base"]; isMatrix {
		var m Matrix
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		// Sweep lists land in []any; UseNumber keeps their literals exact
		// (json.Number re-marshals verbatim) instead of routing big integer
		// seeds through float64.
		dec.UseNumber()
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("scenario: parse matrix: %w", err)
		}
		return m.Expand()
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return []Spec{s}, nil
}
