// Package scenario makes whole experiments declarative: a Spec describes one
// simulated run (which app, how many nodes, which radio/kernel/logging knobs,
// how long, which seed), a Matrix sweeps any Spec field over a list of values
// and replicates each configuration across seeds, and a Runner executes the
// expanded matrix concurrently over a worker pool — one isolated
// sim.Simulator/mote.World per run — feeding every merged trace through the
// streaming NetworkAnalyzer into a compact Result.
//
// Determinism is the package's core contract: per-run seeds are derived by
// hashing the base seed with the run's canonical configuration (not its
// position in the matrix), so results are byte-identical regardless of worker
// count, completion order, or how the sweep lists were ordered when the
// matrix was written.
//
// Apps register constructors into the package registry (internal/apps does
// this for the paper's workloads; out-of-tree binaries can register their
// own), which is how `quanto-trace sweep` can run any workload from a JSON
// file without compiling new code.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"maps"
	"math"
	"slices"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/mote"
	"repro/internal/net"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
)

// Spec declares one run. The zero value of every optional field means "the
// app's default" (matching the paper's setup for that workload), so a minimal
// spec is just {"app": "blink", "duration_us": 48000000}. All durations are
// simulated microseconds, which is also the simulator's tick unit; currents
// are microamps and battery capacities microamp-hours.
//
// Each field's doc states which registered apps honor it. Fields an app does
// not honor are accepted but inert there — sweeping them produces replicas
// of the same behavior under different ConfigKeys, so prefer sweeping knobs
// the swept app actually reads.
type Spec struct {
	// Name is a cosmetic tag carried into results; it does not affect seed
	// derivation or grouping. Honored by: all apps.
	Name string `json:"name,omitempty"`
	// App selects the registered constructor ("blink", "bounce", "lpl",
	// "relay", "sensesend", "timerbug", "dma", ...). See Apps(). Required.
	App string `json:"app"`
	// Seed drives every stochastic element of the run (CSMA backoff, WiFi
	// interference, measurement ripple). In a Matrix this is the base seed
	// that per-run seeds are derived from. Default 0 (a valid, fixed
	// stream). Honored by: all apps.
	Seed uint64 `json:"seed,omitempty"`
	// DurationUS is the simulated run length in microseconds. Required
	// (> 0); there is no default.
	DurationUS int64 `json:"duration_us"`
	// Nodes sizes the topology for apps with a variable node count.
	// 0 selects the app default. Honored by: relay (hop count, >= 2,
	// default 3); other apps have fixed topologies.
	Nodes int `json:"nodes,omitempty"`
	// Channel is the 802.15.4 channel, 11..26 (17 overlaps 802.11b
	// channel 6; 26 is clear). 0 selects the app default (26, except the
	// LPL study's channel comparison). Honored by: bounce, lpl, relay,
	// sensesend.
	Channel int `json:"channel,omitempty"`
	// Volts overrides the supply voltage in volts. Default 3.0 V (lpl:
	// 3.35 V, the paper's regulator). Honored by: all apps.
	Volts float64 `json:"volts,omitempty"`
	// Queue selects the simulator's event-queue implementation: "" or
	// "wheel" for the hierarchical timer wheel (the default), "heap" for
	// the legacy binary heap kept as a differential-testing baseline. Both
	// dispatch identically, so this knob changes performance, never
	// results — it is excluded from ConfigKey so a wheel run and a heap run
	// of the same configuration derive the same seeds and produce
	// byte-identical traces. Honored by: all apps.
	Queue string `json:"queue,omitempty"`
	// Partitions splits the world's nodes across that many spatial-region
	// partition simulators stepped in parallel under conservative lookahead
	// (sim.Group). A partitioned run dispatches the exact same events in the
	// exact same order as a serial one, so — like Queue — this knob changes
	// wall-clock time, never results, and is excluded from ConfigKey. 0 or 1
	// selects the serial stepper. Configurations the partition scheduler
	// cannot honor fall back to serial silently: specs without a placement
	// (the broadcast medium gains nothing from spatial regions),
	// death_policy "halt-world" (the halt must take effect at the exact
	// depletion event, which only the serial stepper guarantees), and worlds
	// with fewer nodes than partitions (clamped). Honored by: all apps.
	Partitions int `json:"partitions,omitempty"`

	// CalibrateDCO enables the 16 Hz digital-oscillator calibration
	// interrupt, the TinyOS default the TimerBug case study exposes.
	// Default off. Honored by: all apps (timerbug is its showcase).
	CalibrateDCO bool `json:"calibrate_dco,omitempty"`
	// UseDMA selects DMA-based CPU-radio bus transfers instead of the
	// interrupt-per-2-bytes default (the Figure 16 comparison). Default
	// off. Honored by: bounce, dma.
	UseDMA bool `json:"use_dma,omitempty"`
	// RAMBufferEntries routes the log through a fixed mote-style RAM buffer
	// of that many entries, so buffer-full behaviour can be observed.
	// Default 0 (no RAM buffer). Honored by: all apps.
	RAMBufferEntries int `json:"ram_buffer_entries,omitempty"`
	// ContinuousDrain selects the paper's streaming logging mode: entries
	// buffer in RAM and a low-priority task drains them under a
	// self-accounting "Quanto" activity (Section 4.4). Mutually exclusive
	// with RAMBufferEntries; default off. Honored by: all apps.
	ContinuousDrain bool `json:"continuous_drain,omitempty"`

	// PeriodUS is the app's generation/sampling period in microseconds.
	// 0 selects the app default. Honored by: relay (packet generation,
	// default 1 s), sensesend (sampling, default 5 s).
	PeriodUS int64 `json:"period_us,omitempty"`
	// Origins is how many of the relay line's nodes generate traffic (nodes
	// 1..Origins, each sending toward the line's end). 0 selects 1, the
	// classic single-origin flood; larger values spread offered load across
	// the topology, which is what gives a partitioned run (Partitions > 1)
	// parallel work to find. Unlike Partitions this changes the workload, so
	// it stays in ConfigKey. Honored by: relay.
	Origins int `json:"origins,omitempty"`
	// HoldTimeUS is how long a Bounce node keeps a packet before sending it
	// back, in microseconds. 0 selects the paper's 220 ms. Honored by:
	// bounce.
	HoldTimeUS int64 `json:"hold_time_us,omitempty"`
	// PayloadBytes sizes the DMA comparison's packet payload. 0 selects 30.
	// Honored by: dma.
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// StartAtUS is when the DMA comparison fires its single send, in
	// microseconds. 0 selects 100 ms. Honored by: dma.
	StartAtUS int64 `json:"start_at_us,omitempty"`

	// CheckPeriodUS is the LPL sleep interval between channel checks, in
	// microseconds. 0 selects the paper's 500 ms. Honored by: lpl.
	CheckPeriodUS int64 `json:"check_period_us,omitempty"`
	// ReceiveCheckUS is how long the LPL receiver stays on during a clean
	// check, in microseconds. 0 selects 9.4 ms. Honored by: lpl.
	ReceiveCheckUS int64 `json:"receive_check_us,omitempty"`
	// FalsePositiveHoldUS is how long the LPL receiver is held on after
	// detecting energy, in microseconds. 0 selects the paper's ~100 ms.
	// Honored by: lpl.
	FalsePositiveHoldUS int64 `json:"false_positive_hold_us,omitempty"`
	// NoWiFi disables the interfering 802.11b access point that the LPL
	// study runs against by default. Honored by: lpl.
	NoWiFi bool `json:"no_wifi,omitempty"`
	// WiFiBurstUS / WiFiGapUS shape the interferer's traffic, in
	// microseconds (defaults 5 ms / 23 ms: ~17.9% channel occupancy,
	// matching the paper's 17.8% false-positive rate). Honored by: lpl.
	WiFiBurstUS int64 `json:"wifi_burst_us,omitempty"`
	WiFiGapUS   int64 `json:"wifi_gap_us,omitempty"`

	// Placement selects the spatial propagation layer and how nodes are
	// laid out on the plane: "line" (evenly spaced), "grid" (near-square,
	// row-major), or "rgg" (uniform random over a square, drawn from the
	// run seed — the random-geometric-graph placement). Empty (the
	// default) keeps the legacy broadcast medium: every node hears every
	// node, byte-identical to all pre-spatial runs. With a placement set,
	// delivery is gated on range and per-link PRR (log-distance path
	// loss), overlapping co-channel frames collide unless one captures,
	// and results carry per-link PRR and collision counts. Honored by:
	// bounce, dma, relay, sensesend (the radio topologies; lpl's
	// interferer has no position).
	Placement string `json:"placement,omitempty"`
	// AreaM sizes the deployment in meters: the side of the square for
	// "grid"/"rgg", the total line length for "line". 0 selects a default
	// derived from tx_range_m (line/grid: 0.5 range spacing between
	// neighbors; rgg: a side giving ~4π expected in-range neighbors).
	// Requires placement. Honored by: same apps as placement.
	AreaM float64 `json:"area_m,omitempty"`
	// PathLossExp is the log-distance path-loss exponent (free space 2,
	// indoor ~3, dense obstruction 4+). 0 selects 3.0; valid 1..8.
	// Requires placement. Honored by: same apps as placement.
	PathLossExp float64 `json:"path_loss_exp,omitempty"`
	// TxRangeM is the hard delivery cutoff in meters; it also bounds
	// per-transmit work (the neighbor index uses it as cell size). 0
	// selects 50 m. Requires placement. Honored by: same apps as
	// placement.
	TxRangeM float64 `json:"tx_range_m,omitempty"`
	// CaptureDB is the margin (dB) at which the stronger of two
	// overlapping co-channel frames is still decoded instead of both
	// corrupting. 0 selects 3 dB. Requires placement. Honored by: same
	// apps as placement.
	CaptureDB float64 `json:"capture_db,omitempty"`

	// Routing selects a routed forwarding plane instead of the app's fixed
	// next-hop wiring: "ctp" grows a collection tree (internal/net) rooted
	// at the sink — ETX-style link estimation from beacon losses, gradient-
	// checked parent selection, energy-aware rerouting around battery
	// deaths. Empty (the default) keeps the app's classic forwarding,
	// byte-identical to all pre-routing runs. Requires a placement (a
	// broadcast medium has no topology for a tree to track). Honored by:
	// relay.
	Routing string `json:"routing,omitempty"`
	// BeaconPeriodMS spaces the routing layer's beacons in milliseconds.
	// 0 selects 1000 ms. Requires routing. Honored by: relay.
	BeaconPeriodMS int64 `json:"beacon_period_ms,omitempty"`
	// Mobility puts every node in motion: "waypoint" (random waypoint —
	// walk to a uniform target, pick another) or "drift" (one random
	// heading forever, reflecting off the area walls). Positions step on a
	// fixed epoch and the medium patches its neighbor index incrementally,
	// so links appear and vanish as nodes roam. Paths draw only from
	// per-node streams derived from the run seed, so mobile runs stay
	// byte-identical across -workers and -partitions. Requires a placement.
	// Honored by: bounce, dma, relay, sensesend (the spatial apps).
	Mobility string `json:"mobility,omitempty"`
	// SpeedMPS is every mover's speed in meters per second. 0 selects 1.3
	// (pedestrian). Requires mobility. Honored by: the same apps as
	// Mobility.
	SpeedMPS float64 `json:"speed_mps,omitempty"`

	// BatteryUAH gives every node a finite battery of that many
	// microamp-hours (default 0: infinite supply). A node halts at the
	// exact instant its integrated net charge crosses zero; results then
	// carry per-node lifetimes and energy margins. Honored by: all apps.
	BatteryUAH float64 `json:"battery_uah,omitempty"`
	// BatteryNodeUAH overrides BatteryUAH per node; keys are decimal node
	// ids ("1", "2", ...) as each app assigns them: relay 1..Nodes, dma
	// 1-2, sensesend 1 (base) and 2 (sensor), bounce the paper's ids 1
	// and 4, timerbug the figure's id 32. An explicit 0 gives that node an
	// infinite supply. This is how a relay chain starves one hop to study
	// cascades. Honored by: all apps.
	BatteryNodeUAH map[string]float64 `json:"battery_node_uah,omitempty"`
	// Harvest attaches an energy-income profile to every finite battery.
	// Requires BatteryUAH or BatteryNodeUAH. Honored by: all apps.
	Harvest *HarvestSpec `json:"harvest,omitempty"`
	// DeathPolicy selects what a depletion does to the rest of the run:
	// "halt-node" (the default) halts only the depleted node and lets the
	// network keep running; "halt-world" stops the whole simulation at the
	// first death. Requires a finite battery. Honored by: all apps.
	DeathPolicy string `json:"death_policy,omitempty"`

	// Traffic replaces the app's fixed-period generation with a synthetic
	// offered-load shape: constant RPS, an invitro-style ramp
	// (start/step/target RPS over fixed slots), bursts, a diurnal cycle, a
	// heavy-tailed ON/OFF source, or the replay of a recorded schedule
	// (`quanto-trace record`). Shaped senders draw randomness only from
	// private per-node streams derived from the run seed, and generated
	// schedules are phase-staggered onto disjoint tick residues so no two
	// senders share a send tick — shaped load stays byte-identical across
	// -workers and -partitions. Unlike Queue/Partitions this changes the
	// workload, so it stays in ConfigKey and is sweepable like any other
	// field. Default nil (the app's classic fixed-period traffic,
	// byte-identical to all pre-traffic runs). Honored by: relay (each
	// origin's generation), bounce (each node's packet injection),
	// sensesend (the sampling schedule).
	Traffic *traffic.Spec `json:"traffic,omitempty"`
	// RecordTraffic captures the run's realized send schedule in memory so
	// it can be written out as a JSONL trace afterwards (Instance.Traffic;
	// `quanto-trace record` sets this). Recording observes the run without
	// changing it, so — like Queue — the flag is excluded from ConfigKey.
	// Requires Traffic. Honored by: the same apps as Traffic.
	RecordTraffic bool `json:"record_traffic,omitempty"`
}

// Death policies for Spec.DeathPolicy.
const (
	DeathPolicyHaltNode  = "halt-node"
	DeathPolicyHaltWorld = "halt-world"
)

// Placements for Spec.Placement.
const (
	PlacementLine = "line"
	PlacementGrid = "grid"
	PlacementRGG  = "rgg"
)

// Routing planes for Spec.Routing.
const (
	RoutingCTP = "ctp"
)

// Mobility models for Spec.Mobility.
const (
	MobilityWaypoint = "waypoint"
	MobilityDrift    = "drift"
)

// DefaultSpeedMPS is the mover speed when the spec leaves SpeedMPS zero:
// pedestrian pace.
const DefaultSpeedMPS = 1.3

// The spatial layer's RNG streams derive from the run seed under the
// domain tags "scenario/spatial" (channel-loss draws) and
// "scenario/placement" (the rgg layout): replicas under derived seeds get
// fresh placements and fresh loss draws, but neither shares a stream with
// the run's other consumers (backoff, interference, ripple). quantovet's
// rngdomain analyzer keeps the tags distinct across every call site.

// effectiveTxRange returns the spec's delivery cutoff with the default
// applied, for deriving placement extents.
func (s *Spec) effectiveTxRange() float64 {
	if s.TxRangeM > 0 {
		return s.TxRangeM
	}
	return medium.DefaultTxRangeM
}

// effectiveArea returns the deployment extent in meters for n nodes, with
// the same per-placement defaults Positions applies. Mobility models use it
// as the square the movers roam (and reflect) within.
func (s *Spec) effectiveArea(n int) float64 {
	if s.AreaM > 0 {
		return s.AreaM
	}
	r := s.effectiveTxRange()
	switch s.Placement {
	case PlacementLine:
		return 0.5 * r * float64(n-1)
	case PlacementGrid:
		cols := int(math.Ceil(math.Sqrt(float64(n))))
		return 0.5 * r * float64(cols-1)
	case PlacementRGG:
		// Side giving ~4π (≈12.6) expected in-range neighbors per
		// node: n·πr² / side² = 4π at side = r·√n / 2.
		return r * math.Sqrt(float64(n)) / 2
	}
	return 0
}

// Positions computes the spec's node placement for n nodes (indexed in node
// creation order). It is a pure function of (spec, n): the rgg draw comes
// from the run seed, so a replicated sweep samples fresh layouts while any
// single run stays exactly reproducible.
func (s *Spec) Positions(n int) ([]medium.Position, error) {
	area := s.effectiveArea(n)
	switch s.Placement {
	case PlacementLine:
		return medium.PlaceLine(n, area), nil
	case PlacementGrid:
		return medium.PlaceGrid(n, area), nil
	case PlacementRGG:
		seed := sim.DeriveSeed(s.Seed, "scenario/placement", 0)
		return medium.PlaceRandomGeometric(n, area, seed), nil
	default:
		return nil, fmt.Errorf("scenario: unknown placement %q (want %q, %q or %q)",
			s.Placement, PlacementLine, PlacementGrid, PlacementRGG)
	}
}

// ApplySpatial configures the world's medium per the spec's placement
// fields. App builders call it once, after every node has been added; with
// no placement configured it is a no-op and the world keeps the legacy
// broadcast medium.
func (s *Spec) ApplySpatial(w *mote.World) error {
	if s.Placement == "" {
		return nil
	}
	pos, err := s.Positions(len(w.Nodes))
	if err != nil {
		return err
	}
	if err := w.ConfigureSpatial(medium.SpatialConfig{
		PathLossExp: s.PathLossExp,
		TxRangeM:    s.TxRangeM,
		CaptureDB:   s.CaptureDB,
		Seed:        sim.DeriveSeed(s.Seed, "scenario/spatial", 0),
	}, pos); err != nil {
		return err
	}
	return s.applyMobility(w, pos)
}

// applyMobility attaches a mover to every node per the spec's mobility
// fields: the placement supplies each node's starting position, and every
// path is a pure function of (seed, node id), so mobile runs replay
// byte-identically under any worker or partition count.
func (s *Spec) applyMobility(w *mote.World, pos []medium.Position) error {
	if s.Mobility == "" {
		return nil
	}
	w.Medium.EnableMobility(net.MobilityStep)
	speed := s.SpeedMPS
	if speed == 0 {
		speed = DefaultSpeedMPS
	}
	area := s.effectiveArea(len(w.Nodes))
	for i, n := range w.Nodes {
		switch s.Mobility {
		case MobilityWaypoint:
			w.Medium.SetMover(n.ID, net.NewWaypoint(s.Seed, n.ID, pos[i], area, speed))
		case MobilityDrift:
			w.Medium.SetMover(n.ID, net.NewDrift(s.Seed, n.ID, pos[i], area, speed))
		default:
			return fmt.Errorf("scenario: unknown mobility %q (want %q or %q)",
				s.Mobility, MobilityWaypoint, MobilityDrift)
		}
	}
	// SetMover re-seats each node at its model's (reflected) start, which
	// invalidates the warmed neighbor index; re-warm so the first transmit
	// does not pay the rebuild.
	w.Medium.WarmNeighbors()
	return nil
}

// NewWorld constructs the world an app builder should populate for n nodes:
// a plain serial world, or — when the spec requests partitions and the
// configuration supports them — a partitioned world whose nodes are assigned
// to spatially contiguous regions. The assignment sorts nodes by their
// placement's grid cell (cell size = the delivery cutoff, the same hash the
// neighbor index uses) and cuts the sorted order into equal-size chunks, so
// each partition holds a compact patch of the plane and border traffic stays
// low. The fallbacks mirror the Partitions field's documentation: no
// placement, halt-world deaths, or more partitions than nodes all degrade to
// fewer (or one) partitions rather than erroring, because Partitions is a
// performance knob, not configuration.
func (s *Spec) NewWorld(n int) (*mote.World, error) {
	k := s.Partitions
	if k > n {
		k = n
	}
	if k <= 1 || s.Placement == "" || s.DeathPolicy == DeathPolicyHaltWorld {
		return mote.NewWorldQueue(s.Seed, s.Queue), nil
	}
	pos, err := s.Positions(n)
	if err != nil {
		return nil, err
	}
	return mote.NewWorldPartitioned(s.Seed, s.Queue, k, partitionAssign(pos, s.effectiveTxRange(), k)), nil
}

// partitionAssign maps node creation order to a partition index by sorting
// nodes in (cellX, cellY, x, y, index) order over a grid of cell-sized
// squares and chunking the sorted sequence into k balanced groups.
func partitionAssign(pos []medium.Position, cell float64, k int) []int {
	idx := make([]int, len(pos))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pos[idx[a]], pos[idx[b]]
		if ca, cb := math.Floor(pa.X/cell), math.Floor(pb.X/cell); ca != cb {
			return ca < cb
		}
		if ca, cb := math.Floor(pa.Y/cell), math.Floor(pb.Y/cell); ca != cb {
			return ca < cb
		}
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return idx[a] < idx[b]
	})
	assign := make([]int, len(pos))
	for rank, i := range idx {
		assign[i] = rank * k / len(pos)
	}
	return assign
}

// HarvestSpec is the declarative form of a power.Harvester. All currents are
// microamps, all durations simulated microseconds.
type HarvestSpec struct {
	// Profile selects the shape: "constant" (UA forever) or "periodic" (UA
	// during the first OnUS of every PeriodUS, 0 otherwise).
	Profile string `json:"profile"`
	// UA is the harvested current while the source is producing.
	UA float64 `json:"ua"`
	// PeriodUS / OnUS / PhaseUS shape the periodic profile; ignored for
	// "constant".
	PeriodUS int64 `json:"period_us,omitempty"`
	OnUS     int64 `json:"on_us,omitempty"`
	PhaseUS  int64 `json:"phase_us,omitempty"`
}

// Harvester builds the power-layer source this spec describes.
func (h *HarvestSpec) Harvester() (power.Harvester, error) {
	switch h.Profile {
	case "constant":
		if h.UA < 0 {
			return nil, fmt.Errorf("scenario: harvest ua must be >= 0, got %v", h.UA)
		}
		return power.ConstantHarvester(h.UA), nil
	case "periodic":
		if h.UA < 0 || h.PeriodUS <= 0 || h.OnUS <= 0 {
			return nil, fmt.Errorf("scenario: periodic harvest needs ua >= 0, period_us > 0 and on_us > 0")
		}
		return power.PeriodicHarvester{
			UA:     units.MicroAmps(h.UA),
			Period: units.Ticks(h.PeriodUS),
			On:     units.Ticks(h.OnUS),
			Phase:  units.Ticks(h.PhaseUS),
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown harvest profile %q (want constant or periodic)", h.Profile)
	}
}

// hasBattery reports whether any node gets a finite battery.
func (s *Spec) hasBattery() bool {
	if s.BatteryUAH > 0 {
		return true
	}
	//quanto:ordered existence test ("any value positive") is order-independent
	for _, v := range s.BatteryNodeUAH {
		if v > 0 {
			return true
		}
	}
	return false
}

// ApplyBattery writes the spec's energy-budget knobs for the node with the
// given id into o, overwriting whatever battery configuration o carried. App
// builders call it once per node so per-node capacity overrides take effect;
// single-node apps get it for free through MoteOptions.
func (s *Spec) ApplyBattery(node int, o *mote.Options) {
	capUAH := s.BatteryUAH
	if v, ok := s.BatteryNodeUAH[strconv.Itoa(node)]; ok {
		capUAH = v
	}
	if capUAH <= 0 {
		o.BatteryUAH, o.Harvester, o.HaltWorldOnDeath = 0, nil, false
		return
	}
	o.BatteryUAH = capUAH
	o.Harvester = nil
	if s.Harvest != nil {
		// Build always runs Validate before any builder calls ApplyBattery,
		// so an invalid harvest spec has been rejected by the time this err
		// guard can trigger; it only shields direct callers.
		if h, err := s.Harvest.Harvester(); err == nil {
			o.Harvester = h
		}
	}
	o.HaltWorldOnDeath = s.DeathPolicy == DeathPolicyHaltWorld
}

// Duration returns the run length as simulator ticks.
func (s *Spec) Duration() units.Ticks { return units.Ticks(s.DurationUS) }

// MoteOptions translates the spec's generic node knobs into mote options,
// starting from the standard single-node configuration. The battery knobs
// are applied for node 1; multi-node apps re-apply them per node with
// ApplyBattery so BatteryNodeUAH overrides land on the right mote.
func (s *Spec) MoteOptions() mote.Options {
	o := mote.DefaultOptions()
	if s.Volts > 0 {
		o.Volts = units.Volts(s.Volts)
	}
	if s.CalibrateDCO {
		o.Kernel.CalibrateDCO = true
	}
	o.RAMBufferEntries = s.RAMBufferEntries
	o.ContinuousDrain = s.ContinuousDrain
	s.ApplyBattery(1, &o)
	return o
}

// Validate checks the fields every app needs; app-specific constraints live
// in the registered builders.
func (s *Spec) Validate() error {
	if s.App == "" {
		return fmt.Errorf("scenario: spec has no app")
	}
	if s.DurationUS <= 0 {
		return fmt.Errorf("scenario: spec %q has no positive duration_us", s.App)
	}
	if s.BatteryUAH < 0 {
		return fmt.Errorf("scenario: battery_uah must be >= 0, got %v", s.BatteryUAH)
	}
	// Checked in sorted key order so a spec with several bad entries always
	// reports the same one (map iteration order would pick one at random).
	for _, id := range slices.Sorted(maps.Keys(s.BatteryNodeUAH)) {
		if _, err := strconv.Atoi(id); err != nil {
			return fmt.Errorf("scenario: battery_node_uah key %q is not a node id", id)
		}
		if v := s.BatteryNodeUAH[id]; v < 0 {
			return fmt.Errorf("scenario: battery_node_uah[%s] must be >= 0, got %v", id, v)
		}
	}
	if s.Harvest != nil {
		if !s.hasBattery() {
			return fmt.Errorf("scenario: harvest requires battery_uah or battery_node_uah")
		}
		if _, err := s.Harvest.Harvester(); err != nil {
			return err
		}
	}
	switch s.DeathPolicy {
	case "", DeathPolicyHaltNode, DeathPolicyHaltWorld:
	default:
		return fmt.Errorf("scenario: unknown death_policy %q (want %q or %q)",
			s.DeathPolicy, DeathPolicyHaltNode, DeathPolicyHaltWorld)
	}
	if s.Partitions < 0 {
		return fmt.Errorf("scenario: partitions must be >= 0, got %d", s.Partitions)
	}
	if s.Origins < 0 {
		return fmt.Errorf("scenario: origins must be >= 0, got %d", s.Origins)
	}
	if !sim.ValidQueue(sim.QueueKind(s.Queue)) {
		return fmt.Errorf("scenario: unknown queue %q (want %q or %q)",
			s.Queue, sim.QueueWheel, sim.QueueHeap)
	}
	switch s.Placement {
	case "", PlacementLine, PlacementGrid, PlacementRGG:
	default:
		return fmt.Errorf("scenario: unknown placement %q (want %q, %q or %q)",
			s.Placement, PlacementLine, PlacementGrid, PlacementRGG)
	}
	if s.Placement == "" {
		if s.AreaM != 0 || s.PathLossExp != 0 || s.TxRangeM != 0 || s.CaptureDB != 0 {
			return fmt.Errorf("scenario: area_m/path_loss_exp/tx_range_m/capture_db require a placement")
		}
	} else {
		if s.AreaM < 0 {
			return fmt.Errorf("scenario: area_m must be >= 0, got %v", s.AreaM)
		}
		if s.PathLossExp != 0 && (s.PathLossExp < 1 || s.PathLossExp > 8) {
			return fmt.Errorf("scenario: path_loss_exp must be in [1, 8] (or 0 for the default), got %v", s.PathLossExp)
		}
		if s.TxRangeM < 0 {
			return fmt.Errorf("scenario: tx_range_m must be >= 0, got %v", s.TxRangeM)
		}
		if s.CaptureDB < 0 {
			return fmt.Errorf("scenario: capture_db must be >= 0, got %v", s.CaptureDB)
		}
	}
	if s.DeathPolicy != "" && !s.hasBattery() {
		return fmt.Errorf("scenario: death_policy requires a finite battery")
	}
	switch s.Routing {
	case "", RoutingCTP:
	default:
		return fmt.Errorf("scenario: unknown routing %q (want %q)", s.Routing, RoutingCTP)
	}
	if s.Routing != "" && s.Placement == "" {
		return fmt.Errorf("scenario: routing requires a placement (a broadcast medium has no topology to route over)")
	}
	if s.BeaconPeriodMS < 0 {
		return fmt.Errorf("scenario: beacon_period_ms must be >= 0, got %d", s.BeaconPeriodMS)
	}
	if s.BeaconPeriodMS > 0 && s.Routing == "" {
		return fmt.Errorf("scenario: beacon_period_ms requires routing")
	}
	switch s.Mobility {
	case "", MobilityWaypoint, MobilityDrift:
	default:
		return fmt.Errorf("scenario: unknown mobility %q (want %q or %q)",
			s.Mobility, MobilityWaypoint, MobilityDrift)
	}
	if s.Mobility != "" && s.Placement == "" {
		return fmt.Errorf("scenario: mobility requires a placement")
	}
	if s.SpeedMPS < 0 {
		return fmt.Errorf("scenario: speed_mps must be >= 0, got %v", s.SpeedMPS)
	}
	if s.SpeedMPS > 0 && s.Mobility == "" {
		return fmt.Errorf("scenario: speed_mps requires mobility")
	}
	if s.Traffic != nil {
		if err := s.Traffic.Validate(); err != nil {
			return err
		}
	}
	if s.RecordTraffic && s.Traffic == nil {
		return fmt.Errorf("scenario: record_traffic requires a traffic shape")
	}
	return nil
}

// TrafficSources builds the per-sender send schedules (and, when the spec
// asks for recording, the recorder) for the given sender ids, in slot order.
// App builders call it with the node ids of the senders the spec's traffic
// shape drives; a nil-Traffic spec returns all nils and the app keeps its
// classic fixed-period generation. Replay specs read their trace file here,
// so an unreadable or malformed trace fails the build, not the run.
func (s *Spec) TrafficSources(ids []core.NodeID) ([]traffic.Source, *traffic.Recorder, error) {
	if s.Traffic == nil {
		return nil, nil, nil
	}
	srcs, err := traffic.Sources(s.Traffic, s.Seed, ids)
	if err != nil {
		return nil, nil, err
	}
	var rec *traffic.Recorder
	if s.RecordTraffic {
		rec = traffic.NewRecorder(ids)
	}
	return srcs, rec, nil
}

// Every Spec field has a declared cache-key fate, recorded in exactly one of
// the three lists below (JSON wire names). ConfigKey is the cache key for
// every sweep result — seed derivation hashes it, Aggregate groups by it,
// and the sweep-as-a-service direction serves cached results by it — so an
// undecided field would silently poison the key. quantovet's configkey
// analyzer errors when a field is missing from all lists, listed twice, or
// when ConfigKey's clears disagree with the excluded+identity lists; the
// TestConfigKey* invariance tests pin at runtime what the lists promise.
var (
	// configKeyIncluded: configuration proper — the field changes results,
	// so it is serialized into the key.
	configKeyIncluded = []string{
		"app", "duration_us", "nodes", "channel", "volts",
		"calibrate_dco", "use_dma", "ram_buffer_entries", "continuous_drain",
		"period_us", "origins", "hold_time_us", "payload_bytes", "start_at_us",
		"check_period_us", "receive_check_us", "false_positive_hold_us",
		"no_wifi", "wifi_burst_us", "wifi_gap_us",
		"placement", "area_m", "path_loss_exp", "tx_range_m", "capture_db",
		"routing", "beacon_period_ms", "mobility", "speed_mps",
		"battery_uah", "battery_node_uah", "harvest", "death_policy",
		"traffic",
	}
	// configKeyExcluded: performance or observation knobs proven not to
	// change results — a run with any value is byte-identical to a run with
	// the default — so they are cleared before serialization. Each entry is
	// pinned by a TestConfigKey* invariance test and by a trace-identity
	// suite (wheel/heap, partitions, recording).
	configKeyExcluded = []string{"queue", "partitions", "record_traffic"}
	// configKeyIdentity: fields that name a run rather than configure it;
	// cleared so replicas under different seeds/names share a key.
	configKeyIdentity = []string{"name", "seed"}
)

// ConfigKeyExcluded returns a copy of the declared exclusion list, in
// declaration order. The TestConfigKey* invariance tests iterate it and the
// quantovet meta-test compares it against what the configkey analyzer reads
// from this file, so docs, code, lint, and tests cannot drift.
func ConfigKeyExcluded() []string {
	return append([]string(nil), configKeyExcluded...)
}

// ConfigKeyIncluded and ConfigKeyIdentity expose the other two fate lists
// the same way, completing the partition for the tests.
func ConfigKeyIncluded() []string {
	return append([]string(nil), configKeyIncluded...)
}
func ConfigKeyIdentity() []string {
	return append([]string(nil), configKeyIdentity...)
}

// ConfigKey returns the canonical configuration string of a spec: its JSON
// encoding with the seed and cosmetic name cleared. Two runs with the same
// ConfigKey are replicas of the same configuration under different seeds;
// the key is what seed derivation hashes and what Aggregate groups by.
func (s *Spec) ConfigKey() string {
	c := *s
	c.Seed = 0
	c.Name = ""
	c.Queue = ""            // implementation choice, not configuration: results match
	c.Partitions = 0        // likewise: parallel runs are byte-identical to serial
	c.RecordTraffic = false // observation, not configuration: recording changes nothing
	b, err := json.Marshal(&c)
	if err != nil {
		// Spec is a plain struct of scalars; this cannot fail.
		panic(fmt.Sprintf("scenario: marshal spec: %v", err))
	}
	return string(b)
}

// splitmix64 is the finalizing mixer of the splitmix64 generator; it turns
// structured inputs (hashes, indexes) into well-distributed seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed computes the seed of replica seedIndex of the configuration
// identified by configKey, under the matrix base seed. Because the
// derivation hashes the configuration content rather than the run's matrix
// position, the seed is stable when sweep lists are reordered or fields are
// added to the sweep, and replicas of different configurations never share a
// seed stream.
func DeriveSeed(base uint64, configKey string, seedIndex int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(configKey))
	return splitmix64(base ^ splitmix64(h.Sum64()^uint64(seedIndex)))
}

// Matrix is the declarative form of a parameter sweep: a base spec, a set of
// fields to sweep over value lists, and a replica count across derived
// seeds. Its JSON form is what `quanto-trace sweep` reads:
//
//	{
//	  "base":  {"app": "lpl", "duration_us": 14000000, "seed": 1},
//	  "sweep": {"channel": [17, 26], "check_period_us": [250000, 500000]},
//	  "seeds": 8
//	}
type Matrix struct {
	Base Spec `json:"base"`
	// Sweep maps a spec JSON field name to the list of values to expand
	// over. Sweeping "seed" directly is allowed (the listed seeds become
	// replicas of one configuration) but is mutually exclusive with Seeds.
	Sweep map[string][]any `json:"sweep,omitempty"`
	// Seeds > 0 replicates every configuration that many times under
	// derived seeds; 0 runs each configuration once with the base seed.
	Seeds int `json:"seeds,omitempty"`
}

// Expand produces the full run list: the cross product of every sweep list
// (fields in sorted-name order, the last field varying fastest), replicated
// across seeds (innermost). Every returned spec carries its final derived
// seed, so execution order cannot affect any run's randomness.
func (m *Matrix) Expand() ([]Spec, error) {
	// Validated in sorted key order so a matrix with several bad sweep lists
	// always reports the same error (map iteration order would pick one at
	// random).
	keys := slices.Sorted(maps.Keys(m.Sweep))
	for _, k := range keys {
		if len(m.Sweep[k]) == 0 {
			return nil, fmt.Errorf("scenario: sweep field %q has no values", k)
		}
		if (k == "seed" || k == "name") && m.Seeds > 0 {
			// Seed derivation hashes the configuration with seed and name
			// cleared, so sweeping either field under Seeds replication
			// would run byte-identical duplicates that the aggregate counts
			// as independent samples.
			return nil, fmt.Errorf(`scenario: sweeping %q and setting seeds (%d) are mutually exclusive`, k, m.Seeds)
		}
	}

	configs := []Spec{m.Base}
	for _, k := range keys {
		next := make([]Spec, 0, len(configs)*len(m.Sweep[k]))
		for _, base := range configs {
			for _, v := range m.Sweep[k] {
				sp, err := override(&base, k, v)
				if err != nil {
					return nil, err
				}
				next = append(next, *sp)
			}
		}
		configs = next
	}

	seeds := m.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	out := make([]Spec, 0, len(configs)*seeds)
	for _, cfg := range configs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		key := cfg.ConfigKey()
		for si := 0; si < seeds; si++ {
			sp := cfg
			if m.Seeds > 0 {
				sp.Seed = DeriveSeed(m.Base.Seed, key, si)
			}
			out = append(out, sp)
		}
	}
	return out, nil
}

// override returns a copy of spec with the JSON field named field set to v.
// The spec round-trips through map[string]json.RawMessage — untouched fields
// keep their exact wire form (a uint64 seed never passes through float64) —
// so any (current or future) spec field can be swept by its wire name, and
// unknown field names fail loudly instead of silently running the default.
func override(spec *Spec, field string, v any) (*Spec, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	vb, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("scenario: sweep field %q: %w", field, err)
	}
	m[field] = vb

	raw, err = json.Marshal(m)
	if err != nil {
		return nil, err
	}
	var out Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("scenario: sweep field %q: %w", field, err)
	}
	return &out, nil
}

// ParseSpecOrMatrix reads a JSON document that is either a single Spec or a
// Matrix (recognized by its "base" key) and returns the expanded run list
// either way.
func ParseSpecOrMatrix(data []byte) ([]Spec, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("scenario: parse spec file: %w", err)
	}
	if _, isMatrix := probe["base"]; isMatrix {
		var m Matrix
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		// Sweep lists land in []any; UseNumber keeps their literals exact
		// (json.Number re-marshals verbatim) instead of routing big integer
		// seeds through float64.
		dec.UseNumber()
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("scenario: parse matrix: %w", err)
		}
		return m.Expand()
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return []Spec{s}, nil
}
