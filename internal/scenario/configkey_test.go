// The TestConfigKey* tests pin the cache-key contract at runtime: every Spec
// field has exactly one declared fate, excluded fields provably do not move
// the key, and identity fields never split replica groups. quantovet's
// configkey analyzer checks the same partition statically (and its meta-test
// in internal/lint asserts the analyzer reads the same exclusion list these
// tests iterate), so code, lint, and tests fail together or not at all.
package scenario

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/traffic"
)

// mustTraffic decodes a traffic spec literal for test fixtures.
func mustTraffic(t *testing.T, raw string) *traffic.Spec {
	t.Helper()
	var ts traffic.Spec
	if err := json.Unmarshal([]byte(raw), &ts); err != nil {
		t.Fatalf("traffic literal: %v", err)
	}
	return &ts
}

// specJSONFields returns the wire name of every serialized Spec field, via
// the same reflection rules encoding/json applies.
func specJSONFields(t *testing.T) []string {
	t.Helper()
	var out []string
	rt := reflect.TypeOf(Spec{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		switch name {
		case "-":
			continue
		case "":
			name = f.Name
		}
		out = append(out, name)
	}
	return out
}

func TestConfigKeyFieldPartition(t *testing.T) {
	fate := make(map[string]string)
	for _, l := range []struct {
		name   string
		fields []string
	}{
		{"included", ConfigKeyIncluded()},
		{"excluded", ConfigKeyExcluded()},
		{"identity", ConfigKeyIdentity()},
	} {
		for _, f := range l.fields {
			if prev, ok := fate[f]; ok {
				t.Errorf("field %q in both %s and %s lists", f, prev, l.name)
			}
			fate[f] = l.name
		}
	}
	fields := specJSONFields(t)
	for _, f := range fields {
		if _, ok := fate[f]; !ok {
			t.Errorf("Spec field %q has no declared ConfigKey fate", f)
		}
	}
	if len(fate) != len(fields) {
		declared := make([]string, 0, len(fate))
		for f := range fate {
			declared = append(declared, f)
		}
		sort.Strings(declared)
		sort.Strings(fields)
		t.Errorf("fate lists declare %d fields, Spec serializes %d:\nlists: %v\nspec:  %v",
			len(fate), len(fields), declared, fields)
	}
}

func TestConfigKeyExclusionInvariance(t *testing.T) {
	// A base spec exercising enough of the surface that each excluded knob
	// is meaningful: a placed multi-node relay with shaped traffic.
	base := Spec{
		App: "relay", DurationUS: 1_000_000, Nodes: 4, Seed: 7,
		Placement: PlacementGrid,
		Traffic:   mustTraffic(t, `{"shape":"constant","rps":2}`),
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
	key := base.ConfigKey()

	// Non-default sample values for every excluded field. A new entry on the
	// exclusion list fails here until it gets a sample — adding an exclusion
	// forces extending the invariance pin.
	samples := map[string]any{
		"queue":          "heap",
		"partitions":     4,
		"record_traffic": true,
	}
	for _, field := range ConfigKeyExcluded() {
		v, ok := samples[field]
		if !ok {
			t.Fatalf("excluded field %q has no invariance sample; add one so the exclusion stays pinned", field)
		}
		sp, err := override(&base, field, v)
		if err != nil {
			t.Fatalf("override %s=%v: %v", field, v, err)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("spec with %s=%v invalid: %v", field, v, err)
		}
		if got := sp.ConfigKey(); got != key {
			t.Errorf("setting excluded field %s=%v changed ConfigKey:\nbase: %s\ngot:  %s", field, v, key, got)
		}
	}
}

func TestConfigKeyIdentityInvariance(t *testing.T) {
	a := Spec{App: "blink", DurationUS: 1000, Name: "alpha", Seed: 1}
	b := Spec{App: "blink", DurationUS: 1000, Name: "omega", Seed: 99}
	if a.ConfigKey() != b.ConfigKey() {
		t.Errorf("identity fields split the key:\n%s\n%s", a.ConfigKey(), b.ConfigKey())
	}
}

func TestConfigKeyIncludedFieldsMoveKey(t *testing.T) {
	// Spot-check that representative included fields actually move the key —
	// the converse guard, so the partition test cannot be satisfied by
	// dumping every field into the exclusion list.
	base := Spec{App: "relay", DurationUS: 1_000_000}
	key := base.ConfigKey()
	for field, v := range map[string]any{
		"nodes":     5,
		"channel":   17,
		"traffic":   json.RawMessage(`{"shape":"constant","rps":2}`),
		"placement": PlacementLine,
	} {
		sp, err := override(&base, field, v)
		if err != nil {
			t.Fatalf("override %s: %v", field, err)
		}
		if sp.ConfigKey() == key {
			t.Errorf("setting included field %s=%v did not change ConfigKey", field, v)
		}
	}
}
