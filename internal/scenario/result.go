package scenario

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/core"
)

// NodeResult is one node's share of a run.
type NodeResult struct {
	Node       int     `json:"node"`
	Entries    int     `json:"entries"`
	SpanUS     int64   `json:"span_us"`
	EnergyUJ   float64 `json:"energy_uj"`
	AvgPowerMW float64 `json:"avg_power_mw"`

	// The energy-budget outcome, present only when the node ran from a
	// finite battery (spec battery_uah / battery_node_uah).
	//
	// LifetimeUS is the time to depletion, or the observed end of the run
	// when the node survived — the full duration normally, the halt
	// instant under death_policy halt-world (a censored lifetime either
	// way; Died tells which). MarginFrac is the battery charge left at the
	// end of the run as a fraction of capacity (0 for a dead node).
	BatteryUAH float64 `json:"battery_uah,omitempty"`
	Died       bool    `json:"died,omitempty"`
	DiedAtUS   int64   `json:"died_at_us,omitempty"`
	LifetimeUS int64   `json:"lifetime_us,omitempty"`
	MarginFrac float64 `json:"margin_frac,omitempty"`
}

// LinkResult is one directed link's delivery record under the spatial
// medium: frames put on the air with the receiver in range, frames that
// survived the PRR draw and any collisions, frames lost to collisions, and
// the observed PRR (delivered/attempts).
type LinkResult struct {
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	Attempts   uint64  `json:"attempts"`
	Delivered  uint64  `json:"delivered"`
	Collisions uint64  `json:"collisions"`
	PRR        float64 `json:"prr"`
}

// Result is the compact, JSON-stable output of one run: enough to aggregate
// across seeds and compare across configurations without carrying the trace.
// Map keys serialize sorted (encoding/json), so a Result's bytes depend only
// on the run's content — the property the worker-count invariance tests pin.
type Result struct {
	Spec Spec `json:"spec"`
	// Run is the run's index in the expanded matrix.
	Run int `json:"run"`
	// Entries counts log entries across all nodes; SpanUS is the merged
	// trace's time span.
	Entries int   `json:"entries"`
	SpanUS  int64 `json:"span_us"`
	// TotalUJ is measured energy summed over nodes; AvgPowerMW is the
	// network-wide average power over the span.
	TotalUJ    float64 `json:"total_uj"`
	AvgPowerMW float64 `json:"avg_power_mw"`
	// ActivityUJ breaks the energy down per activity (dictionary names,
	// "Const." for the unattributable constant term) — the paper's
	// Table 3(d) rows, network-wide.
	ActivityUJ map[string]float64 `json:"activity_uj,omitempty"`
	// Nodes holds the per-node breakdown, ordered by node id.
	Nodes []NodeResult `json:"nodes,omitempty"`
	// Metrics carries the app's own counters (false-positive rate, packets
	// delivered, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Spatial records that the run actually used the spatial medium (the
	// app honored the spec's placement); Collisions counts receptions lost
	// to co-channel collisions and Links holds the per-link delivery table
	// (observed PRR per directed link). All absent under the broadcast
	// model — including for apps that accept a placement but ignore it.
	Spatial    bool         `json:"spatial,omitempty"`
	Collisions uint64       `json:"collisions,omitempty"`
	Links      []LinkResult `json:"links,omitempty"`
	// Deaths counts battery depletions; FirstDeathUS is the earliest one.
	Deaths       int   `json:"deaths,omitempty"`
	FirstDeathUS int64 `json:"first_death_us,omitempty"`
	// Error is set when the run failed; the other fields are then partial.
	Error string `json:"error,omitempty"`
}

// Values flattens the result's numeric content for cross-run aggregation.
// Battery-powered nodes contribute per-node lifetime and margin metrics, so
// a seed-replicated sweep gets CI95 bounds on time-to-death for free.
func (r *Result) Values() map[string]float64 {
	v := map[string]float64{
		"total_uj":     r.TotalUJ,
		"avg_power_mw": r.AvgPowerMW,
		"span_us":      float64(r.SpanUS),
		"entries":      float64(r.Entries),
	}
	//quanto:ordered map-to-map copy under distinct prefixed keys; order cannot escape
	for name, uj := range r.ActivityUJ {
		v["act_uj:"+name] = uj
	}
	//quanto:ordered map-to-map copy under distinct prefixed keys; order cannot escape
	for name, x := range r.Metrics {
		v["metric:"+name] = x
	}
	battery := false
	for _, n := range r.Nodes {
		if n.BatteryUAH <= 0 {
			continue
		}
		battery = true
		id := strconv.Itoa(n.Node)
		v["lifetime_us:node"+id] = float64(n.LifetimeUS)
		v["margin_frac:node"+id] = n.MarginFrac
		died := 0.0
		if n.Died {
			died = 1
		}
		v["died:node"+id] = died
	}
	if battery {
		// Always present for battery runs so the aggregate's death count
		// averages over every replica, not only the fatal ones.
		v["deaths"] = float64(r.Deaths)
	}
	if r.Spatial {
		// Runs that actually used the spatial medium contribute the
		// contention counters — zeros included — so those aggregates
		// cover every replica; link_prr (the network-wide delivery ratio)
		// is only emitted when there were in-range attempts to measure.
		v["collisions"] = float64(r.Collisions)
		var attempts, delivered uint64
		for _, l := range r.Links {
			attempts += l.Attempts
			delivered += l.Delivered
		}
		v["link_attempts"] = float64(attempts)
		if attempts > 0 {
			v["link_prr"] = float64(delivered) / float64(attempts)
		}
	}
	return v
}

// Finish analyzes a completed run: the per-node logs k-way merge into one
// time-ordered stream that the streaming NetworkAnalyzer demultiplexes in a
// single pass, exactly the PR-1 pipeline a real deployment's back channel
// would feed.
func (in *Instance) Finish() (*Result, error) {
	net, err := in.Network()
	if err != nil {
		return nil, err
	}
	r := &Result{Spec: in.Spec}
	// Labels from different origins can share a display name ("int_TIMERA1"
	// on every node of a chain), and float addition is not associative — so
	// the per-name fold runs in sorted label order, never map order, or the
	// low bits of ActivityUJ would differ between replays of the same seed.
	byLabel := net.EnergyByActivity()
	byName := make(map[string]float64, len(byLabel))
	for _, l := range slices.Sorted(maps.Keys(byLabel)) {
		name := "Const."
		if l != analysis.ConstLabel {
			name = net.Dict.LabelName(l)
		}
		byName[name] += byLabel[l]
	}
	r.ActivityUJ = byName
	r.TotalUJ = net.TotalEnergyUJ()

	ids := make([]int, 0, len(net.Nodes))
	//quanto:ordered key collection is sorted below before use
	for id := range net.Nodes {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := net.Nodes[core.NodeID(id)]
		n := in.World.Node(core.NodeID(id))
		entries := 0
		if n != nil {
			entries = len(n.Log.Entries)
		}
		r.Entries += entries
		if a.Span() > r.SpanUS {
			r.SpanUS = a.Span()
		}
		nr := NodeResult{
			Node:       id,
			Entries:    entries,
			SpanUS:     a.Span(),
			EnergyUJ:   a.TotalEnergyUJ(),
			AvgPowerMW: a.AveragePowerMW(),
		}
		if n != nil && n.Battery != nil {
			// Close the battery's integration at the end of the run so a
			// survivor's margin covers the full duration.
			n.Battery.Sync(in.World.Sim.Now())
			nr.BatteryUAH = n.Battery.CapacityUAH()
			nr.MarginFrac = n.Battery.MarginFrac()
			if at, died := n.DiedAt(); died {
				nr.Died = true
				nr.DiedAtUS = int64(at)
				nr.LifetimeUS = int64(at)
				if r.Deaths == 0 || int64(at) < r.FirstDeathUS {
					r.FirstDeathUS = int64(at)
				}
				r.Deaths++
			} else {
				// Censor at the observed end of the run, not the requested
				// duration: under halt-world the simulation stops at the
				// first death, and crediting survivors with unsimulated
				// time would inflate their lifetimes.
				nr.LifetimeUS = int64(in.World.Sim.Now())
			}
		}
		r.Nodes = append(r.Nodes, nr)
	}
	if r.SpanUS > 0 {
		r.AvgPowerMW = r.TotalUJ / float64(r.SpanUS) * 1000
	}
	if in.Metrics != nil {
		r.Metrics = in.Metrics()
	}
	if med := in.World.Medium; med.SpatialEnabled() {
		r.Spatial = true
		r.Collisions = med.Collisions()
		for _, l := range med.LinkStats() {
			r.Links = append(r.Links, LinkResult{
				Src: int(l.Src), Dst: int(l.Dst),
				Attempts: l.Attempts, Delivered: l.Delivered,
				Collisions: l.Collisions, PRR: l.PRR,
			})
		}
	}
	return r, nil
}

// Network runs the full streaming analysis and returns the per-node and
// network-wide view, for callers that need more than the compact Result
// (timelines, regressions, footprints). The analysis is computed once per
// instance; call it only after Run.
func (in *Instance) Network() (*analysis.Network, error) {
	if in.net != nil {
		return in.net, nil
	}
	na := analysis.NewNetworkAnalyzer(in.World.Dict, analysis.DefaultOptions(), 0, 0)
	for _, n := range in.World.Nodes {
		na.AddNode(n.ID, n.Meter.PulseEnergy(), n.Volts)
	}
	merged, err := in.World.Merged()
	if err != nil {
		return nil, err
	}
	if err := na.ConsumeAll(merged); err != nil {
		return nil, err
	}
	net, err := na.Finish()
	if err != nil {
		return nil, err
	}
	in.net = net
	return net, nil
}

// RunSpec builds, runs, and analyzes one spec. Failures (including panics in
// app code) are captured in the Result rather than aborting a sweep.
func RunSpec(spec Spec) (res *Result) {
	defer func() {
		if p := recover(); p != nil {
			res = &Result{Spec: spec, Error: fmt.Sprintf("panic: %v", p)}
		}
	}()
	in, err := Build(spec)
	if err != nil {
		return &Result{Spec: spec, Error: err.Error()}
	}
	in.Run()
	r, err := in.Finish()
	if err != nil {
		return &Result{Spec: spec, Error: err.Error()}
	}
	return r
}
