package scenario

import (
	"testing"
	"time"

	"repro/internal/units"
)

// TestSpecNewWorldPartitioning pins when a spec actually yields a
// partitioned world and when it falls back to serial.
func TestSpecNewWorldPartitioning(t *testing.T) {
	base := Spec{App: "relay", DurationUS: int64(units.Second), Nodes: 24,
		Placement: PlacementLine, Partitions: 4}

	cases := []struct {
		name  string
		mut   func(*Spec)
		nodes int
		want  int
	}{
		{"partitioned", func(s *Spec) {}, 24, 4},
		{"serial-by-default", func(s *Spec) { s.Partitions = 0 }, 24, 1},
		{"no-placement-falls-back", func(s *Spec) { s.Placement = "" }, 24, 1},
		{"halt-world-falls-back", func(s *Spec) {
			s.BatteryUAH = 1
			s.DeathPolicy = DeathPolicyHaltWorld
		}, 24, 1},
		{"clamped-to-nodes", func(s *Spec) { s.Partitions = 100 }, 24, 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			if err := s.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			w, err := s.NewWorld(tc.nodes)
			if err != nil {
				t.Fatalf("NewWorld: %v", err)
			}
			if got := w.Partitions(); got != tc.want {
				t.Errorf("Partitions() = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestPartitionAssignContiguous checks the spatial assignment: balanced
// sizes, and every partition's node set occupies a contiguous range of the
// cell-sorted order (so regions are compact patches of the plane).
func TestPartitionAssignContiguous(t *testing.T) {
	s := Spec{App: "relay", DurationUS: int64(units.Second), Nodes: 100,
		Placement: PlacementRGG, Seed: 42}
	pos, err := s.Positions(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 8} {
		assign := partitionAssign(pos, s.effectiveTxRange(), k)
		counts := make([]int, k)
		for _, p := range assign {
			if p < 0 || p >= k {
				t.Fatalf("k=%d: partition index %d out of range", k, p)
			}
			counts[p]++
		}
		for p, c := range counts {
			if c < 100/k || c > 100/k+1 {
				t.Errorf("k=%d: partition %d has %d nodes, want balanced ~%d", k, p, c, 100/k)
			}
		}
	}
}

// TestPartitionedRunWallClock is a coarse liveness guard: a partitioned run
// must terminate promptly (no barrier deadlock, no horizon stall) even when
// pledges, deaths, and cross-border traffic interleave.
func TestPartitionedRunWallClock(t *testing.T) {
	s := Spec{App: "relay", DurationUS: int64(2 * units.Second), Nodes: 24,
		Origins: 8, Placement: PlacementLine, Partitions: 4, Seed: 3,
		PeriodUS: int64(200 * units.Millisecond)}
	in, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { in.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("partitioned run did not finish within 60s (stalled scheduler?)")
	}
}
