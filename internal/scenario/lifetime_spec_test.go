package scenario_test

import (
	"strings"
	"testing"

	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/scenario"
)

func validBatterySpec() scenario.Spec {
	return scenario.Spec{App: "blink", DurationUS: 1_000_000, BatteryUAH: 10}
}

func TestSpecBatteryValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*scenario.Spec)
		wantErr string
	}{
		{"valid battery", func(s *scenario.Spec) {}, ""},
		{"negative capacity", func(s *scenario.Spec) { s.BatteryUAH = -1 }, "battery_uah"},
		{"bad node key", func(s *scenario.Spec) {
			s.BatteryNodeUAH = map[string]float64{"two": 5}
		}, "node id"},
		{"negative node capacity", func(s *scenario.Spec) {
			s.BatteryNodeUAH = map[string]float64{"2": -5}
		}, "battery_node_uah"},
		{"harvest without battery", func(s *scenario.Spec) {
			s.BatteryUAH = 0
			s.Harvest = &scenario.HarvestSpec{Profile: "constant", UA: 100}
		}, "harvest requires"},
		{"unknown harvest profile", func(s *scenario.Spec) {
			s.Harvest = &scenario.HarvestSpec{Profile: "solar", UA: 100}
		}, "harvest profile"},
		{"periodic harvest missing period", func(s *scenario.Spec) {
			s.Harvest = &scenario.HarvestSpec{Profile: "periodic", UA: 100}
		}, "periodic harvest"},
		{"valid periodic harvest", func(s *scenario.Spec) {
			s.Harvest = &scenario.HarvestSpec{Profile: "periodic", UA: 100, PeriodUS: 1000, OnUS: 300}
		}, ""},
		{"unknown death policy", func(s *scenario.Spec) { s.DeathPolicy = "reboot" }, "death_policy"},
		{"death policy without battery", func(s *scenario.Spec) {
			s.BatteryUAH = 0
			s.DeathPolicy = scenario.DeathPolicyHaltWorld
		}, "requires a finite battery"},
		{"valid halt-world", func(s *scenario.Spec) { s.DeathPolicy = scenario.DeathPolicyHaltWorld }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validBatterySpec()
			c.mutate(&s)
			err := s.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestApplyBatteryPerNodeOverride(t *testing.T) {
	s := validBatterySpec()
	s.BatteryNodeUAH = map[string]float64{"2": 50, "3": 0}
	s.Harvest = &scenario.HarvestSpec{Profile: "constant", UA: 200}
	s.DeathPolicy = scenario.DeathPolicyHaltWorld

	var o mote.Options
	s.ApplyBattery(1, &o)
	if o.BatteryUAH != 10 || o.Harvester == nil || !o.HaltWorldOnDeath {
		t.Fatalf("node 1 options = %+v", o)
	}
	s.ApplyBattery(2, &o)
	if o.BatteryUAH != 50 {
		t.Fatalf("node 2 capacity = %v, want override 50", o.BatteryUAH)
	}
	// Explicit 0 in the map clears the battery entirely, even over a
	// previously-populated options struct.
	s.ApplyBattery(3, &o)
	if o.BatteryUAH != 0 || o.Harvester != nil || o.HaltWorldOnDeath {
		t.Fatalf("node 3 should have infinite supply: %+v", o)
	}
}

func TestHarvestSpecBuildsPowerLayerSources(t *testing.T) {
	h, err := (&scenario.HarvestSpec{Profile: "constant", UA: 123}).Harvester()
	if err != nil {
		t.Fatal(err)
	}
	if ua, until := h.CurrentAt(0); ua != 123 || until != power.HorizonForever {
		t.Fatalf("constant harvester = (%v, %v)", ua, until)
	}
	h, err = (&scenario.HarvestSpec{Profile: "periodic", UA: 50, PeriodUS: 1000, OnUS: 200}).Harvester()
	if err != nil {
		t.Fatal(err)
	}
	if ua, until := h.CurrentAt(0); ua != 50 || until != 200 {
		t.Fatalf("periodic harvester at 0 = (%v, %v)", ua, until)
	}
	if ua, _ := h.CurrentAt(500); ua != 0 {
		t.Fatalf("periodic harvester dark phase = %v", ua)
	}
}

// TestBatteryFieldsSweepable: the override machinery reaches the new knobs,
// including the structured harvest object and clearing it with null.
func TestBatteryFieldsSweepable(t *testing.T) {
	m := scenario.Matrix{
		Base: scenario.Spec{App: "blink", DurationUS: 1_000_000, Seed: 1, BatteryUAH: 5},
		Sweep: map[string][]any{
			"battery_uah": {2.0, 4.0},
			"harvest": {
				nil,
				map[string]any{"profile": "constant", "ua": 100},
			},
			"death_policy": {scenario.DeathPolicyHaltNode, scenario.DeathPolicyHaltWorld},
		},
	}
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("expanded %d specs, want 8", len(specs))
	}
	harvested := 0
	for _, s := range specs {
		if s.BatteryUAH != 2 && s.BatteryUAH != 4 {
			t.Fatalf("battery_uah not swept: %v", s.BatteryUAH)
		}
		if s.Harvest != nil {
			harvested++
			if s.Harvest.Profile != "constant" || s.Harvest.UA != 100 {
				t.Fatalf("harvest override mangled: %+v", s.Harvest)
			}
		}
	}
	if harvested != 4 {
		t.Fatalf("%d harvested specs, want 4", harvested)
	}
}
