package scenario_test

import (
	"encoding/json"
	"testing"

	_ "repro/internal/apps" // registers the paper's workloads
	"repro/internal/scenario"
)

// FuzzSpecJSON feeds arbitrary bytes through the spec pipeline a sweep file
// travels: JSON decode, Validate, ConfigKey, and — when the spec validates —
// Build. None of it may panic; malformed or hostile input must surface as an
// error (or a decode failure), never a crash. This is the door specs arrive
// through from user-written matrix files and the CLI.
func FuzzSpecJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"app":"blink","duration_us":1000000}`,
		`{"app":"relay","duration_us":2000000,"nodes":8,"origins":3,"placement":"line"}`,
		`{"app":"relay","duration_us":1000000,"traffic":{"shape":"constant","rps":10}}`,
		`{"app":"bounce","duration_us":1000000,"traffic":{"shape":"ramp","start_rps":1,"step_rps":2,"target_rps":9,"slot_us":500000}}`,
		`{"app":"sensesend","duration_us":1000000,"traffic":{"shape":"onoff","rps":20,"on_alpha":1.2}}`,
		`{"app":"relay","traffic":{"shape":"burst","rps":1,"burst_rps":50,"burst_us":1000,"period_us":100000}}`,
		`{"app":"relay","traffic":{"shape":"replay","file":"/nonexistent"}}`,
		`{"app":"relay","traffic":{"shape":"constant","rps":-1}}`,
		`{"app":"relay","record_traffic":true}`,
		`{"app":"blink","battery_uah":0.5,"death_policy":"halt_world","partitions":4}`,
		`{"app":"relay","duration_us":1e18,"traffic":{"shape":"diurnal","rps":1e308,"period_us":1}}`,
		`{"app":"relay","duration_us":2000000,"nodes":6,"placement":"line","routing":"ctp"}`,
		`{"app":"relay","duration_us":2000000,"nodes":9,"placement":"grid","routing":"ctp","beacon_period_ms":500,"battery_node_uah":{"5":60}}`,
		`{"app":"relay","duration_us":2000000,"nodes":6,"placement":"line","mobility":"waypoint","speed_mps":8}`,
		`{"app":"relay","duration_us":2000000,"nodes":6,"placement":"rgg","routing":"ctp","mobility":"drift"}`,
		`{"app":"blink","routing":"ctp"}`,
		`{"app":"relay","placement":"line","routing":"dsr","beacon_period_ms":-5,"speed_mps":1e308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return // a spec is small; huge inputs only slow the fuzzer down
		}
		var s scenario.Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		_ = s.ConfigKey()
		if err := s.Validate(); err != nil {
			return
		}
		// Keep validated fuzz builds cheap: tiny worlds, no files read beyond
		// the replay path (which errors cleanly on garbage), no running.
		if s.Nodes > 64 {
			return
		}
		if in, err := scenario.Build(s); err == nil && in == nil {
			t.Fatal("Build returned nil instance with nil error")
		}
	})
}
