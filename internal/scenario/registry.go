package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/mote"
	"repro/internal/traffic"
)

// Instance is one constructed-but-not-yet-run scenario: a fresh isolated
// world plus the app wired into it. App holds the workload struct (for
// example *apps.Blink) so callers that need richer access than the compact
// Result — activity labels, app counters, the oscilloscope bench — can type
// assert it.
type Instance struct {
	Spec  Spec
	World *mote.World
	App   any
	// Metrics, when non-nil, extracts the app's headline counters after the
	// run (wake-ups, packets delivered, false-positive rate, ...). They ride
	// into Result.Metrics and from there into cross-run aggregation.
	Metrics func() map[string]float64
	// Traffic, when the spec set record_traffic, is the recorder holding the
	// run's realized send schedule; write it out with WriteJSONL after Run.
	Traffic *traffic.Recorder

	// net memoizes the streaming analysis so Finish and Network share one
	// pass over the merged trace.
	net *analysis.Network
}

// Run advances the instance's world for the spec's duration and stamps the
// trace end on every node, leaving the logs complete for analysis.
func (in *Instance) Run() {
	in.World.Run(in.Spec.Duration())
	in.World.StampEnd()
}

// BuildFunc constructs an app from a spec. Implementations must build a
// fresh world per call (no shared mutable state) so runs can execute
// concurrently.
type BuildFunc func(spec Spec) (*Instance, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]BuildFunc)
)

// Register installs an app constructor under a name. internal/apps registers
// the paper's workloads at init; external binaries can register their own
// before expanding specs that reference them. Registering a duplicate name
// panics: it is a wiring bug, not a runtime condition.
func Register(name string, fn BuildFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || fn == nil {
		panic("scenario: Register with empty name or nil builder")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: app %q registered twice", name))
	}
	registry[name] = fn
}

// Apps lists the registered app names, sorted.
func Apps() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	//quanto:ordered key collection is sorted below before returning
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build validates the spec and constructs its app through the registry.
func Build(spec Spec) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	regMu.RLock()
	fn := registry[spec.App]
	regMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("scenario: unknown app %q (registered: %v)", spec.App, Apps())
	}
	in, err := fn(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: build %q: %w", spec.App, err)
	}
	in.Spec = spec
	return in, nil
}
