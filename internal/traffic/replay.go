package traffic

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// TraceVersion is the record format version carried in the JSONL header
// line; bump it if the event schema ever changes incompatibly.
const TraceVersion = 1

// header is the first line of a recorded trace.
type header struct {
	QuantoTraffic int `json:"quanto_traffic"`
}

// Event is one recorded send: the world node id that sent and the simulated
// microsecond it sent at. Events serialize one per JSONL line, sorted by
// (at_us, node).
type Event struct {
	Node int   `json:"node"`
	AtUS int64 `json:"at_us"`
}

// Recorder captures a run's realized send schedule. Each sender gets its own
// slot — a single-writer slice, because under a partitioned world each
// node's events run on its partition's goroutine during parallel windows —
// and the merge into one sorted event stream happens only after the run.
type Recorder struct {
	ids   []core.NodeID
	times [][]units.Ticks
}

// NewRecorder sizes a recorder for the given sender ids (slot i records
// sender ids[i]).
func NewRecorder(ids []core.NodeID) *Recorder {
	return &Recorder{
		ids:   append([]core.NodeID(nil), ids...),
		times: make([][]units.Ticks, len(ids)),
	}
}

// Hook returns slot's capture function, to be called from that sender's own
// event context only.
func (r *Recorder) Hook(slot int) func(units.Ticks) {
	return func(t units.Ticks) { r.times[slot] = append(r.times[slot], t) }
}

// Events merges every slot into one stream sorted by (at_us, node). Shaped
// schedules are tie-free across senders, so the order is total; the node id
// tiebreak only matters for hand-built traces.
func (r *Recorder) Events() []Event {
	n := 0
	for _, ts := range r.times {
		n += len(ts)
	}
	out := make([]Event, 0, n)
	for slot, ts := range r.times {
		for _, t := range ts {
			out = append(out, Event{Node: int(r.ids[slot]), AtUS: int64(t)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AtUS != out[j].AtUS {
			return out[i].AtUS < out[j].AtUS
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// WriteJSONL writes the recorded schedule: the version header line, then one
// event per line in (at_us, node) order. The output depends only on the
// run's content, so recording the same spec twice produces byte-identical
// files.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"quanto_traffic\":%d}\n", TraceVersion); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(bw, "{\"node\":%d,\"at_us\":%d}\n", e.Node, e.AtUS); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Trace is a parsed recorded schedule, ready to be replayed: per-node send
// ticks in recorded order. It implements Shape — the replay generator — by
// handing each sender the tick list of its node id.
type Trace struct {
	byNode map[int][]units.Ticks
	events int
}

// Events returns the total number of recorded sends.
func (tr *Trace) Events() int { return tr.events }

// Nodes returns the sender ids present in the trace, sorted.
func (tr *Trace) Nodes() []int {
	out := make([]int, 0, len(tr.byNode))
	//quanto:ordered key collection is sorted below before returning
	for id := range tr.byNode {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Source returns the replay schedule for node id: exactly the recorded
// ticks, in recorded order. Senders absent from the trace stay silent. The
// slot and rng are unused — a replay consumes no randomness, which is what
// keeps it byte-identical to the run that recorded it.
func (tr *Trace) Source(slot, id int, rng *sim.RNG) Source {
	return &listSource{times: tr.byNode[id]}
}

type listSource struct {
	times []units.Ticks
	i     int
}

func (l *listSource) Next() (units.Ticks, bool) {
	if l.i >= len(l.times) {
		return 0, false
	}
	t := l.times[l.i]
	l.i++
	return t, true
}

// maxTraceLine bounds one JSONL line; a well-formed event line is under 60
// bytes, so anything this long is garbage input, not a big schedule.
const maxTraceLine = 1 << 16

// ParseTrace reads a recorded schedule. It returns errors — never panics —
// on malformed input: bad JSON, wrong version, unknown fields, negative
// ids or times, or per-node times out of order (a recorded schedule is
// strictly increasing per sender; anything else cannot have come from the
// recorder). An empty input parses as an empty trace, which replays as
// silence.
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxTraceLine)
	tr := &Trace{byNode: make(map[int][]units.Ticks)}
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !sawHeader {
			sawHeader = true
			var h header
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&h); err == nil && h.QuantoTraffic != 0 {
				if h.QuantoTraffic != TraceVersion {
					return nil, fmt.Errorf("traffic: trace version %d, this build reads %d", h.QuantoTraffic, TraceVersion)
				}
				continue
			}
			// Not a header: fall through and parse it as an event, so
			// headerless hand-built traces still load.
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %v", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("traffic: trace line %d: trailing data after event", line)
		}
		if e.Node < 0 || e.AtUS < 0 {
			return nil, fmt.Errorf("traffic: trace line %d: negative node or at_us", line)
		}
		ts := tr.byNode[e.Node]
		if len(ts) > 0 && units.Ticks(e.AtUS) <= ts[len(ts)-1] {
			return nil, fmt.Errorf("traffic: trace line %d: node %d times not strictly increasing", line, e.Node)
		}
		tr.byNode[e.Node] = append(ts, units.Ticks(e.AtUS))
		tr.events++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: read trace: %v", err)
	}
	return tr, nil
}

// LoadTrace parses the recorded schedule at path.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: %v", err)
	}
	defer f.Close()
	tr, err := ParseTrace(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("traffic: %s: %v", path, err)
	}
	return tr, nil
}
