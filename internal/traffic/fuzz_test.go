package traffic

import (
	"strings"
	"testing"
)

// FuzzTraceReplayParse is the replay parser's crash wall: arbitrary bytes
// must produce either a parsed trace or an error — never a panic — and a
// successfully parsed trace must yield well-formed (strictly increasing)
// replay schedules. CI runs a short -fuzz smoke on top of the checked-in
// corpus below.
func FuzzTraceReplayParse(f *testing.F) {
	f.Add("")
	f.Add("{\"quanto_traffic\":1}\n")
	f.Add("{\"quanto_traffic\":1}\n{\"node\":1,\"at_us\":100}\n{\"node\":2,\"at_us\":101}\n")
	f.Add("{\"node\":3,\"at_us\":0}\n")
	f.Add("{\"node\":1,\"at_us\":9}\n{\"node\":1,\"at_us\":3}\n")
	f.Add("{\"node\":-1,\"at_us\":5}\n")
	f.Add("{\"node\":1e9,\"at_us\":5}\n")
	f.Add("garbage\n")
	f.Add("{\"quanto_traffic\":2}\n")
	f.Add(strings.Repeat("{\"node\":1,\"at_us\":", 50))
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, id := range tr.Nodes() {
			src := tr.Source(0, id, nil)
			last, n := int64(-1), 0
			for n < 1<<16 {
				tick, ok := src.Next()
				if !ok {
					break
				}
				if int64(tick) <= last {
					t.Fatalf("node %d replay schedule not strictly increasing: %d after %d", id, tick, last)
				}
				last = int64(tick)
				n++
			}
		}
	})
}
