package traffic

import (
	"repro/internal/kernel"
	"repro/internal/units"
)

// Drive arms src's schedule on the node's kernel: a self-rearming one-shot
// timer chain that calls send at every schedule tick. Entries at or before
// the kernel's current time are skipped — the node wasn't ready to send
// (typically: radio still booting), and a skipped entry is exactly what the
// recorder would not have captured, so record-then-replay round-trips.
//
// record (may be nil) observes every fire with its scheduled tick; it runs
// in the node's own event context, so a per-slot recorder hook is
// single-writer under partitioned stepping.
//
// Call Drive with the CPU bound to the activity the sends should be charged
// to: the kernel timer captures the current activity when armed and restores
// it at every fire, the same instrumentation path fixed-period app timers
// use.
func Drive(k *kernel.Kernel, src Source, record func(units.Ticks), send func()) {
	now := k.NowTicks()
	at, ok := src.Next()
	for ok && at <= now {
		at, ok = src.Next()
	}
	if !ok {
		return
	}
	var t *kernel.Timer
	t = k.NewTimer(func() {
		if record != nil {
			record(at)
		}
		send()
		prev := at
		var more bool
		at, more = src.Next()
		for more && at <= prev {
			at, more = src.Next()
		}
		if more {
			t.StartOneShot(at - k.NowTicks())
		}
	})
	t.StartOneShot(at - now)
}
