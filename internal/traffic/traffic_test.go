package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// drain pulls up to n entries or until the source ends or passes limit.
func drain(src Source, n int, limit units.Ticks) []units.Ticks {
	var out []units.Ticks
	for len(out) < n {
		t, ok := src.Next()
		if !ok || t > limit {
			break
		}
		out = append(out, t)
	}
	return out
}

func specs() map[string]*Spec {
	return map[string]*Spec{
		"constant": {Shape: ShapeConstant, RPS: 10},
		"ramp":     {Shape: ShapeRamp, StartRPS: 2, StepRPS: 2, TargetRPS: 10, SlotUS: int64(2 * units.Second)},
		"burst":    {Shape: ShapeBurst, RPS: 1, BurstRPS: 50, BurstUS: int64(100 * units.Millisecond), PeriodUS: int64(units.Second)},
		"diurnal":  {Shape: ShapeDiurnal, RPS: 10, PeriodUS: int64(10 * units.Second)},
		"onoff":    {Shape: ShapeOnOff, RPS: 20},
	}
}

// TestShapesMonotonicAndDeterministic pins the two properties every source
// must have: strictly increasing ticks, and the same seed yielding the same
// schedule.
func TestShapesMonotonicAndDeterministic(t *testing.T) {
	const horizon = 60 * units.Second
	for name, sp := range specs() {
		t.Run(name, func(t *testing.T) {
			ids := []core.NodeID{1, 2, 3}
			a, err := Sources(sp, 42, ids)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Sources(sp, 42, ids)
			if err != nil {
				t.Fatal(err)
			}
			for slot := range ids {
				ta := drain(a[slot], 5000, horizon)
				tb := drain(b[slot], 5000, horizon)
				if len(ta) == 0 {
					t.Fatalf("slot %d produced no sends in %v", slot, horizon)
				}
				if len(ta) != len(tb) {
					t.Fatalf("slot %d not deterministic: %d vs %d sends", slot, len(ta), len(tb))
				}
				for i := range ta {
					if ta[i] != tb[i] {
						t.Fatalf("slot %d send %d differs: %v vs %v", slot, i, ta[i], tb[i])
					}
					if i > 0 && ta[i] <= ta[i-1] {
						t.Fatalf("slot %d not strictly increasing at %d: %v then %v", slot, i, ta[i-1], ta[i])
					}
				}
			}
		})
	}
}

// TestStaggerTieFree pins the partitioning contract: across every generated
// shape, no two sender slots ever share a send tick, because slot i only
// emits ticks ≡ i (mod senders).
func TestStaggerTieFree(t *testing.T) {
	const horizon = 120 * units.Second
	for name, sp := range specs() {
		t.Run(name, func(t *testing.T) {
			ids := []core.NodeID{1, 2, 3, 4, 5}
			srcs, err := Sources(sp, 7, ids)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[units.Ticks]int)
			for slot, src := range srcs {
				for _, tick := range drain(src, 3000, horizon) {
					if int64(tick)%int64(len(ids)) != int64(slot) {
						t.Fatalf("slot %d emitted off-residue tick %d", slot, tick)
					}
					if other, dup := seen[tick]; dup {
						t.Fatalf("slots %d and %d share tick %d", other, slot, tick)
					}
					seen[tick] = slot
				}
			}
		})
	}
}

// TestConstantRate sanity-checks the constant shape's realized rate.
func TestConstantRate(t *testing.T) {
	srcs, err := Sources(&Spec{Shape: ShapeConstant, RPS: 25}, 1, []core.NodeID{9})
	if err != nil {
		t.Fatal(err)
	}
	got := len(drain(srcs[0], 1<<20, 10*units.Second))
	if got < 245 || got > 255 {
		t.Fatalf("constant 25 rps over 10 s: want ~250 sends, got %d", got)
	}
}

// TestRampRate checks the invitro contract: the rate climbs start→target in
// step increments per slot, then holds.
func TestRampRate(t *testing.T) {
	sp := &Spec{Shape: ShapeRamp, StartRPS: 5, StepRPS: 5, TargetRPS: 15, SlotUS: int64(units.Second)}
	srcs, err := Sources(sp, 1, []core.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	perSlot := make(map[int64]int)
	for _, tick := range drain(srcs[0], 1<<20, 5*units.Second) {
		perSlot[int64(tick)/int64(units.Second)]++
	}
	for slot, want := range map[int64]int{0: 5, 1: 10, 2: 15, 3: 15, 4: 15} {
		got := perSlot[slot]
		if got < want-1 || got > want+1 {
			t.Errorf("slot %d: want ~%d sends, got %d", slot, want, got)
		}
	}
}

// TestBurstShape checks that bursts dominate the schedule and the silent
// floor actually silences inter-burst gaps.
func TestBurstShape(t *testing.T) {
	sp := &Spec{Shape: ShapeBurst, RPS: 0, BurstRPS: 100, BurstUS: int64(50 * units.Millisecond), PeriodUS: int64(units.Second)}
	srcs, err := Sources(sp, 3, []core.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	ticks := drain(srcs[0], 1<<20, 10*units.Second)
	if len(ticks) == 0 {
		t.Fatal("no sends")
	}
	for _, tick := range ticks {
		pos := int64(tick) % int64(units.Second)
		// Stagger moves a tick at most stride (=1) µs; allow 2 µs slack.
		if pos > int64(50*units.Millisecond)+2 {
			t.Fatalf("send at %d outside burst window (pos %d)", tick, pos)
		}
	}
}

// TestOnOffDwells checks that the onoff shape actually alternates activity
// and silence with heavy-ish dwells.
func TestOnOffDwells(t *testing.T) {
	sp := &Spec{Shape: ShapeOnOff, RPS: 50}
	srcs, err := Sources(sp, 11, []core.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	ticks := drain(srcs[0], 1<<20, 600*units.Second)
	if len(ticks) < 100 {
		t.Fatalf("onoff produced only %d sends in 600 s", len(ticks))
	}
	gaps := 0
	for i := 1; i < len(ticks); i++ {
		if ticks[i]-ticks[i-1] > units.Second {
			gaps++
		}
	}
	if gaps == 0 {
		t.Fatal("onoff never went silent for >1 s in 600 s; OFF dwells missing")
	}
}

// TestDiurnalCycle checks the rate swings within the cycle: the peak
// half-cycle carries more sends than the trough half-cycle.
func TestDiurnalCycle(t *testing.T) {
	period := 20 * units.Second
	sp := &Spec{Shape: ShapeDiurnal, RPS: 10, PeriodUS: int64(period)}
	srcs, err := Sources(sp, 5, []core.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	var trough, peak int
	for _, tick := range drain(srcs[0], 1<<20, 5*period) {
		pos := tick % period
		if pos < period/4 || pos >= 3*period/4 {
			trough++
		} else {
			peak++
		}
	}
	if peak <= trough*2 {
		t.Fatalf("diurnal swing too flat: peak-half %d vs trough-half %d sends", peak, trough)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Spec{
		{},
		{Shape: "squarewave"},
		{Shape: ShapeConstant},
		{Shape: ShapeConstant, RPS: -1},
		{Shape: ShapeRamp, StartRPS: 5, StepRPS: 5, TargetRPS: 1, SlotUS: 100},
		{Shape: ShapeRamp, StartRPS: 5, StepRPS: 0, TargetRPS: 10, SlotUS: 100},
		{Shape: ShapeBurst, RPS: 1, BurstRPS: 10, BurstUS: 100, PeriodUS: 100},
		{Shape: ShapeBurst, RPS: -1, BurstRPS: 10, BurstUS: 10, PeriodUS: 100},
		{Shape: ShapeDiurnal, RPS: 10},
		{Shape: ShapeDiurnal, RPS: 10, PeriodUS: 100, DepthFrac: 1.5},
		{Shape: ShapeOnOff},
		{Shape: ShapeOnOff, RPS: 10, OnAlpha: 0.5},
		{Shape: ShapeReplay},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", sp)
		}
	}
	good := []*Spec{
		{Shape: ShapeConstant, RPS: 1},
		{Shape: ShapeRamp, StartRPS: 1, StepRPS: 1, TargetRPS: 2, SlotUS: 1000},
		{Shape: ShapeBurst, BurstRPS: 10, BurstUS: 10, PeriodUS: 100},
		{Shape: ShapeDiurnal, RPS: 1, PeriodUS: 1000},
		{Shape: ShapeOnOff, RPS: 1, OnAlpha: 1.5, OffAlpha: 1.9},
		{Shape: ShapeReplay, File: "x.jsonl"},
	}
	for _, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", sp, err)
		}
	}
}

// TestRecorderRoundTrip writes a schedule and parses it back: events, order
// and per-node times must survive, and re-serialization must be
// byte-identical.
func TestRecorderRoundTrip(t *testing.T) {
	rec := NewRecorder([]core.NodeID{3, 7})
	h0, h1 := rec.Hook(0), rec.Hook(1)
	h0(10)
	h0(14)
	h1(11)
	h1(1000)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	tr, err := ParseTrace(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 4 {
		t.Fatalf("want 4 events, got %d", tr.Events())
	}
	src := tr.Source(0, 3, sim.NewRNG(1))
	got := drain(src, 10, math.MaxInt64)
	if len(got) != 2 || got[0] != 10 || got[1] != 14 {
		t.Fatalf("node 3 replay schedule %v, want [10 14]", got)
	}
	if s := tr.Source(0, 99, nil); s == nil {
		t.Fatal("absent node must replay as silence, not nil source")
	} else if _, ok := s.Next(); ok {
		t.Fatal("absent node produced a send")
	}

	// Replaying through a second recorder must re-serialize identically.
	rec2 := NewRecorder([]core.NodeID{3, 7})
	for slot, id := range []core.NodeID{3, 7} {
		hook := rec2.Hook(slot)
		s := tr.Source(slot, int(id), nil)
		for tick, ok := s.Next(); ok; tick, ok = s.Next() {
			hook(tick)
		}
	}
	var buf2 bytes.Buffer
	if err := rec2.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatalf("record→replay→record not byte-identical:\n%q\nvs\n%q", first, buf2.String())
	}
}

// TestParseTraceErrors pins errors-not-crashes on malformed traces.
func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"{\"quanto_traffic\":99}\n",
		"{\"node\":1,\"at_us\":5}\nnot json\n",
		"{\"node\":-1,\"at_us\":5}\n",
		"{\"node\":1,\"at_us\":-5}\n",
		"{\"node\":1,\"at_us\":5}\n{\"node\":1,\"at_us\":5}\n",
		"{\"node\":1,\"at_us\":9}\n{\"node\":1,\"at_us\":3}\n",
		"{\"node\":1,\"at_us\":5,\"extra\":1}\n",
		"{\"node\":1,\"at_us\":5} {\"node\":2,\"at_us\":6}\n",
	}
	for _, in := range bad {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ParseTrace(%q) accepted malformed input", in)
		}
	}
	// Headerless and empty traces load.
	if tr, err := ParseTrace(strings.NewReader("{\"node\":2,\"at_us\":7}\n")); err != nil || tr.Events() != 1 {
		t.Errorf("headerless trace: events=%v err=%v", tr, err)
	}
	if tr, err := ParseTrace(strings.NewReader("")); err != nil || tr.Events() != 0 {
		t.Errorf("empty trace: %v err=%v", tr, err)
	}
}
