// Package traffic is the synthetic offered-load engine: it turns a small
// declarative Spec into deterministic per-node send schedules, so every app
// can be driven by shaped load — constant RPS, invitro-style ramps, bursts,
// diurnal cycles, heavy-tailed ON/OFF sources — instead of the fixed-period
// traffic it was born with, and so one run's realized schedule can be
// recorded and replayed against a different radio/battery/placement
// configuration for apples-to-apples energy comparisons.
//
// Determinism is the package's contract, inherited from the scenario layer:
//
//   - Every sender draws randomness only from its own private stream, derived
//     from the run seed and the sender's node id. Shapes never touch the
//     world's RNG, so a shaped run consumes exactly the same backoff /
//     interference / ripple draws as an unshaped one, and a replayed run
//     (which consumes no traffic randomness at all) is byte-identical to the
//     shaped run that recorded it.
//   - Generated schedules are phase-staggered onto disjoint tick residues:
//     sender slot i only ever sends on ticks ≡ i (mod number-of-senders), so
//     no two senders can share a send tick. Independent same-tick events are
//     the one thing a partitioned run cannot order reproducibly; the stagger
//     makes shaped load tie-free by construction, for any shape, any seed.
//   - Replay sources bypass the stagger: their times were recorded from an
//     already tie-free run and must be re-armed exactly as written.
//
// The record format is JSONL — a `{"quanto_traffic":1}` header line followed
// by one `{"node":N,"at_us":T}` object per send, sorted by (at_us, node) —
// chosen so traces diff cleanly, concatenate trivially, and parse with
// errors rather than crashes on malformed input (FuzzTraceReplayParse pins
// that).
package traffic

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// Source is one sender's schedule: successive Next calls return the sender's
// send ticks in strictly increasing order; ok=false ends the schedule.
// Sources are single-goroutine objects owned by their node's event context.
type Source interface {
	Next() (units.Ticks, bool)
}

// Shape builds per-sender sources. slot is the sender's dense 0-based index
// among the run's shaped senders (it drives the tie-freedom stagger), id its
// world node id (it drives replay lookup and RNG stream derivation), rng the
// sender's private stream — implementations must draw randomness only from
// it.
type Shape interface {
	Source(slot, id int, rng *sim.RNG) Source
}

// Shape names for Spec.Shape.
const (
	ShapeConstant = "constant"
	ShapeRamp     = "ramp"
	ShapeBurst    = "burst"
	ShapeDiurnal  = "diurnal"
	ShapeOnOff    = "onoff"
	ShapeReplay   = "replay"
)

// Spec is the declarative, JSON-stable form of a traffic shape — the value
// of the scenario spec's "traffic" field, and therefore sweepable like any
// other field. All rates are per-sender sends per second; all durations are
// simulated microseconds.
type Spec struct {
	// Shape selects the generator: "constant", "ramp", "burst", "diurnal",
	// "onoff", or "replay". Required.
	Shape string `json:"shape"`

	// RPS is the sends-per-second rate: the whole schedule for "constant",
	// the between-burst floor for "burst" (0 keeps the channel silent
	// between bursts), the in-ON-period rate for "onoff", and the cycle
	// mean for "diurnal".
	RPS float64 `json:"rps,omitempty"`

	// StartRPS/StepRPS/TargetRPS/SlotUS shape the "ramp": the rate starts
	// at StartRPS, increases by StepRPS every SlotUS, and holds at
	// TargetRPS once reached — the invitro trace-synthesizer contract
	// (start / step / target RPS over fixed slots).
	StartRPS  float64 `json:"start_rps,omitempty"`
	StepRPS   float64 `json:"step_rps,omitempty"`
	TargetRPS float64 `json:"target_rps,omitempty"`
	SlotUS    int64   `json:"slot_us,omitempty"`

	// BurstRPS/BurstUS/PeriodUS shape the "burst": every PeriodUS, the rate
	// jumps to BurstRPS for the first BurstUS, then falls back to RPS.
	// PeriodUS is also the "diurnal" cycle length.
	BurstRPS float64 `json:"burst_rps,omitempty"`
	BurstUS  int64   `json:"burst_us,omitempty"`
	PeriodUS int64   `json:"period_us,omitempty"`

	// DepthFrac is the "diurnal" swing: the rate follows
	// RPS·(1 − DepthFrac·cos(2πt/PeriodUS)), trough at t=0, peak half a
	// cycle in. 0 selects 0.8; valid (0, 1).
	DepthFrac float64 `json:"depth_frac,omitempty"`

	// OnAlpha/OffAlpha/OnMinUS/OffMinUS shape the "onoff" source: ON and
	// OFF dwell times are Pareto(alpha, min) draws from the sender's
	// private stream — the heavy-tailed dwell model — and the sender emits
	// at RPS while ON. Alphas default to 1.5; minimums to 1 s (ON) and 2 s
	// (OFF). Alphas in (1, 2] give finite-mean, infinite-variance dwells,
	// the classic self-similar-load regime.
	OnAlpha  float64 `json:"on_alpha,omitempty"`
	OffAlpha float64 `json:"off_alpha,omitempty"`
	OnMinUS  int64   `json:"on_min_us,omitempty"`
	OffMinUS int64   `json:"off_min_us,omitempty"`

	// File is the "replay" trace path: a JSONL schedule previously written
	// by the recorder (`quanto-trace record`). Each sender re-arms exactly
	// the recorded ticks for its node id; senders absent from the trace
	// stay silent. Relative paths resolve against the process working
	// directory.
	File string `json:"file,omitempty"`
}

// Defaults for the onoff shape's dwell distributions.
const (
	defaultAlpha    = 1.5
	defaultOnMinUS  = int64(units.Second)
	defaultOffMinUS = int64(2 * units.Second)
	defaultDepth    = 0.8
)

// paretoCapUS bounds a single Pareto dwell draw (~18.6 min). Heavy tails are
// the point of the onoff shape, but an unbounded draw can eat a whole run in
// one OFF period; the cap keeps tails long while keeping every seed's run
// observable.
const paretoCapUS = int64(1) << 30

// Validate checks the spec the way scenario.Spec.Validate checks its fields:
// loudly, before any run starts.
func (s *Spec) Validate() error {
	switch s.Shape {
	case ShapeConstant:
		if s.RPS <= 0 {
			return fmt.Errorf("traffic: constant shape needs rps > 0, got %v", s.RPS)
		}
	case ShapeRamp:
		if s.StartRPS <= 0 || s.StepRPS <= 0 || s.TargetRPS < s.StartRPS || s.SlotUS <= 0 {
			return fmt.Errorf("traffic: ramp needs start_rps > 0, step_rps > 0, target_rps >= start_rps and slot_us > 0")
		}
	case ShapeBurst:
		if s.BurstRPS <= 0 || s.BurstUS <= 0 || s.PeriodUS <= s.BurstUS {
			return fmt.Errorf("traffic: burst needs burst_rps > 0, burst_us > 0 and period_us > burst_us")
		}
		if s.RPS < 0 {
			return fmt.Errorf("traffic: burst floor rps must be >= 0, got %v", s.RPS)
		}
	case ShapeDiurnal:
		if s.RPS <= 0 || s.PeriodUS <= 0 {
			return fmt.Errorf("traffic: diurnal needs rps > 0 and period_us > 0")
		}
		if s.DepthFrac != 0 && (s.DepthFrac <= 0 || s.DepthFrac >= 1) {
			return fmt.Errorf("traffic: depth_frac must be in (0, 1) (or 0 for the default), got %v", s.DepthFrac)
		}
	case ShapeOnOff:
		if s.RPS <= 0 {
			return fmt.Errorf("traffic: onoff needs rps > 0, got %v", s.RPS)
		}
		if s.OnAlpha < 0 || s.OffAlpha < 0 || s.OnMinUS < 0 || s.OffMinUS < 0 {
			return fmt.Errorf("traffic: onoff alphas and minimum dwells must be >= 0")
		}
		if (s.OnAlpha != 0 && s.OnAlpha <= 1) || (s.OffAlpha != 0 && s.OffAlpha <= 1) {
			return fmt.Errorf("traffic: onoff alphas must be > 1 for finite mean dwells (or 0 for the default)")
		}
	case ShapeReplay:
		if s.File == "" {
			return fmt.Errorf("traffic: replay needs a file")
		}
	case "":
		return fmt.Errorf("traffic: spec has no shape")
	default:
		return fmt.Errorf("traffic: unknown shape %q (want %q, %q, %q, %q, %q or %q)", s.Shape,
			ShapeConstant, ShapeRamp, ShapeBurst, ShapeDiurnal, ShapeOnOff, ShapeReplay)
	}
	return nil
}

// NewShape builds the spec's generator. Replay specs read their trace file
// here, once per run, so a sweep touching many replay runs pays the parse
// per run, not per sender.
func (s *Spec) NewShape() (Shape, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Shape {
	case ShapeConstant:
		return constantShape{rps: s.RPS}, nil
	case ShapeRamp:
		return rampShape{start: s.StartRPS, step: s.StepRPS, target: s.TargetRPS, slot: s.SlotUS}, nil
	case ShapeBurst:
		return burstShape{floor: s.RPS, burst: s.BurstRPS, burstUS: s.BurstUS, periodUS: s.PeriodUS}, nil
	case ShapeDiurnal:
		d := s.DepthFrac
		if d == 0 {
			d = defaultDepth
		}
		return diurnalShape{mean: s.RPS, depth: d, periodUS: s.PeriodUS}, nil
	case ShapeOnOff:
		sh := onOffShape{
			rps:    s.RPS,
			onA:    s.OnAlpha,
			offA:   s.OffAlpha,
			onMin:  s.OnMinUS,
			offMin: s.OffMinUS,
		}
		if sh.onA == 0 {
			sh.onA = defaultAlpha
		}
		if sh.offA == 0 {
			sh.offA = defaultAlpha
		}
		if sh.onMin == 0 {
			sh.onMin = defaultOnMinUS
		}
		if sh.offMin == 0 {
			sh.offMin = defaultOffMinUS
		}
		return sh, nil
	case ShapeReplay:
		return LoadTrace(s.File)
	}
	// Validate covered every shape; this is unreachable.
	return nil, fmt.Errorf("traffic: unknown shape %q", s.Shape)
}

// Sources builds the run's per-sender schedules: one source per sender id,
// each on a private RNG stream derived from the run seed under the
// "traffic/sender" domain tag with the sender's node id as salt — so traffic
// streams are decorrelated from every other consumer of the run seed
// (spatial layout, channel loss, backoff) and from each other. Each
// generated schedule is staggered onto tick residue slot (mod len(ids)) so
// no two senders ever share a send tick. Replay schedules pass through
// unstaggered — their ticks were recorded from an already tie-free run and
// must re-arm exactly.
func Sources(sp *Spec, seed uint64, ids []core.NodeID) ([]Source, error) {
	shape, err := sp.NewShape()
	if err != nil {
		return nil, err
	}
	out := make([]Source, len(ids))
	for slot, id := range ids {
		rng := sim.DeriveRNG(seed, "traffic/sender", uint64(id))
		src := shape.Source(slot, int(id), rng)
		if sp.Shape != ShapeReplay {
			src = &staggered{src: src, slot: units.Ticks(slot), stride: units.Ticks(len(ids))}
		}
		out[slot] = src
	}
	return out, nil
}

// staggered maps a raw schedule onto the slot's tick residue class: every
// emitted tick ≡ slot (mod stride), each within stride ticks of the raw
// time, successive ticks at least stride apart. With senders on disjoint
// residues, two senders can never share a send tick — the tie-freedom
// partitioned stepping requires — at a worst-case timing cost of
// number-of-senders microseconds, far below a frame's airtime.
type staggered struct {
	src          Source
	slot, stride units.Ticks
	last         units.Ticks
}

func (s *staggered) Next() (units.Ticks, bool) {
	t, ok := s.src.Next()
	if !ok {
		return 0, false
	}
	q := t - t%s.stride + s.slot
	if q <= s.last {
		q = s.last + s.stride
	}
	s.last = q
	return q, true
}

// rate-driven sources: the generic schedule stepper walks simulated time in
// float microseconds, spacing sends 1e6/rate(t) apart, with a 1 µs floor so
// the integer tick sequence stays strictly increasing. Rates are evaluated
// at the previous send, which makes the schedule an explicit-Euler walk of
// the rate curve — exact for piecewise-constant shapes away from their
// boundaries, and deterministically approximate within one inter-send gap
// of them.

func stepAt(t, rate float64) float64 {
	dt := 1e6 / rate
	if dt < 1 {
		dt = 1
	}
	return t + dt
}

type constantShape struct{ rps float64 }

func (c constantShape) Source(slot, id int, rng *sim.RNG) Source {
	return &rateSource{rate: func(float64) float64 { return c.rps }}
}

type rampShape struct {
	start, step, target float64
	slot                int64
}

func (r rampShape) Source(slot, id int, rng *sim.RNG) Source {
	return &rateSource{rate: func(t float64) float64 {
		rate := r.start + float64(int64(t)/r.slot)*r.step
		if rate > r.target {
			rate = r.target
		}
		return rate
	}}
}

type diurnalShape struct {
	mean, depth float64
	periodUS    int64
}

func (d diurnalShape) Source(slot, id int, rng *sim.RNG) Source {
	return &rateSource{rate: func(t float64) float64 {
		phase := 2 * math.Pi * math.Mod(t, float64(d.periodUS)) / float64(d.periodUS)
		return d.mean * (1 - d.depth*math.Cos(phase))
	}}
}

// rateSource emits sends 1e6/rate(t) µs apart for an always-positive rate
// curve.
type rateSource struct {
	t    float64
	rate func(t float64) float64
}

func (r *rateSource) Next() (units.Ticks, bool) {
	r.t = stepAt(r.t, r.rate(r.t))
	if r.t > math.MaxInt64/2 {
		return 0, false
	}
	return units.Ticks(r.t), true
}

// burstShape alternates a floor rate and a burst rate on a fixed cycle; a
// zero floor skips straight to the next burst window.
type burstShape struct {
	floor, burst      float64
	burstUS, periodUS int64
}

func (b burstShape) Source(slot, id int, rng *sim.RNG) Source {
	return &burstSource{sh: b}
}

type burstSource struct {
	sh burstShape
	t  float64
}

func (b *burstSource) Next() (units.Ticks, bool) {
	for {
		pos := int64(b.t) % b.sh.periodUS
		switch {
		case pos < b.sh.burstUS:
			b.t = stepAt(b.t, b.sh.burst)
		case b.sh.floor > 0:
			b.t = stepAt(b.t, b.sh.floor)
		default:
			// Silent floor: jump to the next burst window.
			b.t = b.t - float64(pos) + float64(b.sh.periodUS)
			continue
		}
		if b.t > math.MaxInt64/2 {
			return 0, false
		}
		return units.Ticks(b.t), true
	}
}

// onOffShape emits at a fixed rate during Pareto-distributed ON dwells
// separated by Pareto-distributed OFF dwells, both drawn from the sender's
// private stream.
type onOffShape struct {
	rps           float64
	onA, offA     float64
	onMin, offMin int64
}

func (o onOffShape) Source(slot, id int, rng *sim.RNG) Source {
	s := &onOffSource{sh: o, rng: rng}
	s.onEnd = float64(s.pareto(o.onA, o.onMin))
	return s
}

type onOffSource struct {
	sh    onOffShape
	rng   *sim.RNG
	t     float64
	onEnd float64
}

// pareto draws a Pareto(alpha, min) dwell, capped at paretoCapUS.
func (s *onOffSource) pareto(alpha float64, minUS int64) int64 {
	u := 1 - s.rng.Float64() // (0, 1]
	d := float64(minUS) * math.Pow(u, -1/alpha)
	if d > float64(paretoCapUS) {
		d = float64(paretoCapUS)
	}
	return int64(d)
}

func (s *onOffSource) Next() (units.Ticks, bool) {
	for {
		next := stepAt(s.t, s.sh.rps)
		if next <= s.onEnd {
			s.t = next
			return units.Ticks(s.t), true
		}
		// The ON dwell is over: sleep an OFF dwell, then start a fresh ON
		// dwell. Draw order is fixed (off, then on) so the stream replays
		// identically for a given seed.
		off := s.pareto(s.sh.offA, s.sh.offMin)
		on := s.pareto(s.sh.onA, s.sh.onMin)
		s.t = s.onEnd + float64(off)
		s.onEnd = s.t + float64(on)
		if s.t > math.MaxInt64/2 {
			return 0, false
		}
	}
}
