package net

import (
	"math"
	"sort"

	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/radio"
	"repro/internal/units"
)

// DefaultBeaconPeriod spaces routing beacons one second apart.
const DefaultBeaconPeriod = units.Second

// DefaultEnergyWeight is the parent-selection bias against energy-poor
// parents: an empty battery costs this many extra ETX in the comparison
// (never in the advertised cost). Half an expected transmission breaks ties
// toward fresher parents without overriding real link quality.
const DefaultEnergyWeight = 0.5

// switchHysteresis is how much better (in selection cost) a candidate must
// be before the router abandons a live parent — the standard CTP guard
// against parent flapping on noisy estimates.
const switchHysteresis = 0.5

// staleBeacons is how many silent beacon periods expel a neighbor from the
// table. Four periods keeps a gray-region link (PRR ≥ ~0.3) alive while
// evicting a broken one within seconds.
const staleBeacons = 4

// maxLinkETX caps the per-link estimate so one terrible link cannot poison
// the EWMA forever.
const maxLinkETX = 16.0

// etxAlphaNum/Den is the EWMA weight of history in the link estimator:
// etx' = (7·etx + gap)/8.
const (
	etxAlphaNum = 7
	etxAlphaDen = 8
)

// Neighbor is one row of a router's neighbor table.
type Neighbor struct {
	ID core.NodeID
	// LinkETX is the estimated expected transmissions over the link,
	// an EWMA of beacon sequence gaps.
	LinkETX float64
	// AdvETX is the neighbor's last advertised path ETX (+Inf: no route).
	AdvETX float64
	// Margin is the neighbor's last advertised remaining-energy fraction.
	Margin float64

	lastSeq   uint16
	seen      bool // a first beacon gives no gap, only a baseline
	lastHeard units.Ticks
}

// Config parameterizes one node's router.
type Config struct {
	// Root marks the collection root: it advertises path ETX 0 and never
	// selects a parent.
	Root bool
	// BeaconPeriod spaces this node's beacons (default DefaultBeaconPeriod).
	BeaconPeriod units.Ticks
	// Phase delays the first beacon. The Tree assigns every node a distinct
	// residue modulo the period so no two nodes' beacon timers systematically
	// share a tick — the same tie-freedom discipline the relay's staggered
	// generators follow.
	Phase units.Ticks
	// EnergyWeight biases parent selection against low-margin parents
	// (negative: no bias; zero selects DefaultEnergyWeight).
	EnergyWeight float64
}

// RouterStats is a snapshot of one router's counters.
type RouterStats struct {
	BeaconsTx      uint64
	BeaconsRx      uint64
	BeaconsSkipped uint64 // beacon rounds lost to a busy radio
	ParentChanges  uint64
	LoopAvoided    uint64 // selections rejected by the gradient check
}

// Router is one node's collection-tree state machine. All of its state is
// touched only from the owning node's events (beacon timer, AM delivery,
// and death notifications scheduled on the node's own simulator), so a
// partitioned world needs no locks around it.
type Router struct {
	k   *kernel.Kernel
	am  *am.AM
	rad *radio.Radio
	cfg Config
	act core.Label

	table   []Neighbor  // sorted by ID
	parent  core.NodeID // 0: no route
	pathETX float64     // advertised cost: 0 at root, +Inf parentless

	seq      uint16
	marginFn func() float64 // nil: mains-powered, margin 1

	stats RouterStats
}

// NewRouter wires a router over a node's AM stack. Call Start once the
// radio is listening.
func NewRouter(k *kernel.Kernel, a *am.AM, rad *radio.Radio, cfg Config) *Router {
	if cfg.BeaconPeriod <= 0 {
		cfg.BeaconPeriod = DefaultBeaconPeriod
	}
	switch {
	case cfg.EnergyWeight < 0:
		cfg.EnergyWeight = 0
	case cfg.EnergyWeight == 0:
		cfg.EnergyWeight = DefaultEnergyWeight
	}
	r := &Router{k: k, am: a, rad: rad, cfg: cfg, pathETX: math.Inf(1)}
	if cfg.Root {
		r.pathETX = 0
	}
	// Define the label here, at construction, not in Start: boot code runs
	// on partition workers and the activity dictionary is world-shared.
	r.act = k.DefineActivity("NetBeacon")
	a.Register(BeaconAMType, r.onBeacon)
	return r
}

// SetMarginFn installs the remaining-energy reading advertised in beacons
// (typically a battery's MarginFrac). Nil means mains power: margin 1.
func (r *Router) SetMarginFn(fn func() float64) { r.marginFn = fn }

// Start arms the beacon chain under the router's own activity label, so the
// tree's control-plane energy is attributed to routing rather than to
// whatever app work happened to be running.
func (r *Router) Start() {
	t := r.k.NewTimer(r.beaconFire)
	r.k.CPUAct.Set(r.act)
	t.StartPeriodicAfter(r.cfg.Phase, r.cfg.BeaconPeriod)
	r.k.CPUAct.SetIdle()
}

// Parent returns the current next hop toward the root (0, false: no route).
func (r *Router) Parent() (core.NodeID, bool) { return r.parent, r.parent != 0 }

// PathETX returns the node's advertised cost to the root.
func (r *Router) PathETX() float64 { return r.pathETX }

// Stats returns the router's counters.
func (r *Router) Stats() RouterStats { return r.stats }

// Neighbors returns a copy of the neighbor table, sorted by id.
func (r *Router) Neighbors() []Neighbor {
	out := make([]Neighbor, len(r.table))
	copy(out, r.table)
	return out
}

// neighbor finds a table row by id, or nil.
func (r *Router) neighbor(id core.NodeID) *Neighbor {
	i := sort.Search(len(r.table), func(i int) bool { return r.table[i].ID >= id })
	if i < len(r.table) && r.table[i].ID == id {
		return &r.table[i]
	}
	return nil
}

// ensureNeighbor returns the row for id, inserting a fresh one in sorted
// position if absent.
func (r *Router) ensureNeighbor(id core.NodeID) *Neighbor {
	i := sort.Search(len(r.table), func(i int) bool { return r.table[i].ID >= id })
	if i < len(r.table) && r.table[i].ID == id {
		return &r.table[i]
	}
	r.table = append(r.table, Neighbor{})
	copy(r.table[i+1:], r.table[i:])
	r.table[i] = Neighbor{ID: id, LinkETX: 1, AdvETX: math.Inf(1)}
	return &r.table[i]
}

// onBeacon folds a received beacon into the neighbor table and reconsiders
// the parent. Runs in task context on the receiving node, bound to the
// sender's beacon activity.
func (r *Router) onBeacon(p *am.Packet) {
	b, ok := decodeBeacon(p.Payload)
	if !ok {
		return
	}
	r.stats.BeaconsRx++
	nb := r.ensureNeighbor(p.Src)
	if nb.seen {
		// The gap between consecutively *heard* sequence numbers is a
		// geometric sample with mean 1/PRR — exactly the link's ETX.
		gap := b.Seq - nb.lastSeq // uint16 arithmetic handles wrap
		if gap == 0 {
			gap = 1
		}
		e := (etxAlphaNum*nb.LinkETX + float64(gap)) / etxAlphaDen
		if e > maxLinkETX {
			e = maxLinkETX
		}
		nb.LinkETX = e
	}
	nb.seen = true
	nb.lastSeq = b.Seq
	nb.AdvETX = b.PathETX
	nb.Margin = b.Margin
	nb.lastHeard = r.k.Sim.Now()
	r.reselect()
}

// beaconFire is one beacon round: expel stale neighbors, refresh the
// advertised cost, and broadcast — unless the radio is mid-transmission, in
// which case the round is skipped (beacons are soft state; the next round
// repairs it).
func (r *Router) beaconFire() {
	r.pruneStale(r.k.Sim.Now())
	r.reselect()
	r.seq++
	margin := 1.0
	if r.marginFn != nil {
		margin = r.marginFn()
	}
	if r.rad.Busy() {
		r.stats.BeaconsSkipped++
		return
	}
	b := Beacon{Seq: r.seq, PathETX: r.pathETX, Margin: margin}
	out := &am.Packet{
		Dest:    am.BroadcastAddr,
		Type:    BeaconAMType,
		Payload: b.encode(make([]byte, 0, BeaconBytes)),
	}
	r.stats.BeaconsTx++
	r.am.Send(out, nil)
}

// pruneStale drops neighbors silent for staleBeacons periods. A vanished
// parent (moved away, crashed) is noticed here even without a death event.
func (r *Router) pruneStale(now units.Ticks) {
	horizon := units.Ticks(staleBeacons) * r.cfg.BeaconPeriod
	kept := r.table[:0]
	for _, nb := range r.table {
		if now-nb.lastHeard <= horizon {
			kept = append(kept, nb)
			continue
		}
		if nb.ID == r.parent {
			r.parent = 0
			r.pathETX = math.Inf(1)
		}
	}
	r.table = kept
}

// NeighborDied removes a dead node from the table immediately — the
// topology event the Tree delivers one lookahead after a battery death —
// and re-selects the parent if the dead node was it.
func (r *Router) NeighborDied(id core.NodeID) {
	i := sort.Search(len(r.table), func(i int) bool { return r.table[i].ID >= id })
	if i >= len(r.table) || r.table[i].ID != id {
		return
	}
	r.table = append(r.table[:i], r.table[i+1:]...)
	if r.parent == id {
		r.parent = 0
		r.pathETX = math.Inf(1)
	}
	r.reselect()
}

// reselect recomputes the parent. Selection minimizes advertised-plus-link
// ETX biased by the energy weight against low-margin parents; the advertised
// cost itself stays unbiased. The gradient check — a new parent's offered
// cost must strictly undercut the current path ETX — is what keeps the tree
// a DAG: a descendant advertises a cost above ours by construction, so it
// can never pass.
func (r *Router) reselect() {
	if r.cfg.Root {
		return
	}
	// Refresh the advertised cost from the current parent first: a parent
	// whose link or own route degraded raises our cost, which is exactly
	// what lets a better candidate pass the strict-improvement check below.
	if cur := r.neighbor(r.parent); cur != nil && !math.IsInf(cur.AdvETX, 1) {
		r.pathETX = cur.AdvETX + cur.LinkETX
	} else if r.parent != 0 {
		r.parent = 0
		r.pathETX = math.Inf(1)
	}

	best := -1
	bestSel := math.Inf(1)
	for i := range r.table {
		nb := &r.table[i]
		if math.IsInf(nb.AdvETX, 1) {
			continue
		}
		sel := nb.AdvETX + nb.LinkETX + r.cfg.EnergyWeight*(1-nb.Margin)
		// Strict < keeps the lowest id on exact ties (the table is sorted).
		if sel < bestSel {
			best, bestSel = i, sel
		}
	}
	if best < 0 {
		return
	}
	cand := &r.table[best]
	if cand.ID == r.parent {
		return
	}
	offered := cand.AdvETX + cand.LinkETX
	if offered >= r.pathETX {
		// Gradient check: the candidate does not decrease the path cost —
		// routing through it could be routing through our own subtree.
		r.stats.LoopAvoided++
		return
	}
	if r.parent != 0 && r.pathETX-offered < switchHysteresis {
		// A live parent is only abandoned for a clear improvement.
		return
	}
	r.parent = cand.ID
	r.pathETX = offered
	r.stats.ParentChanges++
}
