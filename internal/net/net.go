// Package net is the routing layer of the node stack: a CTP-style
// collection tree that replaces app-hardcoded topology with parent
// selection learned from the radio environment.
//
// Each node runs a Router. Routers broadcast periodic beacons carrying a
// sequence number, the node's advertised path ETX (expected transmissions
// to reach the collection root), and its remaining-energy margin. Link ETX
// is estimated from beacon sequence gaps: over a link with packet reception
// ratio p the expected gap between consecutively *heard* beacons is exactly
// 1/p, so an EWMA of the gaps converges to the link's true ETX — the same
// per-link PRR process the medium's delivery tables record, observed from
// inside the network. Parent choice minimizes advertised-plus-link ETX,
// optionally biased against energy-poor parents; a gradient check (a parent
// must strictly decrease the path ETX) keeps the tree loop-free, and a TTL
// on routed data bounds the damage of any transient cycle while beacons
// re-converge.
//
// Deaths become topology events: the Tree subscribes to battery depletions
// and notifies every surviving router, which drops the dead neighbor and
// re-selects its parent — energy-aware rerouting, the behavior that makes
// network lifetime longer than first-parent lifetime.
//
// Determinism: routers consume no randomness at all (beacon phases are
// assigned arithmetically, estimation is pure EWMA), the package's mobility
// models draw only from sim.DeriveRNG streams under "net/"-prefixed domain
// tags, and death notifications are scheduled one conservative lookahead
// after the death tick at sim.PrioTopology — provably ahead of every
// partition's clock — so routed runs replay byte-identically across
// -workers and -partitions.
package net

import (
	"encoding/binary"
	"math"
)

// BeaconAMType is the Active Message type of routing beacons. (13 is the
// relay's data traffic.)
const BeaconAMType uint8 = 14

// BeaconBytes is the beacon payload length on the air.
const BeaconBytes = 5

// etxScale is the fixed-point scale of the wire ETX field (1/16 ETX
// resolution, range up to ~4095 ETX).
const etxScale = 16

// etxInfWire encodes "no route" (a parentless non-root node).
const etxInfWire = 0xFFFF

// Beacon is one decoded routing beacon.
type Beacon struct {
	// Seq increments once per beacon sent (wrapping); receivers estimate
	// link ETX from the gaps between heard values.
	Seq uint16
	// PathETX is the sender's advertised cost to the root in expected
	// transmissions (0 at the root, +Inf when the sender has no route).
	PathETX float64
	// Margin is the sender's remaining-energy fraction in [0, 1].
	Margin float64
}

// encode appends the beacon's wire form: seq (LE uint16), path ETX
// (LE uint16, 1/16 fixed point, 0xFFFF = no route), margin (uint8).
func (b Beacon) encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, b.Seq)
	etx := uint16(etxInfWire)
	if !math.IsInf(b.PathETX, 1) {
		v := b.PathETX * etxScale
		if v < 0 {
			v = 0
		}
		if v >= etxInfWire {
			v = etxInfWire - 1
		}
		etx = uint16(v)
	}
	dst = binary.LittleEndian.AppendUint16(dst, etx)
	m := b.Margin
	if m < 0 {
		m = 0
	}
	if m > 1 {
		m = 1
	}
	return append(dst, uint8(m*255))
}

// decodeBeacon parses a beacon payload.
func decodeBeacon(p []byte) (Beacon, bool) {
	if len(p) < BeaconBytes {
		return Beacon{}, false
	}
	b := Beacon{Seq: binary.LittleEndian.Uint16(p)}
	etx := binary.LittleEndian.Uint16(p[2:])
	if etx == etxInfWire {
		b.PathETX = math.Inf(1)
	} else {
		b.PathETX = float64(etx) / etxScale
	}
	b.Margin = float64(p[4]) / 255
	return b, true
}
