// Mobility models: medium.Mover implementations that make a node's position
// a pure, seed-derived function of simulated time. Both draw exclusively
// from sim.DeriveRNG streams under "net/"-prefixed domain tags keyed by
// node id, so mobile runs replay byte-identically whatever the worker or
// partition count — and adding a mover for node 7 never shifts node 9's
// path.
package net

import (
	"math"

	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/units"
)

// MobilityStep is the epoch at which the medium samples movers and patches
// the neighbor index — 250 ms: at pedestrian speeds a step moves a node a
// fraction of a meter, far below the link model's resolution, while keeping
// index maintenance off the per-frame hot path.
const MobilityStep = 250 * units.Millisecond

// fold reflects a coordinate into [0, limit] (triangle wave): walkers bounce
// off the area's walls instead of leaving the deployment.
func fold(x, limit float64) float64 {
	if limit <= 0 {
		return 0
	}
	m := math.Mod(x, 2*limit)
	if m < 0 {
		m += 2 * limit
	}
	if m > limit {
		m = 2*limit - m
	}
	return m
}

// Waypoint is the random-waypoint model: pick a uniform target in the area,
// walk to it in a straight line at constant speed, repeat. Legs materialize
// lazily in time order from the node's own derived stream, so PositionAt is
// a pure function of (seed, id, start, area, speed, t).
type Waypoint struct {
	rng   *sim.RNG
	area  float64
	speed float64 // meters per tick
	legs  []leg
}

// leg is one straight-line segment: from→to over [t0, t1).
type leg struct {
	from, to medium.Position
	t0, t1   units.Ticks
}

// NewWaypoint builds a waypoint walker for one node: start position
// (reflected into the area), area side length in meters, speed in m/s.
func NewWaypoint(seed uint64, id core.NodeID, start medium.Position, areaM, speedMPS float64) *Waypoint {
	w := &Waypoint{
		rng:   sim.DeriveRNG(seed, "net/waypoint", uint64(id)),
		area:  areaM,
		speed: speedMPS / 1e6, // ticks are microseconds
	}
	w.legs = append(w.legs, leg{
		from: medium.Position{X: fold(start.X, areaM), Y: fold(start.Y, areaM)},
	})
	w.legs[0].to = w.legs[0].from
	w.extend() // turn the zero-length seed leg into the first real one
	return w
}

// extend appends the next leg: a fresh uniform target at constant speed.
func (w *Waypoint) extend() {
	last := w.legs[len(w.legs)-1]
	from := last.to
	to := medium.Position{X: w.rng.Float64() * w.area, Y: w.rng.Float64() * w.area}
	dur := units.Ticks(1)
	if w.speed > 0 {
		d := from.Distance(to)
		dur = units.Ticks(d / w.speed)
		if dur < 1 {
			dur = 1
		}
	}
	w.legs = append(w.legs, leg{from: from, to: to, t0: last.t1, t1: last.t1 + dur})
}

// PositionAt returns the walker's position at time t, materializing legs as
// needed. Calls may come out of order (the medium pre-extends position logs
// for parallel windows); earlier times re-read already-materialized legs.
func (w *Waypoint) PositionAt(t units.Ticks) medium.Position {
	for w.legs[len(w.legs)-1].t1 <= t {
		w.extend()
	}
	// Binary search for the leg containing t (legs tile time contiguously).
	lo, hi := 0, len(w.legs)
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if w.legs[mid].t0 <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	l := w.legs[lo]
	if l.t1 == l.t0 {
		return l.to
	}
	f := float64(t-l.t0) / float64(l.t1-l.t0)
	return medium.Position{
		X: l.from.X + (l.to.X-l.from.X)*f,
		Y: l.from.Y + (l.to.Y-l.from.Y)*f,
	}
}

// Drift is the simplest mobile model: one random heading, constant speed
// forever, reflecting off the area walls. Closed form — the single RNG draw
// happens at construction, so PositionAt never mutates and needs no log.
type Drift struct {
	start      medium.Position
	area       float64
	dirX, dirY float64 // meters per tick
}

// NewDrift builds a drifting node: one uniform heading drawn from the
// node's derived stream, speed in m/s.
func NewDrift(seed uint64, id core.NodeID, start medium.Position, areaM, speedMPS float64) *Drift {
	rng := sim.DeriveRNG(seed, "net/drift", uint64(id))
	theta := 2 * math.Pi * rng.Float64()
	v := speedMPS / 1e6
	return &Drift{
		start: medium.Position{X: fold(start.X, areaM), Y: fold(start.Y, areaM)},
		area:  areaM,
		dirX:  math.Cos(theta) * v,
		dirY:  math.Sin(theta) * v,
	}
}

// PositionAt returns the drifter's reflected position at time t.
func (d *Drift) PositionAt(t units.Ticks) medium.Position {
	return medium.Position{
		X: fold(d.start.X+d.dirX*float64(t), d.area),
		Y: fold(d.start.Y+d.dirY*float64(t), d.area),
	}
}
