package net

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/medium"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/units"
)

func TestBeaconRoundTrip(t *testing.T) {
	cases := []Beacon{
		{Seq: 0, PathETX: 0, Margin: 1},
		{Seq: 65535, PathETX: 3.25, Margin: 0},
		{Seq: 7, PathETX: math.Inf(1), Margin: 0.5},
	}
	for _, b := range cases {
		got, ok := decodeBeacon(b.encode(nil))
		if !ok {
			t.Fatalf("decode failed for %+v", b)
		}
		if got.Seq != b.Seq {
			t.Errorf("seq = %d, want %d", got.Seq, b.Seq)
		}
		if math.IsInf(b.PathETX, 1) != math.IsInf(got.PathETX, 1) {
			t.Errorf("inf mismatch: %v vs %v", got.PathETX, b.PathETX)
		}
		if !math.IsInf(b.PathETX, 1) && math.Abs(got.PathETX-b.PathETX) > 1.0/etxScale {
			t.Errorf("etx = %v, want %v ± 1/%d", got.PathETX, b.PathETX, etxScale)
		}
		if math.Abs(got.Margin-b.Margin) > 1.0/255 {
			t.Errorf("margin = %v, want %v", got.Margin, b.Margin)
		}
	}
	if _, ok := decodeBeacon([]byte{1, 2}); ok {
		t.Error("truncated payload decoded")
	}
	// Out-of-range inputs clamp instead of wrapping.
	got, _ := decodeBeacon(Beacon{PathETX: 1e9, Margin: 7}.encode(nil))
	if math.IsInf(got.PathETX, 1) || got.PathETX < 4000 {
		t.Errorf("huge finite etx encoded as %v", got.PathETX)
	}
	if got.Margin != 1 {
		t.Errorf("margin clamped to %v, want 1", got.Margin)
	}
}

// routedWorld assembles a spatial world with a collection tree: node ids
// are 1..len(pos) in slice order, every node has a radio, and each boots
// into listening with its router started.
func routedWorld(t *testing.T, seed uint64, pos []medium.Position, cfg TreeConfig, perNode func(id core.NodeID, o *mote.Options)) (*mote.World, *Tree) {
	t.Helper()
	w := mote.NewWorld(seed)
	for i := range pos {
		opts := mote.DefaultOptions()
		id := core.NodeID(i + 1)
		if perNode != nil {
			perNode(id, &opts)
		}
		opts.Radio = true
		opts.RadioConfig = radio.Config{Channel: 26}
		w.AddNode(id, opts)
	}
	tree, err := NewTree(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ConfigureSpatial(medium.SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: seed}, pos); err != nil {
		t.Fatal(err)
	}
	for i, n := range w.Nodes {
		n, rt := n, tree.Router(i)
		n.K.Boot(func() {
			n.Radio.TurnOn(func() {
				n.Radio.StartListening()
				rt.Start()
			})
		})
	}
	return w, tree
}

// TestTreeFormsOnLine pins tree formation: on a 4-node line (30 m pitch,
// 50 m range — only adjacent nodes hear each other) every node converges to
// its line predecessor as parent, with path ETX increasing down the line.
func TestTreeFormsOnLine(t *testing.T) {
	pos := medium.PlaceLine(4, 90)
	w, tree := routedWorld(t, 42, pos, TreeConfig{Root: 1}, nil)
	w.Run(8 * units.Second)

	for i := 1; i < 4; i++ {
		rt := tree.Router(i)
		parent, ok := rt.Parent()
		if !ok || parent != core.NodeID(i) {
			t.Errorf("node %d parent = %d (ok=%v), want %d", i+1, parent, ok, i)
		}
		if up := tree.Router(i - 1).PathETX(); rt.PathETX() <= up {
			t.Errorf("node %d path etx %v not above its parent's %v", i+1, rt.PathETX(), up)
		}
	}
	s := tree.Stats()
	if s.Routed != 3 {
		t.Errorf("routed = %d, want 3", s.Routed)
	}
	if s.BeaconsTx == 0 || s.BeaconsRx == 0 {
		t.Errorf("no beacon traffic: %+v", s)
	}
	// Lossless links keep ETX pinned at 1, so the line's costs are ~1,2,3.
	if etx := tree.Router(3).PathETX(); math.Abs(etx-3) > 0.5 {
		t.Errorf("tail path etx = %v, want ~3", etx)
	}
}

// TestTreeDeterministic pins that two identically-seeded routed runs
// converge to identical tables, parents, and counters.
func TestTreeDeterministic(t *testing.T) {
	run := func() (parents []core.NodeID, stats TreeStats) {
		pos := medium.PlaceRandomGeometric(8, 100, 5)
		w, tree := routedWorld(t, 11, pos, TreeConfig{Root: 1}, nil)
		w.Run(10 * units.Second)
		for i := range pos {
			p, _ := tree.Router(i).Parent()
			parents = append(parents, p)
		}
		return parents, tree.Stats()
	}
	p1, s1 := run()
	p2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("node %d parent diverged: %d vs %d", i+1, p1[i], p2[i])
		}
	}
}

// TestRerouteOnParentDeath pins energy-aware rerouting end to end: a leaf
// whose parent's battery depletes mid-run switches to the surviving relay
// within a beacon period of the death notification.
func TestRerouteOnParentDeath(t *testing.T) {
	// Diamond: root (1) at origin; relays 2 and 3 both in range of root and
	// leaf (4); leaf out of the root's range. Both relays offer equal-cost
	// routes; the leaf joins relay 3 — its staggered beacon phase puts its
	// route advertisement on the air first — and relay 3's battery dies
	// mid-run, forcing the reroute onto relay 2.
	pos := []medium.Position{
		{X: 0, Y: 0},   // root
		{X: 30, Y: 0},  // relay 2
		{X: 30, Y: 25}, // relay 3 — finite battery
		{X: 60, Y: 0},  // leaf: 30 m to relay 2, 39 m to relay 3, 60 m to root (cut off)
	}
	w, tree := routedWorld(t, 9, pos, TreeConfig{Root: 1}, func(id core.NodeID, o *mote.Options) {
		if id == 3 {
			o.BatteryUAH = 60 // ~10 s at listening draw
		}
	})
	w.Run(60 * units.Second)

	if len(w.Deaths) != 1 || w.Deaths[0].Node != 3 {
		t.Fatalf("deaths = %+v, want exactly node 3", w.Deaths)
	}
	leaf := tree.Router(3)
	parent, ok := leaf.Parent()
	if !ok || parent != 2 {
		t.Fatalf("leaf parent after death = %d (ok=%v), want relay 2", parent, ok)
	}
	if nb := leaf.neighbor(3); nb != nil {
		t.Error("dead relay still in the leaf's neighbor table")
	}
	if s := leaf.Stats(); s.ParentChanges < 2 {
		t.Errorf("parent changes = %d, want ≥ 2 (join + reroute)", s.ParentChanges)
	}
}

// TestWaypointDeterminism pins the mobility contract: a walker's path is a
// pure function of (seed, id, start, area, speed) — replays are identical,
// other ids' paths are independent — and never leaves the area.
func TestWaypointDeterminism(t *testing.T) {
	mk := func(id core.NodeID) *Waypoint {
		return NewWaypoint(3, id, medium.Position{X: 10, Y: 20}, 100, 1.5)
	}
	a, b := mk(7), mk(7)
	other := mk(9)
	diverged := false
	for tick := units.Ticks(0); tick < 600*units.Second; tick += 777 * units.Millisecond {
		pa, pb := a.PositionAt(tick), b.PositionAt(tick)
		if pa != pb {
			t.Fatalf("replay diverged at %v: %v vs %v", tick, pa, pb)
		}
		if pa.X < 0 || pa.X > 100 || pa.Y < 0 || pa.Y > 100 {
			t.Fatalf("left the area at %v: %v", tick, pa)
		}
		if pa != other.PositionAt(tick) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different node ids walked identical paths")
	}
	// Out-of-order queries (a partition window preparing ahead) re-read
	// materialized legs without changing them.
	far := a.PositionAt(2000 * units.Second)
	if got := a.PositionAt(100 * units.Second); got != b.PositionAt(100*units.Second) {
		t.Errorf("out-of-order read changed history: %v", got)
	}
	if a.PositionAt(2000*units.Second) != far {
		t.Error("repeated far read changed")
	}
}

// TestDriftClosedForm pins the drift model: constant velocity from a single
// heading draw, reflecting off the walls.
func TestDriftClosedForm(t *testing.T) {
	d := NewDrift(3, 5, medium.Position{X: 50, Y: 50}, 100, 2)
	p0 := d.PositionAt(0)
	if p0 != (medium.Position{X: 50, Y: 50}) {
		t.Fatalf("start = %v", p0)
	}
	// Speed check: after 1 s the displacement is exactly 2 m (no wall hit
	// possible from the center at 2 m/s).
	p1 := d.PositionAt(units.Second)
	if got := p0.Distance(p1); math.Abs(got-2) > 1e-9 {
		t.Errorf("1 s displacement = %v m, want 2", got)
	}
	// Stays in bounds arbitrarily far out (reflection, not escape).
	for _, tick := range []units.Ticks{0, units.Second, 500 * units.Second, 12345 * units.Second} {
		p := d.PositionAt(tick)
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("drift left the area at %v: %v", tick, p)
		}
	}
	// Replays are identical; a different id draws a different heading.
	if NewDrift(3, 5, medium.Position{X: 50, Y: 50}, 100, 2).PositionAt(7777) != d.PositionAt(7777) {
		t.Error("drift replay diverged")
	}
	if NewDrift(3, 6, medium.Position{X: 50, Y: 50}, 100, 2).PositionAt(units.Second) == d.PositionAt(units.Second) {
		t.Error("different ids drew the same heading")
	}
}

// TestFold pins the reflection helper's edge cases.
func TestFold(t *testing.T) {
	cases := []struct{ x, limit, want float64 }{
		{5, 10, 5},
		{15, 10, 5},
		{25, 10, 5},
		{-5, 10, 5},
		{0, 10, 0},
		{10, 10, 10},
		{20, 10, 0},
		{3, 0, 0},
	}
	for _, c := range cases {
		if got := fold(c.x, c.limit); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("fold(%v, %v) = %v, want %v", c.x, c.limit, got, c.want)
		}
	}
}
