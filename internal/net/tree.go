package net

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mote"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/units"
)

// beaconPhaseStep staggers per-node beacon phases onto distinct residues
// modulo the period. Distinct residues keep two beacon timers from ever
// systematically sharing a tick (the relay's generator discipline); the
// large golden-ratio-like step (~0.61 of a 1 s period) additionally spreads
// the phases across the whole period, so half-duplex radios are not all
// transmitting within the same few milliseconds and deaf to one another.
// The step is even, so with the (even) default periods every beacon lands
// on an even tick — the routed apps put their data generators on odd ticks,
// and a node's beacon can never systematically collide with its own (or any
// node's) data send, which would read the radio busy and drop every period.
const beaconPhaseStep = 611954

// TreeConfig parameterizes a collection tree over a world.
type TreeConfig struct {
	// Root is the collecting node (required).
	Root core.NodeID
	// BeaconPeriod spaces every node's beacons (default DefaultBeaconPeriod).
	BeaconPeriod units.Ticks
	// EnergyWeight biases parent selection against energy-poor parents
	// (zero: DefaultEnergyWeight; negative: no bias).
	EnergyWeight float64
}

// Tree runs one Router per node of a world and turns battery deaths into
// topology events for the survivors.
type Tree struct {
	World   *mote.World
	Root    core.NodeID
	routers []*Router // parallel to World.Nodes
}

// NewTree builds a router for every node already added to the world (each
// must have a radio) and subscribes to deaths. Nodes added later are not
// routed. Call each node's Router.Start from its boot sequence once the
// radio is listening.
func NewTree(w *mote.World, cfg TreeConfig) (*Tree, error) {
	period := cfg.BeaconPeriod
	if period <= 0 {
		period = DefaultBeaconPeriod
	}
	if w.Node(cfg.Root) == nil {
		return nil, fmt.Errorf("net: root %d is not in the world", cfg.Root)
	}
	t := &Tree{World: w, Root: cfg.Root}
	for i, n := range w.Nodes {
		if n.AM == nil {
			return nil, fmt.Errorf("net: node %d has no radio; a routed world needs every node on the air", n.ID)
		}
		rt := NewRouter(n.K, n.AM, n.Radio, Config{
			Root:         n.ID == cfg.Root,
			BeaconPeriod: period,
			Phase:        period + (units.Ticks(i)*beaconPhaseStep)%period,
			EnergyWeight: cfg.EnergyWeight,
		})
		if n.Battery != nil {
			rt.SetMarginFn(n.Battery.MarginFrac)
		}
		t.routers = append(t.routers, rt)
	}
	w.SubscribeDeath(t.onDeath)
	return t, nil
}

// Router returns the router of the i-th node (world creation order).
func (t *Tree) Router(i int) *Router { return t.routers[i] }

// onDeath runs inside the death event (serial: a marked event in a
// partitioned world). It must not touch the survivors' routers directly —
// their partitions may have speculatively run ordinary events past the
// death tick, so a synchronous mutation would be ordered differently than
// in a serial replay. Instead each survivor gets a NeighborDied event on
// its own simulator one conservative lookahead after the death: no
// partition's window can have advanced that far (a window's horizon is
// strictly below the earliest pending event plus the lookahead), so the
// notification lands in every clock's future, at the topology priority, at
// a per-target tick — the same total order in serial and partitioned runs.
func (t *Tree) onDeath(dead *mote.Node, at units.Ticks) {
	for i, n := range t.World.Nodes {
		if n == dead || !n.Alive() {
			continue
		}
		rt := t.routers[i]
		id := dead.ID
		n.K.Sim.Schedule(at+radio.BackoffMin+units.Ticks(i), sim.PrioTopology, func() {
			rt.NeighborDied(id)
		})
	}
}

// TreeStats aggregates every live router's counters plus tree-level shape.
type TreeStats struct {
	RouterStats
	// Routed counts non-root nodes that currently hold a parent.
	Routed int
}

// MeanPathETX averages the path cost over the non-root nodes that hold a
// route (0 when none does): the tree-depth half of the per-hop delivery
// report. Like Stats it only reads.
func (t *Tree) MeanPathETX() float64 {
	var sum float64
	var n int
	for i, node := range t.World.Nodes {
		rt := t.routers[i]
		if node.ID == t.Root || !node.Alive() {
			continue
		}
		if _, ok := rt.Parent(); ok {
			sum += rt.PathETX()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Stats sums the per-node router counters and reports how many nodes have a
// route. Safe to call after (or between) runs — it only reads.
func (t *Tree) Stats() TreeStats {
	var s TreeStats
	for i, n := range t.World.Nodes {
		rt := t.routers[i]
		rs := rt.Stats()
		s.BeaconsTx += rs.BeaconsTx
		s.BeaconsRx += rs.BeaconsRx
		s.BeaconsSkipped += rs.BeaconsSkipped
		s.ParentChanges += rs.ParentChanges
		s.LoopAvoided += rs.LoopAvoided
		// A dead node's router still holds its last parent; only live
		// non-root nodes count as routed.
		if n.ID != t.Root && n.Alive() {
			if _, ok := rt.Parent(); ok {
				s.Routed++
			}
		}
	}
	return s
}
