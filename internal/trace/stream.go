package trace

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Next implements EntrySource, letting a Reader feed a Merger directly.
func (r *Reader) Next() (core.Entry, error) { return r.Read() }

// DefaultBatchEntries is the batch size the streaming helpers use: large
// enough to amortize syscalls and channel hops, small enough that per-node
// decode buffers stay a few tens of kilobytes.
const DefaultBatchEntries = 4096

// ReadBatch decodes up to len(dst) entries into dst with one bulk read,
// returning how many were decoded. It returns io.EOF only with n == 0 at a
// clean end of stream; a trailing partial frame is an error. The caller owns
// dst, so steady-state batch decoding allocates nothing.
func (r *Reader) ReadBatch(dst []core.Entry) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	want := len(dst) * EntrySize
	if cap(r.batch) < want {
		r.batch = make([]byte, want)
	}
	buf := r.batch[:want]
	read, err := io.ReadFull(r.r, buf)
	if read == 0 {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("trace: read: %w", err)
	}
	n := read / EntrySize
	for i := 0; i < n; i++ {
		e, derr := Decode(buf[i*EntrySize:])
		if derr != nil {
			return i, fmt.Errorf("trace: entry %d: %w", i, derr)
		}
		dst[i] = e
	}
	// Complete frames are delivered even when the stream ends badly: a
	// trailing partial frame is an error on this call, not silent loss.
	// A mid-frame read failure keeps the underlying error visible so I/O
	// faults are not misdiagnosed as file corruption.
	if rem := read % EntrySize; rem != 0 {
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return n, fmt.Errorf("trace: truncated entry (%d trailing bytes): %w", rem, err)
		}
		return n, fmt.Errorf("trace: truncated entry: %d trailing bytes", rem)
	}
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return n, fmt.Errorf("trace: read: %w", err)
	}
	return n, nil
}

// WriteBatch encodes and emits a whole batch with one underlying write,
// reusing an internal buffer so steady-state encoding allocates nothing.
func (w *Writer) WriteBatch(entries []core.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	want := len(entries) * EntrySize
	if cap(w.batch) < want {
		w.batch = make([]byte, want)
	}
	buf := w.batch[:want]
	for i, e := range entries {
		Encode(buf[i*EntrySize:], e)
	}
	wrote, err := w.w.Write(buf)
	if err != nil {
		return fmt.Errorf("trace: write batch at entry %d: %w", w.n+wrote/EntrySize, err)
	}
	if wrote != want {
		return fmt.Errorf("trace: short write: %d of %d bytes", wrote, want)
	}
	w.n += len(entries)
	return nil
}

// batchResult is one decoded chunk handed from a decode goroutine to the
// consuming iterator.
type batchResult struct {
	entries []core.Entry
	err     error
}

// chanSource adapts a channel of decoded batches to EntrySource. Two buffer
// slices alternate between producer and consumer through the free channel,
// so a multi-megabyte trace is decoded with two small reusable buffers per
// node rather than living in memory twice. Close releases the producer
// goroutine; the Merger calls it when the merge ends or abandons the
// stream.
type chanSource struct {
	ch     chan batchResult
	free   chan []core.Entry
	stop   chan struct{}
	cur    []core.Entry
	pos    int
	err    error
	done   bool
	closed bool
}

// Close implements the merger's sourceCloser: it unblocks and terminates
// the decode goroutine. Safe to call more than once.
func (c *chanSource) Close() {
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
}

// Next implements EntrySource.
func (c *chanSource) Next() (core.Entry, error) {
	for c.pos >= len(c.cur) {
		if c.err != nil {
			return core.Entry{}, c.err
		}
		if c.done {
			return core.Entry{}, io.EOF
		}
		if c.cur != nil {
			c.free <- c.cur[:0]
		}
		res, ok := <-c.ch
		if !ok {
			c.done = true
			c.cur = nil
			return core.Entry{}, io.EOF
		}
		c.cur, c.pos = res.entries, 0
		if res.err != nil {
			c.err = res.err
			c.done = true
		}
	}
	e := c.cur[c.pos]
	c.pos++
	return e, nil
}

// decodeAsync decodes r in a goroutine, producing batches of at most
// batchEntries entries. The goroutine exits after EOF or the first error.
func decodeAsync(r io.Reader, batchEntries int) *chanSource {
	if batchEntries <= 0 {
		batchEntries = DefaultBatchEntries
	}
	src := &chanSource{
		ch:   make(chan batchResult, 1),
		free: make(chan []core.Entry, 2),
		stop: make(chan struct{}),
	}
	src.free <- make([]core.Entry, 0, batchEntries)
	src.free <- make([]core.Entry, 0, batchEntries)
	dec := NewReader(r)
	go func() {
		defer close(src.ch)
		for {
			var buf []core.Entry
			select {
			case buf = <-src.free:
			case <-src.stop:
				return
			}
			n, err := dec.ReadBatch(buf[:batchEntries])
			if err == io.EOF {
				return
			}
			res := batchResult{entries: buf[:n]}
			if err != nil {
				res.err = err
			}
			select {
			case src.ch <- res:
			case <-src.stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return src
}

// ReaderStream names one node's encoded byte stream.
type ReaderStream struct {
	Node core.NodeID
	R    io.Reader
}

// MergeReaders k-way merges several nodes' encoded streams, decoding each
// node concurrently in its own goroutine. batchEntries bounds the per-node
// decode buffers (<= 0 selects DefaultBatchEntries); total memory is
// O(k * batchEntries) regardless of trace size. Drain the merged stream to
// io.EOF or to an error — the merger then shuts every decode goroutine
// down, including those of healthy streams abandoned by an error elsewhere.
func MergeReaders(streams []ReaderStream, batchEntries int) (*Merger, error) {
	merged := make([]Stream, len(streams))
	for i, s := range streams {
		merged[i] = Stream{Node: s.Node, Source: decodeAsync(s.R, batchEntries)}
	}
	return NewMerger(merged)
}
