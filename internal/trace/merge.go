package trace

import (
	"io"
	"sort"

	"repro/internal/core"
)

// NodeLog pairs a node id with its entry stream. Entry timestamps are
// node-local; the experiments here run nodes off a common simulated clock,
// so no time-synchronization pass is needed (the real deployment would
// insert one).
type NodeLog struct {
	Node    core.NodeID
	Entries []core.Entry
}

// Stamped is a log entry annotated with its owning node and the unwrapped
// 64-bit timestamp, used after merging multiple node logs into one
// network-wide stream.
type Stamped struct {
	Node core.NodeID
	core.Entry
	// TimeUS is Entry.Time unwrapped to monotonic 64-bit microseconds
	// (node-local; the 32-bit field wraps every ~71.6 minutes).
	TimeUS int64
}

// EntrySource yields entries one at a time; it returns io.EOF after the last
// entry. *Reader satisfies it directly, so a Merger can pull straight from
// decoded byte streams without materializing them.
type EntrySource interface {
	Next() (core.Entry, error)
}

// SliceSource adapts an in-memory log to EntrySource.
type SliceSource struct {
	entries []core.Entry
	pos     int
}

// NewSliceSource iterates over entries without copying them.
func NewSliceSource(entries []core.Entry) *SliceSource {
	return &SliceSource{entries: entries}
}

// Next implements EntrySource.
func (s *SliceSource) Next() (core.Entry, error) {
	if s.pos >= len(s.entries) {
		return core.Entry{}, io.EOF
	}
	e := s.entries[s.pos]
	s.pos++
	return e, nil
}

// Stream is one node's entry source, input to the k-way merge.
type Stream struct {
	Node   core.NodeID
	Source EntrySource
}

// mergeHead is one stream's frontier entry sitting in the merge heap.
type mergeHead struct {
	stamped Stamped
	stream  int // index into Merger.streams
}

// Unwrapper converts one node's wrapped 32-bit timestamps to monotonic
// 64-bit microseconds, one stamp at a time. Stamps are assumed in
// generation order with gaps shorter than one wrap period (~71.6 min).
type Unwrapper struct {
	base    int64
	prev    uint32
	started bool
}

// At returns the unwrapped time of the next stamp.
func (u *Unwrapper) At(t uint32) int64 {
	if u.started && t < u.prev {
		u.base += int64(1) << 32
	}
	u.started = true
	u.prev = t
	return u.base + int64(t)
}

// streamState tracks one merge input and its timestamp unwrapping.
type streamState struct {
	node core.NodeID
	src  EntrySource
	uw   Unwrapper
}

// Merger performs an O(N log k) k-way merge of per-node entry streams into
// one network-wide stream ordered by unwrapped time (ties broken by node
// id, preserving each node's own order). It holds one entry per stream —
// O(k) memory — so traces of any length merge without materializing.
type Merger struct {
	streams []streamState
	heap    []mergeHead
	err     error
}

// NewMerger starts a merge over the given streams.
func NewMerger(streams []Stream) (*Merger, error) {
	m := &Merger{streams: make([]streamState, len(streams))}
	for i, s := range streams {
		m.streams[i] = streamState{node: s.Node, src: s.Source}
	}
	for i := range m.streams {
		if err := m.advance(i); err != nil {
			m.closeAll()
			return nil, err
		}
	}
	return m, nil
}

// sourceCloser is implemented by sources holding resources (a decode
// goroutine, buffers) that must be released when the merge abandons them.
type sourceCloser interface{ Close() }

// Close releases every source that holds resources (decode goroutines,
// buffers). Next calls it automatically at EOF or on error; a consumer that
// abandons the merge early — stops before draining — must call it itself or
// leak one blocked decode goroutine per concurrent stream.
func (m *Merger) Close() { m.closeAll() }

// closeAll releases every closable source. Called when the merge ends —
// normally or on error — so abandoned concurrent decoders shut down instead
// of blocking forever.
func (m *Merger) closeAll() {
	for i := range m.streams {
		if c, ok := m.streams[i].src.(sourceCloser); ok {
			c.Close()
		}
	}
}

// advance pulls stream i's next entry into the heap.
func (m *Merger) advance(i int) error {
	st := &m.streams[i]
	e, err := st.src.Next()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return err
	}
	m.push(mergeHead{
		stamped: Stamped{Node: st.node, Entry: e, TimeUS: st.uw.At(e.Time)},
		stream:  i,
	})
	return nil
}

// less orders heads by (unwrapped time, node id). One head per stream means
// within-node order needs no further tiebreak.
func (m *Merger) less(a, b mergeHead) bool {
	if a.stamped.TimeUS != b.stamped.TimeUS {
		return a.stamped.TimeUS < b.stamped.TimeUS
	}
	return a.stamped.Node < b.stamped.Node
}

func (m *Merger) push(h mergeHead) {
	m.heap = append(m.heap, h)
	for i := len(m.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !m.less(m.heap[i], m.heap[parent]) {
			break
		}
		m.heap[i], m.heap[parent] = m.heap[parent], m.heap[i]
		i = parent
	}
}

func (m *Merger) pop() mergeHead {
	top := m.heap[0]
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.heap) && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < len(m.heap) && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
	return top
}

// Next returns the next entry of the merged stream, or io.EOF when every
// stream is exhausted. When one stream fails mid-merge, every entry decoded
// before the failure is still delivered (in order) before the error
// surfaces — the same no-silent-loss contract as Reader.ReadBatch.
func (m *Merger) Next() (Stamped, error) {
	if len(m.heap) == 0 {
		m.closeAll()
		if m.err != nil {
			return Stamped{}, m.err
		}
		return Stamped{}, io.EOF
	}
	head := m.pop()
	if m.err == nil {
		if err := m.advance(head.stream); err != nil {
			// Deliver the heads already decoded, then report the error.
			// Healthy streams are no longer advanced; their decoders are
			// released once the buffered heads drain.
			m.err = err
		}
	}
	return head.stamped, nil
}

// Drain consumes the rest of the merged stream into a slice.
func (m *Merger) Drain() ([]Stamped, error) {
	var out []Stamped
	for {
		s, err := m.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

// Merge interleaves the logs of several nodes into one stream ordered by
// unwrapped timestamp (ties broken by node id; within one node the input
// order is preserved, including across 32-bit timestamp wraps). It is a
// convenience wrapper over the streaming Merger for in-memory logs.
func Merge(logs []NodeLog) []Stamped {
	streams := make([]Stream, len(logs))
	total := 0
	for i, l := range logs {
		streams[i] = Stream{Node: l.Node, Source: NewSliceSource(l.Entries)}
		total += len(l.Entries)
	}
	m, err := NewMerger(streams)
	if err != nil {
		return nil // slice sources never fail
	}
	out := make([]Stamped, 0, total)
	for {
		s, err := m.Next()
		if err != nil {
			return out
		}
		out = append(out, s)
	}
}

// SplitByNode partitions a merged stream back into per-node logs, preserving
// order.
func SplitByNode(merged []Stamped) []NodeLog {
	byNode := make(map[core.NodeID][]core.Entry)
	var order []core.NodeID
	for _, s := range merged {
		if _, ok := byNode[s.Node]; !ok {
			order = append(order, s.Node)
		}
		byNode[s.Node] = append(byNode[s.Node], s.Entry)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]NodeLog, 0, len(order))
	for _, n := range order {
		out = append(out, NodeLog{Node: n, Entries: byNode[n]})
	}
	return out
}

// UnwrapTimes converts the 32-bit wrapped microsecond timestamps of a single
// node's log into monotonically non-decreasing 64-bit times. The mote's
// clock field wraps every ~71.6 minutes; entries are assumed to be in
// generation order with gaps shorter than one wrap period.
func UnwrapTimes(entries []core.Entry) []int64 {
	out := make([]int64, len(entries))
	var uw Unwrapper
	for i, e := range entries {
		out[i] = uw.At(e.Time)
	}
	return out
}
