package trace

import (
	"sort"

	"repro/internal/core"
)

// NodeLog pairs a node id with its entry stream. Entry timestamps are
// node-local; the experiments here run nodes off a common simulated clock,
// so no time-synchronization pass is needed (the real deployment would
// insert one).
type NodeLog struct {
	Node    core.NodeID
	Entries []core.Entry
}

// Stamped is a log entry annotated with its owning node, used after merging
// multiple node logs into one network-wide stream.
type Stamped struct {
	Node core.NodeID
	core.Entry
}

// Merge interleaves the logs of several nodes into one stream ordered by
// timestamp (stable across nodes for equal stamps, by node id then original
// position). Within one node the input order is preserved even if the
// 32-bit timestamp wrapped.
func Merge(logs []NodeLog) []Stamped {
	total := 0
	for _, l := range logs {
		total += len(l.Entries)
	}
	out := make([]Stamped, 0, total)
	for _, l := range logs {
		for _, e := range l.Entries {
			out = append(out, Stamped{Node: l.Node, Entry: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// SplitByNode partitions a merged stream back into per-node logs, preserving
// order.
func SplitByNode(merged []Stamped) []NodeLog {
	byNode := make(map[core.NodeID][]core.Entry)
	var order []core.NodeID
	for _, s := range merged {
		if _, ok := byNode[s.Node]; !ok {
			order = append(order, s.Node)
		}
		byNode[s.Node] = append(byNode[s.Node], s.Entry)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]NodeLog, 0, len(order))
	for _, n := range order {
		out = append(out, NodeLog{Node: n, Entries: byNode[n]})
	}
	return out
}

// UnwrapTimes converts the 32-bit wrapped microsecond timestamps of a single
// node's log into monotonically non-decreasing 64-bit times. The mote's
// clock field wraps every ~71.6 minutes; entries are assumed to be in
// generation order with gaps shorter than one wrap period.
func UnwrapTimes(entries []core.Entry) []int64 {
	out := make([]int64, len(entries))
	var base int64
	var prev uint32
	for i, e := range entries {
		if i > 0 && e.Time < prev {
			base += int64(1) << 32
		}
		prev = e.Time
		out[i] = base + int64(e.Time)
	}
	return out
}
