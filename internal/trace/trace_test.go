package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(typ uint8, res uint8, time, ic uint32, val uint16) bool {
		e := core.Entry{
			Type: core.EntryType(typ%6 + 1),
			Res:  core.ResourceID(res),
			Time: time,
			IC:   ic,
			Val:  val,
		}
		var buf [EntrySize]byte
		if n := Encode(buf[:], e); n != EntrySize {
			return false
		}
		got, err := Decode(buf[:])
		return err == nil && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryIsExactly12Bytes(t *testing.T) {
	if EntrySize != 12 {
		t.Fatalf("EntrySize = %d, want 12 (Figure 17)", EntrySize)
	}
	e := core.Entry{Type: core.EntryPowerState, Res: 1, Time: 0xA1B2C3D4, IC: 0x11223344, Val: 0x5566}
	data := Marshal([]core.Entry{e})
	if len(data) != 12 {
		t.Fatalf("marshaled size = %d", len(data))
	}
	// Little-endian layout, as the MSP430 would write it.
	if data[0] != 1 || data[1] != 1 {
		t.Errorf("header bytes = %v", data[:2])
	}
	if data[2] != 0xD4 || data[5] != 0xA1 {
		t.Errorf("time bytes = %v", data[2:6])
	}
	if data[6] != 0x44 || data[9] != 0x11 {
		t.Errorf("ic bytes = %v", data[6:10])
	}
	if data[10] != 0x66 || data[11] != 0x55 {
		t.Errorf("val bytes = %v", data[10:])
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("short buffer should fail")
	}
	bad := make([]byte, EntrySize)
	bad[0] = 0 // invalid type
	if _, err := Decode(bad); err == nil {
		t.Error("type 0 should fail")
	}
	bad[0] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("type 200 should fail")
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	entries := []core.Entry{
		{Type: core.EntryPowerState, Res: 1, Time: 10, IC: 1, Val: 1},
		{Type: core.EntryActivitySet, Res: 2, Time: 20, IC: 2, Val: 0x0102},
		{Type: core.EntryActivityBind, Res: 2, Time: 30, IC: 3, Val: 0x0403},
	}
	got, err := Unmarshal(Marshal(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], entries[i])
		}
	}
}

func TestUnmarshalRejectsPartialEntries(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 13)); err == nil {
		t.Error("stream with trailing partial entry should fail")
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := make([]core.Entry, 50)
	for i := range want {
		want[i] = core.Entry{Type: core.EntryMarker, Res: 3, Time: uint32(i), IC: uint32(i * 2), Val: uint16(i)}
		if err := w.Write(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 50 {
		t.Errorf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d mismatch", i)
		}
	}
	// A fresh read hits clean EOF.
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestMergeOrdersAcrossNodes(t *testing.T) {
	logs := []NodeLog{
		{Node: 2, Entries: []core.Entry{
			{Type: core.EntryMarker, Time: 5},
			{Type: core.EntryMarker, Time: 15},
		}},
		{Node: 1, Entries: []core.Entry{
			{Type: core.EntryMarker, Time: 10},
			{Type: core.EntryMarker, Time: 15},
		}},
	}
	merged := Merge(logs)
	if len(merged) != 4 {
		t.Fatalf("merged %d entries", len(merged))
	}
	wantOrder := []struct {
		node core.NodeID
		time uint32
	}{{2, 5}, {1, 10}, {1, 15}, {2, 15}}
	for i, w := range wantOrder {
		if merged[i].Node != w.node || merged[i].Time != w.time {
			t.Errorf("merged[%d] = node %d t=%d, want node %d t=%d",
				i, merged[i].Node, merged[i].Time, w.node, w.time)
		}
	}
}

func TestSplitByNodeInvertsMerge(t *testing.T) {
	logs := []NodeLog{
		{Node: 1, Entries: []core.Entry{{Type: core.EntryMarker, Time: 1}, {Type: core.EntryMarker, Time: 9}}},
		{Node: 4, Entries: []core.Entry{{Type: core.EntryMarker, Time: 3}}},
	}
	back := SplitByNode(Merge(logs))
	if len(back) != 2 {
		t.Fatalf("split into %d logs", len(back))
	}
	if back[0].Node != 1 || len(back[0].Entries) != 2 {
		t.Errorf("node 1 log wrong: %+v", back[0])
	}
	if back[1].Node != 4 || len(back[1].Entries) != 1 {
		t.Errorf("node 4 log wrong: %+v", back[1])
	}
}

func TestUnwrapTimes(t *testing.T) {
	entries := []core.Entry{
		{Time: 0xFFFF_FFF0},
		{Time: 0xFFFF_FFFF},
		{Time: 5}, // wrapped
		{Time: 10},
		{Time: 3}, // wrapped again
	}
	ts := UnwrapTimes(entries)
	want := []int64{0xFFFF_FFF0, 0xFFFF_FFFF, 1<<32 + 5, 1<<32 + 10, 2<<32 + 3}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("ts[%d] = %d, want %d", i, ts[i], want[i])
		}
	}
}

func TestUnwrapTimesMonotonic(t *testing.T) {
	f := func(deltas []uint16) bool {
		var entries []core.Entry
		var cur uint32
		for _, d := range deltas {
			cur += uint32(d)
			entries = append(entries, core.Entry{Time: cur})
		}
		ts := UnwrapTimes(entries)
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
