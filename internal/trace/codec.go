// Package trace implements the binary on-the-wire/on-flash format of Quanto
// log entries and utilities for reading, writing, and merging logs.
//
// Each entry is exactly 12 bytes (Figure 17 / Table 4 of the paper):
//
//	offset 0: uint8  type
//	offset 1: uint8  res_id
//	offset 2: uint32 time (little endian, node-local microseconds)
//	offset 6: uint32 ic   (little endian, cumulative iCount pulses)
//	offset 10: uint16 act or powerstate (little endian)
//
// The MSP430 is a little-endian machine, so the encoded stream matches what
// the mote would dump over its serial back channel byte for byte.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
)

// EntrySize is the encoded entry size in bytes.
const EntrySize = core.EntrySize

// Encode writes e into buf, which must be at least EntrySize bytes long, and
// returns the number of bytes written.
func Encode(buf []byte, e core.Entry) int {
	_ = buf[EntrySize-1]
	buf[0] = byte(e.Type)
	buf[1] = byte(e.Res)
	binary.LittleEndian.PutUint32(buf[2:], e.Time)
	binary.LittleEndian.PutUint32(buf[6:], e.IC)
	binary.LittleEndian.PutUint16(buf[10:], e.Val)
	return EntrySize
}

// Decode parses one entry from buf.
func Decode(buf []byte) (core.Entry, error) {
	if len(buf) < EntrySize {
		return core.Entry{}, fmt.Errorf("trace: short entry: %d bytes", len(buf))
	}
	e := core.Entry{
		Type: core.EntryType(buf[0]),
		Res:  core.ResourceID(buf[1]),
		Time: binary.LittleEndian.Uint32(buf[2:]),
		IC:   binary.LittleEndian.Uint32(buf[6:]),
		Val:  binary.LittleEndian.Uint16(buf[10:]),
	}
	if e.Type == 0 || e.Type > core.EntryMarker {
		return core.Entry{}, fmt.Errorf("trace: invalid entry type %d", buf[0])
	}
	return e, nil
}

// Marshal encodes a whole log into a byte slice.
func Marshal(entries []core.Entry) []byte {
	out := make([]byte, len(entries)*EntrySize)
	for i, e := range entries {
		Encode(out[i*EntrySize:], e)
	}
	return out
}

// Unmarshal decodes a byte stream produced by Marshal. Trailing partial
// entries are an error.
func Unmarshal(data []byte) ([]core.Entry, error) {
	if len(data)%EntrySize != 0 {
		return nil, fmt.Errorf("trace: stream length %d not a multiple of %d", len(data), EntrySize)
	}
	out := make([]core.Entry, 0, len(data)/EntrySize)
	for off := 0; off < len(data); off += EntrySize {
		e, err := Decode(data[off:])
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d: %w", off/EntrySize, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Writer streams encoded entries to an io.Writer, standing in for the mote's
// serial back channel.
type Writer struct {
	w     io.Writer
	buf   [EntrySize]byte
	batch []byte // reusable WriteBatch encode buffer
	n     int
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write encodes and emits one entry.
func (w *Writer) Write(e core.Entry) error {
	Encode(w.buf[:], e)
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("trace: write entry %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count returns the number of entries written.
func (w *Writer) Count() int { return w.n }

// Reader decodes a stream of entries from an io.Reader.
type Reader struct {
	r     io.Reader
	buf   [EntrySize]byte
	batch []byte // reusable ReadBatch decode buffer
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read returns the next entry, or io.EOF at a clean end of stream.
func (r *Reader) Read() (core.Entry, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return core.Entry{}, io.EOF
		}
		return core.Entry{}, fmt.Errorf("trace: read: %w", err)
	}
	return Decode(r.buf[:])
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]core.Entry, error) {
	var out []core.Entry
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
