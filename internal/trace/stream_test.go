package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func mkEntries(times ...uint32) []core.Entry {
	out := make([]core.Entry, len(times))
	for i, t := range times {
		out[i] = core.Entry{Type: core.EntryMarker, Time: t, IC: uint32(i), Val: uint16(i)}
	}
	return out
}

func TestSliceSourceIterates(t *testing.T) {
	src := NewSliceSource(mkEntries(1, 2, 3))
	for want := uint32(1); want <= 3; want++ {
		e, err := src.Next()
		if err != nil || e.Time != want {
			t.Fatalf("Next = %v, %v; want t=%d", e, err, want)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestMergeOrdersAcrossTimestampWrap(t *testing.T) {
	// Node 1's clock wraps: the post-wrap entry (raw time 5) happened AFTER
	// raw time 0xFFFF_FFF0 and must sort after it — and after node 2's
	// entries, which all predate the wrap. The seed's concat+sort merge
	// ordered by raw uint32 time and got this wrong.
	logs := []NodeLog{
		{Node: 1, Entries: mkEntries(0xFFFF_FFF0, 5)},
		{Node: 2, Entries: mkEntries(100, 0xFFFF_FFF5)},
	}
	merged := Merge(logs)
	if len(merged) != 4 {
		t.Fatalf("merged %d entries", len(merged))
	}
	wantOrder := []struct {
		node   core.NodeID
		time   uint32
		timeUS int64
	}{
		{2, 100, 100},
		{1, 0xFFFF_FFF0, 0xFFFF_FFF0},
		{2, 0xFFFF_FFF5, 0xFFFF_FFF5},
		{1, 5, 1<<32 + 5},
	}
	for i, w := range wantOrder {
		got := merged[i]
		if got.Node != w.node || got.Time != w.time || got.TimeUS != w.timeUS {
			t.Errorf("merged[%d] = node %d t=%d us=%d, want node %d t=%d us=%d",
				i, got.Node, got.Time, got.TimeUS, w.node, w.time, w.timeUS)
		}
	}
}

// TestMergeMatchesSortBaseline cross-checks the k-way heap merge against the
// seed's concat+stable-sort reference on non-wrapping inputs, where both
// definitions agree.
func TestMergeMatchesSortBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var logs []NodeLog
		for n := 1; n <= 1+rng.Intn(5); n++ {
			var times []uint32
			cur := uint32(rng.Intn(100))
			for i := 0; i < rng.Intn(40); i++ {
				cur += uint32(rng.Intn(3)) // duplicates are common
				times = append(times, cur)
			}
			logs = append(logs, NodeLog{Node: core.NodeID(n), Entries: mkEntries(times...)})
		}
		got := Merge(logs)
		want := mergeSortBaseline(logs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i].Node || got[i].Entry != want[i].Entry {
				t.Fatalf("trial %d: merged[%d] = %v/%v, want %v/%v",
					trial, i, got[i].Node, got[i].Entry, want[i].Node, want[i].Entry)
			}
		}
	}
}

// mergeSortBaseline is the seed repo's concat+sort merge, kept as a test
// oracle and benchmark baseline.
func mergeSortBaseline(logs []NodeLog) []Stamped {
	total := 0
	for _, l := range logs {
		total += len(l.Entries)
	}
	out := make([]Stamped, 0, total)
	for _, l := range logs {
		for _, e := range l.Entries {
			out = append(out, Stamped{Node: l.Node, Entry: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// TestMergeSplitRoundTripProperty checks Merge → SplitByNode returns every
// node's entries in their original order, for arbitrary (even wrapping)
// timestamp sequences.
func TestMergeSplitRoundTripProperty(t *testing.T) {
	f := func(a, b, c []uint32) bool {
		logs := []NodeLog{
			{Node: 1, Entries: mkEntries(a...)},
			{Node: 2, Entries: mkEntries(b...)},
			{Node: 3, Entries: mkEntries(c...)},
		}
		back := SplitByNode(Merge(logs))
		byNode := make(map[core.NodeID][]core.Entry)
		for _, l := range back {
			byNode[l.Node] = l.Entries
		}
		for _, l := range logs {
			got := byNode[l.Node]
			if len(l.Entries) == 0 {
				if len(got) != 0 {
					return false
				}
				continue
			}
			if len(got) != len(l.Entries) {
				return false
			}
			for i := range got {
				if got[i] != l.Entries[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadBatchRoundTrip(t *testing.T) {
	want := mkEntries(1, 2, 3, 4, 5, 6, 7)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBatch(want); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(want) {
		t.Errorf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	var got []core.Entry
	chunk := make([]core.Entry, 3) // smaller than the stream on purpose
	for {
		n, err := r.ReadBatch(chunk)
		got = append(got, chunk[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("read %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadBatchTruncatedFrame(t *testing.T) {
	// Two whole entries plus 5 trailing bytes: the whole entries decode,
	// the partial frame is an error, not silent truncation.
	data := Marshal(mkEntries(1, 2))
	data = append(data, 0xDE, 0xAD, 0xBE, 0xEF, 0x01)
	r := NewReader(bytes.NewReader(data))
	buf := make([]core.Entry, 8)
	n, err := r.ReadBatch(buf)
	if n != 2 {
		t.Errorf("ReadBatch delivered %d complete frames, want 2", n)
	}
	if err == nil || err == io.EOF {
		t.Errorf("truncated frame should be an error, got %v", err)
	}
}

func TestReadTruncatedFrame(t *testing.T) {
	data := Marshal(mkEntries(1))
	data = append(data, 0x06, 0x00, 0x07) // 3-byte partial frame
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first full frame: %v", err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("partial trailing frame should be an error, got %v", err)
	}
}

// failWriter errors after accepting limit bytes.
type failWriter struct {
	limit int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) <= w.limit {
		w.limit -= len(p)
		return len(p), nil
	}
	n := w.limit
	w.limit = 0
	return n, errors.New("disk full")
}

func TestWriteShortWrite(t *testing.T) {
	w := NewWriter(&failWriter{limit: EntrySize})
	if err := w.Write(core.Entry{Type: core.EntryMarker}); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := w.Write(core.Entry{Type: core.EntryMarker}); err == nil {
		t.Error("write past the failure point should error")
	}
	if err := NewWriter(&failWriter{limit: 17}).WriteBatch(mkEntries(1, 2, 3)); err == nil {
		t.Error("batch write past the failure point should error")
	}
}

func TestMergeReadersMatchesInMemoryMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var logs []NodeLog
	var streams []ReaderStream
	for n := 1; n <= 4; n++ {
		var times []uint32
		cur := uint32(rng.Intn(50))
		for i := 0; i < 2000; i++ {
			cur += uint32(rng.Intn(20))
			times = append(times, cur)
		}
		entries := mkEntries(times...)
		logs = append(logs, NodeLog{Node: core.NodeID(n), Entries: entries})
		streams = append(streams, ReaderStream{
			Node: core.NodeID(n),
			R:    bytes.NewReader(Marshal(entries)),
		})
	}
	want := Merge(logs)
	m, err := MergeReaders(streams, 256) // small batches force refills
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeReadersPropagatesDecodeError(t *testing.T) {
	good := Marshal(mkEntries(1, 2, 3))
	bad := append(Marshal(mkEntries(1)), 0xFF) // trailing garbage byte
	m, err := MergeReaders([]ReaderStream{
		{Node: 1, R: bytes.NewReader(good)},
		{Node: 2, R: bytes.NewReader(bad)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Drain()
	if err == nil {
		t.Error("decode error in one stream should surface from the merge")
	}
}

// TestMergeReadersReleasesDecodersOnError checks that draining to an error
// shuts down the healthy streams' decode goroutines too.
func TestMergeReadersReleasesDecodersOnError(t *testing.T) {
	before := runtime.NumGoroutine()
	// Big healthy streams (several batches) so their decoders would block
	// producing if the merge abandoned them without cleanup.
	var big []uint32
	for i := uint32(0); i < 2000; i++ {
		big = append(big, i)
	}
	bad := append(Marshal(mkEntries(1)), 0xFF)
	for trial := 0; trial < 5; trial++ {
		m, err := MergeReaders([]ReaderStream{
			{Node: 1, R: bytes.NewReader(Marshal(mkEntries(big...)))},
			{Node: 2, R: bytes.NewReader(Marshal(mkEntries(big...)))},
			{Node: 3, R: bytes.NewReader(bad)},
		}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Drain(); err == nil {
			t.Fatal("expected decode error")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}
