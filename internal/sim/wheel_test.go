package sim

import (
	"math/rand"
	"testing"

	"repro/internal/units"
)

// TestCancelFromWithinCallback pins that a handler may cancel a same-tick
// sibling that has not fired yet: the sibling must not run even though it was
// already promoted into the ready set when the tick began.
func TestCancelFromWithinCallback(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []string
		var victim Handle
		s.Schedule(10, PrioTask, func() {
			got = append(got, "killer")
			s.Cancel(victim)
		})
		victim = s.Schedule(10, PrioTask, func() { got = append(got, "victim") })
		s.Schedule(10, PrioTask, func() { got = append(got, "after") })
		s.Run(100)
		if len(got) != 2 || got[0] != "killer" || got[1] != "after" {
			t.Errorf("order = %v, want [killer after]", got)
		}
	})
}

// TestSameTickCancelReschedule pins cancel-then-reschedule at the current
// instant: the replacement gets a fresh sequence number, so it runs after
// every event already queued for that tick.
func TestSameTickCancelReschedule(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []string
		var victim Handle
		s.Schedule(10, PrioTask, func() {
			got = append(got, "first")
			s.Cancel(victim)
			victim = s.Schedule(10, PrioTask, func() { got = append(got, "replacement") })
		})
		victim = s.Schedule(10, PrioTask, func() { got = append(got, "victim") })
		s.Schedule(10, PrioTask, func() { got = append(got, "second") })
		s.Run(100)
		want := []string{"first", "second", "replacement"}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	})
}

// TestStaleHandleAfterReuse pins that a handle kept past its event's firing
// stays inert even after the pool hands the same Event object to a new
// schedule: cancel through the old handle must not kill the new event.
func TestStaleHandleAfterReuse(t *testing.T) {
	s := New() // pooling is wheel-specific
	firedOld := false
	old := s.Schedule(1, PrioTask, func() { firedOld = true })
	s.Run(1)
	if !firedOld || old.Scheduled() {
		t.Fatal("first event should have fired and gone stale")
	}
	// The wheel's free list now holds the old Event; the next schedule
	// reuses it.
	firedNew := false
	fresh := s.Schedule(10, PrioTask, func() { firedNew = true })
	s.Cancel(old) // stale: must be a no-op
	if !fresh.Scheduled() {
		t.Fatal("stale cancel killed a recycled event")
	}
	if old.At() != 0 {
		t.Errorf("stale At = %v, want 0", old.At())
	}
	s.Run(100)
	if !firedNew {
		t.Error("recycled event did not fire")
	}
}

// TestRescheduleSameTickFromHandler pins that a handler scheduling new work
// at the *current* tick gets it dispatched within the same tick, in
// (priority, sequence) order relative to other pending same-tick events.
func TestRescheduleSameTickFromHandler(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []string
		s.Schedule(10, PrioTask, func() {
			got = append(got, "a")
			s.Schedule(10, PrioHardware, func() { got = append(got, "hw-late") })
			s.Schedule(10, PrioTask, func() { got = append(got, "task-late") })
		})
		s.Schedule(10, PrioTask, func() { got = append(got, "b") })
		s.Run(100)
		// hw-late was scheduled after "a" started, so it cannot preempt
		// "b" (sequence order within... no: priority dominates). hw-late
		// has PrioHardware < PrioTask, so it runs before "b".
		want := []string{"a", "hw-late", "b", "task-late"}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	})
}

// TestLevelBoundaries exercises delays that land exactly at and around the
// wheel's level boundaries (256, 65536, ... ticks) plus the far-future
// overflow region, checking firing times against the heap oracle implicitly
// via exact expectations.
func TestLevelBoundaries(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		delays := []Ticks{
			0, 1, 255, 256, 257,
			65535, 65536, 65537,
			1 << 24, 1<<24 + 1,
			1 << 32, 1 << 40, 1 << 47,
			1 << 48, 1<<48 + 12345, // overflow region
			1 << 55,
		}
		fires := map[Ticks]int{}
		for _, d := range delays {
			d := d
			s.Schedule(d, PrioTask, func() {
				if s.Now() != d {
					t.Errorf("event for %d fired at %v", d, s.Now())
				}
				fires[d]++
			})
		}
		s.Run(1 << 56)
		for _, d := range delays {
			if fires[d] != 1 {
				t.Errorf("delay %d fired %d times, want 1", d, fires[d])
			}
		}
	})
}

// TestCascadeWithInterleavedSchedules drives the cursor across multiple
// cascades while handlers keep scheduling short- and long-range follow-ups,
// the pattern the kernel's DCO + virtual-timer pair produces.
func TestCascadeWithInterleavedSchedules(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var fired int
		var tick func()
		tick = func() {
			fired++
			if fired < 2000 {
				// Mix of short hops and level-crossing hops.
				d := Ticks(37)
				if fired%7 == 0 {
					d = 300
				}
				if fired%41 == 0 {
					d = 70000
				}
				s.After(d, PrioTask, tick)
			}
		}
		s.Schedule(0, PrioTask, tick)
		s.Run(1 << 40)
		if fired != 2000 {
			t.Errorf("fired = %d, want 2000", fired)
		}
	})
}

// TestScheduleAfterPartialRun pins the limit-gating contract: Run(until)
// leaves the clock at until, and a subsequent schedule at exactly until (or
// slightly later) must be accepted and fire — the wheel must never have
// advanced its cursor past the horizon while peeking.
func TestScheduleAfterPartialRun(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		s.Schedule(1_000_000, PrioTask, func() {}) // far future, forces peeks
		s.Run(500)
		if s.Now() != 500 {
			t.Fatalf("Now = %v, want 500", s.Now())
		}
		fired := false
		s.Schedule(500, PrioTask, func() { fired = true })
		s.Run(600)
		if !fired {
			t.Error("event at horizon boundary lost")
		}
		// And again, across a level boundary.
		s.Run(65_000)
		ok := false
		s.Schedule(65_000, PrioTask, func() { ok = true })
		s.Run(70_000)
		if !ok {
			t.Error("event after level-crossing partial run lost")
		}
	})
}

// TestWheelHeapRandomizedEquivalence runs an identical randomized
// schedule/cancel workload through the wheel and the heap and requires the
// two dispatch logs to match exactly. This is the queue-level differential
// test; the scenario-level one (trace bytes across apps) lives in
// internal/scenario.
func TestWheelHeapRandomizedEquivalence(t *testing.T) {
	type logEntry struct {
		at Ticks
		id int
	}
	run := func(kind QueueKind, seed int64) []logEntry {
		rng := rand.New(rand.NewSource(seed))
		s := NewWithQueue(kind)
		var log []logEntry
		var live []Handle
		id := 0
		var spawn func(depth int) // schedules one random event
		spawn = func(depth int) {
			id++
			me := id
			var d Ticks
			switch rng.Intn(10) {
			case 0: // same tick
				d = 0
			case 1: // far future
				d = Ticks(rng.Int63n(1 << 50))
			default:
				d = Ticks(rng.Int63n(100000))
			}
			prio := []Priority{PrioHardware, PrioIRQ, PrioTask}[rng.Intn(3)]
			h := s.AfterArg(d, prio, func(arg any) {
				log = append(log, logEntry{at: s.Now(), id: arg.(int)})
				if depth < 3 && rng.Intn(3) == 0 {
					spawn(depth + 1)
				}
				if len(live) > 0 && rng.Intn(4) == 0 {
					s.Cancel(live[rng.Intn(len(live))])
				}
			}, me)
			live = append(live, h)
		}
		for i := 0; i < 500; i++ {
			spawn(0)
		}
		// Random cancels before running.
		for i := 0; i < 100; i++ {
			s.Cancel(live[rng.Intn(len(live))])
		}
		// Run in stages to exercise the limit gate.
		s.Run(1000)
		s.Run(100000)
		s.Run(1 << 51)
		return log
	}
	for seed := int64(1); seed <= 5; seed++ {
		wheel := run(QueueWheel, seed)
		heap := run(QueueHeap, seed)
		if len(wheel) != len(heap) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d: divergence at %d: wheel %+v heap %+v", seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestPoolSteadyStateZeroAlloc verifies the headline pooling claim: a
// self-rescheduling workload in steady state performs zero allocations per
// event on the wheel.
func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	s := New()
	var tick func(any)
	n := 0
	tick = func(any) {
		n++
		s.AfterArg(10, PrioTask, tick, nil)
	}
	s.ScheduleArg(0, PrioTask, tick, nil)
	s.Run(10_000) // warm up: arena blocks allocated, free list primed
	start := s.Now()
	allocs := testing.AllocsPerRun(100, func() {
		s.Run(s.Now() + 1000)
	})
	if allocs != 0 {
		t.Errorf("steady-state allocs per 100-event batch = %v, want 0", allocs)
	}
	_ = start
	if n == 0 {
		t.Fatal("workload did not run")
	}
}

func TestPendingCounts(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var hs []Handle
		for i := 0; i < 50; i++ {
			hs = append(hs, s.Schedule(units.Ticks(i*1000), PrioTask, func() {}))
		}
		if s.Pending() != 50 {
			t.Fatalf("pending = %d, want 50", s.Pending())
		}
		for i := 0; i < 10; i++ {
			s.Cancel(hs[i*3])
		}
		if s.Pending() != 40 {
			t.Fatalf("pending = %d, want 40", s.Pending())
		}
		s.Run(20_000)
		s.Run(1 << 30)
		if s.Pending() != 0 {
			t.Fatalf("pending = %d, want 0", s.Pending())
		}
	})
}
