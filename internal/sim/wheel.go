package sim

import "math/bits"

// Hierarchical timer wheel: the default event queue.
//
// Tick space is carved into six levels of 256 slots, one level per byte of
// the 48 low bits of the event time. An event lives at the level of the
// highest byte in which its time differs from the wheel cursor (the time of
// the last dispatched event), in the slot named by that byte of its time.
// Because all higher bytes agree with the cursor, a pending event's slot
// index is strictly greater than the cursor's index at its level — there is
// no ring wrap-around, and every slot at or below the cursor is empty.
//
// Level 0 slots therefore hold exactly one tick each: when the cursor jumps
// to a level-0 slot, its whole list is due at that instant and is bulk-loaded
// into the ready heap, which restores the (priority, sequence) order that
// slot lists do not maintain. Higher-level slots cascade: their events are
// re-placed relative to the advanced cursor and land at lower levels (or in
// the ready heap when due exactly at the cursor). Events more than 2^48
// ticks (~8.9 simulated years) ahead go to a small overflow heap and migrate
// into the wheel when the cursor approaches.
//
// Determinism: dispatch order is exactly (at, prio, seq) — the same total
// order the legacy binary heap uses — because level-0 delivery funnels every
// due event through the ready heap, including events scheduled for the
// current instant from inside a running handler.
//
// Allocation: Event objects come from a free list refilled by 256-entry
// arena blocks and are recycled the moment they fire or are canceled;
// generation counters keep stale Handles inert. Steady-state scheduling
// performs no allocation at all.

const (
	wheelLevels   = 6
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits
	wheelSlotMask = wheelSlots - 1
	wheelArena    = 256
)

type slotList struct{ head, tail *Event }

type wheel struct {
	cur Ticks // time of the last dispatched (or settled) event

	slots    [wheelLevels][wheelSlots]slotList
	occupied [wheelLevels][wheelSlots / 64]uint64

	// ready holds events due exactly at cur, ordered by (prio, seq).
	ready []*Event
	// overflow holds events beyond the wheel horizon, ordered by (at, seq).
	overflow []*Event

	free  *Event
	arena []Event
	used  int

	n int
}

func newWheel() *wheel {
	return &wheel{}
}

func (w *wheel) len() int { return w.n }

func (w *wheel) acquire() *Event {
	if e := w.free; e != nil {
		w.free = e.next
		e.next = nil
		return e
	}
	if w.used == len(w.arena) {
		w.arena = make([]Event, wheelArena)
		w.used = 0
	}
	e := &w.arena[w.used]
	w.used++
	return e
}

// release returns a removed event to the free list. Bumping the generation
// here is what invalidates every outstanding Handle to it.
func (w *wheel) release(e *Event) {
	e.gen++
	e.fn, e.afn, e.arg = nil, nil, nil
	e.prev = nil
	e.loc = locFree
	e.next = w.free
	w.free = e
}

func (w *wheel) schedule(at Ticks, prio Priority, seq uint64, fn func(), afn func(any), arg any) Handle {
	e := w.acquire()
	e.at, e.prio, e.seq = at, prio, seq
	e.fn, e.afn, e.arg = fn, afn, arg
	w.place(e)
	w.n++
	return Handle{e: e, gen: e.gen}
}

// place files an event by the highest byte in which its time differs from
// the cursor. Events at or before the cursor are due and go straight to the
// ready heap: a Group coordinator peeking one partition can settle its
// cursor ahead of another partition's merge time, so a cross-partition
// schedule (a frame-end event delivered to this wheel) may land at or below
// the cursor. The ready heap orders by (at, prio, seq), so such events still
// dispatch in exact global order; a single-partition run never schedules
// below its cursor and is unaffected.
func (w *wheel) place(e *Event) {
	if e.at <= w.cur {
		w.readyPush(e)
		return
	}
	diff := uint64(e.at) ^ uint64(w.cur)
	level := (bits.Len64(diff) - 1) >> 3
	if level >= wheelLevels {
		w.overflowPush(e)
		return
	}
	slot := int(uint64(e.at)>>(level*wheelSlotBits)) & wheelSlotMask
	w.slotPush(level, slot, e)
}

func (w *wheel) slotPush(level, slot int, e *Event) {
	l := &w.slots[level][slot]
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
		w.occupied[level][slot>>6] |= 1 << (slot & 63)
	}
	l.tail = e
	e.loc = int32(level<<wheelSlotBits | slot)
}

// takeSlot detaches and returns a slot's list head.
func (w *wheel) takeSlot(level, slot int) *Event {
	l := &w.slots[level][slot]
	head := l.head
	l.head, l.tail = nil, nil
	w.occupied[level][slot>>6] &^= 1 << (slot & 63)
	return head
}

// nextSlot returns the first occupied slot index strictly greater than
// after at the given level.
func (w *wheel) nextSlot(level, after int) (int, bool) {
	start := after + 1
	if start >= wheelSlots {
		return 0, false
	}
	word := start >> 6
	v := w.occupied[level][word] &^ ((1 << (start & 63)) - 1)
	for {
		if v != 0 {
			return word<<6 + bits.TrailingZeros64(v), true
		}
		word++
		if word >= wheelSlots/64 {
			return 0, false
		}
		v = w.occupied[level][word]
	}
}

// curIdx returns the cursor's slot index at a level.
func (w *wheel) curIdx(level int) int {
	return int(uint64(w.cur)>>(level*wheelSlotBits)) & wheelSlotMask
}

// next settles the wheel up to limit: it reports the earliest pending event
// time iff that time is <= limit, cascading upper levels and priming the
// ready heap along the way. The cursor never advances past limit, so a later
// schedule at any time >= limit still lands ahead of the cursor.
func (w *wheel) next(limit Ticks) (Ticks, bool) {
	for {
		if len(w.ready) > 0 {
			// Ready events are due at or before the cursor; every slot event
			// is strictly after it, so the ready head is the global minimum.
			if at := w.ready[0].at; at <= limit {
				return at, true
			}
			return 0, false
		}
		if w.n == 0 {
			return 0, false
		}
		// The lowest level with an occupied slot beyond the cursor holds the
		// earliest pending events: level L slots beyond the cursor start
		// after every level L-1 slot of the current window ends.
		advanced := false
		for level := 0; level < wheelLevels; level++ {
			slot, ok := w.nextSlot(level, w.curIdx(level))
			if !ok {
				continue
			}
			if level == 0 {
				// A level-0 slot is a single tick; its time is exact.
				at := w.cur&^wheelSlotMask | Ticks(slot)
				if at > limit {
					return 0, false
				}
				w.cur = at
				w.readyLoad(w.takeSlot(0, slot))
			} else {
				// Cascade: jump to the slot's start (a lower bound on its
				// events) and re-place its list relative to the new cursor.
				span := Ticks(1) << ((level + 1) * wheelSlotBits)
				base := w.cur &^ (span - 1)
				at := base | Ticks(slot)<<(level*wheelSlotBits)
				if at > limit {
					return 0, false
				}
				w.cur = at
				for e := w.takeSlot(level, slot); e != nil; {
					next := e.next
					e.next, e.prev = nil, nil
					w.place(e)
					e = next
				}
			}
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// The wheel proper is empty; migrate due overflow events in.
		at := w.overflow[0].at
		if at > limit {
			return 0, false
		}
		w.cur = at
		for len(w.overflow) > 0 {
			e := w.overflow[0]
			if bits.Len64(uint64(e.at)^uint64(w.cur)) > wheelLevels*wheelSlotBits {
				break
			}
			w.overflowRemove(0)
			w.place(e)
		}
	}
}

// pop removes the earliest event. Only valid right after next returned ok,
// which guarantees the ready heap is primed.
func (w *wheel) pop() fired {
	e := w.ready[0]
	w.readyRemove(0)
	f := fired{fn: e.fn, afn: e.afn, arg: e.arg}
	w.release(e)
	w.n--
	return f
}

func (w *wheel) cancel(e *Event) {
	switch {
	case e.loc >= 0:
		level := int(e.loc) >> wheelSlotBits
		slot := int(e.loc) & wheelSlotMask
		l := &w.slots[level][slot]
		if e.prev != nil {
			e.prev.next = e.next
		} else {
			l.head = e.next
		}
		if e.next != nil {
			e.next.prev = e.prev
		} else {
			l.tail = e.prev
		}
		if l.head == nil {
			w.occupied[level][slot>>6] &^= 1 << (slot & 63)
		}
	case e.loc == locReady:
		w.readyRemove(int(e.idx))
	case e.loc == locOverflow:
		w.overflowRemove(int(e.idx))
	default:
		return // already gone; Cancel's handle check should prevent this
	}
	w.release(e)
	w.n--
}

// head returns the earliest pending event. Only valid right after next
// returned ok, which guarantees the ready heap is primed.
func (w *wheel) head() *Event { return w.ready[0] }

// --- ready heap: (at, prio, seq) min-heap of due events ---
//
// A single-partition wheel only ever holds one instant here, so the at
// comparison is vestigial for it; under a Group, below-cursor deliveries
// from other partitions make the times genuinely mixed.

func readyLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (w *wheel) readyPush(e *Event) {
	e.loc = locReady
	e.idx = int32(len(w.ready))
	w.ready = append(w.ready, e)
	w.readyUp(len(w.ready) - 1)
}

// readyLoad bulk-loads a level-0 slot list and heapifies, which is O(k)
// instead of k pushes' O(k log k) — the path a 10k-node boot storm takes.
func (w *wheel) readyLoad(head *Event) {
	for e := head; e != nil; {
		next := e.next
		e.next, e.prev = nil, nil
		e.loc = locReady
		e.idx = int32(len(w.ready))
		w.ready = append(w.ready, e)
		e = next
	}
	for i := len(w.ready)/2 - 1; i >= 0; i-- {
		w.readyDown(i)
	}
}

func (w *wheel) readyRemove(i int) {
	last := len(w.ready) - 1
	if i != last {
		w.ready[i] = w.ready[last]
		w.ready[i].idx = int32(i)
	}
	w.ready[last] = nil
	w.ready = w.ready[:last]
	if i != last {
		if !w.readyUp(i) {
			w.readyDown(i)
		}
	}
}

func (w *wheel) readyUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !readyLess(w.ready[i], w.ready[parent]) {
			break
		}
		w.ready[i], w.ready[parent] = w.ready[parent], w.ready[i]
		w.ready[i].idx = int32(i)
		w.ready[parent].idx = int32(parent)
		i = parent
		moved = true
	}
	return moved
}

func (w *wheel) readyDown(i int) {
	n := len(w.ready)
	for {
		min := i
		if l := 2*i + 1; l < n && readyLess(w.ready[l], w.ready[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && readyLess(w.ready[r], w.ready[min]) {
			min = r
		}
		if min == i {
			return
		}
		w.ready[i], w.ready[min] = w.ready[min], w.ready[i]
		w.ready[i].idx = int32(i)
		w.ready[min].idx = int32(min)
		i = min
	}
}

// --- overflow heap: (at, seq) min-heap of far-future events ---

func overflowLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (w *wheel) overflowPush(e *Event) {
	e.loc = locOverflow
	e.idx = int32(len(w.overflow))
	w.overflow = append(w.overflow, e)
	i := len(w.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(w.overflow[i], w.overflow[parent]) {
			break
		}
		w.overflow[i], w.overflow[parent] = w.overflow[parent], w.overflow[i]
		w.overflow[i].idx = int32(i)
		w.overflow[parent].idx = int32(parent)
		i = parent
	}
}

func (w *wheel) overflowRemove(i int) {
	last := len(w.overflow) - 1
	if i != last {
		w.overflow[i] = w.overflow[last]
		w.overflow[i].idx = int32(i)
	}
	w.overflow[last] = nil
	w.overflow = w.overflow[:last]
	if i == last {
		return
	}
	// Sift the replacement whichever way restores heap order.
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(w.overflow[i], w.overflow[parent]) {
			break
		}
		w.overflow[i], w.overflow[parent] = w.overflow[parent], w.overflow[i]
		w.overflow[i].idx = int32(i)
		w.overflow[parent].idx = int32(parent)
		i = parent
	}
	n := len(w.overflow)
	for {
		min := i
		if l := 2*i + 1; l < n && overflowLess(w.overflow[l], w.overflow[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && overflowLess(w.overflow[r], w.overflow[min]) {
			min = r
		}
		if min == i {
			return
		}
		w.overflow[i], w.overflow[min] = w.overflow[min], w.overflow[i]
		w.overflow[i].idx = int32(i)
		w.overflow[min].idx = int32(min)
		i = min
	}
}
