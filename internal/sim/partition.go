package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultLookahead is the conservative scheduling lookahead a Group assumes
// when none is configured: no event may announce (pledge) a shared-medium
// transmit fewer than this many ticks ahead of itself. The default matches
// the radio's minimum CSMA backoff; mote.World overrides it explicitly so
// the two constants cannot drift apart silently.
const DefaultLookahead Ticks = 500

// Group steps K partition simulators in parallel under conservative
// synchronization, plus one shared simulator (the radio medium) that only
// ever steps serially. It is the classic bounded-lag PDES loop:
//
//   - Between windows the coordinator merges the heads of all K+1 queues in
//     (at, prio, birth) order — the same total order a single-queue run
//     produces, with the scheduling-time birth stamp standing in for the
//     global sequence number — and serially dispatches every event that is
//     not safely parallel: shared-medium events, marked events (battery
//     depletion, which can kill a node), and any event at or beyond the
//     current horizon.
//   - When the earliest event is an ordinary partition-local event strictly
//     below the horizon, the worker pool runs every partition's local events
//     up to (but excluding) the horizon concurrently.
//
// The horizon H is the earliest instant at which anything cross-partition
// can happen: the earliest armed transmit pledge, capped by tmin+lookahead
// (an event dispatched inside the window at tmin or later cannot pledge a
// transmit before that). Everything a partition does below H is node-local
// by construction — cross-partition interaction flows exclusively through
// the shared medium, and every medium touch is pledged at least lookahead
// ticks ahead — so the windows commute and the merged execution is
// event-for-event equivalent to the serial one.
//
// Workers rendezvous with the coordinator through a spin barrier (an epoch
// counter and a countdown), not channels: a big run opens tens of thousands
// of windows and the barrier must cost nanoseconds, not microseconds.
type Group struct {
	doms   []*Simulator
	shared *Simulator
	// all is doms followed by shared: the merge scans it in order and keeps
	// the first of equal keys, which puts the shared domain last on a full
	// (at, prio, birth) tie. That is exactly where medium events must sit: a
	// frame's finalize fires at the same instant, priority, and birth as the
	// receivers' frame-end events, and the receivers must observe the frame
	// before finalize retires it.
	all []*Simulator

	look   Ticks
	prep   func(limit Ticks)
	halted bool

	// Spin-barrier state. limit and counts/panics are plain memory ordered
	// by the epoch (publish) and pending (collect) atomics. Every worker
	// joins every barrier — even ones with an empty window — because the
	// countdown is the only happens-before edge that licenses the
	// coordinator's next round of plain writes.
	epoch   atomic.Int64
	pending atomic.Int64
	limit   Ticks
	counts  []int64
	panics  []any
	quit    atomic.Bool
	wg      sync.WaitGroup

	// soloCount tallies events the coordinator stepped inline through the
	// single-active-partition fast path (no barrier crossing).
	soloCount int64
}

// NewGroup returns a Group of k partition simulators and one shared
// simulator, all backed by the named queue implementation.
func NewGroup(kind QueueKind, k int) *Group {
	if k < 1 {
		panic(fmt.Sprintf("sim: group with %d partitions", k))
	}
	g := &Group{
		doms:   make([]*Simulator, k),
		shared: NewWithQueue(kind),
		look:   DefaultLookahead,
		counts: make([]int64, k),
		panics: make([]any, k),
	}
	for i := range g.doms {
		g.doms[i] = NewWithQueue(kind)
	}
	g.all = append(append(make([]*Simulator, 0, k+1), g.doms...), g.shared)
	return g
}

// Partitions returns the number of partition simulators.
func (g *Group) Partitions() int { return len(g.doms) }

// Domain returns partition i's simulator.
func (g *Group) Domain(i int) *Simulator { return g.doms[i] }

// Shared returns the serial-only shared simulator (the medium's clock).
func (g *Group) Shared() *Simulator { return g.shared }

// SetLookahead sets the minimum pledge distance the workloads guarantee.
func (g *Group) SetLookahead(d Ticks) {
	if d < 1 {
		panic("sim: lookahead must be positive")
	}
	g.look = d
}

// SetWindowPrep registers a hook the coordinator calls, serially, right
// before each parallel window with the window's inclusive limit. The medium
// uses it to pre-extend lazily generated interference state past everything
// the window (and the busy-CPU clock overshoot inside it) can read, so the
// windows stay mutation-free.
func (g *Group) SetWindowPrep(fn func(limit Ticks)) { g.prep = fn }

// Halt stops Run before the next window or serial event.
func (g *Group) Halt() { g.halted = true }

// Halted reports whether the group has been halted.
func (g *Group) Halted() bool { return g.halted }

// Pending reports the total number of queued events across all domains.
func (g *Group) Pending() int {
	n := 0
	for _, s := range g.all {
		n += s.Pending()
	}
	return n
}

// Run advances every domain until the queues drain past until or the group
// is halted, and returns the number of events dispatched. Like
// Simulator.Run, all clocks are left at until when the run completes by
// reaching the horizon.
func (g *Group) Run(until Ticks) int {
	g.startWorkers()
	defer g.stopWorkers()

	serial := 0
	for !g.halted {
		e, di := g.minHead(until)
		if e == nil {
			break
		}
		h := g.horizon(e.at, until)
		if !e.marked && di < len(g.doms) && e.at < h {
			g.runWindows(h - 1)
			continue
		}
		// Serial step in global merge order. Lift every clock first so a
		// cross-partition schedule issued by this handler (a frame-end event
		// on a receiver's queue, a medium expiry) is never in the receiving
		// simulator's past.
		g.liftAll(e.at)
		g.all[di].stepHead()
		serial++
	}
	if !g.halted {
		g.liftAll(until)
	}
	total := serial + int(g.soloCount)
	g.soloCount = 0
	for i := range g.counts {
		total += int(g.counts[i])
		g.counts[i] = 0
	}
	return total
}

// minHead returns the earliest pending event across all domains in
// (at, prio, birth, domain) order, with the shared domain losing full ties.
func (g *Group) minHead(until Ticks) (*Event, int) {
	var best *Event
	bi := -1
	for i, s := range g.all {
		e := s.peek(until)
		if e == nil {
			continue
		}
		if best == nil || eventBefore(e, best) {
			best, bi = e, i
		}
	}
	return best, bi
}

func eventBefore(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.birth < b.birth
}

// horizon returns the first instant at which a cross-partition effect could
// occur, given that the earliest pending event sits at tmin: the earliest
// armed pledge, capped by tmin+lookahead (covering pledges not yet armed)
// and by the end of the run.
func (g *Group) horizon(tmin, until Ticks) Ticks {
	h := until + 1
	if c := tmin + g.look; c < h {
		h = c
	}
	for _, d := range g.doms {
		if f := d.pledgeFloor(); f < h {
			h = f
		}
	}
	return h
}

func (g *Group) liftAll(t Ticks) {
	for _, s := range g.all {
		s.lift(t)
	}
}

// runWindows releases every worker to run its partition's local events up to
// and including limit, then spins until all of them park again — unless the
// window has at most one partition with anything to do, in which case the
// coordinator steps it inline and skips the barrier entirely. That solo path
// is the common shape whenever activity is momentarily concentrated in one
// region, and on a machine with few cores it is most of the speedup: a
// barrier crossing costs a goroutine-scheduler round trip per worker.
func (g *Group) runWindows(limit Ticks) {
	if g.prep != nil {
		g.prep(limit)
	}
	n := 0
	var solo *Simulator
	for _, d := range g.doms {
		if d.peek(limit) != nil {
			n++
			solo = d
		}
	}
	if n == 0 {
		return
	}
	if n == 1 {
		g.soloCount += int64(solo.runWindow(limit))
		return
	}
	g.limit = limit
	g.pending.Store(int64(len(g.doms)))
	g.epoch.Add(1)
	for spins := 0; g.pending.Load() != 0; spins++ {
		if spins&7 == 7 {
			runtime.Gosched()
		}
	}
	for i := range g.panics {
		if p := g.panics[i]; p != nil {
			panic(p)
		}
	}
}

func (g *Group) startWorkers() {
	g.quit.Store(false)
	g.wg.Add(len(g.doms))
	// Snapshot the epoch before launching: a worker that first observes the
	// counter only after the coordinator has already opened a window must
	// still recognize that window as news, or the barrier deadlocks.
	base := g.epoch.Load()
	for i := range g.doms {
		go g.worker(i, base)
	}
}

func (g *Group) stopWorkers() {
	g.quit.Store(true)
	g.wg.Wait()
}

// worker is one partition's stepping goroutine: it parks on the epoch
// counter and runs one bounded window per bump. A panic inside a handler is
// captured and re-raised by the coordinator after the barrier, so a broken
// workload fails the run instead of deadlocking it.
func (g *Group) worker(i int, seen int64) {
	defer g.wg.Done()
	for {
		e := g.epoch.Load()
		if e == seen {
			if g.quit.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		seen = e
		ok := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					g.panics[i] = r
				}
			}()
			g.counts[i] += int64(g.doms[i].runWindow(g.limit))
			return true
		}()
		g.pending.Add(-1)
		if !ok {
			return
		}
	}
}
