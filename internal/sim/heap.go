package sim

// heapQueue is the original binary-heap event queue, kept as the
// differential-testing and benchmarking baseline (-queue=heap). It preserves
// the pre-wheel implementation's behavior exactly: one fresh Event
// allocation per schedule, no pooling, O(log n) push/pop/cancel via a
// (at, prio, seq)-ordered binary heap. Handles still go stale through the
// shared generation counter, so the two queues expose one API.
type heapQueue struct {
	events []*Event
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (h *heapQueue) len() int { return len(h.events) }

func (h *heapQueue) schedule(at Ticks, prio Priority, seq uint64, fn func(), afn func(any), arg any) Handle {
	e := &Event{at: at, prio: prio, seq: seq, fn: fn, afn: afn, arg: arg, loc: locHeap}
	e.idx = int32(len(h.events))
	h.events = append(h.events, e)
	h.up(len(h.events) - 1)
	return Handle{e: e, gen: e.gen}
}

func (h *heapQueue) next(limit Ticks) (Ticks, bool) {
	if len(h.events) == 0 || h.events[0].at > limit {
		return 0, false
	}
	return h.events[0].at, true
}

// head returns the earliest pending event. Only valid right after next
// returned ok.
func (h *heapQueue) head() *Event { return h.events[0] }

func (h *heapQueue) pop() fired {
	e := h.events[0]
	h.remove(0)
	e.gen++
	return fired{fn: e.fn, afn: e.afn, arg: e.arg}
}

func (h *heapQueue) cancel(e *Event) {
	if e.loc != locHeap {
		return
	}
	h.remove(int(e.idx))
	e.gen++
	e.loc = locFree
}

func heapLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (h *heapQueue) remove(i int) {
	last := len(h.events) - 1
	if i != last {
		h.events[i] = h.events[last]
		h.events[i].idx = int32(i)
	}
	h.events[last] = nil
	h.events = h.events[:last]
	if i != last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

func (h *heapQueue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h.events[i], h.events[parent]) {
			break
		}
		h.events[i], h.events[parent] = h.events[parent], h.events[i]
		h.events[i].idx = int32(i)
		h.events[parent].idx = int32(parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *heapQueue) down(i int) {
	n := len(h.events)
	for {
		min := i
		if l := 2*i + 1; l < n && heapLess(h.events[l], h.events[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && heapLess(h.events[r], h.events[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.events[i], h.events[min] = h.events[min], h.events[i]
		h.events[i].idx = int32(i)
		h.events[min].idx = int32(min)
		i = min
	}
}
