package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at %d", i)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not produce the all-zero fixed point")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		if seen[v] == 0 {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestTicksBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Ticks(500)
		if v < 0 || v >= 500 {
			t.Fatalf("Ticks(500) = %v out of range", v)
		}
	}
	if r.Ticks(0) != 0 {
		t.Error("Ticks(0) should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(31337)
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(42)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams should differ")
	}
}
