// Package sim provides the deterministic discrete-event simulation kernel
// underneath the Quanto reproduction.
//
// A single Simulator owns one global event queue shared by every simulated
// node, the radio medium, and the measurement bench. Events are ordered by
// (time, priority, sequence number); the sequence number makes scheduling
// order a stable tie-break, so a run is fully reproducible: the same program
// with the same seed produces byte-identical logs.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Ticks re-exports the simulation time unit for convenience.
type Ticks = units.Ticks

// Priority orders events that fire at the same instant. Lower values run
// first. Hardware events (state machines, medium deliveries) use PrioHardware
// so that, for example, a radio finishes receiving a frame before the CPU
// handler scheduled at the same instant observes it.
type Priority int8

// Predefined scheduling priorities.
const (
	PrioHardware Priority = -10 // hardware state machines, medium
	PrioIRQ      Priority = 0   // interrupt dispatch
	PrioTask     Priority = 10  // deferred software work
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it later.
type Event struct {
	at    Ticks
	prio  Priority
	seq   uint64
	fn    func()
	index int // heap index, -1 when not queued
}

// At reports when the event is scheduled to fire.
func (e *Event) At() Ticks { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler.
type Simulator struct {
	now    Ticks
	seq    uint64
	queue  eventHeap
	nextID uint64
	halted bool
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Ticks { return s.now }

// Schedule registers fn to run at the absolute time at. Scheduling in the
// past is a programming error and panics: silent reordering would destroy
// the determinism guarantees the energy logs depend on.
func (s *Simulator) Schedule(at Ticks, prio Priority, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil function")
	}
	s.seq++
	e := &Event{at: at, prio: prio, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d ticks from now.
func (s *Simulator) After(d Ticks, prio Priority, fn func()) *Event {
	return s.Schedule(s.now+d, prio, fn)
}

// Cancel removes a pending event. Canceling an event that already fired (or
// was already canceled) is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Halt stops Run before the next event is dispatched.
func (s *Simulator) Halt() { s.halted = true }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Step dispatches the single next event. It reports false when the queue is
// empty or the simulator has been halted.
func (s *Simulator) Step() bool {
	if s.halted || len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	e.fn()
	return true
}

// Run dispatches events until the queue drains, the simulator is halted, or
// the next event lies beyond until. The clock is left at until when the run
// completes by reaching the horizon, so measurements over [0, until] see the
// full window. It returns the number of events dispatched.
func (s *Simulator) Run(until Ticks) int {
	n := 0
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= until {
		e := heap.Pop(&s.queue).(*Event)
		s.now = e.at
		e.fn()
		n++
	}
	if !s.halted && s.now < until {
		s.now = until
	}
	return n
}
