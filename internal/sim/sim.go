// Package sim provides the deterministic discrete-event simulation kernel
// underneath the Quanto reproduction.
//
// A single Simulator owns one global event queue shared by every simulated
// node, the radio medium, and the measurement bench. Events are ordered by
// (time, priority, sequence number); the sequence number makes scheduling
// order a stable tie-break, so a run is fully reproducible: the same program
// with the same seed produces byte-identical logs.
//
// Two queue implementations share that ordering contract. The default is a
// hierarchical timer wheel (wheel.go): six cascading levels of 256 slots
// over the tick space, a far-future overflow heap, and a free-list event
// pool, giving O(1) schedule/cancel and allocation-free steady-state
// operation at 10k-100k nodes. QueueHeap selects the original binary-heap
// queue (heap.go), kept as a differential-testing baseline: both queues
// dispatch every workload in the identical order, so traces are
// byte-identical whichever is selected.
package sim

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Ticks re-exports the simulation time unit for convenience.
type Ticks = units.Ticks

// Priority orders events that fire at the same instant. Lower values run
// first. Hardware events (state machines, medium deliveries) use PrioHardware
// so that, for example, a radio finishes receiving a frame before the CPU
// handler scheduled at the same instant observes it.
type Priority int8

// Predefined scheduling priorities.
const (
	// PrioTopology runs before everything else at an instant: topology
	// maintenance (mobility epochs, death-driven routing notifications) must
	// be visible to every hardware and software event sharing its tick, and
	// the unique priority keeps topology events totally ordered against all
	// other work by (at, prio) alone — no cross-simulator birth comparison,
	// which a partitioned run cannot reproduce, is ever needed.
	PrioTopology Priority = -20 // topology changes (mobility, rerouting)
	PrioHardware Priority = -10 // hardware state machines, medium
	PrioIRQ      Priority = 0   // interrupt dispatch
	PrioTask     Priority = 10  // deferred software work
)

// QueueKind selects the event-queue implementation backing a Simulator.
type QueueKind string

// Queue implementations. Both dispatch in the identical (time, priority,
// sequence) order; QueueHeap exists as the pre-wheel baseline for
// differential tests and benchmarks.
const (
	QueueWheel QueueKind = "wheel"
	QueueHeap  QueueKind = "heap"
)

// ValidQueue reports whether kind names a queue implementation ("" selects
// the default wheel).
func ValidQueue(kind QueueKind) bool {
	switch kind {
	case "", QueueWheel, QueueHeap:
		return true
	}
	return false
}

// Event is one scheduled callback. Events are owned by the queue: the wheel
// recycles them through a free list the instant they fire or are canceled,
// so user code never holds a *Event directly — Schedule returns a
// generation-checked Handle instead.
type Event struct {
	at   Ticks
	prio Priority
	seq  uint64

	// gen is bumped every time the event leaves the queue (fire or cancel),
	// so Handles to a recycled Event turn inert instead of acting on an
	// unrelated later event (the classic ABA hazard of pooling).
	gen uint64

	// Exactly one of fn / (afn, arg) is set: ScheduleArg avoids a closure
	// allocation on hot paths by carrying the argument alongside a shared
	// callback.
	fn  func()
	afn func(any)
	arg any

	// Intrusive links for the wheel's slot lists; next doubles as the
	// free-list link while the event is pooled.
	next, prev *Event

	// loc encodes where the event currently lives: locFree / locReady /
	// locOverflow / locHeap, or level<<8|slot inside the wheel.
	loc int32
	// idx is the event's index inside whichever binary heap holds it
	// (ready, overflow, or the legacy heap queue).
	idx int32

	// birth is the simulated time at which the event was scheduled. A Group
	// coordinator uses it as a tie-break when merging events from different
	// partitions: two events scheduled at different instants in a serial run
	// would have gotten ordered sequence numbers, so (at, prio, birth)
	// recovers that order without a shared counter.
	birth Ticks
	// marked flags events that must never run inside a parallel window
	// (battery depletion checks: their handler can kill a node, a world-level
	// effect). runWindow stops in front of a marked event and leaves it for
	// the coordinator to step serially.
	marked bool
}

const (
	locFree     int32 = -1
	locReady    int32 = -2
	locOverflow int32 = -3
	locHeap     int32 = -4
)

// Handle is a cancelable reference to a scheduled event. The zero Handle is
// valid and behaves like an event that already fired: Scheduled reports
// false and Cancel is a no-op. Because events are pooled, a Handle carries
// the generation it was issued under; once the event fires or is canceled
// the handle goes stale and can never affect a recycled successor.
type Handle struct {
	e   *Event
	gen uint64
}

// Scheduled reports whether the referenced event is still pending.
func (h Handle) Scheduled() bool { return h.e != nil && h.e.gen == h.gen }

// At reports when the event is scheduled to fire; 0 if the handle is stale.
func (h Handle) At() Ticks {
	if h.Scheduled() {
		return h.e.at
	}
	return 0
}

// fired is a popped event's payload, copied out before the Event object is
// released back to the pool.
type fired struct {
	fn  func()
	afn func(any)
	arg any
}

// queue is the event-queue contract shared by the timer wheel and the legacy
// binary heap. Both dispatch in exactly (at, prio, seq) order.
type queue interface {
	// schedule enqueues a callback and returns its handle.
	schedule(at Ticks, prio Priority, seq uint64, fn func(), afn func(any), arg any) Handle
	// next reports the earliest pending event time, provided it does not
	// exceed limit. It may advance internal cursors up to limit but never
	// beyond, so later schedules at >= limit stay valid.
	next(limit Ticks) (Ticks, bool)
	// pop removes and returns the earliest event's payload. Only valid
	// immediately after next returned ok.
	pop() fired
	// head returns the earliest pending event for inspection (time, priority,
	// birth, marked). Only valid immediately after next returned ok; the
	// event remains owned by the queue.
	head() *Event
	// cancel removes a pending event.
	cancel(e *Event)
	// len reports how many events are pending.
	len() int
}

// Simulator is a single-threaded discrete-event scheduler. Under a Group it
// is one partition's scheduler: its events are stepped either by a worker
// inside a bounded parallel window or by the coordinator's serial merge, but
// never by both at once, so Simulator itself stays lock-free.
type Simulator struct {
	now    Ticks
	seq    uint64
	q      queue
	halted bool

	// pledges are announced future medium transmits (see Pledge). The
	// partition that owns this simulator arms and drops them; the Group
	// coordinator reads them between windows to bound the parallel horizon.
	pledges []*Pledge
}

// New returns an empty simulator positioned at time zero, backed by the
// hierarchical timer wheel.
func New() *Simulator { return NewWithQueue(QueueWheel) }

// NewWithQueue returns an empty simulator backed by the named queue
// implementation ("" selects the default wheel). Unknown kinds panic: queue
// selection is a configuration constant, not a runtime condition.
func NewWithQueue(kind QueueKind) *Simulator {
	switch kind {
	case "", QueueWheel:
		return &Simulator{q: newWheel()}
	case QueueHeap:
		return &Simulator{q: newHeapQueue()}
	}
	panic(fmt.Sprintf("sim: unknown queue kind %q", kind))
}

// Now returns the current simulated time.
func (s *Simulator) Now() Ticks { return s.now }

// Schedule registers fn to run at the absolute time at. Scheduling in the
// past is a programming error and panics: silent reordering would destroy
// the determinism guarantees the energy logs depend on.
func (s *Simulator) Schedule(at Ticks, prio Priority, fn func()) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil function")
	}
	s.seq++
	h := s.q.schedule(at, prio, s.seq, fn, nil, nil)
	h.e.birth, h.e.marked = s.now, false
	return h
}

// ScheduleMarked is Schedule for events whose handler may have effects beyond
// this simulator's own partition — battery depletion checks that can kill a
// node. A Group never dispatches a marked event inside a parallel window; the
// coordinator steps it serially, in global merge order, while every other
// partition is parked. Under a plain single-partition Run it behaves exactly
// like Schedule.
func (s *Simulator) ScheduleMarked(at Ticks, prio Priority, fn func()) Handle {
	h := s.Schedule(at, prio, fn)
	h.e.marked = true
	return h
}

// ScheduleArg registers fn(arg) to run at the absolute time at. It is the
// allocation-free variant of Schedule for hot paths: a caller that would
// otherwise close over one variable passes a long-lived fn plus the variable
// as arg, so steady-state scheduling allocates nothing.
func (s *Simulator) ScheduleArg(at Ticks, prio Priority, fn func(any), arg any) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil function")
	}
	s.seq++
	h := s.q.schedule(at, prio, s.seq, nil, fn, arg)
	h.e.birth, h.e.marked = s.now, false
	return h
}

// After schedules fn to run d ticks from now.
func (s *Simulator) After(d Ticks, prio Priority, fn func()) Handle {
	return s.Schedule(s.now+d, prio, fn)
}

// AfterArg schedules fn(arg) to run d ticks from now.
func (s *Simulator) AfterArg(d Ticks, prio Priority, fn func(any), arg any) Handle {
	return s.ScheduleArg(s.now+d, prio, fn, arg)
}

// Cancel removes a pending event. Canceling an event that already fired,
// was already canceled, or was never scheduled (the zero Handle) is a no-op.
func (s *Simulator) Cancel(h Handle) {
	if !h.Scheduled() {
		return
	}
	s.q.cancel(h.e)
}

// Halt stops Run before the next event is dispatched.
func (s *Simulator) Halt() { s.halted = true }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return s.q.len() }

// Step dispatches the single next event. It reports false when the queue is
// empty or the simulator has been halted.
func (s *Simulator) Step() bool {
	if s.halted {
		return false
	}
	t, ok := s.q.next(math.MaxInt64)
	if !ok {
		return false
	}
	f := s.q.pop()
	s.now = t
	dispatch(f)
	return true
}

// Run dispatches events until the queue drains, the simulator is halted, or
// the next event lies beyond until. The clock is left at until when the run
// completes by reaching the horizon, so measurements over [0, until] see the
// full window. It returns the number of events dispatched.
func (s *Simulator) Run(until Ticks) int {
	n := 0
	for !s.halted {
		t, ok := s.q.next(until)
		if !ok {
			break
		}
		f := s.q.pop()
		s.now = t
		dispatch(f)
		n++
	}
	if !s.halted && s.now < until {
		s.now = until
	}
	return n
}

func dispatch(f fired) {
	if f.fn != nil {
		f.fn()
		return
	}
	f.afn(f.arg)
}

// Pledge announces a future shared-medium transmit: "an event on this
// simulator will touch the medium no earlier than at". The radio arms one
// when it schedules a CSMA backoff and drops it when the transmit executes
// (or the radio is forced off), so between windows the Group coordinator can
// bound the next parallel horizon by the earliest armed pledge. A pledge may
// outlive its nominal time — a busy CPU defers the backoff IRQ — in which
// case the horizon simply stops advancing past it and the deferred transmit
// executes serially.
//
// The zero Pledge is unarmed. A Pledge belongs to the simulator it was armed
// on and is only touched by that partition's own events (or the serial
// coordinator), never concurrently.
type Pledge struct {
	at  Ticks
	pos int32 // index+1 in s.pledges; 0 = unarmed
}

// Pledge arms (or re-arms) p at the given time.
func (s *Simulator) Pledge(p *Pledge, at Ticks) {
	p.at = at
	if p.pos == 0 {
		s.pledges = append(s.pledges, p)
		p.pos = int32(len(s.pledges))
	}
}

// Unpledge drops an armed pledge. Dropping an unarmed pledge is a no-op.
func (s *Simulator) Unpledge(p *Pledge) {
	if p.pos == 0 {
		return
	}
	i := int(p.pos) - 1
	last := len(s.pledges) - 1
	if i != last {
		s.pledges[i] = s.pledges[last]
		s.pledges[i].pos = int32(i) + 1
	}
	s.pledges[last] = nil
	s.pledges = s.pledges[:last]
	p.pos = 0
}

// pledgeFloor returns the earliest armed pledge time, or math.MaxInt64.
func (s *Simulator) pledgeFloor() Ticks {
	floor := Ticks(math.MaxInt64)
	for _, p := range s.pledges {
		if p.at < floor {
			floor = p.at
		}
	}
	return floor
}

// peek settles the queue up to limit and returns the earliest pending event,
// or nil. The event stays owned by the queue; it is only valid until the next
// schedule/pop/cancel.
func (s *Simulator) peek(limit Ticks) *Event {
	if _, ok := s.q.next(limit); !ok {
		return nil
	}
	return s.q.head()
}

// stepHead pops and dispatches the earliest event. Only valid immediately
// after peek returned non-nil.
func (s *Simulator) stepHead() {
	t, _ := s.q.next(math.MaxInt64)
	f := s.q.pop()
	s.now = t
	dispatch(f)
}

// runWindow dispatches every unmarked event with at <= limit and returns the
// count. It stops in front of a marked event (leaving it queued) so world-
// level effects — node death — only ever execute under the coordinator.
// This is the per-partition body of a Group's parallel window.
func (s *Simulator) runWindow(limit Ticks) int {
	n := 0
	for {
		t, ok := s.q.next(limit)
		if !ok {
			return n
		}
		if s.q.head().marked {
			return n
		}
		f := s.q.pop()
		s.now = t
		dispatch(f)
		n++
	}
}

// lift advances the clock without dispatching, so cross-partition schedules
// issued at the global merge time are never "in the past" for this
// simulator. It never moves the clock backwards.
func (s *Simulator) lift(t Ticks) {
	if t > s.now {
		s.now = t
	}
}
