package sim

import (
	"testing"

	"repro/internal/units"
)

// eachQueue runs a subtest against both queue implementations, so every
// ordering/lifecycle contract is pinned for the wheel and the legacy heap
// alike.
func eachQueue(t *testing.T, fn func(t *testing.T, s *Simulator)) {
	t.Helper()
	for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
		t.Run(string(kind), func(t *testing.T) {
			fn(t, NewWithQueue(kind))
		})
	}
}

func TestScheduleOrdering(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []int
		s.Schedule(30, PrioTask, func() { got = append(got, 3) })
		s.Schedule(10, PrioTask, func() { got = append(got, 1) })
		s.Schedule(20, PrioTask, func() { got = append(got, 2) })
		s.Run(100)
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("order = %v, want [1 2 3]", got)
		}
		if s.Now() != 100 {
			t.Errorf("Now = %v, want 100 (horizon)", s.Now())
		}
	})
}

func TestPriorityTieBreak(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []string
		s.Schedule(10, PrioTask, func() { got = append(got, "task") })
		s.Schedule(10, PrioHardware, func() { got = append(got, "hw") })
		s.Schedule(10, PrioIRQ, func() { got = append(got, "irq") })
		s.Run(10)
		want := []string{"hw", "irq", "task"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order = %v, want %v", got, want)
			}
		}
	})
}

func TestSequenceTieBreakIsFIFO(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			s.Schedule(5, PrioTask, func() { got = append(got, i) })
		}
		s.Run(5)
		for i := 0; i < 10; i++ {
			if got[i] != i {
				t.Fatalf("order = %v, want FIFO", got)
			}
		}
	})
}

func TestCancel(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		fired := false
		e := s.Schedule(10, PrioTask, func() { fired = true })
		if !e.Scheduled() {
			t.Fatal("event should be scheduled")
		}
		s.Cancel(e)
		if e.Scheduled() {
			t.Fatal("event should not be scheduled after cancel")
		}
		s.Run(100)
		if fired {
			t.Error("canceled event fired")
		}
		// Double-cancel and zero-handle cancel are no-ops.
		s.Cancel(e)
		s.Cancel(Handle{})
	})
}

func TestCancelMiddleOfQueue(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var got []int
		var events []Handle
		for i := 0; i < 20; i++ {
			i := i
			events = append(events, s.Schedule(units.Ticks(10+i), PrioTask, func() { got = append(got, i) }))
		}
		// Cancel the odd ones.
		for i := 1; i < 20; i += 2 {
			s.Cancel(events[i])
		}
		s.Run(1000)
		if len(got) != 10 {
			t.Fatalf("fired %d, want 10: %v", len(got), got)
		}
		for _, v := range got {
			if v%2 != 0 {
				t.Errorf("odd event %d fired after cancel", v)
			}
		}
	})
}

func TestSchedulingInPastPanics(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		s.Schedule(50, PrioTask, func() {})
		s.Run(50)
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.Schedule(10, PrioTask, func() {})
	})
}

func TestNilFunctionPanics(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		defer func() {
			if recover() == nil {
				t.Error("nil fn should panic")
			}
		}()
		s.Schedule(10, PrioTask, nil)
	})
}

func TestRunHorizonExcludesLaterEvents(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		fired := 0
		s.Schedule(10, PrioTask, func() { fired++ })
		s.Schedule(20, PrioTask, func() { fired++ })
		n := s.Run(15)
		if n != 1 || fired != 1 {
			t.Errorf("dispatched %d/%d, want 1", n, fired)
		}
		if s.Pending() != 1 {
			t.Errorf("pending = %d, want 1", s.Pending())
		}
		// Resume to finish.
		s.Run(30)
		if fired != 2 {
			t.Errorf("fired = %d, want 2", fired)
		}
	})
}

func TestEventAtBoundaryIncluded(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		fired := false
		s.Schedule(15, PrioTask, func() { fired = true })
		s.Run(15)
		if !fired {
			t.Error("event exactly at horizon should fire")
		}
	})
}

func TestHalt(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		count := 0
		for i := 1; i <= 10; i++ {
			s.Schedule(units.Ticks(i), PrioTask, func() {
				count++
				if count == 3 {
					s.Halt()
				}
			})
		}
		s.Run(100)
		if count != 3 {
			t.Errorf("count = %d, want 3 (halted)", count)
		}
	})
}

func TestStep(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		n := 0
		s.Schedule(5, PrioTask, func() { n++ })
		s.Schedule(6, PrioTask, func() { n++ })
		if !s.Step() || n != 1 || s.Now() != 5 {
			t.Fatalf("after first step: n=%d now=%v", n, s.Now())
		}
		if !s.Step() || n != 2 {
			t.Fatalf("after second step: n=%d", n)
		}
		if s.Step() {
			t.Error("Step on empty queue should report false")
		}
	})
}

func TestRescheduleFromHandler(t *testing.T) {
	eachQueue(t, func(t *testing.T, s *Simulator) {
		var times []units.Ticks
		var tick func()
		tick = func() {
			times = append(times, s.Now())
			if len(times) < 5 {
				s.After(10, PrioTask, tick)
			}
		}
		s.Schedule(0, PrioTask, tick)
		s.Run(1000)
		if len(times) != 5 {
			t.Fatalf("fired %d times, want 5", len(times))
		}
		for i, at := range times {
			if at != units.Ticks(i*10) {
				t.Errorf("fire %d at %v, want %v", i, at, i*10)
			}
		}
	})
}
