package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// The partition tests drive a synthetic workload that obeys the same
// contract as the real mote stack: nodes touch only their own state inside
// ordinary events, every shared-bus interaction is pledged at least the
// lookahead (500 ticks) ahead of the event that schedules it, cross-node
// deliveries are scheduled only from serial bus events, and marked events
// touch only their own node (plus coordinator-serial structures). Under that
// contract a Group run must be event-for-event equivalent to running every
// node on one serial simulator.

type pnode struct {
	id      int
	s       *Simulator
	bus     *pbus
	period  Ticks
	counter int
	rcvd    int
	pledge  Pledge
	next    Handle
	fireH   Handle
	busy    bool
	stopped bool
	log     []string
}

func (n *pnode) start() {
	n.next = n.s.Schedule(Ticks(10+3*n.id), PrioTask, n.tick)
}

func (n *pnode) tick() {
	if n.stopped {
		return
	}
	n.counter++
	n.log = append(n.log, fmt.Sprintf("t=%d c=%d r=%d", n.s.Now(), n.counter, n.rcvd))
	if n.counter%3 == 0 && !n.busy {
		// Pledged bus transmit, >= 500 ticks out like a CSMA backoff. Like
		// the radio, a node has at most one outstanding pledge: re-arming a
		// live one would strip the horizon cover off its pending transmit.
		n.busy = true
		at := n.s.Now() + 500 + Ticks(n.counter%7)*13
		n.s.Pledge(&n.pledge, at)
		n.fireH = n.s.Schedule(at, PrioIRQ, n.fire)
	}
	if n.counter%11 == 5 {
		// Marked event: stops this partition's window, steps serially.
		n.s.ScheduleMarked(n.s.Now()+37, PrioHardware, n.audit)
	}
	n.next = n.s.Schedule(n.s.Now()+n.period, PrioTask, n.tick)
}

func (n *pnode) fire() {
	n.s.Unpledge(&n.pledge)
	n.busy = false
	n.bus.transmit(n)
}

func (n *pnode) audit() {
	n.log = append(n.log, fmt.Sprintf("audit t=%d c=%d", n.s.Now(), n.counter))
}

var deliverFn = func(a any) {
	n := a.(*pnode)
	if n.stopped {
		return
	}
	n.rcvd++
	n.log = append(n.log, fmt.Sprintf("rx t=%d r=%d", n.s.Now(), n.rcvd))
}

type pbus struct {
	s     *Simulator
	nodes []*pnode
	log   []string
}

// transmit runs serially (it is the target of a pledged event): it may read
// and write any node, schedule onto any partition, and cancel across
// partitions — exactly what the radio medium does.
func (b *pbus) transmit(from *pnode) {
	now := b.s.Now()
	b.log = append(b.log, fmt.Sprintf("tx n=%d t=%d", from.id, now))
	for d := 1; d <= 2; d++ {
		to := b.nodes[(from.id+d)%len(b.nodes)]
		to.s.ScheduleArg(now+50+Ticks(d), PrioHardware, deliverFn, to)
	}
	// Every 4th transmit kills the next node outright: a cross-partition
	// cancel plus state write from a serial event, like a battery death
	// feeding back into the network.
	if len(b.log)%4 == 0 {
		victim := b.nodes[(from.id+1)%len(b.nodes)]
		if !victim.stopped {
			victim.stopped = true
			victim.s.Cancel(victim.next)
			// Dropping a pledge requires canceling the event it covered:
			// otherwise the event is free to run inside a window and touch
			// the shared bus unprotected (the radio's ForceOff does both).
			victim.s.Cancel(victim.fireH)
			victim.s.Unpledge(&victim.pledge)
			b.log = append(b.log, fmt.Sprintf("kill n=%d t=%d", victim.id, now))
		}
	}
	// Bus housekeeping on the shared queue, like a frame expiry.
	b.s.Schedule(now+300, PrioHardware, func() {})
}

// buildWorkload wires nNodes onto the given simulators. simFor(i) returns
// node i's simulator; shared is the bus's.
func buildWorkload(nNodes int, shared *Simulator, simFor func(i int) *Simulator) (*pbus, []*pnode) {
	bus := &pbus{s: shared}
	nodes := make([]*pnode, nNodes)
	for i := range nodes {
		nodes[i] = &pnode{
			id:     i,
			s:      simFor(i),
			bus:    bus,
			period: Ticks(90 + 7*(i%5)),
		}
	}
	bus.nodes = nodes
	for _, n := range nodes {
		n.start()
	}
	return bus, nodes
}

func TestGroupMatchesSerial(t *testing.T) {
	const nNodes = 9
	const until = Ticks(50_000)

	run := func(parts int) (*pbus, []*pnode, int) {
		if parts == 1 {
			s := New()
			bus, nodes := buildWorkload(nNodes, s, func(int) *Simulator { return s })
			return bus, nodes, s.Run(until)
		}
		g := NewGroup(QueueWheel, parts)
		bus, nodes := buildWorkload(nNodes, g.Shared(), func(i int) *Simulator {
			return g.Domain(i % parts)
		})
		return bus, nodes, g.Run(until)
	}

	refBus, refNodes, refCount := run(1)
	if refCount == 0 || len(refBus.log) == 0 {
		t.Fatalf("degenerate reference: %d events, %d bus entries", refCount, len(refBus.log))
	}
	for _, parts := range []int{2, 3, 4, 8} {
		bus, nodes, count := run(parts)
		if count != refCount {
			t.Errorf("parts=%d: dispatched %d events, serial dispatched %d", parts, count, refCount)
		}
		if !reflect.DeepEqual(bus.log, refBus.log) {
			t.Errorf("parts=%d: bus log diverged\n got %v\nwant %v", parts, bus.log, refBus.log)
		}
		for i, n := range nodes {
			if !reflect.DeepEqual(n.log, refNodes[i].log) {
				t.Errorf("parts=%d node %d: log diverged\n got %v\nwant %v", parts, i, n.log, refNodes[i].log)
			}
			if n.counter != refNodes[i].counter || n.rcvd != refNodes[i].rcvd {
				t.Errorf("parts=%d node %d: counters (%d,%d) != (%d,%d)",
					parts, i, n.counter, n.rcvd, refNodes[i].counter, refNodes[i].rcvd)
			}
		}
	}
}

func TestGroupClocksLiftToUntil(t *testing.T) {
	const until = Ticks(12_345)
	g := NewGroup(QueueWheel, 3)
	buildWorkload(4, g.Shared(), func(i int) *Simulator { return g.Domain(i % 3) })
	g.Run(until)
	for i := 0; i < g.Partitions(); i++ {
		if now := g.Domain(i).Now(); now != until {
			t.Errorf("partition %d clock %d, want %d", i, now, until)
		}
	}
	if now := g.Shared().Now(); now != until {
		t.Errorf("shared clock %d, want %d", now, until)
	}
}

func TestGroupHalt(t *testing.T) {
	g := NewGroup(QueueWheel, 2)
	var haltedAt Ticks
	g.Domain(0).ScheduleMarked(1000, PrioHardware, func() {
		haltedAt = g.Domain(0).Now()
		g.Halt()
	})
	g.Domain(1).Schedule(5000, PrioTask, func() {
		t.Error("event after halt dispatched")
	})
	g.Run(10_000)
	if haltedAt != 1000 {
		t.Fatalf("halt event ran at %d, want 1000", haltedAt)
	}
	if !g.Halted() {
		t.Fatal("group not halted")
	}
	if now := g.Domain(1).Now(); now > 1000 {
		t.Errorf("halted group lifted partition 1 clock to %d", now)
	}
}

func TestGroupPanicPropagates(t *testing.T) {
	g := NewGroup(QueueWheel, 2)
	g.Domain(0).Schedule(100, PrioTask, func() { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	g.Run(1000)
	t.Fatal("run returned despite worker panic")
}

// TestWheelBelowCursorSchedule pins the queue property the coordinator
// depends on: peeking (settling) a wheel far ahead must not break a later
// schedule at an earlier time — the event goes to the mixed-time ready heap
// and still dispatches in (at, prio, seq) order.
func TestWheelBelowCursorSchedule(t *testing.T) {
	for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
		s := NewWithQueue(kind)
		var order []Ticks
		s.Schedule(900, PrioTask, func() { order = append(order, 900) })
		if e := s.peek(10_000); e == nil || e.at != 900 {
			t.Fatalf("%s: peek found %v", kind, e)
		}
		// The wheel's cursor has now settled at 900; deliver below it.
		s.Schedule(500, PrioTask, func() { order = append(order, 500) })
		s.Schedule(700, PrioHardware, func() { order = append(order, 700) })
		s.Run(1000)
		want := []Ticks{500, 700, 900}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("%s: dispatch order %v, want %v", kind, order, want)
		}
	}
}
