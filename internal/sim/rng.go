package sim

import "hash/fnv"

// RNG is a small deterministic pseudo-random number generator
// (xorshift64star). The standard library's math/rand would also be
// deterministic for a fixed seed, but pinning the algorithm here guarantees
// reproducible event schedules across Go releases, which the regression
// tests rely on.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced with
// a fixed non-zero constant because xorshift has an all-zeros fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Ticks returns a uniform duration in [0, max).
func (r *RNG) Ticks(max Ticks) Ticks {
	if max <= 0 {
		return 0
	}
	return Ticks(r.Uint64() % uint64(max))
}

// Split derives an independent generator, for giving each subsystem its own
// stream without coupling their consumption order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A5A5A5A5A5)
}

// DeriveSeed derives the seed of a per-purpose RNG stream from a base seed,
// a compile-time domain tag naming the consumer ("traffic/sender",
// "scenario/placement", ...), and a salt distinguishing instances of that
// purpose (a node id, a slot index; 0 when there is only one).
//
// The tag is the determinism contract's unit of stream ownership: distinct
// tags give decorrelated streams, so no consumer's draws can perturb
// another's, and a replayed run re-derives every stream identically from the
// run seed alone. quantovet's rngdomain analyzer enforces the contract
// statically — every call site outside this package must pass a distinct
// constant tag prefixed with its package name.
func DeriveSeed(seed uint64, domain string, salt uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(domain))
	return mix64(seed ^ mix64(h.Sum64()) ^ mix64(salt*0x9E3779B97F4A7C15))
}

// DeriveRNG returns a generator on the stream DeriveSeed names.
func DeriveRNG(seed uint64, domain string, salt uint64) *RNG {
	return NewRNG(DeriveSeed(seed, domain, salt))
}

// mix64 is the finalizing mixer of the splitmix64 generator: it turns
// structured inputs (hashes, ids, xor-combined seeds) into well-distributed
// ones. The scenario layer's seed derivation uses the same mixer.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Norm returns an approximately standard-normal variate (Irwin–Hall sum of
// twelve uniforms, re-centered). Good to a few percent in the tails, which
// is plenty for modeling measurement ripple.
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
