package mote

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/power"
	"repro/internal/units"
)

// busyNode generates a steady stream of log entries (a fast LED toggler).
func busyNode(t *testing.T, opts Options) (*World, *Node) {
	t.Helper()
	w := NewWorld(5)
	n := w.AddNode(1, opts)
	n.K.Boot(func() {
		tm := n.K.NewTimer(func() { n.LEDs.Toggle(0) })
		tm.StartPeriodic(20 * units.Millisecond)
	})
	return w, n
}

func TestContinuousDrainDeliversAllEntries(t *testing.T) {
	opts := DefaultOptions()
	opts.ContinuousDrain = true
	w, n := busyNode(t, opts)
	w.Run(10 * units.Second)
	w.StampEnd()

	if n.Drain == nil {
		t.Fatal("drain sink absent")
	}
	drained, rounds := n.Drain.Drained()
	if drained == 0 || rounds == 0 {
		t.Fatalf("nothing drained: %d/%d", drained, rounds)
	}
	if n.Drain.Buffered() != 0 {
		t.Errorf("%d entries still buffered after flush", n.Drain.Buffered())
	}
	// Collector holds the complete, ordered stream.
	if uint64(n.Log.Len()) != n.Trk.Entries() {
		t.Errorf("collector %d entries, tracker logged %d", n.Log.Len(), n.Trk.Entries())
	}
	var prev uint32
	for i, e := range n.Log.Entries {
		if e.Time < prev {
			t.Fatalf("entry %d out of order after draining", i)
		}
		prev = e.Time
	}
}

func TestContinuousDrainSelfAccounts(t *testing.T) {
	opts := DefaultOptions()
	opts.ContinuousDrain = true
	w, n := busyNode(t, opts)
	w.Run(20 * units.Second)
	w.StampEnd()

	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	a, err := analysis.Analyze(tr, w.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The "Quanto" activity must show up with CPU time of its own.
	times := a.TimeByActivity()[power.ResCPU]
	var quantoUS int64
	for l, us := range times {
		if strings.HasSuffix(w.Dict.LabelName(l), ":Quanto") {
			quantoUS = us
		}
	}
	if quantoUS == 0 {
		t.Fatal("no CPU time attributed to the Quanto drain activity")
	}
	share := float64(quantoUS) / float64(a.ActiveTimeUS(power.ResCPU))
	// The paper saw the drain use 4-15% of CPU time for its applications;
	// the exact share depends on the event rate, but it must be a visible,
	// non-dominant slice.
	if share < 0.01 || share > 0.75 {
		t.Errorf("drain share of active CPU = %.3f, want a visible share", share)
	}
	t.Logf("drain used %.1f%% of active CPU time", share*100)
}

func TestContinuousDrainAnalysisStillConsistent(t *testing.T) {
	opts := DefaultOptions()
	opts.ContinuousDrain = true
	w, n := busyNode(t, opts)
	w.Run(10 * units.Second)
	w.StampEnd()
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	a, err := analysis.Analyze(tr, w.Dict, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.ReconstructionError() > 0.02 {
		t.Errorf("reconstruction error = %.4f with draining", a.ReconstructionError())
	}
}
