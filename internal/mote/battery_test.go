package mote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/units"
)

// addBatteryBlinker assembles a node with a finite battery that toggles an
// LED periodically — enough draw variation to exercise the battery's
// event-driven integration.
func addBatteryBlinker(w *World, id core.NodeID, uah float64, h power.Harvester) *Node {
	opts := DefaultOptions()
	opts.BatteryUAH = uah
	opts.Harvester = h
	n := w.AddNode(id, opts)
	n.K.Boot(func() {
		tm := n.K.NewTimer(func() { n.LEDs.Toggle(0) })
		tm.StartPeriodic(100 * units.Millisecond)
	})
	return n
}

func TestNodeDiesWhenBatteryDepletes(t *testing.T) {
	w := NewWorld(1)
	// ~1.3 mA average draw (baseline + half-duty red LED): 2 uAh = 7200 uC
	// lasts a handful of seconds.
	n := addBatteryBlinker(w, 1, 2, nil)
	w.Run(60 * units.Second)
	w.StampEnd()

	diedAt, died := n.DiedAt()
	if !died || n.Alive() {
		t.Fatalf("node should have died: alive=%v", n.Alive())
	}
	if diedAt <= 0 || diedAt >= 60*units.Second {
		t.Fatalf("implausible death time %v", diedAt)
	}
	if len(w.Deaths) != 1 || w.Deaths[0].Node != 1 || w.Deaths[0].At != diedAt {
		t.Fatalf("world deaths = %+v", w.Deaths)
	}
	if !n.Battery.Depleted() || n.Battery.MarginFrac() != 0 {
		t.Fatalf("battery state: depleted=%v margin=%v", n.Battery.Depleted(), n.Battery.MarginFrac())
	}

	// The death marker must be the final log entry.
	entries := n.Log.Entries
	if len(entries) == 0 {
		t.Fatal("no log entries")
	}
	last := entries[len(entries)-1]
	if last.Type != core.EntryMarker || last.Val != DeathMarker {
		t.Fatalf("last entry = %v (val %#x), want death marker", last.Type, last.Val)
	}
	for _, e := range entries {
		if int64(e.Time) > int64(last.Time) {
			t.Fatalf("entry at %d after death stamp %d", e.Time, last.Time)
		}
	}
}

func TestDeadNodeStopsConsumingEnergy(t *testing.T) {
	w := NewWorld(1)
	n := addBatteryBlinker(w, 1, 2, nil)
	w.Run(60 * units.Second)
	atDeath := n.Meter.EnergyMicroJoules()
	w.Run(120 * units.Second)
	if after := n.Meter.EnergyMicroJoules(); after != atDeath {
		t.Fatalf("meter advanced after death: %v -> %v", atDeath, after)
	}
	if n.Board.Current() != 0 || !n.Board.Dead() {
		t.Fatalf("board still drawing %v", n.Board.Current())
	}
	if !n.K.Dead() {
		t.Fatal("kernel should be dead")
	}
}

func TestHarvesterPostponesDeath(t *testing.T) {
	run := func(h power.Harvester) units.Ticks {
		w := NewWorld(1)
		n := addBatteryBlinker(w, 1, 2, h)
		w.Run(120 * units.Second)
		at, died := n.DiedAt()
		if !died {
			return -1
		}
		return at
	}
	plain := run(nil)
	helped := run(power.ConstantHarvester(600))
	if plain <= 0 {
		t.Fatal("unharvested node should die")
	}
	if helped > 0 && helped <= plain {
		t.Fatalf("harvesting died no later: plain %v, harvested %v", plain, helped)
	}
}

func TestHaltWorldOnDeathStopsSimulation(t *testing.T) {
	w := NewWorld(1)
	opts := DefaultOptions()
	opts.BatteryUAH = 1
	opts.HaltWorldOnDeath = true
	n := w.AddNode(1, opts)
	n.K.Boot(func() {
		tm := n.K.NewTimer(func() { n.LEDs.Toggle(0) })
		tm.StartPeriodic(100 * units.Millisecond)
	})
	w.Run(600 * units.Second)
	diedAt, died := n.DiedAt()
	if !died {
		t.Fatal("node did not die")
	}
	if now := w.Sim.Now(); now != diedAt {
		t.Fatalf("simulation ran past the halt-world death: now %v, died %v", now, diedAt)
	}
}

func TestInfiniteBatteryUnchanged(t *testing.T) {
	w := NewWorld(1)
	n := w.AddNode(1, DefaultOptions())
	if n.Battery != nil {
		t.Fatal("default node should have no battery")
	}
	w.Run(10 * units.Second)
	w.StampEnd()
	if !n.Alive() {
		t.Fatal("infinite-supply node died")
	}
}

func TestDeathIsDeterministic(t *testing.T) {
	run := func() units.Ticks {
		w := NewWorld(7)
		n := addBatteryBlinker(w, 1, 2, power.PeriodicHarvester{
			UA: 900, Period: 700 * units.Millisecond, On: 200 * units.Millisecond,
		})
		w.Run(300 * units.Second)
		at, died := n.DiedAt()
		if !died {
			t.Fatal("node did not die")
		}
		return at
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("death time differs across identical runs: %v vs %v", a, b)
	}
}
