package mote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/units"
)

func TestSingleNodeAssembly(t *testing.T) {
	w, n := NewSingleNode(1)
	if n.K == nil || n.Board == nil || n.Meter == nil || n.Scope == nil || n.Log == nil {
		t.Fatal("incomplete node")
	}
	if n.LEDs == nil || n.Sensor == nil || n.Flash == nil {
		t.Fatal("missing drivers")
	}
	if n.Radio != nil || n.AM != nil {
		t.Error("radio should be absent by default")
	}
	if w.Node(1) != n || w.Node(9) != nil {
		t.Error("Node lookup broken")
	}
}

func TestIdleNodeDrawsBaselineOnly(t *testing.T) {
	w, n := NewSingleNode(1)
	w.Run(10 * units.Second)
	w.StampEnd()
	// With nothing running, the node draws the board baseline plus the
	// flash chip's 9 uA power-down trickle (Table 1).
	idle := power.BaselineMicroAmps + power.CalibratedDraws().Draw(power.ResFlash, power.FlashPowerDown)
	wantUJ := float64(units.Energy(idle, n.Volts, 10*units.Second))
	gotUJ := n.Meter.EnergyMicroJoules()
	if diff := gotUJ - wantUJ; diff < -50 || diff > 50 {
		t.Errorf("idle energy = %.1f uJ, want ~%.1f", gotUJ, wantUJ)
	}
}

func TestRAMBufferOptionFillsAndDrops(t *testing.T) {
	w := NewWorld(1)
	opts := DefaultOptions()
	opts.RAMBufferEntries = 16
	n := w.AddNode(1, opts)
	// Generate more than 16 entries by toggling an LED a lot.
	n.K.Boot(func() {
		tm := n.K.NewTimer(func() { n.LEDs.Toggle(0) })
		tm.StartPeriodic(50 * units.Millisecond)
	})
	w.Run(3 * units.Second)
	if n.RAM == nil {
		t.Fatal("RAM buffer absent")
	}
	if !n.RAM.Full() {
		t.Errorf("RAM buffer should be full: %d entries", n.RAM.Len())
	}
	if n.Trk.Dropped() == 0 {
		t.Error("tracker should have counted drops once the buffer filled")
	}
	// The unbounded collector still has the full stream.
	if n.Log.Len() <= n.RAM.Len() {
		t.Errorf("collector %d <= RAM %d", n.Log.Len(), n.RAM.Len())
	}
}

func TestWorldNodeLogsAndStampEnd(t *testing.T) {
	w := NewWorld(5)
	optsA := DefaultOptions()
	optsA.Radio = true
	optsA.RadioConfig = radio.Config{Channel: 26}
	a := w.AddNode(1, optsA)
	b := w.AddNode(2, DefaultOptions())
	w.Run(units.Second)
	w.StampEnd()
	logs := w.NodeLogs()
	if len(logs) != 2 {
		t.Fatalf("logs for %d nodes", len(logs))
	}
	for id, entries := range logs {
		if len(entries) == 0 {
			t.Errorf("node %d has empty log", id)
		}
		last := entries[len(entries)-1]
		if last.Type != core.EntryMarker {
			t.Errorf("node %d log does not end with the end marker", id)
		}
	}
	_ = a
	_ = b
}

func TestPerNodeMetersAreIndependent(t *testing.T) {
	w := NewWorld(3)
	a := w.AddNode(1, DefaultOptions())
	b := w.AddNode(2, DefaultOptions())
	// Only node 1 lights an LED.
	a.K.Boot(func() {
		a.LEDs.On(0)
	})
	w.Run(5 * units.Second)
	ea := a.Meter.EnergyMicroJoules()
	eb := b.Meter.EnergyMicroJoules()
	if ea <= eb {
		t.Errorf("node with LED on used %.1f uJ <= idle node's %.1f uJ", ea, eb)
	}
}

func TestVoltageAffectsEnergyNotCurrent(t *testing.T) {
	run := func(volts units.Volts) float64 {
		w := NewWorld(9)
		opts := DefaultOptions()
		opts.Volts = volts
		n := w.AddNode(1, opts)
		n.K.Boot(func() { n.LEDs.On(2) })
		w.Run(2 * units.Second)
		return n.Meter.EnergyMicroJoules()
	}
	e30 := run(3.0)
	e335 := run(3.35)
	if e335 <= e30 {
		t.Errorf("energy at 3.35V (%.1f) should exceed 3.0V (%.1f)", e335, e30)
	}
}

func TestDictionarySharedAcrossNodes(t *testing.T) {
	w := NewWorld(2)
	a := w.AddNode(1, DefaultOptions())
	b := w.AddNode(4, DefaultOptions())
	la := a.K.DefineActivity("AppA")
	lb := b.K.DefineActivity("AppB")
	if w.Dict.LabelName(la) != "1:AppA" || w.Dict.LabelName(lb) != "4:AppB" {
		t.Errorf("names = %q, %q", w.Dict.LabelName(la), w.Dict.LabelName(lb))
	}
}
