// Package mote assembles complete simulated HydroWatch nodes: the board
// (energy sinks + supply), the iCount meter, the oscilloscope bench, the
// TinyOS-like kernel, and the instrumented device drivers, all wired to a
// Quanto tracker. A World groups nodes around one simulator and one shared
// RF medium, which is how the multi-node experiments (Bounce) run.
package mote

import (
	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/icount"
	"repro/internal/kernel"
	"repro/internal/leds"
	"repro/internal/medium"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/scope"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Options configures one node. Declarative runs build these from a
// scenario.Spec (internal/scenario), which exposes the same knobs —
// voltage, kernel options, logging mode — as sweepable JSON fields.
type Options struct {
	// Volts is the supply voltage (3.0 V by default; the paper's LPL mote
	// ran from a 3.35 V regulator).
	Volts units.Volts
	// Draws is the physical draw table; nil selects CalibratedDraws.
	Draws power.DrawTable
	// Kernel carries the OS options (sleep state, DCO calibration, costs).
	Kernel kernel.Options
	// ScopeRipple is the oscilloscope's relative sampling noise (default
	// 0.4%).
	ScopeRipple float64
	// MeterGain distorts the iCount measurement (1.0 = calibrated).
	MeterGain float64
	// Radio enables the transceiver and Active Message stack.
	Radio bool
	// RadioConfig configures the transceiver when Radio is set.
	RadioConfig radio.Config
	// RAMBufferEntries, when positive, routes the log through a fixed
	// mote-style RAM buffer of that many entries in addition to the
	// harness-side collector, so buffer-full behaviour can be observed.
	RAMBufferEntries int
	// ContinuousDrain selects the paper's second logging mode: entries
	// buffer in RAM and a low-priority task streams them out under a
	// self-accounting "Quanto" activity (Section 4.4). Incompatible with
	// RAMBufferEntries.
	ContinuousDrain bool
	// DrainCostPerEntry is the CPU cost of pushing one entry over the back
	// channel in continuous mode (default 120 cycles).
	DrainCostPerEntry uint32
	// ExtraSinks receive the live event stream alongside the collector (and
	// RAM buffer / drain, if configured) via a batch-aware Tee — how an
	// analysis.OnlineAccountant or a core.RingBuffer rides the same stream
	// as the log without extra copies.
	ExtraSinks []core.Sink
}

// DefaultOptions returns the standard single-node configuration.
func DefaultOptions() Options {
	return Options{
		Volts:       3.0,
		ScopeRipple: 0.004,
		MeterGain:   1.0,
		Kernel:      kernel.DefaultOptions(),
	}
}

// Node is one fully assembled mote.
type Node struct {
	ID    core.NodeID
	K     *kernel.Kernel
	Trk   *core.Tracker
	Board *power.Board
	Meter *icount.Meter
	Scope *scope.Scope
	Log   *core.Collector
	RAM   *core.RAMBuffer // nil unless RAMBufferEntries or ContinuousDrain was set
	Drain *core.DrainSink // nil unless ContinuousDrain was set

	LEDs   *leds.LEDs
	Sensor *sensor.SHT11
	Flash  *flash.Flash
	Radio  *radio.Radio // nil unless Options.Radio
	AM     *am.AM       // nil unless Options.Radio

	Volts units.Volts
}

// World is a set of nodes sharing a simulator, an RF medium, and a merged
// name dictionary.
type World struct {
	Sim    *sim.Simulator
	Medium *medium.Medium
	Dict   *core.Dictionary
	Nodes  []*Node

	seed uint64
}

// NewWorld creates an empty world. The seed drives every stochastic element
// (backoff, interference, measurement ripple) deterministically.
func NewWorld(seed uint64) *World {
	s := sim.New()
	return &World{
		Sim:    s,
		Medium: medium.New(s),
		Dict:   core.NewDictionary(),
		seed:   seed,
	}
}

// AddNode assembles a node with the given id and options and registers it in
// the world.
func (w *World) AddNode(id core.NodeID, opts Options) *Node {
	if opts.Volts == 0 {
		opts.Volts = 3.0
	}
	if opts.Draws == nil {
		opts.Draws = power.CalibratedDraws()
	}
	if opts.MeterGain == 0 {
		opts.MeterGain = 1.0
	}
	if opts.ScopeRipple == 0 {
		opts.ScopeRipple = 0.004
	}
	if opts.Kernel == (kernel.Options{}) {
		opts.Kernel = kernel.DefaultOptions()
	}

	k := kernel.New(w.Sim, id, w.Dict, opts.Kernel, w.seed)

	meter := icount.New(opts.Volts, k.NowTicks)
	meter.SetGain(opts.MeterGain)
	board := power.NewBoard(opts.Volts, opts.Draws, k.NowTicks)
	bench := scope.New(opts.ScopeRipple, w.seed^(uint64(id)<<40)^0x5C09E)

	log := core.NewCollector()
	var sink core.Sink = log
	var ram *core.RAMBuffer
	var drain *core.DrainSink
	switch {
	case opts.ContinuousDrain:
		cost := opts.DrainCostPerEntry
		if cost == 0 {
			cost = 120
		}
		quantoAct := k.DefineActivity("Quanto")
		ram = core.NewRAMBuffer(core.DefaultRAMBufferEntries)
		drain = core.NewDrainSink(ram, log, k, quantoAct, 64, cost)
		sink = drain
	case opts.RAMBufferEntries > 0:
		ram = core.NewRAMBuffer(opts.RAMBufferEntries)
		sink = core.NewTee(log, ram)
	}
	if len(opts.ExtraSinks) > 0 {
		sink = core.NewTee(append([]core.Sink{sink}, opts.ExtraSinks...)...)
	}

	trk := core.NewTracker(core.Config{
		Node:  id,
		Clock: k,
		Meter: meter,
		Cost:  k,
		Sink:  sink,
	})
	trk.ListenPowerStates(board)

	// Physical wiring: the board publishes aggregate current to the meter
	// and the bench.
	board.Listen(meter)
	board.Listen(bench)

	// Resource names for reports.
	for res, name := range power.ResourceNames() {
		w.Dict.NameResource(res, name)
	}

	// The always-on board draw and the CPU.
	board.AddSink(power.ResBaseline, power.StateOff)
	k.Attach(trk)
	board.AddSink(power.ResCPU, opts.Kernel.SleepState)

	n := &Node{
		ID:    id,
		K:     k,
		Trk:   trk,
		Board: board,
		Meter: meter,
		Scope: bench,
		Log:   log,
		RAM:   ram,
		Drain: drain,
		Volts: opts.Volts,
	}

	n.LEDs = leds.New(k, board)
	n.Sensor = sensor.New(k, board)
	n.Flash = flash.New(k, board)

	if opts.Radio {
		n.Radio = radio.New(k, w.Medium, board, opts.RadioConfig)
		n.AM = am.New(k, n.Radio)
	}

	w.Nodes = append(w.Nodes, n)
	return n
}

// StampEnd writes a final marker entry on every node so offline analysis can
// close the last interval with an exact time and energy reading, and flushes
// any continuous-drain buffers so the collector holds the complete stream.
// Call it after Run.
func (w *World) StampEnd() {
	for _, n := range w.Nodes {
		n.Trk.Marker(power.ResBaseline, 0xFFFF)
		if n.Drain != nil {
			n.Drain.Flush()
		}
	}
}

// Node returns the node with the given id, or nil.
func (w *World) Node(id core.NodeID) *Node {
	for _, n := range w.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Run advances the simulation until the given time.
func (w *World) Run(until units.Ticks) { w.Sim.Run(until) }

// NodeLogs gathers every node's collected entries for merging and analysis.
func (w *World) NodeLogs() map[core.NodeID][]core.Entry {
	out := make(map[core.NodeID][]core.Entry, len(w.Nodes))
	for _, n := range w.Nodes {
		out[n.ID] = n.Log.Entries
	}
	return out
}

// NodeStreams exposes every node's collected log as a merge input, without
// copying the entries.
func (w *World) NodeStreams() []trace.Stream {
	out := make([]trace.Stream, 0, len(w.Nodes))
	for _, n := range w.Nodes {
		out = append(out, trace.Stream{Node: n.ID, Source: trace.NewSliceSource(n.Log.Entries)})
	}
	return out
}

// Merged k-way merges every node's log into one time-ordered network stream.
func (w *World) Merged() (*trace.Merger, error) {
	return trace.NewMerger(w.NodeStreams())
}

// NewSingleNode is the quickstart helper: one node, id 1, default options,
// no radio.
func NewSingleNode(seed uint64) (*World, *Node) {
	w := NewWorld(seed)
	n := w.AddNode(1, DefaultOptions())
	return w, n
}
