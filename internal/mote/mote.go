// Package mote assembles complete simulated HydroWatch nodes: the board
// (energy sinks + supply), the iCount meter, the oscilloscope bench, the
// TinyOS-like kernel, and the instrumented device drivers, all wired to a
// Quanto tracker. A World groups nodes around one simulator and one shared
// RF medium, which is how the multi-node experiments (Bounce) run.
package mote

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/icount"
	"repro/internal/kernel"
	"repro/internal/leds"
	"repro/internal/medium"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/scope"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Options configures one node. Declarative runs build these from a
// scenario.Spec (internal/scenario), which exposes the same knobs —
// voltage, kernel options, logging mode — as sweepable JSON fields.
type Options struct {
	// Volts is the supply voltage (3.0 V by default; the paper's LPL mote
	// ran from a 3.35 V regulator).
	Volts units.Volts
	// Draws is the physical draw table; nil selects CalibratedDraws.
	Draws power.DrawTable
	// Kernel carries the OS options (sleep state, DCO calibration, costs).
	Kernel kernel.Options
	// ScopeRipple is the oscilloscope's relative sampling noise (default
	// 0.4%).
	ScopeRipple float64
	// MeterGain distorts the iCount measurement (1.0 = calibrated).
	MeterGain float64
	// Radio enables the transceiver and Active Message stack.
	Radio bool
	// RadioConfig configures the transceiver when Radio is set.
	RadioConfig radio.Config
	// RAMBufferEntries, when positive, routes the log through a fixed
	// mote-style RAM buffer of that many entries in addition to the
	// harness-side collector, so buffer-full behaviour can be observed.
	RAMBufferEntries int
	// ContinuousDrain selects the paper's second logging mode: entries
	// buffer in RAM and a low-priority task streams them out under a
	// self-accounting "Quanto" activity (Section 4.4). Incompatible with
	// RAMBufferEntries.
	ContinuousDrain bool
	// DrainCostPerEntry is the CPU cost of pushing one entry over the back
	// channel in continuous mode (default 120 cycles).
	DrainCostPerEntry uint32
	// ExtraSinks receive the live event stream alongside the collector (and
	// RAM buffer / drain, if configured) via a batch-aware Tee — how an
	// analysis.OnlineAccountant or a core.RingBuffer rides the same stream
	// as the log without extra copies.
	ExtraSinks []core.Sink
	// BatteryUAH, when positive, powers the node from a finite battery of
	// that many microamp-hours instead of an infinite supply. The node
	// browns out at the exact instant the integrated net charge crosses
	// zero: a death marker is logged, the radio falls off the medium, the
	// board stops drawing, and the kernel is killed.
	BatteryUAH float64
	// Harvester feeds income into the battery (nil: pure battery). Ignored
	// unless BatteryUAH is set.
	Harvester power.Harvester
	// HaltWorldOnDeath stops the entire simulation when THIS node's battery
	// depletes (the "halt-world" death policy). The default policy lets the
	// world keep running so surviving nodes' behavior after the death —
	// retries, lost connectivity, cascades — stays observable.
	HaltWorldOnDeath bool
}

// DefaultOptions returns the standard single-node configuration.
func DefaultOptions() Options {
	return Options{
		Volts:       3.0,
		ScopeRipple: 0.004,
		MeterGain:   1.0,
		Kernel:      kernel.DefaultOptions(),
	}
}

// Node is one fully assembled mote.
type Node struct {
	ID    core.NodeID
	K     *kernel.Kernel
	Trk   *core.Tracker
	Board *power.Board
	Meter *icount.Meter
	Scope *scope.Scope
	Log   *core.Collector
	RAM   *core.RAMBuffer // nil unless RAMBufferEntries or ContinuousDrain was set
	Drain *core.DrainSink // nil unless ContinuousDrain was set

	LEDs    *leds.LEDs
	Sensor  *sensor.SHT11
	Flash   *flash.Flash
	Radio   *radio.Radio   // nil unless Options.Radio
	AM      *am.AM         // nil unless Options.Radio
	Battery *power.Battery // nil unless Options.BatteryUAH

	Volts units.Volts

	dead   bool
	diedAt units.Ticks
}

// Alive reports whether the node still has supply power.
func (n *Node) Alive() bool { return !n.dead }

// DiedAt returns the battery-depletion instant and whether the node died.
func (n *Node) DiedAt() (units.Ticks, bool) { return n.diedAt, n.dead }

// DeathMarker is the marker value logged (on power.ResBaseline) as a node's
// final entry when its battery depletes, so offline analysis can close the
// last interval at the exact death instant and tell a dead node's truncated
// log from a completed run's (which ends in the 0xFFFF end stamp).
const DeathMarker uint16 = 0xDEAD

// Death records one battery depletion.
type Death struct {
	Node core.NodeID
	At   units.Ticks
}

// World is a set of nodes sharing a simulator, an RF medium, and a merged
// name dictionary.
type World struct {
	Sim    *sim.Simulator
	Medium *medium.Medium
	Dict   *core.Dictionary
	Nodes  []*Node

	// Deaths lists battery depletions in the order they occurred.
	Deaths []Death
	// OnDeath, when set, observes each depletion right after the node has
	// been halted (apps use it to count cascade effects).
	OnDeath func(n *Node, at units.Ticks)
	// deathSubs are additional depletion observers (SubscribeDeath), called
	// after OnDeath in subscription order. The routing layer uses this to
	// turn battery deaths into topology events without claiming the single
	// OnDeath slot apps already own.
	deathSubs []func(n *Node, at units.Ticks)

	seed uint64
	byID map[core.NodeID]*Node

	// group is non-nil when the world steps its nodes in parallel partitions
	// (NewWorldPartitioned); Sim is then the group's shared (medium) clock and
	// assign maps node creation order to partition index.
	group  *sim.Group
	assign []int
}

// NewWorld creates an empty world. The seed drives every stochastic element
// (backoff, interference, measurement ripple) deterministically.
func NewWorld(seed uint64) *World {
	return NewWorldQueue(seed, "")
}

// NewWorldQueue is NewWorld with an explicit event-queue selection ("" or
// "wheel" for the timer wheel, "heap" for the legacy binary heap kept as the
// differential-testing baseline). Both queues dispatch identically, so the
// choice changes performance, never results.
func NewWorldQueue(seed uint64, queue string) *World {
	s := sim.NewWithQueue(sim.QueueKind(queue))
	return &World{
		Sim:    s,
		Medium: medium.New(s),
		Dict:   core.NewDictionary(),
		seed:   seed,
		byID:   make(map[core.NodeID]*Node),
	}
}

// NewWorldPartitioned is NewWorldQueue with the node set split across parts
// partition simulators stepped in parallel under conservative lookahead
// (sim.Group): assign[i] names the partition of the i-th added node. The
// medium lives on the group's shared simulator and every medium touch is
// pledged at least one minimum CSMA backoff ahead, so a partitioned run
// dispatches the exact same events in the exact same order as a serial one.
// parts <= 1 returns a plain serial world.
func NewWorldPartitioned(seed uint64, queue string, parts int, assign []int) *World {
	if parts <= 1 {
		return NewWorldQueue(seed, queue)
	}
	g := sim.NewGroup(sim.QueueKind(queue), parts)
	g.SetLookahead(radio.BackoffMin)
	w := &World{
		Sim:    g.Shared(),
		Medium: medium.New(g.Shared()),
		Dict:   core.NewDictionary(),
		seed:   seed,
		byID:   make(map[core.NodeID]*Node),
		group:  g,
		assign: assign,
	}
	g.SetWindowPrep(w.Medium.PrepareWindow)
	return w
}

// Partitions returns the number of parallel partitions (1 for a serial world).
func (w *World) Partitions() int {
	if w.group == nil {
		return 1
	}
	return w.group.Partitions()
}

// AddNode assembles a node with the given id and options and registers it in
// the world.
func (w *World) AddNode(id core.NodeID, opts Options) *Node {
	if opts.Volts == 0 {
		opts.Volts = 3.0
	}
	if opts.Draws == nil {
		opts.Draws = power.CalibratedDraws()
	}
	if opts.MeterGain == 0 {
		opts.MeterGain = 1.0
	}
	if opts.ScopeRipple == 0 {
		opts.ScopeRipple = 0.004
	}
	if opts.Kernel == (kernel.Options{}) {
		opts.Kernel = kernel.DefaultOptions()
	}

	// In a partitioned world the node's entire local machinery — kernel,
	// timers, radio driver state machine, battery — lives on its partition's
	// simulator; only the medium stays on the shared one.
	nodeSim := w.Sim
	if w.group != nil {
		nodeSim = w.group.Domain(w.assign[len(w.Nodes)])
	}
	k := kernel.New(nodeSim, id, w.Dict, opts.Kernel, w.seed)

	meter := icount.New(opts.Volts, k.NowTicks)
	meter.SetGain(opts.MeterGain)
	board := power.NewBoard(opts.Volts, opts.Draws, k.NowTicks)
	bench := scope.New(opts.ScopeRipple, w.seed^(uint64(id)<<40)^0x5C09E)

	log := core.NewCollector()
	var sink core.Sink = log
	var ram *core.RAMBuffer
	var drain *core.DrainSink
	switch {
	case opts.ContinuousDrain:
		cost := opts.DrainCostPerEntry
		if cost == 0 {
			cost = 120
		}
		quantoAct := k.DefineActivity("Quanto")
		ram = core.NewRAMBuffer(core.DefaultRAMBufferEntries)
		drain = core.NewDrainSink(ram, log, k, quantoAct, 64, cost)
		sink = drain
	case opts.RAMBufferEntries > 0:
		ram = core.NewRAMBuffer(opts.RAMBufferEntries)
		sink = core.NewTee(log, ram)
	}
	if len(opts.ExtraSinks) > 0 {
		sink = core.NewTee(append([]core.Sink{sink}, opts.ExtraSinks...)...)
	}

	trk := core.NewTracker(core.Config{
		Node:  id,
		Clock: k,
		Meter: meter,
		Cost:  k,
		Sink:  sink,
	})
	trk.ListenPowerStates(board)

	// Physical wiring: the board publishes aggregate current to the meter
	// and the bench.
	board.Listen(meter)
	board.Listen(bench)

	// Resource names for reports.
	//quanto:ordered writes to distinct dictionary keys, one per resource id; order cannot escape
	for res, name := range power.ResourceNames() {
		w.Dict.NameResource(res, name)
	}

	// The always-on board draw and the CPU.
	board.AddSink(power.ResBaseline, power.StateOff)
	k.Attach(trk)
	board.AddSink(power.ResCPU, opts.Kernel.SleepState)

	n := &Node{
		ID:    id,
		K:     k,
		Trk:   trk,
		Board: board,
		Meter: meter,
		Scope: bench,
		Log:   log,
		RAM:   ram,
		Drain: drain,
		Volts: opts.Volts,
	}

	n.LEDs = leds.New(k, board)
	n.Sensor = sensor.New(k, board)
	n.Flash = flash.New(k, board)

	if opts.Radio {
		n.Radio = radio.New(k, w.Medium, board, opts.RadioConfig)
		n.AM = am.New(k, n.Radio)
	}

	if opts.BatteryUAH > 0 {
		// The battery listens last, after every sink is registered, so its
		// first integration segment starts from the complete assembly-time
		// draw. All assembly happens at t=0, so no charge is missed.
		bat := power.NewBattery(opts.BatteryUAH, opts.Harvester, nodeSim)
		board.Listen(bat)
		n.Battery = bat
		haltWorld := opts.HaltWorldOnDeath
		bat.OnDepleted(func(at units.Ticks) { w.killNode(n, at, haltWorld) })
	}

	w.Nodes = append(w.Nodes, n)
	if w.byID == nil {
		w.byID = make(map[core.NodeID]*Node)
	}
	w.byID[id] = n
	return n
}

// killNode is the depletion event handler: it runs as its own simulator event
// (never inside a device handler) at the exact crossing instant. The order
// matters — the death marker must be the node's last log entry, stamped while
// the meter still integrates, and everything after it must be silent.
func (w *World) killNode(n *Node, at units.Ticks, haltWorld bool) {
	if n.dead {
		return
	}
	n.dead = true
	n.diedAt = at
	// Final entry: exact time and cumulative energy at death, so offline
	// analysis closes the last interval precisely.
	n.Trk.Marker(power.ResBaseline, DeathMarker)
	if n.Drain != nil {
		// Continuous-drain mode: hand the harness the entries still buffered
		// in RAM. (A real mote would lose them with the supply; the
		// simulation keeps analysis exact instead.)
		n.Drain.Flush()
	}
	n.Trk.SetEnabled(false)
	if n.Radio != nil {
		// Off the air: no more frame deliveries, no more forwarding. This is
		// what makes downstream nodes lose connectivity when a relay dies.
		w.Medium.Unregister(n.Radio)
		n.Radio.ForceOff()
	}
	n.Board.Shutdown()
	n.K.Kill()
	w.Deaths = append(w.Deaths, Death{Node: n.ID, At: at})
	if w.OnDeath != nil {
		w.OnDeath(n, at)
	}
	for _, sub := range w.deathSubs {
		sub(n, at)
	}
	if haltWorld {
		w.Sim.Halt()
		if w.group != nil {
			w.group.Halt()
		}
	}
}

// ConfigureSpatial switches the world's medium from the flat broadcast
// model to the spatial link layer: positions[i] is assigned to w.Nodes[i]
// (creation order, which is how apps index placements), and delivery from
// then on is gated on range, per-link PRR, and collisions. Call it after
// every node has been added; the default — never calling it — leaves the
// broadcast medium byte-identical to its historical behavior.
func (w *World) ConfigureSpatial(cfg medium.SpatialConfig, positions []medium.Position) error {
	if len(positions) != len(w.Nodes) {
		return fmt.Errorf("mote: %d positions for %d nodes", len(positions), len(w.Nodes))
	}
	w.Medium.EnableSpatial(cfg)
	for i, n := range w.Nodes {
		w.Medium.SetPosition(n.ID, positions[i])
	}
	// Build the neighbor index now, while the world is being constructed,
	// rather than lazily inside the run at the first transmission — the
	// index is position-determined and consumes no randomness, so this only
	// moves cost, never results. (A mid-run topology change still
	// invalidates and rebuilds lazily.)
	w.Medium.WarmNeighbors()
	return nil
}

// StampEnd writes a final marker entry on every node so offline analysis can
// close the last interval with an exact time and energy reading, and flushes
// any continuous-drain buffers so the collector holds the complete stream.
// Dead nodes are skipped: their death marker is already their final entry.
// Call it after Run.
func (w *World) StampEnd() {
	for _, n := range w.Nodes {
		if n.dead {
			continue
		}
		n.Trk.Marker(power.ResBaseline, 0xFFFF)
		if n.Drain != nil {
			n.Drain.Flush()
		}
	}
}

// SubscribeDeath adds a depletion observer without displacing OnDeath.
// Subscribers run in subscription order, after OnDeath, inside the death
// event itself — the node is already off the air and killed.
func (w *World) SubscribeDeath(fn func(n *Node, at units.Ticks)) {
	w.deathSubs = append(w.deathSubs, fn)
}

// Node returns the node with the given id, or nil.
func (w *World) Node(id core.NodeID) *Node { return w.byID[id] }

// Run advances the simulation until the given time and returns the number of
// events dispatched.
func (w *World) Run(until units.Ticks) int {
	if w.group != nil {
		return w.group.Run(until)
	}
	return w.Sim.Run(until)
}

// NodeLogs gathers every node's collected entries for merging and analysis.
func (w *World) NodeLogs() map[core.NodeID][]core.Entry {
	out := make(map[core.NodeID][]core.Entry, len(w.Nodes))
	for _, n := range w.Nodes {
		out[n.ID] = n.Log.Entries
	}
	return out
}

// NodeStreams exposes every node's collected log as a merge input, without
// copying the entries.
func (w *World) NodeStreams() []trace.Stream {
	out := make([]trace.Stream, 0, len(w.Nodes))
	for _, n := range w.Nodes {
		out = append(out, trace.Stream{Node: n.ID, Source: trace.NewSliceSource(n.Log.Entries)})
	}
	return out
}

// Merged k-way merges every node's log into one time-ordered network stream.
func (w *World) Merged() (*trace.Merger, error) {
	return trace.NewMerger(w.NodeStreams())
}

// NewSingleNode is the quickstart helper: one node, id 1, default options,
// no radio.
func NewSingleNode(seed uint64) (*World, *Node) {
	w := NewWorld(seed)
	n := w.AddNode(1, DefaultOptions())
	return w, n
}
