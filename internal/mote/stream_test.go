package mote

import (
	"io"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/units"
)

// TestExtraSinksSeeLiveStream wires an online accountant and a ring buffer
// into the tee alongside the collector and checks all three observe the same
// stream — the "top-like" always-on mode riding the log for free.
func TestExtraSinksSeeLiveStream(t *testing.T) {
	w := NewWorld(1)
	acct := analysis.NewOnlineAccountant(1, 0, nil) // counting events only
	ring := core.NewRingBuffer(8)
	opts := DefaultOptions()
	opts.ExtraSinks = []core.Sink{acct, ring}
	n := w.AddNode(1, opts)

	n.K.Boot(func() {
		tm := n.K.NewTimer(func() { n.LEDs.Toggle(0) })
		tm.StartPeriodic(100 * units.Millisecond)
	})
	w.Run(2 * units.Second)
	w.StampEnd()

	if n.Log.Len() == 0 {
		t.Fatal("collector saw nothing")
	}
	if got := int(acct.Events()); got != n.Log.Len() {
		t.Errorf("accountant saw %d events, collector %d", got, n.Log.Len())
	}
	if ring.Len() != 8 {
		t.Errorf("ring holds %d entries, want full 8", ring.Len())
	}
	// The ring's snapshot is the tail of the collector's stream.
	tail := n.Log.Entries[n.Log.Len()-8:]
	for i, e := range ring.Snapshot() {
		if e != tail[i] {
			t.Errorf("ring[%d] = %v, want %v", i, e, tail[i])
		}
	}
	if n.Trk.Dropped() != 0 {
		t.Errorf("dropped = %d", n.Trk.Dropped())
	}
}

// TestWorldMergedStreamsAllNodes checks the k-way merged stream is
// time-ordered and complete across nodes.
func TestWorldMergedStreamsAllNodes(t *testing.T) {
	w := NewWorld(3)
	a := w.AddNode(1, DefaultOptions())
	b := w.AddNode(2, DefaultOptions())
	a.K.Boot(func() {
		tm := a.K.NewTimer(func() { a.LEDs.Toggle(0) })
		tm.StartPeriodic(70 * units.Millisecond)
	})
	b.K.Boot(func() {
		tm := b.K.NewTimer(func() { b.LEDs.Toggle(1) })
		tm.StartPeriodic(110 * units.Millisecond)
	})
	w.Run(2 * units.Second)
	w.StampEnd()

	m, err := w.Merged()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev int64
	seen := make(map[core.NodeID]int)
	for {
		s, err := m.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.TimeUS < prev {
			t.Fatalf("merged stream out of order at entry %d: %d < %d", count, s.TimeUS, prev)
		}
		prev = s.TimeUS
		seen[s.Node]++
		count++
	}
	if count != a.Log.Len()+b.Log.Len() {
		t.Errorf("merged %d entries, want %d", count, a.Log.Len()+b.Log.Len())
	}
	if seen[1] != a.Log.Len() || seen[2] != b.Log.Len() {
		t.Errorf("per-node counts %v, want %d/%d", seen, a.Log.Len(), b.Log.Len())
	}
}
