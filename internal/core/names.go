package core

import "fmt"

// Dictionary maps the numeric identifiers appearing in log entries back to
// human-readable names. Resources are global to a platform; activity names
// are scoped to the node that defined the activity, so the merged,
// network-wide dictionary is keyed by (origin node, activity id).
type Dictionary struct {
	Resources  map[ResourceID]string
	Activities map[Label]string
	proxies    map[Label]bool
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		Resources:  make(map[ResourceID]string),
		Activities: make(map[Label]string),
		proxies:    make(map[Label]bool),
	}
}

// MarkProxy records that a label is a proxy activity (the static activity of
// an interrupt routine). The offline accounting uses this to decide which
// usage a bind entry reassigns.
func (d *Dictionary) MarkProxy(l Label) { d.proxies[l] = true }

// IsProxy reports whether l is a proxy activity.
func (d *Dictionary) IsProxy(l Label) bool { return d.proxies[l] }

// Proxies returns a copy of the proxy label set.
func (d *Dictionary) Proxies() map[Label]bool {
	out := make(map[Label]bool, len(d.proxies))
	for k, v := range d.proxies {
		out[k] = v
	}
	return out
}

// NameResource registers a resource name.
func (d *Dictionary) NameResource(res ResourceID, name string) {
	d.Resources[res] = name
}

// NameActivity registers the name of activity id defined at node origin.
func (d *Dictionary) NameActivity(origin NodeID, id ActivityID, name string) {
	d.Activities[MkLabel(origin, id)] = name
}

// ResourceName returns the registered name, or a numeric fallback.
func (d *Dictionary) ResourceName(res ResourceID) string {
	if n, ok := d.Resources[res]; ok {
		return n
	}
	return fmt.Sprintf("res%d", res)
}

// LabelName renders a label as "origin:Name", the style used in the paper's
// figures ("1:Blue", "4:BounceApp", "1:int_TIMER").
func (d *Dictionary) LabelName(l Label) string {
	if n, ok := d.Activities[l]; ok {
		return fmt.Sprintf("%d:%s", l.Origin(), n)
	}
	if l.ID() == ActIdle {
		return fmt.Sprintf("%d:Idle", l.Origin())
	}
	if l.ID() == ActVTimer {
		return fmt.Sprintf("%d:VTimer", l.Origin())
	}
	return l.String()
}

// Merge copies every mapping from other into d, with other taking precedence
// on conflicts. It is used to combine per-node dictionaries into the
// network-wide one handed to the analysis.
func (d *Dictionary) Merge(other *Dictionary) {
	if other == nil {
		return
	}
	for k, v := range other.Resources {
		d.Resources[k] = v
	}
	for k, v := range other.Activities {
		d.Activities[k] = v
	}
	for k, v := range other.proxies {
		d.proxies[k] = v
	}
}
