package core

import "testing"

func batchOf(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{Type: EntryMarker, Time: uint32(i), IC: uint32(i), Val: uint16(i)}
	}
	return out
}

// plainSink implements only the single-entry interface, to exercise the
// RecordAll fallback.
type plainSink struct {
	got  []Entry
	keep int // entries accepted before rejecting
}

func (p *plainSink) Record(e Entry) bool {
	if len(p.got) >= p.keep {
		return false
	}
	p.got = append(p.got, e)
	return true
}

func TestRecordAllFallsBackToSingleRecord(t *testing.T) {
	p := &plainSink{keep: 3}
	if kept := RecordAll(p, batchOf(5)); kept != 3 {
		t.Errorf("kept = %d, want 3", kept)
	}
	if len(p.got) != 3 {
		t.Errorf("sink holds %d entries", len(p.got))
	}
}

func TestRecordAllUsesBatchPath(t *testing.T) {
	c := NewCollector()
	if kept := RecordAll(c, batchOf(4)); kept != 4 {
		t.Errorf("kept = %d", kept)
	}
	if c.Len() != 4 {
		t.Errorf("collector holds %d", c.Len())
	}
}

func TestRAMBufferRecordBatchPartialKeep(t *testing.T) {
	b := NewRAMBuffer(4)
	if kept := b.RecordBatch(batchOf(3)); kept != 3 {
		t.Errorf("first batch kept %d", kept)
	}
	if kept := b.RecordBatch(batchOf(3)); kept != 1 {
		t.Errorf("overflow batch kept %d, want 1", kept)
	}
	if !b.Full() || b.Len() != 4 {
		t.Errorf("buffer len %d full=%v", b.Len(), b.Full())
	}
	if kept := b.RecordBatch(batchOf(2)); kept != 0 {
		t.Errorf("full buffer kept %d", kept)
	}
}

func TestTeeRecordBatchReportsMinKept(t *testing.T) {
	a, b := NewCollector(), NewRAMBuffer(2)
	tee := NewTee(a, b)
	if kept := tee.RecordBatch(batchOf(5)); kept != 2 {
		t.Errorf("kept = %d, want the RAM buffer's 2", kept)
	}
	if a.Len() != 5 {
		t.Errorf("collector got %d entries, want all 5", a.Len())
	}
}

func TestCounterSinkRecordBatch(t *testing.T) {
	c := NewCounterSink()
	batch := []Entry{
		{Type: EntryPowerState, Res: 1},
		{Type: EntryPowerState, Res: 2},
		{Type: EntryActivitySet, Res: 1},
	}
	if kept := c.RecordBatch(batch); kept != 3 {
		t.Errorf("kept = %d", kept)
	}
	if c.PerType[EntryPowerState] != 2 || c.PerRes[1] != 2 {
		t.Errorf("counters = %v / %v", c.PerType, c.PerRes)
	}
}

func TestRingBufferKeepsMostRecent(t *testing.T) {
	r := NewRingBuffer(3)
	for i, e := range batchOf(5) {
		if !r.Record(e) {
			t.Fatalf("record %d rejected", i)
		}
	}
	if r.Len() != 3 || r.Evicted() != 2 {
		t.Fatalf("len=%d evicted=%d, want 3/2", r.Len(), r.Evicted())
	}
	snap := r.Snapshot()
	for i, want := range []uint32{2, 3, 4} {
		if snap[i].Time != want {
			t.Errorf("snap[%d].Time = %d, want %d", i, snap[i].Time, want)
		}
	}
}

func TestRingBufferLargeBatchReplacesContents(t *testing.T) {
	r := NewRingBuffer(3)
	r.Record(Entry{Type: EntryMarker, Time: 99})
	if kept := r.RecordBatch(batchOf(5)); kept != 5 {
		t.Errorf("kept = %d", kept)
	}
	// One old entry overwritten plus two batch entries that never landed.
	if r.Evicted() != 3 {
		t.Errorf("evicted = %d, want 3", r.Evicted())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, want := range []uint32{2, 3, 4} {
		if snap[i].Time != want {
			t.Errorf("snap[%d].Time = %d, want %d", i, snap[i].Time, want)
		}
	}
}

func TestRingBufferSmallBatchWraps(t *testing.T) {
	r := NewRingBuffer(4)
	r.RecordBatch(batchOf(3))
	if kept := r.RecordBatch(batchOf(3)); kept != 3 {
		t.Errorf("kept = %d", kept)
	}
	snap := r.Snapshot()
	want := []uint32{2, 0, 1, 2}
	for i := range want {
		if snap[i].Time != want[i] {
			t.Errorf("snap[%d].Time = %d, want %d", i, snap[i].Time, want[i])
		}
	}
	if r.Evicted() != 2 {
		t.Errorf("evicted = %d, want 2", r.Evicted())
	}
}

func TestRingBufferAsTrackerSinkNeverDrops(t *testing.T) {
	clock := &testClock{}
	meter := &testMeter{}
	ring := NewRingBuffer(2)
	trk := NewTracker(Config{Node: 1, Clock: clock, Meter: meter, Sink: ring})
	for i := 0; i < 5; i++ {
		trk.Log(EntryMarker, 0, uint16(i))
	}
	if trk.Dropped() != 0 {
		t.Errorf("ring sink should never drop; dropped = %d", trk.Dropped())
	}
	if trk.Entries() != 5 {
		t.Errorf("entries = %d", trk.Entries())
	}
}
