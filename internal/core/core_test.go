package core

import (
	"testing"
	"testing/quick"
)

type testClock struct{ t uint32 }

func (c *testClock) NowMicros() uint32 { return c.t }

type testMeter struct{ pulses uint32 }

func (m *testMeter) ReadPulses() uint32 { return m.pulses }

type testCost struct{ cycles uint64 }

func (c *testCost) ChargeCycles(n uint32) { c.cycles += uint64(n) }

func newTestTracker() (*Tracker, *testClock, *testMeter, *testCost, *Collector) {
	clock := &testClock{}
	meter := &testMeter{}
	cost := &testCost{}
	sink := NewCollector()
	trk := NewTracker(Config{Node: 1, Clock: clock, Meter: meter, Cost: cost, Sink: sink})
	return trk, clock, meter, cost, sink
}

func TestLabelPacking(t *testing.T) {
	f := func(origin, id uint8) bool {
		l := MkLabel(NodeID(origin), ActivityID(id))
		return l.Origin() == NodeID(origin) && l.ID() == ActivityID(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelIdle(t *testing.T) {
	if !MkLabel(5, ActIdle).IsIdle() {
		t.Error("ActIdle label should be idle")
	}
	if MkLabel(5, 3).IsIdle() {
		t.Error("non-idle label misreported")
	}
	if MkLabel(3, 7).String() != "3:7" {
		t.Errorf("String = %q", MkLabel(3, 7).String())
	}
}

func TestTrackerLogStampsTimeAndEnergy(t *testing.T) {
	trk, clock, meter, cost, sink := newTestTracker()
	clock.t = 1000
	meter.pulses = 42
	trk.Log(EntryPowerState, 3, 7)
	if sink.Len() != 1 {
		t.Fatalf("entries = %d", sink.Len())
	}
	e := sink.Entries[0]
	if e.Time != 1000 || e.IC != 42 || e.Res != 3 || e.Val != 7 || e.Type != EntryPowerState {
		t.Errorf("entry = %+v", e)
	}
	if cost.cycles != 102 {
		t.Errorf("charged %d cycles, want 102 (Table 4)", cost.cycles)
	}
}

func TestTrackerDisable(t *testing.T) {
	trk, _, _, cost, sink := newTestTracker()
	trk.SetEnabled(false)
	trk.Log(EntryPowerState, 1, 1)
	if sink.Len() != 0 || cost.cycles != 0 {
		t.Error("disabled tracker must not log or charge")
	}
	trk.SetEnabled(true)
	trk.Log(EntryPowerState, 1, 1)
	if sink.Len() != 1 {
		t.Error("re-enabled tracker must log")
	}
}

func TestTrackerStats(t *testing.T) {
	trk, _, _, _, _ := newTestTracker()
	for i := 0; i < 5; i++ {
		trk.Log(EntryMarker, 0, uint16(i))
	}
	if trk.Entries() != 5 {
		t.Errorf("Entries = %d", trk.Entries())
	}
	if trk.CostCycles() != 5*102 {
		t.Errorf("CostCycles = %d", trk.CostCycles())
	}
}

func TestLogCostsBreakdown(t *testing.T) {
	c := DefaultLogCosts()
	if c.Call != 41 || c.ReadTimer != 19 || c.ReadICount != 24 || c.Other != 18 {
		t.Errorf("cost breakdown = %+v, want Table 4's 41/19/24/18", c)
	}
	if c.Total() != 102 {
		t.Errorf("total = %d, want 102", c.Total())
	}
}

func TestPowerStateIdempotence(t *testing.T) {
	trk, _, _, _, sink := newTestTracker()
	ps := NewPowerStateVar(trk, 4, 0)
	base := sink.Len() // initial state logged
	ps.Set(1)
	ps.Set(1) // idempotent: no new entry
	ps.Set(1)
	if got := sink.Len() - base; got != 1 {
		t.Errorf("logged %d entries for 3 sets of same value, want 1", got)
	}
	ps.Set(0)
	if got := sink.Len() - base; got != 2 {
		t.Errorf("logged %d entries, want 2", got)
	}
}

func TestPowerStateSetBits(t *testing.T) {
	trk, _, _, _, _ := newTestTracker()
	ps := NewPowerStateVar(trk, 4, 0)
	ps.SetBits(0x3, 2, 0x2) // set bits [3:2] to 10
	if ps.State() != 0x8 {
		t.Errorf("state = %#x, want 0x8", ps.State())
	}
	ps.SetBits(0x1, 0, 1)
	if ps.State() != 0x9 {
		t.Errorf("state = %#x, want 0x9", ps.State())
	}
	ps.SetBits(0x3, 2, 0) // clear the field
	if ps.State() != 0x1 {
		t.Errorf("state = %#x, want 0x1", ps.State())
	}
}

func TestPowerStateNotifiesListeners(t *testing.T) {
	trk, _, _, _, _ := newTestTracker()
	var events []PowerState
	trk.ListenPowerStates(psListener(func(res ResourceID, old, now PowerState) {
		events = append(events, now)
	}))
	ps := NewPowerStateVar(trk, 4, 0)
	ps.Set(2)
	ps.Set(2)
	ps.Set(0)
	if len(events) != 2 || events[0] != 2 || events[1] != 0 {
		t.Errorf("events = %v, want [2 0]", events)
	}
}

type psListener func(ResourceID, PowerState, PowerState)

func (f psListener) PowerStateChanged(res ResourceID, old, now PowerState) { f(res, old, now) }

func TestSingleActivityDevice(t *testing.T) {
	trk, _, _, _, sink := newTestTracker()
	dev := NewSingleActivityDevice(trk, 2)
	if !dev.Get().IsIdle() {
		t.Error("device should start idle")
	}
	red := MkLabel(1, 5)
	dev.Set(red)
	if dev.Get() != red {
		t.Errorf("Get = %v", dev.Get())
	}
	n := sink.Len()
	dev.Set(red) // idempotent
	if sink.Len() != n {
		t.Error("idempotent set logged")
	}
	dev.SetIdle()
	if !dev.Get().IsIdle() {
		t.Error("SetIdle failed")
	}
}

func TestSingleActivityBindLogsBindEntry(t *testing.T) {
	trk, _, _, _, sink := newTestTracker()
	dev := NewSingleActivityDevice(trk, 2)
	proxy := MkLabel(1, 9)
	real := MkLabel(4, 3)
	dev.Set(proxy)
	dev.Bind(real)
	last := sink.Entries[sink.Len()-1]
	if last.Type != EntryActivityBind || last.Label() != real {
		t.Errorf("last entry = %v, want bind to %v", last, real)
	}
	if dev.Get() != real {
		t.Errorf("device label = %v after bind", dev.Get())
	}
}

func TestMultiActivityDevice(t *testing.T) {
	trk, _, _, _, _ := newTestTracker()
	dev := NewMultiActivityDevice(trk, 11)
	a, b := MkLabel(1, 2), MkLabel(1, 3)
	if err := dev.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := dev.Add(a); err == nil {
		t.Error("duplicate add should error")
	}
	if err := dev.Add(b); err != nil {
		t.Fatal(err)
	}
	if dev.Count() != 2 || !dev.Has(a) || !dev.Has(b) {
		t.Error("set contents wrong")
	}
	if err := dev.Remove(a); err != nil {
		t.Fatal(err)
	}
	if err := dev.Remove(a); err == nil {
		t.Error("removing absent label should error")
	}
	if dev.Count() != 1 {
		t.Errorf("Count = %d", dev.Count())
	}
}

func TestRAMBufferCapacity(t *testing.T) {
	buf := NewRAMBuffer(3)
	for i := 0; i < 3; i++ {
		if !buf.Record(Entry{Type: EntryMarker, Val: uint16(i)}) {
			t.Fatalf("record %d rejected", i)
		}
	}
	if buf.Record(Entry{Type: EntryMarker, Val: 99}) {
		t.Error("record into full buffer should fail")
	}
	if !buf.Full() || buf.Len() != 3 || buf.Bytes() != 36 {
		t.Errorf("Full=%v Len=%d Bytes=%d", buf.Full(), buf.Len(), buf.Bytes())
	}
	got := buf.Drain()
	if len(got) != 3 || buf.Len() != 0 {
		t.Error("drain should empty the buffer")
	}
}

func TestRAMBufferDefaultSize(t *testing.T) {
	buf := NewRAMBuffer(0)
	for i := 0; i < DefaultRAMBufferEntries; i++ {
		if !buf.Record(Entry{Type: EntryMarker}) {
			t.Fatalf("rejected at %d, want capacity 800", i)
		}
	}
	if buf.Record(Entry{Type: EntryMarker}) {
		t.Error("801st entry should be rejected")
	}
}

func TestTrackerCountsDrops(t *testing.T) {
	clock := &testClock{}
	meter := &testMeter{}
	buf := NewRAMBuffer(2)
	trk := NewTracker(Config{Node: 1, Clock: clock, Meter: meter, Sink: buf})
	for i := 0; i < 5; i++ {
		trk.Log(EntryMarker, 0, 0)
	}
	if trk.Entries() != 2 || trk.Dropped() != 3 {
		t.Errorf("entries=%d dropped=%d, want 2/3", trk.Entries(), trk.Dropped())
	}
}

func TestTee(t *testing.T) {
	a, b := NewCollector(), NewRAMBuffer(1)
	tee := &Tee{Sinks: []Sink{a, b}}
	if !tee.Record(Entry{Type: EntryMarker}) {
		t.Error("first record should succeed everywhere")
	}
	if tee.Record(Entry{Type: EntryMarker}) {
		t.Error("second record should report the RAM buffer drop")
	}
	if a.Len() != 2 {
		t.Errorf("collector got %d entries, want 2", a.Len())
	}
}

func TestCounterSink(t *testing.T) {
	c := NewCounterSink()
	c.Record(Entry{Type: EntryPowerState, Res: 1})
	c.Record(Entry{Type: EntryPowerState, Res: 2})
	c.Record(Entry{Type: EntryActivitySet, Res: 1})
	if c.PerType[EntryPowerState] != 2 || c.PerType[EntryActivitySet] != 1 {
		t.Errorf("PerType = %v", c.PerType)
	}
	if c.PerRes[1] != 2 || c.PerRes[2] != 1 {
		t.Errorf("PerRes = %v", c.PerRes)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	d.NameResource(3, "Led0")
	d.NameActivity(1, 4, "Blue")
	if d.ResourceName(3) != "Led0" {
		t.Errorf("ResourceName = %q", d.ResourceName(3))
	}
	if d.ResourceName(9) != "res9" {
		t.Errorf("fallback = %q", d.ResourceName(9))
	}
	if d.LabelName(MkLabel(1, 4)) != "1:Blue" {
		t.Errorf("LabelName = %q", d.LabelName(MkLabel(1, 4)))
	}
	if d.LabelName(MkLabel(2, ActIdle)) != "2:Idle" {
		t.Errorf("idle name = %q", d.LabelName(MkLabel(2, ActIdle)))
	}
	if d.LabelName(MkLabel(2, ActVTimer)) != "2:VTimer" {
		t.Errorf("vtimer name = %q", d.LabelName(MkLabel(2, ActVTimer)))
	}
}

func TestDictionaryProxiesAndMerge(t *testing.T) {
	d1 := NewDictionary()
	p := MkLabel(1, 7)
	d1.MarkProxy(p)
	d1.NameActivity(1, 7, "int_X")

	d2 := NewDictionary()
	d2.NameActivity(2, 3, "App")
	d2.Merge(d1)
	if !d2.IsProxy(p) {
		t.Error("merge should carry proxy flags")
	}
	if d2.LabelName(p) != "1:int_X" {
		t.Errorf("merged name = %q", d2.LabelName(p))
	}
	if len(d2.Proxies()) != 1 {
		t.Errorf("proxies = %v", d2.Proxies())
	}
	d2.Merge(nil) // no-op
}

func TestTrackerRequiresDependencies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTracker without clock should panic")
		}
	}()
	NewTracker(Config{Node: 1})
}

func TestEntryTypeStrings(t *testing.T) {
	for typ, want := range map[EntryType]string{
		EntryPowerState:     "ps",
		EntryActivitySet:    "act",
		EntryActivityBind:   "bind",
		EntryActivityAdd:    "add",
		EntryActivityRemove: "rem",
		EntryMarker:         "mark",
		EntryType(99):       "type(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
