// Package core implements Quanto's primary contribution: causal tracking of
// programmer-defined activities and hardware power states, tied to
// fine-grained energy metering through a compact event log.
//
// The package mirrors the nesC interfaces of the paper's TinyOS
// implementation:
//
//   - PowerStateVar is the PowerState/PowerStateTrack pair (Figures 1 and 3):
//     device drivers signal hardware power-state changes through it and the
//     OS observes actual changes.
//   - SingleActivityDevice and MultiActivityDevice (Figures 5 and 6) hold the
//     activity a hardware component is currently working for; the OS
//     "paints" devices with activity labels and propagates them across
//     causally related operations.
//   - Tracker is the glue component: every real state change is logged as a
//     12-byte entry stamped with the node-local time and the cumulative
//     iCount energy reading (Figure 17), and the CPU is charged the
//     synchronous logging cost (102 cycles at 1 MHz, Table 4).
//
// Everything here is per-node and single-threaded, matching the mote
// execution model: TinyOS has one stack and the simulation dispatches one
// event at a time.
package core

import "fmt"

// NodeID identifies a node in the network. The simulator supports dense ids
// well beyond the paper's 256-node deployments (the scaling benchmarks run
// 10k-node worlds); only the on-wire activity Label keeps the paper's packed
// 8-bit origin field, so label origins alias modulo 256 on larger networks.
type NodeID uint32

// ActivityID is the node-scoped, statically defined identifier of an
// activity.
type ActivityID uint8

// Reserved activity ids present on every node.
const (
	ActIdle   ActivityID = 0 // no activity; the CPU between jobs
	ActVTimer ActivityID = 1 // the virtual timer bookkeeping activity
)

// Label is an activity label: the pair <origin node : activity id> packed in
// 16 bits, carried on packets and through every control-flow deferral point.
// The paper's encoding is "sufficient for networks of up to 256 nodes with
// 256 distinct activity ids"; we keep the 12-byte wire format, so on networks
// larger than 256 nodes the origin field carries the node id modulo 256.
type Label uint16

// MkLabel builds the label for activity id starting at node origin. Origins
// above 255 wrap: the wire format dedicates 8 bits to the origin.
func MkLabel(origin NodeID, id ActivityID) Label {
	return Label(uint16(origin&0xFF)<<8 | uint16(id))
}

// Origin returns the node where the labeled activity started.
func (l Label) Origin() NodeID { return NodeID(l >> 8) }

// ID returns the node-scoped activity identifier.
func (l Label) ID() ActivityID { return ActivityID(l & 0xFF) }

// IsIdle reports whether the label denotes "no activity" regardless of node.
func (l Label) IsIdle() bool { return l.ID() == ActIdle }

// String formats the label as "origin:id"; use Dictionary.LabelName for the
// human-readable form ("1:Blue").
func (l Label) String() string {
	return fmt.Sprintf("%d:%d", l.Origin(), l.ID())
}

// ResourceID identifies a hardware resource (an energy sink) on a node. The
// log entry reserves one byte for it.
type ResourceID uint8

// PowerState is the operating mode of an energy sink. The log entry reserves
// 16 bits, allowing either a small enumeration or a packed bit-field that
// drivers update with SetBits.
type PowerState uint16
