package core

// DrainSink implements the paper's second logging mode (Section 4.4):
// entries collect in the fixed RAM buffer and a low-priority task empties it
// over a back channel when the CPU would otherwise be idle. "Like the Unix
// top application, Quanto can account for its own logging in this mode as
// its own activity" — the drain work runs under a dedicated activity label
// so it appears in its own profile. For the paper's applications this mode
// used between 4 and 15% of the CPU.
//
// DrainSink is wired between the Tracker and the harness-side collector:
// Record buffers the entry and schedules the drain when the buffer crosses
// the high-water mark. The scheduling itself is delegated to the kernel via
// the Drainer interface to avoid an import cycle.
type DrainSink struct {
	buf  *RAMBuffer
	out  Sink // where drained entries land (the "serial port")
	pump Drainer

	// Label is the self-accounting activity ("Quanto").
	Label Label
	// HighWater triggers a drain when the buffer reaches this many entries.
	HighWater int
	// CostPerEntry is the CPU cost of pushing one entry out the back
	// channel, charged to Label.
	CostPerEntry uint32

	draining bool
	drained  uint64
	rounds   uint64
}

// Drainer schedules drain work: the kernel implements it by posting a task
// under the given label and charging the given cycles when it runs.
type Drainer interface {
	ScheduleDrain(label Label, cycles uint32, work func())
}

// NewDrainSink builds the continuous-logging pipeline.
func NewDrainSink(buf *RAMBuffer, out Sink, pump Drainer, label Label, highWater int, costPerEntry uint32) *DrainSink {
	if highWater <= 0 {
		highWater = buf.cap / 2
	}
	return &DrainSink{
		buf:          buf,
		out:          out,
		pump:         pump,
		Label:        label,
		HighWater:    highWater,
		CostPerEntry: costPerEntry,
	}
}

// Record implements Sink.
func (d *DrainSink) Record(e Entry) bool {
	ok := d.buf.Record(e)
	if d.buf.Len() >= d.HighWater && !d.draining {
		d.scheduleDrain()
	}
	return ok
}

// RecordBatch implements BatchSink: the batch lands in the RAM buffer in one
// append and the drain is scheduled at most once.
func (d *DrainSink) RecordBatch(entries []Entry) int {
	kept := d.buf.RecordBatch(entries)
	if d.buf.Len() >= d.HighWater && !d.draining {
		d.scheduleDrain()
	}
	return kept
}

func (d *DrainSink) scheduleDrain() {
	d.draining = true
	n := d.buf.Len()
	cycles := uint32(n) * d.CostPerEntry
	d.pump.ScheduleDrain(d.Label, cycles, func() {
		// Drain exactly the n entries the charged cycles paid for; entries
		// logged between scheduling and execution stay buffered for the
		// next round, keeping the self-accounting exact.
		RecordAll(d.out, d.buf.DrainN(n))
		d.drained += uint64(n)
		d.rounds++
		d.draining = false
		// Entries logged while draining may have refilled past the mark.
		if d.buf.Len() >= d.HighWater {
			d.scheduleDrain()
		}
	})
}

// Flush force-drains the buffer synchronously into the output sink without
// charging CPU (used at the end of a run by the harness).
func (d *DrainSink) Flush() {
	RecordAll(d.out, d.buf.Drain())
}

// Drained returns how many entries left through the back channel and in how
// many rounds.
func (d *DrainSink) Drained() (entries, rounds uint64) { return d.drained, d.rounds }

// Buffered returns the number of entries waiting in RAM.
func (d *DrainSink) Buffered() int { return d.buf.Len() }
