package core

// Clock provides node-local time for log entries. On the real platform this
// is a 32 kHz/1 MHz hardware timer read costing 19 cycles (Table 4); in the
// reproduction the mote kernel provides it from simulated time.
type Clock interface {
	// NowMicros returns the node-local time in microseconds, truncated to
	// 32 bits exactly as the mote logs it.
	NowMicros() uint32
}

// Meter is the cumulative energy counter (the iCount interface). Reading it
// is cheap — "as cheaply as reading a counter" — but not free: the Tracker
// charges the configured read cost separately.
type Meter interface {
	// ReadPulses returns the cumulative pulse count, each pulse representing
	// a fixed energy quantum (8.33 uJ at 3 V on HydroWatch).
	ReadPulses() uint32
}

// CostAccount receives the CPU cycles consumed by Quanto's own bookkeeping
// so the profiler's overhead shows up in the profile, like the paper's
// self-accounting of logging time.
type CostAccount interface {
	// ChargeCycles adds n busy cycles to the CPU at the current instant.
	ChargeCycles(n uint32)
}

// Sink consumes log entries as they are produced. Record reports whether the
// entry was kept; a full fixed buffer returns false and the Tracker counts
// the drop.
type Sink interface {
	Record(Entry) bool
}

// LogCosts is the synchronous per-entry cost model from Table 4 of the
// paper, in CPU cycles at 1 MHz.
type LogCosts struct {
	Call       uint32 // call overhead
	ReadTimer  uint32 // reading the time stamp
	ReadICount uint32 // reading the iCount value
	Other      uint32 // struct fill, buffer management
}

// DefaultLogCosts reproduces Table 4: 41 + 19 + 24 + 18 = 102 cycles.
func DefaultLogCosts() LogCosts {
	return LogCosts{Call: 41, ReadTimer: 19, ReadICount: 24, Other: 18}
}

// Total returns the full synchronous cost of logging one sample.
func (c LogCosts) Total() uint32 { return c.Call + c.ReadTimer + c.ReadICount + c.Other }

// Config assembles a Tracker.
type Config struct {
	Node  NodeID
	Clock Clock
	Meter Meter
	Cost  CostAccount // optional; nil disables cost accounting
	Sink  Sink
	Costs LogCosts // zero value means DefaultLogCosts
}

// Tracker is the per-node glue component between instrumented device
// drivers, the OS, and the log. Every real power-state or activity change
// flows through it; it stamps the event with time and cumulative energy and
// hands it to the sink.
type Tracker struct {
	node  NodeID
	clock Clock
	meter Meter
	cost  CostAccount
	sink  Sink
	costs LogCosts

	enabled bool

	// Statistics, used by the Table 4 experiment.
	entries     uint64
	dropped     uint64
	costCycles  uint64
	psListeners []PowerStateListener
	actTrack    []ActivityTrackListener
}

// NewTracker builds a tracker from cfg. Clock, Meter and Sink are required.
func NewTracker(cfg Config) *Tracker {
	if cfg.Clock == nil || cfg.Meter == nil || cfg.Sink == nil {
		panic("core: Tracker requires Clock, Meter and Sink")
	}
	costs := cfg.Costs
	if costs == (LogCosts{}) {
		costs = DefaultLogCosts()
	}
	return &Tracker{
		node:    cfg.Node,
		clock:   cfg.Clock,
		meter:   cfg.Meter,
		cost:    cfg.Cost,
		sink:    cfg.Sink,
		costs:   costs,
		enabled: true,
	}
}

// Node returns the node this tracker instruments.
func (t *Tracker) Node() NodeID { return t.node }

// IdleLabel returns this node's idle activity label.
func (t *Tracker) IdleLabel() Label { return MkLabel(t.node, ActIdle) }

// SetEnabled switches logging on or off. Device state is still tracked while
// disabled so re-enabling resumes with correct current values; only the log
// stream (and its cost) stops.
func (t *Tracker) SetEnabled(v bool) { t.enabled = v }

// Enabled reports whether entries are currently being recorded.
func (t *Tracker) Enabled() bool { return t.enabled }

// Entries returns how many entries were recorded.
func (t *Tracker) Entries() uint64 { return t.entries }

// Dropped returns how many entries the sink rejected (buffer full).
func (t *Tracker) Dropped() uint64 { return t.dropped }

// CostCycles returns the cumulative CPU cycles charged for synchronous
// logging, i.e. entries * 102 with the default cost model.
func (t *Tracker) CostCycles() uint64 { return t.costCycles }

// Log records one event of the given type. It is the single funnel used by
// PowerStateVar and the activity devices.
func (t *Tracker) Log(typ EntryType, res ResourceID, val uint16) {
	if !t.enabled {
		return
	}
	e := Entry{
		Type: typ,
		Res:  res,
		Time: t.clock.NowMicros(),
		IC:   t.meter.ReadPulses(),
		Val:  val,
	}
	if t.sink.Record(e) {
		t.entries++
	} else {
		t.dropped++
	}
	total := t.costs.Total()
	t.costCycles += uint64(total)
	if t.cost != nil {
		t.cost.ChargeCycles(total)
	}
}

// Marker logs a free-form annotation.
func (t *Tracker) Marker(res ResourceID, val uint16) {
	t.Log(EntryMarker, res, val)
}

// ListenPowerStates registers l to observe every real power-state change on
// this node (the PowerStateTrack interface of Figure 3).
func (t *Tracker) ListenPowerStates(l PowerStateListener) {
	t.psListeners = append(t.psListeners, l)
}

// ListenActivities registers l to observe activity changes (the
// SingleActivityTrack / MultiActivityTrack interfaces of Figure 9).
func (t *Tracker) ListenActivities(l ActivityTrackListener) {
	t.actTrack = append(t.actTrack, l)
}

func (t *Tracker) notifyPowerState(res ResourceID, old, now PowerState) {
	for _, l := range t.psListeners {
		l.PowerStateChanged(res, old, now)
	}
}

func (t *Tracker) notifyActivity(typ EntryType, res ResourceID, l Label) {
	for _, x := range t.actTrack {
		x.ActivityChanged(typ, res, l)
	}
}

// PowerStateListener observes real power-state changes in real time
// (PowerStateTrack in the paper). The board model uses it to update the
// aggregate current draw, which in turn drives the energy meter.
type PowerStateListener interface {
	PowerStateChanged(res ResourceID, old, now PowerState)
}

// ActivityTrackListener observes activity transitions on devices. Accounting
// modules and tests subscribe to it.
type ActivityTrackListener interface {
	ActivityChanged(typ EntryType, res ResourceID, l Label)
}
