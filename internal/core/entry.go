package core

import "fmt"

// EntryType discriminates the kinds of events Quanto logs. The paper's
// entry_t uses a type byte with a union holding either an activity label or
// a power state; the reproduction keeps the exact 12-byte layout.
type EntryType uint8

// Log entry types.
const (
	// EntryPowerState records that resource Res changed to power state Val.
	EntryPowerState EntryType = 1
	// EntryActivitySet records that single-activity resource Res is now
	// working on behalf of the activity labeled Val.
	EntryActivitySet EntryType = 2
	// EntryActivityBind records that the resource's previous activity (a
	// proxy) should be charged to the activity labeled Val, and that the
	// resource is now working for Val.
	EntryActivityBind EntryType = 3
	// EntryActivityAdd records that multi-activity resource Res added the
	// activity labeled Val to its current set.
	EntryActivityAdd EntryType = 4
	// EntryActivityRemove records that multi-activity resource Res removed
	// the activity labeled Val from its current set.
	EntryActivityRemove EntryType = 5
	// EntryMarker is a free-form annotation used by applications and the
	// experiment harnesses (value is application-defined). Markers take part
	// in interval splitting but not in attribution.
	EntryMarker EntryType = 6
)

// String returns a short mnemonic for the entry type.
func (t EntryType) String() string {
	switch t {
	case EntryPowerState:
		return "ps"
	case EntryActivitySet:
		return "act"
	case EntryActivityBind:
		return "bind"
	case EntryActivityAdd:
		return "add"
	case EntryActivityRemove:
		return "rem"
	case EntryMarker:
		return "mark"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Entry is one log record. Encoded (internal/trace) it occupies exactly 12
// bytes, matching Figure 17 of the paper:
//
//	typedef struct entry_t {
//	    uint8_t  type;   // type of the entry
//	    uint8_t  res_id; // hardware resource for entry
//	    uint32_t time;   // local time of the node
//	    uint32_t ic;     // icount: cumulative energy
//	    union { uint16_t act; uint16_t powerstate; };
//	} entry_t;
type Entry struct {
	Type EntryType
	Res  ResourceID
	Time uint32 // node-local time in microseconds (wraps after ~71.6 min)
	IC   uint32 // cumulative iCount pulses at the time of the event
	Val  uint16 // activity label or power state, per Type
}

// EntrySize is the encoded size of an Entry in bytes (Table 4: "Sample Size
// 12 bytes").
const EntrySize = 12

// Label interprets Val as an activity label. Only meaningful for the
// activity entry types.
func (e Entry) Label() Label { return Label(e.Val) }

// State interprets Val as a power state. Only meaningful for
// EntryPowerState.
func (e Entry) State() PowerState { return PowerState(e.Val) }

// String renders the entry for debugging.
func (e Entry) String() string {
	return fmt.Sprintf("{%s res=%d t=%dus ic=%d val=%d}", e.Type, e.Res, e.Time, e.IC, e.Val)
}
