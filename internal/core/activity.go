package core

import "fmt"

// SingleActivityDevice represents a hardware component that can only work on
// behalf of one activity at a time — the CPU, the transmit path of the
// radio, an LED (Figure 5 of the paper).
type SingleActivityDevice struct {
	res ResourceID
	cur Label
	trk *Tracker
}

// NewSingleActivityDevice registers a single-activity resource, initially
// idle. The initial label is logged.
func NewSingleActivityDevice(t *Tracker, res ResourceID) *SingleActivityDevice {
	d := &SingleActivityDevice{res: res, cur: t.IdleLabel(), trk: t}
	t.Log(EntryActivitySet, res, uint16(d.cur))
	return d
}

// Resource returns the device's resource id.
func (d *SingleActivityDevice) Resource() ResourceID { return d.res }

// Get returns the current activity label.
func (d *SingleActivityDevice) Get() Label { return d.cur }

// Set paints the device with newActivity. Idempotent sets do not log.
func (d *SingleActivityDevice) Set(newActivity Label) {
	if newActivity == d.cur {
		return
	}
	d.cur = newActivity
	d.trk.Log(EntryActivitySet, d.res, uint16(newActivity))
	d.trk.notifyActivity(EntryActivitySet, d.res, newActivity)
}

// SetIdle paints the device with the node's idle label.
func (d *SingleActivityDevice) SetIdle() { d.Set(d.trk.IdleLabel()) }

// Bind sets the current activity and indicates that the previous activity's
// resource usage — typically a proxy activity covering an interrupt — should
// be charged to the new one. The offline accounting walks the log backwards
// from a bind entry and reassigns the proxy's usage.
func (d *SingleActivityDevice) Bind(newActivity Label) {
	d.cur = newActivity
	d.trk.Log(EntryActivityBind, d.res, uint16(newActivity))
	d.trk.notifyActivity(EntryActivityBind, d.res, newActivity)
}

// MultiActivityDevice represents a hardware component that can work for
// several activities simultaneously — hardware timers, or the radio receive
// circuitry while listening (Figure 6 of the paper).
type MultiActivityDevice struct {
	res ResourceID
	// set holds the current labels as a small slice: the set has a handful
	// of entries at most, so a linear scan beats a map and membership churn
	// (radio listen/unlisten on every node) reuses the slice's capacity
	// instead of allocating.
	set []Label
	trk *Tracker
}

// NewMultiActivityDevice registers a multi-activity resource with an empty
// activity set.
func NewMultiActivityDevice(t *Tracker, res ResourceID) *MultiActivityDevice {
	return &MultiActivityDevice{res: res, set: make([]Label, 0, 4), trk: t}
}

// index returns the position of activity in the set, or -1.
func (d *MultiActivityDevice) index(activity Label) int {
	for i, l := range d.set {
		if l == activity {
			return i
		}
	}
	return -1
}

// Resource returns the device's resource id.
func (d *MultiActivityDevice) Resource() ResourceID { return d.res }

// Add inserts activity into the device's current set. Adding a label that is
// already present is an error, mirroring the error_t return in the paper's
// interface.
func (d *MultiActivityDevice) Add(activity Label) error {
	if d.index(activity) >= 0 {
		return fmt.Errorf("core: activity %v already on resource %d", activity, d.res)
	}
	d.set = append(d.set, activity)
	d.trk.Log(EntryActivityAdd, d.res, uint16(activity))
	d.trk.notifyActivity(EntryActivityAdd, d.res, activity)
	return nil
}

// Remove deletes activity from the device's current set.
func (d *MultiActivityDevice) Remove(activity Label) error {
	i := d.index(activity)
	if i < 0 {
		return fmt.Errorf("core: activity %v not on resource %d", activity, d.res)
	}
	d.set = append(d.set[:i], d.set[i+1:]...)
	d.trk.Log(EntryActivityRemove, d.res, uint16(activity))
	d.trk.notifyActivity(EntryActivityRemove, d.res, activity)
	return nil
}

// Has reports whether activity is in the current set.
func (d *MultiActivityDevice) Has(activity Label) bool {
	return d.index(activity) >= 0
}

// Count returns the size of the current activity set.
func (d *MultiActivityDevice) Count() int { return len(d.set) }
