package core

// BatchSink is the batched extension of Sink: RecordBatch consumes a whole
// slice of entries in one call and returns how many were kept. It is the
// streaming pipeline's fast path — the per-entry interface dispatch and
// bounds checks of Record are paid once per batch instead of once per entry.
// Implementations must not retain the batch slice after returning.
type BatchSink interface {
	Sink
	RecordBatch(entries []Entry) int
}

// RecordAll feeds a batch to any sink, using the batched path when the sink
// implements BatchSink and falling back to entry-at-a-time Record otherwise.
// It is the compatibility adapter between the streaming pipeline and
// pre-existing single-entry sinks. Returns the number of entries kept.
func RecordAll(s Sink, entries []Entry) int {
	if bs, ok := s.(BatchSink); ok {
		return bs.RecordBatch(entries)
	}
	kept := 0
	for _, e := range entries {
		if s.Record(e) {
			kept++
		}
	}
	return kept
}

// RAMBuffer is the fixed-size log store used on the mote: "a fixed buffer in
// RAM that holds 800 log entries" (Section 4.4). When full, Record reports
// false and the entry is dropped; the host-side harness either stops the run
// there or drains the buffer through a back channel.
type RAMBuffer struct {
	entries []Entry
	cap     int
}

// DefaultRAMBufferEntries is the paper's buffer size (Table 4).
const DefaultRAMBufferEntries = 800

// NewRAMBuffer returns a buffer holding at most capEntries entries;
// capEntries <= 0 selects the paper's default of 800.
func NewRAMBuffer(capEntries int) *RAMBuffer {
	if capEntries <= 0 {
		capEntries = DefaultRAMBufferEntries
	}
	return &RAMBuffer{entries: make([]Entry, 0, capEntries), cap: capEntries}
}

// Record stores e unless the buffer is full.
func (b *RAMBuffer) Record(e Entry) bool {
	if len(b.entries) >= b.cap {
		return false
	}
	b.entries = append(b.entries, e)
	return true
}

// RecordBatch implements BatchSink: it stores as many entries as fit and
// drops the rest, returning the number kept.
func (b *RAMBuffer) RecordBatch(entries []Entry) int {
	room := b.cap - len(b.entries)
	if room <= 0 {
		return 0
	}
	if room > len(entries) {
		room = len(entries)
	}
	b.entries = append(b.entries, entries[:room]...)
	return room
}

// Len returns the number of stored entries.
func (b *RAMBuffer) Len() int { return len(b.entries) }

// Full reports whether the buffer has no room left.
func (b *RAMBuffer) Full() bool { return len(b.entries) >= b.cap }

// Bytes returns the RAM the stored entries occupy (12 bytes each).
func (b *RAMBuffer) Bytes() int { return len(b.entries) * EntrySize }

// Drain returns the buffered entries and resets the buffer, modeling the
// periodic dump to the serial port or radio.
func (b *RAMBuffer) Drain() []Entry {
	out := b.entries
	b.entries = make([]Entry, 0, b.cap)
	return out
}

// DrainN removes and returns the oldest n buffered entries (everything, if
// fewer are buffered), modeling a bounded dump whose cost was budgeted
// before later entries arrived.
func (b *RAMBuffer) DrainN(n int) []Entry {
	if n >= len(b.entries) {
		return b.Drain()
	}
	out := make([]Entry, n)
	copy(out, b.entries[:n])
	b.entries = append(b.entries[:0], b.entries[n:]...)
	return out
}

// Snapshot returns a copy of the buffered entries without draining.
func (b *RAMBuffer) Snapshot() []Entry {
	out := make([]Entry, len(b.entries))
	copy(out, b.entries)
	return out
}

// Collector is an unbounded sink used by the experiment harnesses: it stands
// in for the continuous-logging back channel (the external synchronous
// serial interface of Section 4.4) that streams entries off the node.
type Collector struct {
	Entries []Entry
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends e. It never rejects an entry.
func (c *Collector) Record(e Entry) bool {
	c.Entries = append(c.Entries, e)
	return true
}

// RecordBatch implements BatchSink with a single append.
func (c *Collector) RecordBatch(entries []Entry) int {
	c.Entries = append(c.Entries, entries...)
	return len(entries)
}

// Len returns the number of collected entries.
func (c *Collector) Len() int { return len(c.Entries) }

// Tee duplicates entries to several sinks; Record reports whether all sinks
// kept the entry. It lets a run keep the realistic 800-entry RAM buffer
// while the harness still sees the complete stream — and, on the streaming
// pipeline, lets one event stream feed the log, the online accountant, and
// a counting or ring sink simultaneously without copying the batch.
type Tee struct {
	Sinks []Sink
}

// NewTee fans one stream out to several sinks.
func NewTee(sinks ...Sink) *Tee { return &Tee{Sinks: sinks} }

// Record forwards e to every sink.
func (t *Tee) Record(e Entry) bool {
	ok := true
	for _, s := range t.Sinks {
		if !s.Record(e) {
			ok = false
		}
	}
	return ok
}

// RecordBatch hands the same batch slice to every sink (sinks must not
// retain it), so fan-out costs no extra copies. It returns the minimum kept
// across sinks: the batch is only fully kept if every sink kept all of it.
func (t *Tee) RecordBatch(entries []Entry) int {
	kept := len(entries)
	for _, s := range t.Sinks {
		if n := RecordAll(s, entries); n < kept {
			kept = n
		}
	}
	return kept
}

// CounterSink is the "counting instead of logging" alternative discussed in
// Section 5.1: rather than storing every event it folds the stream into
// fixed per-key counters, making memory overhead constant. It implements the
// event-consumption side only; time/energy accumulation per activity is done
// by the online accounting in internal/analysis. Here it demonstrates the
// RAM trade-off for the ablation benchmark.
type CounterSink struct {
	PerType map[EntryType]uint64
	PerRes  map[ResourceID]uint64
}

// NewCounterSink returns an empty counter set.
func NewCounterSink() *CounterSink {
	return &CounterSink{
		PerType: make(map[EntryType]uint64),
		PerRes:  make(map[ResourceID]uint64),
	}
}

// Record tallies e without storing it.
func (c *CounterSink) Record(e Entry) bool {
	c.PerType[e.Type]++
	c.PerRes[e.Res]++
	return true
}

// RecordBatch tallies a whole batch.
func (c *CounterSink) RecordBatch(entries []Entry) int {
	for _, e := range entries {
		c.PerType[e.Type]++
		c.PerRes[e.Res]++
	}
	return len(entries)
}
