package core

// PowerStateVar implements the paper's PowerState interface (Figure 1) for
// one energy sink. Device drivers signal hardware power-state changes
// through Set/SetBits; the generic component deduplicates idempotent calls
// ("multiple calls ... signaling the same state are idempotent") and only
// logs and notifies on real changes.
type PowerStateVar struct {
	res ResourceID
	cur PowerState
	trk *Tracker
}

// NewPowerStateVar registers an energy sink with the tracker, starting in
// state initial. The initial state is logged so offline analysis knows the
// starting vector.
func NewPowerStateVar(t *Tracker, res ResourceID, initial PowerState) *PowerStateVar {
	p := &PowerStateVar{res: res, cur: initial, trk: t}
	t.Log(EntryPowerState, res, uint16(initial))
	return p
}

// Resource returns the sink this variable shadows.
func (p *PowerStateVar) Resource() ResourceID { return p.res }

// State returns the current power state.
func (p *PowerStateVar) State() PowerState { return p.cur }

// Set changes the power state to value. Idempotent sets do not log or
// notify.
func (p *PowerStateVar) Set(value PowerState) {
	if value == p.cur {
		return
	}
	old := p.cur
	p.cur = value
	p.trk.Log(EntryPowerState, p.res, uint16(value))
	p.trk.notifyPowerState(p.res, old, value)
}

// SetBits sets the bits selected by mask (shifted left by offset) to value,
// leaving the rest of the state untouched. Drivers for devices whose power
// state is a composite of independent fields use this form.
func (p *PowerStateVar) SetBits(mask PowerState, offset uint, value PowerState) {
	next := (p.cur &^ (mask << offset)) | ((value & mask) << offset)
	p.Set(next)
}
