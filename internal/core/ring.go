package core

// RingBuffer is a fixed-capacity sink that keeps the most recent entries,
// overwriting the oldest when full — the "flight recorder" variant of the
// mote's RAM buffer. Where RAMBuffer models the paper's stop-when-full log
// (Section 4.4), the ring models an always-on deployment that can afford to
// lose history but never the present: the scope of a crash or anomaly is
// reconstructed from whatever window is still in RAM. Record never rejects
// an entry, so trackers wired to a ring observe no drops.
type RingBuffer struct {
	entries []Entry
	cap     int
	next    int    // index of the slot the next entry lands in
	wrapped bool   // true once the ring has overwritten at least one entry
	evicted uint64 // total entries overwritten
}

// NewRingBuffer returns a ring holding at most capEntries entries;
// capEntries <= 0 selects the paper's 800-entry default.
func NewRingBuffer(capEntries int) *RingBuffer {
	if capEntries <= 0 {
		capEntries = DefaultRAMBufferEntries
	}
	return &RingBuffer{entries: make([]Entry, 0, capEntries), cap: capEntries}
}

// Record stores e, evicting the oldest entry if the ring is full.
func (r *RingBuffer) Record(e Entry) bool {
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, e)
		r.next = len(r.entries) % r.cap
		return true
	}
	r.entries[r.next] = e
	r.next = (r.next + 1) % r.cap
	r.wrapped = true
	r.evicted++
	return true
}

// RecordBatch implements BatchSink. A batch at least as large as the ring
// replaces its entire contents with the batch's tail in one copy.
func (r *RingBuffer) RecordBatch(entries []Entry) int {
	n := len(entries)
	if n >= r.cap {
		r.evicted += uint64(len(r.entries)) + uint64(n-r.cap)
		r.entries = r.entries[:r.cap]
		copy(r.entries, entries[n-r.cap:])
		r.next = 0
		r.wrapped = true
		return n
	}
	for _, e := range entries {
		r.Record(e)
	}
	return n
}

// Len returns the number of entries currently held.
func (r *RingBuffer) Len() int { return len(r.entries) }

// Evicted returns how many entries have been overwritten so far.
func (r *RingBuffer) Evicted() uint64 { return r.evicted }

// Snapshot returns the held entries oldest-first.
func (r *RingBuffer) Snapshot() []Entry {
	out := make([]Entry, 0, len(r.entries))
	if r.wrapped {
		out = append(out, r.entries[r.next:]...)
		out = append(out, r.entries[:r.next]...)
		return out
	}
	return append(out, r.entries...)
}
