package kernel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// testNode builds a kernel with a collector-backed tracker and a fake meter.
func testNode(t *testing.T, opts Options) (*sim.Simulator, *Kernel, *core.Collector) {
	t.Helper()
	s := sim.New()
	dict := core.NewDictionary()
	k := New(s, 1, dict, opts, 7)
	sink := core.NewCollector()
	trk := core.NewTracker(core.Config{
		Node:  1,
		Clock: k,
		Meter: countingMeter{},
		Cost:  k,
		Sink:  sink,
	})
	k.Attach(trk)
	return s, k, sink
}

type countingMeter struct{}

func (countingMeter) ReadPulses() uint32 { return 0 }

func TestBootRunsInHandlerContext(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	ran := false
	k.Boot(func() {
		ran = true
		if !k.Running() {
			t.Error("boot should run in handler context")
		}
		k.Spend(100)
	})
	s.Run(units.Second)
	if !ran {
		t.Fatal("boot did not run")
	}
	if k.Running() {
		t.Error("kernel still running after boot")
	}
}

func TestCPUSleepsAfterWork(t *testing.T) {
	s, k, sink := testNode(t, DefaultOptions())
	k.Boot(func() { k.Spend(500) })
	s.Run(units.Second)
	// The last CPU power-state entry must be the sleep state.
	var last core.Entry
	for _, e := range sink.Entries {
		if e.Type == core.EntryPowerState && e.Res == power.ResCPU {
			last = e
		}
	}
	if last.State() != power.CPUSleep {
		t.Errorf("final CPU state = %v, want LPM3", last.State())
	}
	if k.CPUState.State() != power.CPUSleep {
		t.Errorf("CPU state var = %v", k.CPUState.State())
	}
}

func TestPostSavesAndRestoresActivity(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	act := k.DefineActivity("App")
	var taskLabel core.Label
	k.Boot(func() {
		k.CPUAct.Set(act)
		k.Post(func() {
			taskLabel = k.CPUAct.Get()
		})
		k.CPUAct.SetIdle()
	})
	s.Run(units.Second)
	if taskLabel != act {
		t.Errorf("task ran under %v, want %v (scheduler must restore the posting activity)", taskLabel, act)
	}
}

func TestPostFIFOOrder(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	var order []int
	k.Boot(func() {
		for i := 0; i < 5; i++ {
			i := i
			k.Post(func() { order = append(order, i) })
		}
	})
	s.Run(units.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("task order = %v, want FIFO", order)
		}
	}
}

func TestPostFromIdleContextWakesCPU(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	ran := false
	// Post directly from outside any handler (e.g. assembly code).
	k.PostLabeled(k.IdleLabel(), func() { ran = true })
	s.Run(units.Second)
	if !ran {
		t.Error("posted task never ran")
	}
}

func TestTimerOneShot(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	var firedAt units.Ticks
	k.Boot(func() {
		tm := k.NewTimer(func() { firedAt = k.NowTicks() })
		tm.StartOneShot(10 * units.Millisecond)
	})
	s.Run(units.Second)
	// The callback runs ~1 ms after the hardware deadline: interrupt
	// dispatch, activity bookkeeping, and the 102-cycle log writes all
	// consume CPU time first.
	if firedAt < 10*units.Millisecond || firedAt > 12*units.Millisecond {
		t.Errorf("fired at %v, want 10-12ms", firedAt)
	}
}

func TestTimerPeriodicRate(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	count := 0
	k.Boot(func() {
		tm := k.NewTimer(func() { count++ })
		tm.StartPeriodic(100 * units.Millisecond)
	})
	s.Run(units.Second)
	if count < 9 || count > 10 {
		t.Errorf("fired %d times in 1 s at 100 ms, want 9-10", count)
	}
}

func TestTimerStop(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	count := 0
	var tm *Timer
	k.Boot(func() {
		tm = k.NewTimer(func() {
			count++
			if count == 3 {
				tm.Stop()
			}
		})
		tm.StartPeriodic(50 * units.Millisecond)
	})
	s.Run(units.Second)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if tm.Running() {
		t.Error("timer should be stopped")
	}
}

func TestTimerCarriesActivity(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	act := k.DefineActivity("Red")
	var fireLabel core.Label
	k.Boot(func() {
		tm := k.NewTimer(func() { fireLabel = k.CPUAct.Get() })
		k.CPUAct.Set(act)
		tm.StartOneShot(5 * units.Millisecond)
		k.CPUAct.SetIdle()
	})
	s.Run(units.Second)
	if fireLabel != act {
		t.Errorf("timer fired under %v, want %v", fireLabel, act)
	}
}

func TestMultipleTimersShareCompare(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	var fires []string
	k.Boot(func() {
		a := k.NewTimer(func() { fires = append(fires, "a") })
		b := k.NewTimer(func() { fires = append(fires, "b") })
		a.StartPeriodic(30 * units.Millisecond)
		b.StartPeriodic(70 * units.Millisecond)
	})
	s.Run(210 * units.Millisecond)
	// a at 30,60,90,120,150,180,210(±); b at 70,140,210(±).
	na, nb := 0, 0
	for _, f := range fires {
		if f == "a" {
			na++
		} else {
			nb++
		}
	}
	if na < 6 || nb < 2 {
		t.Errorf("fires: a=%d b=%d (%v)", na, nb, fires)
	}
}

func TestIRQProxyPaintsCPU(t *testing.T) {
	s, k, sink := testNode(t, DefaultOptions())
	irq := k.NewIRQ("int_TEST")
	var seen core.Label
	irq.Raise(10*units.Millisecond, func() {
		seen = k.CPUAct.Get()
	})
	s.Run(units.Second)
	if seen != irq.Proxy {
		t.Errorf("handler ran under %v, want proxy %v", seen, irq.Proxy)
	}
	// The proxy label must be registered as a proxy in the dictionary.
	if !k.Dict.IsProxy(irq.Proxy) {
		t.Error("IRQ proxy not marked in dictionary")
	}
	// And an activity entry for the proxy must be in the log.
	found := false
	for _, e := range sink.Entries {
		if e.Type == core.EntryActivitySet && core.Label(e.Val) == irq.Proxy {
			found = true
		}
	}
	if !found {
		t.Error("no activity entry for the proxy")
	}
}

func TestIRQDeferredWhileBusy(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	irq := k.NewIRQ("int_TEST")
	var irqAt units.Ticks
	k.Boot(func() {
		// Busy from boot (t~0) for 50 ms of CPU time.
		irq.Raise(10*units.Millisecond, func() { irqAt = k.NowTicks() })
		k.Spend(units.Cycles(50 * units.Millisecond))
	})
	s.Run(units.Second)
	if irqAt < 50*units.Millisecond {
		t.Errorf("interrupt ran at %v, inside the busy window (non-reentrancy violated)", irqAt)
	}
}

func TestSpendOutsideHandlerPanics(t *testing.T) {
	_, k, _ := testNode(t, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Error("Spend outside handler should panic")
		}
	}()
	k.Spend(10)
}

func TestNowTicksMonotonic(t *testing.T) {
	s, k, sink := testNode(t, DefaultOptions())
	k.Boot(func() {
		tm := k.NewTimer(func() { k.Spend(2000) })
		tm.StartPeriodic(10 * units.Millisecond)
	})
	s.Run(300 * units.Millisecond)
	var prev uint32
	for i, e := range sink.Entries {
		if e.Time < prev {
			t.Fatalf("entry %d time %d < previous %d", i, e.Time, prev)
		}
		prev = e.Time
	}
}

func TestDCOCalibrationRate(t *testing.T) {
	opts := DefaultOptions()
	opts.CalibrateDCO = true
	s, k, sink := testNode(t, opts)
	k.Boot(func() {})
	s.Run(2 * units.Second)
	var target core.Label
	for l, name := range k.Dict.Activities {
		if name == "int_TIMERA1" {
			target = l
		}
	}
	count := 0
	for _, e := range sink.Entries {
		if e.Type == core.EntryActivitySet && core.Label(e.Val) == target {
			count++
		}
	}
	if count < 31 || count > 33 {
		t.Errorf("DCO calibration fired %d times in 2 s, want ~32 (16 Hz)", count)
	}
}

func TestArbiterSerializesAndTransfersLabels(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	dev := core.NewSingleActivityDevice(k.Trk, power.ResSensor)
	arb := k.NewArbiter(dev)
	actA := k.DefineActivity("A")
	actB := k.DefineActivity("B")

	var order []string
	var devDuringA, devDuringB core.Label
	k.Boot(func() {
		k.CPUAct.Set(actA)
		arb.Request(func() {
			order = append(order, "A")
			devDuringA = dev.Get()
			// Hold the resource; B must wait.
			tm := k.NewTimer(func() { arb.Release() })
			tm.StartOneShot(20 * units.Millisecond)
		})
		k.CPUAct.Set(actB)
		arb.Request(func() {
			order = append(order, "B")
			devDuringB = dev.Get()
			arb.Release()
		})
		k.CPUAct.SetIdle()
	})
	s.Run(units.Second)
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("grant order = %v", order)
	}
	if devDuringA != actA || devDuringB != actB {
		t.Errorf("device labels = %v/%v, want %v/%v", devDuringA, devDuringB, actA, actB)
	}
	if arb.Busy() {
		t.Error("arbiter should be free at the end")
	}
	if arb.Grants() != 2 {
		t.Errorf("grants = %d", arb.Grants())
	}
}

func TestArbiterReleaseWhileFreePanics(t *testing.T) {
	_, k, _ := testNode(t, DefaultOptions())
	arb := k.NewArbiter(nil)
	defer func() {
		if recover() == nil {
			t.Error("release while free should panic")
		}
	}()
	arb.Release()
}

func TestChargeCyclesExtendsBusyWindow(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	var before, after units.Ticks
	k.Boot(func() {
		before = k.NowTicks()
		k.ChargeCycles(102)
		after = k.NowTicks()
	})
	s.Run(units.Second)
	if after-before != 102 {
		t.Errorf("charge advanced clock by %v, want 102", after-before)
	}
}

func TestDefineActivityNamesAndIDs(t *testing.T) {
	_, k, _ := testNode(t, DefaultOptions())
	a := k.DefineActivity("First")
	b := k.DefineActivity("Second")
	if a == b {
		t.Error("activities must be distinct")
	}
	if a.Origin() != 1 || b.Origin() != 1 {
		t.Error("origin must be the node id")
	}
	if k.Dict.LabelName(a) != "1:First" {
		t.Errorf("name = %q", k.Dict.LabelName(a))
	}
}
