// Package kernel implements a TinyOS-like mote operating system on top of
// the discrete-event simulator: run-to-completion tasks, non-reentrant
// interrupts, virtual timers multiplexed on a hardware compare timer, and a
// resource arbiter.
//
// It is instrumented exactly where the paper instruments TinyOS
// (Section 3.3 / Table 5):
//
//   - the scheduler saves the current CPU activity when a task is posted and
//     restores it before the task runs;
//   - every interrupt source owns a static proxy activity; dispatch paints
//     the CPU with the proxy until the handler can bind the real activity;
//   - the virtual timer subsystem saves and restores the activity of each
//     scheduled timer;
//   - the arbiter transfers activity labels to and from the device it
//     guards.
//
// Execution/time model: a handler (interrupt or task batch) starts at the
// simulator's current time and advances a node-local clock as code charges
// CPU cycles with Spend. Power-state and activity changes are logged at that
// local clock, so events within one wake-up appear in sequence with real
// durations, exactly as in the paper's fine-grained timelines (Figure 11b).
// The CPU is marked ACTIVE for the whole wake window and interrupts that
// arrive while it is busy are deferred to the end of the window
// (TinyOS on the MSP430 has no reentrant interrupts).
package kernel

import (
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// Costs models the cycle cost of kernel code paths, at 1 MHz (1 cycle =
// 1 us). The defaults are chosen so the Blink experiment lands near the
// paper's measured CPU duty cycle of 0.178% with logging responsible for
// ~71% of active CPU time (Table 4).
type Costs struct {
	IRQEnter       units.Cycles // interrupt prologue/epilogue
	TaskDispatch   units.Cycles // scheduler pop + jump
	VTimerDispatch units.Cycles // virtual timer bookkeeping per hardware fire
	TimerFire      units.Cycles // per expired virtual timer
	ArbiterGrant   units.Cycles // arbiter queue handling
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		IRQEnter:       90,
		TaskDispatch:   55,
		VTimerDispatch: 260,
		TimerFire:      180,
		ArbiterGrant:   60,
	}
}

// Options configures a Kernel.
type Options struct {
	Costs Costs
	// SleepState is the low-power mode the CPU drops into when idle
	// (default LPM3).
	SleepState core.PowerState
	// CalibrateDCO enables the digital-oscillator calibration interrupt
	// that fires 16 times per second whether or not anybody needs it — the
	// surprising behaviour Quanto exposed in Figure 15. TinyOS shipped with
	// it always on; here it defaults to off so the other experiments'
	// traces match the paper's logs, and the TimerBug case study re-enables
	// it to recreate the figure.
	CalibrateDCO bool
	// DCOCalibrationCost is the CPU cost of one calibration pass.
	DCOCalibrationCost units.Cycles
}

// DefaultOptions returns the standard TinyOS-like configuration.
func DefaultOptions() Options {
	return Options{
		Costs:              DefaultCosts(),
		SleepState:         power.CPUSleep,
		CalibrateDCO:       false,
		DCOCalibrationCost: 130,
	}
}

type task struct {
	fn    func()
	label core.Label
}

// Kernel is the operating system instance of one node.
type Kernel struct {
	Sim  *sim.Simulator
	Trk  *core.Tracker
	Dict *core.Dictionary

	// CPUState exposes the processor's power state (ACTIVE / LPMx).
	CPUState *core.PowerStateVar
	// CPUAct is the processor's current activity — the label source and
	// destination for all propagation.
	CPUAct *core.SingleActivityDevice

	node  core.NodeID
	opts  Options
	costs Costs

	localNow  units.Ticks
	busyUntil units.Ticks
	running   bool
	dead      bool

	// tasks is a drain-in-place queue: exit() walks it by index instead of
	// re-slicing, and resets it once empty so the backing array is reused.
	tasks    []task
	taskHead int

	// pumpFn / vtimerFn are the recurring scheduler callbacks, created once
	// so the idle-post and compare-timer hot paths never allocate closures.
	pumpFn   func()
	vtimerFn func()

	nextActID core.ActivityID

	timers       []*Timer
	compareEvent sim.Handle
	timerIRQ     *IRQ

	dcoIRQ *IRQ

	VTimerLabel core.Label

	rng *sim.RNG
}

// New creates a kernel for node id on simulator s. Call Attach with the
// node's tracker before scheduling any work.
func New(s *sim.Simulator, node core.NodeID, dict *core.Dictionary, opts Options, seed uint64) *Kernel {
	if opts.Costs == (Costs{}) {
		opts.Costs = DefaultCosts()
	}
	k := &Kernel{
		Sim:       s,
		Dict:      dict,
		node:      node,
		opts:      opts,
		costs:     opts.Costs,
		nextActID: 2, // 0 = Idle, 1 = VTimer
		// Pre-size the task queue: boot posts on a fresh kernel must not
		// each grow a tiny slice (the queue rarely holds more than a few
		// entries, and drain keeps the capacity).
		tasks: make([]task, 0, 8),
		rng:   sim.NewRNG(seed ^ (uint64(node) << 32)),
	}
	k.pumpFn = k.pumped
	k.vtimerFn = k.vtimerFired
	return k
}

// Node returns the node id.
func (k *Kernel) Node() core.NodeID { return k.node }

// RNG returns the node's deterministic random stream (used for backoff).
func (k *Kernel) RNG() *sim.RNG { return k.rng }

// Attach wires the kernel to the node's tracker, creating the CPU's power
// state and activity devices and starting the background DCO calibration
// timer if configured.
func (k *Kernel) Attach(trk *core.Tracker) {
	k.Trk = trk
	k.CPUState = core.NewPowerStateVar(trk, power.ResCPU, k.opts.SleepState)
	k.CPUAct = core.NewSingleActivityDevice(trk, power.ResCPU)
	k.VTimerLabel = core.MkLabel(k.node, core.ActVTimer)
	k.Dict.NameActivity(k.node, core.ActVTimer, "VTimer")
	k.Dict.NameActivity(k.node, core.ActIdle, "Idle")
	k.timerIRQ = k.NewIRQ("int_TIMERB0")
	if k.opts.CalibrateDCO {
		k.dcoIRQ = k.NewIRQ("int_TIMERA1")
		k.scheduleDCO(units.Ticks(62_500)) // 16 Hz
	}
}

func (k *Kernel) scheduleDCO(period units.Ticks) {
	var fire func()
	fire = func() {
		if k.dead {
			return // stop self-rescheduling once the node browned out
		}
		k.dispatchIRQ(k.dcoIRQ, func() {
			k.Spend(k.opts.DCOCalibrationCost)
		})
		k.Sim.After(period, sim.PrioIRQ, fire)
	}
	k.Sim.Schedule(k.Sim.Now()+period, sim.PrioIRQ, fire)
}

// DefineActivity allocates a fresh node-scoped activity and registers its
// name; this is the application API for creating resource principals.
func (k *Kernel) DefineActivity(name string) core.Label {
	id := k.nextActID
	k.nextActID++
	k.Dict.NameActivity(k.node, id, name)
	return core.MkLabel(k.node, id)
}

// IdleLabel returns this node's idle label.
func (k *Kernel) IdleLabel() core.Label { return core.MkLabel(k.node, core.ActIdle) }

// NowTicks returns the node's effective time: the local handler clock while
// code is running, otherwise the later of the global simulator time and the
// end of the last busy window (a handler's local clock may run slightly
// past the simulator event that started it; node-local time must never move
// backwards). The board and meter use it so that energy integration follows
// the CPU's fine-grained progress.
func (k *Kernel) NowTicks() units.Ticks {
	if k.running {
		return k.localNow
	}
	if now := k.Sim.Now(); now > k.busyUntil {
		return now
	}
	return k.busyUntil
}

// NowMicros implements core.Clock.
func (k *Kernel) NowMicros() uint32 { return uint32(k.NowTicks()) }

// ChargeCycles implements core.CostAccount: Quanto's own logging cost lands
// on the CPU just like application work. Charges arriving while the CPU is
// idle (boot-time instrumentation) are recorded by the tracker's statistics
// but do not create a phantom busy window.
func (k *Kernel) ChargeCycles(n uint32) {
	if k.running {
		k.localNow += units.Ticks(n)
	}
}

// Spend consumes n CPU cycles at the current point of execution. It is the
// simulation stand-in for actual computation.
func (k *Kernel) Spend(n units.Cycles) {
	if !k.running {
		panic("kernel: Spend outside handler context")
	}
	k.localNow += n.Duration()
}

// Running reports whether the CPU is currently executing a handler.
func (k *Kernel) Running() bool { return k.running }

// Kill permanently halts the kernel, modeling a brownout: the task queue is
// dropped, the pending hardware compare event is canceled, and every future
// interrupt dispatch, task post, or boot becomes a no-op. There is no
// resurrection — a depleted node stays dark for the rest of the run.
func (k *Kernel) Kill() {
	k.dead = true
	k.tasks = nil
	k.taskHead = 0
	if k.compareEvent.Scheduled() {
		k.Sim.Cancel(k.compareEvent)
	}
}

// Dead reports whether the kernel has been killed.
func (k *Kernel) Dead() bool { return k.dead }

// BusyUntil returns the end of the most recent (or current) busy window.
func (k *Kernel) BusyUntil() units.Ticks { return k.busyUntil }

// enter opens a CPU busy window at the current simulator time (or at the end
// of the previous window if it extends past it).
func (k *Kernel) enter() {
	t := k.Sim.Now()
	if k.busyUntil > t {
		t = k.busyUntil
	}
	k.localNow = t
	k.running = true
	k.CPUState.Set(power.CPUActive)
}

// exit drains the task queue, returns the CPU to its idle activity, and puts
// it to sleep.
func (k *Kernel) exit() {
	for k.taskHead < len(k.tasks) {
		t := k.tasks[k.taskHead]
		k.tasks[k.taskHead] = task{} // drop the closure reference
		k.taskHead++
		k.CPUAct.Set(t.label)
		k.Spend(k.costs.TaskDispatch)
		t.fn()
	}
	k.tasks = k.tasks[:0]
	k.taskHead = 0
	k.CPUAct.SetIdle()
	k.CPUState.Set(k.opts.SleepState)
	k.busyUntil = k.localNow
	k.running = false
}

// Post enqueues fn as a task, saving the current CPU activity so the
// scheduler can restore it when the task runs (the paper's scheduler
// instrumentation). Posting from idle context schedules a wake-up.
func (k *Kernel) Post(fn func()) {
	k.PostLabeled(k.CPUAct.Get(), fn)
}

// PostLabeled enqueues fn to run under an explicit activity label. Queue
// instrumentation (e.g. protocol forwarding queues) uses it to store and
// restore the activity associated with a queue entry.
func (k *Kernel) PostLabeled(label core.Label, fn func()) {
	if k.dead {
		return
	}
	k.tasks = append(k.tasks, task{fn: fn, label: label})
	if !k.running {
		k.pump()
	}
}

func (k *Kernel) pump() {
	at := k.Sim.Now()
	if k.busyUntil > at {
		at = k.busyUntil
	}
	k.Sim.Schedule(at, sim.PrioTask, k.pumpFn)
}

// pumped is the wake-up event body (k.pumpFn).
func (k *Kernel) pumped() {
	if k.running || k.dead {
		return // a concurrent wake-up already drained the queue
	}
	if k.Sim.Now() < k.busyUntil {
		k.pump()
		return
	}
	if k.taskHead >= len(k.tasks) {
		return
	}
	k.enter()
	k.exit()
}

// Boot runs fn at time zero in handler context under the idle activity; node
// assembly and application wiring happen inside it.
func (k *Kernel) Boot(fn func()) {
	k.Sim.Schedule(k.Sim.Now(), sim.PrioTask, func() {
		if k.dead {
			return
		}
		if k.running {
			panic("kernel: boot while running")
		}
		k.enter()
		fn()
		k.exit()
	})
}

// IRQ is one interrupt source with its statically assigned proxy activity
// (Section 3.3: "we statically assign to each interrupt handling routine a
// fixed proxy activity").
type IRQ struct {
	k     *Kernel
	Proxy core.Label
	Name  string

	// dispatch is the shared Raise callback: the handler rides along as the
	// event argument (func values are pointer-shaped, so boxing one into an
	// `any` does not allocate), keeping interrupt scheduling closure-free.
	dispatch func(any)
}

// NewIRQ defines an interrupt source; name appears in timelines
// ("int_TIMERB0", "pxy_RX", ...). The proxy label is registered as such in
// the dictionary so accounting knows bind entries may reassign its usage.
func (k *Kernel) NewIRQ(name string) *IRQ {
	label := k.DefineActivity(name)
	k.Dict.MarkProxy(label)
	irq := &IRQ{k: k, Proxy: label, Name: name}
	irq.dispatch = func(handler any) {
		irq.k.dispatchIRQ(irq, handler.(func()))
	}
	return irq
}

// Raise schedules the interrupt to fire at absolute time at. The returned
// event can be canceled while pending.
func (irq *IRQ) Raise(at units.Ticks, handler func()) sim.Handle {
	return irq.k.Sim.ScheduleArg(at, sim.PrioIRQ, irq.dispatch, handler)
}

// RaiseAfter schedules the interrupt d ticks from now.
func (irq *IRQ) RaiseAfter(d units.Ticks, handler func()) sim.Handle {
	return irq.Raise(irq.k.Sim.Now()+d, handler)
}

// dispatchIRQ runs an interrupt handler: wake the CPU if needed, paint it
// with the proxy activity, run the handler, restore the previous activity,
// then let the scheduler drain any tasks the handler posted.
func (k *Kernel) dispatchIRQ(irq *IRQ, handler func()) {
	if k.dead {
		return // an unpowered CPU takes no interrupts
	}
	if k.running || k.Sim.Now() < k.busyUntil {
		// CPU busy: the interrupt line stays asserted until the current
		// window closes (non-reentrant interrupts).
		at := k.busyUntil
		if t := k.Sim.Now(); t > at {
			at = t
		}
		k.Sim.ScheduleArg(at, sim.PrioIRQ, irq.dispatch, handler)
		return
	}
	k.enter()
	prev := k.CPUAct.Get()
	k.CPUAct.Set(irq.Proxy)
	k.Spend(k.costs.IRQEnter)
	handler()
	k.CPUAct.Set(prev)
	k.exit()
}
