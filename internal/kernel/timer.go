package kernel

import (
	"repro/internal/core"
	"repro/internal/units"
)

// Timer is a virtual timer multiplexed, with all others, onto one hardware
// compare register. Starting a timer captures the CPU's current activity;
// when the timer fires, the virtual timer dispatcher restores that activity
// before invoking the callback — the paper's "timers ... instrumented ... to
// automatically save and restore the CPU activity of scheduled timers".
type Timer struct {
	k        *Kernel
	fn       func()
	label    core.Label
	deadline units.Ticks
	period   units.Ticks
	periodic bool
	running  bool
}

// NewTimer creates a stopped timer that invokes fn on firing.
func (k *Kernel) NewTimer(fn func()) *Timer {
	t := &Timer{k: k, fn: fn}
	k.timers = append(k.timers, t)
	return t
}

// StartOneShot arms the timer to fire once, d from now.
func (t *Timer) StartOneShot(d units.Ticks) { t.start(d, 0) }

// StartPeriodic arms the timer to fire every period, first in period from
// now.
func (t *Timer) StartPeriodic(period units.Ticks) { t.start(period, period) }

// StartPeriodicAfter arms the timer to fire every period, first in d from
// now — a phase-shifted StartPeriodic, so many nodes can share a period
// without all firing on the same tick.
func (t *Timer) StartPeriodicAfter(d, period units.Ticks) { t.start(d, period) }

func (t *Timer) start(d, period units.Ticks) {
	if d <= 0 {
		d = 1
	}
	t.label = t.k.CPUAct.Get()
	if t.k.running && t.label == t.k.timerIRQ.Proxy {
		// Timers armed from inside the raw timer interrupt belong to the
		// virtual-timer activity, not to the proxy.
		t.label = t.k.VTimerLabel
	}
	t.deadline = t.k.NowTicks() + d
	t.period = period
	t.periodic = period > 0
	t.running = true
	t.k.scheduleCompare()
}

// Stop disarms the timer.
func (t *Timer) Stop() {
	t.running = false
	t.k.scheduleCompare()
}

// Running reports whether the timer is armed.
func (t *Timer) Running() bool { return t.running }

// Label returns the activity the timer will restore when it fires.
func (t *Timer) Label() core.Label { return t.label }

// scheduleCompare re-arms the hardware compare event for the earliest
// virtual timer deadline.
func (k *Kernel) scheduleCompare() {
	var next units.Ticks = -1
	for _, t := range k.timers {
		if t.running && (next < 0 || t.deadline < next) {
			next = t.deadline
		}
	}
	if next < 0 {
		if k.compareEvent.Scheduled() {
			k.Sim.Cancel(k.compareEvent)
		}
		return
	}
	if k.compareEvent.Scheduled() {
		if k.compareEvent.At() == next {
			return
		}
		k.Sim.Cancel(k.compareEvent)
	}
	if now := k.Sim.Now(); next < now {
		next = now
	}
	k.compareEvent = k.timerIRQ.Raise(next, k.vtimerFn)
}

// vtimerFired is the hardware timer interrupt handler: it runs under the
// int_TIMERB0 proxy, switches to the VTimer activity for dispatch
// bookkeeping, and yields to each expired timer's own activity in
// succession — the exact sequence visible in Figure 11(b).
func (k *Kernel) vtimerFired() {
	k.CPUAct.Set(k.VTimerLabel)
	k.Spend(k.costs.VTimerDispatch)
	now := k.Sim.Now()
	for _, t := range k.timers {
		if !t.running || t.deadline > now {
			continue
		}
		if t.periodic {
			for t.deadline <= now {
				t.deadline += t.period
			}
		} else {
			t.running = false
		}
		k.CPUAct.Set(t.label)
		k.Spend(k.costs.TimerFire)
		t.fn()
		k.CPUAct.Set(k.VTimerLabel)
	}
	k.scheduleCompare()
}

// Arbiter serializes access to a shared hardware resource (the paper's
// Arbiter abstraction from the ICEM driver architecture). It transfers the
// requester's activity label to the managed device on grant and back to
// idle on release.
type Arbiter struct {
	k      *Kernel
	dev    *core.SingleActivityDevice
	busy   bool
	owner  core.Label
	queue  []arbReq
	grants uint64
}

type arbReq struct {
	label   core.Label
	granted func()
}

// NewArbiter creates an arbiter guarding the device represented by dev (may
// be nil for a pure lock with no activity transfer).
func (k *Kernel) NewArbiter(dev *core.SingleActivityDevice) *Arbiter {
	return &Arbiter{k: k, dev: dev}
}

// Request asks for the resource; granted runs (as a task, under the
// requester's activity) once the resource is owned.
func (a *Arbiter) Request(granted func()) {
	label := a.k.CPUAct.Get()
	if a.busy {
		a.queue = append(a.queue, arbReq{label: label, granted: granted})
		return
	}
	a.grant(label, granted)
}

func (a *Arbiter) grant(label core.Label, granted func()) {
	a.busy = true
	a.owner = label
	a.grants++
	if a.dev != nil {
		a.dev.Set(label)
	}
	a.k.PostLabeled(label, func() {
		a.k.Spend(a.k.costs.ArbiterGrant)
		granted()
	})
}

// Release relinquishes the resource and grants it to the next requester, if
// any.
func (a *Arbiter) Release() {
	if !a.busy {
		panic("kernel: arbiter release while free")
	}
	a.busy = false
	if a.dev != nil {
		a.dev.SetIdle()
	}
	if len(a.queue) > 0 {
		next := a.queue[0]
		a.queue = a.queue[1:]
		a.grant(next.label, next.granted)
	}
}

// Busy reports whether the resource is held.
func (a *Arbiter) Busy() bool { return a.busy }

// Owner returns the activity holding the resource.
func (a *Arbiter) Owner() core.Label { return a.owner }

// Grants returns the number of grants issued.
func (a *Arbiter) Grants() uint64 { return a.grants }
