package kernel

import (
	"sort"

	"repro/internal/core"
	"repro/internal/units"
)

// ScheduleDrain implements core.Drainer: the drain work becomes a regular
// task under the self-accounting label, so Quanto's own logging shows up in
// the profile like any other activity.
func (k *Kernel) ScheduleDrain(label core.Label, cycles uint32, work func()) {
	k.PostLabeled(label, func() {
		k.Spend(units.Cycles(cycles))
		work()
	})
}

// SchedPolicy selects how the EnergyScheduler picks the next job.
type SchedPolicy int

// Scheduling policies.
const (
	// EqualTime is classic round-robin: jobs take turns regardless of what
	// they cost.
	EqualTime SchedPolicy = iota
	// EqualEnergy picks the job with the least accumulated energy — the
	// "equal-energy scheduling for threads, rather than equal-time
	// scheduling" the paper proposes once per-activity energy is known
	// (Section 5.3).
	EqualEnergy
)

// Job is one schedulable unit of application work with its activity label.
type Job struct {
	Label core.Label
	Run   func()

	runs     uint64
	energyUJ float64
}

// Runs returns how many times the job executed.
func (j *Job) Runs() uint64 { return j.runs }

// EnergyUJ returns the energy charged to the job so far.
func (j *Job) EnergyUJ() float64 { return j.energyUJ }

// EnergyScheduler dispatches a set of jobs on a fixed period under a
// selectable fairness policy. Energy feedback comes from Quanto: the caller
// charges each job's measured consumption back with Charge (typically from
// an analysis.OnlineAccountant fed by the node's tracker).
type EnergyScheduler struct {
	k      *Kernel
	policy SchedPolicy
	jobs   []*Job
	timer  *Timer
	next   int // round-robin cursor

	dispatches uint64
}

// NewEnergyScheduler creates a scheduler with the given policy.
func (k *Kernel) NewEnergyScheduler(policy SchedPolicy) *EnergyScheduler {
	return &EnergyScheduler{k: k, policy: policy}
}

// AddJob registers a job.
func (s *EnergyScheduler) AddJob(label core.Label, run func()) *Job {
	j := &Job{Label: label, Run: run}
	s.jobs = append(s.jobs, j)
	return j
}

// Charge records uj of measured energy against the job owning label.
func (s *EnergyScheduler) Charge(label core.Label, uj float64) {
	for _, j := range s.jobs {
		if j.Label == label {
			j.energyUJ += uj
			return
		}
	}
}

// Start begins dispatching one job every period. Must be called from
// handler context (boot or a task).
func (s *EnergyScheduler) Start(period units.Ticks) {
	s.timer = s.k.NewTimer(s.dispatch)
	s.timer.StartPeriodic(period)
}

// Stop halts dispatching.
func (s *EnergyScheduler) Stop() {
	if s.timer != nil {
		s.timer.Stop()
	}
}

// Dispatches returns how many job slots have run.
func (s *EnergyScheduler) Dispatches() uint64 { return s.dispatches }

func (s *EnergyScheduler) dispatch() {
	if len(s.jobs) == 0 {
		return
	}
	j := s.pick()
	s.dispatches++
	j.runs++
	s.k.CPUAct.Set(j.Label)
	j.Run()
	s.k.CPUAct.SetIdle()
}

func (s *EnergyScheduler) pick() *Job {
	switch s.policy {
	case EqualEnergy:
		// Least accumulated energy first; ties broken by label for
		// determinism.
		idx := make([]int, len(s.jobs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			ja, jb := s.jobs[idx[a]], s.jobs[idx[b]]
			if ja.energyUJ != jb.energyUJ {
				return ja.energyUJ < jb.energyUJ
			}
			return ja.Label < jb.Label
		})
		return s.jobs[idx[0]]
	default:
		j := s.jobs[s.next%len(s.jobs)]
		s.next++
		return j
	}
}
