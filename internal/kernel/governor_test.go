package kernel

import (
	"math"
	"testing"

	"repro/internal/units"
)

// runSchedulerExperiment runs two jobs for 10 s: job A "costs" 3x job B per
// run (simulated by the per-run energy the caller charges back).
func runSchedulerExperiment(t *testing.T, policy SchedPolicy) (runsA, runsB uint64, energyA, energyB float64) {
	t.Helper()
	s, k, _ := testNode(t, DefaultOptions())
	sched := k.NewEnergyScheduler(policy)
	la := k.DefineActivity("JobA")
	lb := k.DefineActivity("JobB")
	var jobA, jobB *Job
	jobA = sched.AddJob(la, func() {
		k.Spend(300)
		sched.Charge(la, 30) // 30 uJ per run
	})
	jobB = sched.AddJob(lb, func() {
		k.Spend(300)
		sched.Charge(lb, 10) // 10 uJ per run
	})
	k.Boot(func() {
		sched.Start(50 * units.Millisecond)
	})
	s.Run(10 * units.Second)
	return jobA.Runs(), jobB.Runs(), jobA.EnergyUJ(), jobB.EnergyUJ()
}

func TestEqualTimeSchedulerSplitsRunsEvenly(t *testing.T) {
	runsA, runsB, energyA, energyB := runSchedulerExperiment(t, EqualTime)
	if runsA == 0 || runsB == 0 {
		t.Fatal("jobs did not run")
	}
	if d := int64(runsA) - int64(runsB); d < -1 || d > 1 {
		t.Errorf("round robin runs: A=%d B=%d, want equal", runsA, runsB)
	}
	// Equal time means unequal energy: A burns ~3x B.
	if energyA < 2.5*energyB {
		t.Errorf("energy A=%.0f B=%.0f; round robin should leave a 3x gap", energyA, energyB)
	}
}

func TestEqualEnergySchedulerEqualizesEnergy(t *testing.T) {
	runsA, runsB, energyA, energyB := runSchedulerExperiment(t, EqualEnergy)
	if runsA == 0 || runsB == 0 {
		t.Fatal("jobs did not run")
	}
	// Equal energy means B runs ~3x as often as A.
	ratio := float64(runsB) / float64(runsA)
	if ratio < 2.2 || ratio > 3.8 {
		t.Errorf("run ratio B/A = %.2f, want ~3", ratio)
	}
	// And the accumulated energies converge.
	if rel := math.Abs(energyA-energyB) / math.Max(energyA, energyB); rel > 0.15 {
		t.Errorf("energies A=%.0f B=%.0f uJ, want within 15%%", energyA, energyB)
	}
}

func TestEnergySchedulerStop(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	sched := k.NewEnergyScheduler(EqualTime)
	la := k.DefineActivity("Job")
	count := 0
	sched.AddJob(la, func() {
		count++
		if count == 3 {
			sched.Stop()
		}
	})
	k.Boot(func() { sched.Start(10 * units.Millisecond) })
	s.Run(units.Second)
	if count != 3 {
		t.Errorf("runs = %d, want 3 after Stop", count)
	}
}

func TestEnergySchedulerNoJobs(t *testing.T) {
	s, k, _ := testNode(t, DefaultOptions())
	sched := k.NewEnergyScheduler(EqualEnergy)
	k.Boot(func() { sched.Start(10 * units.Millisecond) })
	s.Run(100 * units.Millisecond) // must not panic
	if sched.Dispatches() != 0 {
		t.Errorf("dispatches = %d", sched.Dispatches())
	}
}
