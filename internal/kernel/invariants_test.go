package kernel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestRandomWorkloadInvariants throws a randomized mix of timers, tasks, and
// interrupts at the kernel and checks global invariants of the produced
// log:
//
//  1. entry timestamps never decrease;
//  2. the CPU's power state strictly alternates ACTIVE <-> sleep;
//  3. every busy window starts and ends with the CPU activity at idle
//     (handlers restore whatever they preempted);
//  4. interrupts never overlap (non-reentrancy).
func TestRandomWorkloadInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := sim.New()
		dict := core.NewDictionary()
		k := New(s, 1, dict, DefaultOptions(), seed)
		sink := core.NewCollector()
		trk := core.NewTracker(core.Config{Node: 1, Clock: k, Meter: countingMeter{}, Cost: k, Sink: sink})
		k.Attach(trk)

		rng := sim.NewRNG(seed * 977)
		irqA := k.NewIRQ("int_A")
		irqB := k.NewIRQ("int_B")
		inHandler := 0

		k.Boot(func() {
			acts := []core.Label{
				k.DefineActivity("W1"),
				k.DefineActivity("W2"),
				k.DefineActivity("W3"),
			}
			for i := 0; i < 8; i++ {
				i := i
				tm := k.NewTimer(func() {
					k.Spend(units.Cycles(50 + rng.Intn(500)))
					if rng.Intn(2) == 0 {
						k.Post(func() { k.Spend(units.Cycles(30 + rng.Intn(200))) })
					}
				})
				k.CPUAct.Set(acts[i%len(acts)])
				tm.StartPeriodic(units.Ticks(30+rng.Intn(200)) * units.Millisecond)
			}
			k.CPUAct.SetIdle()
		})
		// A stream of random interrupts.
		var scheduleIRQ func()
		scheduleIRQ = func() {
			irq := irqA
			if rng.Intn(2) == 0 {
				irq = irqB
			}
			irq.RaiseAfter(units.Ticks(10+rng.Intn(90))*units.Millisecond, func() {
				inHandler++
				if inHandler != 1 {
					t.Errorf("seed %d: reentrant interrupt detected", seed)
				}
				k.Spend(units.Cycles(40 + rng.Intn(300)))
				inHandler--
				scheduleIRQ()
			})
		}
		scheduleIRQ()

		s.Run(5 * units.Second)

		// Invariant 1: monotonic timestamps.
		var prev uint32
		for i, e := range sink.Entries {
			if e.Time < prev {
				t.Fatalf("seed %d: entry %d time went backwards", seed, i)
			}
			prev = e.Time
		}
		// Invariant 2: CPU power state alternation.
		var lastPS core.PowerState = 0xFFFF
		for i, e := range sink.Entries {
			if e.Type != core.EntryPowerState || e.Res != power.ResCPU {
				continue
			}
			if e.State() == lastPS {
				t.Fatalf("seed %d: entry %d repeats CPU state %v", seed, i, lastPS)
			}
			lastPS = e.State()
		}
		// Invariant 3: the label in force whenever the CPU goes to sleep
		// must be idle.
		var curLabel core.Label
		for i, e := range sink.Entries {
			switch {
			case (e.Type == core.EntryActivitySet || e.Type == core.EntryActivityBind) && e.Res == power.ResCPU:
				curLabel = e.Label()
			case e.Type == core.EntryPowerState && e.Res == power.ResCPU && e.State() == power.CPUSleep:
				if i > 0 && !curLabel.IsIdle() {
					t.Fatalf("seed %d: CPU slept under %v at entry %d", seed, curLabel, i)
				}
			}
		}
		if len(sink.Entries) < 100 {
			t.Errorf("seed %d: suspiciously few entries (%d)", seed, len(sink.Entries))
		}
	}
}

// TestBusyWindowsDoNotOverlap reconstructs CPU busy windows from the log and
// asserts they are disjoint and ordered.
func TestBusyWindowsDoNotOverlap(t *testing.T) {
	s := sim.New()
	dict := core.NewDictionary()
	k := New(s, 1, dict, DefaultOptions(), 3)
	sink := core.NewCollector()
	trk := core.NewTracker(core.Config{Node: 1, Clock: k, Meter: countingMeter{}, Cost: k, Sink: sink})
	k.Attach(trk)
	k.Boot(func() {
		tm := k.NewTimer(func() { k.Spend(3000) })
		tm.StartPeriodic(10 * units.Millisecond)
		tm2 := k.NewTimer(func() { k.Spend(5000) })
		tm2.StartPeriodic(7 * units.Millisecond)
	})
	s.Run(2 * units.Second)

	type window struct{ start, end int64 }
	var windows []window
	var open *window
	for _, e := range sink.Entries {
		if e.Type != core.EntryPowerState || e.Res != power.ResCPU {
			continue
		}
		if e.State() == power.CPUActive {
			open = &window{start: int64(e.Time)}
		} else if open != nil {
			open.end = int64(e.Time)
			windows = append(windows, *open)
			open = nil
		}
	}
	for i := 1; i < len(windows); i++ {
		if windows[i].start < windows[i-1].end {
			t.Fatalf("busy windows %d and %d overlap: %+v %+v",
				i-1, i, windows[i-1], windows[i])
		}
	}
	if len(windows) < 100 {
		t.Errorf("only %d busy windows", len(windows))
	}
}
