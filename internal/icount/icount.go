// Package icount models the iCount energy meter (Dutta et al., IPSN'08): a
// pulse-frequency-modulated switching regulator whose switch cycles are
// counted by a hardware counter. Each pulse transfers a fixed energy
// quantum, so reading the counter yields cumulative energy "for free".
//
// On the HydroWatch platform at 3 V one pulse corresponds to 8.33 uJ, the
// switching frequency is linear in load current (I_avg[mA] = 2.77 f[kHz] -
// 0.05 in the paper's calibration), a read costs 24 instruction cycles, and
// the measurement error is at most +/-15% over five orders of magnitude of
// current draw.
package icount

import (
	"repro/internal/units"
)

// PulseEnergyMicroJoules is the energy quantum per regulator switch cycle on
// the simulated platform at 3 V.
const PulseEnergyMicroJoules = 8.33

// ReadLatencyCycles is the cost of reading the counter (Table 4).
const ReadLatencyCycles = 24

// Meter integrates the board's true current draw over simulated time and
// quantizes the accumulated energy into pulses. It implements both
// power.CurrentListener (fed by the Board) and core.Meter (read by the
// Tracker).
type Meter struct {
	volts   units.Volts
	pulseUJ float64
	now     func() units.Ticks

	lastT units.Ticks
	curUA units.MicroAmps
	accUJ float64

	// gain distorts the measurement multiplicatively to model the meter's
	// bounded inaccuracy; 1.0 means a perfectly calibrated meter.
	gain float64

	reads uint64
}

// New returns a meter for a board supplied at volts. now provides simulated
// time; the meter integrates lazily between events and on reads.
func New(volts units.Volts, now func() units.Ticks) *Meter {
	return &Meter{
		volts:   volts,
		pulseUJ: PulseEnergyMicroJoules,
		now:     now,
		gain:    1.0,
	}
}

// SetGain sets the multiplicative measurement error (e.g. 1.05 for a meter
// reading 5% high). The iCount datasheet bound is +/-15%.
func (m *Meter) SetGain(g float64) { m.gain = g }

// PulseEnergy returns the per-pulse quantum in microjoules.
func (m *Meter) PulseEnergy() float64 { return m.pulseUJ }

// CurrentChanged implements power.CurrentListener: it integrates the energy
// drawn at the previous current level up to t and records the new level.
// Updates stamped before the last integration point are dropped entirely —
// the meter cannot integrate backwards, and applying a stale current level
// forward would corrupt the accumulator.
func (m *Meter) CurrentChanged(t units.Ticks, total units.MicroAmps) {
	if t < m.lastT {
		return
	}
	m.integrate(t)
	m.curUA = total
}

func (m *Meter) integrate(t units.Ticks) {
	if t < m.lastT {
		return
	}
	dt := t - m.lastT
	if dt > 0 {
		m.accUJ += float64(units.Energy(m.curUA, m.volts, dt)) * m.gain
	}
	m.lastT = t
}

// ReadPulses implements core.Meter: it integrates up to the present instant
// and returns the cumulative pulse count. The 24-cycle read cost is charged
// by the Tracker's cost model, not here, so that non-logging reads (e.g. an
// application polling its own budget) can also account for it explicitly.
func (m *Meter) ReadPulses() uint32 {
	m.integrate(m.now())
	m.reads++
	return uint32(m.accUJ / m.pulseUJ)
}

// Reads returns how many times the counter was read.
func (m *Meter) Reads() uint64 { return m.reads }

// EnergyMicroJoules returns the exact (un-quantized) accumulated energy as
// measured by the meter, integrated up to the present instant.
func (m *Meter) EnergyMicroJoules() float64 {
	m.integrate(m.now())
	return m.accUJ
}

// SwitchingFrequencyKHz returns the regulator switching frequency that a
// constant draw of ua would produce — the quantity Figure 10 of the paper
// derives from the oscilloscope trace:
//
//	f = P / E_pulse = (I*V) / E_pulse
func (m *Meter) SwitchingFrequencyKHz(ua units.MicroAmps) float64 {
	powerUW := float64(ua) * float64(m.volts) // uW = uJ/s
	return powerUW / m.pulseUJ / 1000
}

// PulsesToMicroJoules converts a pulse-count delta to energy.
func (m *Meter) PulsesToMicroJoules(pulses uint32) float64 {
	return float64(pulses) * m.pulseUJ
}
