package icount

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestPulseQuantization(t *testing.T) {
	now := units.Ticks(0)
	m := New(3.0, func() units.Ticks { return now })
	// 8.33 uJ per pulse at 3 V: 2.777 mA for 1 ms is one pulse.
	m.CurrentChanged(0, 2777)
	now = 1000
	if p := m.ReadPulses(); p != 1 {
		t.Errorf("pulses after 1 quantum = %d, want 1", p)
	}
	now = 10000
	if p := m.ReadPulses(); p != 10 {
		t.Errorf("pulses after 10 quanta = %d, want 10", p)
	}
}

func TestEnergyIntegrationAcrossSteps(t *testing.T) {
	now := units.Ticks(0)
	m := New(3.0, func() units.Ticks { return now })
	m.CurrentChanged(0, 1000) // 1 mA
	now = 500_000
	m.CurrentChanged(now, 3000) // 3 mA
	now = 1_000_000
	// E = 3V * (1mA*0.5s + 3mA*0.5s) = 3 * 2 mC = 6 mJ = 6000 uJ.
	if e := m.EnergyMicroJoules(); math.Abs(e-6000) > 1e-6 {
		t.Errorf("energy = %v uJ, want 6000", e)
	}
}

func TestReadsAreMonotonic(t *testing.T) {
	now := units.Ticks(0)
	m := New(3.0, func() units.Ticks { return now })
	m.CurrentChanged(0, 5000)
	prev := uint32(0)
	for i := 0; i < 1000; i++ {
		now += 137
		p := m.ReadPulses()
		if p < prev {
			t.Fatalf("pulse counter went backwards: %d -> %d", prev, p)
		}
		prev = p
	}
	if m.Reads() != 1000 {
		t.Errorf("Reads = %d", m.Reads())
	}
}

func TestBackwardsTimeIgnored(t *testing.T) {
	now := units.Ticks(1000)
	m := New(3.0, func() units.Ticks { return now })
	m.CurrentChanged(1000, 2500)
	// A listener publishing an older timestamp must not corrupt the
	// accumulator: neither integrating backwards nor applying the stale
	// current level forward.
	m.CurrentChanged(500, 99999)
	now = 2000
	// 1 ms at 2.5 mA and 3 V is 7.5 uJ, just under one 8.33 uJ quantum.
	if p := m.ReadPulses(); p != 0 {
		t.Errorf("pulses = %d, want 0", p)
	}
}

func TestGainDistortsMeasurement(t *testing.T) {
	mk := func(gain float64) float64 {
		now := units.Ticks(0)
		m := New(3.0, func() units.Ticks { return now })
		m.SetGain(gain)
		m.CurrentChanged(0, 10000)
		now = units.Second
		return m.EnergyMicroJoules()
	}
	base := mk(1.0)
	high := mk(1.15)
	if math.Abs(high/base-1.15) > 1e-9 {
		t.Errorf("gain 1.15 scaled energy by %v", high/base)
	}
}

func TestSwitchingFrequencyMatchesPaperSlope(t *testing.T) {
	m := New(3.0, func() units.Ticks { return 0 })
	// The paper: I_avg[mA] = 2.77 * f[kHz], i.e. f(1 mA) = 0.36 kHz.
	f := m.SwitchingFrequencyKHz(1000)
	if math.Abs(f-0.360) > 0.002 {
		t.Errorf("f(1mA) = %v kHz, want ~0.360", f)
	}
	// Inverting: slope = I/f = 2.77 mA/kHz.
	if slope := 1.0 / f; math.Abs(slope-2.777) > 0.03 {
		t.Errorf("slope = %v, want ~2.78", slope)
	}
}

func TestPulsesToMicroJoules(t *testing.T) {
	m := New(3.0, func() units.Ticks { return 0 })
	if e := m.PulsesToMicroJoules(100); math.Abs(e-833) > 1e-9 {
		t.Errorf("100 pulses = %v uJ", e)
	}
}

// TestQuantizationErrorBounded: the counter never deviates from the exact
// integral by more than one quantum.
func TestQuantizationErrorBounded(t *testing.T) {
	f := func(steps []uint16) bool {
		now := units.Ticks(0)
		m := New(3.0, func() units.Ticks { return now })
		var exactUJ float64
		cur := units.MicroAmps(0)
		for _, s := range steps {
			dt := units.Ticks(s%1000) + 1
			ua := units.MicroAmps(s % 20000)
			exactUJ += float64(units.Energy(cur, 3.0, dt))
			now += dt
			m.CurrentChanged(now, ua)
			cur = ua
		}
		p := float64(m.ReadPulses()) * PulseEnergyMicroJoules
		return p <= exactUJ+1e-6 && exactUJ-p < PulseEnergyMicroJoules+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
