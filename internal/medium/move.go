// Incremental neighbor-index maintenance for node relocation. Mobility makes
// Move the hot topology operation: a waypoint epoch relocates every mobile
// node once per step, and a full SoA rebuild per relocation would cost
// O(nodes · degree) where only the moved node's links can change. Move
// instead patches the segment arena: the mover's row is recomputed from the
// grid, and only nodes inside the 3×3 cell blocks around the old and new
// position — the complete set whose link to the mover can appear, vanish, or
// change strength — get their rows rebuilt. Everything else is untouched.
//
// Patched rows are appended to the arena and the node's segment pointer is
// swung over; the superseded data stays in place because pendingFrames of
// frames still in flight alias it (the same aliasing contract a full rebuild
// honors). When superseded segments outweigh live ones the index compacts
// with an ordinary full rebuild.
//
// Determinism: Move consumes no randomness, rows stay sorted by id whatever
// the grid-bucket iteration order, and callers only invoke it from serially
// stepped events (mobility epochs on the shared simulator), so the arena is
// never mutated while a parallel window is open.
package medium

import (
	"math"
	"sort"

	"repro/internal/core"
)

// moveCompactMin is the arena size below which Move never compacts; above
// it, a full rebuild runs once superseded entries outnumber live ones.
const moveCompactMin = 1024

// Move relocates a node mid-run and updates the neighbor index
// incrementally. Positions set before the first transmission (or while the
// index is invalidated) are simply recorded — the lazy build picks them up.
// Moving an id that is not a registered receiver (say, a node that already
// died) only records the position.
func (m *Medium) Move(id core.NodeID, p Position) {
	if m.sp == nil {
		panic("medium: Move before EnableSpatial")
	}
	sp := m.sp
	_, placed := sp.pos[id]
	sp.pos[id] = p
	ix := sp.nbr
	if ix == nil {
		return
	}
	if !placed {
		// First sighting of this id: not in the grid, so no incremental
		// patch is possible. (Does not happen in practice — every receiver
		// is placed before the index is built.)
		m.invalidateNeighbors()
		return
	}
	if _, reg := ix.rows[id]; !reg {
		return
	}

	cell := sp.cfg.TxRangeM
	oldCell := ix.cellOf[id]
	newCell := packCell(cellCoord(p.X, cell), cellCoord(p.Y, cell))
	if newCell != oldCell {
		ix.removeFromCell(oldCell, id)
		ix.cells[newCell] = append(ix.cells[newCell], id)
		ix.cellOf[id] = newCell
	}

	// Candidate set: every node in the 3×3 blocks around the old and the new
	// cell. A link to the mover existed only if its endpoint was within
	// range of the old position (hence in the old block), and can exist now
	// only within range of the new one (hence in the new block) — the union
	// covers every row that can need a patch. Sorted + deduplicated so the
	// patch order is canonical whatever the bucket contents' history.
	cand := sp.mvScratch[:0]
	cand = ix.gatherBlock(cand, oldCell, id)
	if newCell != oldCell {
		cand = ix.gatherBlock(cand, newCell, id)
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
	cand = dedupSorted(cand)
	sp.mvScratch = cand

	// The mover's own row: recomputed in full from the candidate set (ids
	// are sorted already, so the row comes out sorted).
	rangeSq := cell * cell
	start := int32(len(ix.ids))
	var cnt int32
	for _, u := range cand {
		q := sp.pos[u]
		dx, dy := q.X-p.X, q.Y-p.Y
		d2 := dx*dx + dy*dy
		if d2 > rangeSq {
			continue
		}
		rssi := sp.cfg.RSSI(math.Sqrt(d2))
		ix.ids = append(ix.ids, u)
		ix.rcvs = append(ix.rcvs, ix.rcvOf[u])
		ix.rssi = append(ix.rssi, rssi)
		ix.prr = append(ix.prr, sp.cfg.PRR(rssi))
		cnt++
	}
	ix.swingRow(id, start, cnt)

	// Reverse links: every candidate whose row mentioned the mover, or
	// should now, gets its row rebuilt with the link removed, inserted, or
	// re-weighted. Links are symmetric in distance, so the strength computed
	// above is reused.
	for _, u := range cand {
		lo, hi := ix.row(u)
		j := int32(-1)
		if k := searchIDs(ix.ids[lo:hi], id); k >= 0 {
			j = lo + int32(k)
		}
		q := sp.pos[u]
		dx, dy := q.X-p.X, q.Y-p.Y
		d2 := dx*dx + dy*dy
		inRange := d2 <= rangeSq
		if j < 0 && !inRange {
			continue
		}
		var rssi, prr float64
		if inRange {
			rssi = sp.cfg.RSSI(math.Sqrt(d2))
			prr = sp.cfg.PRR(rssi)
		}
		ix.patchRow(u, lo, hi, id, inRange, rssi, prr, ix.rcvOf[id])
	}

	if len(ix.ids) > moveCompactMin && int32(len(ix.ids)) > 2*ix.live {
		m.buildNeighbors()
	}
}

// cellCoord maps a coordinate to its grid cell index.
func cellCoord(x, cell float64) int64 { return int64(math.Floor(x / cell)) }

// gatherBlock appends every id (except self) in the 3×3 cell block around
// center to dst.
func (ix *nbrIndex) gatherBlock(dst []core.NodeID, center uint64, self core.NodeID) []core.NodeID {
	cx := int64(int32(center >> 32))
	cy := int64(int32(center))
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, u := range ix.cells[packCell(cx+dx, cy+dy)] {
				if u != self {
					dst = append(dst, u)
				}
			}
		}
	}
	return dst
}

// dedupSorted removes adjacent duplicates from a sorted id slice in place.
func dedupSorted(s []core.NodeID) []core.NodeID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// removeFromCell deletes id from a grid bucket (swap-remove; row order never
// depends on bucket order, every consumer sorts).
func (ix *nbrIndex) removeFromCell(cell uint64, id core.NodeID) {
	b := ix.cells[cell]
	for i, u := range b {
		if u == id {
			b[i] = b[len(b)-1]
			ix.cells[cell] = b[:len(b)-1]
			return
		}
	}
}

// searchIDs binary-searches a sorted id row for dst, returning its offset or
// -1.
func searchIDs(ids []core.NodeID, dst core.NodeID) int {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= dst })
	if i < len(ids) && ids[i] == dst {
		return i
	}
	return -1
}

// swingRow repoints node u's segment to [start, start+cnt), retiring the old
// one (its entries become arena garbage).
func (ix *nbrIndex) swingRow(u core.NodeID, start, cnt int32) {
	r := ix.rows[u]
	ix.live += cnt - ix.segLen[r]
	ix.segOff[r] = start
	ix.segLen[r] = cnt
}

// patchRow rebuilds node u's row [lo, hi) as a fresh segment with the link
// to id removed (include=false) or present with the given strength
// (include=true, inserted in sorted position or replacing the old entry).
// The old segment is left intact for in-flight frames that alias it.
func (ix *nbrIndex) patchRow(u core.NodeID, lo, hi int32, id core.NodeID, include bool, rssi, prr float64, rcv Receiver) {
	start := int32(len(ix.ids))
	placed := false
	put := func(nid core.NodeID, nrcv Receiver, nrssi, nprr float64) {
		ix.ids = append(ix.ids, nid)
		ix.rcvs = append(ix.rcvs, nrcv)
		ix.rssi = append(ix.rssi, nrssi)
		ix.prr = append(ix.prr, nprr)
	}
	for k := lo; k < hi; k++ {
		if ix.ids[k] == id {
			continue
		}
		if include && !placed && ix.ids[k] > id {
			put(id, rcv, rssi, prr)
			placed = true
		}
		put(ix.ids[k], ix.rcvs[k], ix.rssi[k], ix.prr[k])
	}
	if include && !placed {
		put(id, rcv, rssi, prr)
	}
	ix.swingRow(u, start, int32(len(ix.ids))-start)
}
