package medium

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestPlacements(t *testing.T) {
	line := PlaceLine(5, 40)
	if len(line) != 5 || line[0] != (Position{}) || line[4] != (Position{X: 40}) {
		t.Errorf("line = %v", line)
	}
	if line[1] != (Position{X: 10}) {
		t.Errorf("line spacing = %v", line[1])
	}

	grid := PlaceGrid(9, 20) // 3x3, 10 m pitch
	if len(grid) != 9 {
		t.Fatalf("grid size = %d", len(grid))
	}
	if grid[4] != (Position{X: 10, Y: 10}) || grid[8] != (Position{X: 20, Y: 20}) {
		t.Errorf("grid = %v", grid)
	}

	rgg := PlaceRandomGeometric(50, 100, 42)
	for i, p := range rgg {
		if p.X < 0 || p.X >= 100 || p.Y < 0 || p.Y >= 100 {
			t.Fatalf("rgg[%d] = %v outside the area", i, p)
		}
	}
}

// TestRGGSeedStability pins that random-geometric placement is a pure
// function of (n, side, seed): replays are identical, different seeds give
// different layouts.
func TestRGGSeedStability(t *testing.T) {
	a := PlaceRandomGeometric(32, 100, 7)
	b := PlaceRandomGeometric(32, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rgg not seed-stable at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := PlaceRandomGeometric(32, 100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical layout")
	}
}

func TestLinkModel(t *testing.T) {
	cfg := SpatialConfig{}.withDefaults()
	// Log-distance: 1 m is the reference loss, each decade costs 10·n dB.
	if got := cfg.RSSI(1); got != -40 {
		t.Errorf("rssi(1m) = %v, want -40", got)
	}
	if got := cfg.RSSI(10); math.Abs(got-(-70)) > 1e-9 {
		t.Errorf("rssi(10m) = %v, want -70", got)
	}
	// Close links are exactly lossless; the range edge sits in the gray
	// region; silence beyond.
	if prr := cfg.PRR(cfg.RSSI(10)); prr != 1 {
		t.Errorf("prr(10m) = %v, want exactly 1", prr)
	}
	edge := cfg.PRR(cfg.RSSI(50))
	if edge <= 0 || edge >= 0.9 {
		t.Errorf("prr(50m) = %v, want a lossy gray-region link", edge)
	}
	// Monotonic in distance.
	prev := 2.0
	for _, d := range []float64{1, 5, 10, 20, 30, 40, 50, 70} {
		p := cfg.PRR(cfg.RSSI(d))
		if p > prev {
			t.Fatalf("prr not monotonic at %v m", d)
		}
		prev = p
	}
}

// spatialWorld builds a medium with receivers at the given positions (node
// ids 1..n in slice order).
func spatialWorld(t *testing.T, cfg SpatialConfig, pos []Position) (*sim.Simulator, *Medium, []*fakeReceiver) {
	t.Helper()
	s := sim.New()
	m := New(s)
	m.EnableSpatial(cfg)
	rcvs := make([]*fakeReceiver, len(pos))
	for i, p := range pos {
		rcvs[i] = &fakeReceiver{node: core.NodeID(i + 1)}
		m.Register(rcvs[i])
		m.SetPosition(rcvs[i].node, p)
	}
	return s, m, rcvs
}

func TestSpatialRangeGating(t *testing.T) {
	// A 30 m-pitch grid with 50 m range and hot transmit power (every
	// in-range link lossless): the corner node reaches exactly its three
	// grid neighbors, nobody else.
	cfg := SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: 1}
	pos := PlaceGrid(9, 60) // 3x3, 30 m pitch
	s, m, rcvs := spatialWorld(t, cfg, pos)

	f := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(f)
	want := map[int]bool{2: true, 4: true, 5: true} // 30, 30, 42.4 m away
	for i, r := range rcvs {
		got := len(r.frames) == 1
		if got != want[i+1] {
			t.Errorf("node %d heard=%v, want %v", i+1, got, want[i+1])
		}
	}
	s.Run(2000)
	ls := m.LinkStats()
	if len(ls) != 3 {
		t.Fatalf("links = %d, want 3: %+v", len(ls), ls)
	}
	for _, l := range ls {
		if l.Src != 1 || l.Attempts != 1 || l.Delivered != 1 || l.PRR != 1 {
			t.Errorf("link %+v", l)
		}
	}
}

func TestCollisionBothCorrupt(t *testing.T) {
	// Two transmitters equidistant from the receiver: comparable power,
	// no capture, both frames corrupt.
	cfg := SpatialConfig{TxRangeM: 100, TxPowerDBm: 10, Seed: 1}
	s, m, rcvs := spatialWorld(t, cfg, []Position{
		{X: -10}, {X: 10}, {}, // 1 and 2 transmit, 3 listens in the middle
	})
	fa := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	fb := &Frame{Src: 2, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(fa)
	s.Schedule(100, sim.PrioHardware, func() { m.Transmit(fb) })
	s.Run(200)

	if m.Delivered(fa, 3) || m.Delivered(fb, 3) {
		// fa was corrupted mid-air by fb; fb arrived under fa's energy.
		t.Errorf("delivered: fa=%v fb=%v, want false/false",
			m.Delivered(fa, 3), m.Delivered(fb, 3))
	}
	// The receiver attempted to sync on both (FrameStart fired for each);
	// the corruption verdict is what the Delivered query at drain time
	// reports, mirroring how the radio discards a corrupted RXFIFO.
	if len(rcvs[2].frames) != 2 || rcvs[2].frames[0] != fa || rcvs[2].frames[1] != fb {
		t.Errorf("receiver 3 frames = %v", rcvs[2].frames)
	}
	s.Run(2000)
	if got := m.Collisions(); got != 2 {
		t.Errorf("collisions = %d, want 2 (both receptions lost)", got)
	}
	for _, l := range m.LinkStats() {
		if l.Dst == 3 && (l.Delivered != 0 || l.Collisions != 1) {
			t.Errorf("link %+v, want 0 delivered, 1 collision", l)
		}
	}
}

func TestCaptureStrongerFirstSurvives(t *testing.T) {
	// The ongoing frame is far stronger than the late arrival: capture
	// keeps it decodable; only the weak late frame is lost.
	cfg := SpatialConfig{TxRangeM: 100, Seed: 1}
	s, m, _ := spatialWorld(t, cfg, []Position{
		{X: 1}, {X: 90}, {}, // 1 is 1 m from the listener, 2 is 90 m out
	})
	fa := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	fb := &Frame{Src: 2, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(fa)
	s.Schedule(100, sim.PrioHardware, func() { m.Transmit(fb) })
	s.Run(200)
	if !m.Delivered(fa, 3) {
		t.Error("strong ongoing frame should capture over the weak arrival")
	}
	if m.Delivered(fb, 3) {
		t.Error("weak late frame should be lost under the capture")
	}
}

func TestCaptureStrongerLateWins(t *testing.T) {
	// The late frame is far stronger: it captures the receiver away from
	// the weak ongoing frame.
	cfg := SpatialConfig{TxRangeM: 100, Seed: 1}
	s, m, _ := spatialWorld(t, cfg, []Position{
		{X: 90}, {X: 1}, {}, // 1 weak/first, 2 strong/late
	})
	fa := &Frame{Src: 1, Channel: 26, Bytes: 40, Airtime: 1440}
	fb := &Frame{Src: 2, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(fa)
	s.Schedule(100, sim.PrioHardware, func() { m.Transmit(fb) })
	s.Run(200)
	if m.Delivered(fa, 3) {
		t.Error("weak ongoing frame should be corrupted by the strong arrival")
	}
	if !m.Delivered(fb, 3) {
		t.Error("strong late frame should capture the receiver")
	}
}

// refusingReceiver models a radio that never syncs (off, busy, detuned).
type refusingReceiver struct{ node core.NodeID }

func (r *refusingReceiver) Node() core.NodeID        { return r.node }
func (r *refusingReceiver) FrameStart(f *Frame) bool { return false }

// TestMissNotCollision pins the classification contract: a receiver that
// never synced (half-duplex busy, off, or detuned) tallies overlapping
// frames as MAC-level misses, never as collisions — there was no reception
// to lose, so the collision counters must not inflate.
func TestMissNotCollision(t *testing.T) {
	s := sim.New()
	m := New(s)
	m.EnableSpatial(SpatialConfig{TxRangeM: 100, TxPowerDBm: 10, Seed: 1})
	for i, p := range []Position{{X: -10}, {X: 10}} {
		r := &fakeReceiver{node: core.NodeID(i + 1)}
		m.Register(r)
		m.SetPosition(r.node, p)
	}
	busy := &refusingReceiver{node: 3}
	m.Register(busy)
	m.SetPosition(3, Position{})

	fa := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	fb := &Frame{Src: 2, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(fa)
	s.Schedule(100, sim.PrioHardware, func() { m.Transmit(fb) })
	s.Run(5000)

	if got := m.Collisions(); got != 0 {
		t.Errorf("collisions = %d, want 0 (receiver never synced)", got)
	}
	for _, l := range m.LinkStats() {
		if l.Dst != 3 {
			continue
		}
		if l.Attempts != 1 || l.Delivered != 0 || l.Collisions != 0 {
			t.Errorf("link %+v, want 1 attempt, 0 delivered, 0 collisions", l)
		}
	}
}

// TestSpatialDeterminism pins that two identically-configured spatial
// worlds produce identical delivery outcomes and link tables.
func TestSpatialDeterminism(t *testing.T) {
	run := func() []LinkStat {
		cfg := SpatialConfig{TxRangeM: 60, Seed: 99}
		s, m, _ := spatialWorld(t, cfg, PlaceRandomGeometric(30, 120, 5))
		for i := 0; i < 20; i++ {
			src := core.NodeID(i%30 + 1)
			at := units.Ticks(i) * 1000
			s.Schedule(at, sim.PrioHardware, func() {
				m.Transmit(&Frame{Src: src, Channel: 26, Bytes: 20, Airtime: 640})
			})
		}
		s.Run(40000)
		return m.LinkStats()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("link table sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEnergyOnHalfOpenBoundary pins the deterministic CCA boundary: a frame
// occupies exactly [SentAt, SentAt+Airtime), independent of whether the
// expiry event has run yet.
func TestEnergyOnHalfOpenBoundary(t *testing.T) {
	s := sim.New()
	m := New(s)
	f := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(f)
	// The frame is still in m.active (no events have run), so only the
	// time gate can exclude it.
	if e := m.EnergyOn(26, 0); e != 1 {
		t.Errorf("energy at start = %v, want 1", e)
	}
	if e := m.EnergyOn(26, 639); e != 1 {
		t.Errorf("energy at last tick = %v, want 1", e)
	}
	if e := m.EnergyOn(26, 640); e != 0 {
		t.Errorf("energy at SentAt+Airtime = %v, want 0 (half-open)", e)
	}
}

func TestEnergyOnAtSpatialRange(t *testing.T) {
	cfg := SpatialConfig{TxRangeM: 50, Seed: 1}
	_, m, _ := spatialWorld(t, cfg, []Position{{}, {X: 10}, {X: 200}})
	f := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(f)
	if e := m.EnergyOnAt(2, 26, 0); e != 1 {
		t.Errorf("near node sees %v, want 1", e)
	}
	if e := m.EnergyOnAt(3, 26, 0); e != 0 {
		t.Errorf("far node sees %v, want 0", e)
	}
}

// TestDutyCycleBinarySearchMatchesScan pins that the binary-search window
// fold returns exactly what the full scan did.
func TestDutyCycleBinarySearchMatchesScan(t *testing.T) {
	w := NewWiFiSource(6, 5*units.Millisecond, 23*units.Millisecond, 31)
	w.ensure(100 * units.Second)
	scan := func(t0, t1 units.Ticks) float64 {
		var on units.Ticks
		for _, b := range w.bursts {
			if b.end <= t0 || b.start >= t1 {
				continue
			}
			s, e := b.start, b.end
			if s < t0 {
				s = t0
			}
			if e > t1 {
				e = t1
			}
			on += e - s
		}
		return float64(on) / float64(t1-t0)
	}
	for _, win := range [][2]units.Ticks{
		{0, units.Second},
		{90 * units.Second, 91 * units.Second}, // late window, deep in the burst list
		{50*units.Second + 137, 50*units.Second + 999},
		{0, 100 * units.Second},
	} {
		got := w.DutyCycle(win[0], win[1])
		want := scan(win[0], win[1])
		if got != want {
			t.Errorf("DutyCycle%v = %v, want %v", win, got, want)
		}
	}
}
