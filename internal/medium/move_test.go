package medium

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// rowOf extracts node id's live neighbor row as value structs, for
// comparison across index layouts.
func rowOf(ix *nbrIndex, id core.NodeID) []neighbor {
	lo, hi := ix.row(id)
	out := make([]neighbor, 0, hi-lo)
	for k := lo; k < hi; k++ {
		out = append(out, neighbor{
			id: ix.ids[k], rcv: ix.rcvs[k], rssi: ix.rssi[k], prr: ix.prr[k],
		})
	}
	return out
}

// TestMoveMatchesRebuild is the incremental-maintenance property test: after
// any sequence of single-node moves, every node's neighbor row must be
// bit-identical to what a from-scratch rebuild over the same positions
// produces — same ids in the same order, same RSSI, same PRR.
func TestMoveMatchesRebuild(t *testing.T) {
	const n = 60
	cfg := SpatialConfig{TxRangeM: 40, Seed: 3}
	_, m, _ := spatialWorld(t, cfg, PlaceRandomGeometric(n, 150, 11))
	m.WarmNeighbors()

	// A deterministic walk mixing small in-cell drifts, cell-crossing hops,
	// and long teleports across the whole area (grid maintenance has to
	// survive arbitrary jump sizes).
	rng := sim.NewRNG(99)
	for step := 0; step < 200; step++ {
		id := core.NodeID(rng.Intn(n) + 1)
		var p Position
		switch step % 3 {
		case 0: // small drift, usually same cell
			old := m.sp.pos[id]
			p = Position{X: old.X + rng.Float64()*6 - 3, Y: old.Y + rng.Float64()*6 - 3}
		case 1: // neighbor-cell hop
			old := m.sp.pos[id]
			p = Position{X: old.X + rng.Float64()*80 - 40, Y: old.Y + rng.Float64()*80 - 40}
		default: // teleport anywhere
			p = Position{X: rng.Float64() * 150, Y: rng.Float64() * 150}
		}
		m.Move(id, p)

		// Reference: a fresh build over the incremental run's positions.
		ref := New(sim.New())
		ref.EnableSpatial(cfg)
		for i := 0; i < n; i++ {
			nid := core.NodeID(i + 1)
			ref.Register(&fakeReceiver{node: nid})
			ref.SetPosition(nid, m.sp.pos[nid])
		}
		ref.WarmNeighbors()

		for i := 0; i < n; i++ {
			nid := core.NodeID(i + 1)
			got := rowOf(m.sp.nbr, nid)
			want := rowOf(ref.sp.nbr, nid)
			if len(got) != len(want) {
				t.Fatalf("step %d: node %d row length %d, want %d", step, nid, len(got), len(want))
			}
			for k := range got {
				if got[k].id != want[k].id || got[k].rssi != want[k].rssi || got[k].prr != want[k].prr {
					t.Fatalf("step %d: node %d entry %d = %+v, want %+v", step, nid, k, got[k], want[k])
				}
			}
		}
		if m.sp.nbr.live < 0 || int(m.sp.nbr.live) > len(m.sp.nbr.ids) {
			t.Fatalf("step %d: live counter %d out of range (arena %d)", step, m.sp.nbr.live, len(m.sp.nbr.ids))
		}
	}
}

// TestMoveCompaction pins that the arena compacts once superseded segments
// dominate, instead of growing without bound under sustained mobility.
func TestMoveCompaction(t *testing.T) {
	const n = 150 // dense enough that the arena passes the compaction floor
	cfg := SpatialConfig{TxRangeM: 40, Seed: 3}
	_, m, _ := spatialWorld(t, cfg, PlaceRandomGeometric(n, 120, 7))
	m.WarmNeighbors()
	if len(m.sp.nbr.ids) <= moveCompactMin {
		t.Skipf("arena too small (%d) to exercise compaction", len(m.sp.nbr.ids))
	}
	rng := sim.NewRNG(5)
	for step := 0; step < 1200; step++ {
		id := core.NodeID(rng.Intn(n) + 1)
		m.Move(id, Position{X: rng.Float64() * 120, Y: rng.Float64() * 120})
		ix := m.sp.nbr
		if garbage := len(ix.ids) - int(ix.live); len(ix.ids) > moveCompactMin && garbage > len(ix.ids) {
			t.Fatalf("step %d: impossible garbage accounting: arena %d, live %d", step, len(ix.ids), ix.live)
		}
	}
	ix := m.sp.nbr
	if len(ix.ids) > moveCompactMin && int(ix.live)*4 < len(ix.ids) {
		t.Fatalf("arena never compacted: %d entries, %d live", len(ix.ids), ix.live)
	}
}

// TestMoveChangesDelivery pins the end-to-end effect: relocating a receiver
// out of range stops delivery, moving it back restores delivery — without
// any full index rebuild in between.
func TestMoveChangesDelivery(t *testing.T) {
	cfg := SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: 1}
	s, m, rcvs := spatialWorld(t, cfg, []Position{{}, {X: 10}})
	m.WarmNeighbors()

	m.Transmit(&Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640})
	if len(rcvs[1].frames) != 1 {
		t.Fatalf("in-range receiver heard %d frames, want 1", len(rcvs[1].frames))
	}
	s.Run(1000)

	m.Move(2, Position{X: 500})
	m.Transmit(&Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640})
	if len(rcvs[1].frames) != 1 {
		t.Fatal("out-of-range receiver still hears frames after Move")
	}
	s.Run(2000)

	m.Move(2, Position{X: 20})
	m.Transmit(&Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640})
	if len(rcvs[1].frames) != 2 {
		t.Fatal("receiver moved back into range hears nothing")
	}
}

// driftEast moves east at a fixed speed from a start position.
type driftEast struct {
	start Position
	mps   float64
}

func (d driftEast) PositionAt(t units.Ticks) Position {
	return Position{X: d.start.X + d.mps*float64(t)/1e6, Y: d.start.Y}
}

// TestMobilityEpochStepping pins the mobility contract: positions advance on
// the epoch grid (quantized, not continuous), the neighbor index follows,
// and the position a CCA-time query sees matches the index epoch for any
// query time — including times at and just past an epoch boundary.
func TestMobilityEpochStepping(t *testing.T) {
	cfg := SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: 1}
	s, m, rcvs := spatialWorld(t, cfg, []Position{{}, {X: 10}})
	step := 250 * units.Millisecond
	m.EnableMobility(step)
	// Node 2 walks east at 40 m/s (fast, so range crossings happen within a
	// few epochs): in range (10..20 m) for epochs 0..3, out past 50 m from
	// epoch 5 (60 m) on.
	m.SetMover(2, driftEast{start: Position{X: 10}, mps: 40})

	if got, _ := m.positionAt(2, 0); got != (Position{X: 10}) {
		t.Fatalf("epoch-0 position = %v", got)
	}
	// Quantization: mid-epoch queries see the epoch-start position.
	if got, _ := m.positionAt(2, step-1); got != (Position{X: 10}) {
		t.Fatalf("mid-epoch position = %v, want epoch-0 value", got)
	}
	if got, _ := m.positionAt(2, step); got != (Position{X: 20}) {
		t.Fatalf("epoch-1 position = %v, want x=20", got)
	}

	// Delivery before the range crossing, silence after.
	m.Transmit(&Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640})
	if len(rcvs[1].frames) != 1 {
		t.Fatal("mover in range at epoch 0 heard nothing")
	}
	s.Run(6 * step) // epochs 1..6 execute; mover is at x=70 now
	m.Transmit(&Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640})
	if len(rcvs[1].frames) != 1 {
		t.Fatal("mover past range still hears frames")
	}
	if got, _ := m.positionAt(2, 6*step); got != (Position{X: 70}) {
		t.Fatalf("epoch-6 position = %v, want x=70", got)
	}
	// The position log answers ahead of the event clock too (what a
	// partition window's CCA read needs) without changing later answers.
	if got, _ := m.positionAt(2, 20*step); got != (Position{X: 210}) {
		t.Fatalf("future position = %v, want x=210", got)
	}
	if got, _ := m.positionAt(2, 7*step); got != (Position{X: 80}) {
		t.Fatalf("epoch-7 position = %v after future read, want x=80", got)
	}
	// Static nodes resolve through the plain position table.
	if got, ok := m.positionAt(1, 3*step); !ok || got != (Position{}) {
		t.Fatalf("static position = %v ok=%v", got, ok)
	}
}

// TestMoveRSSIMatchesDistance spot-checks that a patched row carries link
// strengths recomputed from the new geometry, not stale values.
func TestMoveRSSIMatchesDistance(t *testing.T) {
	cfg := SpatialConfig{TxRangeM: 50, TxPowerDBm: 10, Seed: 1}
	_, m, _ := spatialWorld(t, cfg, []Position{{}, {X: 10}})
	m.WarmNeighbors()
	m.Move(2, Position{X: 30})
	lo, hi := m.sp.nbr.row(1)
	if hi-lo != 1 {
		t.Fatalf("node 1 has %d neighbors, want 1", hi-lo)
	}
	want := cfg.withDefaults().RSSI(30)
	if got := m.sp.nbr.rssi[lo]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("patched rssi = %v, want %v", got, want)
	}
}
