// Spatial propagation: node positions, a log-distance path-loss + PRR link
// model, per-receiver delivery, and receiver-side collision handling with
// capture. This is the layer that makes density, range, and contention —
// the dimensions that shape multi-hop energy — sweepable, replacing the
// "every node hears every node" broadcast model when configured.
//
// Delivery is O(neighbors), not O(nodes): the medium builds per-node
// neighbor lists (via a uniform grid hash with cells of TxRangeM) and
// Transmit walks only the transmitter's list. A node death invalidates the
// index and it rebuilds lazily; a relocation (Move, the mobility hot path)
// instead patches just the moved node's row and its neighbors' rows in
// place — see move.go.
//
// Determinism: neighbor lists are sorted by node id, exactly one PRR draw
// is consumed per candidate receiver per frame from the medium's own RNG
// stream, and collision outcomes are pure functions of frame timing and
// link RSSI — so a spatial run is as reproducible as a broadcast one.
package medium

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Position is a node's fixed location on the deployment plane, in meters.
type Position struct{ X, Y float64 }

// Distance returns the Euclidean distance to q in meters.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Defaults and model constants of the spatial link layer.
const (
	// DefaultPathLossExp is the log-distance path-loss exponent (indoor /
	// light obstruction; free space is 2, dense indoor up to 4+).
	DefaultPathLossExp = 3.0
	// DefaultTxRangeM is the hard delivery cutoff in meters; beyond it a
	// transmission contributes neither frames nor interference.
	DefaultTxRangeM = 50.0
	// DefaultCaptureDB is the power margin at which a receiver decodes the
	// stronger of two overlapping co-channel frames instead of losing both.
	DefaultCaptureDB = 3.0
	// DefaultRefLossDB is the path loss at the 1 m reference distance.
	DefaultRefLossDB = 40.0
	// DefaultNoiseDBm is the receiver noise floor.
	DefaultNoiseDBm = -95.0

	// prrMidSNRDB / prrWidthDB shape the logistic SNR→PRR curve: PRR is 0.5
	// at the midpoint and transitions over a few widths — the classic
	// 802.15.4 "gray region" between solid links and silence.
	prrMidSNRDB = 5.0
	prrWidthDB  = 1.0
	// prrSureSNRDB is the SNR above which the link is treated as lossless
	// (the logistic is within 3e-4 of 1 there), so short links never fail.
	prrSureSNRDB = prrMidSNRDB + 8
	// minDistanceM clamps the path-loss distance so co-located nodes do not
	// produce unbounded RSSI.
	minDistanceM = 0.1
)

// SpatialConfig parameterizes the spatial link layer. The zero value of
// every field selects the default above, so an empty config is a working
// 50 m-range indoor model.
type SpatialConfig struct {
	// PathLossExp is the log-distance path-loss exponent.
	PathLossExp float64
	// TxRangeM is the hard delivery cutoff in meters. It also sizes the
	// neighbor-index grid cells, so it bounds per-transmit work.
	TxRangeM float64
	// CaptureDB is the capture margin: when two co-channel frames overlap
	// at a receiver, the stronger is decoded if it exceeds the other by at
	// least this many dB; otherwise both corrupt.
	CaptureDB float64
	// TxPowerDBm is the transmit power (0 dBm, the CC2420 maximum).
	TxPowerDBm float64
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// NoiseDBm is the receiver noise floor.
	NoiseDBm float64
	// Seed drives the per-link PRR delivery draws.
	Seed uint64
}

// withDefaults fills zero fields with the package defaults.
func (c SpatialConfig) withDefaults() SpatialConfig {
	if c.PathLossExp == 0 {
		c.PathLossExp = DefaultPathLossExp
	}
	if c.TxRangeM == 0 {
		c.TxRangeM = DefaultTxRangeM
	}
	if c.CaptureDB == 0 {
		c.CaptureDB = DefaultCaptureDB
	}
	if c.RefLossDB == 0 {
		c.RefLossDB = DefaultRefLossDB
	}
	if c.NoiseDBm == 0 {
		c.NoiseDBm = DefaultNoiseDBm
	}
	return c
}

// RSSI returns the received signal strength in dBm at distance d meters
// under the log-distance model: TxPower - RefLoss - 10·n·log10(d).
func (c SpatialConfig) RSSI(d float64) float64 {
	if d < minDistanceM {
		d = minDistanceM
	}
	return c.TxPowerDBm - c.RefLossDB - 10*c.PathLossExp*math.Log10(d)
}

// PRR returns the packet reception ratio of a link with the given receive
// strength: a logistic in SNR, exactly 1 above the sure threshold so short
// links are lossless and exactly comparable to the broadcast model.
func (c SpatialConfig) PRR(rssiDBm float64) float64 {
	snr := rssiDBm - c.NoiseDBm
	if snr >= prrSureSNRDB {
		return 1
	}
	return 1 / (1 + math.Exp(-(snr-prrMidSNRDB)/prrWidthDB))
}

// PlaceLine returns n positions evenly spaced on a horizontal line of the
// given total length (n==1 sits at the origin).
func PlaceLine(n int, length float64) []Position {
	out := make([]Position, n)
	if n <= 1 {
		return out
	}
	step := length / float64(n-1)
	for i := range out {
		out[i] = Position{X: float64(i) * step}
	}
	return out
}

// PlaceGrid returns n positions on a near-square grid (ceil(sqrt(n))
// columns, row-major) filling a side×side area.
func PlaceGrid(n int, side float64) []Position {
	out := make([]Position, n)
	if n <= 1 {
		return out
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	dx, dy := side, side
	if cols > 1 {
		dx = side / float64(cols-1)
	}
	if rows > 1 {
		dy = side / float64(rows-1)
	}
	for i := range out {
		out[i] = Position{X: float64(i%cols) * dx, Y: float64(i/cols) * dy}
	}
	return out
}

// PlaceRandomGeometric returns n positions drawn uniformly over a side×side
// square from the given seed — the random-geometric-graph placement. The
// draw order is fixed (node index order), so the layout is a pure function
// of (n, side, seed).
func PlaceRandomGeometric(n int, side float64, seed uint64) []Position {
	rng := sim.NewRNG(seed)
	out := make([]Position, n)
	for i := range out {
		out[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return out
}

// rxOutcome is the medium's verdict on one (frame, receiver) pair.
type rxOutcome uint8

const (
	rxFailPRR   rxOutcome = iota // channel loss: the PRR draw failed
	rxReceiving                  // decodable so far (final: delivered)
	rxCollided                   // corrupted by an overlapping frame
	rxMissed                     // receiver off/busy/detuned: never synced
)

// pendingFrame tracks a frame's fate at every candidate receiver while it
// is on the air: parallel slices over the transmitter's neighbor list (so
// ids are sorted and lookups are a binary search, no per-frame maps). rssi
// is kept for capture contests against later frames.
//
// ids and rssi alias the neighbor index's CSR rows directly — if the index
// is rebuilt mid-flight the old arrays stay alive through these references —
// and state comes from a free list, so steady-state transmission allocates
// nothing. pendingFrames hang off Frame.pend rather than a map.
type pendingFrame struct {
	ids   []core.NodeID
	rssi  []float64
	state []rxOutcome
}

// find returns the index of dst in the candidate list, or -1.
func (pf *pendingFrame) find(dst core.NodeID) int {
	i := sort.Search(len(pf.ids), func(i int) bool { return pf.ids[i] >= dst })
	if i < len(pf.ids) && pf.ids[i] == dst {
		return i
	}
	return -1
}

// neighbor is one precomputed in-range link (build-time scratch; the index
// itself stores links column-wise).
type neighbor struct {
	id   core.NodeID
	rcv  Receiver
	rssi float64
	prr  float64
}

// nbrIndex is the neighbor index as a segment arena over struct-of-arrays
// link storage: node src's in-range links, sorted by destination id, occupy
// columns [segOff[rows[src]], segOff[rows[src]]+segLen[rows[src]]) of the
// parallel ids/rcvs/rssi/prr arrays. The layout keeps a transmitter's whole
// neighbor walk — the inner loop of every spatial transmission — in a few
// contiguous cache lines, exactly like the CSR form it generalizes.
//
// Unlike strict CSR, rows are independent segments: Move patches a single
// node's topology by appending rebuilt rows to the arena and repointing the
// affected nodes' segments, never touching the other rows. Superseded
// segments are left in place (pendingFrames of frames still in flight alias
// them) and reclaimed by a full rebuild once the arena is mostly garbage.
// The persistent grid (cells/cellOf) and the id→receiver map exist only to
// serve those incremental patches.
type nbrIndex struct {
	rows   map[core.NodeID]int32
	segOff []int32
	segLen []int32
	ids    []core.NodeID
	rcvs   []Receiver
	rssi   []float64
	prr    []float64
	// live is the number of link entries reachable through rows; the arena
	// holds len(ids)-live garbage entries from superseded segments.
	live int32

	// Persistent grid hash for incremental maintenance: cells maps a packed
	// cell coordinate to the ids located there, cellOf inverts it, rcvOf
	// resolves a neighbor id to its radio when a patched row is rebuilt.
	cells  map[uint64][]core.NodeID
	cellOf map[core.NodeID]uint64
	rcvOf  map[core.NodeID]Receiver
}

// row returns the column range of src's neighbor list.
func (ix *nbrIndex) row(src core.NodeID) (int32, int32) {
	r, ok := ix.rows[src]
	if !ok {
		return 0, 0
	}
	return ix.segOff[r], ix.segOff[r] + ix.segLen[r]
}

// linkKey identifies a directed link.
type linkKey struct{ src, dst core.NodeID }

// linkTally accumulates one link's delivery outcomes.
type linkTally struct{ attempts, delivered, collisions uint64 }

// LinkStat is one directed link's delivery record: how many frames the
// transmitter put on the air with the receiver in range, how many the
// receiver actually synced and decoded (surviving the PRR draw, collisions,
// and MAC-level misses — a busy or detuned radio counts as an undelivered
// attempt), and how many were lost to collisions specifically. PRR is
// Delivered/Attempts — the observed link quality.
type LinkStat struct {
	Src, Dst   core.NodeID
	Attempts   uint64
	Delivered  uint64
	Collisions uint64
	PRR        float64
}

// spatial is the medium's spatial-propagation state.
type spatial struct {
	cfg SpatialConfig
	rng *sim.RNG
	pos map[core.NodeID]Position
	nbr *nbrIndex // nil: rebuild from receivers+pos

	// pfFree recycles pendingFrame records (their state buffers keep their
	// capacity). tally deliberately stays a map: frames still in flight
	// across an index rebuild must fold into the same accumulators.
	pfFree []*pendingFrame
	tally  map[linkKey]*linkTally

	// mvScratch is Move's reusable candidate buffer.
	mvScratch []core.NodeID

	collisions uint64
}

// getPending returns a pendingFrame with an n-element zeroed state buffer.
func (sp *spatial) getPending(n int) *pendingFrame {
	var pf *pendingFrame
	if k := len(sp.pfFree); k > 0 {
		pf = sp.pfFree[k-1]
		sp.pfFree = sp.pfFree[:k-1]
	} else {
		pf = &pendingFrame{}
	}
	if cap(pf.state) < n {
		pf.state = make([]rxOutcome, n)
	} else {
		pf.state = pf.state[:n]
		for i := range pf.state {
			pf.state[i] = 0
		}
	}
	return pf
}

// putPending releases a finalized pendingFrame, dropping its CSR aliases so
// a retired index can be collected.
func (sp *spatial) putPending(pf *pendingFrame) {
	pf.ids = nil
	pf.rssi = nil
	sp.pfFree = append(sp.pfFree, pf)
}

// EnableSpatial switches the medium from the broadcast model to the spatial
// link layer. Every registered receiver must be given a position with
// SetPosition before the first transmission. Calling it twice replaces the
// configuration (positions are kept).
func (m *Medium) EnableSpatial(cfg SpatialConfig) {
	if m.sp == nil {
		m.sp = &spatial{
			pos:   make(map[core.NodeID]Position),
			tally: make(map[linkKey]*linkTally),
		}
	}
	m.sp.cfg = cfg.withDefaults()
	m.sp.rng = sim.NewRNG(cfg.Seed)
	m.invalidateNeighbors()
}

// SpatialEnabled reports whether the spatial link layer is configured.
func (m *Medium) SpatialEnabled() bool { return m.sp != nil }

// SetPosition places a node on the deployment plane and invalidates the
// whole neighbor index (it rebuilds lazily). Use it for initial placement;
// mid-run relocation goes through Move, which patches the index
// incrementally instead of rebuilding it.
func (m *Medium) SetPosition(id core.NodeID, p Position) {
	if m.sp == nil {
		panic("medium: SetPosition before EnableSpatial")
	}
	m.sp.pos[id] = p
	m.invalidateNeighbors()
}

// PositionOf returns a node's position and whether one was assigned.
func (m *Medium) PositionOf(id core.NodeID) (Position, bool) {
	if m.sp == nil {
		return Position{}, false
	}
	p, ok := m.sp.pos[id]
	return p, ok
}

// Collisions returns how many receptions were lost to co-channel collisions
// (counted per frame per receiver; 0 under the broadcast model).
func (m *Medium) Collisions() uint64 {
	if m.sp == nil {
		return 0
	}
	return m.sp.collisions
}

// LinkStats returns the per-link delivery table of completed frames, sorted
// by (src, dst). Empty under the broadcast model.
func (m *Medium) LinkStats() []LinkStat {
	if m.sp == nil {
		return nil
	}
	out := make([]LinkStat, 0, len(m.sp.tally))
	//quanto:ordered entries are uniquely keyed by (src, dst) and sorted below before returning
	for k, t := range m.sp.tally {
		s := LinkStat{
			Src: k.src, Dst: k.dst,
			Attempts: t.attempts, Delivered: t.delivered, Collisions: t.collisions,
		}
		if t.attempts > 0 {
			s.PRR = float64(t.delivered) / float64(t.attempts)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Delivered reports whether frame f survived at the given receiver: true
// unconditionally under the broadcast model, and under the spatial layer
// true iff the PRR draw passed and no overlapping frame corrupted it. The
// radio queries this when the frame's last bit lands, before draining the
// RXFIFO — corruption can happen at any point during the airtime.
func (m *Medium) Delivered(f *Frame, node core.NodeID) bool {
	if m.sp == nil {
		return true
	}
	pf := f.pend
	if pf == nil {
		return true
	}
	i := pf.find(node)
	return i >= 0 && pf.state[i] == rxReceiving
}

// WarmNeighbors builds the neighbor index now instead of lazily at the
// first transmission. The build consumes no randomness and its result is a
// pure function of the registered receivers and their positions, so warming
// changes no outcome — it only moves a large one-time cost (tens of
// milliseconds at 10k nodes) out of the simulation run and into world
// construction. A no-op under the broadcast model or when the index is
// already current.
func (m *Medium) WarmNeighbors() {
	if m.sp != nil && m.sp.nbr == nil && len(m.receivers) > 0 {
		m.buildNeighbors()
	}
}

// invalidateNeighbors drops the neighbor index so the next transmission
// rebuilds it (topology changed: node added, died, or moved).
func (m *Medium) invalidateNeighbors() {
	if m.sp != nil {
		m.sp.nbr = nil
	}
}

// packCell packs a grid cell coordinate pair into one map key.
func packCell(cx, cy int64) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// buildNeighbors constructs every node's sorted in-range neighbor list in
// O(nodes · neighbors) using a uniform grid hash with TxRangeM-sized cells:
// all links of length <= TxRangeM lie within the 3×3 cell block around the
// transmitter.
//
// The build itself is struct-of-arrays: positions are snapshotted into flat
// slices once (one map lookup per node, not per candidate pair), cells chain
// through an index-linked list instead of per-bucket slices, and each row —
// a dozen entries — is ordered with an insertion sort, so a 10k-node build
// is a few milliseconds of contiguous float math rather than a hash lookup
// per pair. Node ids are unique, so the sorted row is the same permutation
// whatever the sort algorithm: the RNG stream and event sequence downstream
// are unchanged.
func (m *Medium) buildNeighbors() {
	sp := m.sp
	cell := sp.cfg.TxRangeM
	n := len(m.receivers)

	// Snapshot id/position per receiver index.
	ids := make([]core.NodeID, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	cells := make([]uint64, n)
	for i, r := range m.receivers {
		id := r.Node()
		p, ok := sp.pos[id]
		if !ok {
			panic(fmt.Sprintf("medium: node %d has no position; SetPosition every registered node before transmitting", id))
		}
		ids[i], xs[i], ys[i] = id, p.X, p.Y
		cells[i] = packCell(int64(math.Floor(p.X/cell)), int64(math.Floor(p.Y/cell)))
	}
	// Chained cell buckets: head maps a cell to its first receiver index,
	// next links the rest. No per-bucket allocations.
	head := make(map[uint64]int32, n)
	next := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		j, ok := head[cells[i]]
		if !ok {
			j = -1
		}
		next[i] = j
		head[cells[i]] = int32(i)
	}

	ix := &nbrIndex{
		rows:   make(map[core.NodeID]int32, n),
		segOff: make([]int32, 0, n),
		segLen: make([]int32, 0, n),
		cells:  make(map[uint64][]core.NodeID, n),
		cellOf: make(map[core.NodeID]uint64, n),
		rcvOf:  make(map[core.NodeID]Receiver, n),
	}
	for i := 0; i < n; i++ {
		ix.cells[cells[i]] = append(ix.cells[cells[i]], ids[i])
		ix.cellOf[ids[i]] = cells[i]
		ix.rcvOf[ids[i]] = m.receivers[i]
	}
	rangeSq := sp.cfg.TxRangeM * sp.cfg.TxRangeM
	var list []neighbor // per-row scratch, reused across rows
	for i := 0; i < n; i++ {
		px, py := xs[i], ys[i]
		cx := int64(math.Floor(px / cell))
		cy := int64(math.Floor(py / cell))
		list = list[:0]
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for j := headOr(head, packCell(cx+dx, cy+dy)); j >= 0; j = next[j] {
					if int(j) == i {
						continue
					}
					ddx, ddy := xs[j]-px, ys[j]-py
					d2 := ddx*ddx + ddy*ddy
					if d2 > rangeSq {
						continue
					}
					rssi := sp.cfg.RSSI(math.Sqrt(d2))
					list = append(list, neighbor{
						id: ids[j], rcv: m.receivers[j], rssi: rssi, prr: sp.cfg.PRR(rssi),
					})
				}
			}
		}
		// Sorted delivery order keeps the RNG stream and the scheduled
		// event sequence independent of bucket iteration order. Rows are
		// small; insertion sort is exact, deterministic, and alloc-free.
		for a := 1; a < len(list); a++ {
			nb := list[a]
			b := a - 1
			for b >= 0 && list[b].id > nb.id {
				list[b+1] = list[b]
				b--
			}
			list[b+1] = nb
		}
		ix.rows[ids[i]] = int32(len(ix.segOff))
		ix.segOff = append(ix.segOff, int32(len(ix.ids)))
		ix.segLen = append(ix.segLen, int32(len(list)))
		ix.live += int32(len(list))
		for _, nb := range list {
			ix.ids = append(ix.ids, nb.id)
			ix.rcvs = append(ix.rcvs, nb.rcv)
			ix.rssi = append(ix.rssi, nb.rssi)
			ix.prr = append(ix.prr, nb.prr)
		}
	}
	sp.nbr = ix
}

// headOr returns the bucket head for key, or -1 when the cell is empty.
func headOr(head map[uint64]int32, key uint64) int32 {
	if j, ok := head[key]; ok {
		return j
	}
	return -1
}

// transmitSpatial delivers frame f under the spatial model: walk the
// transmitter's neighbor list, draw each link's PRR, resolve collisions
// against frames already in the air, and hand FrameStart only to receivers
// that synced onto the preamble. The per-receiver fate stays queryable via
// Delivered until the frame's last bit lands; the finalize event (scheduled
// after every receiver's own end-of-frame event) folds it into link tallies.
func (m *Medium) transmitSpatial(f *Frame) {
	sp := m.sp
	if sp.nbr == nil {
		m.buildNeighbors()
	}
	now := f.SentAt
	lo, hi := sp.nbr.row(f.Src)
	pf := sp.getPending(int(hi - lo))
	pf.ids = sp.nbr.ids[lo:hi]
	pf.rssi = sp.nbr.rssi[lo:hi]
	f.pend = pf
	for i := 0; i < int(hi-lo); i++ {
		nbRSSI := pf.rssi[i]
		nbID := pf.ids[i]
		// Exactly one channel-loss draw per candidate receiver, whatever
		// the collision outcome, so the RNG stream depends only on the
		// frame/topology sequence.
		st := rxReceiving
		if sp.rng.Float64() >= sp.nbr.prr[lo+int32(i)] {
			st = rxFailPRR
		}
		// MAC state next: a radio that is off, mid-transmission, or tuned
		// elsewhere refuses the frame — a miss, never a collision, because
		// there was no reception to lose. Only a synced radio can have one
		// corrupted. (A frame that syncs here and collides below is caught
		// at drain time by the Delivered query.)
		if st == rxReceiving && !sp.nbr.rcvs[lo+int32(i)].FrameStart(f) {
			st = rxMissed
		}
		// Contest against every frame still on the air (half-open airtime
		// window, matching EnergyOn) that is audible at this receiver. The
		// new frame's energy interferes even when its own PRR draw failed
		// or its receiver never synced — an undecodable frame still
		// corrupts what it lands on.
		for _, g := range m.active {
			if g == f || g.Channel != f.Channel {
				continue
			}
			if g.SentAt > now || now >= g.SentAt+g.Airtime {
				continue
			}
			pg := g.pend
			if pg == nil {
				continue
			}
			gi := pg.find(nbID)
			if gi < 0 {
				continue // the ongoing frame is inaudible at this receiver
			}
			grssi := pg.rssi[gi]
			switch {
			case grssi-nbRSSI >= sp.cfg.CaptureDB:
				// The ongoing frame is strong enough to survive; the new
				// one arrives mid-frame under it and is lost here.
				if st == rxReceiving {
					st = rxCollided
				}
			case nbRSSI-grssi >= sp.cfg.CaptureDB:
				// The new frame captures the receiver; the ongoing one is
				// corrupted (if it was still decodable).
				if pg.state[gi] == rxReceiving {
					pg.state[gi] = rxCollided
					sp.collisions++
				}
			default:
				// Comparable power: both corrupt.
				if pg.state[gi] == rxReceiving {
					pg.state[gi] = rxCollided
					sp.collisions++
				}
				if st == rxReceiving {
					st = rxCollided
				}
			}
		}
		if st == rxCollided {
			sp.collisions++
		}
		pf.state[i] = st
	}
	// Finalize after every end-of-frame event scheduled above: receivers
	// query Delivered exactly at SentAt+Airtime, and this event was
	// scheduled after theirs, so the verdict is still available.
	m.s.ScheduleArg(now+f.Airtime, sim.PrioHardware, m.finalizeFn, f)
}

// finalize folds a completed frame's per-receiver fates into the link
// tallies and releases its tracking state back to the pool.
func (sp *spatial) finalize(f *Frame) {
	pf := f.pend
	if pf == nil {
		return
	}
	f.pend = nil
	for i, st := range pf.state {
		k := linkKey{src: f.Src, dst: pf.ids[i]}
		t := sp.tally[k]
		if t == nil {
			t = &linkTally{}
			sp.tally[k] = t
		}
		t.attempts++
		switch st {
		case rxReceiving:
			t.delivered++
		case rxCollided:
			t.collisions++
		}
	}
	sp.putPending(pf)
}
