package medium

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestChannelFrequencies(t *testing.T) {
	if f := ChannelFreqMHz(11); f != 2405 {
		t.Errorf("ch11 = %v", f)
	}
	if f := ChannelFreqMHz(26); f != 2480 {
		t.Errorf("ch26 = %v, want 2480 (paper)", f)
	}
	if f := WiFiFreqMHz(6); f != 2437 {
		t.Errorf("wifi ch6 = %v, want 2437 (paper)", f)
	}
}

func TestSpectralOverlap(t *testing.T) {
	// Channel 17 (2435 MHz) sits inside WiFi channel 6's 22 MHz band.
	if o := SpectralOverlap(2437, ChannelFreqMHz(17)); o != 1 {
		t.Errorf("overlap(ch6, ch17) = %v, want 1", o)
	}
	// Channel 26 (2480 MHz) is far outside.
	if o := SpectralOverlap(2437, ChannelFreqMHz(26)); o != 0 {
		t.Errorf("overlap(ch6, ch26) = %v, want 0", o)
	}
	// A channel half-in half-out.
	if o := SpectralOverlap(2437, 2448); math.Abs(o-0.5) > 1e-9 {
		t.Errorf("edge overlap = %v, want 0.5", o)
	}
}

type fakeReceiver struct {
	node   core.NodeID
	frames []*Frame
}

func (r *fakeReceiver) Node() core.NodeID { return r.node }
func (r *fakeReceiver) FrameStart(f *Frame) bool {
	r.frames = append(r.frames, f)
	return true
}

func TestTransmitDeliversToOthers(t *testing.T) {
	s := sim.New()
	m := New(s)
	r1 := &fakeReceiver{node: 1}
	r2 := &fakeReceiver{node: 2}
	r3 := &fakeReceiver{node: 3}
	m.Register(r1)
	m.Register(r2)
	m.Register(r3)

	f := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(f)
	if len(r1.frames) != 0 {
		t.Error("sender must not hear its own frame")
	}
	if len(r2.frames) != 1 || len(r3.frames) != 1 {
		t.Errorf("delivery counts: r2=%d r3=%d", len(r2.frames), len(r3.frames))
	}
	if m.Frames() != 1 {
		t.Errorf("Frames = %d", m.Frames())
	}
}

func TestEnergyOnDuringTransmission(t *testing.T) {
	s := sim.New()
	m := New(s)
	f := &Frame{Src: 1, Channel: 26, Bytes: 20, Airtime: 640}
	m.Transmit(f)
	if e := m.EnergyOn(26, s.Now()); e < 1 {
		t.Errorf("energy during tx = %v, want >= 1", e)
	}
	if e := m.EnergyOn(17, s.Now()); e != 0 {
		t.Errorf("energy on other channel = %v, want 0", e)
	}
	// After the airtime elapses the channel clears.
	s.Run(1000)
	if e := m.EnergyOn(26, s.Now()); e != 0 {
		t.Errorf("energy after tx = %v, want 0", e)
	}
}

func TestWiFiDutyCycleNearTarget(t *testing.T) {
	// 5 ms bursts, 23 ms gaps: ~17.9% duty, the paper's false-positive
	// rate on the overlapping channel.
	w := NewWiFiSource(6, 5*units.Millisecond, 23*units.Millisecond, 99)
	duty := w.DutyCycle(0, 100*units.Second)
	if duty < 0.15 || duty > 0.21 {
		t.Errorf("duty = %v, want ~0.179", duty)
	}
}

func TestWiFiActiveAtConsistentWithBursts(t *testing.T) {
	w := NewWiFiSource(6, 5*units.Millisecond, 23*units.Millisecond, 7)
	// Sample the indicator and integrate; must match DutyCycle closely.
	var on int
	const n = 200000
	const span = 20 * units.Second
	for i := 0; i < n; i++ {
		tm := units.Ticks(i) * span / n
		if w.ActiveAt(tm) {
			on++
		}
	}
	sampled := float64(on) / n
	duty := w.DutyCycle(0, span)
	if math.Abs(sampled-duty) > 0.01 {
		t.Errorf("sampled %v vs integrated %v", sampled, duty)
	}
}

func TestWiFiDeterminism(t *testing.T) {
	a := NewWiFiSource(6, 5000, 23000, 1234)
	b := NewWiFiSource(6, 5000, 23000, 1234)
	for tm := units.Ticks(0); tm < units.Second; tm += 777 {
		if a.ActiveAt(tm) != b.ActiveAt(tm) {
			t.Fatalf("sources diverged at %v", tm)
		}
	}
}

func TestWiFiInterferenceSeenOnOverlappingChannelOnly(t *testing.T) {
	s := sim.New()
	m := New(s)
	w := NewWiFiSource(6, 5*units.Millisecond, 23*units.Millisecond, 42)
	m.AddWiFi(w)
	// Find a burst instant.
	var at units.Ticks
	for tm := units.Ticks(0); tm < units.Second; tm += 100 {
		if w.ActiveAt(tm) {
			at = tm
			break
		}
	}
	if e := m.EnergyOn(17, at); e <= 0 {
		t.Error("channel 17 should see WiFi energy during a burst")
	}
	if e := m.EnergyOn(26, at); e != 0 {
		t.Errorf("channel 26 sees %v, want 0", e)
	}
}

func TestDutyCycleEmptyWindow(t *testing.T) {
	w := NewWiFiSource(6, 5000, 23000, 1)
	if w.DutyCycle(100, 100) != 0 {
		t.Error("empty window duty should be 0")
	}
}
