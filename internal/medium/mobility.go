// Node mobility: the medium steps registered movers on a fixed epoch grid
// and patches the neighbor index incrementally (Move) at each step.
//
// Positions are quantized to the epoch grid: a node's location during
// [k·step, (k+1)·step) is its mover's position at k·step, materialized into
// a per-mover log. Every position read outside the index — the CCA energy
// query above all — goes through that log keyed by query time, never through
// the mutable position table. That makes the answer a pure function of
// (mover, time): a partitioned run whose parallel window overruns an epoch
// tick reads exactly what the serial run reads after executing the epoch
// event, because both consult log[t/step]. PrepareWindow pre-extends the
// logs (like the WiFi burst schedule) so window-time reads never mutate.
//
// Epoch events run at PrioTopology on the medium's simulator — the shared
// domain a partition group always steps serially — so the index itself is
// only ever patched with every window closed.
package medium

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// Mover yields a node's position as a pure function of simulated time.
// Implementations must be deterministic: the medium materializes positions
// lazily and possibly ahead of the event clock, so PositionAt must return
// the same value however and whenever it is sampled.
type Mover interface {
	PositionAt(t units.Ticks) Position
}

// moverEntry is one mobile node's epoch-quantized position log:
// log[k] = mv.PositionAt(k·step).
type moverEntry struct {
	id  core.NodeID
	mv  Mover
	log []Position
}

// ensure materializes the log through epoch k.
func (e *moverEntry) ensure(k int, step units.Ticks) {
	for len(e.log) <= k {
		e.log = append(e.log, e.mv.PositionAt(units.Ticks(len(e.log))*step))
	}
}

// mobility is the medium's mobility state.
type mobility struct {
	step   units.Ticks
	movers []*moverEntry // attach order: the per-epoch Move order
	byID   map[core.NodeID]*moverEntry
}

// EnableMobility starts stepping movers every step ticks (epochs lie on
// absolute multiples of step). Requires the spatial link layer — mobility is
// meaningless under the broadcast model.
func (m *Medium) EnableMobility(step units.Ticks) {
	if m.sp == nil {
		panic("medium: EnableMobility before EnableSpatial")
	}
	if step <= 0 {
		panic("medium: mobility step must be positive")
	}
	if m.mob != nil {
		panic("medium: EnableMobility called twice")
	}
	m.mob = &mobility{step: step, byID: make(map[core.NodeID]*moverEntry)}
	next := (m.s.Now()/step + 1) * step
	m.s.Schedule(next, sim.PrioTopology, m.mobilityEpoch)
}

// MobilityEnabled reports whether mobility stepping is configured.
func (m *Medium) MobilityEnabled() bool { return m.mob != nil }

// SetMover attaches a mover to a node and places it at the mover's origin
// (epoch 0) position, replacing any position set earlier. Movers step in
// attach order; attach every mover before the run for a canonical order.
func (m *Medium) SetMover(id core.NodeID, mv Mover) {
	if m.mob == nil {
		panic("medium: SetMover before EnableMobility")
	}
	if _, dup := m.mob.byID[id]; dup {
		panic("medium: SetMover called twice for one node")
	}
	e := &moverEntry{id: id, mv: mv}
	e.ensure(0, m.mob.step)
	m.mob.movers = append(m.mob.movers, e)
	m.mob.byID[id] = e
	m.SetPosition(id, e.log[0])
}

// mobilityEpoch relocates every mover to its position for the epoch starting
// now and re-arms itself. It runs at PrioTopology, ahead of every hardware
// and software event sharing the tick, so a transmission at the epoch tick
// already sees the new topology — in serial and partitioned runs alike.
func (m *Medium) mobilityEpoch() {
	at := m.s.Now()
	k := int(at / m.mob.step)
	for _, e := range m.mob.movers {
		e.ensure(k, m.mob.step)
		m.Move(e.id, e.log[k])
	}
	m.s.Schedule(at+m.mob.step, sim.PrioTopology, m.mobilityEpoch)
}

// positionAt resolves a node's position at time t: epoch-quantized through
// the mover log for mobile nodes (read-only once PrepareWindow has extended
// the logs, so parallel-window queries are race-free and see the same value
// a serial run would), the static position table otherwise.
func (m *Medium) positionAt(id core.NodeID, t units.Ticks) (Position, bool) {
	if m.mob != nil {
		if e, ok := m.mob.byID[id]; ok {
			k := int(t / m.mob.step)
			e.ensure(k, m.mob.step)
			return e.log[k], true
		}
	}
	p, ok := m.sp.pos[id]
	return p, ok
}
