// Package medium models the shared 2.4 GHz RF environment: frame delivery
// between motes on 802.15.4 channels and wideband 802.11 interference that
// leaks energy into overlapping 802.15.4 channels.
//
// Two propagation models share the Medium. The default is intentionally
// simple — every registered node hears every other node on the same
// channel, delivery is instantaneous at the speed-of-light scale of a
// testbed — because the paper's experiments (Bounce, the LPL interference
// study) depend on timing and spectral overlap, not on path loss.
// EnableSpatial switches to the spatial link layer (spatial.go): node
// positions, log-distance path loss with a PRR gray region, per-receiver
// delivery over an O(neighbors) index, and receiver-side collisions with
// capture — the model that makes density, range, and contention sweepable.
package medium

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// ChannelFreqMHz returns the center frequency of an 802.15.4 channel
// (11..26): 2405 + 5*(ch-11) MHz. Channel 26 is 2480 MHz, the farthest from
// 802.11b channel 6, exactly as the paper's experiment is set up.
func ChannelFreqMHz(ch int) float64 { return 2405 + 5*float64(ch-11) }

// WiFiFreqMHz returns the center frequency of an 802.11b/g channel (1..13):
// 2407 + 5*ch MHz; channel 6 is 2437 MHz.
func WiFiFreqMHz(ch int) float64 { return 2407 + 5*float64(ch) }

// SpectralOverlap returns the fraction of a 2 MHz-wide 802.15.4 channel
// covered by a 22 MHz-wide 802.11 transmission.
func SpectralOverlap(wifiCenterMHz, panCenterMHz float64) float64 {
	wifiLo, wifiHi := wifiCenterMHz-11, wifiCenterMHz+11
	panLo, panHi := panCenterMHz-1, panCenterMHz+1
	lo, hi := max64(wifiLo, panLo), min64(wifiHi, panHi)
	if hi <= lo {
		return 0
	}
	return (hi - lo) / (panHi - panLo)
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Frame is one 802.15.4 frame in flight.
type Frame struct {
	Src     core.NodeID
	Channel int
	Bytes   int         // full frame length including header
	Airtime units.Ticks // transmission duration
	Payload any         // link-layer packet (an *am.Packet in this repo)
	SentAt  units.Ticks

	// actIdx is the frame's slot in Medium.active while on the air (-1
	// otherwise), making expiry a swap-remove instead of a linear scan.
	actIdx int32
	// pend is the spatial layer's per-receiver fate record; nil under the
	// broadcast model or once the frame has been finalized.
	pend *pendingFrame
}

// Receiver is the radio-side interface for frame delivery.
type Receiver interface {
	// Node identifies the receiver.
	Node() core.NodeID
	// FrameStart announces that a frame began arriving now; the frame's
	// last bit lands at SentAt+Airtime. It reports whether the receiver
	// synced onto the frame: false when it is not listening, is itself
	// transmitting (half-duplex), or is tuned to another channel. The
	// spatial layer tallies a refused frame as an undelivered attempt so
	// observed link PRR reflects MAC-level misses, not just channel loss;
	// the broadcast model ignores the result.
	FrameStart(f *Frame) bool
}

// Medium is the shared channel. By default it is the flat broadcast model
// described above; EnableSpatial switches it to the spatial link layer
// (positions, path loss, per-link PRR, collisions) defined in spatial.go.
type Medium struct {
	s         *sim.Simulator
	receivers []Receiver
	wifi      []*WiFiSource

	active []*Frame // transmissions currently in the air

	sp  *spatial  // nil: legacy broadcast propagation
	mob *mobility // nil: every node is stationary

	// expireFn / finalizeFn are the shared per-frame event callbacks; the
	// frame rides along as the event argument so transmitting allocates no
	// closures.
	expireFn   func(any)
	finalizeFn func(any)

	frames uint64
}

// New creates an empty medium on simulator s.
func New(s *sim.Simulator) *Medium {
	m := &Medium{s: s}
	m.expireFn = func(arg any) { m.expire(arg.(*Frame)) }
	m.finalizeFn = func(arg any) { m.sp.finalize(arg.(*Frame)) }
	return m
}

// Register adds a receiver (a node's radio).
func (m *Medium) Register(r Receiver) {
	m.receivers = append(m.receivers, r)
	m.invalidateNeighbors()
}

// Unregister removes a receiver from the medium. A node whose battery
// depletes drops off the air: frames transmitted afterwards are no longer
// delivered to it, and — because the dead node can no longer forward — every
// node that depended on it loses connectivity, the cascade the lifetime
// scenarios observe. Unregistering an unknown receiver is a no-op.
func (m *Medium) Unregister(r Receiver) {
	for i, x := range m.receivers {
		if x == r {
			m.receivers = append(m.receivers[:i], m.receivers[i+1:]...)
			m.invalidateNeighbors()
			return
		}
	}
}

// AddWiFi attaches an interference source.
func (m *Medium) AddWiFi(w *WiFiSource) { m.wifi = append(m.wifi, w) }

// PrepareWindow pre-generates every lazily materialized piece of medium
// state through limit, so that queries issued concurrently from a partition
// scheduler's parallel window (CCA energy reads, WiFi duty lookups) find the
// state already built and stay mutation-free. The slack covers reads at the
// CPU's busy clock, which can run past the event clock by the length of a
// handler chain. Generation is deterministic and incremental, so preparing
// early changes no outcome — it only moves the work to a serial point.
func (m *Medium) PrepareWindow(limit units.Ticks) {
	const slack = 1 << 20
	for _, w := range m.wifi {
		w.ensure(limit + slack)
	}
	if m.mob != nil {
		k := int((limit + slack) / m.mob.step)
		for _, e := range m.mob.movers {
			e.ensure(k, m.mob.step)
		}
	}
}

// Frames returns the number of frames transmitted so far.
func (m *Medium) Frames() uint64 { return m.frames }

// Transmit puts f on the air starting now. Each in-range receiver gets a
// FrameStart immediately; the frame stays "active" for collision/energy
// queries until its airtime elapses. Under the broadcast model "in range"
// is every registered receiver (O(nodes) per transmission); under the
// spatial layer it is the transmitter's precomputed neighbor list
// (O(neighbors)), and reception is further gated on the link's PRR and on
// collisions with overlapping co-channel frames.
func (m *Medium) Transmit(f *Frame) {
	f.SentAt = m.s.Now()
	m.frames++
	f.actIdx = int32(len(m.active))
	m.active = append(m.active, f)
	m.s.ScheduleArg(f.SentAt+f.Airtime, sim.PrioHardware, m.expireFn, f)
	if m.sp != nil {
		m.transmitSpatial(f)
		return
	}
	for _, r := range m.receivers {
		if r.Node() == f.Src {
			continue
		}
		r.FrameStart(f)
	}
}

// expire swap-removes a finished frame from the active list. Order within
// active does not matter: energy queries sum exact integers and collision
// contests are pairwise-independent, so removal order cannot change results.
func (m *Medium) expire(f *Frame) {
	i := int(f.actIdx)
	if i < 0 || i >= len(m.active) || m.active[i] != f {
		return
	}
	last := len(m.active) - 1
	m.active[i] = m.active[last]
	m.active[i].actIdx = int32(i)
	m.active[last] = nil
	m.active = m.active[:last]
	f.actIdx = -1
}

// EnergyOn reports the normalized interference+traffic energy present on an
// 802.15.4 channel at time t: 1.0 for a co-channel mote transmission, the
// spectral overlap fraction for an active WiFi burst, 0 for a clear
// channel. A clear-channel-assessment against a threshold is a comparison
// on this value.
//
// A frame occupies the half-open window [SentAt, SentAt+Airtime): the gate
// is on the frame's own timestamps, not on `active` membership, so a CCA
// landing exactly at SentAt+Airtime sees a clear channel no matter how the
// scheduler ordered the expiry event against the query at that tick.
func (m *Medium) EnergyOn(ch int, t units.Ticks) float64 {
	var e float64
	for _, f := range m.active {
		if f.Channel == ch && f.SentAt <= t && t < f.SentAt+f.Airtime {
			e += 1.0
		}
	}
	return e + m.wifiEnergy(ch, t)
}

// wifiEnergy folds every interferer's spectral-overlap contribution on an
// 802.15.4 channel at time t. Shared by EnergyOn and EnergyOnAt so the two
// queries cannot diverge on the interference half.
func (m *Medium) wifiEnergy(ch int, t units.Ticks) float64 {
	var e float64
	panFreq := ChannelFreqMHz(ch)
	for _, w := range m.wifi {
		if w.ActiveAt(t) {
			e += SpectralOverlap(WiFiFreqMHz(w.Channel), panFreq)
		}
	}
	return e
}

// EnergyOnAt is the position-aware form of EnergyOn: under the spatial link
// layer, only mote transmissions audible at the querying node (transmitter
// within TxRangeM) contribute their 1.0, so a busy channel three rooms away
// no longer trips a far node's CCA. WiFi interferers have no position and
// stay global. With no spatial configuration it is exactly EnergyOn.
func (m *Medium) EnergyOnAt(node core.NodeID, ch int, t units.Ticks) float64 {
	if m.sp == nil {
		return m.EnergyOn(ch, t)
	}
	var e float64
	at, ok := m.positionAt(node, t)
	for _, f := range m.active {
		if f.Channel != ch || f.SentAt > t || t >= f.SentAt+f.Airtime {
			continue
		}
		if ok {
			src, known := m.positionAt(f.Src, t)
			if known && src.Distance(at) > m.sp.cfg.TxRangeM {
				continue
			}
		}
		e += 1.0
	}
	return e + m.wifiEnergy(ch, t)
}

// WiFiSource models an 802.11b/g access point plus its clients as a bursty
// on/off process: bursts of mean BurstMean separated by idle gaps of mean
// GapMean, both jittered deterministically. The paper placed the mote 10 cm
// from the AP, so every burst is far above the CCA threshold; only the
// spectral overlap attenuates it.
type WiFiSource struct {
	Channel   int
	BurstMean units.Ticks
	GapMean   units.Ticks

	rng    *sim.RNG
	bursts []burst // generated lazily, in time order
	genT   units.Ticks
}

type burst struct{ start, end units.Ticks }

// NewWiFiSource creates a source on the given 802.11 channel with the given
// duty pattern. With BurstMean=5ms and GapMean=23ms the long-run duty cycle
// is ~18%, which reproduces the paper's 17.8% false-positive rate for
// 500 ms-spaced CCA checks on an overlapping channel.
func NewWiFiSource(channel int, burstMean, gapMean units.Ticks, seed uint64) *WiFiSource {
	return &WiFiSource{
		Channel:   channel,
		BurstMean: burstMean,
		GapMean:   gapMean,
		rng:       sim.NewRNG(seed),
	}
}

// ActiveAt reports whether a burst is in progress at time t.
func (w *WiFiSource) ActiveAt(t units.Ticks) bool {
	w.ensure(t)
	// Binary search for the burst containing t.
	lo, hi := 0, len(w.bursts)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.bursts[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(w.bursts) && w.bursts[lo].start <= t
}

// DutyCycle returns the fraction of [t0, t1) covered by bursts. The first
// overlapping burst is found with the same binary search ActiveAt uses, so a
// report over a late window costs O(log bursts + bursts in window) instead
// of rescanning every burst ever generated.
func (w *WiFiSource) DutyCycle(t0, t1 units.Ticks) float64 {
	if t1 <= t0 {
		return 0
	}
	w.ensure(t1)
	// First burst with end > t0; bursts are generated in time order.
	lo := sort.Search(len(w.bursts), func(i int) bool { return w.bursts[i].end > t0 })
	var on units.Ticks
	for _, b := range w.bursts[lo:] {
		if b.start >= t1 {
			break
		}
		s, e := b.start, b.end
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		on += e - s
	}
	return float64(on) / float64(t1-t0)
}

func (w *WiFiSource) ensure(t units.Ticks) {
	for w.genT <= t {
		gap := w.jitter(w.GapMean)
		length := w.jitter(w.BurstMean)
		start := w.genT + gap
		w.bursts = append(w.bursts, burst{start: start, end: start + length})
		w.genT = start + length
	}
}

// jitter returns a duration uniform in [mean/2, 3*mean/2).
func (w *WiFiSource) jitter(mean units.Ticks) units.Ticks {
	if mean <= 1 {
		return mean
	}
	return mean/2 + w.rng.Ticks(mean)
}
