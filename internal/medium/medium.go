// Package medium models the shared 2.4 GHz RF environment: frame delivery
// between motes on 802.15.4 channels and wideband 802.11 interference that
// leaks energy into overlapping 802.15.4 channels.
//
// The propagation model is intentionally simple — every registered node
// hears every other node on the same channel, delivery is instantaneous at
// the speed-of-light scale of a testbed — because the experiments that use
// it (Bounce, the LPL interference study) depend on timing and spectral
// overlap, not on path loss.
package medium

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
)

// ChannelFreqMHz returns the center frequency of an 802.15.4 channel
// (11..26): 2405 + 5*(ch-11) MHz. Channel 26 is 2480 MHz, the farthest from
// 802.11b channel 6, exactly as the paper's experiment is set up.
func ChannelFreqMHz(ch int) float64 { return 2405 + 5*float64(ch-11) }

// WiFiFreqMHz returns the center frequency of an 802.11b/g channel (1..13):
// 2407 + 5*ch MHz; channel 6 is 2437 MHz.
func WiFiFreqMHz(ch int) float64 { return 2407 + 5*float64(ch) }

// SpectralOverlap returns the fraction of a 2 MHz-wide 802.15.4 channel
// covered by a 22 MHz-wide 802.11 transmission.
func SpectralOverlap(wifiCenterMHz, panCenterMHz float64) float64 {
	wifiLo, wifiHi := wifiCenterMHz-11, wifiCenterMHz+11
	panLo, panHi := panCenterMHz-1, panCenterMHz+1
	lo, hi := max64(wifiLo, panLo), min64(wifiHi, panHi)
	if hi <= lo {
		return 0
	}
	return (hi - lo) / (panHi - panLo)
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Frame is one 802.15.4 frame in flight.
type Frame struct {
	Src     core.NodeID
	Channel int
	Bytes   int         // full frame length including header
	Airtime units.Ticks // transmission duration
	Payload any         // link-layer packet (an *am.Packet in this repo)
	SentAt  units.Ticks
}

// Receiver is the radio-side interface for frame delivery.
type Receiver interface {
	// Node identifies the receiver.
	Node() core.NodeID
	// FrameStart announces that a frame began arriving now; the frame's
	// last bit lands at SentAt+Airtime. Receivers not listening on
	// f.Channel simply ignore it.
	FrameStart(f *Frame)
}

// Medium is the shared channel.
type Medium struct {
	s         *sim.Simulator
	receivers []Receiver
	wifi      []*WiFiSource

	active []*Frame // transmissions currently in the air

	frames uint64
}

// New creates an empty medium on simulator s.
func New(s *sim.Simulator) *Medium { return &Medium{s: s} }

// Register adds a receiver (a node's radio).
func (m *Medium) Register(r Receiver) { m.receivers = append(m.receivers, r) }

// Unregister removes a receiver from the medium. A node whose battery
// depletes drops off the air: frames transmitted afterwards are no longer
// delivered to it, and — because the dead node can no longer forward — every
// node that depended on it loses connectivity, the cascade the lifetime
// scenarios observe. Unregistering an unknown receiver is a no-op.
func (m *Medium) Unregister(r Receiver) {
	for i, x := range m.receivers {
		if x == r {
			m.receivers = append(m.receivers[:i], m.receivers[i+1:]...)
			return
		}
	}
}

// AddWiFi attaches an interference source.
func (m *Medium) AddWiFi(w *WiFiSource) { m.wifi = append(m.wifi, w) }

// Frames returns the number of frames transmitted so far.
func (m *Medium) Frames() uint64 { return m.frames }

// Transmit puts f on the air starting now. Each in-range receiver gets a
// FrameStart immediately; the frame stays "active" for collision/energy
// queries until its airtime elapses.
func (m *Medium) Transmit(f *Frame) {
	f.SentAt = m.s.Now()
	m.frames++
	m.active = append(m.active, f)
	m.s.Schedule(f.SentAt+f.Airtime, sim.PrioHardware, func() { m.expire(f) })
	for _, r := range m.receivers {
		if r.Node() == f.Src {
			continue
		}
		r.FrameStart(f)
	}
}

func (m *Medium) expire(f *Frame) {
	for i, g := range m.active {
		if g == f {
			m.active = append(m.active[:i], m.active[i+1:]...)
			return
		}
	}
}

// EnergyOn reports the normalized interference+traffic energy present on an
// 802.15.4 channel at time t: 1.0 for a co-channel mote transmission, the
// spectral overlap fraction for an active WiFi burst, 0 for a clear
// channel. A clear-channel-assessment against a threshold is a comparison
// on this value.
func (m *Medium) EnergyOn(ch int, t units.Ticks) float64 {
	var e float64
	for _, f := range m.active {
		if f.Channel == ch {
			e += 1.0
		}
	}
	panFreq := ChannelFreqMHz(ch)
	for _, w := range m.wifi {
		if w.ActiveAt(t) {
			e += SpectralOverlap(WiFiFreqMHz(w.Channel), panFreq)
		}
	}
	return e
}

// WiFiSource models an 802.11b/g access point plus its clients as a bursty
// on/off process: bursts of mean BurstMean separated by idle gaps of mean
// GapMean, both jittered deterministically. The paper placed the mote 10 cm
// from the AP, so every burst is far above the CCA threshold; only the
// spectral overlap attenuates it.
type WiFiSource struct {
	Channel   int
	BurstMean units.Ticks
	GapMean   units.Ticks

	rng    *sim.RNG
	bursts []burst // generated lazily, in time order
	genT   units.Ticks
}

type burst struct{ start, end units.Ticks }

// NewWiFiSource creates a source on the given 802.11 channel with the given
// duty pattern. With BurstMean=5ms and GapMean=23ms the long-run duty cycle
// is ~18%, which reproduces the paper's 17.8% false-positive rate for
// 500 ms-spaced CCA checks on an overlapping channel.
func NewWiFiSource(channel int, burstMean, gapMean units.Ticks, seed uint64) *WiFiSource {
	return &WiFiSource{
		Channel:   channel,
		BurstMean: burstMean,
		GapMean:   gapMean,
		rng:       sim.NewRNG(seed),
	}
}

// ActiveAt reports whether a burst is in progress at time t.
func (w *WiFiSource) ActiveAt(t units.Ticks) bool {
	w.ensure(t)
	// Binary search for the burst containing t.
	lo, hi := 0, len(w.bursts)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.bursts[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(w.bursts) && w.bursts[lo].start <= t
}

// DutyCycle returns the fraction of [t0, t1) covered by bursts.
func (w *WiFiSource) DutyCycle(t0, t1 units.Ticks) float64 {
	if t1 <= t0 {
		return 0
	}
	w.ensure(t1)
	var on units.Ticks
	for _, b := range w.bursts {
		if b.end <= t0 || b.start >= t1 {
			continue
		}
		s, e := b.start, b.end
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		on += e - s
	}
	return float64(on) / float64(t1-t0)
}

func (w *WiFiSource) ensure(t units.Ticks) {
	for w.genT <= t {
		gap := w.jitter(w.GapMean)
		length := w.jitter(w.BurstMean)
		start := w.genT + gap
		w.bursts = append(w.bursts, burst{start: start, end: start + length})
		w.genT = start + length
	}
}

// jitter returns a duration uniform in [mean/2, 3*mean/2).
func (w *WiFiSource) jitter(mean units.Ticks) units.Ticks {
	if mean <= 1 {
		return mean
	}
	return mean/2 + w.rng.Ticks(mean)
}
