// Bounce runs the paper's two-node cross-activity example: packets carry
// their originating activity in a hidden link-layer field, so work one node
// performs for another node's packet is charged to the originating
// activity. The run is a declarative scenario; the per-node analyses come
// from the streaming network analyzer in one pass over the merged trace.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 3, "simulation seed")
	secs := flag.Int("secs", 4, "run length in seconds")
	flag.Parse()

	in, err := scenario.Build(scenario.Spec{
		App:        "bounce",
		Seed:       *seed,
		DurationUS: int64(*secs) * int64(units.Second),
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	in.Run()
	b := in.App.(*apps.Bounce)

	recv, sent := b.Stats()
	fmt.Printf("node 1: rx=%d tx=%d   node 4: rx=%d tx=%d\n\n", recv[0], sent[0], recv[1], sent[1])

	net, err := in.Network()
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	acts := b.Activities()
	for i, n := range b.Nodes {
		a := net.Nodes[n.ID]
		times := a.TimeByActivity()
		local, remote := acts[i], acts[1-i]
		fmt.Printf("node %d CPU time: %.2f ms for %s, %.2f ms for %s\n",
			n.ID,
			float64(times[power.ResCPU][local])/1000, in.World.Dict.LabelName(local),
			float64(times[power.ResCPU][remote])/1000, in.World.Dict.LabelName(remote))

		byAct := a.EnergyByActivity()
		fmt.Printf("node %d energy: %.2f mJ for %s, %.2f mJ for %s\n\n",
			n.ID,
			byAct[local]/1000, in.World.Dict.LabelName(local),
			byAct[remote]/1000, in.World.Dict.LabelName(remote))
	}
	fmt.Println("the second line of each pair is energy this node spent on the OTHER node's activity")
}
