// lpl-interference reruns the paper's 802.11-vs-802.15.4 case study: a
// low-power-listening mote checked against a WiFi access point on channel 6,
// once on the overlapping 802.15.4 channel 17 and once on the clear channel
// 26.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 11, "simulation seed")
	secs := flag.Int("secs", 70, "run length in seconds (paper: 5 x 14 s)")
	flag.Parse()

	for _, ch := range []int{17, 26} {
		l := apps.NewLPL(*seed, apps.DefaultLPLConfig(ch))
		l.Run(units.Ticks(*secs) * units.Second)

		tr := analysis.NewNodeTrace(l.Node.ID, l.Node.Log.Entries, l.Node.Meter.PulseEnergy(), l.Node.Volts)
		a, err := analysis.Analyze(tr, l.World.Dict, analysis.DefaultOptions())
		if err != nil {
			log.Fatalf("analyze ch%d: %v", ch, err)
		}

		wake, fps := l.Stats()
		duty := float64(a.ActiveTimeUS(power.ResRadioReg)) / float64(a.Span())
		fmt.Printf("channel %d:\n", ch)
		fmt.Printf("  wake-ups:        %d (every 500 ms)\n", wake)
		fmt.Printf("  false positives: %d (%.1f%%)\n", fps, l.FalsePositiveRate()*100)
		fmt.Printf("  radio duty:      %.2f%%\n", duty*100)
		fmt.Printf("  average power:   %.2f mW\n\n", a.AveragePowerMW())
	}
	fmt.Println("paper: ch17 17.8% false positives, 5.58% duty; ch26 0%, 2.22%")
}
