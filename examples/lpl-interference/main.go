// lpl-interference reruns the paper's 802.11-vs-802.15.4 case study as a
// scenario matrix: the same low-power-listening spec swept over the
// overlapping channel 17 and the clear channel 26 (and, with -seeds N,
// replicated across derived seeds), executed concurrently by the sweep
// runner — the in-process equivalent of `quanto-trace sweep`.
package main

import (
	"flag"
	"fmt"
	"log"

	// Blank import: registers the paper's workloads with the scenario
	// registry.
	_ "repro/internal/apps"
	"repro/internal/scenario"
	"repro/internal/units"
)

func main() {
	seed := flag.Uint64("seed", 11, "base simulation seed")
	secs := flag.Int("secs", 70, "run length in seconds (paper: 5 x 14 s)")
	seeds := flag.Int("seeds", 1, "replicas per channel under derived seeds")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	matrix := scenario.Matrix{
		Base: scenario.Spec{
			App:        "lpl",
			Seed:       *seed,
			DurationUS: int64(*secs) * int64(units.Second),
		},
		Sweep: map[string][]any{"channel": {17, 26}},
		Seeds: *seeds,
	}
	specs, err := matrix.Expand()
	if err != nil {
		log.Fatalf("expand: %v", err)
	}

	rn := &scenario.Runner{Workers: *workers}
	results := rn.Run(specs)
	for _, r := range results {
		if r.Error != "" {
			log.Fatalf("run %d (channel %d): %s", r.Run, r.Spec.Channel, r.Error)
		}
		fmt.Printf("channel %d (seed %d):\n", r.Spec.Channel, r.Spec.Seed)
		fmt.Printf("  wake-ups:        %.0f (every 500 ms)\n", r.Metrics["wakeups"])
		fmt.Printf("  false positives: %.0f (%.1f%%)\n", r.Metrics["false_positives"], r.Metrics["fp_rate"]*100)
		fmt.Printf("  average power:   %.2f mW\n\n", r.AvgPowerMW)
	}

	if *seeds > 1 {
		fmt.Println("cross-seed aggregate (mean ± std [min, max]):")
		fmt.Print(scenario.Aggregate(results).Render())
		fmt.Println()
	}
	fmt.Println("paper: ch17 17.8% false positives, 1.43 mW; ch26 0%, 0.919 mW")
}
