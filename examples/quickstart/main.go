// Quickstart: build a one-node world, define an activity, burn some energy
// on an LED and the CPU, and ask Quanto where the joules went.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/mote"
	"repro/internal/power"
	"repro/internal/units"
)

func main() {
	// A world holds the simulator, the RF medium and the shared name
	// dictionary; a node is a full HydroWatch mote: board, iCount meter,
	// oscilloscope bench, TinyOS-like kernel, and instrumented drivers.
	w, n := mote.NewSingleNode(42)
	k := n.K

	// Define an application activity and do some periodic work under it.
	work := k.DefineActivity("Work")
	k.Boot(func() {
		k.CPUAct.Set(work)
		t := k.NewTimer(func() {
			n.LEDs.Toggle(0) // LED0 runs on behalf of "Work"
			k.Spend(400)     // and so do these CPU cycles
		})
		t.StartPeriodic(250 * units.Millisecond)
		k.CPUAct.SetIdle()
	})

	// Run ten simulated seconds and close the trace.
	w.Run(10 * units.Second)
	w.StampEnd()

	// Offline analysis: intervals -> regression -> breakdowns.
	tr := analysis.NewNodeTrace(n.ID, n.Log.Entries, n.Meter.PulseEnergy(), n.Volts)
	a, err := analysis.Analyze(tr, w.Dict, analysis.DefaultOptions())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}

	fmt.Printf("log entries:        %d (12 bytes each)\n", len(n.Log.Entries))
	fmt.Printf("energy measured:    %.2f mJ\n", a.TotalEnergyUJ()/1000)
	fmt.Printf("average power:      %.2f mW\n", a.AveragePowerMW())

	led0 := analysis.Predictor{Res: power.ResLED0, State: power.StateOn}
	fmt.Printf("LED0 draw (fit):    %.2f mA\n", a.Reg.CurrentMA(led0, float64(n.Volts)))
	fmt.Printf("baseline (fit):     %.2f mA\n", a.Reg.ConstCurrentMA(float64(n.Volts)))

	fmt.Println("\nenergy by activity:")
	for l, uj := range a.EnergyByActivity() {
		name := "Const."
		if l != analysis.ConstLabel {
			name = w.Dict.LabelName(l)
		}
		fmt.Printf("  %-14s %8.2f mJ\n", name, uj/1000)
	}
}
